package ccs

import (
	"fmt"
	"strings"
)

// Stats schema shared by every front end: the CLI's -stats flags, the
// server's GET /v1/stats, and programmatic callers all render or serve
// the same structures, so "how warm is the cache" reads identically
// everywhere.

// StoreStats is a snapshot of the persistent artifact store's counters
// (internal/store), present only on store-backed Checkers.
type StoreStats struct {
	Entries     int   `json:"entries"`
	Bytes       int64 `json:"bytes"`
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Corrupt     int64 `json:"corrupt"`
	Writes      int64 `json:"writes"`
	WriteErrors int64 `json:"write_errors"`
	Evictions   int64 `json:"evictions"`
}

// CheckerStats is a snapshot of a Checker's caches.
type CheckerStats struct {
	// Processes counts the structurally distinct processes the in-memory
	// artifact cache has seen.
	Processes int `json:"processes"`
	// Store is the persistent tier's counters; nil for a memory-only
	// Checker.
	Store *StoreStats `json:"store,omitempty"`
}

// ServerStats is the body of the server's GET /v1/stats.
type ServerStats struct {
	Schema int `json:"schema"`
	// Version is the serving binary's build version ("dev" when not
	// stamped at link time).
	Version string `json:"version,omitempty"`
	// Queries counts requests answered (across /v1/check, /v1/batch and
	// /v1/network); Failed is the subset whose report carries an error.
	Queries int64 `json:"queries"`
	Failed  int64 `json:"failed"`
	// Rejected counts requests turned away by admission control (429).
	Rejected int64 `json:"rejected"`
	// InFlight is the number of requests currently being answered;
	// MaxInFlight is the admission-control bound.
	InFlight    int `json:"in_flight"`
	MaxInFlight int `json:"max_in_flight"`
	// Workers is the per-batch worker-pool size.
	Workers int `json:"workers"`
	// Checker is the underlying cache state.
	Checker CheckerStats `json:"checker"`
}

// Stats snapshots the Checker's cache counters.
func (c *Checker) Stats() CheckerStats {
	s := CheckerStats{Processes: c.e.Processes()}
	if st, ok := c.e.StoreStats(); ok {
		s.Store = &StoreStats{
			Entries:     st.Entries,
			Bytes:       st.Bytes,
			Hits:        st.Hits,
			Misses:      st.Misses,
			Corrupt:     st.Corrupt,
			Writes:      st.Writes,
			WriteErrors: st.WriteErrors,
			Evictions:   st.Evictions,
		}
	}
	return s
}

// Render formats the stats as the one-line cache summary every -stats
// front end prints.
func (s CheckerStats) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cache: %d distinct processes", s.Processes)
	if st := s.Store; st != nil {
		fmt.Fprintf(&b, "; store: %d entries (%d bytes), %d hits / %d misses, %d writes",
			st.Entries, st.Bytes, st.Hits, st.Misses, st.Writes)
		if st.Evictions > 0 {
			fmt.Fprintf(&b, ", %d evictions", st.Evictions)
		}
		if st.Corrupt > 0 {
			fmt.Fprintf(&b, ", %d corrupt", st.Corrupt)
		}
		if st.WriteErrors > 0 {
			fmt.Fprintf(&b, ", %d write errors", st.WriteErrors)
		}
	}
	return b.String()
}
