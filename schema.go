package ccs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file is the one serialization schema for check requests and
// reports. The CLI's batch lists and network descriptions, the HTTP
// server's wire bodies, and programmatic users all parse into the same
// CheckRequest and render from the same Report (request.go), so a query
// written for one front end replays on any other.
//
// Two encodings are supported:
//
//   - JSON, versioned by an envelope {"schema": 1, "requests": [...]} /
//     {"schema": 1, "reports": [...]}. A bare JSON array of requests is
//     accepted as shorthand for the current version.
//   - The line-oriented text formats the CLI has always used: the batch
//     pair list ("[RELATION] A B" per line) and the network description
//     ("component", "hide", "spec", "rel" directives). These parse into
//     the same types.

// SchemaVersion is the current request/report schema version. Decoders
// accept documents up to this version and reject newer ones.
const SchemaVersion = 1

// maxJSONDepth bounds the bracket-nesting depth a JSON document may use.
// The schema's types nest a small constant number of levels, so the bound
// is far above any legitimate document while keeping adversarial
// "[[[[…]]]]" bodies from burning a deep recursive decode. Exceeding it
// yields ErrJSONDepth.
const maxJSONDepth = 128

// ErrJSONDepth is returned (wrapped) by the JSON decoders when a document
// nests deeper than maxJSONDepth.
var ErrJSONDepth = fmt.Errorf("ccs: JSON document nests deeper than %d levels", maxJSONDepth)

// checkJSONDepth scans the raw document and rejects bracket nesting past
// maxJSONDepth before any real decoding starts. The scan is string-aware:
// brackets inside string literals (and escaped quotes inside those) don't
// count. Malformed documents are left for the decoder to diagnose.
func checkJSONDepth(data []byte) error {
	depth, inString, escaped := 0, false, false
	for _, c := range data {
		switch {
		case escaped:
			escaped = false
		case inString:
			switch c {
			case '\\':
				escaped = true
			case '"':
				inString = false
			}
		default:
			switch c {
			case '"':
				inString = true
			case '{', '[':
				depth++
				if depth > maxJSONDepth {
					return ErrJSONDepth
				}
			case '}', ']':
				depth--
			}
		}
	}
	return nil
}

// RequestEnvelope is the versioned JSON document carrying requests.
type RequestEnvelope struct {
	Schema   int            `json:"schema"`
	Requests []CheckRequest `json:"requests"`
}

// ReportEnvelope is the versioned JSON document carrying reports.
type ReportEnvelope struct {
	Schema  int      `json:"schema"`
	Reports []Report `json:"reports"`
}

// EncodeRequests renders requests as a versioned JSON document.
func EncodeRequests(reqs []CheckRequest) ([]byte, error) {
	return json.MarshalIndent(RequestEnvelope{Schema: SchemaVersion, Requests: reqs}, "", "  ")
}

// EncodeReports renders reports as a versioned JSON document.
func EncodeReports(reps []Report) ([]byte, error) {
	return json.MarshalIndent(ReportEnvelope{Schema: SchemaVersion, Reports: reps}, "", "  ")
}

// DecodeRequests parses a JSON request document: a versioned envelope, a
// bare array of requests, or a single request object.
func DecodeRequests(data []byte) ([]CheckRequest, error) {
	if err := checkJSONDepth(data); err != nil {
		return nil, err
	}
	trimmed := strings.TrimLeftFunc(string(data), func(r rune) bool {
		return r == ' ' || r == '\t' || r == '\n' || r == '\r'
	})
	if strings.HasPrefix(trimmed, "[") {
		var reqs []CheckRequest
		if err := strictUnmarshal(data, &reqs); err != nil {
			return nil, err
		}
		return reqs, nil
	}
	// An object: an envelope if it has a "requests" key, else a single
	// request. Sniff the keys through a raw decode so misspelled envelope
	// fields fail loudly instead of parsing as an empty request.
	var keys map[string]json.RawMessage
	if err := json.Unmarshal(data, &keys); err != nil {
		return nil, fmt.Errorf("ccs: invalid request document: %w", err)
	}
	if _, isEnvelope := keys["requests"]; isEnvelope {
		var env RequestEnvelope
		if err := strictUnmarshal(data, &env); err != nil {
			return nil, err
		}
		if env.Schema > SchemaVersion {
			return nil, fmt.Errorf("ccs: request schema version %d is newer than supported %d", env.Schema, SchemaVersion)
		}
		return env.Requests, nil
	}
	var req CheckRequest
	if err := strictUnmarshal(data, &req); err != nil {
		return nil, err
	}
	return []CheckRequest{req}, nil
}

// DecodeReports parses a versioned JSON report document.
func DecodeReports(data []byte) ([]Report, error) {
	if err := checkJSONDepth(data); err != nil {
		return nil, err
	}
	var env ReportEnvelope
	if err := strictUnmarshal(data, &env); err != nil {
		return nil, err
	}
	if env.Schema > SchemaVersion {
		return nil, fmt.Errorf("ccs: report schema version %d is newer than supported %d", env.Schema, SchemaVersion)
	}
	return env.Reports, nil
}

// strictUnmarshal decodes JSON rejecting unknown fields, so a typo in a
// request ("relatoin") is an input error rather than a silently defaulted
// query.
func strictUnmarshal(data []byte, v any) error {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("ccs: invalid request document: %w", err)
	}
	var trailing any
	if err := dec.Decode(&trailing); err != io.EOF {
		return fmt.Errorf("ccs: trailing data after JSON document")
	}
	return nil
}

// ParseRequests reads a request stream in either encoding, sniffing the
// first non-blank byte: '{' or '[' selects JSON, anything else the batch
// pair-list text format with defaultRel filling unlabeled lines.
func ParseRequests(r io.Reader, defaultRel string) ([]CheckRequest, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	for _, c := range data {
		switch c {
		case ' ', '\t', '\n', '\r':
			continue
		case '{', '[':
			return DecodeRequests(data)
		}
		break
	}
	return ParseBatchList(strings.NewReader(string(data)), defaultRel)
}

// ParseBatchList reads the CLI's batch pair list: one query per line,
//
//	[RELATION] A B
//
// where RELATION is any ParseRelation name (defaultRel when omitted) and
// A, B are process sources — file paths, "expr:" expressions, or anything
// else a ProcessLoader resolves. Blank lines and '#' comments are
// skipped. Each line becomes a labeled CheckRequest.
func ParseBatchList(r io.Reader, defaultRel string) ([]CheckRequest, error) {
	var reqs []CheckRequest
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		relName := defaultRel
		switch len(fields) {
		case 2:
			// A relation name in first position means the second process
			// was forgotten; diagnose that instead of failing to open a
			// file literally called "weak". (Prefix a path with ./ in the
			// unlikely case a process file shares a relation name.)
			if _, _, err := ParseRelation(fields[0]); err == nil {
				return nil, fmt.Errorf("line %d: relation %q needs two process arguments", lineNo, fields[0])
			}
		case 3:
			relName = fields[0]
			fields = fields[1:]
		default:
			return nil, fmt.Errorf("line %d: want [RELATION] A B, got %d fields", lineNo, len(fields))
		}
		if _, _, err := ParseRelation(relName); err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		reqs = append(reqs, NewCheck(relName, fields[0], fields[1],
			WithLabel(fmt.Sprintf("%s %s %s", relName, fields[0], fields[1]))))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(reqs) == 0 {
		return nil, fmt.Errorf("no queries in list")
	}
	return reqs, nil
}

// ParseNetworkDescription reads the CLI's network description:
//
//	name N                      # optional network name
//	component A [old=new ...]   # add an instance of process source A,
//	                            # optionally relabeling its actions
//	component 5 x A [old=new ...] # add 5 instances of A (parameterized
//	                            # instantiation; same relabeling for each)
//	sync A B ... [-> RES]       # n-way rendezvous: distinct components
//	                            # jointly fire A, B, ... as one step
//	                            # labelled RES (omitted -> internal tau)
//	hide NAME...                # restrict channels (handshakes survive)
//	spec S                      # the specification process source
//	rel REL                     # relation name (returned separately)
//
// '#' starts a comment. The description parses into the data form; pass
// the result to Checker.Do via NewNetworkCheck, or materialize it with
// NetworkRequest.BuildNetwork. rel is empty when the description has no
// rel directive.
func ParseNetworkDescription(r io.Reader) (NetworkRequest, string, error) {
	var nr NetworkRequest
	var rel string
	fail := func(lineNo int, format string, args ...any) (NetworkRequest, string, error) {
		return NetworkRequest{}, "", fmt.Errorf("line %d: %s", lineNo, fmt.Sprintf(format, args...))
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "name":
			if len(fields) != 2 {
				return fail(lineNo, "name wants one argument")
			}
			nr.Name = fields[1]
		case "component":
			if len(fields) < 2 {
				return fail(lineNo, "component wants a process argument")
			}
			// Parameterized form: "component COUNT x NAME [old=new ...]".
			// COUNT must be all digits and be followed by a literal "x",
			// so a process file named "2" still parses in the plain form.
			count := 0
			rest := fields[1:]
			if len(rest) >= 3 && rest[1] == "x" && isAllDigits(rest[0]) {
				n, err := strconv.Atoi(rest[0])
				if err != nil || n < 1 {
					return fail(lineNo, "component count %q is not a positive integer", rest[0])
				}
				count = n
				rest = rest[2:]
			}
			var relabel map[string]string
			for _, pair := range rest[1:] {
				old, to, ok := strings.Cut(pair, "=")
				if !ok || old == "" || to == "" {
					return fail(lineNo, "relabeling %q is not old=new", pair)
				}
				if relabel == nil {
					relabel = map[string]string{}
				}
				relabel[old] = to
			}
			nr.Components = append(nr.Components, NetworkComponentRef{Process: rest[0], Relabel: relabel, Count: count})
		case "sync":
			args := fields[1:]
			result := ""
			if i := indexOf(args, "->"); i >= 0 {
				if i != len(args)-2 {
					return fail(lineNo, "sync wants PART PART ... [-> RESULT]")
				}
				result = args[len(args)-1]
				args = args[:i]
			}
			if len(args) < 2 {
				return fail(lineNo, "sync wants at least two parts")
			}
			nr.Sync = append(nr.Sync, NetworkSyncRule{Parts: append([]string(nil), args...), Result: result})
		case "hide":
			if len(fields) < 2 {
				return fail(lineNo, "hide wants channel names")
			}
			nr.Hide = append(nr.Hide, fields[1:]...)
		case "spec":
			if len(fields) != 2 {
				return fail(lineNo, "spec wants one process argument")
			}
			nr.Spec = fields[1]
		case "rel":
			if len(fields) != 2 {
				return fail(lineNo, "rel wants one relation name")
			}
			rel = fields[1]
		default:
			return fail(lineNo, "unknown directive %q", fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return NetworkRequest{}, "", err
	}
	if len(nr.Components) == 0 {
		return NetworkRequest{}, "", fmt.Errorf("network description has no component directives")
	}
	return nr, rel, nil
}

// isAllDigits reports whether s is a nonempty ASCII-digit string.
func isAllDigits(s string) bool {
	if s == "" {
		return false
	}
	for _, c := range s {
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}

// indexOf returns the index of the first occurrence of want in ss, or -1.
func indexOf(ss []string, want string) int {
	for i, s := range ss {
		if s == want {
			return i
		}
	}
	return -1
}
