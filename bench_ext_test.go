// Benchmarks for the extension machinery: composition products, the
// simulation preorder, observation congruence, failures refinement, and
// extended (intersection) star expressions (experiment E14).
package ccs_test

import (
	"fmt"
	"math/rand"
	"testing"

	"ccs/internal/core"
	"ccs/internal/expr"
	"ccs/internal/failures"
	"ccs/internal/fsp"
	"ccs/internal/gen"
	"ccs/internal/simulation"
)

func BenchmarkComposeRestrict(b *testing.B) {
	// Chains of cells: composing k one-place buffers explores the product
	// space (2^k states before restriction-pruning).
	for _, k := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("cells=%d", k), func(b *testing.B) {
			cells := make([]*fsp.FSP, k)
			for i := range cells {
				bd := fsp.NewBuilder(fmt.Sprintf("cell%d", i))
				bd.AddStates(2)
				in := fmt.Sprintf("c%d", i)
				out := fmt.Sprintf("c%d'", i+1)
				bd.ArcName(0, in, 1)
				bd.ArcName(1, out, 0)
				cells[i] = bd.MustBuild()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cur := cells[0]
				var err error
				for j := 1; j < k; j++ {
					cur, err = fsp.Compose(cur, cells[j])
					if err != nil {
						b.Fatal(err)
					}
				}
				if _, err := fsp.Restrict(cur, "c1", "c2", "c3"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSimulationPreorder(b *testing.B) {
	for _, n := range []int{16, 64, 128} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			f := gen.RandomRestricted(rng, n, 3*n, 2)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				simulation.Preorder(f)
			}
		})
	}
}

func BenchmarkObservationCongruence(b *testing.B) {
	for _, n := range []int{64, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			f := gen.Random(rng, n, 3*n, 2, 0.3)
			g := gen.Random(rng, n, 3*n, 2, 0.3)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.ObservationCongruent(f, g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFailureRefinement(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	spec := gen.RandomRestricted(rng, 12, 30, 2)
	impl := gen.RandomRestricted(rng, 12, 30, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := failures.RefinesProcesses(spec, impl); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE14ExtendedRepresentative(b *testing.B) {
	exprs := map[string]string{
		"depth2": "(aa)*&(aaa)*",
		"depth3": "(aa)*&(aaa)*&(aaaaa)*",
		"depth4": "(aa)*&(aaa)*&(aaaaa)*&(aaaaaaa)*",
	}
	for name, src := range exprs {
		b.Run(name, func(b *testing.B) {
			e := expr.MustParse(src)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := expr.Representative(e); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkQuotientWeak(b *testing.B) {
	for _, n := range []int{64, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			f := gen.Random(rng, n, 3*n, 2, 0.3)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := core.QuotientWeak(f); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
