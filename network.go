package ccs

import (
	"context"

	"ccs/internal/compose"
	"ccs/internal/engine"
)

// Network describes a network of communicating processes: the CCS parallel
// composition of its components, each optionally relabeled, with the
// Hidden channels restricted afterwards — (C1[f1] | ... | Ck[fk]) \ Hidden.
// Build one with NewNetwork and the Add/Hide methods; materialize the
// composed process with its FSP method or, preferably, check it through
// Checker.CheckNetwork, which minimizes each component before composing
// (see internal/compose and internal/engine for the machinery and the
// soundness argument).
type Network = compose.Network

// NetworkComponent is one process instance inside a Network with its
// optional relabeling.
type NetworkComponent = compose.Component

// SyncRule is one n-way rendezvous vector of a network's synchronization
// table: distinct components jointly fire the Parts (post-relabeling
// action names, one part each) as a single product step labelled Result
// ("" or "tau" for an internal step). Append rules with Network.AddSync;
// a network without rules is plain pairwise CCS. See internal/compose for
// the full semantics (restriction prunes a hidden visible result but
// leaves a rendezvous over hidden parts intact).
type SyncRule = compose.SyncRule

// NewNetwork returns a network over the given components with no
// relabeling and nothing hidden; extend it with Add and Hide.
func NewNetwork(name string, components ...*Process) *Network {
	return compose.New(name, components...)
}

// ComposeNetwork materializes the flat product of the network — every
// reachable composed state, with no component minimization. On tau-rich
// components this is exponentially larger than the minimize-then-compose
// route; prefer MinimizeNetwork or Checker.CheckNetwork for anything big.
func ComposeNetwork(net *Network) (*Process, error) { return net.FSP() }

// MinimizeNetwork returns the minimize-then-compose product of the
// network: every component is quotiented by observation congruence ≈ᶜ (a
// full CCS congruence, so the substitution is sound in any network
// context) and the product of the minima is composed. The result is
// observation-congruent — hence observationally equivalent — to the flat
// product.
func MinimizeNetwork(net *Network) (*Process, error) {
	// Delegate to a single-use engine checker: its artifact cache
	// quotients each structurally distinct component exactly once, so a
	// network instantiating one cell many times minimizes it once.
	return NewChecker().e.ComposeNetwork(context.Background(), net, engine.Congruence)
}

// CheckNetwork decides whether the composed network is related to spec by
// rel through a Checker's minimize-then-compose pipeline: each component
// is replaced by its cached quotient before the product is taken, so
// repeated checks — and networks sharing components — reuse the expensive
// work. k is the bound for the approximant relations returned by
// ParseRelation and is ignored otherwise.
func (c *Checker) CheckNetwork(ctx context.Context, net *Network, spec *Process, rel Relation, k int) (bool, error) {
	er, err := relationToEngine(rel)
	if err != nil {
		return false, err
	}
	return c.e.CheckNetwork(ctx, net, spec, er, k)
}

// CheckNetwork is the convenience form of Checker.CheckNetwork with a
// fresh single-use checker.
func CheckNetwork(ctx context.Context, net *Network, spec *Process, rel Relation, k int) (bool, error) {
	return NewChecker().CheckNetwork(ctx, net, spec, rel, k)
}

// CheckNetworkOTF decides the same query as CheckNetwork on the
// on-the-fly route: components and spec are quotiented through the cache
// as usual, but the product of the minima is never materialized — a lazy
// bisimulation game (internal/otf) explores the reachable product-vs-spec
// pair space in parallel and returns on the first mismatch. Networks
// whose (even minimized) product is too large to build can still be
// checked this way, and inequivalent instances are often decided after a
// vanishing fraction of the product. Deterministic specs play the game
// directly; nondeterministic or tau-bearing specs are determinized
// lazily by the subset construction, sound as long as their
// nondeterminism is inessential (every subset the game meets holds
// equivalent states — true of tau detours, refresh loops and confluent
// choices). The game covers Strong, Weak and Congruence; uncovered
// relations, epsilon-tainted specs, and specs with essential
// nondeterminism fall back to minimize-then-compose, so the verdict
// always agrees with CheckNetwork — CheckNetworkOTFInfo reports which
// route was taken and why.
func (c *Checker) CheckNetworkOTF(ctx context.Context, net *Network, spec *Process, rel Relation, k int) (bool, error) {
	eq, _, err := c.CheckNetworkOTFInfo(ctx, net, spec, rel, k)
	return eq, err
}

// NetworkOTFInfo reports how CheckNetworkOTFInfo answered a query: the
// route taken (RouteOTF, RouteOTFDeterminized, or RouteMTCFallback with
// the reason), the game's exploration stats, and, on inequivalence, its
// distinguishing trace with the mismatch reason (see the
// CounterexampleString method).
type NetworkOTFInfo = engine.OTFInfo

// Routes a CheckNetworkOTFInfo query can take, re-exported from the
// engine so callers can switch on NetworkOTFInfo.Route without
// duplicating the strings.
const (
	RouteOTF             = engine.RouteOTF
	RouteOTFDeterminized = engine.RouteOTFDeterminized
	RouteMTCFallback     = engine.RouteMTCFallback
)

// CheckNetworkOTFInfo is Checker.CheckNetworkOTF plus the route taken,
// for callers that report or assert on it.
func (c *Checker) CheckNetworkOTFInfo(ctx context.Context, net *Network, spec *Process, rel Relation, k int) (bool, NetworkOTFInfo, error) {
	er, err := relationToEngine(rel)
	if err != nil {
		return false, NetworkOTFInfo{}, err
	}
	return c.e.CheckNetworkOTFInfo(ctx, net, spec, er, k)
}

// CheckNetworkOTF is the convenience form of Checker.CheckNetworkOTF with
// a fresh single-use checker.
func CheckNetworkOTF(ctx context.Context, net *Network, spec *Process, rel Relation, k int) (bool, error) {
	return NewChecker().CheckNetworkOTF(ctx, net, spec, rel, k)
}
