package ccs_test

import (
	"math/rand"
	"testing"

	"ccs"
	"ccs/internal/core"
	"ccs/internal/expr"
	"ccs/internal/fsp"
	"ccs/internal/gen"
	"ccs/internal/hml"
	"ccs/internal/kequiv"
)

// TestPipelineExpressionToVerdicts drives the full stack end to end on
// random expressions: parse -> representative -> interchange round trip ->
// quotient -> verdict consistency across modules.
func TestPipelineExpressionToVerdicts(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 80; trial++ {
		e1 := gen.RandomExpr(rng, 1+rng.Intn(6), 2)
		e2 := gen.RandomExpr(rng, 1+rng.Intn(6), 2)

		// Expression-level and process-level answers must agree.
		exprEq, err := expr.CCSEquivalent(e1, e2)
		if err != nil {
			t.Fatal(err)
		}
		p1, err := ccs.FromExpression(e1.String())
		if err != nil {
			t.Fatalf("reparse %q: %v", e1, err)
		}
		p2, err := ccs.FromExpression(e2.String())
		if err != nil {
			t.Fatalf("reparse %q: %v", e2, err)
		}
		procEq, err := ccs.StronglyEquivalent(p1, p2)
		if err != nil {
			t.Fatal(err)
		}
		if exprEq != procEq {
			t.Fatalf("trial %d: expression verdict %v != process verdict %v for %q vs %q",
				trial, exprEq, procEq, e1, e2)
		}

		// Interchange format round trip preserves every equivalence.
		back, err := ccs.ParseProcessString(ccs.FormatProcess(p1))
		if err != nil {
			t.Fatal(err)
		}
		same, err := ccs.StronglyEquivalent(p1, back)
		if err != nil || !same {
			t.Fatalf("trial %d: IO round trip broke %q: %v %v", trial, e1, same, err)
		}

		// The strong quotient is a fixed point and preserves all verdicts.
		q1, err := ccs.MinimizeStrong(p1)
		if err != nil {
			t.Fatal(err)
		}
		qEq, err := ccs.StronglyEquivalent(q1, p2)
		if err != nil {
			t.Fatal(err)
		}
		if qEq != procEq {
			t.Fatalf("trial %d: quotient changed the verdict", trial)
		}

		// If strongly inequivalent, an HML formula must exist and
		// distinguish within the disjoint union.
		if !procEq {
			u, off, err := fsp.DisjointUnion(p1, p2)
			if err != nil {
				t.Fatal(err)
			}
			phi, err := hml.Distinguish(u, p1.Start(), off+p2.Start())
			if err != nil {
				t.Fatalf("trial %d: no formula for inequivalent pair: %v", trial, err)
			}
			if !hml.Satisfies(u, p1.Start(), phi) || hml.Satisfies(u, off+p2.Start(), phi) {
				t.Fatalf("trial %d: formula %s does not distinguish", trial, phi)
			}
		}
	}
}

// TestPipelineWeakConsistency checks the three independent routes to
// observational equivalence on random tau-ful processes: saturation+
// partitioning (core), the ≃_k fixed point (core/partition), and the ≈_k
// fixed point (kequiv).
func TestPipelineWeakConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	for trial := 0; trial < 40; trial++ {
		f := gen.Random(rng, 2+rng.Intn(6), rng.Intn(14), 2, 0.4)

		weak, err := core.WeakPartition(f)
		if err != nil {
			t.Fatal(err)
		}
		lim, _, err := core.LimitedPartition(f, -1)
		if err != nil {
			t.Fatal(err)
		}
		kfix, _, err := kequiv.Partition(f, -1)
		if err != nil {
			t.Fatal(err)
		}
		if !weak.Equal(lim) || !weak.Equal(kfix) {
			t.Fatalf("trial %d: three routes to ≈ disagree:\nweak %v\nlim %v\nkfix %v\n%s",
				trial, weak.Blocks(), lim.Blocks(), kfix.Blocks(), fsp.FormatString(f))
		}
	}
}

// TestPipelineCompositionAlgebra checks algebraic laws of the Section 6
// operators up to observational equivalence: composition is commutative
// and associative (up to ≈), restriction distributes over unused names.
func TestPipelineCompositionAlgebra(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	for trial := 0; trial < 25; trial++ {
		a := gen.RandomRestricted(rng, 2+rng.Intn(3), rng.Intn(4), 2)
		b := gen.RandomRestricted(rng, 2+rng.Intn(3), rng.Intn(4), 2)
		c := gen.RandomRestricted(rng, 2, rng.Intn(3), 2)

		ab, err := fsp.Compose(a, b)
		if err != nil {
			t.Fatal(err)
		}
		ba, err := fsp.Compose(b, a)
		if err != nil {
			t.Fatal(err)
		}
		comm, err := core.WeakEquivalent(ab, ba)
		if err != nil {
			t.Fatal(err)
		}
		if !comm {
			t.Fatalf("trial %d: composition not commutative up to ≈", trial)
		}

		abc1, err := fsp.Compose(ab, c)
		if err != nil {
			t.Fatal(err)
		}
		bc, err := fsp.Compose(b, c)
		if err != nil {
			t.Fatal(err)
		}
		abc2, err := fsp.Compose(a, bc)
		if err != nil {
			t.Fatal(err)
		}
		assoc, err := core.WeakEquivalent(abc1, abc2)
		if err != nil {
			t.Fatal(err)
		}
		if !assoc {
			t.Fatalf("trial %d: composition not associative up to ≈", trial)
		}

		// Restricting a name no process uses is the identity up to ~.
		ra, err := fsp.Restrict(a, "unused")
		if err != nil {
			t.Fatal(err)
		}
		id, err := core.StrongEquivalent(a, ra)
		if err != nil {
			t.Fatal(err)
		}
		if !id {
			t.Fatalf("trial %d: restriction on an unused name changed the process", trial)
		}
	}
}
