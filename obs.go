package ccs

import (
	"context"
	"time"

	"ccs/internal/obs"
)

// This file is the facade's observability surface. The metrics registry
// and the span tracer live in internal/obs; what the public API needs is
// re-exported here so callers (the CLI's -progress flag, embedders) can
// hook a running check without importing an internal package.

// OTFProgress is one snapshot of a running on-the-fly network check:
// cumulative pair counts, per-worker deque depths and steal totals, taken
// on a timer by the scheduler's sampler. The last snapshot of a run has
// Final set and exact final counts.
type OTFProgress = obs.OTFSnapshot

// OTFProgressFunc receives progress snapshots. It is called from the
// scheduler's sampler goroutine — keep it cheap and do not block.
type OTFProgressFunc = obs.OTFProgressFunc

// WithOTFProgress installs a progress hook for any on-the-fly network
// check run under ctx: fn receives an OTFProgress roughly every interval
// (≤ 0 means the 500ms default) and once more, with Final set, when the
// exploration ends.
func WithOTFProgress(ctx context.Context, fn OTFProgressFunc, interval time.Duration) context.Context {
	return obs.WithOTFProgress(ctx, fn, interval)
}

// MetricsRegistry returns the process-wide metrics registry the facade,
// engine and store report into; internal/server exposes it at /metrics.
func MetricsRegistry() *obs.Registry { return obs.Default() }

// Facade-level query metrics: every Do/DoAll call lands here, labeled by
// the route actually taken, with the on-the-fly exploration totals
// accumulated from each report.
var (
	mQueries = obs.Default().CounterVec("ccs_queries_total",
		"Queries answered by the facade, by route actually taken.", "route")
	mQueryErrors = obs.Default().CounterVec("ccs_query_errors_total",
		"Failed queries, by error kind (input, check, timeout, canceled).", "kind")
	mQuerySeconds = obs.Default().Histogram("ccs_query_seconds",
		"Wall time per query, all routes.", obs.DefBuckets())
	mOTFPairs = obs.Default().Counter("ccs_otf_pairs_total",
		"Product-spec pairs interned across on-the-fly checks.")
	mOTFExplored = obs.Default().Counter("ccs_otf_explored_total",
		"Pairs whose local game checks ran across on-the-fly checks.")
	mOTFSteals = obs.Default().Counter("ccs_otf_steals_total",
		"Successful batch steals across on-the-fly checks.")
)

// recordQueryMetrics folds one finished report into the registry; called
// from do's deferred bookkeeping, after ElapsedMS is final.
func recordQueryMetrics(rep *Report) {
	route := rep.Route
	if route == "" {
		route = "none" // request rejected before routing
	}
	mQueries.With(route).Inc()
	mQuerySeconds.Observe(rep.ElapsedMS / 1e3)
	if rep.Error != nil {
		mQueryErrors.With(rep.Error.Kind).Inc()
	}
	if rep.OTF != nil {
		mOTFPairs.Add(int64(rep.OTF.Pairs))
		mOTFExplored.Add(int64(rep.OTF.Explored))
		mOTFSteals.Add(int64(rep.OTF.Steals))
	}
}

// renderTrace converts the internal trace into the report's wire form.
func renderTrace(tr *obs.Trace) *TraceReport {
	spans := tr.Spans()
	out := &TraceReport{ID: tr.ID(), Spans: make([]TraceSpan, 0, len(spans))}
	for _, sp := range spans {
		ts := TraceSpan{
			Phase:      sp.Phase,
			StartMS:    float64(sp.Start) / float64(time.Millisecond),
			DurationMS: float64(sp.Duration) / float64(time.Millisecond),
		}
		if len(sp.Attrs) > 0 {
			ts.Attrs = make(map[string]string, len(sp.Attrs))
			for _, a := range sp.Attrs {
				ts.Attrs[a.Key] = a.Value
			}
		}
		out.Spans = append(out.Spans, ts)
	}
	return out
}
