package ccs_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"ccs"
)

const (
	inlineTauA = "fsp TauA\nalphabet a\nstates 3\narc 0 tau 1\narc 1 a 2\n"
	inlineA    = "fsp A\nalphabet a\nstates 2\narc 0 a 1\n"
)

func TestDoPairBasics(t *testing.T) {
	c := ccs.NewChecker()
	ctx := context.Background()

	rep := c.Do(ctx, ccs.NewCheck("weak", "expr:a+a", "expr:a"), nil)
	if rep.Error != nil {
		t.Fatalf("weak a+a vs a: %v", rep.Error)
	}
	if !rep.Equivalent || rep.Route != ccs.RouteDirect || rep.Relation != "weak" {
		t.Fatalf("unexpected report: %+v", rep)
	}
	if rep.ElapsedMS < 0 {
		t.Fatalf("negative elapsed: %+v", rep)
	}

	// Two inline interchange texts: tau.a ≈ a but not ≈ᶜ.
	rep = c.Do(ctx, ccs.NewCheck("weak", inlineTauA, inlineA), nil)
	if rep.Error != nil || !rep.Equivalent {
		t.Fatalf("tau.a ≈ a: %+v", rep)
	}
	rep = c.Do(ctx, ccs.NewCheck("congruence", inlineTauA, inlineA), nil)
	if rep.Error != nil || rep.Equivalent {
		t.Fatalf("tau.a ≈ᶜ a should fail: %+v", rep)
	}
}

func TestDoRelationNames(t *testing.T) {
	c := ccs.NewChecker()
	ctx := context.Background()
	for _, rel := range []string{"strong", "weak", "trace", "congruence", "simulation", "k2", "limited3"} {
		rep := c.Do(ctx, ccs.NewCheck(rel, "expr:ab", "expr:ab"), nil)
		if rep.Error != nil || !rep.Equivalent {
			t.Fatalf("%s reflexive check: %+v", rel, rep)
		}
	}
	rep := c.Do(ctx, ccs.NewCheck("frobnicate", "expr:a", "expr:a"), nil)
	if rep.Error == nil || rep.Error.Kind != ccs.ErrorKindInput {
		t.Fatalf("unknown relation: %+v", rep)
	}
}

func TestDoInputErrors(t *testing.T) {
	c := ccs.NewChecker()
	ctx := context.Background()
	for name, req := range map[string]ccs.CheckRequest{
		"missing q":           {Relation: "weak", P: "expr:a"},
		"missing relation":    {P: "expr:a", Q: "expr:a"},
		"bad expression":      ccs.NewCheck("weak", "expr:((", "expr:a"),
		"bad inline text":     ccs.NewCheck("weak", "states nope\n", "expr:a"),
		"file ref, no loader": ccs.NewCheck("weak", "/no/such/file", "expr:a"),
		"bad route":           ccs.NewCheck("weak", "expr:a", "expr:a", ccs.WithRoute("mtc")),
		"mixed pair+network": {Relation: "weak", P: "expr:a", Q: "expr:a",
			Network: &ccs.NetworkRequest{Components: []ccs.NetworkComponentRef{{Process: "expr:a"}}}},
	} {
		rep := c.Do(ctx, req, nil)
		if rep.Error == nil || rep.Error.Kind != ccs.ErrorKindInput {
			t.Fatalf("%s: want input error, got %+v", name, rep)
		}
	}
}

func TestDoExplain(t *testing.T) {
	c := ccs.NewChecker()
	ctx := context.Background()
	rep := c.Do(ctx, ccs.NewCheck("strong", "expr:a+b", "expr:a", ccs.WithExplain()), nil)
	if rep.Error != nil || rep.Equivalent {
		t.Fatalf("a+b ~ a should be inequivalent: %+v", rep)
	}
	if rep.Counterexample == "" {
		t.Fatalf("explain produced no witness: %+v", rep)
	}
	rep = c.Do(ctx, ccs.NewCheck("trace", "expr:ab", "expr:ac", ccs.WithExplain()), nil)
	if rep.Error != nil || rep.Equivalent || rep.Counterexample == "" {
		t.Fatalf("trace witness: %+v", rep)
	}
}

func TestDoNetwork(t *testing.T) {
	cell := "fsp cell\nalphabet in mid' \nstates 2\narc 0 in 1\narc 1 mid' 0\n"
	cell2 := "fsp cell2\nalphabet mid out'\nstates 2\narc 0 mid 1\narc 1 out' 0\n"
	spec := "fsp spec\nalphabet in out'\nstates 2\narc 0 in 1\narc 1 out' 0\n"
	net := ccs.NetworkRequest{
		Name: "chain",
		Components: []ccs.NetworkComponentRef{
			{Process: cell},
			{Process: cell2},
		},
		Hide: []string{"mid"},
		Spec: spec,
	}
	c := ccs.NewChecker()
	ctx := context.Background()

	for _, route := range []string{"", ccs.RouteAuto, "otf", ccs.RouteMTC} {
		req := ccs.NewNetworkCheck("weak", net)
		if route != "" {
			req = ccs.NewNetworkCheck("weak", net, ccs.WithRoute(route))
		}
		rep := c.Do(ctx, req, nil)
		if rep.Error != nil {
			t.Fatalf("route %q: %v", route, rep.Error)
		}
		if rep.Equivalent {
			// Two-cell buffer vs one-slot spec: the chain can hold two
			// items, the spec cannot — inequivalent under ≈.
			t.Fatalf("route %q: chain ≈ one-slot spec unexpectedly: %+v", route, rep)
		}
		if rep.Route == "" {
			t.Fatalf("route %q: no route reported: %+v", route, rep)
		}
		if rep.Relation != "weak" {
			t.Fatalf("route %q: relation %q", route, rep.Relation)
		}
	}

	// Default relation for networks is weak.
	rep := c.Do(ctx, ccs.CheckRequest{Network: &net}, nil)
	if rep.Error != nil || rep.Relation != "weak" {
		t.Fatalf("default network relation: %+v", rep)
	}

	// Spec-less network request is an input error through Do.
	noSpec := net
	noSpec.Spec = ""
	rep = c.Do(ctx, ccs.NewNetworkCheck("weak", noSpec), nil)
	if rep.Error == nil || rep.Error.Kind != ccs.ErrorKindInput {
		t.Fatalf("spec-less network: %+v", rep)
	}
}

func TestDoNetworkAgreesAcrossRoutes(t *testing.T) {
	// An equivalent pair: one cell chain against its own minimized spec.
	cell := "fsp cell\nalphabet in out'\nstates 2\narc 0 in 1\narc 1 out' 0\n"
	net := ccs.NetworkRequest{
		Components: []ccs.NetworkComponentRef{{Process: cell}},
		Spec:       cell,
	}
	c := ccs.NewChecker()
	ctx := context.Background()
	auto := c.Do(ctx, ccs.NewNetworkCheck("weak", net), nil)
	mtc := c.Do(ctx, ccs.NewNetworkCheck("weak", net, ccs.WithRoute(ccs.RouteMTC)), nil)
	if auto.Error != nil || mtc.Error != nil {
		t.Fatalf("errors: %+v / %+v", auto.Error, mtc.Error)
	}
	if auto.Equivalent != mtc.Equivalent || !auto.Equivalent {
		t.Fatalf("routes disagree: auto=%+v mtc=%+v", auto, mtc)
	}
}

func TestDoAllOrderAndSharing(t *testing.T) {
	c := ccs.NewChecker()
	reqs := []ccs.CheckRequest{
		ccs.NewCheck("weak", "expr:a+a", "expr:a", ccs.WithLabel("first")),
		ccs.NewCheck("strong", "expr:a(b+c)", "expr:ab+ac", ccs.WithLabel("second")),
		ccs.NewCheck("bogus", "expr:a", "expr:a", ccs.WithLabel("third")),
	}
	reps := c.DoAll(context.Background(), reqs, 2, nil)
	if len(reps) != 3 {
		t.Fatalf("want 3 reports, got %d", len(reps))
	}
	if reps[0].Label != "first" || !reps[0].Equivalent || reps[0].Error != nil {
		t.Fatalf("report 0: %+v", reps[0])
	}
	if reps[1].Label != "second" || reps[1].Equivalent || reps[1].Error != nil {
		t.Fatalf("report 1: %+v", reps[1])
	}
	if reps[2].Label != "third" || reps[2].Error == nil || reps[2].Error.Kind != ccs.ErrorKindInput {
		t.Fatalf("report 2: %+v", reps[2])
	}
}

func TestDoAllTimeoutAndCancel(t *testing.T) {
	c := ccs.NewChecker()
	// An already-expired context: every request must report a timeout, and
	// the report slice must still be complete and ordered.
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	reqs := []ccs.CheckRequest{
		ccs.NewCheck("weak", "expr:a", "expr:a", ccs.WithLabel("t0")),
		ccs.NewCheck("weak", "expr:b", "expr:b", ccs.WithLabel("t1")),
	}
	for i, rep := range c.DoAll(ctx, reqs, 1, nil) {
		if rep.Error == nil || rep.Error.Kind != ccs.ErrorKindTimeout {
			t.Fatalf("report %d: want timeout, got %+v", i, rep)
		}
	}

	// A canceled context reports the canceled kind.
	ctx2, cancel2 := context.WithCancel(context.Background())
	cancel2()
	rep := c.Do(ctx2, ccs.NewCheck("weak", "expr:a", "expr:a"), nil)
	if rep.Error == nil || rep.Error.Kind != ccs.ErrorKindCanceled {
		t.Fatalf("canceled: %+v", rep)
	}

	// A per-request timeout via the option: expired before the check
	// starts, since the deadline is in the past relative to work done.
	req := ccs.NewCheck("weak", "expr:a", "expr:a", ccs.WithTimeout(time.Nanosecond))
	if req.TimeoutMS != 1 {
		t.Fatalf("sub-millisecond timeout must round up: %+v", req)
	}
}

func TestDoLoaderMemoization(t *testing.T) {
	calls := map[string]int{}
	loader := func(ref string) (*ccs.Process, error) {
		calls[ref]++
		return ccs.FromExpression("a")
	}
	c := ccs.NewChecker()
	reqs := []ccs.CheckRequest{
		ccs.NewCheck("weak", "P", "Q"),
		ccs.NewCheck("strong", "P", "Q"),
		ccs.NewCheck("trace", "Q", "P"),
	}
	// workers=1 keeps the call counting race-free.
	for _, rep := range c.DoAll(context.Background(), reqs, 1, loader) {
		if rep.Error != nil || !rep.Equivalent {
			t.Fatalf("loader batch: %+v", rep)
		}
	}
	if calls["P"] != 1 || calls["Q"] != 1 {
		t.Fatalf("loader not memoized per batch: %v", calls)
	}
}

func TestStoreCheckerStats(t *testing.T) {
	dir := t.TempDir()
	c, err := ccs.NewStoreChecker(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	rep := c.Do(context.Background(), ccs.NewCheck("weak", "expr:a+a", "expr:a"), nil)
	if rep.Error != nil || !rep.Equivalent {
		t.Fatalf("store-backed check: %+v", rep)
	}
	stats := c.Stats()
	if stats.Store == nil || stats.Store.Writes == 0 {
		t.Fatalf("store-backed checker spilled nothing: %+v", stats)
	}
	if stats.Processes == 0 {
		t.Fatalf("no processes counted: %+v", stats)
	}
	if !strings.Contains(stats.Render(), "store:") {
		t.Fatalf("render misses store section: %q", stats.Render())
	}

	// A second checker on the same directory is warm.
	c2, err := ccs.NewStoreChecker(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	rep = c2.Do(context.Background(), ccs.NewCheck("weak", "expr:a+a", "expr:a"), nil)
	if rep.Error != nil || !rep.Equivalent {
		t.Fatalf("warm check: %+v", rep)
	}
	stats = c2.Stats()
	if stats.Store == nil || stats.Store.Hits == 0 {
		t.Fatalf("second checker saw no store hits: %+v", stats)
	}

	// Memory-only checkers render without the store section.
	if s := ccs.NewChecker().Stats(); s.Store != nil {
		t.Fatalf("memory-only checker reports a store: %+v", s)
	}
}

func TestDeprecatedWrappersStillWork(t *testing.T) {
	p, err := ccs.FromExpression("a+a")
	if err != nil {
		t.Fatal(err)
	}
	q, err := ccs.FromExpression("a")
	if err != nil {
		t.Fatal(err)
	}
	results := ccs.CheckAll(context.Background(), []ccs.Query{{P: p, Q: q, Rel: ccs.Weak}}, 0)
	if len(results) != 1 || results[0].Err != nil || !results[0].Equivalent {
		t.Fatalf("legacy CheckAll: %+v", results)
	}
}
