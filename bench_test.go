// Benchmarks regenerating the paper's quantitative claims, one family per
// experiment of DESIGN.md's index (E1..E13; E5/E9/E11 are verdict tables
// exercised here as fixed-size checks). Run with:
//
//	go test -bench=. -benchmem
//
// Measured shapes are recorded against the paper's claims in EXPERIMENTS.md.
package ccs_test

import (
	"fmt"
	"math/rand"
	"testing"

	"ccs/internal/automata"
	"ccs/internal/core"
	"ccs/internal/expr"
	"ccs/internal/failures"
	"ccs/internal/fsp"
	"ccs/internal/gen"
	"ccs/internal/kequiv"
	"ccs/internal/reductions"
)

// --- E1: Theorem 3.1 — strong equivalence, naive vs Paige-Tarjan ---------

func benchStrong(b *testing.B, algo core.Algorithm, n int) {
	rng := rand.New(rand.NewSource(1))
	f := gen.RandomRestricted(rng, n, 4*n, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.StrongPartition(f, core.WithAlgorithm(algo))
	}
}

func BenchmarkE1StrongEquivalencePaigeTarjan(b *testing.B) {
	for _, n := range []int{64, 256, 1024, 4096} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) { benchStrong(b, core.PaigeTarjan, n) })
	}
}

func BenchmarkE1StrongEquivalenceNaive(b *testing.B) {
	for _, n := range []int{64, 256, 1024, 4096} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) { benchStrong(b, core.Naive, n) })
	}
}

// --- E2: Lemma 3.2 — the naive method's Θ(nm) family ---------------------

func BenchmarkE2NaivePartitionSplitterChain(b *testing.B) {
	for _, n := range []int{64, 256, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			f := gen.SplitterChain(n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.StrongPartition(f, core.WithAlgorithm(core.Naive))
			}
		})
	}
}

func BenchmarkE2PaigeTarjanSplitterChain(b *testing.B) {
	for _, n := range []int{64, 256, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			f := gen.SplitterChain(n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.StrongPartition(f, core.WithAlgorithm(core.PaigeTarjan))
			}
		})
	}
}

// --- E3: Theorem 4.1(a) — observational equivalence is polynomial --------

func BenchmarkE3WeakEquivalence(b *testing.B) {
	for _, n := range []int{64, 256, 512} {
		for _, tau := range []float64{0.1, 0.5} {
			b.Run(fmt.Sprintf("n=%d/tau=%.0f%%", n, tau*100), func(b *testing.B) {
				rng := rand.New(rand.NewSource(1))
				f := gen.Random(rng, n, 4*n, 2, tau)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := core.WeakPartition(f); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- E4: Lemma 2.3.1 — representative FSP construction -------------------

func BenchmarkE4Representative(b *testing.B) {
	for _, ops := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("ops=%d", ops), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			e := gen.RandomExpr(rng, ops, 2)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := expr.Representative(e); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E5: Fig. 2 — the gallery, all three deciders per pair ---------------

func BenchmarkE5Fig2Gallery(b *testing.B) {
	gallery := gen.Fig2Gallery()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, pair := range gallery {
			if _, err := kequiv.Equivalent(pair.P, pair.Q, 1); err != nil {
				b.Fatal(err)
			}
			if _, _, err := failures.Equivalent(pair.P, pair.Q); err != nil {
				b.Fatal(err)
			}
			if _, err := core.WeakEquivalent(pair.P, pair.Q); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- E6: Theorem 4.1(b) — ≈_k on the ladder family ------------------------

func BenchmarkE6KObservationalLadder(b *testing.B) {
	// Pre-build the laddered pairs outside the timed loop.
	type pair struct {
		p, q *fsp.FSP
		k    int
	}
	var pairs []pair
	p := ladderSeedP()
	q := ladderSeedQ()
	for k := 1; k <= 4; k++ {
		pairs = append(pairs, pair{p: p, q: q, k: k})
		var err error
		p, q, err = reductions.Ladder(p, q)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, pr := range pairs {
		b.Run(fmt.Sprintf("k=%d", pr.k+1), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := kequiv.Equivalent(pr.p, pr.q, pr.k+1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func ladderSeedP() *fsp.FSP {
	bd := fsp.NewBuilder("a2+a3")
	bd.AddStates(6)
	bd.ArcName(0, "a", 1)
	bd.ArcName(1, "a", 2)
	bd.ArcName(0, "a", 3)
	bd.ArcName(3, "a", 4)
	bd.ArcName(4, "a", 5)
	for s := fsp.State(0); s < 6; s++ {
		bd.Accept(s)
	}
	return bd.MustBuild()
}

func ladderSeedQ() *fsp.FSP {
	bd := fsp.NewBuilder("a(a+a2)+a")
	bd.AddStates(6)
	bd.ArcName(0, "a", 1)
	bd.ArcName(1, "a", 2)
	bd.ArcName(1, "a", 3)
	bd.ArcName(3, "a", 4)
	bd.ArcName(0, "a", 5)
	for s := fsp.State(0); s < 6; s++ {
		bd.Accept(s)
	}
	return bd.MustBuild()
}

// --- E7: Theorem 5.1 — failure equivalence blowup -------------------------

func BenchmarkE7FailureNondeterministic(b *testing.B) {
	for _, n := range []int{6, 10, 14} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			m := gen.RandomTotal(rng, n, n)
			mp, err := reductions.Lemma42(m)
			if err != nil {
				b.Fatal(err)
			}
			perm := make([]fsp.State, mp.NumStates())
			for i := range perm {
				perm[i] = fsp.State(mp.NumStates() - 1 - i)
			}
			mq, err := fsp.Renumber(mp, perm)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := failures.Equivalent(mp, mq); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkE7FailureDeterministicControl(b *testing.B) {
	for _, n := range []int{24, 40, 56} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			f := detRestricted(rng, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := failures.Equivalent(f, f); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func detRestricted(rng *rand.Rand, n int) *fsp.FSP {
	bd := fsp.NewBuilder("det")
	bd.AddStates(n)
	for s := 0; s < n; s++ {
		bd.ArcName(fsp.State(s), "a", fsp.State(rng.Intn(n)))
		bd.ArcName(fsp.State(s), "b", fsp.State(rng.Intn(n)))
		bd.Accept(fsp.State(s))
	}
	return bd.MustBuild()
}

// --- E8: Lemma 4.2 — universality through the reduction -------------------

func BenchmarkE8UniversalityViaReduction(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := gen.RandomTotal(rng, 8, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mp, err := reductions.Lemma42(m)
		if err != nil {
			b.Fatal(err)
		}
		nfa, err := expr.ToNFA(mp)
		if err != nil {
			b.Fatal(err)
		}
		automata.Universal(nfa)
	}
}

func BenchmarkE8UniversalityDirect(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := gen.RandomTotal(rng, 8, 8)
	nfa, err := expr.ToNFA(m)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		automata.Universal(nfa)
	}
}

// --- E9: Prop. 2.2.3 — the hierarchy on random restricted processes ------

func BenchmarkE9Hierarchy(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	type pr struct{ p, q *fsp.FSP }
	pairs := make([]pr, 16)
	for i := range pairs {
		pairs[i] = pr{
			p: gen.RandomRestricted(rng, 4, 8, 2),
			q: gen.RandomRestricted(rng, 4, 8, 2),
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pair := pairs[i%len(pairs)]
		weak, err := core.WeakEquivalent(pair.p, pair.q)
		if err != nil {
			b.Fatal(err)
		}
		fail, _, err := failures.Equivalent(pair.p, pair.q)
		if err != nil {
			b.Fatal(err)
		}
		trace, err := kequiv.Equivalent(pair.p, pair.q, 1)
		if err != nil {
			b.Fatal(err)
		}
		if (weak && !fail) || (fail && !trace) {
			b.Fatal("hierarchy violated")
		}
	}
}

// --- E10: Prop. 2.2.4 — deterministic collapse ----------------------------

func BenchmarkE10DeterministicPartition(b *testing.B) {
	for _, n := range []int{64, 512} {
		b.Run(fmt.Sprintf("partition/n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			f := gen.RandomDeterministic(rng, n, 2)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.StrongPartition(f)
			}
		})
		b.Run(fmt.Sprintf("unionfind/n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			f := gen.RandomDeterministic(rng, n, 2)
			nfa, err := expr.ToNFA(f)
			if err != nil {
				b.Fatal(err)
			}
			d := automata.Determinize(nfa)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := automata.EquivalentDFA(d, d); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E11: Table I — classifier ---------------------------------------------

func BenchmarkE11Classifier(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	f := gen.Random(rng, 1024, 4096, 3, 0.2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fsp.Classify(f)
	}
}

// --- E12: Section 2.3(3) — distributivity, language vs CCS ----------------

func BenchmarkE12Distributivity(b *testing.B) {
	left := expr.MustParse("a(b+c)")
	right := expr.MustParse("ab+ac")
	b.Run("language", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := expr.LanguageEquivalent(left, right); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ccs", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := expr.CCSEquivalent(left, right); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E13: Fig. 5b/5d — chaos and the trivial-NFA shortcut -----------------

func BenchmarkE13TrivialLinearTest(b *testing.B) {
	for _, n := range []int{64, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			cyc := gen.Cycle(n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := kequiv.EquivalentToTrivial(cyc, cyc.Start()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkE13TrivialGeneralDecider(b *testing.B) {
	trivial := reductions.TrivialNFA("a")
	for _, n := range []int{16, 64} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			cyc := gen.Cycle(n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := kequiv.Equivalent(cyc, trivial, 2); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
