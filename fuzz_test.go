package ccs_test

import (
	"strings"
	"testing"

	"ccs"
)

// FuzzDecodeRequests: the request decoder never panics on arbitrary
// bytes, and every document it accepts survives the encode/decode round
// trip.
func FuzzDecodeRequests(f *testing.F) {
	for _, seed := range []string{
		`{"relation":"weak","p":"expr:a","q":"expr:a"}`,
		`[{"relation":"weak","p":"expr:a","q":"expr:a","label":"pair"}]`,
		`{"schema":1,"requests":[{"relation":"strong","p":"expr:a+a","q":"expr:a","k":2,"route":"mtc"}]}`,
		`{"relation":"weak","network":{"name":"n","components":[{"process":"expr:a","relabel":{"a":"b"}}],"hide":["b"],"spec":"expr:0"}}`,
		`{"relation":"weak","network":{"name":"q","components":[{"process":"expr:aa","count":3}],"sync":[{"parts":["a","a"],"result":"go"}],"hide":["a"],"spec":"expr:c"}}`,
		`{"relation":"weak","network":{"components":[{"process":"expr:a","count":-1}],"sync":[{"parts":["x"]}]}}`,
		`{"schema":99,"requests":[]}`,
		`{"relatoin":"weak"}`,
		`weak expr:a expr:a`,
		`{`, `[]`, `null`, `42`, `"x"`,
		strings.Repeat("[", 200) + strings.Repeat("]", 200),
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		reqs, err := ccs.DecodeRequests(data)
		if err != nil {
			return
		}
		out, err := ccs.EncodeRequests(reqs)
		if err != nil {
			t.Fatalf("accepted document does not re-encode: %v", err)
		}
		if _, err := ccs.DecodeRequests(out); err != nil {
			t.Fatalf("re-encoded document does not decode: %v\n%s", err, out)
		}
	})
}

// FuzzParseNetworkDescription: the line-oriented description parser never
// panics, and accepted descriptions carry at least one component.
func FuzzParseNetworkDescription(f *testing.F) {
	for _, seed := range []string{
		"component procs/a.fsp\ncomponent procs/b.fsp\nhide a\n",
		"name ring\n# comment\ncomponent cell.fsp in=c0 out=c1\ncomponent cell.fsp in=c1 out=c0\nhide c0 c1\nspec spec.fsp\n",
		"component expr:a(b+c)\nspec expr:ab+ac\n",
		"component 3 x cell.fsp in=c0\nsync a a -> go\nhide a\n",
		"component 2 x p.fsp\ncomponent q.fsp\nsync req yes yes\nspec s.fsp\n",
		"component\n", "hide a\n", "spec s.fsp\ncomponent p.fsp\n",
		"name\n", "bogus directive\n", "", "\n\n", "component p.fsp a=\n",
		"component p.fsp =b\n", "component p.fsp a=b=c\n",
		"sync a\n", "component p\nsync a b -> \n", "component p\nsync -> r\n",
		"component 0 x p\n", "component 2 x\n", "component 999999999999999999999 x p\n",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		nr, _, err := ccs.ParseNetworkDescription(strings.NewReader(src))
		if err != nil {
			return
		}
		if len(nr.Components) == 0 {
			t.Fatalf("accepted description %q has no components", src)
		}
	})
}
