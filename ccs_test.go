package ccs

import (
	"strings"
	"testing"
)

func mustExpr(t *testing.T, src string) *Process {
	t.Helper()
	p, err := FromExpression(src)
	if err != nil {
		t.Fatalf("FromExpression(%q): %v", src, err)
	}
	return p
}

func TestFacadeExpressions(t *testing.T) {
	eq, err := CCSEquivalentExpressions("a(b+c)", "ab+ac")
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Errorf("distributivity must fail in CCS")
	}
	lang, err := LanguageEquivalentExpressions("a(b+c)", "ab+ac")
	if err != nil {
		t.Fatal(err)
	}
	if !lang {
		t.Errorf("distributivity must hold for languages")
	}
}

func TestFacadeEquivalences(t *testing.T) {
	p := mustExpr(t, "a(b+c)")
	q := mustExpr(t, "ab+ac")

	strong, err := StronglyEquivalent(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if strong {
		t.Errorf("strong must fail")
	}
	weak, err := ObservationallyEquivalent(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if weak {
		t.Errorf("weak must fail (no taus involved)")
	}
	trace, err := TraceEquivalent(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if !trace {
		t.Errorf("traces coincide")
	}
	k1, err := KObservationallyEquivalent(p, q, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !k1 {
		t.Errorf("≈_1 must hold")
	}
	k2, err := KObservationallyEquivalent(p, q, 2)
	if err != nil {
		t.Fatal(err)
	}
	if k2 {
		t.Errorf("≈_2 must fail")
	}
}

func TestFacadeFailureEquivalence(t *testing.T) {
	// Restricted unary pair with a refusal difference.
	p, err := ParseProcessString("states 3\nstart 0\next 0 x\next 1 x\next 2 x\narc 0 a 1\narc 1 a 2\n")
	if err != nil {
		t.Fatal(err)
	}
	q, err := ParseProcessString("states 4\nstart 0\next 0 x\next 1 x\next 2 x\next 3 x\narc 0 a 1\narc 1 a 2\narc 0 a 3\n")
	if err != nil {
		t.Fatal(err)
	}
	eq, w, err := FailureEquivalent(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Fatalf("refusal difference missed")
	}
	if w == nil || w.Trace == "" || w.Refusal == "" {
		t.Fatalf("witness not rendered: %+v", w)
	}
}

func TestFacadeMinimize(t *testing.T) {
	p := mustExpr(t, "ab+ab+ab")
	min, err := MinimizeStrong(p)
	if err != nil {
		t.Fatal(err)
	}
	if min.NumStates() >= p.NumStates() {
		t.Errorf("minimization did not shrink: %d -> %d", p.NumStates(), min.NumStates())
	}
	eq, err := StronglyEquivalent(p, min)
	if err != nil || !eq {
		t.Errorf("minimized process inequivalent: %v %v", eq, err)
	}

	wmin, err := MinimizeWeak(p)
	if err != nil {
		t.Fatal(err)
	}
	weq, err := ObservationallyEquivalent(p, wmin)
	if err != nil || !weq {
		t.Errorf("weakly minimized process inequivalent: %v %v", weq, err)
	}
}

func TestFacadeExplain(t *testing.T) {
	p := mustExpr(t, "a(b+c)")
	q := mustExpr(t, "ab+ac")
	phi, err := Explain(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(phi, "⟨") {
		t.Errorf("formula looks wrong: %q", phi)
	}
	// Equivalent processes: no formula.
	if _, err := Explain(p, p); err == nil {
		t.Errorf("expected error for equivalent processes")
	}

	// Weak explanation across a tau.
	f, err := ParseProcessString("states 4\nstart 0\narc 0 a 1\narc 0 tau 2\narc 2 b 3\n")
	if err != nil {
		t.Fatal(err)
	}
	g, err := ParseProcessString("states 3\nstart 0\narc 0 a 1\narc 0 b 2\n")
	if err != nil {
		t.Fatal(err)
	}
	wphi, err := ExplainWeak(f, g)
	if err != nil {
		t.Fatal(err)
	}
	if wphi == "" {
		t.Errorf("empty weak formula")
	}
}

func TestParseRelation(t *testing.T) {
	cases := []struct {
		in   string
		rel  Relation
		k    int
		fail bool
	}{
		{in: "strong", rel: Strong},
		{in: "weak", rel: Weak},
		{in: "observational", rel: Weak},
		{in: "trace", rel: Trace},
		{in: "failure", rel: Failure},
		{in: "k3", rel: relationK, k: 3},
		{in: "limited2", rel: relationLimited, k: 2},
		{in: "bogus", fail: true},
		{in: "k-1", fail: true},
		{in: "kx", fail: true},
	}
	for _, tc := range cases {
		rel, k, err := ParseRelation(tc.in)
		if tc.fail {
			if err == nil {
				t.Errorf("ParseRelation(%q) succeeded", tc.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseRelation(%q): %v", tc.in, err)
			continue
		}
		if rel != tc.rel || k != tc.k {
			t.Errorf("ParseRelation(%q) = %v,%d", tc.in, rel, k)
		}
	}
}

func TestEquivalentDispatch(t *testing.T) {
	p := mustExpr(t, "a(b+c)")
	q := mustExpr(t, "ab+ac")
	for _, tc := range []struct {
		relName string
		want    bool
	}{
		{"strong", false},
		{"weak", false},
		{"trace", true},
		{"k1", true},
		{"k2", false},
		{"limited1", true},
		{"limited2", false},
	} {
		rel, k, err := ParseRelation(tc.relName)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Equivalent(p, q, rel, k)
		if err != nil {
			t.Fatalf("%s: %v", tc.relName, err)
		}
		if got != tc.want {
			t.Errorf("%s: got %v, want %v", tc.relName, got, tc.want)
		}
	}
}

func TestModelClasses(t *testing.T) {
	p := mustExpr(t, "ab")
	classes := ModelClasses(p)
	joined := strings.Join(classes, ",")
	if !strings.Contains(joined, "standard observable") {
		t.Errorf("classes = %v", classes)
	}
}

func TestDOTAndFormat(t *testing.T) {
	p := mustExpr(t, "ab")
	if !strings.Contains(DOT(p), "digraph") {
		t.Errorf("DOT output wrong")
	}
	text := FormatProcess(p)
	q, err := ParseProcessString(text)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	eq, err := StronglyEquivalent(p, q)
	if err != nil || !eq {
		t.Errorf("format/parse round trip changed the process")
	}
}

func TestRelationString(t *testing.T) {
	for rel, want := range map[Relation]string{
		Strong: "strong", Weak: "weak", Trace: "trace", Failure: "failure",
		relationK: "k-observational", relationLimited: "k-limited",
		Relation(0): "unknown",
	} {
		if rel.String() != want {
			t.Errorf("String(%d) = %q, want %q", rel, rel.String(), want)
		}
	}
}
