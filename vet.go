package ccs

import (
	"encoding/json"
	"fmt"

	"ccs/internal/vet"
)

// This file is the facade of the static-analysis pass (internal/vet): the
// Diagnostic type and code catalogue re-exported, VetNetwork over built
// networks, VetNetworkRequest over the data form the schema and the server
// speak, and the versioned VetReport JSON document behind `ccs vet -json`
// and POST /v1/vet.

// Diagnostic is one static-analysis finding about a network or spec: a
// machine-readable code and severity, a position (component index, spec
// marker, channel name), and a human-readable message. See the Code*
// constants for the catalogue. The JSON form is shared by
// Report.Diagnostics, VetReport and the /v1/vet endpoint.
type Diagnostic = vet.Diagnostic

// The diagnostic code catalogue, re-exported from internal/vet; see each
// code's documentation there.
const (
	CodeDeadSync          = vet.CodeDeadSync
	CodeRestrictionSink   = vet.CodeRestrictionSink
	CodeRelabelCollision  = vet.CodeRelabelCollision
	CodeRelabelRestricted = vet.CodeRelabelRestricted
	CodeSortMismatch      = vet.CodeSortMismatch
	CodeTauDivergence     = vet.CodeTauDivergence
	CodeUnguardedStart    = vet.CodeUnguardedStart
	CodeUndefinedChannel  = vet.CodeUndefinedChannel
	// CodeUnsatisfiableVector flags a synchronization-table rule that can
	// never fire (ghost part, or more parts than components able to supply
	// them) or whose visible result the restriction prunes.
	CodeUnsatisfiableVector = vet.CodeUnsatisfiableVector
)

// Diagnostic severities.
const (
	SeverityError   = vet.SeverityError
	SeverityWarning = vet.SeverityWarning
)

// VetNetwork statically analyzes a built network and an optional spec (nil
// skips the spec-side analyzers) and returns the findings. The error is
// non-nil only for a malformed network (Validate fails); defects of a
// well-formed network are diagnostics.
func VetNetwork(net *Network, spec *Process) ([]Diagnostic, error) {
	return vet.Network(net, spec)
}

// VetHasErrors reports whether any finding is an error — the bar
// `-strict-vet` and exit codes care about.
func VetHasErrors(diags []Diagnostic) bool { return vet.HasErrors(diags) }

// VetNetworkRequest resolves the request's components and spec (external
// references through load, exactly as Checker.Do would) and statically
// analyzes the result. Unlike Do, a missing spec is fine — the network is
// then vetted alone.
func VetNetworkRequest(nr NetworkRequest, load ProcessLoader) ([]Diagnostic, error) {
	net, spec, err := nr.BuildNetwork(load)
	if err != nil {
		return nil, err
	}
	return VetNetwork(net, spec)
}

// VetReport is the outcome of statically analyzing one network: the label
// it was submitted under (the description's file name on the CLI), the
// network's name, and the findings.
type VetReport struct {
	Label       string       `json:"label,omitempty"`
	Network     string       `json:"network,omitempty"`
	Diagnostics []Diagnostic `json:"diagnostics"`
}

// VetEnvelope is the versioned JSON document carrying vet reports — the
// body of `ccs vet -json` output and the /v1/vet response.
type VetEnvelope struct {
	Schema int         `json:"schema"`
	Vets   []VetReport `json:"vets"`
}

// EncodeVetReports renders vet reports as a versioned JSON document.
func EncodeVetReports(reps []VetReport) ([]byte, error) {
	return json.MarshalIndent(VetEnvelope{Schema: SchemaVersion, Vets: reps}, "", "  ")
}

// DecodeVetReports parses a versioned JSON vet document.
func DecodeVetReports(data []byte) ([]VetReport, error) {
	if err := checkJSONDepth(data); err != nil {
		return nil, err
	}
	var env VetEnvelope
	if err := strictUnmarshal(data, &env); err != nil {
		return nil, err
	}
	if env.Schema > SchemaVersion {
		return nil, fmt.Errorf("ccs: vet schema version %d is newer than supported %d", env.Schema, SchemaVersion)
	}
	return env.Vets, nil
}
