package ccs_test

import (
	"context"
	"encoding/json"
	"testing"

	"ccs"
)

// TestDoTracePair: a traced pair query returns a timeline whose spans
// carry the parse and solve phases, with sane offsets, and ElapsedMS is
// populated (it was silently zero before the facade grew tracing).
func TestDoTracePair(t *testing.T) {
	c := ccs.NewChecker()
	rep := c.Do(context.Background(), ccs.NewCheck("weak", "expr:a+a", "expr:a", ccs.WithTrace()), nil)
	if rep.Error != nil {
		t.Fatalf("traced pair: %v", rep.Error)
	}
	if rep.ElapsedMS <= 0 {
		t.Fatalf("ElapsedMS not populated: %+v", rep)
	}
	if rep.Trace == nil || rep.Trace.ID == "" {
		t.Fatalf("no trace on traced request: %+v", rep)
	}
	phases := map[string]bool{}
	var sum float64
	for _, sp := range rep.Trace.Spans {
		phases[sp.Phase] = true
		if sp.StartMS < 0 || sp.DurationMS < 0 {
			t.Fatalf("span %q has negative timing: %+v", sp.Phase, sp)
		}
		sum += sp.DurationMS
	}
	for _, want := range []string{"parse", "quotient", "solve"} {
		if !phases[want] {
			t.Fatalf("missing %q span; got %v", want, phases)
		}
	}
	if sum > rep.ElapsedMS*1.5+1 {
		t.Fatalf("span durations (%.3fms) exceed wall time (%.3fms): spans overlap", sum, rep.ElapsedMS)
	}
}

// TestDoTraceNetwork: a traced network query records parse, vet and the
// engine's exploration phases, and the report round-trips through JSON.
func TestDoTraceNetwork(t *testing.T) {
	cell := "fsp cell\nalphabet in out'\nstates 2\narc 0 in 1\narc 1 out' 0\n"
	net := ccs.NetworkRequest{
		Components: []ccs.NetworkComponentRef{{Process: cell}},
		Spec:       cell,
	}
	c := ccs.NewChecker()
	rep := c.Do(context.Background(), ccs.NewNetworkCheck("weak", net, ccs.WithTrace()), nil)
	if rep.Error != nil {
		t.Fatalf("traced network: %v", rep.Error)
	}
	phases := map[string]bool{}
	for _, sp := range rep.Trace.Spans {
		phases[sp.Phase] = true
	}
	for _, want := range []string{"parse", "vet", "quotient", "otf-explore"} {
		if !phases[want] {
			t.Fatalf("missing %q span; got %v", want, phases)
		}
	}

	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back ccs.Report
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Trace == nil || back.Trace.ID != rep.Trace.ID || len(back.Trace.Spans) != len(rep.Trace.Spans) {
		t.Fatalf("trace did not round-trip: %+v vs %+v", back.Trace, rep.Trace)
	}
}

// TestDoNoTraceByDefault pins that an untraced request keeps Report.Trace
// nil — the zero-cost path.
func TestDoNoTraceByDefault(t *testing.T) {
	c := ccs.NewChecker()
	rep := c.Do(context.Background(), ccs.NewCheck("weak", "expr:a", "expr:a"), nil)
	if rep.Error != nil || rep.Trace != nil {
		t.Fatalf("untraced request grew a trace: %+v", rep)
	}
}
