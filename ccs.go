// Package ccs is a library for checking equivalence of finite state
// processes in Milner's Calculus of Communicating Systems, implementing
// Kanellakis & Smolka, "CCS Expressions, Finite State Processes, and Three
// Problems of Equivalence" (PODC 1983 / Information and Computation 1990).
//
// It provides:
//
//   - the finite state process (FSP) model — NFAs with the unobservable
//     action tau and node-label "extensions" — and its Table I hierarchy;
//   - strong equivalence in O(m log n) via generalized partitioning
//     (relational coarsest partition, Paige-Tarjan);
//   - observational (weak) equivalence in polynomial time via tau-closure
//     saturation (the paper's headline result: unlike NFA equivalence it is
//     NOT PSPACE-hard);
//   - the bounded approximants ≈_k and ≃_k, failure equivalence, trace
//     equivalence, quotient minimization, distinguishing HML formulas, and
//     star expressions with CCS semantics.
//
// The facade in this package covers the common cases; the internal packages
// expose the full machinery to the example programs and benchmarks.
package ccs

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"ccs/internal/core"
	"ccs/internal/expr"
	"ccs/internal/failures"
	"ccs/internal/fsp"
	"ccs/internal/hml"
	"ccs/internal/kequiv"
	"ccs/internal/simulation"
)

// Process is a finite state process (Definition 2.1.1). Construct one with
// NewBuilder, ParseProcess, or FromExpression.
type Process = fsp.FSP

// State identifies a process state.
type State = fsp.State

// Builder incrementally constructs a Process.
type Builder = fsp.Builder

// NewBuilder returns an empty process builder.
func NewBuilder(name string) *Builder { return fsp.NewBuilder(name) }

// ParseProcess reads a process in the textual interchange format (see
// internal/fsp: "states", "start", "ext", "arc" directives).
func ParseProcess(r io.Reader) (*Process, error) { return fsp.Parse(r) }

// ParseProcessString is ParseProcess over a string.
func ParseProcessString(s string) (*Process, error) { return fsp.ParseString(s) }

// FormatProcess renders a process in the textual interchange format.
func FormatProcess(p *Process) string { return fsp.FormatString(p) }

// DOT renders a process as a Graphviz digraph.
func DOT(p *Process) string { return fsp.DOTString(p) }

// FromExpression parses a star expression (Section 2.3 syntax: symbols,
// '+', juxtaposition, '*', '0' for ∅) and returns its representative FSP
// per Definition 2.3.1.
func FromExpression(src string) (*Process, error) {
	e, err := expr.Parse(src)
	if err != nil {
		return nil, err
	}
	return expr.Representative(e)
}

// Relation selects an equivalence notion of Table II.
type Relation int

// The equivalence notions of Table II, plus trace equivalence (≈_1) as a
// named convenience.
const (
	// Strong is strong (observational) equivalence ~, Definition 2.2.3.
	Strong Relation = iota + 1
	// Weak is observational equivalence ≈, Definition 2.2.1.
	Weak
	// Trace is ≈_1: language equivalence (Proposition 2.2.3b).
	Trace
	// Failure is failure equivalence ≡, Definition 2.2.4.
	Failure
	// Congruence is Milner's observation congruence ≈ᶜ.
	Congruence
	// Simulation is mutual similarity.
	Simulation
)

// ParseRelation reads a relation name: "strong", "weak", "trace",
// "failure", "k<N>" (the ≈_N approximant) or "limited<N>" (the ≃_N
// approximant). The integer argument of the approximants is returned
// separately.
func ParseRelation(s string) (Relation, int, error) {
	switch s {
	case "strong":
		return Strong, 0, nil
	case "weak", "observational":
		return Weak, 0, nil
	case "trace", "language":
		return Trace, 0, nil
	case "failure", "failures":
		return Failure, 0, nil
	case "congruence", "observation-congruence":
		return Congruence, 0, nil
	case "simulation", "sim":
		return Simulation, 0, nil
	}
	if rest, ok := strings.CutPrefix(s, "k"); ok {
		k, err := strconv.Atoi(rest)
		if err == nil && k >= 0 {
			return relationK, k, nil
		}
	}
	if rest, ok := strings.CutPrefix(s, "limited"); ok {
		k, err := strconv.Atoi(rest)
		if err == nil && k >= 0 {
			return relationLimited, k, nil
		}
	}
	return 0, 0, fmt.Errorf("ccs: unknown relation %q", s)
}

const (
	relationK Relation = iota + 100
	relationLimited
)

func (r Relation) String() string {
	switch r {
	case Strong:
		return "strong"
	case Weak:
		return "weak"
	case Trace:
		return "trace"
	case Failure:
		return "failure"
	case Congruence:
		return "observation congruence"
	case Simulation:
		return "simulation"
	case relationK:
		return "k-observational"
	case relationLimited:
		return "k-limited"
	default:
		return "unknown"
	}
}

// Equivalent reports whether the start states of p and q are related by
// rel. The k parameter is used only by the approximant relations returned
// by ParseRelation.
func Equivalent(p, q *Process, rel Relation, k int) (bool, error) {
	switch rel {
	case Strong:
		return core.StrongEquivalent(p, q)
	case Weak:
		return core.WeakEquivalent(p, q)
	case Trace:
		return kequiv.Equivalent(p, q, 1)
	case Failure:
		eq, _, err := failures.Equivalent(p, q)
		return eq, err
	case Congruence:
		return core.ObservationCongruent(p, q)
	case Simulation:
		return simulation.Equivalent(p, q)
	case relationK:
		return kequiv.Equivalent(p, q, k)
	case relationLimited:
		u, off, err := fsp.DisjointUnion(p, q)
		if err != nil {
			return false, err
		}
		return core.LimitedEquivalentStates(u, p.Start(), off+q.Start(), k)
	default:
		return false, fmt.Errorf("ccs: unknown relation %d", rel)
	}
}

// StronglyEquivalent reports p ~ q for the start states (Theorem 3.1:
// O(m log n + n)).
func StronglyEquivalent(p, q *Process) (bool, error) {
	return core.StrongEquivalent(p, q)
}

// ObservationallyEquivalent reports p ≈ q for the start states (Theorem
// 4.1a: polynomial time).
func ObservationallyEquivalent(p, q *Process) (bool, error) {
	return core.WeakEquivalent(p, q)
}

// KObservationallyEquivalent reports p ≈_k q (Definition 2.2.1; PSPACE-
// complete for fixed k ≥ 1, so worst-case exponential here).
func KObservationallyEquivalent(p, q *Process, k int) (bool, error) {
	return kequiv.Equivalent(p, q, k)
}

// TraceEquivalent reports language equivalence ≈_1.
func TraceEquivalent(p, q *Process) (bool, error) {
	return kequiv.Equivalent(p, q, 1)
}

// FailureWitness describes a failure pair present in exactly one process.
type FailureWitness struct {
	// Trace is the witness trace, rendered with action names.
	Trace string
	// Refusal is the witness refusal set, rendered with action names.
	Refusal string
	// InFirst reports whether the failure belongs to the first process.
	InFirst bool
}

// FailureEquivalent reports p ≡ q for the start states of two restricted
// processes, with a witness on inequivalence.
func FailureEquivalent(p, q *Process) (bool, *FailureWitness, error) {
	eq, w, err := failures.Equivalent(p, q)
	if err != nil || eq {
		return eq, nil, err
	}
	return false, &FailureWitness{
		Trace:   failures.FormatTrace(w.Failure.Trace, w.Alphabet),
		Refusal: w.Failure.Refusal.Format(w.Alphabet),
		InFirst: w.InFirst,
	}, nil
}

// MinimizeStrong returns the state-minimal process strongly equivalent to
// p (the quotient by ~).
func MinimizeStrong(p *Process) (*Process, error) {
	q, _, err := core.QuotientStrong(p)
	return q, err
}

// MinimizeWeak returns a process observationally equivalent to p with one
// state per ≈-class.
func MinimizeWeak(p *Process) (*Process, error) {
	q, _, err := core.QuotientWeak(p)
	return q, err
}

// Explain returns a Hennessy-Milner formula satisfied by p's start state
// but not q's, witnessing strong inequivalence, rendered as a string. It
// fails if the processes are strongly equivalent.
func Explain(p, q *Process) (string, error) {
	u, off, err := fsp.DisjointUnion(p, q)
	if err != nil {
		return "", err
	}
	phi, err := hml.Distinguish(u, p.Start(), off+q.Start())
	if err != nil {
		return "", err
	}
	return phi.String(), nil
}

// ExplainWeak is Explain for observational equivalence: modalities range
// over Sigma ∪ {ε}.
func ExplainWeak(p, q *Process) (string, error) {
	u, off, err := fsp.DisjointUnion(p, q)
	if err != nil {
		return "", err
	}
	phi, _, err := hml.DistinguishWeak(u, p.Start(), off+q.Start())
	if err != nil {
		return "", err
	}
	return phi.String(), nil
}

// CCSEquivalentExpressions decides the CCS equivalence problem of Section
// 2.3 for two star expressions: strong equivalence of their representative
// FSPs.
func CCSEquivalentExpressions(e1, e2 string) (bool, error) {
	a, err := expr.Parse(e1)
	if err != nil {
		return false, err
	}
	b, err := expr.Parse(e2)
	if err != nil {
		return false, err
	}
	return expr.CCSEquivalent(a, b)
}

// LanguageEquivalentExpressions decides classical language equivalence of
// two star expressions, for contrast with CCSEquivalentExpressions.
func LanguageEquivalentExpressions(e1, e2 string) (bool, error) {
	a, err := expr.Parse(e1)
	if err != nil {
		return false, err
	}
	b, err := expr.Parse(e2)
	if err != nil {
		return false, err
	}
	return expr.LanguageEquivalent(a, b)
}

// ModelClasses names the Table I model classes the process belongs to.
func ModelClasses(p *Process) []string {
	models := fsp.Classify(p).Models()
	out := make([]string, len(models))
	for i, m := range models {
		out[i] = m.String()
	}
	return out
}

// ObservationCongruent reports Milner's observation congruence ≈ᶜ — the
// largest congruence inside ≈, with the strengthened root condition (an
// initial tau must be matched by at least one tau). tau·a ≈ a holds but
// tau·a ≈ᶜ a does not.
func ObservationCongruent(p, q *Process) (bool, error) {
	return core.ObservationCongruent(p, q)
}

// SimulationEquivalent reports mutual similarity of the start states — the
// preorder-based notion sitting strictly between ~ and ≈_1.
func SimulationEquivalent(p, q *Process) (bool, error) {
	return simulation.Equivalent(p, q)
}

// Simulates reports whether q's start state (strongly) simulates p's.
func Simulates(p, q *Process) (bool, error) {
	return simulation.Simulates(p, q)
}

// Compose returns the CCS parallel composition p | q: interleaving plus
// tau handshakes between complementary actions ("a" with "a'"). This is
// the composition operator whose product semantics Section 6 of the paper
// sketches for extended expressions.
func Compose(p, q *Process) (*Process, error) { return fsp.Compose(p, q) }

// Restrict returns p with all transitions on the given action names (and
// their co-names) removed — Milner's P\L.
func Restrict(p *Process, names ...string) (*Process, error) {
	return fsp.Restrict(p, names...)
}

// Intersect returns the synchronized product of p and q; in the standard
// model it accepts the intersection of the languages.
func Intersect(p, q *Process) (*Process, error) { return fsp.Intersect(p, q) }

// Satisfies model-checks a Hennessy-Milner formula (syntax: tt, ff, <a>φ,
// [a]φ, !φ, φ&φ, φ|φ, ext(x)) at the start state of p.
func Satisfies(p *Process, formula string) (bool, error) {
	phi, err := hml.ParseFormula(formula, p)
	if err != nil {
		return false, err
	}
	return hml.Satisfies(p, p.Start(), phi), nil
}

// SatisfyingStates model-checks a formula and returns the states where it
// holds.
func SatisfyingStates(p *Process, formula string) ([]State, error) {
	phi, err := hml.ParseFormula(formula, p)
	if err != nil {
		return nil, err
	}
	set := hml.Sat(p, phi)
	var out []State
	for s, ok := range set {
		if ok {
			out = append(out, State(s))
		}
	}
	return out, nil
}

// Saturate returns the observable weak form P-hat of Theorem 4.1(a): weak
// derivatives as direct arcs plus an "ε" action for the tau-closure.
// Useful for model-checking weak modalities (<eps> in formulas).
func Saturate(p *Process) (*Process, error) {
	sat, _, err := fsp.Saturate(p)
	return sat, err
}

// FailureRefines reports whether impl refines spec in the failures
// preorder (failures(impl) ⊆ failures(spec)); on failure of refinement the
// witness carries a failure of impl that spec forbids. Both processes must
// be restricted.
func FailureRefines(spec, impl *Process) (bool, *FailureWitness, error) {
	ok, w, err := failures.RefinesProcesses(spec, impl)
	if err != nil || ok {
		return ok, nil, err
	}
	return false, &FailureWitness{
		Trace:   failures.FormatTrace(w.Failure.Trace, w.Alphabet),
		Refusal: w.Failure.Refusal.Format(w.Alphabet),
		InFirst: w.InFirst,
	}, nil
}

// TraceWitness decides language equality of the start states and returns
// the shortest distinguishing word (action names) when the languages
// differ. On restricted processes this is exactly ≈_1 (Prop. 2.2.3b).
func TraceWitness(p, q *Process) (equal bool, word []string, err error) {
	return kequiv.TraceWitness(p, q)
}

// Divergent reports the states of p from which an infinite run of
// unobservable tau moves is possible. The paper's equivalences are
// divergence-blind; this predicate surfaces where that matters.
func Divergent(p *Process) []State {
	var out []State
	for s, d := range fsp.Divergent(p) {
		if d {
			out = append(out, State(s))
		}
	}
	return out
}
