package ccs

import (
	"testing"
)

func mustParse(t *testing.T, src string) *Process {
	t.Helper()
	p, err := ParseProcessString(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestFacadeCongruence(t *testing.T) {
	tauA := mustParse(t, "states 3\nstart 0\narc 0 tau 1\narc 1 a 2\n")
	a := mustParse(t, "states 2\nstart 0\narc 0 a 1\n")
	weak, err := ObservationallyEquivalent(tauA, a)
	if err != nil || !weak {
		t.Fatalf("tau.a ≈ a expected: %v %v", weak, err)
	}
	cong, err := ObservationCongruent(tauA, a)
	if err != nil {
		t.Fatal(err)
	}
	if cong {
		t.Errorf("tau.a ≈ᶜ a must fail")
	}
}

func TestFacadeSimulation(t *testing.T) {
	p := mustExpr(t, "a(b+c)")
	q := mustExpr(t, "ab+ac")
	// q ≤ p but not p ≤ q.
	qp, err := Simulates(q, p)
	if err != nil || !qp {
		t.Errorf("Simulates(q,p) = %v %v, want true", qp, err)
	}
	pq, err := Simulates(p, q)
	if err != nil || pq {
		t.Errorf("Simulates(p,q) = %v %v, want false", pq, err)
	}
	eq, err := SimulationEquivalent(p, q)
	if err != nil || eq {
		t.Errorf("SimulationEquivalent = %v %v, want false", eq, err)
	}
}

func TestFacadeComposeRestrictIntersect(t *testing.T) {
	sender := mustParse(t, "states 2\nstart 0\narc 0 m' 1\n")
	receiver := mustParse(t, "states 2\nstart 0\narc 0 m 1\n")
	comp, err := Compose(sender, receiver)
	if err != nil {
		t.Fatal(err)
	}
	hidden, err := Restrict(comp, "m")
	if err != nil {
		t.Fatal(err)
	}
	if hidden.NumTransitions() != 1 {
		t.Errorf("restricted composition should keep only the handshake tau")
	}

	even := mustParse(t, "states 2\nstart 0\next 0 x\narc 0 a 1\narc 1 a 0\n")
	all := mustParse(t, "states 1\nstart 0\next 0 x\narc 0 a 0\n")
	inter, err := Intersect(even, all)
	if err != nil {
		t.Fatal(err)
	}
	eq, err := TraceEquivalent(inter, even)
	if err != nil || !eq {
		t.Errorf("L ∩ Sigma* must equal L: %v %v", eq, err)
	}
}

func TestFacadeSatisfies(t *testing.T) {
	p := mustExpr(t, "a(b+c)")
	ok, err := Satisfies(p, "<a>(<b>tt & <c>tt)")
	if err != nil || !ok {
		t.Errorf("formula should hold: %v %v", ok, err)
	}
	ok, err = Satisfies(p, "[a]ff")
	if err != nil || ok {
		t.Errorf("formula should fail: %v %v", ok, err)
	}
	states, err := SatisfyingStates(p, "tt")
	if err != nil || len(states) != p.NumStates() {
		t.Errorf("tt should hold everywhere: %v %v", states, err)
	}
	if _, err := Satisfies(p, "<nosuch>tt"); err == nil {
		t.Error("unknown action accepted")
	}

	// Weak modality through saturation.
	tauB := mustParse(t, "states 3\nstart 0\narc 0 tau 1\narc 1 b 2\n")
	sat, err := Saturate(tauB)
	if err != nil {
		t.Fatal(err)
	}
	ok, err = Satisfies(sat, "<eps><b>tt")
	if err != nil || !ok {
		t.Errorf("weak formula should hold: %v %v", ok, err)
	}
}

func TestFacadeFailureRefines(t *testing.T) {
	spec := mustParse(t, "states 4\nstart 0\next 0 x\next 1 x\next 2 x\next 3 x\narc 0 a 1\narc 1 a 2\narc 0 a 3\n") // aa + a
	impl := mustParse(t, "states 3\nstart 0\next 0 x\next 1 x\next 2 x\narc 0 a 1\narc 1 a 2\n")                     // aa
	ok, _, err := FailureRefines(spec, impl)
	if err != nil || !ok {
		t.Errorf("aa must refine aa+a: %v %v", ok, err)
	}
	ok, w, err := FailureRefines(impl, spec)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Errorf("aa+a must not refine aa")
	}
	if w == nil || w.Refusal == "" {
		t.Errorf("witness missing: %+v", w)
	}
}

func TestFacadeTraceWitness(t *testing.T) {
	p := mustExpr(t, "a")
	q := mustExpr(t, "aa")
	eq, word, err := TraceWitness(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if eq || len(word) != 1 || word[0] != "a" {
		t.Errorf("expected distinguishing word [a], got eq=%v word=%v", eq, word)
	}
}

func TestFacadeDivergent(t *testing.T) {
	p := mustParse(t, "states 3\nstart 0\narc 0 a 1\narc 1 tau 2\narc 2 tau 1\n")
	div := Divergent(p)
	if len(div) != 2 {
		t.Errorf("divergent states = %v, want the two tau-cycle states", div)
	}
	quiet := mustExpr(t, "ab")
	if got := Divergent(quiet); got != nil {
		t.Errorf("tau-free process reported divergent: %v", got)
	}
}

func TestFacadeRelationDispatchNew(t *testing.T) {
	p := mustExpr(t, "a(b+c)")
	q := mustExpr(t, "ab+ac")
	for _, tc := range []struct {
		relName string
		want    bool
	}{
		{"congruence", false},
		{"simulation", false},
		{"sim", false},
	} {
		rel, k, err := ParseRelation(tc.relName)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Equivalent(p, q, rel, k)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("%s = %v, want %v", tc.relName, got, tc.want)
		}
	}
	if Congruence.String() != "observation congruence" || Simulation.String() != "simulation" {
		t.Errorf("relation names wrong")
	}
	if _, err := Equivalent(p, q, Relation(999), 0); err == nil {
		t.Error("unknown relation accepted")
	}
}
