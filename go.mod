module ccs

go 1.24
