package ccs

import (
	"context"
	"fmt"
	"time"

	"ccs/internal/engine"
)

// Query is one batch equivalence question: are the start states of P and Q
// related by Rel? K is the bound for the approximant relations returned by
// ParseRelation ("kN", "limitedN") and is ignored otherwise.
//
// Deprecated: new code should describe queries as CheckRequest values
// (request.go) and run them with Checker.Do/DoAll — the same type the
// CLI and the HTTP server speak, with routes, timeouts and typed errors.
// Query remains for callers that already hold *Process values.
type Query struct {
	P, Q *Process
	Rel  Relation
	K    int
}

// BatchResult is the outcome of one batch Query, in input order.
//
// Deprecated: Checker.Do/DoAll return Report values, which add the route
// taken, counterexamples, and a typed error classification.
type BatchResult struct {
	// Equivalent is the verdict; meaningful only when Err is nil.
	Equivalent bool
	// Err reports a failed check — malformed input, an unknown relation,
	// or context cancellation before the query ran.
	Err error
	// Elapsed is the wall time the query took inside its worker.
	Elapsed time.Duration
}

// Checker is a reusable, concurrency-safe equivalence checker that caches
// per-process derived artifacts (tau-closure, saturated P-hat, canonical
// quotients), so repeated queries against the same *Process value skip
// re-derivation. Construct with NewChecker; methods may be called from
// multiple goroutines.
type Checker struct {
	e *engine.Checker
}

// NewChecker returns an empty batch checker.
func NewChecker() *Checker { return &Checker{e: engine.New()} }

// Check answers one query synchronously, populating the artifact cache as
// a side effect.
func (c *Checker) Check(ctx context.Context, p, q *Process, rel Relation, k int) (bool, error) {
	eq, err := relationToEngine(rel)
	if err != nil {
		return false, err
	}
	return c.e.Check(ctx, engine.Query{P: p, Q: q, Rel: eq, K: k})
}

// CheckAll fans the queries out over a pool of workers (workers <= 0
// selects GOMAXPROCS) and returns one result per query, in input order.
// Cancelling the context stops unstarted queries, which then report the
// context error.
func (c *Checker) CheckAll(ctx context.Context, queries []Query, workers int) []BatchResult {
	out := make([]BatchResult, len(queries))
	// Queries with an unmappable relation fail eagerly and never reach
	// the worker pool; origin maps the dispatched subset back to input
	// positions.
	var eqs []engine.Query
	var origin []int
	for i, q := range queries {
		rel, err := relationToEngine(q.Rel)
		if err != nil {
			out[i] = BatchResult{Err: err}
			continue
		}
		eqs = append(eqs, engine.Query{P: q.P, Q: q.Q, Rel: rel, K: q.K})
		origin = append(origin, i)
	}
	for _, r := range c.e.CheckAll(ctx, eqs, workers) {
		out[origin[r.Index]] = BatchResult{
			Equivalent: r.Equivalent,
			Err:        r.Err,
			Elapsed:    r.Elapsed,
		}
	}
	return out
}

// CheckAll is the convenience form of Checker.CheckAll with a fresh
// single-use checker: the cache still deduplicates derivation work across
// the given queries, but nothing is retained afterwards.
//
// Deprecated: prefer NewChecker().DoAll with CheckRequest values; this
// form remains for callers that already hold *Process values.
func CheckAll(ctx context.Context, queries []Query, workers int) []BatchResult {
	return NewChecker().CheckAll(ctx, queries, workers)
}

// PoolSize reports the worker-pool size CheckAll will use for a given
// workers request and query count (non-positive workers selects
// GOMAXPROCS, never more than one worker per query).
func PoolSize(workers, queries int) int { return engine.PoolSize(workers, queries) }

// relationToEngine maps the facade's Relation constants onto the engine's.
func relationToEngine(rel Relation) (engine.Relation, error) {
	switch rel {
	case Strong:
		return engine.Strong, nil
	case Weak:
		return engine.Weak, nil
	case Trace:
		return engine.Trace, nil
	case Failure:
		return engine.Failure, nil
	case Congruence:
		return engine.Congruence, nil
	case Simulation:
		return engine.Simulation, nil
	case relationK:
		return engine.K, nil
	case relationLimited:
		return engine.Limited, nil
	default:
		return 0, fmt.Errorf("ccs: unknown relation %d", rel)
	}
}
