package ccs_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"ccs"
)

// deadSyncRequest is the inline dead-sync exhibit: a hidden channel whose
// only user sends and nobody receives.
func deadSyncRequest() ccs.NetworkRequest {
	return ccs.NetworkRequest{
		Name: "dead",
		Components: []ccs.NetworkComponentRef{
			{Process: "fsp sender\nstates 2\nstart 0\next 0 x\next 1 x\narc 0 a' 1\narc 1 x 0\n"},
			{Process: "fsp noise\nstates 1\nstart 0\next 0 x\narc 0 y 0\n"},
		},
		Hide: []string{"a"},
		Spec: "fsp spec\nstates 1\nstart 0\next 0 x\narc 0 y 0\n",
	}
}

// TestJSONDepthGuard: pathologically nested documents are rejected with
// the typed depth error before the decoder recurses into them, on every
// decode entry point — while brackets inside strings don't count.
func TestJSONDepthGuard(t *testing.T) {
	deep := strings.Repeat("[", 300) + strings.Repeat("]", 300)
	for name, decode := range map[string]func([]byte) error{
		"requests": func(b []byte) error { _, err := ccs.DecodeRequests(b); return err },
		"reports":  func(b []byte) error { _, err := ccs.DecodeReports(b); return err },
		"vets":     func(b []byte) error { _, err := ccs.DecodeVetReports(b); return err },
	} {
		err := decode([]byte(deep))
		if !errors.Is(err, ccs.ErrJSONDepth) {
			t.Errorf("%s: deep document error = %v, want ErrJSONDepth", name, err)
		}
	}

	// Brackets inside string values (and escaped quotes before them) are
	// content, not nesting.
	label := strings.Repeat("[{", 300) + `\"` + strings.Repeat("}", 300)
	doc := `{"relation":"weak","p":"expr:a","q":"expr:a","label":"` + label + `"}`
	reqs, err := ccs.DecodeRequests([]byte(doc))
	if err != nil || len(reqs) != 1 {
		t.Fatalf("bracket-heavy string tripped the guard: %v", err)
	}
	if !strings.Contains(reqs[0].Label, "[{") {
		t.Errorf("label mangled: %q", reqs[0].Label)
	}
}

// TestReportDiagnosticsRoundTrip: network reports carry the vet findings
// and they survive the report codec.
func TestReportDiagnosticsRoundTrip(t *testing.T) {
	c := ccs.NewChecker()
	rep := c.Do(context.Background(), ccs.NewNetworkCheck("weak", deadSyncRequest()), nil)
	if rep.Error != nil {
		t.Fatalf("network query failed: %+v", rep.Error)
	}
	if len(rep.Diagnostics) == 0 {
		t.Fatal("network report carries no diagnostics for the dead-sync exhibit")
	}
	data, err := ccs.EncodeReports([]ccs.Report{rep})
	if err != nil {
		t.Fatal(err)
	}
	back, err := ccs.DecodeReports(data)
	if err != nil || len(back) != 1 {
		t.Fatalf("decode: %v", err)
	}
	found := false
	for _, d := range back[0].Diagnostics {
		if d.Code == ccs.CodeDeadSync && d.Severity == ccs.SeverityError && d.Channel == "a" {
			found = true
		}
	}
	if !found {
		t.Errorf("decoded diagnostics %v lost the dead-sync finding", back[0].Diagnostics)
	}

	// Pair reports have nothing to vet and must not grow a diagnostics
	// key on the wire.
	pair := c.Do(context.Background(), ccs.NewCheck("weak", "expr:a", "expr:a"), nil)
	data, err = ccs.EncodeReports([]ccs.Report{pair})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "diagnostics") {
		t.Errorf("pair report leaked a diagnostics field:\n%s", data)
	}
}

// TestVetReportCodec: EncodeVetReports/DecodeVetReports round-trip, and
// the decoder enforces the same strictness as the other codecs.
func TestVetReportCodec(t *testing.T) {
	diags, err := ccs.VetNetworkRequest(deadSyncRequest(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !ccs.VetHasErrors(diags) {
		t.Fatalf("exhibit drew no errors: %v", diags)
	}
	reps := []ccs.VetReport{{Label: "dead.net", Network: "dead", Diagnostics: diags}}
	data, err := ccs.EncodeVetReports(reps)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ccs.DecodeVetReports(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].Label != "dead.net" || back[0].Network != "dead" ||
		len(back[0].Diagnostics) != len(diags) || back[0].Diagnostics[0].Code != diags[0].Code {
		t.Fatalf("round trip mangled vet reports: %+v", back)
	}

	for name, doc := range map[string]string{
		"future schema": `{"schema":99,"vets":[]}`,
		"unknown field": `{"schema":1,"vest":[]}`,
		"truncated":     `{"schema":1,"vets":[`,
	} {
		if _, err := ccs.DecodeVetReports([]byte(doc)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}
