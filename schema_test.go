package ccs_test

import (
	"context"
	"strings"
	"testing"

	"ccs"
)

func TestRequestJSONRoundTrip(t *testing.T) {
	reqs := []ccs.CheckRequest{
		ccs.NewCheck("weak", "expr:a+a", "expr:a", ccs.WithLabel("pair")),
		ccs.NewNetworkCheck("strong", ccs.NetworkRequest{
			Name:       "net",
			Components: []ccs.NetworkComponentRef{{Process: "expr:a", Relabel: map[string]string{"a": "b"}}},
			Hide:       []string{"b"},
			Spec:       "expr:0",
		}, ccs.WithRoute(ccs.RouteMTC), ccs.WithK(2)),
	}
	data, err := ccs.EncodeRequests(reqs)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ccs.DecodeRequests(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0].Label != "pair" || back[1].Network == nil ||
		back[1].Network.Components[0].Relabel["a"] != "b" || back[1].Route != ccs.RouteMTC || back[1].K != 2 {
		t.Fatalf("round trip mangled requests: %+v", back)
	}
}

func TestDecodeRequestsForms(t *testing.T) {
	// Bare array.
	reqs, err := ccs.DecodeRequests([]byte(`[{"relation":"weak","p":"expr:a","q":"expr:a"}]`))
	if err != nil || len(reqs) != 1 || reqs[0].Relation != "weak" {
		t.Fatalf("bare array: %v %+v", err, reqs)
	}
	// Single object.
	reqs, err = ccs.DecodeRequests([]byte(`{"relation":"strong","p":"expr:a","q":"expr:a"}`))
	if err != nil || len(reqs) != 1 || reqs[0].Relation != "strong" {
		t.Fatalf("single object: %v %+v", err, reqs)
	}
	// Envelope.
	reqs, err = ccs.DecodeRequests([]byte(`{"schema":1,"requests":[{"relation":"trace","p":"expr:a","q":"expr:a"}]}`))
	if err != nil || len(reqs) != 1 || reqs[0].Relation != "trace" {
		t.Fatalf("envelope: %v %+v", err, reqs)
	}
	// Future schema rejected.
	if _, err = ccs.DecodeRequests([]byte(`{"schema":999,"requests":[]}`)); err == nil {
		t.Fatalf("future schema accepted")
	}
	// Unknown fields rejected.
	if _, err = ccs.DecodeRequests([]byte(`{"relatoin":"weak","p":"x","q":"y"}`)); err == nil {
		t.Fatalf("misspelled field accepted")
	}
	// Invalid JSON rejected.
	if _, err = ccs.DecodeRequests([]byte(`{`)); err == nil {
		t.Fatalf("truncated JSON accepted")
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	c := ccs.NewChecker()
	reps := c.DoAll(context.Background(), []ccs.CheckRequest{
		ccs.NewCheck("weak", "expr:a+a", "expr:a", ccs.WithLabel("ok")),
		ccs.NewCheck("nope", "expr:a", "expr:a", ccs.WithLabel("bad")),
	}, 0, nil)
	data, err := ccs.EncodeReports(reps)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ccs.DecodeReports(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || !back[0].Equivalent || back[0].Label != "ok" {
		t.Fatalf("report 0 mangled: %+v", back)
	}
	if back[1].Error == nil || back[1].Error.Kind != ccs.ErrorKindInput {
		t.Fatalf("report 1 mangled: %+v", back)
	}
}

func TestParseBatchList(t *testing.T) {
	list := `
# comment
weak expr:a+a expr:a
expr:ab expr:ab
trace fileA fileB
`
	reqs, err := ccs.ParseBatchList(strings.NewReader(list), "strong")
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 3 {
		t.Fatalf("want 3 requests, got %d", len(reqs))
	}
	if reqs[0].Relation != "weak" || reqs[1].Relation != "strong" || reqs[2].Relation != "trace" {
		t.Fatalf("relations: %+v", reqs)
	}
	if reqs[2].P != "fileA" || reqs[2].Q != "fileB" {
		t.Fatalf("file refs: %+v", reqs[2])
	}
	if reqs[0].Label == "" {
		t.Fatalf("labels missing: %+v", reqs[0])
	}

	for name, bad := range map[string]string{
		"empty":             "\n# only comments\n",
		"dangling relation": "weak expr:a\n",
		"too many fields":   "weak a b c\n",
		"unknown relation":  "sideways a b\n",
	} {
		if _, err := ccs.ParseBatchList(strings.NewReader(bad), "strong"); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
}

func TestParseRequestsSniffsJSON(t *testing.T) {
	reqs, err := ccs.ParseRequests(strings.NewReader(`  {"relation":"weak","p":"expr:a","q":"expr:a"}`), "strong")
	if err != nil || len(reqs) != 1 || reqs[0].Relation != "weak" {
		t.Fatalf("json sniff: %v %+v", err, reqs)
	}
	reqs, err = ccs.ParseRequests(strings.NewReader("weak expr:a expr:a\n"), "strong")
	if err != nil || len(reqs) != 1 {
		t.Fatalf("text sniff: %v %+v", err, reqs)
	}
}

func TestParseNetworkDescription(t *testing.T) {
	desc := `
name chain
component cell.fsp a=b
component cell.fsp
hide mid
spec spec.fsp
rel weak
`
	nr, rel, err := ccs.ParseNetworkDescription(strings.NewReader(desc))
	if err != nil {
		t.Fatal(err)
	}
	if nr.Name != "chain" || len(nr.Components) != 2 || nr.Spec != "spec.fsp" || rel != "weak" {
		t.Fatalf("parsed: %+v rel=%q", nr, rel)
	}
	if nr.Components[0].Relabel["a"] != "b" || nr.Components[1].Relabel != nil {
		t.Fatalf("relabels: %+v", nr.Components)
	}
	if len(nr.Hide) != 1 || nr.Hide[0] != "mid" {
		t.Fatalf("hide: %+v", nr.Hide)
	}

	for name, bad := range map[string]string{
		"no components": "hide x\n",
		"bad relabel":   "component a x\n",
		"bad directive": "compnent a\n",
		"spec arity":    "component a\nspec\n",
	} {
		if _, _, err := ccs.ParseNetworkDescription(strings.NewReader(bad)); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
}

// TestParseNetworkDescriptionSyncAndCount covers the sync-block and
// parameterized-instantiation grammar, including the full round trip:
// description text -> NetworkRequest -> JSON -> NetworkRequest -> built
// *ccs.Network with the instances expanded and the sync table attached.
func TestParseNetworkDescriptionSyncAndCount(t *testing.T) {
	desc := `
name quorum
# three voters plus one odd participant
component 3 x expr:aa
component expr:bb r=s
sync a a -> decide
sync b b
hide a
spec expr:c
rel weak
`
	nr, rel, err := ccs.ParseNetworkDescription(strings.NewReader(desc))
	if err != nil {
		t.Fatal(err)
	}
	if rel != "weak" || nr.Name != "quorum" {
		t.Fatalf("parsed: %+v rel=%q", nr, rel)
	}
	if len(nr.Components) != 2 || nr.Components[0].Count != 3 || nr.Components[1].Count != 0 {
		t.Fatalf("components: %+v", nr.Components)
	}
	if nr.Components[1].Relabel["r"] != "s" {
		t.Fatalf("relabel lost on counted form: %+v", nr.Components)
	}
	if len(nr.Sync) != 2 {
		t.Fatalf("sync rules: %+v", nr.Sync)
	}
	if nr.Sync[0].Result != "decide" || len(nr.Sync[0].Parts) != 2 || nr.Sync[0].Parts[0] != "a" {
		t.Fatalf("visible rule: %+v", nr.Sync[0])
	}
	if nr.Sync[1].Result != "" || len(nr.Sync[1].Parts) != 2 {
		t.Fatalf("tau rule: %+v", nr.Sync[1])
	}

	// JSON round trip through the versioned envelope.
	req := ccs.NewNetworkCheck(rel, nr)
	data, err := ccs.EncodeRequests([]ccs.CheckRequest{req})
	if err != nil {
		t.Fatal(err)
	}
	back, err := ccs.DecodeRequests(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].Network == nil {
		t.Fatalf("round trip: %+v", back)
	}
	got := *back[0].Network
	if got.Components[0].Count != 3 || len(got.Sync) != 2 || got.Sync[0].Result != "decide" {
		t.Fatalf("round-tripped network: %+v", got)
	}

	// Build: 3+1 component instances, sync table on the network.
	net, spec, err := got.BuildNetwork(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(net.Components) != 4 || len(net.Sync) != 2 || spec == nil {
		t.Fatalf("built network: %d components, %d rules", len(net.Components), len(net.Sync))
	}

	for name, bad := range map[string]string{
		"sync one part":    "component a\nsync x\n",
		"sync no parts":    "component a\nsync -> r\n",
		"sync arrow arity": "component a\nsync x y -> r s\n",
		"sync arrow only":  "component a\nsync ->\n",
		"count zero":       "component 0 x a\n",
	} {
		if _, _, err := ccs.ParseNetworkDescription(strings.NewReader(bad)); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}

	// A process file literally named "2" still parses in the plain form.
	nr2, _, err := ccs.ParseNetworkDescription(strings.NewReader("component 2\n"))
	if err != nil || nr2.Components[0].Process != "2" || nr2.Components[0].Count != 0 {
		t.Fatalf("digit-named process: %+v err=%v", nr2, err)
	}
	// An oversized count is rejected at build time.
	huge := ccs.NetworkRequest{Components: []ccs.NetworkComponentRef{{Process: "expr:a", Count: 1 << 20}}}
	if _, _, err := huge.BuildNetwork(nil); err == nil {
		t.Fatal("count 2^20 accepted")
	}
}

// TestSchemaAgreesWithFacade replays a parsed batch list through Do and
// checks the verdicts match the legacy facade calls — the "one schema
// everywhere" guarantee.
func TestSchemaAgreesWithFacade(t *testing.T) {
	list := strings.Join([]string{
		"weak expr:a+a expr:a",
		"strong expr:a+a expr:a",
		"trace expr:a(b+c) expr:ab+ac",
		"congruence expr:ab expr:ab",
	}, "\n")
	reqs, err := ccs.ParseBatchList(strings.NewReader(list), "strong")
	if err != nil {
		t.Fatal(err)
	}
	c := ccs.NewChecker()
	reps := c.DoAll(context.Background(), reqs, 0, nil)
	for i, req := range reqs {
		rel, k, err := ccs.ParseRelation(req.Relation)
		if err != nil {
			t.Fatal(err)
		}
		p := mustExprTest(t, strings.TrimPrefix(req.P, "expr:"))
		q := mustExprTest(t, strings.TrimPrefix(req.Q, "expr:"))
		want, err := ccs.Equivalent(p, q, rel, k)
		if err != nil {
			t.Fatal(err)
		}
		if reps[i].Error != nil || reps[i].Equivalent != want {
			t.Fatalf("request %d (%s): report %+v, facade %v", i, req.Label, reps[i], want)
		}
	}
}

func mustExprTest(t *testing.T, src string) *ccs.Process {
	t.Helper()
	p, err := ccs.FromExpression(src)
	if err != nil {
		t.Fatalf("FromExpression(%q): %v", src, err)
	}
	return p
}
