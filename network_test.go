package ccs_test

import (
	"context"
	"testing"

	"ccs"
)

func buildCell(t *testing.T) *ccs.Process {
	t.Helper()
	b := ccs.NewBuilder("cell")
	b.AddStates(3)
	b.ArcName(0, "in", 1)
	b.ArcName(1, "tau", 2)
	b.ArcName(2, "out'", 0)
	for s := ccs.State(0); s < 3; s++ {
		b.Accept(s)
	}
	return b.MustBuild()
}

func buildCounter(t *testing.T, n int) *ccs.Process {
	t.Helper()
	b := ccs.NewBuilder("counter")
	b.AddStates(n + 1)
	for k := 0; k < n; k++ {
		b.ArcName(ccs.State(k), "c0", ccs.State(k+1))
	}
	for k := 1; k <= n; k++ {
		b.ArcName(ccs.State(k), "c2'", ccs.State(k-1))
	}
	for s := 0; s <= n; s++ {
		b.Accept(ccs.State(s))
	}
	return b.MustBuild()
}

// relayNet is the two-stage pipeline over the facade types.
func relayNet(t *testing.T) *ccs.Network {
	cell := buildCell(t)
	net := ccs.NewNetwork("relay2")
	net.Add(cell, map[string]string{"in": "c0", "out": "c1"})
	net.Add(cell, map[string]string{"in": "c1", "out": "c2"})
	net.Hide("c1")
	return net
}

func TestFacadeNetwork(t *testing.T) {
	net := relayNet(t)
	spec := buildCounter(t, 2)
	ctx := context.Background()

	eq, err := ccs.CheckNetwork(ctx, net, spec, ccs.Weak, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Error("two chained cells not ≈ the 2-place buffer")
	}

	flat, err := ccs.ComposeNetwork(net)
	if err != nil {
		t.Fatal(err)
	}
	min, err := ccs.MinimizeNetwork(net)
	if err != nil {
		t.Fatal(err)
	}
	if min.NumStates() >= flat.NumStates() {
		t.Errorf("minimized product %d states, flat %d: expected collapse", min.NumStates(), flat.NumStates())
	}
	same, err := ccs.ObservationCongruent(flat, min)
	if err != nil {
		t.Fatal(err)
	}
	if !same {
		t.Error("minimize-then-compose not ≈ᶜ flat composition")
	}

	// The reusable checker path agrees and caches across calls.
	checker := ccs.NewChecker()
	for i := 0; i < 2; i++ {
		eq, err := checker.CheckNetwork(ctx, net, spec, ccs.Weak, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !eq {
			t.Errorf("checker round %d: verdict flipped", i)
		}
	}

	// Unknown relations and invalid networks surface as errors.
	if _, err := ccs.CheckNetwork(ctx, net, spec, ccs.Relation(99), 0); err == nil {
		t.Error("unknown relation produced no error")
	}
	if _, err := ccs.CheckNetwork(ctx, ccs.NewNetwork("empty"), spec, ccs.Weak, 0); err == nil {
		t.Error("empty network produced no error")
	}
}

// TestFacadeNetworkOTF: the on-the-fly route through the facade agrees
// with minimize-then-compose for every relation, covered by the game or
// not, on both verdict polarities.
func TestFacadeNetworkOTF(t *testing.T) {
	net := relayNet(t)
	spec := buildCounter(t, 2)
	wrong := buildCounter(t, 3)
	ctx := context.Background()
	checker := ccs.NewChecker()
	for _, rel := range []ccs.Relation{ccs.Strong, ccs.Weak, ccs.Trace, ccs.Congruence, ccs.Simulation} {
		for _, s := range []*ccs.Process{spec, wrong} {
			want, err := checker.CheckNetwork(ctx, net, s, rel, 0)
			if err != nil {
				t.Fatal(err)
			}
			got, err := checker.CheckNetworkOTF(ctx, net, s, rel, 0)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("rel %v spec %s: OTF=%v MTC=%v", rel, s.Name(), got, want)
			}
		}
	}
	// The single-use convenience form.
	eq, err := ccs.CheckNetworkOTF(ctx, net, spec, ccs.Weak, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Error("two chained cells not ≈ the 2-place buffer on the fly")
	}
	if _, err := ccs.CheckNetworkOTF(ctx, net, spec, ccs.Relation(99), 0); err == nil {
		t.Error("unknown relation produced no error")
	}
}
