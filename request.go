package ccs

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ccs/internal/engine"
	"ccs/internal/fsp"
	"ccs/internal/obs"
	"ccs/internal/store"
)

// This file is the request-level facade: one CheckRequest type describes
// every equivalence question this module can answer — a process pair or a
// network against a specification — and one Report type carries every
// verdict. The same two types are the JSON wire schema of `ccs serve`
// (internal/server), the parsed form of the CLI's batch and network
// inputs (see schema.go), and the programmatic entry point (Checker.Do /
// DoAll), so a request round-trips unchanged between the three.

// Process sources. A CheckRequest names its processes as strings rather
// than *Process values so it can travel as data. A source is resolved in
// one of three ways:
//
//   - "expr:SRC" — a star expression (Section 2.3), as on the CLI;
//   - text containing a newline — an inline process in the textual
//     interchange format (or, by leading "des", Aldebaran .aut);
//   - anything else — an external reference (a file path), handed to the
//     ProcessLoader. A nil loader rejects references, which is how the
//     HTTP server keeps requests self-contained.

// ProcessLoader resolves an external process reference — for the CLI, a
// file path. Do memoizes calls per reference string, so a loader need not
// cache. A nil ProcessLoader rejects all external references.
type ProcessLoader func(ref string) (*Process, error)

// Route names for CheckRequest.Route and Report.Route. A pair query always
// reports RouteDirect. A network query runs RouteAuto (the on-the-fly game
// with its documented fallback), or is pinned with RouteOTF / RouteMTC;
// its report carries the route actually taken — for RouteAuto/RouteOTF one
// of the engine's route names (re-exported in network.go as RouteOTF,
// RouteOTFDeterminized, RouteMTCFallback).
const (
	// RouteAuto lets the engine choose (networks: on-the-fly first).
	RouteAuto = "auto"
	// RouteDirect is the pair-query route: quotient-cached direct check.
	RouteDirect = "direct"
	// RouteMTC pins a network query to minimize-then-compose.
	RouteMTC = "mtc"
)

// CheckRequest is one equivalence question. Construct with NewCheck or
// NewNetworkCheck (or unmarshal from JSON; the zero values of the optional
// fields are all valid). Exactly one of {P and Q} or Network must be set.
type CheckRequest struct {
	// Relation is a name ParseRelation accepts: "strong", "weak", "trace",
	// "failure", "congruence", "simulation", "kN", "limitedN". Empty means
	// "weak" for network requests and is an error for pair requests (the
	// CLI's batch parser fills its -rel default in).
	Relation string `json:"relation,omitempty"`
	// K overrides the bound of the approximant relations ("kN",
	// "limitedN") when positive; the number in the relation name is the
	// usual way to say it.
	K int `json:"k,omitempty"`

	// P and Q are the two process sources of a pair query.
	P string `json:"p,omitempty"`
	Q string `json:"q,omitempty"`

	// Network is the network of a network-vs-spec query.
	Network *NetworkRequest `json:"network,omitempty"`

	// Route pins the checking route: RouteAuto (default), "otf" or
	// RouteMTC for networks. Pair queries accept only RouteAuto and
	// RouteDirect.
	Route string `json:"route,omitempty"`

	// TimeoutMS bounds this query's wall time in milliseconds; 0 means no
	// per-query bound. An exceeded deadline reports ErrorKindTimeout.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`

	// Explain asks for a distinguishing witness on an inequivalent pair
	// verdict (an HML formula for strong/weak; network counterexamples
	// come free from the on-the-fly game and ignore this flag).
	Explain bool `json:"explain,omitempty"`

	// Trace asks for the query's phase timeline in Report.Trace: one span
	// per phase (parse, vet, quotient, saturate, solve, compose,
	// otf-explore) with wall time and key attributes. Tracing costs one
	// context value and a handful of timestamps per query.
	Trace bool `json:"trace,omitempty"`

	// Label is echoed into the Report, for correlating batches.
	Label string `json:"label,omitempty"`
}

// NetworkRequest describes a network of communicating processes — the
// parallel composition of its components, each optionally relabeled, with
// the Hide channels restricted afterwards — plus the specification to
// check it against. It is the data form of *Network.
type NetworkRequest struct {
	Name string `json:"name,omitempty"`
	// Components are composed left to right.
	Components []NetworkComponentRef `json:"components"`
	// Hide lists channels restricted after composition.
	Hide []string `json:"hide,omitempty"`
	// Sync lists n-way rendezvous vectors on top of the pairwise CCS
	// handshakes (compose.SyncRule); absent, the network is plain CCS —
	// the field is omitted from documents that don't use it, so the
	// schema stays version-compatible.
	Sync []NetworkSyncRule `json:"sync,omitempty"`
	// Spec is the specification process source. It may be empty only where
	// a caller wants the composed process itself (the CLI's spec-less
	// network form); Do rejects a request without one.
	Spec string `json:"spec,omitempty"`
}

// NetworkComponentRef is one component instance: a process source plus an
// optional action relabeling. Count > 1 instantiates the component that
// many times (each instance under the same relabeling — the parameterized
// "component COUNT x NAME" form); 0 means 1.
type NetworkComponentRef struct {
	Process string            `json:"process"`
	Relabel map[string]string `json:"relabel,omitempty"`
	Count   int               `json:"count,omitempty"`
}

// NetworkSyncRule is the data form of one sync vector: the actions that
// distinct components jointly fire and the label of the joint step
// (empty or "tau" for an internal rendezvous).
type NetworkSyncRule struct {
	Parts  []string `json:"parts"`
	Result string   `json:"result,omitempty"`
}

// CheckOption adjusts a CheckRequest under construction.
type CheckOption func(*CheckRequest)

// WithK sets the bound of an approximant relation ("kN", "limitedN").
func WithK(k int) CheckOption { return func(r *CheckRequest) { r.K = k } }

// WithRoute pins the checking route ("auto", "otf", "mtc").
func WithRoute(route string) CheckOption { return func(r *CheckRequest) { r.Route = route } }

// WithTimeout bounds the query's wall time; sub-millisecond durations
// round up to 1ms so a positive timeout never silently becomes "none".
func WithTimeout(d time.Duration) CheckOption {
	return func(r *CheckRequest) {
		ms := d.Milliseconds()
		if d > 0 && ms == 0 {
			ms = 1
		}
		r.TimeoutMS = ms
	}
}

// WithExplain asks for a distinguishing witness on inequivalence.
func WithExplain() CheckOption { return func(r *CheckRequest) { r.Explain = true } }

// WithLabel tags the request; the label is echoed in its Report.
func WithLabel(label string) CheckOption { return func(r *CheckRequest) { r.Label = label } }

// WithTrace asks for the query's phase timeline in Report.Trace.
func WithTrace() CheckOption { return func(r *CheckRequest) { r.Trace = true } }

// NewCheck builds a pair query: are p and q related by relation?
func NewCheck(relation, p, q string, opts ...CheckOption) CheckRequest {
	r := CheckRequest{Relation: relation, P: p, Q: q}
	for _, o := range opts {
		o(&r)
	}
	return r
}

// NewNetworkCheck builds a network-vs-spec query.
func NewNetworkCheck(relation string, net NetworkRequest, opts ...CheckOption) CheckRequest {
	r := CheckRequest{Relation: relation, Network: &net}
	for _, o := range opts {
		o(&r)
	}
	return r
}

// Error kinds of Report.Error, the coarse classification callers switch
// on; the exact cause is in the message. The CLI maps kinds to exit codes
// (input → 2, everything else → 3) and the server to HTTP status.
const (
	// ErrorKindInput: the request itself is malformed — an unknown
	// relation, an unresolvable or unparsable process, a bad route.
	ErrorKindInput = "input"
	// ErrorKindCheck: the query was well-formed but the check failed
	// (e.g. a relation's side conditions were violated).
	ErrorKindCheck = "check"
	// ErrorKindTimeout: the query's deadline expired.
	ErrorKindTimeout = "timeout"
	// ErrorKindCanceled: the batch was canceled before the query ran.
	ErrorKindCanceled = "canceled"
)

// ReportError is a query failure: a machine-readable kind plus the
// human-readable cause.
type ReportError struct {
	Kind    string `json:"kind"`
	Message string `json:"message"`
}

func (e *ReportError) Error() string { return e.Message }

// Report is the outcome of one CheckRequest.
type Report struct {
	// Label echoes the request's label.
	Label string `json:"label,omitempty"`
	// Relation is the relation actually checked (the request's, with the
	// network default "weak" filled in).
	Relation string `json:"relation"`
	// Equivalent is the verdict; meaningful only when Error is nil.
	Equivalent bool `json:"equivalent"`
	// Route is the route actually taken: RouteDirect for pairs; for
	// networks "mtc", "otf", "otf-determinized" or "mtc-fallback".
	Route string `json:"route,omitempty"`
	// Fallback is the engine's reason when Route is "mtc-fallback".
	Fallback string `json:"fallback,omitempty"`
	// Counterexample is a distinguishing witness on inequivalence, when
	// one was produced: the on-the-fly game's trace for networks, an HML
	// formula for pairs checked with Explain.
	Counterexample string `json:"counterexample,omitempty"`
	// OTF carries the game's exploration statistics when a network query
	// was decided on the fly (nil on pair queries, pinned-mtc routes and
	// fallbacks).
	OTF *OTFStats `json:"otf,omitempty"`
	// Diagnostics carries the static-analysis findings about a network
	// query's network and spec (see VetNetwork and the Code* catalogue).
	// Vet runs on every network query — it is linear in the description —
	// so the server's /v1/network responses and the batch reports warn
	// about defective wirings alongside the verdict. Empty on pair
	// queries.
	Diagnostics []Diagnostic `json:"diagnostics,omitempty"`
	// ElapsedMS is the query's wall time in milliseconds.
	ElapsedMS float64 `json:"elapsed_ms"`
	// Trace is the query's phase timeline when the request asked for one
	// (CheckRequest.Trace / WithTrace); nil otherwise. On a timed-out
	// query it holds the phases that completed before abandonment.
	Trace *TraceReport `json:"trace,omitempty"`
	// Error reports a failed query; the verdict fields are then
	// meaningless.
	Error *ReportError `json:"error,omitempty"`
}

// TraceReport is a query's phase timeline: an opaque trace ID (echoed by
// the server in the X-CCS-Trace header and its access log) plus one span
// per phase in completion order.
type TraceReport struct {
	ID    string      `json:"id"`
	Spans []TraceSpan `json:"spans"`
}

// TraceSpan is one timed phase of a query. Spans are flat, not nested:
// each covers a distinct stretch of the query's wall time, so their
// durations sum to roughly the query's ElapsedMS.
type TraceSpan struct {
	// Phase names the work: "parse", "vet", "quotient", "saturate",
	// "solve", "compose", "otf-explore".
	Phase string `json:"phase"`
	// StartMS is the span's start offset from the query's start;
	// DurationMS its wall time. Both in milliseconds.
	StartMS    float64 `json:"start_ms"`
	DurationMS float64 `json:"duration_ms"`
	// Attrs carries phase-specific details (route, pair counts, …).
	Attrs map[string]string `json:"attrs,omitempty"`
}

// OTFStats is the on-the-fly game's exploration record: how much of the
// pair space the verdict cost and how the work-stealing pool behaved.
type OTFStats struct {
	// Pairs is the number of distinct (product, spec-side) pairs interned;
	// Explored counts the pairs whose local game checks ran (≤ Pairs when
	// the game exited early).
	Pairs    int `json:"pairs"`
	Explored int `json:"explored"`
	// MaxWalk is the deepest lazy tau-closure walk (in tau steps) any
	// weak-enabledness obligation needed.
	MaxWalk int `json:"max_walk"`
	// Workers, Steals and Utilization describe the scheduler: pool size,
	// successful batch steals, and mean-over-max per-worker explored load
	// (1 = perfectly balanced).
	Workers     int     `json:"workers"`
	Steals      int     `json:"steals"`
	Utilization float64 `json:"utilization"`
	// SpecSubsets is the number of spec subsets the determinized game
	// interned (0 on the direct route).
	SpecSubsets int `json:"spec_subsets,omitempty"`
}

// NewStoreChecker returns a Checker whose engine is backed by the
// persistent artifact store at dir (created if absent): derived artifacts
// — quotients, saturated forms, closures, refinement indexes — are spilled
// to disk and reloaded by later Checkers on the same directory, so warm
// runs skip the partition solves entirely. maxBytes caps the store's size
// (0 = unbounded) with least-recently-used eviction.
func NewStoreChecker(dir string, maxBytes int64) (*Checker, error) {
	st, err := store.Open(dir, maxBytes)
	if err != nil {
		return nil, err
	}
	return &Checker{e: engine.NewWithStore(st)}, nil
}

// Do answers one request. The load callback resolves external process
// references (nil rejects them — every error is reported in the Report,
// never returned, so a batch of reports is always complete). Do is safe
// for concurrent use; artifact caching across requests comes from the
// Checker.
func (c *Checker) Do(ctx context.Context, req CheckRequest, load ProcessLoader) Report {
	return c.do(ctx, req, newLoadCache(load))
}

// DoAll answers the requests over a pool of workers (workers <= 0 selects
// GOMAXPROCS), returning one Report per request in input order. External
// references are resolved through load once per distinct reference across
// the whole batch. Cancelling the context stops unstarted requests, which
// report ErrorKindCanceled (or ErrorKindTimeout if the context's own
// deadline expired).
func (c *Checker) DoAll(ctx context.Context, reqs []CheckRequest, workers int, load ProcessLoader) []Report {
	out := make([]Report, len(reqs))
	if len(reqs) == 0 {
		return out
	}
	cache := newLoadCache(load)
	workers = PoolSize(workers, len(reqs))
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= len(reqs) {
					return
				}
				out[i] = c.do(ctx, reqs[i], cache)
			}
		}()
	}
	wg.Wait()
	return out
}

// loadCache memoizes process resolution per source string, so a batch
// mentioning one file (or one inline text) many times parses it once and
// the engine cache sees one pointer.
type loadCache struct {
	load ProcessLoader
	mu   sync.Mutex
	seen map[string]*Process
	errs map[string]error
}

func newLoadCache(load ProcessLoader) *loadCache {
	return &loadCache{load: load, seen: map[string]*Process{}, errs: map[string]error{}}
}

func (lc *loadCache) resolve(src string) (*Process, error) {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	if p, ok := lc.seen[src]; ok {
		return p, nil
	}
	if err, ok := lc.errs[src]; ok {
		return nil, err
	}
	p, err := lc.resolveUncached(src)
	if err != nil {
		lc.errs[src] = err
		return nil, err
	}
	lc.seen[src] = p
	return p, nil
}

func (lc *loadCache) resolveUncached(src string) (*Process, error) {
	switch {
	case src == "":
		return nil, fmt.Errorf("empty process source")
	case strings.HasPrefix(src, "expr:"):
		return FromExpression(src[len("expr:"):])
	case strings.ContainsRune(src, '\n'):
		if strings.HasPrefix(strings.TrimSpace(src), "des") {
			return fsp.ParseAUTString(src)
		}
		return ParseProcessString(src)
	case lc.load != nil:
		return lc.load(src)
	default:
		return nil, fmt.Errorf("external process reference %q not allowed here; inline the process text or use expr:", src)
	}
}

func inputErr(format string, args ...any) *ReportError {
	return &ReportError{Kind: ErrorKindInput, Message: fmt.Sprintf(format, args...)}
}

// classifyErr turns a check-time error into a ReportError, mapping context
// expiry onto the timeout/canceled kinds.
func classifyErr(ctx context.Context, err error) *ReportError {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return &ReportError{Kind: ErrorKindTimeout, Message: err.Error()}
	case errors.Is(err, context.Canceled):
		return &ReportError{Kind: ErrorKindCanceled, Message: err.Error()}
	case ctx.Err() != nil:
		// The engine may wrap the context error beyond errors.Is reach;
		// trust the context itself.
		kind := ErrorKindCanceled
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			kind = ErrorKindTimeout
		}
		return &ReportError{Kind: kind, Message: err.Error()}
	default:
		return &ReportError{Kind: ErrorKindCheck, Message: err.Error()}
	}
}

func (c *Checker) do(ctx context.Context, req CheckRequest, cache *loadCache) (rep Report) {
	rep = Report{Label: req.Label, Relation: req.Relation}
	start := time.Now()

	// The request's trace (if any) is installed before the deferred
	// bookkeeping closes over it: on a timeout the worker goroutine is
	// abandoned mid-phase, and rendering the trace here still captures
	// every span that completed (Spans is a mutex-guarded snapshot).
	var tr *obs.Trace
	if req.Trace {
		if tr = obs.TraceFrom(ctx); tr == nil {
			tr = obs.NewTrace(obs.RequestIDFrom(ctx))
			ctx = obs.WithTrace(ctx, tr)
		}
	}
	defer func() {
		rep.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
		if tr != nil {
			rep.Trace = renderTrace(tr)
		}
		recordQueryMetrics(&rep)
	}()

	isNetwork := req.Network != nil
	if isNetwork && (req.P != "" || req.Q != "") {
		rep.Error = inputErr("request mixes a network with pair processes p/q")
		return rep
	}
	if !isNetwork && (req.P == "" || req.Q == "") {
		rep.Error = inputErr("pair request needs both p and q")
		return rep
	}
	if rep.Relation == "" {
		if !isNetwork {
			rep.Error = inputErr("pair request needs a relation")
			return rep
		}
		rep.Relation = "weak"
	}
	rel, k, err := ParseRelation(rep.Relation)
	if err != nil {
		rep.Error = inputErr("%v", err)
		return rep
	}
	if req.K > 0 {
		k = req.K
	}
	route := req.Route
	if route == "" {
		route = RouteAuto
	}

	if req.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
		defer cancel()
	}

	run := func(r *Report) {
		if isNetwork {
			c.doNetwork(ctx, req, rel, k, route, cache, r)
		} else {
			c.doPair(ctx, req, rel, k, route, cache, r)
		}
	}
	if ctx.Done() == nil {
		run(&rep)
		return rep
	}
	// The engine observes the context only between major stages, so a
	// deadline must be enforced here: the check runs aside and an expired
	// context abandons it mid-flight. The abandoned goroutine finishes its
	// current stage against the shared caches — wasted work, but it keeps
	// the report (and a serving connection) timely.
	inner := rep
	done := make(chan struct{})
	go func() {
		defer close(done)
		run(&inner)
	}()
	select {
	case <-done:
		rep = inner
	case <-ctx.Done():
		rep.Error = classifyErr(ctx, ctx.Err())
	}
	return rep
}

func (c *Checker) doPair(ctx context.Context, req CheckRequest, rel Relation, k int, route string, cache *loadCache, rep *Report) {
	if route != RouteAuto && route != RouteDirect {
		rep.Error = inputErr("route %q does not apply to a pair query", route)
		return
	}
	sp := obs.TraceFrom(ctx).Start("parse")
	p, err := cache.resolve(req.P)
	if err != nil {
		sp.End()
		rep.Error = inputErr("process p: %v", err)
		return
	}
	q, err := cache.resolve(req.Q)
	sp.End(obs.AInt("p-states", int64(p.NumStates())))
	if err != nil {
		rep.Error = inputErr("process q: %v", err)
		return
	}
	eq, err := c.Check(ctx, p, q, rel, k)
	if err != nil {
		rep.Error = classifyErr(ctx, err)
		return
	}
	rep.Equivalent, rep.Route = eq, RouteDirect
	if !eq && req.Explain {
		rep.Counterexample = pairWitness(p, q, rel)
	}
}

// pairWitness produces a distinguishing witness for an inequivalent pair
// where one is cheap to compute; witness generation is best-effort and an
// empty string just means "none available".
func pairWitness(p, q *Process, rel Relation) string {
	switch rel {
	case Strong, Simulation:
		if phi, err := Explain(p, q); err == nil {
			return phi
		}
	case Weak, Congruence:
		if phi, err := ExplainWeak(p, q); err == nil {
			return phi
		}
	case Trace:
		if eq, word, err := TraceWitness(p, q); err == nil && !eq {
			return strings.Join(word, " ")
		}
	case Failure:
		if _, w, err := FailureEquivalent(p, q); err == nil && w != nil {
			return fmt.Sprintf("after %q refuses %s", w.Trace, w.Refusal)
		}
	}
	return ""
}

func (c *Checker) doNetwork(ctx context.Context, req CheckRequest, rel Relation, k int, route string, cache *loadCache, rep *Report) {
	nr := req.Network
	if nr.Spec == "" {
		rep.Error = inputErr("network request needs a spec")
		return
	}
	tr := obs.TraceFrom(ctx)
	sp := tr.Start("parse")
	net, err := nr.build(cache)
	if err != nil {
		sp.End()
		rep.Error = inputErr("%v", err)
		return
	}
	spec, err := cache.resolve(nr.Spec)
	sp.End(obs.AInt("components", int64(len(net.Components))))
	if err != nil {
		rep.Error = inputErr("spec: %v", err)
		return
	}
	// Every network query is vetted — the pass is linear in the
	// description, and a defective wiring explains many a surprising
	// verdict. Findings ride along in the report; they never block the
	// check (the CLI's -strict-vet enforces them before submitting).
	sp = tr.Start("vet")
	if diags, err := VetNetwork(net, spec); err == nil {
		rep.Diagnostics = diags
	}
	sp.End(obs.AInt("diagnostics", int64(len(rep.Diagnostics))))
	switch route {
	case RouteAuto, "otf":
		eq, info, err := c.CheckNetworkOTFInfo(ctx, net, spec, rel, k)
		if err != nil {
			rep.Error = classifyErr(ctx, err)
			return
		}
		rep.Equivalent = eq
		rep.Route = info.Route
		rep.Fallback = info.Fallback
		rep.Counterexample = info.CounterexampleString()
		if info.OnTheFly {
			rep.OTF = &OTFStats{
				Pairs:       info.Pairs,
				Explored:    info.Explored,
				MaxWalk:     info.MaxWalk,
				Workers:     info.Workers,
				Steals:      info.Steals,
				Utilization: info.Utilization,
				SpecSubsets: info.SpecSubsets,
			}
		}
	case RouteMTC:
		eq, err := c.CheckNetwork(ctx, net, spec, rel, k)
		if err != nil {
			rep.Error = classifyErr(ctx, err)
			return
		}
		rep.Equivalent, rep.Route = eq, RouteMTC
	default:
		rep.Error = inputErr("unknown route %q (want auto, otf or mtc)", route)
	}
}

// build materializes the network from its data form, resolving every
// component through the cache so repeated instances share one *Process.
func (nr *NetworkRequest) build(cache *loadCache) (*Network, error) {
	if len(nr.Components) == 0 {
		return nil, fmt.Errorf("network has no components")
	}
	net := &Network{Name: nr.Name}
	for i, cr := range nr.Components {
		count := cr.Count
		if count == 0 {
			count = 1
		}
		if count < 0 || count > maxComponentCount {
			return nil, fmt.Errorf("component %d: count %d outside 1..%d", i+1, cr.Count, maxComponentCount)
		}
		p, err := cache.resolve(cr.Process)
		if err != nil {
			return nil, fmt.Errorf("component %d: %w", i+1, err)
		}
		for j := 0; j < count; j++ {
			net.Add(p, cr.Relabel)
		}
	}
	net.Hide(nr.Hide...)
	for _, r := range nr.Sync {
		net.AddSync(r.Result, r.Parts...)
	}
	if err := net.Validate(); err != nil {
		return nil, err
	}
	return net, nil
}

// maxComponentCount bounds the parameterized instantiation of one
// component ref: the product is exponential in the component count, so a
// count beyond this is a typo or an attack, not a workload.
const maxComponentCount = 1024

// BuildNetwork materializes a NetworkRequest into a *Network plus its
// (possibly nil) resolved spec, resolving external references through
// load. This is the long form behind Checker.Do for callers — like the
// CLI's spec-less compose-and-print mode — that need the network itself.
func (nr NetworkRequest) BuildNetwork(load ProcessLoader) (*Network, *Process, error) {
	cache := newLoadCache(load)
	net, err := nr.build(cache)
	if err != nil {
		return nil, nil, err
	}
	var spec *Process
	if nr.Spec != "" {
		if spec, err = cache.resolve(nr.Spec); err != nil {
			return nil, nil, fmt.Errorf("spec: %w", err)
		}
	}
	return net, spec, nil
}
