// Two-place buffer: the canonical CCS composition exercise, using the
// direct-product operators that Section 6 of the paper proposes for
// extended star expressions.
//
//	CellA = in · mid' · CellA        (accept on "in", hand over on "mid")
//	CellB = mid · out · CellB        (take over, emit on "out")
//	Impl  = (CellA | CellB) \ {mid}  (composition, then restriction)
//	Spec  = two-place FIFO over {in, out}
//
// The handshake on mid becomes a tau; observationally the implementation
// is the specification: Impl ≈ Spec — checked in polynomial time per
// Theorem 4.1(a).
//
// Run with: go run ./examples/buffer
package main

import (
	"fmt"
	"log"

	"ccs"
	"ccs/internal/core"
	"ccs/internal/fsp"
)

func buildCellA() *fsp.FSP {
	b := fsp.NewBuilder("CellA")
	b.AddStates(2)
	b.ArcName(0, "in", 1)
	b.ArcName(1, "mid'", 0)
	return b.MustBuild()
}

func buildCellB() *fsp.FSP {
	b := fsp.NewBuilder("CellB")
	b.AddStates(2)
	b.ArcName(0, "mid", 1)
	b.ArcName(1, "out", 0)
	return b.MustBuild()
}

func buildSpec() *fsp.FSP {
	b := fsp.NewBuilder("Buf2")
	b.AddStates(3)
	b.ArcName(0, "in", 1)
	b.ArcName(1, "in", 2)
	b.ArcName(2, "out", 1)
	b.ArcName(1, "out", 0)
	return b.MustBuild()
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cellA, cellB, spec := buildCellA(), buildCellB(), buildSpec()

	composed, err := fsp.Compose(cellA, cellB)
	if err != nil {
		return err
	}
	impl, err := fsp.Restrict(composed, "mid")
	if err != nil {
		return err
	}
	fmt.Printf("CellA | CellB: %d states, %d transitions\n", composed.NumStates(), composed.NumTransitions())
	fmt.Printf("(CellA|CellB)\\{mid}: %d states, %d transitions (handshake is now tau)\n",
		impl.NumStates(), impl.NumTransitions())

	ok, err := ccs.ObservationallyEquivalent(impl, spec)
	if err != nil {
		return err
	}
	fmt.Printf("\nImpl ≈ Buf2 spec: %v\n", ok)

	strong, err := ccs.StronglyEquivalent(impl, spec)
	if err != nil {
		return err
	}
	fmt.Printf("Impl ~ Buf2 spec: %v (the internal transfer is visible to ~)\n", strong)

	// Minimizing the implementation modulo ≈ recovers the 3-state spec.
	min, _, err := core.QuotientWeak(impl)
	if err != nil {
		return err
	}
	fmt.Printf("\nImpl/≈: %d states (spec has %d)\n", min.NumStates(), spec.NumStates())

	// A misconnected variant: CellB listens on the wrong channel, so no
	// handshake ever happens and the pipeline deadlocks after one "in".
	badB := func() *fsp.FSP {
		b := fsp.NewBuilder("BadB")
		b.AddStates(2)
		b.ArcName(0, "wrong", 1)
		b.ArcName(1, "out", 0)
		return b.MustBuild()
	}()
	badComposed, err := fsp.Compose(cellA, badB)
	if err != nil {
		return err
	}
	bad, err := fsp.Restrict(badComposed, "mid", "wrong")
	if err != nil {
		return err
	}
	okBad, err := ccs.ObservationallyEquivalent(bad, spec)
	if err != nil {
		return err
	}
	fmt.Printf("\nmiswired pipeline ≈ spec: %v\n", okBad)
	if !okBad {
		phi, err := ccs.ExplainWeak(spec, bad)
		if err != nil {
			return err
		}
		fmt.Printf("spec satisfies, miswired does not: %s\n", phi)
	}
	return nil
}
