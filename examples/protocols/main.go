// Distributed-protocols gallery: the synchronization-table workloads —
// leader election on a ring, two-phase commit, an f<n/3 Byzantine-quorum
// vote, and a self-stabilizing token ring — each checked against its
// one-line specification on both engine routes. Every protocol comes with
// a defective twin (a lost acknowledgement, a skipped participant, a
// starved quorum, a sinkhole station) whose inequivalence the on-the-fly
// game reports with a counterexample; the program asserts that both
// routes agree with the catalogued verdict on every entry, so it doubles
// as an integration check of the sync-vector pipeline in CI.
//
// Run with: go run ./examples/protocols
package main

import (
	"context"
	"fmt"
	"log"

	"ccs"
	"ccs/internal/gen"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	c := ccs.NewChecker()
	fmt.Println("== the distributed-protocols gallery ==")
	for _, entry := range gen.ProtocolGallery() {
		mtc, err := c.CheckNetwork(ctx, entry.Net, entry.Spec, ccs.Weak, 0)
		if err != nil {
			return fmt.Errorf("%s (mtc): %v", entry.Name, err)
		}
		otf, info, err := c.CheckNetworkOTFInfo(ctx, entry.Net, entry.Spec, ccs.Weak, 0)
		if err != nil {
			return fmt.Errorf("%s (otf): %v", entry.Name, err)
		}
		if mtc != entry.Weak || otf != entry.Weak {
			return fmt.Errorf("%s: mtc=%v otf=%v, want %v", entry.Name, mtc, otf, entry.Weak)
		}

		verdict := "≈ spec"
		if !entry.Weak {
			verdict = "NOT ≈ spec"
		}
		fmt.Printf("\n%s — %s\n", entry.Name, entry.Description)
		fmt.Printf("  %d components, %d sync rule(s); %s (route %s, %d pairs)\n",
			len(entry.Net.Components), len(entry.Net.Sync), verdict, info.Route, info.Pairs)
		if !entry.Weak && info.CounterexampleReason != "" {
			fmt.Printf("  counterexample: %s\n", info.CounterexampleString())
		}
	}
	fmt.Println("\nboth routes agree with the catalogued verdict on every entry")
	return nil
}
