// Protocol verification: check that a retransmitting link implementation
// is observationally equivalent to its one-line specification, and catch a
// buggy variant — the workflow the paper's polynomial-time result for ≈
// makes practical.
//
//	Spec:  send · recv · Spec
//	Impl:  send, then internally attempt transmission (tau); an attempt
//	       either delivers (recv) or is lost and retried (tau back)
//	Buggy: like Impl, but a lost attempt can also internally wedge the
//	       link into a dead state
//
// Run with: go run ./examples/protocol
package main

import (
	"fmt"
	"log"

	"ccs"
)

func buildSpec() *ccs.Process {
	b := ccs.NewBuilder("Spec")
	b.AddStates(2)
	b.ArcName(0, "send", 1)
	b.ArcName(1, "recv", 0)
	return b.MustBuild()
}

func buildImpl() *ccs.Process {
	b := ccs.NewBuilder("Impl")
	b.AddStates(3)
	b.ArcName(0, "send", 1)
	b.ArcName(1, "tau", 2)  // attempt transmission
	b.ArcName(2, "tau", 1)  // lost: retry
	b.ArcName(2, "recv", 0) // delivered
	return b.MustBuild()
}

func buildBuggy() *ccs.Process {
	b := ccs.NewBuilder("Buggy")
	b.AddStates(4)
	b.ArcName(0, "send", 1)
	b.ArcName(1, "tau", 2)
	b.ArcName(2, "tau", 1)
	b.ArcName(2, "recv", 0)
	b.ArcName(2, "tau", 3) // wedged: no way out
	return b.MustBuild()
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	spec, impl, buggy := buildSpec(), buildImpl(), buildBuggy()

	ok, err := ccs.ObservationallyEquivalent(spec, impl)
	if err != nil {
		return err
	}
	fmt.Printf("Impl  ≈ Spec: %v — retransmission loop is invisible to observers\n", ok)

	// Strong equivalence must fail: the tau moves are visible to ~.
	strong, err := ccs.StronglyEquivalent(spec, impl)
	if err != nil {
		return err
	}
	fmt.Printf("Impl  ~ Spec: %v — strong equivalence counts the internal moves\n\n", strong)

	bad, err := ccs.ObservationallyEquivalent(spec, buggy)
	if err != nil {
		return err
	}
	fmt.Printf("Buggy ≈ Spec: %v\n", bad)
	if !bad {
		phi, err := ccs.ExplainWeak(buggy, spec)
		if err != nil {
			return err
		}
		fmt.Printf("bug witness (weak HML, ⟨ε⟩ = after some taus): %s\n", phi)
		fmt.Println("reading: Buggy can silently reach a state from which recv is impossible")
	}

	// Minimizing the implementation recovers (a process the size of) the
	// spec: the quotient by ≈ collapses the retry loop.
	min, err := ccs.MinimizeWeak(impl)
	if err != nil {
		return err
	}
	fmt.Printf("\nImpl has %d states; Impl/≈ has %d states; Spec has %d states\n",
		impl.NumStates(), min.NumStates(), spec.NumStates())
	back, err := ccs.ObservationallyEquivalent(min, spec)
	if err != nil {
		return err
	}
	fmt.Printf("Impl/≈ ≈ Spec: %v\n", back)
	return nil
}
