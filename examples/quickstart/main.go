// Quickstart: build two processes, check them under every equivalence
// notion of the paper, and minimize one.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ccs"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Two star expressions with the same language but different branching
	// structure — the paper's canonical example of why CCS refines the
	// classical theory of regular sets.
	p, err := ccs.FromExpression("a(b+c)")
	if err != nil {
		return err
	}
	q, err := ccs.FromExpression("ab+ac")
	if err != nil {
		return err
	}
	fmt.Printf("P = a(b+c): %d states, %d transitions\n", p.NumStates(), p.NumTransitions())
	fmt.Printf("Q = ab+ac:  %d states, %d transitions\n\n", q.NumStates(), q.NumTransitions())

	trace, err := ccs.TraceEquivalent(p, q)
	if err != nil {
		return err
	}
	strong, err := ccs.StronglyEquivalent(p, q)
	if err != nil {
		return err
	}
	weak, err := ccs.ObservationallyEquivalent(p, q)
	if err != nil {
		return err
	}
	fmt.Printf("trace  (≈_1): %v   — same language\n", trace)
	fmt.Printf("strong (~):   %v  — different branching\n", strong)
	fmt.Printf("weak   (≈):   %v  — no taus, so same as strong here\n\n", weak)

	// When processes differ, the library explains why with a
	// Hennessy-Milner formula satisfied by P but not Q.
	phi, err := ccs.Explain(p, q)
	if err != nil {
		return err
	}
	fmt.Printf("P satisfies, Q does not: %s\n\n", phi)

	// Minimization: quotient by strong equivalence.
	dup, err := ccs.FromExpression("ab+ab+ab")
	if err != nil {
		return err
	}
	min, err := ccs.MinimizeStrong(dup)
	if err != nil {
		return err
	}
	fmt.Printf("ab+ab+ab minimized: %d states -> %d states\n", dup.NumStates(), min.NumStates())
	fmt.Println()
	fmt.Println("minimized process in interchange format:")
	fmt.Print(ccs.FormatProcess(min))
	return nil
}
