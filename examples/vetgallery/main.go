// Static-analysis gallery: every diagnostic code of the vet pass
// demonstrated on a known-defective network (internal/gen's VetGallery —
// the in-process twins of the descriptions under examples/vet/), plus a
// clean network as the negative control. The program asserts that each
// exhibit reports exactly its catalogued codes, once each, so it doubles
// as an integration check of the analyzer in CI.
//
// Run with: go run ./examples/vetgallery
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	"ccs"
	"ccs/internal/gen"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("== the vet defect gallery ==")
	for _, entry := range gen.VetGallery() {
		diags, err := ccs.VetNetwork(entry.Net, entry.Spec)
		if err != nil {
			return fmt.Errorf("%s: %v", entry.Name, err)
		}
		got := make([]string, len(diags))
		for i, d := range diags {
			got[i] = d.Code
		}
		sort.Strings(got)
		want := append([]string(nil), entry.Codes...)
		sort.Strings(want)
		if strings.Join(got, ",") != strings.Join(want, ",") {
			return fmt.Errorf("%s: reported %v, want %v", entry.Name, got, want)
		}

		fmt.Printf("\n%s — %s\n", entry.Name, entry.Description)
		if len(diags) == 0 {
			fmt.Println("  clean: no findings")
			continue
		}
		for _, d := range diags {
			fmt.Printf("  %s\n", d)
		}
	}
	fmt.Println("\nevery exhibit reported exactly its catalogued codes")
	return nil
}
