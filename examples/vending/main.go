// Vending machine: Milner's classic example of why observational
// equivalence distinguishes more than language equivalence, and where
// failure semantics sits between them.
//
// Three machines sell coffee and tea for a coin:
//
//	VM1 = coin · (coffee + tea)          — the user chooses after paying
//	VM2 = coin·coffee + coin·tea         — the machine commits at the coin
//	VM3 = coin · (τ·coffee + τ·tea)      — the machine commits internally
//	                                       after the coin
//
// All three accept the same traces. VM1 lets the environment pick the
// drink; VM2 and VM3 may refuse coffee after the coin. The library detects
// all of this and explains it.
//
// Run with: go run ./examples/vending
package main

import (
	"fmt"
	"log"

	"ccs"
)

func buildVM1() *ccs.Process {
	b := ccs.NewBuilder("VM1")
	b.AddStates(4)
	b.ArcName(0, "coin", 1)
	b.ArcName(1, "coffee", 2)
	b.ArcName(1, "tea", 3)
	for s := ccs.State(0); s < 4; s++ {
		b.Accept(s)
	}
	return b.MustBuild()
}

func buildVM2() *ccs.Process {
	b := ccs.NewBuilder("VM2")
	b.AddStates(5)
	b.ArcName(0, "coin", 1)
	b.ArcName(0, "coin", 2)
	b.ArcName(1, "coffee", 3)
	b.ArcName(2, "tea", 4)
	for s := ccs.State(0); s < 5; s++ {
		b.Accept(s)
	}
	return b.MustBuild()
}

func buildVM3() *ccs.Process {
	b := ccs.NewBuilder("VM3")
	b.AddStates(6)
	b.ArcName(0, "coin", 1)
	b.ArcName(1, "tau", 2)
	b.ArcName(1, "tau", 3)
	b.ArcName(2, "coffee", 4)
	b.ArcName(3, "tea", 5)
	for s := ccs.State(0); s < 6; s++ {
		b.Accept(s)
	}
	return b.MustBuild()
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	vm1, vm2, vm3 := buildVM1(), buildVM2(), buildVM3()

	pairs := []struct {
		name string
		p, q *ccs.Process
	}{
		{"VM1 vs VM2", vm1, vm2},
		{"VM1 vs VM3", vm1, vm3},
		{"VM2 vs VM3", vm2, vm3},
	}
	fmt.Printf("%-12s %8s %8s %8s %8s\n", "pair", "trace", "failure", "weak", "strong")
	for _, pr := range pairs {
		trace, err := ccs.TraceEquivalent(pr.p, pr.q)
		if err != nil {
			return err
		}
		fail, _, err := ccs.FailureEquivalent(pr.p, pr.q)
		if err != nil {
			return err
		}
		weak, err := ccs.ObservationallyEquivalent(pr.p, pr.q)
		if err != nil {
			return err
		}
		strong, err := ccs.StronglyEquivalent(pr.p, pr.q)
		if err != nil {
			return err
		}
		fmt.Printf("%-12s %8v %8v %8v %8v\n", pr.name, trace, fail, weak, strong)
	}
	fmt.Println()

	// Why are VM1 and VM2 not failure equivalent? The witness is the
	// after-coin refusal.
	_, w, err := ccs.FailureEquivalent(vm1, vm2)
	if err != nil {
		return err
	}
	if w != nil {
		side := "VM2"
		if w.InFirst {
			side = "VM1"
		}
		fmt.Printf("failure witness: after trace %q, only %s can refuse %s\n",
			w.Trace, side, w.Refusal)
	}

	// And the modal explanation of VM1 vs VM2 (weak modalities).
	phi, err := ccs.ExplainWeak(vm1, vm2)
	if err != nil {
		return err
	}
	fmt.Printf("VM1 satisfies but VM2 does not: %s\n", phi)

	// VM2 and VM3 are failure equivalent — no experimenter can tell whether
	// the machine commits on the coin arc or by an internal tau afterwards;
	// the refusal sets after "coin" are identical. But they are NOT
	// observationally equivalent: weak bisimulation sees that VM3 passes
	// through a state where both drinks are still weakly possible, and VM2
	// never does. This is the ≡ vs ≈ gap of Table II, live.
	fail23, _, err := ccs.FailureEquivalent(vm2, vm3)
	if err != nil {
		return err
	}
	weak23, err := ccs.ObservationallyEquivalent(vm2, vm3)
	if err != nil {
		return err
	}
	fmt.Printf("\nVM2 ≡ VM3: %v, VM2 ≈ VM3: %v — failures cannot see where the\n", fail23, weak23)
	fmt.Println("commitment happens; weak bisimulation can (≈ ⊊ ≡ on restricted processes)")
	return nil
}
