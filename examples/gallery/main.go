// Gallery: the executable form of the paper's Fig. 2 — restricted
// observable unary processes separating the equivalence notions of
// Table II pairwise — rendered as a full spectrum per pair.
//
// Run with: go run ./examples/gallery
package main

import (
	"fmt"
	"log"

	"ccs"
	"ccs/internal/gen"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	for _, pair := range gen.Fig2Gallery() {
		fmt.Printf("── %s: %s vs %s\n", pair.Name, pair.P.Name(), pair.Q.Name())
		fmt.Printf("   %s\n", pair.Description)
		rows, err := ccs.Spectrum(pair.P, pair.Q)
		if err != nil {
			return err
		}
		for _, row := range rows {
			verdict := "differ"
			if row.Skipped {
				verdict = "n/a"
			} else if row.Holds {
				verdict = "EQUAL"
			}
			note := ""
			if row.Note != "" {
				note = "  (" + row.Note + ")"
			}
			fmt.Printf("   %-28s %-7s%s\n", row.Relation, verdict, note)
		}
		fmt.Println()
	}
	fmt.Println("Rows 2 and 3 witness the strict chain  ≈ ⊊ ≡ ⊊ ≈₁  of Proposition 2.2.3.")
	return nil
}
