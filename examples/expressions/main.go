// Star-expression algebra: the laws of regular expressions that survive —
// and fail — when the semantics moves from languages to CCS equivalence
// classes (Section 2.3).
//
// Run with: go run ./examples/expressions
package main

import (
	"fmt"
	"log"

	"ccs"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	laws := []struct {
		name     string
		lhs, rhs string
	}{
		{"commutativity of +", "a+b", "b+a"},
		{"associativity of +", "(a+b)+c", "a+(b+c)"},
		{"idempotence of +", "a+a", "a"},
		{"associativity of ·", "(ab)c", "a(bc)"},
		{"left distributivity", "(a+b)c", "ac+bc"},
		{"right distributivity", "a(b+c)", "ab+ac"},
		{"star unrolling", "a*", "aa*+0*"},
		{"annihilator r·0 = 0", "a0", "0"},
		{"unit 0* (empty word)", "0*a", "a"},
	}
	fmt.Printf("%-24s %-10s %-10s %-10s\n", "law", "language", "CCS", "verdict")
	for _, law := range laws {
		lang, err := ccs.LanguageEquivalentExpressions(law.lhs, law.rhs)
		if err != nil {
			return fmt.Errorf("%s: %w", law.name, err)
		}
		ccsEq, err := ccs.CCSEquivalentExpressions(law.lhs, law.rhs)
		if err != nil {
			return fmt.Errorf("%s: %w", law.name, err)
		}
		verdict := "holds"
		if lang && !ccsEq {
			verdict = "CCS-only-fails"
		} else if !lang {
			verdict = "fails"
		}
		fmt.Printf("%-24s %-10v %-10v %-10s\n", law.name, lang, ccsEq, verdict)
	}

	fmt.Println()
	fmt.Println("The two laws the paper singles out (Section 2.3, item 3):")
	fmt.Println("  r(s+t) = rs+rt and r·0 = 0 hold for languages, fail in CCS —")
	fmt.Println("  CCS semantics remembers when a choice is resolved.")

	// Show a representative FSP.
	p, err := ccs.FromExpression("(ab)*")
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Printf("representative FSP of (ab)* — %d states, %d transitions:\n",
		p.NumStates(), p.NumTransitions())
	fmt.Print(ccs.FormatProcess(p))
	return nil
}
