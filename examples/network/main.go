// Network verification: scale equivalence checking to a network of
// communicating processes by minimizing components before composing them.
//
// The network is the classic buffer pipeline: n one-place relay cells,
// each with an internal retransmission churn (tau steps), chained through
// hidden channels. Its flat product is exponential in n and fat with tau
// states; but observation congruence is preserved by composition,
// restriction and relabeling, so each cell can be minimized first — it
// collapses to 2 states — and the composed minimum is a few dozen states
// that still decides every weak-family query about the network.
//
// The specification is the n-place counter: the pipeline of n one-place
// buffers IS an n-place buffer, observationally. A lossy variant of one
// cell breaks the law and is caught.
//
// Run with: go run ./examples/network
package main

import (
	"context"
	"fmt"
	"log"

	"ccs"
	"ccs/internal/gen"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const stages, churn = 4, 3
	net := gen.RelayNetwork(stages, churn)
	spec := gen.CounterSpec(stages)

	flat, err := ccs.ComposeNetwork(net)
	if err != nil {
		return err
	}
	min, err := ccs.MinimizeNetwork(net)
	if err != nil {
		return err
	}
	fmt.Printf("relay pipeline, %d stages, churn %d:\n", stages, churn)
	fmt.Printf("  flat product:         %5d states, %5d transitions\n", flat.NumStates(), flat.NumTransitions())
	fmt.Printf("  minimize-then-compose:%5d states, %5d transitions\n", min.NumStates(), min.NumTransitions())

	ctx := context.Background()
	checker := ccs.NewChecker()
	eq, err := checker.CheckNetwork(ctx, net, spec, ccs.Weak, 0)
	if err != nil {
		return err
	}
	fmt.Printf("\npipeline ≈ %d-place buffer: %v — n chained 1-place buffers are an n-place buffer\n", stages, eq)

	// The two routes agree, by congruence: min ≈ᶜ flat.
	same, err := ccs.ObservationCongruent(flat, min)
	if err != nil {
		return err
	}
	fmt.Printf("minimized product ≈ᶜ flat product: %v\n", same)

	// A lossy middle stage breaks the buffer law; the compositional check
	// catches it just as the flat one would.
	lossy := gen.LossyRelayNetwork(stages, churn)
	bad, err := checker.CheckNetwork(ctx, lossy, spec, ccs.Weak, 0)
	if err != nil {
		return err
	}
	fmt.Printf("\nlossy pipeline ≈ %d-place buffer: %v — a dropped message refuses output forever\n", stages, bad)

	// On-the-fly: the token ring's flat product is exponential in the
	// station count (idle stations churn independent tau loops), but the
	// lazy product-vs-spec game never builds it — and on the buggy ring,
	// where one station can drop the token, it stops at the first
	// distinguishing state after a handful of pairs.
	const stations = 8
	ring := gen.TokenRing(stations)
	ringSpec := gen.TokenRingSpec()
	ok, err := checker.CheckNetworkOTF(ctx, ring, ringSpec, ccs.Weak, 0)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("token ring rejected")
	}
	fmt.Printf("\n%d-station token ring ≈ an endless work stream: %v (checked on the fly)\n", stations, ok)
	buggy := gen.BuggyTokenRing(stations)
	flatIdx, _, err := buggy.Index()
	if err != nil {
		return err
	}
	bad, err = checker.CheckNetworkOTF(ctx, buggy, ringSpec, ccs.Weak, 0)
	if err != nil {
		return err
	}
	if bad {
		return fmt.Errorf("buggy token ring accepted")
	}
	fmt.Printf("buggy token ring ≈ work stream: %v — the game found the dropped token\n", bad)
	fmt.Printf("  (flat product: %d states; the on-the-fly check never built it)\n", flatIdx.N())

	fmt.Println("\ngenerated network gallery:")
	for _, entry := range gen.NetworkGallery() {
		got, err := checker.CheckNetwork(ctx, entry.Net, entry.Spec, ccs.Weak, 0)
		if err != nil {
			return err
		}
		otf, err := checker.CheckNetworkOTF(ctx, entry.Net, entry.Spec, ccs.Weak, 0)
		if err != nil {
			return err
		}
		if got != otf {
			return fmt.Errorf("%s: routes disagree: mtc=%v otf=%v", entry.Name, got, otf)
		}
		verdict := "≈"
		if !got {
			verdict = "≉"
		}
		fmt.Printf("  %-20s %s spec  (%s)\n", entry.Name, verdict, entry.Description)
	}
	return nil
}
