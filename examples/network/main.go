// Network verification: scale equivalence checking to a network of
// communicating processes by minimizing components before composing them.
//
// The network is the classic buffer pipeline: n one-place relay cells,
// each with an internal retransmission churn (tau steps), chained through
// hidden channels. Its flat product is exponential in n and fat with tau
// states; but observation congruence is preserved by composition,
// restriction and relabeling, so each cell can be minimized first — it
// collapses to 2 states — and the composed minimum is a few dozen states
// that still decides every weak-family query about the network.
//
// The specification is the n-place counter: the pipeline of n one-place
// buffers IS an n-place buffer, observationally. A lossy variant of one
// cell breaks the law and is caught.
//
// Run with: go run ./examples/network
package main

import (
	"context"
	"fmt"
	"log"

	"ccs"
	"ccs/internal/gen"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const stages, churn = 4, 3
	net := gen.RelayNetwork(stages, churn)
	spec := gen.CounterSpec(stages)

	flat, err := ccs.ComposeNetwork(net)
	if err != nil {
		return err
	}
	min, err := ccs.MinimizeNetwork(net)
	if err != nil {
		return err
	}
	fmt.Printf("relay pipeline, %d stages, churn %d:\n", stages, churn)
	fmt.Printf("  flat product:         %5d states, %5d transitions\n", flat.NumStates(), flat.NumTransitions())
	fmt.Printf("  minimize-then-compose:%5d states, %5d transitions\n", min.NumStates(), min.NumTransitions())

	ctx := context.Background()
	checker := ccs.NewChecker()
	eq, err := checker.CheckNetwork(ctx, net, spec, ccs.Weak, 0)
	if err != nil {
		return err
	}
	fmt.Printf("\npipeline ≈ %d-place buffer: %v — n chained 1-place buffers are an n-place buffer\n", stages, eq)

	// The two routes agree, by congruence: min ≈ᶜ flat.
	same, err := ccs.ObservationCongruent(flat, min)
	if err != nil {
		return err
	}
	fmt.Printf("minimized product ≈ᶜ flat product: %v\n", same)

	// A lossy middle stage breaks the buffer law; the compositional check
	// catches it just as the flat one would.
	lossy := gen.LossyRelayNetwork(stages, churn)
	bad, err := checker.CheckNetwork(ctx, lossy, spec, ccs.Weak, 0)
	if err != nil {
		return err
	}
	fmt.Printf("\nlossy pipeline ≈ %d-place buffer: %v — a dropped message refuses output forever\n", stages, bad)

	fmt.Println("\ngenerated network gallery:")
	for _, entry := range gen.NetworkGallery() {
		got, err := checker.CheckNetwork(ctx, entry.Net, entry.Spec, ccs.Weak, 0)
		if err != nil {
			return err
		}
		verdict := "≈"
		if !got {
			verdict = "≉"
		}
		fmt.Printf("  %-14s %s spec  (%s)\n", entry.Name, verdict, entry.Description)
	}
	return nil
}
