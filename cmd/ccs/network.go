package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"ccs"
)

// cmdNetwork checks a network of communicating processes against a
// specification through the compositional minimize-then-compose pipeline,
// or — with -otf — through the on-the-fly game that never materializes
// the product. The network FILE has one directive per line:
//
//	component A [old=new ...]   # add an instance of process file A,
//	                            # optionally relabeling its actions
//	hide NAME...                # restrict channels (handshakes survive)
//	spec S                      # the specification process
//	rel REL                     # relation (overridden by -rel)
//
// Process arguments are files or "expr:" expressions, like everywhere
// else; '#' starts a comment. Without a spec the composed (minimized)
// process is printed in the interchange format instead of checked.
// -flat skips component minimization; -stats additionally materializes
// the flat product's refinement index to report its exact size and, with
// -otf, reports the route actually taken (otf, otf-determinized, or
// mtc-fallback with the reason). An inequivalent on-the-fly verdict
// prints the game's distinguishing counterexample.
//
// Exit codes align with ccs batch: 0 equivalent, 1 inequivalent, 2 usage
// or input error, 3 when the query itself failed to check (e.g. a
// relation's side conditions were violated by the composed product).
func cmdNetwork(args []string) (*bool, error) {
	fs := flag.NewFlagSet("network", flag.ContinueOnError)
	relFlag := fs.String("rel", "", "relation (default: the file's rel directive, else weak)")
	flat := fs.Bool("flat", false, "compose the flat product (skip component minimization)")
	otfFlag := fs.Bool("otf", false, "check on the fly (lazy product-vs-spec game; nondeterministic specs are determinized lazily, with a fallback only when the game cannot play)")
	stats := fs.Bool("stats", false, "report flat product size via the CSR index")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() != 1 {
		return nil, fmt.Errorf("network wants one description file argument (or - for stdin)")
	}
	if *flat && *otfFlag {
		return nil, fmt.Errorf("-flat and -otf are mutually exclusive")
	}
	var in io.Reader = os.Stdin
	if fs.Arg(0) != "-" {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return nil, err
		}
		defer f.Close()
		in = f
	}
	net, spec, fileRel, err := parseNetwork(in)
	if err != nil {
		return nil, err
	}
	relName := "weak"
	if fileRel != "" {
		relName = fileRel
	}
	if *relFlag != "" {
		relName = *relFlag
	}
	rel, k, err := ccs.ParseRelation(relName)
	if err != nil {
		return nil, err
	}

	if *stats {
		idx, _, err := net.Index()
		if err != nil {
			return nil, queryErr(err)
		}
		fmt.Fprintf(os.Stderr, "flat product: %d states, %d transitions\n", idx.N(), idx.NumEdges())
	}

	if spec == nil {
		// No spec: emit the composed process itself. That necessarily
		// materializes the product, which is exactly what -otf promises
		// not to do — reject the combination instead of ignoring the flag.
		if *otfFlag {
			return nil, fmt.Errorf("-otf checks against a spec and never composes; the description has no spec directive")
		}
		composed, err := composeFor(net, *flat)
		if err != nil {
			return nil, queryErr(err)
		}
		fmt.Fprintf(os.Stderr, "composed: %d states, %d transitions (%s)\n",
			composed.NumStates(), composed.NumTransitions(), routeName(*flat))
		fmt.Print(ccs.FormatProcess(composed))
		return nil, nil
	}

	var eq bool
	route := routeName(*flat)
	counterexample := ""
	switch {
	case *flat:
		composed, err := net.FSP()
		if err != nil {
			return nil, queryErr(err)
		}
		eq, err = ccs.Equivalent(composed, spec, rel, k)
		if err != nil {
			return nil, queryErr(err)
		}
	case *otfFlag:
		var info ccs.NetworkOTFInfo
		eq, info, err = ccs.NewChecker().CheckNetworkOTFInfo(context.Background(), net, spec, rel, k)
		if err != nil {
			return nil, queryErr(err)
		}
		// Report the route actually taken — a silent route change is a
		// correctness trap for anyone benchmarking: the engine plays the
		// game directly, determinizes the spec on the fly, or falls back
		// to minimize-then-compose when the game genuinely cannot play.
		switch info.Route {
		case ccs.RouteOTF:
			route = "on-the-fly"
		case ccs.RouteOTFDeterminized:
			route = "on-the-fly, determinized spec"
		default:
			route = "minimize-then-compose fallback"
			fmt.Fprintf(os.Stderr, "on-the-fly route unavailable, fell back to minimize-then-compose: %s\n", info.Fallback)
		}
		if *stats {
			if info.OnTheFly {
				subsets := ""
				if info.SpecSubsets > 0 {
					subsets = fmt.Sprintf(", %d spec subsets", info.SpecSubsets)
				}
				fmt.Fprintf(os.Stderr, "otf route: %s (%d pairs, depth %d%s)\n", info.Route, info.Pairs, info.Depth, subsets)
			} else {
				fmt.Fprintf(os.Stderr, "otf route: %s (%s)\n", info.Route, info.Fallback)
			}
		}
		counterexample = info.CounterexampleString()
	default:
		eq, err = ccs.CheckNetwork(context.Background(), net, spec, rel, k)
		if err != nil {
			return nil, queryErr(err)
		}
	}
	if eq {
		fmt.Printf("network equivalent to spec (%s, %s)\n", relName, route)
	} else {
		fmt.Printf("network NOT equivalent to spec (%s, %s)\n", relName, route)
		if counterexample != "" {
			fmt.Printf("counterexample: %s\n", counterexample)
		}
	}
	return &eq, nil
}

// queryErr marks an error that occurred while answering a well-formed
// query, aligning the network exit codes with ccs batch: the run got as
// far as checking, so the failure exits 3, distinguishable both from a
// usage/input error (2) and from an inequivalent verdict (1).
func queryErr(err error) error {
	return &exitError{code: 3, err: err}
}

func routeName(flat bool) string {
	if flat {
		return "flat composition"
	}
	return "minimize-then-compose"
}

// composeFor materializes the network on the selected route.
func composeFor(net *ccs.Network, flat bool) (*ccs.Process, error) {
	if flat {
		return ccs.ComposeNetwork(net)
	}
	return ccs.MinimizeNetwork(net)
}

// parseNetwork reads the network description. Process files are loaded
// once and shared across component instances, so the engine's artifact
// cache minimizes each distinct process a single time.
func parseNetwork(in io.Reader) (*ccs.Network, *ccs.Process, string, error) {
	procs := map[string]*ccs.Process{}
	load := func(arg string) (*ccs.Process, error) {
		if p, ok := procs[arg]; ok {
			return p, nil
		}
		p, err := loadProcess(arg)
		if err != nil {
			return nil, err
		}
		procs[arg] = p
		return p, nil
	}

	net := &ccs.Network{}
	var spec *ccs.Process
	var rel string
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "name":
			if len(fields) != 2 {
				return nil, nil, "", fmt.Errorf("line %d: name wants one argument", lineNo)
			}
			net.Name = fields[1]
		case "component":
			if len(fields) < 2 {
				return nil, nil, "", fmt.Errorf("line %d: component wants a process argument", lineNo)
			}
			p, err := load(fields[1])
			if err != nil {
				return nil, nil, "", fmt.Errorf("line %d: %w", lineNo, err)
			}
			var relabel map[string]string
			for _, pair := range fields[2:] {
				old, to, ok := strings.Cut(pair, "=")
				if !ok || old == "" || to == "" {
					return nil, nil, "", fmt.Errorf("line %d: relabeling %q is not old=new", lineNo, pair)
				}
				if relabel == nil {
					relabel = map[string]string{}
				}
				relabel[old] = to
			}
			net.Add(p, relabel)
		case "hide":
			if len(fields) < 2 {
				return nil, nil, "", fmt.Errorf("line %d: hide wants channel names", lineNo)
			}
			net.Hide(fields[1:]...)
		case "spec":
			if len(fields) != 2 {
				return nil, nil, "", fmt.Errorf("line %d: spec wants one process argument", lineNo)
			}
			p, err := load(fields[1])
			if err != nil {
				return nil, nil, "", fmt.Errorf("line %d: %w", lineNo, err)
			}
			spec = p
		case "rel":
			if len(fields) != 2 {
				return nil, nil, "", fmt.Errorf("line %d: rel wants one relation name", lineNo)
			}
			rel = fields[1]
		default:
			return nil, nil, "", fmt.Errorf("line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, "", err
	}
	if err := net.Validate(); err != nil {
		return nil, nil, "", err
	}
	return net, spec, rel, nil
}
