package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"ccs"
)

// cmdNetwork checks a network of communicating processes against a
// specification through the compositional minimize-then-compose pipeline,
// or — with -otf — through the on-the-fly game that never materializes
// the product. The network FILE has one directive per line:
//
//	component A [old=new ...]   # add an instance of process file A,
//	                            # optionally relabeling its actions
//	hide NAME...                # restrict channels (handshakes survive)
//	spec S                      # the specification process
//	rel REL                     # relation (overridden by -rel)
//
// (parsed by ccs.ParseNetworkDescription into the same NetworkRequest the
// batch schema and `ccs serve` speak). Process arguments are files or
// "expr:" expressions, like everywhere else; '#' starts a comment.
// Without a spec the composed (minimized) process is printed in the
// interchange format instead of checked. -flat skips component
// minimization; -stats additionally materializes the flat product's
// refinement index to report its exact size, reports the checker's
// cache/store counters, and, with -otf, reports the route actually taken
// (otf, otf-determinized, or mtc-fallback with the reason) plus the
// game's exploration and scheduler counters: pairs interned and explored,
// the deepest lazy tau-closure walk, and the work-stealing pool's
// workers / steals / utilization. An
// inequivalent on-the-fly verdict prints the game's distinguishing
// counterexample. -cache-dir persists derived artifacts across runs.
//
// Exit codes align with ccs batch: 0 equivalent, 1 inequivalent, 2 usage
// or input error, 3 when the query itself failed to check (e.g. a
// relation's side conditions were violated by the composed product).
func cmdNetwork(args []string) (*bool, error) {
	fs := flag.NewFlagSet("network", flag.ContinueOnError)
	relFlag := fs.String("rel", "", "relation (default: the file's rel directive, else weak)")
	flat := fs.Bool("flat", false, "compose the flat product (skip component minimization)")
	otfFlag := fs.Bool("otf", false, "check on the fly (lazy product-vs-spec game; nondeterministic specs are determinized lazily, with a fallback only when the game cannot play)")
	stats := fs.Bool("stats", false, "report flat product size and cache/store counters")
	cacheDir := fs.String("cache-dir", "", "persistent artifact store directory (empty = memory-only)")
	strictVet := fs.Bool("strict-vet", false, "fail (exit 2) when the vet pre-flight reports findings")
	traceFlag := fs.Bool("trace", false, "print the query's phase timeline (parse, vet, quotient, otf-explore, ...) on stderr")
	progress := fs.Bool("progress", false, "print a live exploration progress line on stderr (needs -otf)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() != 1 {
		return nil, fmt.Errorf("network wants one description file argument (or - for stdin)")
	}
	if *flat && *otfFlag {
		return nil, fmt.Errorf("-flat and -otf are mutually exclusive")
	}
	if *traceFlag && *flat {
		return nil, fmt.Errorf("-trace follows the checking facade; it does not apply to -flat")
	}
	if *progress && !*otfFlag {
		return nil, fmt.Errorf("-progress reports the on-the-fly game; it needs -otf")
	}
	var in io.Reader = os.Stdin
	if fs.Arg(0) != "-" {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return nil, err
		}
		defer f.Close()
		in = f
	}
	nr, fileRel, err := ccs.ParseNetworkDescription(in)
	if err != nil {
		return nil, err
	}
	// Component references resolve relative to the description file, so a
	// gallery directory is self-contained wherever the command runs from.
	descDir := ""
	if fs.Arg(0) != "-" {
		descDir = filepath.Dir(fs.Arg(0))
	}
	load := loadProcessFrom(descDir)
	// Pre-flight: the same static analysis `ccs vet` runs, before any
	// state-space work. Findings are warnings on stderr; -strict-vet makes
	// them fatal.
	if err := vetPreflight(nr, load, "", *strictVet); err != nil {
		return nil, err
	}
	relName := "weak"
	if fileRel != "" {
		relName = fileRel
	}
	if *relFlag != "" {
		relName = *relFlag
	}
	rel, k, err := ccs.ParseRelation(relName)
	if err != nil {
		return nil, err
	}
	checker, err := newCLIChecker(*cacheDir)
	if err != nil {
		return nil, err
	}

	// The paths below that materialize the network themselves (-stats
	// size report, -flat, spec-less printing) resolve it here; component
	// load failures are input errors, exit 2.
	var net *ccs.Network
	var spec *ccs.Process
	if *stats || *flat || nr.Spec == "" {
		net, spec, err = nr.BuildNetwork(load)
		if err != nil {
			return nil, err
		}
	}

	if *stats {
		idx, _, err := net.Index()
		if err != nil {
			return nil, queryErr(err)
		}
		fmt.Fprintf(os.Stderr, "flat product: %d states, %d transitions\n", idx.N(), idx.NumEdges())
		defer func() { fmt.Fprintln(os.Stderr, checker.Stats().Render()) }()
	}

	if nr.Spec == "" {
		// No spec: emit the composed process itself. That necessarily
		// materializes the product, which is exactly what -otf promises
		// not to do — reject the combination instead of ignoring the flag.
		if *otfFlag {
			return nil, fmt.Errorf("-otf checks against a spec and never composes; the description has no spec directive")
		}
		composed, err := composeFor(net, *flat)
		if err != nil {
			return nil, queryErr(err)
		}
		fmt.Fprintf(os.Stderr, "composed: %d states, %d transitions (%s)\n",
			composed.NumStates(), composed.NumTransitions(), routeName(*flat))
		fmt.Print(ccs.FormatProcess(composed))
		return nil, nil
	}

	var eq bool
	route := routeName(*flat)
	counterexample := ""
	if *flat {
		composed, err := net.FSP()
		if err != nil {
			return nil, queryErr(err)
		}
		eq, err = ccs.Equivalent(composed, spec, rel, k)
		if err != nil {
			return nil, queryErr(err)
		}
	} else {
		// The spec'd check goes through the request facade — the same
		// CheckRequest the batch schema and `ccs serve` speak.
		reqRoute := ccs.RouteMTC
		if *otfFlag {
			reqRoute = "otf"
		}
		opts := []ccs.CheckOption{ccs.WithRoute(reqRoute)}
		if *traceFlag {
			opts = append(opts, ccs.WithTrace())
		}
		ctx := context.Background()
		if *progress {
			ctx = ccs.WithOTFProgress(ctx, otfProgressPrinter(os.Stderr), 200*time.Millisecond)
		}
		req := ccs.NewNetworkCheck(relName, nr, opts...)
		rep := checker.Do(ctx, req, load)
		if *traceFlag {
			// Even a failed or timed-out query prints the phases that
			// completed — that partial timeline is the diagnosis.
			printTrace(os.Stderr, rep.Trace, rep.ElapsedMS)
		}
		if rep.Error != nil {
			err := fmt.Errorf("%s", rep.Error.Message)
			if rep.Error.Kind == ccs.ErrorKindInput {
				return nil, err
			}
			return nil, queryErr(err)
		}
		eq = rep.Equivalent
		counterexample = rep.Counterexample
		// Report the route actually taken — a silent route change is a
		// correctness trap for anyone benchmarking: the engine plays the
		// game directly, determinizes the spec on the fly, or falls back
		// to minimize-then-compose when the game genuinely cannot play.
		switch rep.Route {
		case ccs.RouteOTF:
			route = "on-the-fly"
		case ccs.RouteOTFDeterminized:
			route = "on-the-fly, determinized spec"
		case ccs.RouteMTCFallback:
			route = "minimize-then-compose fallback"
			fmt.Fprintf(os.Stderr, "on-the-fly route unavailable, fell back to minimize-then-compose: %s\n", rep.Fallback)
		}
		if *otfFlag && *stats {
			if rep.Route == ccs.RouteMTCFallback {
				fmt.Fprintf(os.Stderr, "otf route: %s (%s)\n", rep.Route, rep.Fallback)
			} else {
				fmt.Fprintf(os.Stderr, "otf route: %s\n", rep.Route)
			}
			if g := rep.OTF; g != nil {
				fmt.Fprintf(os.Stderr, "otf game: %d pairs interned, %d explored, max tau walk %d\n",
					g.Pairs, g.Explored, g.MaxWalk)
				fmt.Fprintf(os.Stderr, "otf scheduler: %d workers, %d steals, %.0f%% utilization\n",
					g.Workers, g.Steals, 100*g.Utilization)
				if g.SpecSubsets > 0 {
					fmt.Fprintf(os.Stderr, "otf determinization: %d spec subsets interned\n", g.SpecSubsets)
				}
			}
		}
	}
	if eq {
		fmt.Printf("network equivalent to spec (%s, %s)\n", relName, route)
	} else {
		fmt.Printf("network NOT equivalent to spec (%s, %s)\n", relName, route)
		if counterexample != "" {
			fmt.Printf("counterexample: %s\n", counterexample)
		}
	}
	return &eq, nil
}

// queryErr marks an error that occurred while answering a well-formed
// query, aligning the network exit codes with ccs batch: the run got as
// far as checking, so the failure exits 3, distinguishable both from a
// usage/input error (2) and from an inequivalent verdict (1).
func queryErr(err error) error {
	return &exitError{code: 3, err: err}
}

func routeName(flat bool) string {
	if flat {
		return "flat composition"
	}
	return "minimize-then-compose"
}

// composeFor materializes the network on the selected route.
func composeFor(net *ccs.Network, flat bool) (*ccs.Process, error) {
	if flat {
		return ccs.ComposeNetwork(net)
	}
	return ccs.MinimizeNetwork(net)
}
