package main

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"ccs"
)

func TestServeUsageErrors(t *testing.T) {
	if got := run([]string{"serve", "positional"}); got != 2 {
		t.Errorf("serve with a positional argument = %d, want 2", got)
	}
	if got := run([]string{"serve", "-no-such-flag"}); got != 2 {
		t.Errorf("serve with an unknown flag = %d, want 2", got)
	}
}

func TestServeTakenPortExits3(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if got := run([]string{"serve", "-addr", ln.Addr().String()}); got != 3 {
		t.Errorf("serve on a taken port = %d, want 3", got)
	}
}

func TestServeBadCacheDirExits3(t *testing.T) {
	// A plain file where the cache directory should be.
	file := writeFixture(t, "not-a-dir", "x")
	if got := run([]string{"serve", "-addr", "127.0.0.1:0", "-cache-dir", filepath.Join(file, "sub")}); got != 3 {
		t.Errorf("serve with an unusable cache dir = %d, want 3", got)
	}
}

// TestServeLifecycle boots the real subcommand, queries it over HTTP, and
// shuts it down with the interrupt signal, pinning the clean exit 0.
func TestServeLifecycle(t *testing.T) {
	// Reserve a port, free it, and hand it to serve. The gap is a benign
	// test-only race.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	exit := make(chan int, 1)
	go func() { exit <- run([]string{"serve", "-addr", addr, "-cache-dir", t.TempDir()}) }()

	base := "http://" + addr
	waitServeReady(t, base, exit)

	resp, err := http.Post(base+"/v1/check", "application/json",
		strings.NewReader(`{"relation":"weak","p":"expr:a+a","q":"expr:a"}`))
	if err != nil {
		t.Fatal(err)
	}
	var rep ccs.Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || rep.Error != nil || !rep.Equivalent {
		t.Fatalf("served verdict: status %d, report %+v", resp.StatusCode, rep)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("serve exit = %d after interrupt, want 0", code)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("serve did not shut down on interrupt")
	}
}

func waitServeReady(t *testing.T, base string, exit chan int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		select {
		case code := <-exit:
			t.Fatalf("serve exited early with %d", code)
		default:
		}
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("serve never became healthy")
}

func TestBatchJSONInputAndOutput(t *testing.T) {
	reqs := []ccs.CheckRequest{
		ccs.NewCheck("weak", "expr:a+a", "expr:a", ccs.WithLabel("eq")),
		ccs.NewCheck("strong", "expr:a(b+c)", "expr:ab+ac", ccs.WithLabel("neq")),
	}
	doc, err := ccs.EncodeRequests(reqs)
	if err != nil {
		t.Fatal(err)
	}
	list := writeFixture(t, "reqs.json", string(doc))
	code, stdout, _ := captureRun(t, []string{"batch", "-json", list})
	if code != 1 {
		t.Fatalf("json batch = %d, want 1 (one inequivalent)", code)
	}
	reps, err := ccs.DecodeReports([]byte(stdout))
	if err != nil {
		t.Fatalf("batch -json output is not a report document: %v\n%s", err, stdout)
	}
	if len(reps) != 2 || !reps[0].Equivalent || reps[1].Equivalent || reps[0].Label != "eq" {
		t.Fatalf("reports: %+v", reps)
	}
}

func TestBatchCacheDirWarms(t *testing.T) {
	dir := t.TempDir()
	cache := filepath.Join(dir, "store")
	list := writeFixture(t, "list.txt", "weak expr:a(b+c) expr:ab+ac\n")
	code, _, stderr := captureRun(t, []string{"batch", "-stats", "-cache-dir", cache, list})
	if code != 1 {
		t.Fatalf("cold run = %d, want 1", code)
	}
	if !strings.Contains(stderr, "store:") || !strings.Contains(stderr, "writes") {
		t.Fatalf("cold -stats does not report the store: %q", stderr)
	}
	// The second process re-reads everything from the store.
	code, _, stderr = captureRun(t, []string{"batch", "-stats", "-cache-dir", cache, list})
	if code != 1 {
		t.Fatalf("warm run = %d, want 1", code)
	}
	var hits int
	if _, err := fmt.Sscanf(stderr[strings.Index(stderr, "misses, "):], "misses, %d writes", &hits); err == nil && hits > 0 {
		t.Fatalf("warm run wrote again: %q", stderr)
	}
	if !strings.Contains(stderr, " hits") || strings.Contains(stderr, " 0 hits") {
		t.Fatalf("warm -stats reports no hits: %q", stderr)
	}
}

func TestNetworkStatsRendersCache(t *testing.T) {
	cell := writeFixture(t, "cell.fsp", relayCell)
	spec := writeFixture(t, "counter.fsp", counterTwo)
	net := relayNetFile(t, cell, spec)
	code, _, stderr := captureRun(t, []string{"network", "-stats", net})
	if code != 0 {
		t.Fatalf("network -stats = %d, want 0", code)
	}
	if !strings.Contains(stderr, "cache: ") {
		t.Errorf("network -stats does not render the shared cache summary: %q", stderr)
	}
	if !strings.Contains(stderr, "flat product: ") {
		t.Errorf("network -stats lost the flat product size: %q", stderr)
	}
}
