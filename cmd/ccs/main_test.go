package main

import (
	"os"
	"path/filepath"
	"testing"
)

// writeFixture writes a process file and returns its path.
func writeFixture(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const chainTwo = `fsp aa
states 3
start 0
ext 0 x
ext 1 x
ext 2 x
arc 0 a 1
arc 1 a 2
`

const chainBranch = `fsp aa+a
states 4
start 0
ext 0 x
ext 1 x
ext 2 x
ext 3 x
arc 0 a 1
arc 1 a 2
arc 0 a 3
`

const chainTwoAUT = `des (0, 2, 3)
(0, "a", 1)
(1, "a", 2)
`

func TestAUTInterop(t *testing.T) {
	native := writeFixture(t, "a.fsp", chainTwo)
	aut := writeFixture(t, "a.aut", chainTwoAUT)
	// The .aut file describes the same restricted chain; all relations
	// must report equivalence across formats.
	if got := run([]string{"check", "-rel", "failure", native, aut}); got != 0 {
		t.Errorf("cross-format failure check = %d, want 0", got)
	}
	if got := run([]string{"check", "-rel", "strong", native, aut}); got != 0 {
		t.Errorf("cross-format strong check = %d, want 0", got)
	}
}

func TestRunCheck(t *testing.T) {
	a := writeFixture(t, "a.fsp", chainTwo)
	b := writeFixture(t, "b.fsp", chainBranch)
	cases := []struct {
		name string
		args []string
		exit int
	}{
		{"strong different", []string{"check", "-rel", "strong", a, b}, 1},
		{"trace same", []string{"check", "-rel", "trace", a, b}, 0},
		{"failure different", []string{"check", "-rel", "failure", a, b}, 1},
		{"weak different", []string{"check", "-rel", "weak", a, b}, 1},
		{"k1 same", []string{"check", "-rel", "k1", a, b}, 0},
		{"limited0 same", []string{"check", "-rel", "limited0", a, b}, 0},
		{"congruence self", []string{"check", "-rel", "congruence", a, a}, 0},
		// aa and aa+a ARE simulation equivalent (the dead branch is
		// simulated vacuously) even though failure-inequivalent — the
		// classic simulation/failures incomparability.
		{"simulation same", []string{"check", "-rel", "simulation", a, b}, 0},
		{"simulation different", []string{"check", "-rel", "simulation", a, "expr:aaa"}, 1},
		{"expr operands", []string{"check", "-rel", "strong", "expr:aa", "expr:aa"}, 0},
		{"bad relation", []string{"check", "-rel", "bogus", a, b}, 2},
		{"missing file", []string{"check", "-rel", "strong", a, "/nonexistent"}, 2},
		{"arity", []string{"check", "-rel", "strong", a}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := run(tc.args); got != tc.exit {
				t.Errorf("run(%v) = %d, want %d", tc.args, got, tc.exit)
			}
		})
	}
}

func TestRunExpr(t *testing.T) {
	cases := []struct {
		name string
		args []string
		exit int
	}{
		{"ccs different", []string{"expr", "-rel", "ccs", "a(b+c)", "ab+ac"}, 1},
		{"language same", []string{"expr", "-rel", "language", "a(b+c)", "ab+ac"}, 0},
		{"intersection", []string{"expr", "-rel", "language", "(aa)*&(aaa)*", "(aaaaaa)*"}, 0},
		{"bad mode", []string{"expr", "-rel", "zzz", "a", "a"}, 2},
		{"parse error", []string{"expr", "-rel", "ccs", "a(", "a"}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := run(tc.args); got != tc.exit {
				t.Errorf("run(%v) = %d, want %d", tc.args, got, tc.exit)
			}
		})
	}
}

func TestRunMinimizeExplainFailuresClassifyDotSat(t *testing.T) {
	a := writeFixture(t, "a.fsp", chainTwo)
	b := writeFixture(t, "b.fsp", chainBranch)
	cases := []struct {
		name string
		args []string
		exit int
	}{
		{"minimize strong", []string{"minimize", "-rel", "strong", b}, 0},
		{"minimize weak", []string{"minimize", "-rel", "weak", b}, 0},
		{"minimize bad rel", []string{"minimize", "-rel", "zzz", b}, 2},
		{"explain", []string{"explain", a, b}, 0},
		{"explain weak", []string{"explain", "-weak", a, b}, 0},
		{"explain equivalent", []string{"explain", a, a}, 2},
		{"failures", []string{"failures", "-depth", "3", a}, 0},
		{"classify", []string{"classify", a}, 0},
		{"dot", []string{"dot", a}, 0},
		{"sat holds", []string{"sat", a, "<a><a>tt"}, 0},
		{"sat fails", []string{"sat", a, "<a><a><a>tt"}, 1},
		{"sat weak eps", []string{"sat", "-weak", a, "<eps>tt"}, 0},
		{"sat bad formula", []string{"sat", a, "<zz>tt"}, 2},
		{"usage", []string{"help"}, 0},
		{"unknown", []string{"wat"}, 2},
		{"empty", nil, 2},
		{"spectrum", []string{"spectrum", a, b}, 0},
		{"spectrum arity", []string{"spectrum", a}, 2},
		{"refines ok", []string{"refines", b, a}, 0},
		{"refines fails", []string{"refines", a, b}, 1},
		{"refines arity", []string{"refines", a}, 2},
		{"divergent none", []string{"divergent", a}, 0},
		{"divergent arity", []string{"divergent"}, 2},
		{"aut convert", []string{"aut", a}, 0},
		{"aut arity", []string{"aut"}, 2},
		{"aut non-restricted", []string{"aut", "expr:ab"}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := run(tc.args); got != tc.exit {
				t.Errorf("run(%v) = %d, want %d", tc.args, got, tc.exit)
			}
		})
	}
}
