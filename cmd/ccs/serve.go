package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ccs"
	"ccs/internal/server"
)

// cmdServe runs the equivalence checker as an HTTP/JSON service (see
// internal/server for the endpoints and schema). One long-lived checker
// backs every request, so the artifact cache warms across queries; with
// -cache-dir the derived artifacts additionally persist on disk and a
// restarted server answers repeat queries from the store instead of
// re-deriving.
//
// Exit codes align with the other subcommands: 0 on clean shutdown
// (SIGINT/SIGTERM), 2 on usage errors, 3 when the server itself failed
// (e.g. the listen address is taken or the cache directory unusable).
func cmdServe(args []string) (*bool, error) {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", "localhost:8286", "listen address")
	cacheDir := fs.String("cache-dir", "", "persistent artifact store directory (empty = memory-only)")
	cacheCap := fs.Int64("cache-cap", 0, "store size cap in bytes (0 = unbounded)")
	workers := fs.Int("workers", 0, "worker pool size per batch request (0 = GOMAXPROCS)")
	timeout := fs.Duration("timeout", time.Minute, "per-query timeout cap (0 = none)")
	maxInflight := fs.Int("max-inflight", 0, "admission control: max concurrent requests (0 = 2*GOMAXPROCS)")
	pprofFlag := fs.Bool("pprof", false, "mount net/http/pprof profiling handlers under /debug/pprof/")
	accessLog := fs.String("access-log", "", "write one JSON line per request to FILE ('-' = stderr; empty = off)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() != 0 {
		return nil, fmt.Errorf("serve takes no positional arguments")
	}

	checker := ccs.NewChecker()
	if *cacheDir != "" {
		var err error
		checker, err = ccs.NewStoreChecker(*cacheDir, *cacheCap)
		if err != nil {
			return nil, queryErr(err)
		}
	}
	var logW io.Writer
	switch *accessLog {
	case "":
	case "-":
		logW = os.Stderr
	default:
		f, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, queryErr(err)
		}
		defer f.Close()
		logW = f
	}
	srv, err := server.New(server.Config{
		Checker:     checker,
		Workers:     *workers,
		MaxInFlight: *maxInflight,
		MaxTimeout:  *timeout,
		Version:     version,
		EnablePprof: *pprofFlag,
		AccessLog:   logW,
	})
	if err != nil {
		return nil, err
	}

	// Listen before announcing, so a taken port fails fast with exit 3.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return nil, queryErr(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "ccs serve: %s listening on http://%s (cache-dir=%q)\n", version, ln.Addr(), *cacheDir)

	select {
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			return nil, queryErr(err)
		}
		fmt.Fprintf(os.Stderr, "ccs serve: shut down; %s\n", checker.Stats().Render())
		return nil, nil
	case err := <-errCh:
		if errors.Is(err, http.ErrServerClosed) {
			return nil, nil
		}
		return nil, queryErr(err)
	}
}
