package main

import (
	"strings"
	"testing"
)

func TestBatchAllEquivalent(t *testing.T) {
	a := writeFixture(t, "a.fsp", chainTwo)
	list := writeFixture(t, "list.txt", strings.Join([]string{
		"# relation defaults to -rel when a line has two fields",
		"strong " + a + " " + a,
		"weak expr:a+a expr:a",
		"",
		"trace expr:ab expr:ab",
	}, "\n"))
	if got := run([]string{"batch", list}); got != 0 {
		t.Errorf("batch of equivalent pairs = %d, want 0", got)
	}
}

func TestBatchSomeInequivalent(t *testing.T) {
	a := writeFixture(t, "a.fsp", chainTwo)
	b := writeFixture(t, "b.fsp", chainBranch)
	list := writeFixture(t, "list.txt",
		"strong "+a+" "+a+"\nfailure "+a+" "+b+"\n")
	if got := run([]string{"batch", "-workers", "2", list}); got != 1 {
		t.Errorf("batch with an inequivalent pair = %d, want 1", got)
	}
}

func TestBatchDefaultRelation(t *testing.T) {
	list := writeFixture(t, "list.txt", "expr:a+a expr:a\n")
	if got := run([]string{"batch", "-rel", "strong", list}); got != 0 {
		t.Errorf("batch with default relation = %d, want 0", got)
	}
}

// notRestricted has a non-accepting state, so the failure relation rejects
// it at check time — a per-query error, not an input error.
const notRestricted = `fsp partial
states 2
start 0
ext 0 x
arc 0 a 1
`

// TestBatchQueryFailureExit: a batch whose queries ran but where some
// could not be checked exits 3 — distinct from "all checked, some
// inequivalent" (1) and from usage/input errors (2) — and the healthy
// queries still report their verdicts.
func TestBatchQueryFailureExit(t *testing.T) {
	a := writeFixture(t, "a.fsp", chainTwo)
	b := writeFixture(t, "b.fsp", chainBranch)
	bad := writeFixture(t, "bad.fsp", notRestricted)
	list := writeFixture(t, "list.txt", strings.Join([]string{
		"strong " + a + " " + a,    // equivalent
		"failure " + bad + " " + a, // errors: not restricted
		"strong " + a + " " + b,    // inequivalent
	}, "\n"))
	if got := run([]string{"batch", list}); got != 3 {
		t.Errorf("batch with a failing query = %d, want 3", got)
	}
	// The same queries without the failing line keep the verdict exit.
	okList := writeFixture(t, "ok.txt", "strong "+a+" "+a+"\nstrong "+a+" "+b+"\n")
	if got := run([]string{"batch", okList}); got != 1 {
		t.Errorf("batch without the failing query = %d, want 1", got)
	}
}

func TestBatchBadInput(t *testing.T) {
	list := writeFixture(t, "list.txt", "strong onlyonefieldafterrel\n")
	if got := run([]string{"batch", list}); got != 2 {
		t.Errorf("malformed line = %d, want 2", got)
	}
	empty := writeFixture(t, "empty.txt", "# nothing here\n")
	if got := run([]string{"batch", empty}); got != 2 {
		t.Errorf("empty list = %d, want 2", got)
	}
	if got := run([]string{"batch", "/nonexistent/list"}); got != 2 {
		t.Errorf("missing list file = %d, want 2", got)
	}
	bad := writeFixture(t, "bad.txt", "frobnicate expr:a expr:a\n")
	if got := run([]string{"batch", bad}); got != 2 {
		t.Errorf("unknown relation = %d, want 2", got)
	}
}
