package main

import (
	"strings"
	"testing"
)

func TestBatchAllEquivalent(t *testing.T) {
	a := writeFixture(t, "a.fsp", chainTwo)
	list := writeFixture(t, "list.txt", strings.Join([]string{
		"# relation defaults to -rel when a line has two fields",
		"strong " + a + " " + a,
		"weak expr:a+a expr:a",
		"",
		"trace expr:ab expr:ab",
	}, "\n"))
	if got := run([]string{"batch", list}); got != 0 {
		t.Errorf("batch of equivalent pairs = %d, want 0", got)
	}
}

func TestBatchSomeInequivalent(t *testing.T) {
	a := writeFixture(t, "a.fsp", chainTwo)
	b := writeFixture(t, "b.fsp", chainBranch)
	list := writeFixture(t, "list.txt",
		"strong "+a+" "+a+"\nfailure "+a+" "+b+"\n")
	if got := run([]string{"batch", "-workers", "2", list}); got != 1 {
		t.Errorf("batch with an inequivalent pair = %d, want 1", got)
	}
}

func TestBatchDefaultRelation(t *testing.T) {
	list := writeFixture(t, "list.txt", "expr:a+a expr:a\n")
	if got := run([]string{"batch", "-rel", "strong", list}); got != 0 {
		t.Errorf("batch with default relation = %d, want 0", got)
	}
}

func TestBatchBadInput(t *testing.T) {
	list := writeFixture(t, "list.txt", "strong onlyonefieldafterrel\n")
	if got := run([]string{"batch", list}); got != 2 {
		t.Errorf("malformed line = %d, want 2", got)
	}
	empty := writeFixture(t, "empty.txt", "# nothing here\n")
	if got := run([]string{"batch", empty}); got != 2 {
		t.Errorf("empty list = %d, want 2", got)
	}
	if got := run([]string{"batch", "/nonexistent/list"}); got != 2 {
		t.Errorf("missing list file = %d, want 2", got)
	}
	bad := writeFixture(t, "bad.txt", "frobnicate expr:a expr:a\n")
	if got := run([]string{"batch", bad}); got != 2 {
		t.Errorf("unknown relation = %d, want 2", got)
	}
}
