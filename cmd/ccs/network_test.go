package main

import (
	"io"
	"os"
	"strings"
	"testing"
)

// relayCell is a one-place buffer with one internal churn step:
// in · tau · out' · (repeat). Every state accepts.
const relayCell = `fsp cell
states 3
start 0
ext 0 x
ext 1 x
ext 2 x
arc 0 in 1
arc 1 tau 2
arc 2 out' 0
`

// counterTwo is the 2-place buffer specification on channels c0/c2'.
const counterTwo = `fsp counter
states 3
start 0
ext 0 x
ext 1 x
ext 2 x
arc 0 c0 1
arc 1 c2' 0
arc 1 c0 2
arc 2 c2' 1
`

func relayNetFile(t *testing.T, cell, spec string, extra ...string) string {
	t.Helper()
	lines := []string{
		"# two chained buffer cells vs a 2-place buffer",
		"name relay2",
		"component " + cell + " in=c0 out=c1",
		"component " + cell + " in=c1 out=c2",
		"hide c1",
	}
	if spec != "" {
		lines = append(lines, "spec "+spec)
	}
	lines = append(lines, extra...)
	return writeFixture(t, "net.txt", strings.Join(lines, "\n")+"\n")
}

func TestNetworkCheck(t *testing.T) {
	cell := writeFixture(t, "cell.fsp", relayCell)
	spec := writeFixture(t, "counter.fsp", counterTwo)
	net := relayNetFile(t, cell, spec)
	if got := run([]string{"network", net}); got != 0 {
		t.Errorf("relay network vs counter (minimize-then-compose) = %d, want 0", got)
	}
	if got := run([]string{"network", "-flat", "-stats", net}); got != 0 {
		t.Errorf("relay network vs counter (flat) = %d, want 0", got)
	}
	// Against the wrong spec the verdict is inequivalent: exit 1.
	one := writeFixture(t, "one.fsp", strings.Replace(counterTwo,
		"arc 1 c0 2", "arc 1 tau 1", 1))
	badNet := relayNetFile(t, cell, one)
	if got := run([]string{"network", badNet}); got != 1 {
		t.Errorf("relay network vs wrong spec = %d, want 1", got)
	}
	// Both routes agree on the negative verdict too.
	if got := run([]string{"network", "-flat", badNet}); got != 1 {
		t.Errorf("relay network vs wrong spec (flat) = %d, want 1", got)
	}
}

func TestNetworkRelDirective(t *testing.T) {
	cell := writeFixture(t, "cell.fsp", relayCell)
	spec := writeFixture(t, "counter.fsp", counterTwo)
	// Strong equivalence must fail: the product has tau moves the
	// tau-free counter cannot match.
	net := relayNetFile(t, cell, spec, "rel strong")
	if got := run([]string{"network", net}); got != 1 {
		t.Errorf("strong network check = %d, want 1", got)
	}
	// The -rel flag overrides the file directive back to weak.
	if got := run([]string{"network", "-rel", "weak", net}); got != 0 {
		t.Errorf("-rel weak override = %d, want 0", got)
	}
}

func TestNetworkWithoutSpecPrintsProcess(t *testing.T) {
	cell := writeFixture(t, "cell.fsp", relayCell)
	net := relayNetFile(t, cell, "")
	if got := run([]string{"network", net}); got != 0 {
		t.Errorf("spec-less network = %d, want 0", got)
	}
}

func TestNetworkOTF(t *testing.T) {
	cell := writeFixture(t, "cell.fsp", relayCell)
	spec := writeFixture(t, "counter.fsp", counterTwo)
	net := relayNetFile(t, cell, spec)
	if got := run([]string{"network", "-otf", net}); got != 0 {
		t.Errorf("relay network vs counter (on-the-fly) = %d, want 0", got)
	}
	// The wrong spec is rejected on the fly too.
	one := writeFixture(t, "one.fsp", strings.Replace(counterTwo,
		"arc 1 c0 2", "arc 1 tau 1", 1))
	if got := run([]string{"network", "-otf", relayNetFile(t, cell, one)}); got != 1 {
		t.Errorf("relay network vs wrong spec (on-the-fly) = %d, want 1", got)
	}
	// An ineligible relation silently falls back to minimize-then-compose
	// with the same verdict.
	if got := run([]string{"network", "-otf", "-rel", "trace", net}); got != 0 {
		t.Errorf("on-the-fly with trace relation (fallback) = %d, want 0", got)
	}
	// -flat and -otf contradict each other: usage error.
	if got := run([]string{"network", "-flat", "-otf", net}); got != 2 {
		t.Errorf("-flat -otf = %d, want 2", got)
	}
	// -otf without a spec directive would have to materialize the very
	// product the flag promises to avoid: usage error, not a silent
	// fallback.
	if got := run([]string{"network", "-otf", relayNetFile(t, cell, "")}); got != 2 {
		t.Errorf("-otf without spec = %d, want 2", got)
	}
}

// TestNetworkExitCodes pins the batch-aligned contract: 0 equivalent,
// 1 inequivalent, 2 usage/input error, 3 the query itself failed.
func TestNetworkExitCodes(t *testing.T) {
	cell := writeFixture(t, "cell.fsp", relayCell)
	spec := writeFixture(t, "counter.fsp", counterTwo)
	net := relayNetFile(t, cell, spec)
	if got := run([]string{"network", net}); got != 0 {
		t.Errorf("equivalent network = %d, want 0", got)
	}
	bad := relayNetFile(t, cell, writeFixture(t, "one.fsp",
		strings.Replace(counterTwo, "arc 1 c0 2", "arc 1 tau 1", 1)))
	if got := run([]string{"network", bad}); got != 1 {
		t.Errorf("inequivalent network = %d, want 1", got)
	}
	if got := run([]string{"network", "/nonexistent/net.txt"}); got != 2 {
		t.Errorf("missing network file = %d, want 2", got)
	}
	// Failure equivalence demands restricted processes (every state
	// accepting), but this component has a non-accepting state: the
	// network parses fine, the query runs and fails — exit 3,
	// distinguishable from both the usage error and the inequivalent
	// verdict. The same contract holds on the on-the-fly route.
	partial := writeFixture(t, "partial.fsp", "fsp partial\nstates 2\nstart 0\next 0 x\narc 0 a 1\narc 1 a 0\n")
	partialNet := writeFixture(t, "pnet.txt", "component "+partial+"\nspec "+partial+"\n")
	if got := run([]string{"network", "-rel", "failure", partialNet}); got != 3 {
		t.Errorf("failure relation on an unrestricted product = %d, want 3", got)
	}
	if got := run([]string{"network", "-otf", "-rel", "failure", partialNet}); got != 3 {
		t.Errorf("failure relation on an unrestricted product (-otf) = %d, want 3", got)
	}
}

func TestNetworkBadInput(t *testing.T) {
	cell := writeFixture(t, "cell.fsp", relayCell)
	cases := map[string]string{
		"unknown directive": "frobnicate x\n",
		"bad relabel":       "component " + cell + " in=\n",
		"no components":     "hide c1\n",
		"missing file":      "component /nonexistent/process\n",
		"tau relabel":       "component " + cell + " tau=c0\n",
	}
	for name, content := range cases {
		file := writeFixture(t, "bad.txt", content)
		if got := run([]string{"network", file}); got != 2 {
			t.Errorf("%s: exit = %d, want 2", name, got)
		}
	}
}

// nondetCounterTwo is counterTwo written the way real specs often are:
// nondeterministic on c0 (a direct step or a tau-settling detour) and
// tau-bearing (an idle refresh loop on the empty buffer). Weakly
// equivalent to counterTwo, but rejected by the direct on-the-fly game —
// it exercises the determinized subset route.
const nondetCounterTwo = `fsp ndcounter
states 6
start 0
ext 0 x
ext 1 x
ext 2 x
ext 3 x
ext 4 x
ext 5 x
arc 0 c0 1
arc 0 c0 3
arc 3 tau 1
arc 1 c0 2
arc 1 c0 4
arc 4 tau 2
arc 1 c2' 0
arc 2 c2' 1
arc 0 tau 5
arc 5 tau 0
`

// essentialChoice is a.b + a.c: its nondeterminism is essential (the two
// a-derivatives are inequivalent), so the subset game must refuse and
// the CLI must fall back — loudly.
const essentialChoice = `fsp abac
states 5
start 0
ext 0 x
ext 1 x
ext 2 x
ext 3 x
ext 4 x
arc 0 a 1
arc 0 a 2
arc 1 b 3
arc 2 c 4
`

// captureRun runs the CLI capturing stdout and stderr.
func captureRun(t *testing.T, args []string) (code int, stdout, stderr string) {
	t.Helper()
	oldOut, oldErr := os.Stdout, os.Stderr
	ro, wo, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	re, we, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout, os.Stderr = wo, we
	code = run(args)
	wo.Close()
	we.Close()
	os.Stdout, os.Stderr = oldOut, oldErr
	bo, _ := io.ReadAll(ro)
	be, _ := io.ReadAll(re)
	return code, string(bo), string(be)
}

// TestNetworkOTFDeterminized: a nondeterministic tau-bearing spec is
// decided on the fly (no fallback), the route is reported under -stats,
// and an inequivalent verdict prints the distinguishing counterexample.
func TestNetworkOTFDeterminized(t *testing.T) {
	cell := writeFixture(t, "cell.fsp", relayCell)
	nd := writeFixture(t, "ndcounter.fsp", nondetCounterTwo)
	net := relayNetFile(t, cell, nd)
	code, stdout, stderr := captureRun(t, []string{"network", "-otf", "-stats", net})
	if code != 0 {
		t.Fatalf("relay vs nondet counter (-otf) = %d, want 0\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "determinized spec") {
		t.Errorf("verdict does not name the determinized route: %q", stdout)
	}
	if !strings.Contains(stderr, "otf route: otf-determinized") {
		t.Errorf("-stats does not report the route: %q", stderr)
	}

	// A lossy cell against the same nondeterministic spec: inequivalent,
	// with the counterexample on stdout.
	lossy := writeFixture(t, "lossy.fsp", strings.Replace(relayCell,
		"arc 0 in 1", "arc 0 in 1\narc 1 tau 0", 1))
	code, stdout, _ = captureRun(t, []string{"network", "-otf", relayNetFile(t, lossy, nd)})
	if code != 1 {
		t.Fatalf("lossy relay vs nondet counter (-otf) = %d, want 1", code)
	}
	if !strings.Contains(stdout, "counterexample: after ") {
		t.Errorf("inequivalent on-the-fly verdict without a counterexample: %q", stdout)
	}
}

// TestNetworkOTFEssentialFallback: a spec whose nondeterminism is
// essential makes the game refuse; the CLI reports the fallback and the
// verdict still matches the default route.
func TestNetworkOTFEssentialFallback(t *testing.T) {
	proc := writeFixture(t, "branch.fsp",
		"fsp branch\nstates 3\nstart 0\next 0 x\next 1 x\next 2 x\narc 0 a 1\narc 1 b 2\narc 1 c 2\n")
	spec := writeFixture(t, "abac.fsp", essentialChoice)
	file := writeFixture(t, "enet.txt", "component "+proc+"\nspec "+spec+"\n")
	want := run([]string{"network", file})
	code, stdout, stderr := captureRun(t, []string{"network", "-otf", "-stats", file})
	if code != want {
		t.Errorf("fallback verdict = %d, default route = %d; routes disagree", code, want)
	}
	if !strings.Contains(stderr, "fell back to minimize-then-compose") {
		t.Errorf("fallback not reported on stderr: %q", stderr)
	}
	if !strings.Contains(stderr, "otf route: mtc-fallback") {
		t.Errorf("-stats does not report the fallback route: %q", stderr)
	}
	if !strings.Contains(stdout, "minimize-then-compose fallback") {
		t.Errorf("verdict does not name the fallback route: %q", stdout)
	}
}
