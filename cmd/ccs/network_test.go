package main

import (
	"strings"
	"testing"
)

// relayCell is a one-place buffer with one internal churn step:
// in · tau · out' · (repeat). Every state accepts.
const relayCell = `fsp cell
states 3
start 0
ext 0 x
ext 1 x
ext 2 x
arc 0 in 1
arc 1 tau 2
arc 2 out' 0
`

// counterTwo is the 2-place buffer specification on channels c0/c2'.
const counterTwo = `fsp counter
states 3
start 0
ext 0 x
ext 1 x
ext 2 x
arc 0 c0 1
arc 1 c2' 0
arc 1 c0 2
arc 2 c2' 1
`

func relayNetFile(t *testing.T, cell, spec string, extra ...string) string {
	t.Helper()
	lines := []string{
		"# two chained buffer cells vs a 2-place buffer",
		"name relay2",
		"component " + cell + " in=c0 out=c1",
		"component " + cell + " in=c1 out=c2",
		"hide c1",
	}
	if spec != "" {
		lines = append(lines, "spec "+spec)
	}
	lines = append(lines, extra...)
	return writeFixture(t, "net.txt", strings.Join(lines, "\n")+"\n")
}

func TestNetworkCheck(t *testing.T) {
	cell := writeFixture(t, "cell.fsp", relayCell)
	spec := writeFixture(t, "counter.fsp", counterTwo)
	net := relayNetFile(t, cell, spec)
	if got := run([]string{"network", net}); got != 0 {
		t.Errorf("relay network vs counter (minimize-then-compose) = %d, want 0", got)
	}
	if got := run([]string{"network", "-flat", "-stats", net}); got != 0 {
		t.Errorf("relay network vs counter (flat) = %d, want 0", got)
	}
	// Against the wrong spec the verdict is inequivalent: exit 1.
	one := writeFixture(t, "one.fsp", strings.Replace(counterTwo,
		"arc 1 c0 2", "arc 1 tau 1", 1))
	badNet := relayNetFile(t, cell, one)
	if got := run([]string{"network", badNet}); got != 1 {
		t.Errorf("relay network vs wrong spec = %d, want 1", got)
	}
	// Both routes agree on the negative verdict too.
	if got := run([]string{"network", "-flat", badNet}); got != 1 {
		t.Errorf("relay network vs wrong spec (flat) = %d, want 1", got)
	}
}

func TestNetworkRelDirective(t *testing.T) {
	cell := writeFixture(t, "cell.fsp", relayCell)
	spec := writeFixture(t, "counter.fsp", counterTwo)
	// Strong equivalence must fail: the product has tau moves the
	// tau-free counter cannot match.
	net := relayNetFile(t, cell, spec, "rel strong")
	if got := run([]string{"network", net}); got != 1 {
		t.Errorf("strong network check = %d, want 1", got)
	}
	// The -rel flag overrides the file directive back to weak.
	if got := run([]string{"network", "-rel", "weak", net}); got != 0 {
		t.Errorf("-rel weak override = %d, want 0", got)
	}
}

func TestNetworkWithoutSpecPrintsProcess(t *testing.T) {
	cell := writeFixture(t, "cell.fsp", relayCell)
	net := relayNetFile(t, cell, "")
	if got := run([]string{"network", net}); got != 0 {
		t.Errorf("spec-less network = %d, want 0", got)
	}
}

func TestNetworkOTF(t *testing.T) {
	cell := writeFixture(t, "cell.fsp", relayCell)
	spec := writeFixture(t, "counter.fsp", counterTwo)
	net := relayNetFile(t, cell, spec)
	if got := run([]string{"network", "-otf", net}); got != 0 {
		t.Errorf("relay network vs counter (on-the-fly) = %d, want 0", got)
	}
	// The wrong spec is rejected on the fly too.
	one := writeFixture(t, "one.fsp", strings.Replace(counterTwo,
		"arc 1 c0 2", "arc 1 tau 1", 1))
	if got := run([]string{"network", "-otf", relayNetFile(t, cell, one)}); got != 1 {
		t.Errorf("relay network vs wrong spec (on-the-fly) = %d, want 1", got)
	}
	// An ineligible relation silently falls back to minimize-then-compose
	// with the same verdict.
	if got := run([]string{"network", "-otf", "-rel", "trace", net}); got != 0 {
		t.Errorf("on-the-fly with trace relation (fallback) = %d, want 0", got)
	}
	// -flat and -otf contradict each other: usage error.
	if got := run([]string{"network", "-flat", "-otf", net}); got != 2 {
		t.Errorf("-flat -otf = %d, want 2", got)
	}
	// -otf without a spec directive would have to materialize the very
	// product the flag promises to avoid: usage error, not a silent
	// fallback.
	if got := run([]string{"network", "-otf", relayNetFile(t, cell, "")}); got != 2 {
		t.Errorf("-otf without spec = %d, want 2", got)
	}
}

// TestNetworkExitCodes pins the batch-aligned contract: 0 equivalent,
// 1 inequivalent, 2 usage/input error, 3 the query itself failed.
func TestNetworkExitCodes(t *testing.T) {
	cell := writeFixture(t, "cell.fsp", relayCell)
	spec := writeFixture(t, "counter.fsp", counterTwo)
	net := relayNetFile(t, cell, spec)
	if got := run([]string{"network", net}); got != 0 {
		t.Errorf("equivalent network = %d, want 0", got)
	}
	bad := relayNetFile(t, cell, writeFixture(t, "one.fsp",
		strings.Replace(counterTwo, "arc 1 c0 2", "arc 1 tau 1", 1)))
	if got := run([]string{"network", bad}); got != 1 {
		t.Errorf("inequivalent network = %d, want 1", got)
	}
	if got := run([]string{"network", "/nonexistent/net.txt"}); got != 2 {
		t.Errorf("missing network file = %d, want 2", got)
	}
	// Failure equivalence demands restricted processes (every state
	// accepting), but this component has a non-accepting state: the
	// network parses fine, the query runs and fails — exit 3,
	// distinguishable from both the usage error and the inequivalent
	// verdict. The same contract holds on the on-the-fly route.
	partial := writeFixture(t, "partial.fsp", "fsp partial\nstates 2\nstart 0\next 0 x\narc 0 a 1\narc 1 a 0\n")
	partialNet := writeFixture(t, "pnet.txt", "component "+partial+"\nspec "+partial+"\n")
	if got := run([]string{"network", "-rel", "failure", partialNet}); got != 3 {
		t.Errorf("failure relation on an unrestricted product = %d, want 3", got)
	}
	if got := run([]string{"network", "-otf", "-rel", "failure", partialNet}); got != 3 {
		t.Errorf("failure relation on an unrestricted product (-otf) = %d, want 3", got)
	}
}

func TestNetworkBadInput(t *testing.T) {
	cell := writeFixture(t, "cell.fsp", relayCell)
	cases := map[string]string{
		"unknown directive": "frobnicate x\n",
		"bad relabel":       "component " + cell + " in=\n",
		"no components":     "hide c1\n",
		"missing file":      "component /nonexistent/process\n",
		"tau relabel":       "component " + cell + " tau=c0\n",
	}
	for name, content := range cases {
		file := writeFixture(t, "bad.txt", content)
		if got := run([]string{"network", file}); got != 2 {
			t.Errorf("%s: exit = %d, want 2", name, got)
		}
	}
}
