package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ccs"
)

// galleryDir is the committed negative-example gallery, relative to this
// package's test working directory.
const galleryDir = "../../examples/vet"

// vetCatalogue is every diagnostic code the gallery pins, each of which
// must appear exactly once across `ccs vet examples/vet/*`.
var vetCatalogue = []string{
	ccs.CodeDeadSync,
	ccs.CodeRestrictionSink,
	ccs.CodeRelabelCollision,
	ccs.CodeRelabelRestricted,
	ccs.CodeSortMismatch,
	ccs.CodeTauDivergence,
	ccs.CodeUnguardedStart,
	ccs.CodeUndefinedChannel,
	ccs.CodeUnsatisfiableVector,
}

// TestVetGalleryText runs the vet subcommand over the whole committed
// gallery — files and the procs/ subdirectory alike, as a shell glob
// would pass them — and asserts every catalogued code is reported exactly
// once, the clean exhibit stays silent, and findings exit 1.
func TestVetGalleryText(t *testing.T) {
	entries, err := os.ReadDir(galleryDir)
	if err != nil {
		t.Fatal(err)
	}
	args := []string{"vet"}
	for _, e := range entries {
		args = append(args, filepath.Join(galleryDir, e.Name()))
	}
	code, stdout, stderr := captureRun(t, args)
	if code != 1 {
		t.Fatalf("vet over the gallery = %d, want 1 (findings)\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	for _, want := range vetCatalogue {
		if n := strings.Count(stdout, "["+want+"]"); n != 1 {
			t.Errorf("code %s reported %d times, want exactly once\n%s", want, n, stdout)
		}
	}
	if strings.Contains(stdout, "clean.net:") {
		t.Errorf("the clean exhibit produced findings:\n%s", stdout)
	}
}

// TestVetCleanExitsZero: a clean description vets silently, exit 0.
func TestVetCleanExitsZero(t *testing.T) {
	code, stdout, _ := captureRun(t, []string{"vet", filepath.Join(galleryDir, "clean.net")})
	if code != 0 {
		t.Fatalf("vet clean.net = %d, want 0\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "0 finding(s)") {
		t.Errorf("summary line missing: %q", stdout)
	}
}

// TestVetJSONRoundTrip: -json output decodes through the schema types and
// carries each catalogued code exactly once.
func TestVetJSONRoundTrip(t *testing.T) {
	code, stdout, _ := captureRun(t, []string{"vet", "-json", galleryDir})
	if code != 1 {
		t.Fatalf("vet -json = %d, want 1", code)
	}
	reps, err := ccs.DecodeVetReports([]byte(stdout))
	if err != nil {
		t.Fatalf("output does not round-trip: %v\n%s", err, stdout)
	}
	if len(reps) != 10 {
		t.Fatalf("decoded %d reports, want 10 (one per .net)", len(reps))
	}
	counts := map[string]int{}
	for _, rep := range reps {
		if rep.Label == "" || rep.Network == "" {
			t.Errorf("report missing label/network: %+v", rep)
		}
		for _, d := range rep.Diagnostics {
			counts[d.Code]++
		}
	}
	for _, want := range vetCatalogue {
		if counts[want] != 1 {
			t.Errorf("code %s decoded %d times, want exactly once", want, counts[want])
		}
	}
}

// TestVetUsageErrors: no arguments, missing files and unparsable
// descriptions exit 2.
func TestVetUsageErrors(t *testing.T) {
	if code := run([]string{"vet"}); code != 2 {
		t.Errorf("vet with no arguments = %d, want 2", code)
	}
	if code := run([]string{"vet", filepath.Join(t.TempDir(), "nope.net")}); code != 2 {
		t.Errorf("vet on a missing file = %d, want 2", code)
	}
	bad := writeFixture(t, "bad.net", "component\n")
	if code := run([]string{"vet", bad}); code != 2 {
		t.Errorf("vet on an unparsable description = %d, want 2", code)
	}
	empty := t.TempDir()
	if code := run([]string{"vet", empty}); code != 2 {
		t.Errorf("vet on a directory without descriptions = %d, want 2", code)
	}
}

// TestNetworkStrictVet: the pre-flight warns by default and fails the run
// under -strict-vet before any checking happens.
func TestNetworkStrictVet(t *testing.T) {
	desc := filepath.Join(galleryDir, "deadsync.net")
	code, _, stderr := captureRun(t, []string{"network", desc})
	if code != 0 {
		t.Fatalf("spec-less defective network = %d, want 0 (vet only warns)\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "vet: error[dead-sync]") {
		t.Errorf("pre-flight warning missing from stderr: %q", stderr)
	}
	code, _, stderr = captureRun(t, []string{"network", "-strict-vet", desc})
	if code != 2 {
		t.Fatalf("-strict-vet on a defective network = %d, want 2\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "strict-vet") {
		t.Errorf("strict failure does not name the gate: %q", stderr)
	}
	// A clean description passes the strict gate (spec-less: prints the
	// composed process, exit 0).
	if code := run([]string{"network", "-strict-vet", filepath.Join(galleryDir, "clean.net")}); code != 0 {
		t.Errorf("-strict-vet on the clean network = %d, want 0", code)
	}
}

// TestBatchStrictVet: network queries in a batch are pre-flighted; the
// strict flag turns findings into a usage failure before checking.
func TestBatchStrictVet(t *testing.T) {
	spec := writeFixture(t, "spec.fsp", "fsp spec\nstates 1\nstart 0\next 0 x\narc 0 x 0\narc 0 y 0\n")
	sender := filepath.Join(galleryDir, "procs", "sender.fsp")
	noise := filepath.Join(galleryDir, "procs", "noise.fsp")
	abs := func(p string) string {
		a, err := filepath.Abs(p)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	reqs := []ccs.CheckRequest{
		ccs.NewCheck("strong", "expr:a", "expr:a", ccs.WithLabel("pair")),
		ccs.NewNetworkCheck("weak", ccs.NetworkRequest{
			Name: "dead",
			Components: []ccs.NetworkComponentRef{
				{Process: abs(sender)}, {Process: abs(noise)},
			},
			Hide: []string{"a"},
			Spec: abs(spec),
		}, ccs.WithLabel("deadnet")),
	}
	data, err := ccs.EncodeRequests(reqs)
	if err != nil {
		t.Fatal(err)
	}
	list := writeFixture(t, "batch.json", string(data))

	code, _, stderr := captureRun(t, []string{"batch", list})
	if !strings.Contains(stderr, "vet deadnet: error[dead-sync]") {
		t.Errorf("batch pre-flight warning missing: %q", stderr)
	}
	if code == 2 {
		t.Errorf("default batch exited 2; vet must only warn\nstderr: %s", stderr)
	}
	code, _, stderr = captureRun(t, []string{"batch", "-strict-vet", list})
	if code != 2 {
		t.Fatalf("batch -strict-vet = %d, want 2\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "strict-vet") {
		t.Errorf("strict failure does not name the gate: %q", stderr)
	}
}

// TestNetworkOTFFallbackCarriesVet: when the on-the-fly game refuses a
// spec (essential nondeterminism) and the engine falls back, the CLI run
// surfaces both the fallback reason and the vet findings about the inputs
// — here a tau-divergent component — side by side on stderr.
func TestNetworkOTFFallbackCarriesVet(t *testing.T) {
	// a.(b+c) with a tau-cycle tail: diverges after b/c.
	proc := writeFixture(t, "branchdiv.fsp",
		"fsp branchdiv\nstates 4\nstart 0\next 0 x\next 1 x\next 2 x\next 3 x\n"+
			"arc 0 a 1\narc 1 b 2\narc 1 c 2\narc 2 tau 3\narc 3 tau 2\n")
	spec := writeFixture(t, "abac.fsp", essentialChoice)
	file := writeFixture(t, "enet.txt", "component "+proc+"\nspec "+spec+"\n")
	code, _, stderr := captureRun(t, []string{"network", "-otf", file})
	if code != 0 && code != 1 {
		t.Fatalf("network -otf = %d, want a verdict exit\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "fell back to minimize-then-compose") {
		t.Errorf("fallback reason missing from stderr: %q", stderr)
	}
	if !strings.Contains(stderr, "vet: warning[tau-divergence]") {
		t.Errorf("vet finding missing from the fallback run's stderr: %q", stderr)
	}
}

// TestVetResolvesRelativeToDescription: component paths inside a
// description resolve against the description's own directory, so a
// gallery is self-contained wherever the command runs from.
func TestVetResolvesRelativeToDescription(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "procs"), 0o755); err != nil {
		t.Fatal(err)
	}
	proc := "fsp p\nstates 1\nstart 0\next 0 x\narc 0 a 0\n"
	if err := os.WriteFile(filepath.Join(dir, "procs", "p.fsp"), []byte(proc), 0o644); err != nil {
		t.Fatal(err)
	}
	desc := filepath.Join(dir, "rel.net")
	if err := os.WriteFile(desc, []byte("component procs/p.fsp\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"vet", desc}); code != 0 {
		t.Errorf("vet with description-relative components = %d, want 0", code)
	}
	if code := run([]string{"network", desc}); code != 0 {
		t.Errorf("network with description-relative components = %d, want 0", code)
	}
}

// TestVetStdinDescription: "-" reads the description from stdin.
func TestVetStdinDescription(t *testing.T) {
	sender, err := filepath.Abs(filepath.Join(galleryDir, "procs", "sender.fsp"))
	if err != nil {
		t.Fatal(err)
	}
	noise, err := filepath.Abs(filepath.Join(galleryDir, "procs", "noise.fsp"))
	if err != nil {
		t.Fatal(err)
	}
	desc := fmt.Sprintf("component %s\ncomponent %s\nhide a\n", sender, noise)
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.WriteString(desc); err != nil {
		t.Fatal(err)
	}
	w.Close()
	oldIn := os.Stdin
	os.Stdin = r
	defer func() { os.Stdin = oldIn }()
	code, stdout, _ := captureRun(t, []string{"vet", "-"})
	if code != 1 {
		t.Fatalf("vet - (defective stdin description) = %d, want 1\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "[dead-sync]") {
		t.Errorf("stdin description's finding missing: %q", stdout)
	}
}
