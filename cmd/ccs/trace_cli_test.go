package main

import (
	"strings"
	"testing"
)

func TestVersionCommand(t *testing.T) {
	for _, arg := range []string{"version", "-version", "--version"} {
		code, out, _ := captureRun(t, []string{arg})
		if code != 0 || !strings.Contains(out, "ccs dev") {
			t.Fatalf("%s: exit %d, out %q", arg, code, out)
		}
	}
}

func TestCheckTrace(t *testing.T) {
	code, out, errOut := captureRun(t, []string{"check", "-trace", "-rel", "weak", "expr:a+a", "expr:a"})
	if code != 0 || !strings.Contains(out, "equivalent") {
		t.Fatalf("traced check: exit %d, out %q", code, out)
	}
	for _, want := range []string{"trace ", "parse", "quotient", "solve"} {
		if !strings.Contains(errOut, want) {
			t.Fatalf("trace output missing %q:\n%s", want, errOut)
		}
	}
	// A traced inequivalent pair still explains itself.
	code, out, _ = captureRun(t, []string{"check", "-trace", "-rel", "strong", "expr:ab+ac", "expr:a(b+c)"})
	if code != 1 || !strings.Contains(out, "distinguished by") {
		t.Fatalf("traced inequivalent check: exit %d, out %q", code, out)
	}
}

func TestNetworkTraceAndProgress(t *testing.T) {
	cell := writeFixture(t, "cell.fsp", relayCell)
	spec := writeFixture(t, "counter.fsp", counterTwo)
	net := relayNetFile(t, cell, spec)

	code, _, errOut := captureRun(t, []string{"network", "-otf", "-trace", net})
	if code != 0 {
		t.Fatalf("traced otf network: exit %d\n%s", code, errOut)
	}
	for _, want := range []string{"trace ", "parse", "vet", "quotient", "otf-explore"} {
		if !strings.Contains(errOut, want) {
			t.Fatalf("network trace missing %q:\n%s", want, errOut)
		}
	}

	// -trace works on the mtc route too, with the compose phase.
	code, _, errOut = captureRun(t, []string{"network", "-trace", net})
	if code != 0 || !strings.Contains(errOut, "compose") {
		t.Fatalf("traced mtc network: exit %d\n%s", code, errOut)
	}

	code, _, errOut = captureRun(t, []string{"network", "-otf", "-progress", net})
	if code != 0 || !strings.Contains(errOut, "otf: ") || !strings.Contains(errOut, "pairs") {
		t.Fatalf("progress network: exit %d\n%s", code, errOut)
	}
}

func TestNetworkTraceFlagValidation(t *testing.T) {
	cell := writeFixture(t, "cell.fsp", relayCell)
	spec := writeFixture(t, "counter.fsp", counterTwo)
	net := relayNetFile(t, cell, spec)
	if code, _, _ := captureRun(t, []string{"network", "-flat", "-trace", net}); code != 2 {
		t.Fatalf("-flat -trace should exit 2, got %d", code)
	}
	if code, _, _ := captureRun(t, []string{"network", "-progress", net}); code != 2 {
		t.Fatalf("-progress without -otf should exit 2, got %d", code)
	}
}

func TestBatchTrace(t *testing.T) {
	list := writeFixture(t, "list.txt", "weak expr:a+a expr:a\nstrong expr:a expr:a\n")
	code, _, errOut := captureRun(t, []string{"batch", "-trace", list})
	if code != 0 {
		t.Fatalf("traced batch: exit %d\n%s", code, errOut)
	}
	if strings.Count(errOut, "trace ") < 2 {
		t.Fatalf("batch trace output incomplete:\n%s", errOut)
	}
}
