package main

import (
	"fmt"
	"io"
	"sort"

	"ccs"
)

// printTrace renders a query's phase timeline (-trace) on w: one line per
// span with its offset from the query's start, its wall time, and its
// attributes. Spans are flat, so the header's sum against the query's
// wall time shows how much of the query the phases account for.
func printTrace(w io.Writer, tr *ccs.TraceReport, wallMS float64) {
	if tr == nil {
		return
	}
	var sum float64
	for _, sp := range tr.Spans {
		sum += sp.DurationMS
	}
	fmt.Fprintf(w, "trace %s: %d phases, %.2fms of %.2fms wall\n", tr.ID, len(tr.Spans), sum, wallMS)
	for _, sp := range tr.Spans {
		keys := make([]string, 0, len(sp.Attrs))
		for k := range sp.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		attrs := ""
		for _, k := range keys {
			attrs += fmt.Sprintf("  %s=%s", k, sp.Attrs[k])
		}
		fmt.Fprintf(w, "  +%9.3fms %-12s %9.3fms%s\n", sp.StartMS, sp.Phase, sp.DurationMS, attrs)
	}
}

// otfProgressPrinter returns the -progress hook: a live, carriage-return
// overwritten line of the on-the-fly game's counters, finished with a
// newline when the final snapshot lands. It runs on the scheduler's
// sampler goroutine; w is written from that one goroutine only.
func otfProgressPrinter(w io.Writer) ccs.OTFProgressFunc {
	return func(s ccs.OTFProgress) {
		line := fmt.Sprintf("otf: %d pairs, %d explored (%.0f pairs/s), %d steals, %d workers",
			s.Pairs, s.Explored, s.Rate(), s.Steals, s.Workers)
		if s.SpecSubsets > 0 {
			line += fmt.Sprintf(", %d spec subsets", s.SpecSubsets)
		}
		if s.Final {
			fmt.Fprintf(w, "\r%s\n", line)
		} else {
			fmt.Fprintf(w, "\r%s", line)
		}
	}
}
