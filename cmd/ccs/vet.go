package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"ccs"
)

// cmdVet statically analyzes network descriptions without checking them:
// each FILE argument is a description in the `ccs network` format (a
// directory argument means every *.net file inside it), and every finding
// of the vet pass — dead handshakes, restriction sinks, relabeling
// collisions and mix-ups, sort mismatches, divergence, undefined channels
// — is reported with its code, severity and position. Component references
// inside a description resolve relative to the description's directory.
//
// -json renders a versioned VetEnvelope (the same document POST /v1/vet
// answers) instead of text. Exit status: 0 clean, 1 findings, 2 usage or
// input error — so `ccs vet examples/vet/*.net` works as a gate.
func cmdVet(args []string) (*bool, error) {
	fs := flag.NewFlagSet("vet", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit findings as a versioned JSON document")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() == 0 {
		return nil, fmt.Errorf("vet wants network description files (or directories of .net files)")
	}
	files, err := vetTargets(fs.Args())
	if err != nil {
		return nil, err
	}

	var reps []ccs.VetReport
	total, errors := 0, 0
	for _, file := range files {
		nr, _, err := parseNetworkFile(file)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", file, err)
		}
		diags, err := ccs.VetNetworkRequest(nr, loadProcessFrom(filepath.Dir(file)))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", file, err)
		}
		if diags == nil {
			diags = []ccs.Diagnostic{}
		}
		reps = append(reps, ccs.VetReport{Label: file, Network: nr.Name, Diagnostics: diags})
		total += len(diags)
		if !*jsonOut {
			for _, d := range diags {
				fmt.Printf("%s: %s\n", file, d)
			}
		}
		if ccs.VetHasErrors(diags) {
			errors++
		}
	}
	if *jsonOut {
		data, err := ccs.EncodeVetReports(reps)
		if err != nil {
			return nil, err
		}
		os.Stdout.Write(append(data, '\n'))
	} else {
		fmt.Printf("%d finding(s) in %d network(s)\n", total, len(files))
	}
	clean := total == 0
	return &clean, nil
}

// vetTargets expands the argument list: files stand for themselves,
// directories for the sorted *.net files inside them. A directory with no
// descriptions contributes nothing (so a gallery's process subdirectory
// can ride along in a glob), but an empty overall expansion is an error.
func vetTargets(args []string) ([]string, error) {
	var files []string
	for _, arg := range args {
		if arg == "-" {
			files = append(files, arg)
			continue
		}
		info, err := os.Stat(arg)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			files = append(files, arg)
			continue
		}
		inside, err := filepath.Glob(filepath.Join(arg, "*.net"))
		if err != nil {
			return nil, err
		}
		sort.Strings(inside)
		files = append(files, inside...)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no network descriptions among the arguments")
	}
	return files, nil
}

// parseNetworkFile reads one description file ("-" for stdin).
func parseNetworkFile(file string) (ccs.NetworkRequest, string, error) {
	if file == "-" {
		return ccs.ParseNetworkDescription(os.Stdin)
	}
	f, err := os.Open(file)
	if err != nil {
		return ccs.NetworkRequest{}, "", err
	}
	defer f.Close()
	return ccs.ParseNetworkDescription(f)
}

// loadProcessFrom returns a process loader that resolves relative file
// references against dir — so a description names its components relative
// to itself, wherever the command runs from. Absolute paths and dir == ""
// (stdin descriptions) keep the plain behavior.
func loadProcessFrom(dir string) ccs.ProcessLoader {
	return func(ref string) (*ccs.Process, error) {
		if dir != "" && dir != "." && !filepath.IsAbs(ref) && !strings.HasPrefix(ref, "expr:") {
			ref = filepath.Join(dir, ref)
		}
		return loadProcess(ref)
	}
}

// vetPreflight runs the static-analysis pass before a network check and
// prints every finding to stderr. Under strict it turns findings into a
// usage-level failure (exit 2): the input is defective, the check never
// ran. Resolution failures are ignored here — the check proper reports
// them with the right error kind.
func vetPreflight(nr ccs.NetworkRequest, load ccs.ProcessLoader, label string, strict bool) error {
	diags, err := ccs.VetNetworkRequest(nr, load)
	if err != nil {
		return nil
	}
	prefix := "vet"
	if label != "" {
		prefix = "vet " + label
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", prefix, d)
	}
	if strict && len(diags) > 0 {
		return fmt.Errorf("strict-vet: %d finding(s); not checking", len(diags))
	}
	return nil
}
