// Command ccs is an equivalence checker for CCS finite state processes.
//
// Usage:
//
//	ccs check  -rel strong|weak|trace|failure|kN|limitedN A B
//	ccs batch  [-rel REL] [-workers N] LIST
//	ccs network [-rel REL] [-flat|-otf] [-stats] FILE
//	ccs vet    [-json] FILE...
//	ccs serve  [-addr A] [-cache-dir D] [-workers N]
//	ccs expr   -rel ccs|language EXPR1 EXPR2
//	ccs minimize -rel strong|weak A
//	ccs explain [-weak] A B
//	ccs failures [-depth N] A
//	ccs classify A
//	ccs dot A
//
// A and B name process files in the textual interchange format, or inline
// star expressions when prefixed with "expr:". Exit status: 0 when a check
// reports "equivalent", 1 when "inequivalent", 2 on usage or input errors,
// and 3 when a run got as far as checking but a query failed — some lines
// of a batch (the per-line output distinguishes the errored queries from
// the checked-but-inequivalent ones), or the single query of a network
// check.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"ccs"
	"ccs/internal/failures"
	"ccs/internal/fsp"
)

// version is the build version, stamped at link time with
//
//	go build -ldflags "-X main.version=v1.2.3" ./cmd/ccs
//
// and surfaced by `ccs -version`, the server's /healthz and /v1/stats,
// and the ccs_build_info metric.
var version = "dev"

// exitError carries an explicit exit status through run's error path, so
// subcommands can distinguish "the tool failed" (2) from "the run
// completed and is reporting failures" (3, ccs batch).
type exitError struct {
	code int
	err  error
}

func (e *exitError) Error() string { return e.err.Error() }

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	if len(args) == 0 {
		usage()
		return 2
	}
	var err error
	var verdict *bool
	switch args[0] {
	case "check":
		verdict, err = cmdCheck(args[1:])
	case "batch":
		verdict, err = cmdBatch(args[1:])
	case "network":
		verdict, err = cmdNetwork(args[1:])
	case "vet":
		verdict, err = cmdVet(args[1:])
	case "serve":
		verdict, err = cmdServe(args[1:])
	case "spectrum":
		err = cmdSpectrum(args[1:])
	case "refines":
		verdict, err = cmdRefines(args[1:])
	case "divergent":
		err = cmdDivergent(args[1:])
	case "expr":
		verdict, err = cmdExpr(args[1:])
	case "minimize":
		err = cmdMinimize(args[1:])
	case "explain":
		err = cmdExplain(args[1:])
	case "failures":
		err = cmdFailures(args[1:])
	case "classify":
		err = cmdClassify(args[1:])
	case "sat":
		verdict, err = cmdSat(args[1:])
	case "dot":
		err = cmdDot(args[1:])
	case "aut":
		err = cmdAUT(args[1:])
	case "version", "-version", "--version":
		fmt.Printf("ccs %s\n", version)
		return 0
	case "help", "-h", "--help":
		usage()
		return 0
	default:
		fmt.Fprintf(os.Stderr, "ccs: unknown subcommand %q\n", args[0])
		usage()
		return 2
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "ccs: %v\n", err)
		var ee *exitError
		if errors.As(err, &ee) {
			return ee.code
		}
		return 2
	}
	if verdict != nil && !*verdict {
		return 1
	}
	return 0
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  ccs check    -rel strong|weak|trace|failure|congruence|simulation|kN|limitedN A B
  ccs batch    [-rel REL] [-workers N] [-timeout D] LIST   # concurrent pair list
  ccs network  [-rel REL] [-flat|-otf] [-stats] FILE       # compositional check
  ccs vet      [-json] FILE...                             # static analysis only
  ccs serve    [-addr A] [-cache-dir D] [-workers N]       # HTTP/JSON service
  ccs spectrum A B
  ccs refines  SPEC IMPL
  ccs divergent A
  ccs expr     -rel ccs|language EXPR1 EXPR2
  ccs minimize -rel strong|weak A
  ccs explain  [-weak] A B
  ccs failures [-depth N] A
  ccs sat      [-weak] A FORMULA
  ccs classify A
  ccs dot      A
  ccs aut      A            # convert to Aldebaran .aut (CADP/mCRL2)

A and B are process files (native format, or .aut by extension), or star
expressions prefixed "expr:". The batch LIST (or - for stdin) has one
"[RELATION] A B" query per line; '#' starts a comment. Batch exit status:
0 all equivalent, 1 some inequivalent, 2 usage/input error, 3 some
queries failed to check.
The network FILE describes a process network, one directive per line:
"component A [in=c0 out=c1]" (repeatable, with optional old=new
relabelings), "hide c1 c2 ...", "spec S", "rel weak"; components are
minimized before composing unless -flat is given, and -otf skips the
product entirely (lazy game against a deterministic spec). Network exit
codes match batch: 0 equivalent, 1 not, 2 usage, 3 query error.
Network and batch checks vet their networks first (warnings on stderr;
-strict-vet turns findings into exit 2); ccs vet runs the same static
analysis alone on description files or directories, exit 0 clean /
1 findings / 2 usage, with -json for the machine-readable document.
HML formulas: tt, ff, <a>phi, [a]phi, !phi, phi&phi, phi|phi, ext(x);
with -weak the process is saturated first and <eps> is available.
`)
}

// loadProcess reads a process file (the native format, or Aldebaran .aut
// by extension), or builds a representative FSP when the argument has the
// form "expr:...".
func loadProcess(arg string) (*ccs.Process, error) {
	if len(arg) > 5 && arg[:5] == "expr:" {
		return ccs.FromExpression(arg[5:])
	}
	f, err := os.Open(arg)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(arg, ".aut") {
		return fsp.ParseAUT(f)
	}
	return ccs.ParseProcess(f)
}

func cmdCheck(args []string) (*bool, error) {
	fs := flag.NewFlagSet("check", flag.ContinueOnError)
	relName := fs.String("rel", "strong", "equivalence relation")
	traceFlag := fs.Bool("trace", false, "print the query's phase timeline on stderr")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() != 2 {
		return nil, fmt.Errorf("check wants two process arguments")
	}
	rel, k, err := ccs.ParseRelation(*relName)
	if err != nil {
		return nil, err
	}
	if *traceFlag {
		// The traced path goes through the request facade, where the
		// phase spans live; the file arguments become process sources
		// resolved by the usual loader.
		req := ccs.NewCheck(*relName, fs.Arg(0), fs.Arg(1), ccs.WithTrace(), ccs.WithExplain())
		rep := ccs.NewChecker().Do(context.Background(), req, loadProcess)
		printTrace(os.Stderr, rep.Trace, rep.ElapsedMS)
		if rep.Error != nil {
			if rep.Error.Kind == ccs.ErrorKindInput {
				return nil, fmt.Errorf("%s", rep.Error.Message)
			}
			return nil, queryErr(fmt.Errorf("%s", rep.Error.Message))
		}
		if rep.Equivalent {
			fmt.Printf("equivalent (%s)\n", *relName)
		} else {
			fmt.Printf("NOT equivalent (%s)\n", *relName)
			if rep.Counterexample != "" {
				fmt.Printf("distinguished by: %s\n", rep.Counterexample)
			}
		}
		return &rep.Equivalent, nil
	}
	p, err := loadProcess(fs.Arg(0))
	if err != nil {
		return nil, err
	}
	q, err := loadProcess(fs.Arg(1))
	if err != nil {
		return nil, err
	}
	eq, err := ccs.Equivalent(p, q, rel, k)
	if err != nil {
		return nil, err
	}
	if eq {
		fmt.Printf("equivalent (%s)\n", *relName)
	} else {
		fmt.Printf("NOT equivalent (%s)\n", *relName)
		if rel == ccs.Failure {
			if _, w, err := ccs.FailureEquivalent(p, q); err == nil && w != nil {
				side := "second"
				if w.InFirst {
					side = "first"
				}
				fmt.Printf("witness: trace %s refusing %s, in %s process only\n",
					w.Trace, w.Refusal, side)
			}
		}
		if rel == ccs.Strong {
			if phi, err := ccs.Explain(p, q); err == nil {
				fmt.Printf("distinguished by: %s\n", phi)
			}
		}
		if rel == ccs.Weak {
			if phi, err := ccs.ExplainWeak(p, q); err == nil {
				fmt.Printf("distinguished by (weak modalities): %s\n", phi)
			}
		}
		if rel == ccs.Trace {
			if _, word, err := ccs.TraceWitness(p, q); err == nil && word != nil {
				fmt.Printf("distinguishing word: %v\n", word)
			}
		}
	}
	return &eq, nil
}

func cmdSpectrum(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("spectrum wants two process arguments")
	}
	p, err := loadProcess(args[0])
	if err != nil {
		return err
	}
	q, err := loadProcess(args[1])
	if err != nil {
		return err
	}
	rows, err := ccs.Spectrum(p, q)
	if err != nil {
		return err
	}
	for _, row := range rows {
		verdict := "differ"
		if row.Skipped {
			verdict = "n/a"
		} else if row.Holds {
			verdict = "EQUAL"
		}
		if row.Note != "" {
			fmt.Printf("%-28s %-8s %s\n", row.Relation, verdict, row.Note)
		} else {
			fmt.Printf("%-28s %s\n", row.Relation, verdict)
		}
	}
	return nil
}

func cmdRefines(args []string) (*bool, error) {
	if len(args) != 2 {
		return nil, fmt.Errorf("refines wants: refines SPEC IMPL")
	}
	spec, err := loadProcess(args[0])
	if err != nil {
		return nil, err
	}
	impl, err := loadProcess(args[1])
	if err != nil {
		return nil, err
	}
	ok, w, err := ccs.FailureRefines(spec, impl)
	if err != nil {
		return nil, err
	}
	if ok {
		fmt.Println("refines (failures preorder)")
	} else {
		fmt.Println("does NOT refine")
		if w != nil {
			fmt.Printf("witness: implementation can fail (%s, %s); the spec forbids it\n", w.Trace, w.Refusal)
		}
	}
	return &ok, nil
}

func cmdDivergent(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("divergent wants one process argument")
	}
	p, err := loadProcess(args[0])
	if err != nil {
		return err
	}
	states := ccs.Divergent(p)
	if len(states) == 0 {
		fmt.Println("no divergent states")
		return nil
	}
	fmt.Printf("divergent states: %v\n", states)
	return nil
}

func cmdExpr(args []string) (*bool, error) {
	fs := flag.NewFlagSet("expr", flag.ContinueOnError)
	mode := fs.String("rel", "ccs", "ccs (strong equivalence of representatives) or language")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() != 2 {
		return nil, fmt.Errorf("expr wants two expression arguments")
	}
	var eq bool
	var err error
	switch *mode {
	case "ccs":
		eq, err = ccs.CCSEquivalentExpressions(fs.Arg(0), fs.Arg(1))
	case "language":
		eq, err = ccs.LanguageEquivalentExpressions(fs.Arg(0), fs.Arg(1))
	default:
		return nil, fmt.Errorf("unknown expression relation %q", *mode)
	}
	if err != nil {
		return nil, err
	}
	if eq {
		fmt.Printf("equivalent (%s semantics)\n", *mode)
	} else {
		fmt.Printf("NOT equivalent (%s semantics)\n", *mode)
	}
	return &eq, nil
}

func cmdMinimize(args []string) error {
	fs := flag.NewFlagSet("minimize", flag.ContinueOnError)
	relName := fs.String("rel", "strong", "strong or weak")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("minimize wants one process argument")
	}
	p, err := loadProcess(fs.Arg(0))
	if err != nil {
		return err
	}
	var min *ccs.Process
	switch *relName {
	case "strong":
		min, err = ccs.MinimizeStrong(p)
	case "weak":
		min, err = ccs.MinimizeWeak(p)
	default:
		return fmt.Errorf("unknown minimization relation %q", *relName)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "%d states -> %d states\n", p.NumStates(), min.NumStates())
	fmt.Print(ccs.FormatProcess(min))
	return nil
}

func cmdExplain(args []string) error {
	fs := flag.NewFlagSet("explain", flag.ContinueOnError)
	weak := fs.Bool("weak", false, "use weak (observational) modalities")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("explain wants two process arguments")
	}
	p, err := loadProcess(fs.Arg(0))
	if err != nil {
		return err
	}
	q, err := loadProcess(fs.Arg(1))
	if err != nil {
		return err
	}
	var phi string
	if *weak {
		phi, err = ccs.ExplainWeak(p, q)
	} else {
		phi, err = ccs.Explain(p, q)
	}
	if err != nil {
		return err
	}
	fmt.Println(phi)
	return nil
}

func cmdFailures(args []string) error {
	fs := flag.NewFlagSet("failures", flag.ContinueOnError)
	depth := fs.Int("depth", 3, "maximum trace length")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("failures wants one process argument")
	}
	p, err := loadProcess(fs.Arg(0))
	if err != nil {
		return err
	}
	list, err := failures.Enumerate(p, p.Start(), *depth)
	if err != nil {
		return err
	}
	for _, fl := range list {
		fmt.Printf("(%s, %s)\n",
			failures.FormatTrace(fl.Trace, p.Alphabet()),
			fl.Refusal.Format(p.Alphabet()))
	}
	return nil
}

func cmdClassify(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("classify wants one process argument")
	}
	p, err := loadProcess(args[0])
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d states, %d transitions\n", p.Name(), p.NumStates(), p.NumTransitions())
	for _, m := range ccs.ModelClasses(p) {
		fmt.Println("  " + m)
	}
	return nil
}

func cmdSat(args []string) (*bool, error) {
	fs := flag.NewFlagSet("sat", flag.ContinueOnError)
	weak := fs.Bool("weak", false, "saturate the process first (enables <eps>)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() != 2 {
		return nil, fmt.Errorf("sat wants: sat [-weak] PROCESS FORMULA")
	}
	p, err := loadProcess(fs.Arg(0))
	if err != nil {
		return nil, err
	}
	if *weak {
		p, err = ccs.Saturate(p)
		if err != nil {
			return nil, err
		}
	}
	holds, err := ccs.Satisfies(p, fs.Arg(1))
	if err != nil {
		return nil, err
	}
	states, err := ccs.SatisfyingStates(p, fs.Arg(1))
	if err != nil {
		return nil, err
	}
	if holds {
		fmt.Printf("satisfied at the start state (%d/%d states satisfy)\n", len(states), p.NumStates())
	} else {
		fmt.Printf("NOT satisfied at the start state (%d/%d states satisfy)\n", len(states), p.NumStates())
	}
	return &holds, nil
}

func cmdDot(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("dot wants one process argument")
	}
	p, err := loadProcess(args[0])
	if err != nil {
		return err
	}
	_ = fsp.WriteDOT(os.Stdout, p)
	return nil
}

func cmdAUT(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("aut wants one process argument")
	}
	p, err := loadProcess(args[0])
	if err != nil {
		return err
	}
	return fsp.WriteAUT(os.Stdout, p)
}
