package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"ccs"
)

// cmdBatch checks a list of process pairs concurrently through the batch
// engine. The LIST file (or - for stdin) holds either the line-oriented
// pair list,
//
//	[RELATION] A B
//
// where RELATION is any name ParseRelation accepts (default: the -rel
// flag) and A, B are process files or "expr:" expressions — or a JSON
// request document in the shared schema (ccs.EncodeRequests; the same
// body `ccs serve` accepts on /v1/batch). Blank lines and '#' comments
// are skipped in the text form. Each process file is loaded once and
// shared across queries, so the engine's per-process artifact cache
// applies. -json renders the reports as a versioned JSON document instead
// of the text table; -cache-dir persists derived artifacts across runs.
func cmdBatch(args []string) (*bool, error) {
	fs := flag.NewFlagSet("batch", flag.ContinueOnError)
	relName := fs.String("rel", "strong", "default relation for lines that name only two processes")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	timeout := fs.Duration("timeout", 0, "overall deadline for the batch (0 = none)")
	jsonOut := fs.Bool("json", false, "emit reports as a versioned JSON document")
	stats := fs.Bool("stats", false, "report cache/store counters on stderr")
	cacheDir := fs.String("cache-dir", "", "persistent artifact store directory (empty = memory-only)")
	strictVet := fs.Bool("strict-vet", false, "fail (exit 2) when the vet pre-flight reports findings on any network query")
	traceFlag := fs.Bool("trace", false, "trace every query's phase timeline (stderr; also lands in -json reports)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() != 1 {
		return nil, fmt.Errorf("batch wants one list file argument (or - for stdin)")
	}
	var in io.Reader = os.Stdin
	if fs.Arg(0) != "-" {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return nil, err
		}
		defer f.Close()
		in = f
	}
	reqs, err := ccs.ParseRequests(in, *relName)
	if err != nil {
		return nil, err
	}
	if *traceFlag {
		for i := range reqs {
			reqs[i].Trace = true
		}
	}
	// Pre-flight every network query through the static-analysis pass
	// (pair queries have nothing to vet). Resolution failures are left for
	// DoAll, which reports them in-band with the right error kind.
	vetFindings := 0
	for i, req := range reqs {
		if req.Network == nil {
			continue
		}
		label := req.Label
		if label == "" {
			label = fmt.Sprintf("query %d", i+1)
		}
		diags, err := ccs.VetNetworkRequest(*req.Network, loadProcess)
		if err != nil {
			continue
		}
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "vet %s: %s\n", label, d)
		}
		vetFindings += len(diags)
	}
	if *strictVet && vetFindings > 0 {
		return nil, fmt.Errorf("strict-vet: %d finding(s) across the batch; not checking", vetFindings)
	}
	checker, err := newCLIChecker(*cacheDir)
	if err != nil {
		return nil, err
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	poolSize := ccs.PoolSize(*workers, len(reqs))
	start := time.Now()
	reports := checker.DoAll(ctx, reqs, *workers, loadProcess)
	total := time.Since(start)

	if *stats {
		fmt.Fprintln(os.Stderr, checker.Stats().Render())
	}
	if *jsonOut {
		data, err := ccs.EncodeReports(reports)
		if err != nil {
			return nil, err
		}
		os.Stdout.Write(append(data, '\n'))
	}

	allEq := true
	badInput, failed := 0, 0
	for i, rep := range reports {
		label := rep.Label
		if label == "" {
			label = fmt.Sprintf("query %d", i+1)
		}
		switch {
		case rep.Error != nil:
			failed++
			if rep.Error.Kind == ccs.ErrorKindInput {
				badInput++
			}
			if !*jsonOut {
				fmt.Printf("%-40s error (%s): %s\n", label, rep.Error.Kind, rep.Error.Message)
			}
		case rep.Equivalent:
			if !*jsonOut {
				fmt.Printf("%-40s equivalent      %12s\n", label, reportElapsed(rep))
			}
		default:
			allEq = false
			if !*jsonOut {
				fmt.Printf("%-40s NOT equivalent  %12s\n", label, reportElapsed(rep))
			}
		}
	}
	if !*jsonOut {
		fmt.Printf("%d queries in %s (%d workers)\n", len(reports), total.Round(time.Millisecond), poolSize)
	}
	if *traceFlag {
		for i, rep := range reports {
			label := rep.Label
			if label == "" {
				label = fmt.Sprintf("query %d", i+1)
			}
			fmt.Fprintf(os.Stderr, "%s ", label)
			printTrace(os.Stderr, rep.Trace, rep.ElapsedMS)
		}
	}
	switch {
	case badInput > 0:
		// Bad inputs keep the usage/input exit so a typo'd file name is
		// distinguishable from a genuine mid-check failure.
		return nil, fmt.Errorf("%d of %d queries had invalid inputs", badInput, len(reports))
	case failed > 0:
		// Exit 3, not 2: the batch ran, and "some queries could not be
		// checked" must stay distinguishable both from a usage error and
		// from the checked-but-inequivalent verdict (exit 1). The verdict
		// lines above remain the per-query record.
		return nil, &exitError{code: 3, err: fmt.Errorf("%d of %d queries failed", failed, len(reports))}
	}
	return &allEq, nil
}

// newCLIChecker builds the subcommand's checker: store-backed when a
// cache directory is named, memory-only otherwise.
func newCLIChecker(cacheDir string) (*ccs.Checker, error) {
	if cacheDir == "" {
		return ccs.NewChecker(), nil
	}
	return ccs.NewStoreChecker(cacheDir, 0)
}

func reportElapsed(rep ccs.Report) string {
	return (time.Duration(rep.ElapsedMS * float64(time.Millisecond))).Round(time.Microsecond).String()
}
