package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"ccs"
)

// cmdBatch checks a list of process pairs concurrently through the batch
// engine. The list file has one query per line:
//
//	[RELATION] A B
//
// where RELATION is any name ParseRelation accepts (default: the -rel
// flag) and A, B are process files or "expr:" expressions. Blank lines and
// '#' comments are skipped. Each process file is loaded once and shared
// across queries, so the engine's per-process artifact cache applies.
func cmdBatch(args []string) (*bool, error) {
	fs := flag.NewFlagSet("batch", flag.ContinueOnError)
	relName := fs.String("rel", "strong", "default relation for lines that name only two processes")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	timeout := fs.Duration("timeout", 0, "overall deadline for the batch (0 = none)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() != 1 {
		return nil, fmt.Errorf("batch wants one list file argument (or - for stdin)")
	}
	var in io.Reader = os.Stdin
	if fs.Arg(0) != "-" {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return nil, err
		}
		defer f.Close()
		in = f
	}
	queries, labels, err := parseBatch(in, *relName)
	if err != nil {
		return nil, err
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	poolSize := ccs.PoolSize(*workers, len(queries))

	start := time.Now()
	results := ccs.CheckAll(ctx, queries, *workers)
	total := time.Since(start)

	allEq, failed := true, 0
	for i, r := range results {
		switch {
		case r.Err != nil:
			failed++
			fmt.Printf("%-40s error: %v\n", labels[i], r.Err)
		case r.Equivalent:
			fmt.Printf("%-40s equivalent      %12s\n", labels[i], r.Elapsed.Round(time.Microsecond))
		default:
			allEq = false
			fmt.Printf("%-40s NOT equivalent  %12s\n", labels[i], r.Elapsed.Round(time.Microsecond))
		}
	}
	fmt.Printf("%d queries in %s (%d workers)\n", len(results), total.Round(time.Millisecond), poolSize)
	if failed > 0 {
		// Exit 3, not 2: the batch ran, and "some queries could not be
		// checked" must stay distinguishable both from a usage error and
		// from the checked-but-inequivalent verdict (exit 1). The verdict
		// lines above remain the per-query record.
		return nil, &exitError{code: 3, err: fmt.Errorf("%d of %d queries failed", failed, len(results))}
	}
	return &allEq, nil
}

// parseBatch reads the pair list, loading each distinct process argument
// exactly once so repeated mentions share one *ccs.Process (the engine
// cache is keyed by pointer identity). It returns the queries plus a
// display label per query.
func parseBatch(in io.Reader, defaultRel string) ([]ccs.Query, []string, error) {
	procs := map[string]*ccs.Process{}
	load := func(arg string) (*ccs.Process, error) {
		if p, ok := procs[arg]; ok {
			return p, nil
		}
		p, err := loadProcess(arg)
		if err != nil {
			return nil, err
		}
		procs[arg] = p
		return p, nil
	}

	var queries []ccs.Query
	var labels []string
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		relName := defaultRel
		switch len(fields) {
		case 2:
			// A relation name in first position means the second process
			// was forgotten; diagnose that instead of failing to open a
			// file literally called "weak". (Prefix a path with ./ in the
			// unlikely case a process file shares a relation name.)
			if _, _, err := ccs.ParseRelation(fields[0]); err == nil {
				return nil, nil, fmt.Errorf("line %d: relation %q needs two process arguments", lineNo, fields[0])
			}
		case 3:
			relName = fields[0]
			fields = fields[1:]
		default:
			return nil, nil, fmt.Errorf("line %d: want [RELATION] A B, got %d fields", lineNo, len(fields))
		}
		rel, k, err := ccs.ParseRelation(relName)
		if err != nil {
			return nil, nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		p, err := load(fields[0])
		if err != nil {
			return nil, nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		q, err := load(fields[1])
		if err != nil {
			return nil, nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		queries = append(queries, ccs.Query{P: p, Q: q, Rel: rel, K: k})
		labels = append(labels, fmt.Sprintf("%s %s %s", relName, fields[0], fields[1]))
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	if len(queries) == 0 {
		return nil, nil, fmt.Errorf("no queries in list")
	}
	return queries, labels, nil
}
