package main

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"time"

	"ccs/internal/automata"
	"ccs/internal/core"
	"ccs/internal/engine"
	"ccs/internal/expr"
	"ccs/internal/failures"
	"ccs/internal/fsp"
	"ccs/internal/gen"
	"ccs/internal/kequiv"
	"ccs/internal/reductions"
)

// timed measures one invocation.
func timed(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}

// runE1 compares the naive (Lemma 3.2) and Paige-Tarjan (Theorem 3.1)
// strong-equivalence algorithms on random observable FSPs. The paper's
// claim: O(nm) vs O(m log n + n); the ratio should grow roughly linearly
// with n on fixed-density inputs.
func runE1(w io.Writer, seed int64, quick bool) error {
	sizes := []int{64, 128, 256, 512, 1024, 2048}
	if quick {
		sizes = []int{64, 128, 256}
	}
	fmt.Fprintf(w, "%8s %8s %12s %12s %8s %8s\n", "n", "m", "naive", "paige-tarjan", "ratio", "classes")
	for _, n := range sizes {
		rng := rand.New(rand.NewSource(seed))
		f := gen.RandomRestricted(rng, n, 4*n, 2)
		var naive, pt time.Duration
		var blocksNaive, blocksPT int
		naive = timed(func() {
			blocksNaive = core.StrongPartition(f, core.WithAlgorithm(core.Naive)).NumBlocks()
		})
		pt = timed(func() {
			blocksPT = core.StrongPartition(f, core.WithAlgorithm(core.PaigeTarjan)).NumBlocks()
		})
		if blocksNaive != blocksPT {
			return fmt.Errorf("algorithms disagree: %d vs %d blocks", blocksNaive, blocksPT)
		}
		ratio := float64(naive) / float64(pt)
		fmt.Fprintf(w, "%8d %8d %12s %12s %7.1fx %8d\n",
			n, f.NumTransitions(), naive.Round(time.Microsecond), pt.Round(time.Microsecond), ratio, blocksPT)
	}
	fmt.Fprintln(w, "expect: both polynomial; naive stays competitive on random inputs (few")
	fmt.Fprintln(w, "        rounds to the fixed point) — the Θ(nm) separation shows on the")
	fmt.Fprintln(w, "        adversarial family of E2")
	return nil
}

// runE2 exhibits the Θ(nm) lower bound of Lemma 3.2: on the splitter chain,
// the naive method needs n rounds, each a full O(n + m) pass.
func runE2(w io.Writer, seed int64, quick bool) error {
	sizes := []int{128, 256, 512, 1024}
	if quick {
		sizes = []int{64, 128}
	}
	fmt.Fprintf(w, "%8s %8s %12s %12s %10s\n", "n", "rounds", "naive", "paige-tarjan", "blocks")
	for _, n := range sizes {
		f := gen.SplitterChain(n)
		var rounds, blocks int
		naive := timed(func() {
			p, r, err := core.LimitedPartition(f, -1)
			if err == nil {
				rounds, blocks = r, p.NumBlocks()
			}
		})
		pt := timed(func() {
			core.StrongPartition(f)
		})
		fmt.Fprintf(w, "%8d %8d %12s %12s %10d\n",
			n, rounds, naive.Round(time.Microsecond), pt.Round(time.Microsecond), blocks)
	}
	fmt.Fprintln(w, "expect: rounds = n (every round splits one block; quadratic total naive work)")
	return nil
}

// runE3 times observational equivalence (saturation + partitioning) across
// sizes and tau densities — polynomial end to end (Theorem 4.1a).
func runE3(w io.Writer, seed int64, quick bool) error {
	sizes := []int{64, 128, 256, 512}
	if quick {
		sizes = []int{32, 64, 128}
	}
	fmt.Fprintf(w, "%8s %8s %8s %12s %12s %10s\n", "n", "m", "tau%", "saturate", "partition", "sat-arcs")
	for _, n := range sizes {
		for _, tau := range []float64{0.1, 0.5} {
			rng := rand.New(rand.NewSource(seed))
			f := gen.Random(rng, n, 4*n, 2, tau)
			var sat *fsp.FSP
			var err error
			satTime := timed(func() {
				sat, _, err = fsp.Saturate(f)
			})
			if err != nil {
				return err
			}
			partTime := timed(func() {
				core.StrongPartition(sat)
			})
			fmt.Fprintf(w, "%8d %8d %8.0f %12s %12s %10d\n",
				n, f.NumTransitions(), tau*100,
				satTime.Round(time.Microsecond), partTime.Round(time.Microsecond),
				sat.NumTransitions())
		}
	}
	fmt.Fprintln(w, "expect: smooth polynomial growth; saturation dominated by tau-closure density")
	return nil
}

// runE4 verifies Lemma 2.3.1 empirically: representative FSPs stay linear
// in states and at most quadratic in transitions, built in quadratic time.
func runE4(w io.Writer, seed int64, quick bool) error {
	sizes := []int{8, 16, 32, 64, 128}
	if quick {
		sizes = []int{8, 16, 32}
	}
	fmt.Fprintf(w, "%8s %8s %8s %12s %14s\n", "length", "states", "trans", "build", "trans/len^2")
	for _, ops := range sizes {
		rng := rand.New(rand.NewSource(seed))
		e := gen.RandomExpr(rng, ops, 2)
		var f *fsp.FSP
		var err error
		d := timed(func() {
			f, err = expr.Representative(e)
		})
		if err != nil {
			return err
		}
		n := e.Length()
		fmt.Fprintf(w, "%8d %8d %8d %12s %14.3f\n",
			n, f.NumStates(), f.NumTransitions(), d.Round(time.Microsecond),
			float64(f.NumTransitions())/float64(n*n))
	}
	fmt.Fprintln(w, "expect: states ≤ ~n, transitions/n² bounded (Lemma 2.3.1)")
	return nil
}

// runE5 prints the Fig. 2 gallery verdict table: the executable form of the
// figure separating the Table II equivalences on r.o.u. processes.
func runE5(w io.Writer, seed int64, quick bool) error {
	fmt.Fprintf(w, "%-18s %8s %8s %8s   %s\n", "pair", "≈_1", "≡", "≈", "description")
	for _, pair := range gen.Fig2Gallery() {
		trace, err := kequiv.Equivalent(pair.P, pair.Q, 1)
		if err != nil {
			return err
		}
		fail, _, err := failures.Equivalent(pair.P, pair.Q)
		if err != nil {
			return err
		}
		weak, err := core.WeakEquivalent(pair.P, pair.Q)
		if err != nil {
			return err
		}
		if trace != pair.Trace || fail != pair.Failure || weak != pair.Weak {
			return fmt.Errorf("gallery %q: verdicts drifted from expectations", pair.Name)
		}
		fmt.Fprintf(w, "%-18s %8v %8v %8v   %s\n", pair.Name, trace, fail, weak, pair.Description)
	}
	fmt.Fprintln(w, "expect: rows witnessing ≈ ⊊ ≡ ⊊ ≈_1 (Proposition 2.2.3)")
	return nil
}

// runE6 measures the ≈_k decider as the Theorem 4.1(b) ladder lifts a base
// pair to higher levels. The seeds are ≈_1-equivalent but not ≈_2; after i
// ladder applications the pair is ≈_{1+i} but not ≈_{2+i}, so the
// separation boundary climbs with the reduction exactly as the theorem
// requires, while instance sizes and decision cost grow.
func runE6(w io.Writer, seed int64, quick bool) error {
	levels := 5
	if quick {
		levels = 3
	}
	p := twoChainsSeed()
	q := mixedTreeSeed()
	fmt.Fprintf(w, "%8s %10s %10s %8s %8s %12s\n", "step", "states(p)", "states(q)", "≈_k", "≈_k+1", "decide(k+1)")
	for i := 0; i < levels; i++ {
		k := i + 1
		eqAtK, err := kequiv.Equivalent(p, q, k)
		if err != nil {
			return err
		}
		var eqAbove bool
		d := timed(func() {
			eqAbove, err = kequiv.Equivalent(p, q, k+1)
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%8d %10d %10d %8v %8v %12s\n",
			k, p.NumStates(), q.NumStates(), eqAtK, eqAbove, d.Round(time.Microsecond))
		if !eqAtK || eqAbove {
			return fmt.Errorf("ladder verdicts wrong at step %d: ≈_%d=%v ≈_%d=%v", i, k, eqAtK, k+1, eqAbove)
		}
		if i < levels-1 {
			p, q, err = reductions.Ladder(p, q)
			if err != nil {
				return err
			}
		}
	}
	fmt.Fprintln(w, "expect: every row ≈_k=true, ≈_k+1=false — the separation climbs with the ladder")
	return nil
}

// twoChainsSeed is a² + a³ and mixedTreeSeed is a(a+a²) + a: trace-equal
// processes separated at ≈_2.
func twoChainsSeed() *fsp.FSP {
	b := fsp.NewBuilder("a2+a3")
	b.AddStates(6)
	b.ArcName(0, "a", 1)
	b.ArcName(1, "a", 2)
	b.ArcName(0, "a", 3)
	b.ArcName(3, "a", 4)
	b.ArcName(4, "a", 5)
	for s := fsp.State(0); s < 6; s++ {
		b.Accept(s)
	}
	return b.MustBuild()
}

func mixedTreeSeed() *fsp.FSP {
	b := fsp.NewBuilder("a(a+a2)+a")
	b.AddStates(6)
	b.ArcName(0, "a", 1)
	b.ArcName(1, "a", 2)
	b.ArcName(1, "a", 3)
	b.ArcName(3, "a", 4)
	b.ArcName(0, "a", 5)
	for s := fsp.State(0); s < 6; s++ {
		b.Accept(s)
	}
	return b.MustBuild()
}

// runE7 contrasts failure-equivalence checking on nondeterministic inputs
// (exponential subset blowup, as Theorem 5.1 predicts) with deterministic
// controls of the same size (polynomial).
func runE7(w io.Writer, seed int64, quick bool) error {
	sizes := []int{6, 8, 10, 12, 14}
	if quick {
		sizes = []int{6, 8, 10}
	}
	fmt.Fprintf(w, "%8s %10s %14s %14s\n", "n", "n'", "nondet", "determ")
	for _, n := range sizes {
		rng := rand.New(rand.NewSource(seed))
		// Nondeterministic: a Lemma 4.2 image compared against a renumbered
		// copy of itself. The languages are equal, so the decider cannot
		// exit early and must sweep the reachable subset-pair space, whose
		// size grows exponentially with n on these instances.
		m := gen.RandomTotal(rng, n, n)
		mp, err := reductions.Lemma42(m)
		if err != nil {
			return err
		}
		perm := make([]fsp.State, mp.NumStates())
		for i := range perm {
			perm[i] = fsp.State(mp.NumStates() - 1 - i)
		}
		mq, err := fsp.Renumber(mp, perm)
		if err != nil {
			return err
		}
		var eq bool
		nondet := timed(func() {
			eq, _, err = failures.Equivalent(mp, mq)
		})
		if err != nil {
			return err
		}
		if !eq {
			return fmt.Errorf("renumbered copy not failure-equivalent")
		}
		// Deterministic control of the same state count: self-comparison
		// explores only linearly many pairs.
		d1 := deterministicRestricted(rng, mp.NumStates())
		det := timed(func() {
			eq, _, err = failures.Equivalent(d1, d1)
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%8d %10d %14s %14s\n", n, mp.NumStates(), nondet.Round(time.Microsecond), det.Round(time.Microsecond))
	}
	fmt.Fprintln(w, "expect: the nondeterministic column grows much faster than the deterministic")
	fmt.Fprintln(w, "        control of equal state count (Theorem 5.1's exponential subset sweep)")
	return nil
}

// deterministicRestricted builds a total deterministic restricted process.
func deterministicRestricted(rng *rand.Rand, n int) *fsp.FSP {
	b := fsp.NewBuilder("det")
	b.AddStates(n)
	for s := 0; s < n; s++ {
		b.ArcName(fsp.State(s), "a", fsp.State(rng.Intn(n)))
		b.ArcName(fsp.State(s), "b", fsp.State(rng.Intn(n)))
		b.Accept(fsp.State(s))
	}
	return b.MustBuild()
}

// runE8 runs the Lemma 4.2 reduction end to end: universality of random
// total NFAs decided directly (subset construction) and through the
// restricted-observable image, verifying agreement and comparing cost.
func runE8(w io.Writer, seed int64, quick bool) error {
	trials := 40
	if quick {
		trials = 10
	}
	rng := rand.New(rand.NewSource(seed))
	var agree, universal int
	var direct, reduced time.Duration
	for i := 0; i < trials; i++ {
		m := gen.RandomTotal(rng, 3+rng.Intn(5), rng.Intn(5))
		nfa, err := expr.ToNFA(m)
		if err != nil {
			return err
		}
		var uniDirect bool
		direct += timed(func() {
			uniDirect, _ = automata.Universal(nfa)
		})
		mp, err := reductions.Lemma42(m)
		if err != nil {
			return err
		}
		var uniReduced bool
		reduced += timed(func() {
			nfaP, errI := expr.ToNFA(mp)
			if errI != nil {
				err = errI
				return
			}
			uniReduced, _ = automata.Universal(nfaP)
		})
		if err != nil {
			return err
		}
		if uniDirect == uniReduced {
			agree++
		}
		if uniDirect {
			universal++
		}
	}
	fmt.Fprintf(w, "trials=%d agree=%d universal=%d direct=%s via-reduction=%s\n",
		trials, agree, universal, direct.Round(time.Microsecond), reduced.Round(time.Microsecond))
	if agree != trials {
		return fmt.Errorf("reduction disagreed with direct universality")
	}
	fmt.Fprintln(w, "expect: agree=trials (the Fig. 4 reduction preserves universality)")
	return nil
}

// runE9 samples random restricted processes and tabulates how often each
// equivalence holds, verifying the inclusion chain ≈ ⊆ ≡ ⊆ ≈_1 on every
// sample (Proposition 2.2.3).
func runE9(w io.Writer, seed int64, quick bool) error {
	trials := 300
	if quick {
		trials = 60
	}
	rng := rand.New(rand.NewSource(seed))
	var cntTrace, cntFail, cntWeak, violations int
	for i := 0; i < trials; i++ {
		p := gen.RandomRestricted(rng, 2+rng.Intn(4), rng.Intn(8), 2)
		q := gen.RandomRestricted(rng, 2+rng.Intn(4), rng.Intn(8), 2)
		weak, err := core.WeakEquivalent(p, q)
		if err != nil {
			return err
		}
		fail, _, err := failures.Equivalent(p, q)
		if err != nil {
			return err
		}
		trace, err := kequiv.Equivalent(p, q, 1)
		if err != nil {
			return err
		}
		if weak {
			cntWeak++
		}
		if fail {
			cntFail++
		}
		if trace {
			cntTrace++
		}
		if (weak && !fail) || (fail && !trace) {
			violations++
		}
	}
	fmt.Fprintf(w, "trials=%d  ≈:%d  ≡:%d  ≈_1:%d  inclusion-violations=%d\n",
		trials, cntWeak, cntFail, cntTrace, violations)
	if violations != 0 {
		return fmt.Errorf("inclusion chain violated")
	}
	fmt.Fprintln(w, "expect: counts increase left to right; violations = 0")
	return nil
}

// runE10 verifies Proposition 2.2.4 on random deterministic processes: all
// notions collapse to ≈_1, and the classical DFA equivalence test agrees.
func runE10(w io.Writer, seed int64, quick bool) error {
	trials := 100
	if quick {
		trials = 25
	}
	rng := rand.New(rand.NewSource(seed))
	var eqCount int
	for i := 0; i < trials; i++ {
		p := gen.RandomDeterministic(rng, 2+rng.Intn(5), 2)
		q := gen.RandomDeterministic(rng, 2+rng.Intn(5), 2)
		strong, err := core.StrongEquivalent(p, q)
		if err != nil {
			return err
		}
		trace, err := kequiv.Equivalent(p, q, 1)
		if err != nil {
			return err
		}
		dp, err := toDFA(p)
		if err != nil {
			return err
		}
		dq, err := toDFA(q)
		if err != nil {
			return err
		}
		dfaEq, err := automata.EquivalentDFA(dp, dq)
		if err != nil {
			return err
		}
		if strong != trace || trace != dfaEq {
			return fmt.Errorf("deterministic collapse violated: ~=%v ≈_1=%v dfa=%v", strong, trace, dfaEq)
		}
		if strong {
			eqCount++
		}
	}
	fmt.Fprintf(w, "trials=%d equivalent=%d collapse-violations=0\n", trials, eqCount)
	fmt.Fprintln(w, "expect: ~, ≈_1 and UNION-FIND DFA equivalence agree on every pair")
	return nil
}

func toDFA(p *fsp.FSP) (*automata.DFA, error) {
	n, err := expr.ToNFA(p)
	if err != nil {
		return nil, err
	}
	return automata.Determinize(n), nil
}

// runE11 prints the model classifier's verdicts for one generated instance
// of each Table I class.
func runE11(w io.Writer, seed int64, quick bool) error {
	rng := rand.New(rand.NewSource(seed))
	cases := []struct {
		name string
		f    *fsp.FSP
	}{
		{"general (tau)", gen.Random(rng, 8, 20, 2, 0.4)},
		{"standard observable", gen.RandomTotal(rng, 8, 4)},
		{"deterministic", gen.RandomDeterministic(rng, 8, 2)},
		{"restricted observable", gen.RandomRestricted(rng, 8, 16, 2)},
		{"r.o.u. chain", gen.Chain(5)},
		{"finite tree", gen.RandomTree(rng, 9, 2)},
	}
	for _, tc := range cases {
		cls := fsp.Classify(tc.f)
		var names []string
		for _, m := range cls.Models() {
			names = append(names, m.String())
		}
		fmt.Fprintf(w, "%-22s -> %v\n", tc.name, names)
	}
	fmt.Fprintln(w, "expect: each generated instance reports its class and all supersets (Fig. 1a)")
	return nil
}

// runE12 samples distributivity instances r(s+t) vs rs+rt: language
// equivalence always holds, CCS equivalence only when branching collapses.
func runE12(w io.Writer, seed int64, quick bool) error {
	trials := 60
	if quick {
		trials = 20
	}
	rng := rand.New(rand.NewSource(seed))
	var langEq, ccsEq int
	for i := 0; i < trials; i++ {
		r := gen.RandomExpr(rng, 1+rng.Intn(2), 2)
		s := gen.RandomExpr(rng, rng.Intn(2), 2)
		t := gen.RandomExpr(rng, rng.Intn(2), 2)
		left := expr.Concat{L: r, R: expr.Union{L: s, R: t}}
		right := expr.Union{L: expr.Concat{L: r, R: s}, R: expr.Concat{L: r, R: t}}
		le, err := expr.LanguageEquivalent(left, right)
		if err != nil {
			return err
		}
		ce, err := expr.CCSEquivalent(left, right)
		if err != nil {
			return err
		}
		if le {
			langEq++
		}
		if ce {
			ccsEq++
		}
		if ce && !le {
			return fmt.Errorf("CCS-equivalent but not language-equivalent: %v vs %v", left, right)
		}
	}
	fmt.Fprintf(w, "trials=%d language-equal=%d ccs-equal=%d\n", trials, langEq, ccsEq)
	fmt.Fprintln(w, "expect: language-equal = trials; ccs-equal strictly smaller (Section 2.3 item 3)")
	return nil
}

// runE13 compares the linear-time trivial-NFA test (Section 4 closing
// remark) against the general ≈_2 decider on growing total cycles.
func runE13(w io.Writer, seed int64, quick bool) error {
	sizes := []int{8, 16, 32, 64}
	if quick {
		sizes = []int{8, 16}
	}
	trivial := reductions.TrivialNFA("a")
	fmt.Fprintf(w, "%8s %14s %14s %8s\n", "n", "linear-test", "general-≈_2", "verdict")
	for _, n := range sizes {
		cyc := gen.Cycle(n)
		var fast, slow time.Duration
		var okFast, okSlow bool
		var err error
		fast = timed(func() {
			okFast, err = kequiv.EquivalentToTrivial(cyc, cyc.Start())
		})
		if err != nil {
			return err
		}
		slow = timed(func() {
			okSlow, err = kequiv.Equivalent(cyc, trivial, 2)
		})
		if err != nil {
			return err
		}
		if okFast != okSlow {
			return fmt.Errorf("trivial-NFA shortcut disagrees with ≈_2 decider")
		}
		fmt.Fprintf(w, "%8d %14s %14s %8v\n", n, fast.Round(time.Microsecond), slow.Round(time.Microsecond), okFast)
	}
	// Chaos: the Fig. 5b process is ≈_1 but not ≈_2 the trivial process.
	chaos := reductions.Chaos()
	k1, err := kequiv.Equivalent(chaos, reductions.TrivialNFA("a"), 1)
	if err != nil {
		return err
	}
	k2, err := kequiv.Equivalent(chaos, reductions.TrivialNFA("a"), 2)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "chaos vs q*: ≈_1=%v ≈_2=%v (Fig. 5b separates the levels)\n", k1, k2)
	fmt.Fprintln(w, "expect: linear test matches the general decider and scales; chaos: ≈_1 true, ≈_2 false")
	return nil
}

// runE14 exhibits the Section 6 observation that motivates the open
// problem: extended star expressions (here with the intersection operator,
// semantics = direct product of representatives) are succinct — nesting
// intersections of coprime cycles grows the expression additively but the
// representative FSP multiplicatively (the lcm), which is why the
// equivalence problem "perhaps becomes hard" for the extended calculus.
func runE14(w io.Writer, seed int64, quick bool) error {
	exprs := []string{
		"(aa)*",
		"(aa)*&(aaa)*",
		"(aa)*&(aaa)*&(aaaaa)*",
		"(aa)*&(aaa)*&(aaaaa)*&(aaaaaaa)*",
	}
	if quick {
		exprs = exprs[:3]
	}
	fmt.Fprintf(w, "%-40s %8s %8s %8s %12s\n", "expression", "length", "states", "trans", "build")
	for _, src := range exprs {
		e, err := expr.Parse(src)
		if err != nil {
			return err
		}
		var f *fsp.FSP
		d := timed(func() {
			f, err = expr.Representative(e)
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-40s %8d %8d %8d %12s\n",
			src, e.Length(), f.NumStates(), f.NumTransitions(), d.Round(time.Microsecond))
	}
	// Equivalence still works on the blown-up representatives.
	eq, err := expr.CCSEquivalent(expr.MustParse("(aa)*&(aaa)*"), expr.MustParse("(aaaaaa)*"))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "(aa)*&(aaa)* ~ (a^6)*: %v (CCS equivalence of the representatives)\n", eq)
	fmt.Fprintln(w, "expect: states grow multiplicatively (lcm of cycles) while length grows additively")
	return nil
}

// runE15 measures the batch equivalence engine: a 100-pair weak-equivalence
// workload over a pool of shared processes, checked (a) by the plain
// one-shot facade loop, (b) by the engine sequentially (cache only), and
// (c) by the engine with a 4-worker pool (cache + fan-out). The cache
// amortizes saturation/quotienting per distinct process, and the pool
// parallelizes the residual per-pair work, so (c) should beat (a) by well
// over the worker count and (b) by roughly the worker count.
func runE15(w io.Writer, seed int64, quick bool) error {
	nProcs, nPairs, size := 16, 100, 192
	if quick {
		nProcs, nPairs, size = 8, 30, 64
	}
	rng := rand.New(rand.NewSource(seed))
	procs := make([]*fsp.FSP, nProcs)
	for i := range procs {
		procs[i] = gen.Random(rng, size, 4*size, 2, 0.3)
	}
	queries := make([]engine.Query, nPairs)
	for i := range queries {
		queries[i] = engine.Query{
			P:   procs[rng.Intn(nProcs)],
			Q:   procs[rng.Intn(nProcs)],
			Rel: engine.Weak,
		}
	}
	ctx := context.Background()

	var loopEq int
	var loopErr error
	oneShot := timed(func() {
		for _, q := range queries {
			eq, err := core.WeakEquivalent(q.P, q.Q)
			if err != nil {
				loopErr = err
				return
			}
			if eq {
				loopEq++
			}
		}
	})
	if loopErr != nil {
		return loopErr
	}

	var seq, pooled []engine.Result
	seqTime := timed(func() {
		seq = engine.New().CheckAll(ctx, queries, 1)
	})
	poolTime := timed(func() {
		pooled = engine.New().CheckAll(ctx, queries, 4)
	})

	seqEq, poolEq := 0, 0
	for i := range queries {
		if seq[i].Err != nil {
			return seq[i].Err
		}
		if pooled[i].Err != nil {
			return pooled[i].Err
		}
		if seq[i].Equivalent != pooled[i].Equivalent {
			return fmt.Errorf("pair %d: sequential and pooled verdicts disagree", i)
		}
		if seq[i].Equivalent {
			seqEq++
		}
		if pooled[i].Equivalent {
			poolEq++
		}
	}
	if seqEq != loopEq {
		return fmt.Errorf("engine found %d equivalent pairs, one-shot loop %d", seqEq, loopEq)
	}
	fmt.Fprintf(w, "%-28s %12s %10s\n", "mode", "time", "equal")
	fmt.Fprintf(w, "%-28s %12s %10d\n", "one-shot loop", oneShot.Round(time.Microsecond), loopEq)
	fmt.Fprintf(w, "%-28s %12s %10d\n", "engine, 1 worker", seqTime.Round(time.Microsecond), seqEq)
	fmt.Fprintf(w, "%-28s %12s %10d\n", "engine, 4 workers", poolTime.Round(time.Microsecond), poolEq)
	fmt.Fprintf(w, "pairs=%d procs=%d n=%d gomaxprocs=%d  cache-speedup=%.1fx  pool-speedup=%.1fx  batch-speedup=%.1fx\n",
		nPairs, nProcs, size, runtime.GOMAXPROCS(0),
		float64(oneShot)/float64(seqTime),
		float64(seqTime)/float64(poolTime),
		float64(oneShot)/float64(poolTime))
	fmt.Fprintln(w, "expect: batch-speedup >= 1.5x from caching alone; the worker pool multiplies")
	fmt.Fprintln(w, "        it by up to min(4, gomaxprocs) on multi-core hardware")
	return nil
}
