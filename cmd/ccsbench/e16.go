package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	"ccs/internal/core"
	"ccs/internal/fsp"
	"ccs/internal/gen"
	"ccs/internal/lts"
	"ccs/internal/partition"
)

// benchJSONPath, when non-empty, is where runE16 writes its BENCH_E16.json
// trajectory. main wires it to the -benchjson flag; the test harness leaves
// it empty so test runs produce no files.
var benchJSONPath string

type e16Row struct {
	States     int     `json:"states"`
	Trans      int     `json:"transitions"`
	Iters      int     `json:"iterations"`
	EdgeListNS int64   `json:"edge_list_ns"`
	KernelNS   int64   `json:"csr_kernel_ns"`
	Speedup    float64 `json:"speedup"`
	Blocks     int     `json:"blocks"`
}

type e16Report struct {
	Experiment  string   `json:"experiment"`
	Description string   `json:"description"`
	Seed        int64    `json:"seed"`
	Quick       bool     `json:"quick"`
	GeneratedAt string   `json:"generated_at"`
	Rows        []e16Row `json:"rows"`
}

// e16Flatten is the pre-kernel reduction: materialize the FSP's adjacency
// as an explicit partition.Problem edge slice, exactly what core, kequiv,
// automata and failures each did per call before internal/lts existed.
func e16Flatten(f *fsp.FSP, initial []int32) *partition.Problem {
	pr := &partition.Problem{
		N:         f.NumStates(),
		NumLabels: f.Alphabet().Len(),
		Initial:   initial,
		Edges:     make([]partition.Edge, 0, f.NumTransitions()),
	}
	for s := 0; s < f.NumStates(); s++ {
		for _, a := range f.Arcs(fsp.State(s)) {
			pr.Edges = append(pr.Edges, partition.Edge{
				From:  int32(s),
				Label: int32(a.Act),
				To:    int32(a.To),
			})
		}
	}
	return pr
}

// runE16 benchmarks Paige-Tarjan on the cached CSR kernel against the old
// edge-list route across the gen gallery sizes: the old route pays
// flatten + index construction + solve on every query (what core, kequiv,
// automata and failures each did per call before internal/lts), the
// kernel route builds the index once (the engine's cached artifact) and
// every query is a pure solve. Both routes share the solver, so the
// comparison isolates exactly the re-flattening cost the kernel removes;
// solver-vs-solver correctness lives in the internal/lts differential
// suite. Both routes must produce identical partitions; the per-size
// speedups are emitted as the BENCH_E16.json trajectory when -benchjson
// is set.
func runE16(w io.Writer, seed int64, quick bool) error {
	sizes := []int{256, 512, 1024, 2048, 4096}
	iters := 6
	if quick {
		sizes = []int{128, 256, 512}
		iters = 2
	}
	report := e16Report{
		Experiment:  "E16",
		Description: "Paige-Tarjan on the cached CSR kernel (internal/lts) vs the per-call edge-list path",
		Seed:        seed,
		Quick:       quick,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
	}
	fmt.Fprintf(w, "%8s %8s %8s %14s %14s %8s %8s\n",
		"n", "m", "queries", "edge-list", "csr-kernel", "speedup", "blocks")
	for _, n := range sizes {
		rng := rand.New(rand.NewSource(seed))
		f := gen.Random(rng, n, 6*n, 4, 0.15)
		initial := core.ExtInitial(f)

		var oldP, newP *partition.Partition
		oldT := timed(func() {
			for it := 0; it < iters; it++ {
				oldP = e16Flatten(f, initial).PaigeTarjan()
			}
		})
		newT := timed(func() {
			// The index is built once and cached, as in the engine's
			// per-process artifact store; queries then solve directly.
			idx := lts.FromFSP(f)
			for it := 0; it < iters; it++ {
				newP = partition.PaigeTarjanIndex(idx, initial)
			}
		})
		if !oldP.Equal(newP) {
			return fmt.Errorf("e16: paths disagree at n=%d: %d vs %d blocks", n, oldP.NumBlocks(), newP.NumBlocks())
		}
		speedup := float64(oldT) / float64(newT)
		fmt.Fprintf(w, "%8d %8d %8d %14s %14s %7.1fx %8d\n",
			n, f.NumTransitions(), iters,
			oldT.Round(time.Microsecond), newT.Round(time.Microsecond),
			speedup, newP.NumBlocks())
		report.Rows = append(report.Rows, e16Row{
			States:     n,
			Trans:      f.NumTransitions(),
			Iters:      iters,
			EdgeListNS: oldT.Nanoseconds(),
			KernelNS:   newT.Nanoseconds(),
			Speedup:    speedup,
			Blocks:     newP.NumBlocks(),
		})
	}
	last := report.Rows[len(report.Rows)-1]
	// The speedup floor is asserted on full runs only: quick mode exists as
	// a CI correctness smoke, where shared-runner timing noise on the small
	// sizes would make a hard perf gate flaky.
	if !quick && last.Speedup < 1.5 {
		return fmt.Errorf("e16: kernel speedup %.2fx on the largest process (n=%d), want >= 1.5x", last.Speedup, last.States)
	}
	fmt.Fprintln(w, "expect: speedup >= 1.5x on the largest size — the cached index amortizes")
	fmt.Fprintln(w, "        flattening and preimage construction across queries")
	if benchJSONPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return fmt.Errorf("e16: %w", err)
		}
		if err := os.WriteFile(benchJSONPath, append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("e16: %w", err)
		}
		fmt.Fprintf(w, "trajectory written to %s\n", benchJSONPath)
	}
	return nil
}
