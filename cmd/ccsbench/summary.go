package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// runSummary (-summary) prints one table over the committed BENCH_E*.json
// trajectories: per experiment, the CI gate, the measured headline number,
// and its margin against the gate. It reads whatever files are present in
// dir and marks the rest "not found" — the point is a single place (used
// by the bench CI logs) to see the whole performance trajectory instead
// of grepping six JSON files.
func runSummary(w io.Writer, dir string) error {
	type headline struct {
		file    string
		title   string
		gate    string
		measure func(map[string]any) (value float64, detail string, err error)
		// higherBetter: the gate is a floor (speedups); otherwise a
		// ceiling (E22's overhead).
		floor float64
		ceil  float64
	}

	// rowFloat pulls a float field out of a row map (JSON numbers decode
	// as float64).
	rowFloat := func(row any, key string) float64 {
		m, ok := row.(map[string]any)
		if !ok {
			return 0
		}
		v, _ := m[key].(float64)
		return v
	}
	rowStr := func(row any, key string) string {
		m, ok := row.(map[string]any)
		if !ok {
			return ""
		}
		s, _ := m[key].(string)
		return s
	}
	lastRowSpeedup := func(doc map[string]any) (float64, string, error) {
		rows, _ := doc["rows"].([]any)
		if len(rows) == 0 {
			return 0, "", fmt.Errorf("no rows")
		}
		last := rows[len(rows)-1]
		return rowFloat(last, "speedup"), "largest entry", nil
	}
	bestRowSpeedup := func(doc map[string]any) (float64, string, error) {
		rows, _ := doc["rows"].([]any)
		if len(rows) == 0 {
			return 0, "", fmt.Errorf("no rows")
		}
		best, detail := 0.0, ""
		for _, row := range rows {
			if s := rowFloat(row, "speedup"); s > best {
				best, detail = s, rowStr(row, "entry")
			}
		}
		return best, detail, nil
	}
	entryRowSpeedup := func(substr string) func(map[string]any) (float64, string, error) {
		return func(doc map[string]any) (float64, string, error) {
			rows, _ := doc["rows"].([]any)
			for _, row := range rows {
				if e := rowStr(row, "entry"); strings.Contains(e, substr) {
					return rowFloat(row, "speedup"), e, nil
				}
			}
			return 0, "", fmt.Errorf("no %q row", substr)
		}
	}

	experiments := []headline{
		{file: "BENCH_E16.json", title: "CSR kernel vs edge list", gate: ">= 1.5x",
			measure: lastRowSpeedup, floor: 1.5},
		{file: "BENCH_E17.json", title: "minimize-then-compose vs flat", gate: ">= 2x",
			measure: lastRowSpeedup, floor: 2},
		{file: "BENCH_E18.json", title: "on-the-fly game vs mtc", gate: ">= 2x",
			measure: bestRowSpeedup, floor: 2},
		{file: "BENCH_E19.json", title: "determinized otf vs mtc", gate: ">= 2x",
			measure: bestRowSpeedup, floor: 2},
		{file: "BENCH_E20.json", title: "store: cold vs warm restart", gate: ">= 2x",
			measure: func(doc map[string]any) (float64, string, error) {
				v, ok := doc["total_speedup"].(float64)
				if !ok {
					return 0, "", fmt.Errorf("no total_speedup")
				}
				return v, "whole request sweep", nil
			}, floor: 2},
		{file: "BENCH_E21.json", title: "work-stealing + minimal quotients", gate: ">= 1.3x",
			measure: entryRowSpeedup("token-ring"), floor: 1.3},
		{file: "BENCH_E22.json", title: "observability overhead", gate: "<= 1.05x",
			measure: func(doc map[string]any) (float64, string, error) {
				v, ok := doc["overhead"].(float64)
				if !ok {
					return 0, "", fmt.Errorf("no overhead")
				}
				detail, _ := doc["entry"].(string)
				return v, detail, nil
			}, ceil: 1.05},
		{file: "BENCH_E23.json", title: "sync-vector quorum: otf vs mtc", gate: ">= 2x",
			// the gate holds on the best quorum entry (the starved quorum's
			// early mismatch), not the first
			measure: func(doc map[string]any) (float64, string, error) {
				rows, _ := doc["rows"].([]any)
				best, detail := 0.0, ""
				for _, row := range rows {
					if e := rowStr(row, "entry"); strings.Contains(e, "bq-") {
						if s := rowFloat(row, "speedup"); s > best {
							best, detail = s, e
						}
					}
				}
				if detail == "" {
					return 0, "", fmt.Errorf("no bq- row")
				}
				return best, detail, nil
			}, floor: 2},
	}

	fmt.Fprintf(w, "%-15s %-34s %-9s %9s %7s  %s\n",
		"trajectory", "experiment", "gate", "measured", "margin", "detail")
	for _, h := range experiments {
		path := filepath.Join(dir, h.file)
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(w, "%-15s %-34s %-9s %9s\n", h.file, h.title, h.gate, "not found")
			continue
		}
		var doc map[string]any
		if err := json.Unmarshal(data, &doc); err != nil {
			return fmt.Errorf("%s: %w", h.file, err)
		}
		value, detail, err := h.measure(doc)
		if err != nil {
			return fmt.Errorf("%s: %w", h.file, err)
		}
		var margin float64
		if h.floor > 0 {
			margin = value / h.floor
		} else {
			margin = h.ceil / value
		}
		status := ""
		if margin < 1 {
			status = "  << BELOW GATE"
		}
		fmt.Fprintf(w, "%-15s %-34s %-9s %8.2fx %6.2fx  %s%s\n",
			h.file, h.title, h.gate, value, margin, detail, status)
	}
	return nil
}
