package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"ccs/internal/core"
	"ccs/internal/engine"
	"ccs/internal/gen"
	"ccs/internal/obs"
)

// e22JSONPath, when non-empty, is where runE22 writes its BENCH_E22.json
// trajectory. main wires it to the -e22json flag.
var e22JSONPath string

type e22Report struct {
	Experiment  string  `json:"experiment"`
	Description string  `json:"description"`
	Quick       bool    `json:"quick"`
	GOMAXPROCS  int     `json:"gomaxprocs"`
	GeneratedAt string  `json:"generated_at"`
	Entry       string  `json:"entry"`
	Reps        int     `json:"reps"`
	BaselineNS  int64   `json:"baseline_ns"`
	ObservedNS  int64   `json:"observed_ns"`
	Overhead    float64 `json:"overhead"`
	SpanSumMS   float64 `json:"span_sum_ms"`
	WallMS      float64 `json:"wall_ms"`
	SpanCover   float64 `json:"span_cover"`
	Snapshots   int     `json:"snapshots"`
	Pairs       int     `json:"pairs"`
	Explored    int     `json:"explored"`
}

// runE22 measures what the observability layer costs when it is actually
// watching: the same on-the-fly network check runs bare and fully
// observed (phase tracing plus a 5ms progress sampler), interleaved,
// overhead taken as the median of per-rep paired ratios so host noise
// cancels. The entry is the token-ring full sweep under
// legacy fresh-root quotients — E21's inflated pair space — so the
// observed hot loop is long enough for a per-pair regression to surface.
//
// Full runs gate three claims:
//
//   - overhead: observed/baseline <= 1.05 (the CI gate; the tracer costs
//     two timestamps per phase and the sampler reads amortized counters);
//   - coverage: the trace's flat spans sum to within 10% of the checked
//     call's wall time, the property that makes a timeline trustworthy;
//   - liveness: the progress hook delivered at least one snapshot and
//     the last one is final with the game's exact totals.
func runE22(w io.Writer, seed int64, quick bool) error {
	// Noise dominates a ~25ms workload on a loaded host, so the design
	// is built to filter it: many reps, baseline/observed order
	// alternating per rep, and the overhead taken as the MEDIAN of the
	// per-rep paired ratios — each rep's two runs are adjacent in time,
	// so the ratio cancels slow host drift, and the median discards the
	// reps where another tenant preempted one side.
	ringN, reps := 12, 31
	if quick {
		ringN, reps = 4, 3
	}
	entry := fmt.Sprintf("token-ring-%d (full sweep, legacy quotients)", ringN)
	net := gen.TokenRing(ringN)
	spec := gen.TokenRingSpec()

	// Unlike E16–E21 this experiment keeps the default GOMAXPROCS
	// (= NumCPU): measuring a 5% ceiling needs low variance, and forcing
	// 8 threads onto fewer cores makes OS time-slicing steal a random
	// double-digit percentage of any individual run.
	ctx := context.Background()

	// ONE engine serves both sides, warmed once outside the timings, so
	// baseline and observed replay the identical cached-quotient +
	// exploration path. (Two per-side engines looked cleaner but their
	// independently-allocated caches land in different heap layouts,
	// which shows up as a persistent few-percent bias the paired-ratio
	// estimator then faithfully misreports as observability overhead.)
	eng := engine.New(core.WithFreshRootQuotient())
	if eq, _, err := eng.CheckNetworkOTFInfo(ctx, net, spec, engine.Weak, 0); err != nil || !eq {
		return fmt.Errorf("e22: warmup eq=%v err=%v", eq, err)
	}

	var (
		baseMin, obsMin time.Duration
		lastTrace       *obs.Trace
		lastWall        time.Duration
		snapMu          sync.Mutex
		snaps           []obs.OTFSnapshot
		pairs, explored int
	)
	runBase := func(rep int) time.Duration {
		dBase := timed(func() {
			if eq, _, err := eng.CheckNetworkOTFInfo(ctx, net, spec, engine.Weak, 0); err != nil || !eq {
				panic(fmt.Sprintf("e22 baseline eq=%v err=%v", eq, err))
			}
		})
		if rep == 0 || dBase < baseMin {
			baseMin = dBase
		}
		return dBase
	}
	runObs := func(rep int) time.Duration {
		tr := obs.NewTrace("")
		octx := obs.WithTrace(ctx, tr)
		snapMu.Lock()
		snaps = snaps[:0]
		snapMu.Unlock()
		octx = obs.WithOTFProgress(octx, func(s obs.OTFSnapshot) {
			snapMu.Lock()
			snaps = append(snaps, s)
			snapMu.Unlock()
		}, 5*time.Millisecond)
		dObs := timed(func() {
			eq, info, err := eng.CheckNetworkOTFInfo(octx, net, spec, engine.Weak, 0)
			if err != nil || !eq {
				panic(fmt.Sprintf("e22 observed eq=%v err=%v", eq, err))
			}
			pairs, explored = info.Pairs, info.Explored
		})
		if rep == 0 || dObs < obsMin {
			obsMin = dObs
			lastTrace, lastWall = tr, dObs
		}
		return dObs
	}
	ratios := make([]float64, 0, reps)
	for rep := 0; rep < reps; rep++ {
		// Alternate which side goes first so slow drift on the host
		// (another tenant, frequency scaling) cannot bias one side.
		var dBase, dObs time.Duration
		if rep%2 == 0 {
			dBase = runBase(rep)
			dObs = runObs(rep)
		} else {
			dObs = runObs(rep)
			dBase = runBase(rep)
		}
		ratios = append(ratios, float64(dObs)/float64(dBase))
	}

	sort.Float64s(ratios)
	overhead := ratios[len(ratios)/2]
	var spanSum time.Duration
	for _, sp := range lastTrace.Spans() {
		spanSum += sp.Duration
	}
	cover := float64(spanSum) / float64(lastWall)
	snapMu.Lock()
	nSnaps := len(snaps)
	finalOK := nSnaps > 0 && snaps[nSnaps-1].Final
	snapMu.Unlock()

	fmt.Fprintf(w, "%-44s %12s %12s %9s %7s %9s\n",
		"entry", "baseline", "observed", "overhead", "cover", "snapshots")
	fmt.Fprintf(w, "%-44s %12s %12s %8.3fx %6.1f%% %9d\n",
		entry, baseMin.Round(time.Microsecond), obsMin.Round(time.Microsecond),
		overhead, 100*cover, nSnaps)
	fmt.Fprintln(w, "expect: <= 1.05x (median of per-rep observed/baseline ratios; the")
	fmt.Fprintln(w, "        baseline/observed columns are best-of-reps) — tracing is two")
	fmt.Fprintln(w, "        timestamps per phase, the progress sampler reads batch-amortized")
	fmt.Fprintln(w, "        counters, and flat spans cover ~100% of the call's wall time")

	if !quick {
		if overhead > 1.05 {
			return fmt.Errorf("e22: observability overhead %.3fx, want <= 1.05x", overhead)
		}
		if cover < 0.9 || cover > 1.1 {
			return fmt.Errorf("e22: span coverage %.1f%% of wall, want within 10%%", 100*cover)
		}
		if !finalOK {
			return fmt.Errorf("e22: progress sampler delivered %d snapshots, final missing", nSnaps)
		}
	}

	if e22JSONPath != "" {
		report := e22Report{
			Experiment:  "E22",
			Description: "observability overhead: traced + progress-sampled otf check vs bare, token-ring full sweep under legacy quotients",
			Quick:       quick,
			GOMAXPROCS:  runtime.GOMAXPROCS(0),
			GeneratedAt: time.Now().UTC().Format(time.RFC3339),
			Entry:       entry,
			Reps:        reps,
			BaselineNS:  baseMin.Nanoseconds(),
			ObservedNS:  obsMin.Nanoseconds(),
			Overhead:    overhead,
			SpanSumMS:   float64(spanSum) / float64(time.Millisecond),
			WallMS:      float64(lastWall) / float64(time.Millisecond),
			SpanCover:   cover,
			Snapshots:   nSnaps,
			Pairs:       pairs,
			Explored:    explored,
		}
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return fmt.Errorf("e22: %w", err)
		}
		if err := os.WriteFile(e22JSONPath, append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("e22: %w", err)
		}
		fmt.Fprintf(w, "trajectory written to %s\n", e22JSONPath)
	}
	return nil
}
