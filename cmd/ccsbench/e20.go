package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	"ccs"
	"ccs/internal/gen"
)

// e20JSONPath, when non-empty, is where runE20 writes its BENCH_E20.json
// trajectory. main wires it to the -e20json flag; the test harness leaves
// it empty so test runs produce no files.
var e20JSONPath string

type e20Row struct {
	Entry    string  `json:"entry"`
	Requests int     `json:"requests"`
	ColdNS   int64   `json:"cold_ns"`
	WarmNS   int64   `json:"warm_ns"`
	Speedup  float64 `json:"speedup"`
}

type e20Report struct {
	Experiment   string         `json:"experiment"`
	Description  string         `json:"description"`
	Seed         int64          `json:"seed"`
	Quick        bool           `json:"quick"`
	GeneratedAt  string         `json:"generated_at"`
	ColdStore    ccs.StoreStats `json:"cold_store"`
	WarmStore    ccs.StoreStats `json:"warm_store"`
	Rows         []e20Row       `json:"rows"`
	TotalSpeedup float64        `json:"total_speedup"`
}

// e20RelayRequest builds the n-stage relay-vs-counter check as a wire
// request: inline component sources, relabelings, hidden internal
// channels, and the mtc route — the exact JSON a `ccs serve` client would
// post. The mtc route is deliberate: it materializes the composed product
// and solves its weak partition, which is precisely the work a warm store
// answers from disk.
func e20RelayRequest(n, churn int, lossy bool, label string) ccs.CheckRequest {
	cellSrc := ccs.FormatProcess(gen.BufferCell(churn))
	lossySrc := ccs.FormatProcess(gen.LossyCell(churn))
	comps := make([]ccs.NetworkComponentRef, n)
	for i := range comps {
		src := cellSrc
		if lossy && i == n/2 {
			src = lossySrc
		}
		comps[i] = ccs.NetworkComponentRef{Process: src, Relabel: map[string]string{
			"in":  fmt.Sprintf("c%d", i),
			"out": fmt.Sprintf("c%d", i+1),
		}}
	}
	nr := ccs.NetworkRequest{
		Name:       label,
		Components: comps,
		Spec:       ccs.FormatProcess(gen.CounterSpec(n)),
	}
	for i := 1; i < n; i++ {
		nr.Hide = append(nr.Hide, fmt.Sprintf("c%d", i))
	}
	return ccs.NewNetworkCheck("weak", nr, ccs.WithRoute(ccs.RouteMTC), ccs.WithLabel(label))
}

// runE20 measures the persistent artifact store end to end: one query
// stream — random weak/strong pairs plus relay-network checks, all in
// the shared request schema — is answered twice against the same store
// directory by two fresh Checkers, simulating a service restart. The cold
// run derives and spills every artifact (closures, saturated forms,
// quotients); the warm run must answer entirely from disk (hits only: no
// misses, no writes) with identical verdicts, skipping the partition
// solves. On full runs the warm side must clear 2x overall — the CI gate.
// The margin is structural (decoding a stored quotient is linear in its
// size; deriving one saturates a closure and iterates a partition), so
// the gate is robust to runner noise.
func runE20(w io.Writer, seed int64, quick bool) error {
	rng := rand.New(rand.NewSource(seed))
	states, numPairs, relayN, churn := 700, 5, 9, 3
	if quick {
		states, numPairs, relayN, churn = 120, 3, 4, 2
	}

	// Tau-dense processes, the store's sweet spot: the weak quotient
	// collapses hard (700 states to under 100), so the cold run pays a
	// closure and two partition solves per process while the warm run
	// decodes a small stored quotient and solves a small union.
	procs := make([]string, numPairs+1)
	for i := range procs {
		procs[i] = ccs.FormatProcess(gen.Random(rng, states, 3*states, 4, 0.7))
	}
	var pairReqs []ccs.CheckRequest
	for i := 0; i < numPairs; i++ {
		pairReqs = append(pairReqs,
			ccs.NewCheck("weak", procs[i], procs[i+1], ccs.WithLabel(fmt.Sprintf("weak-%d", i))),
			ccs.NewCheck("strong", procs[i], procs[i+1], ccs.WithLabel(fmt.Sprintf("strong-%d", i))))
	}
	segments := []struct {
		name string
		reqs []ccs.CheckRequest
	}{
		{"random weak+strong pairs", pairReqs},
		{"relay networks (mtc route)", []ccs.CheckRequest{
			e20RelayRequest(relayN, churn, false, "relay-ok"),
			e20RelayRequest(relayN, churn, true, "relay-lossy"),
		}},
	}

	dir, err := os.MkdirTemp("", "ccsbench-e20-")
	if err != nil {
		return fmt.Errorf("e20: %w", err)
	}
	defer os.RemoveAll(dir)

	ctx := context.Background()
	runStream := func(c *ccs.Checker) ([][]ccs.Report, []time.Duration) {
		reps := make([][]ccs.Report, len(segments))
		times := make([]time.Duration, len(segments))
		for i, seg := range segments {
			i, seg := i, seg
			times[i] = timed(func() {
				reps[i] = c.DoAll(ctx, seg.reqs, 1, nil)
			})
		}
		return reps, times
	}

	cold, err := ccs.NewStoreChecker(dir, 0)
	if err != nil {
		return fmt.Errorf("e20: %w", err)
	}
	coldReps, coldTimes := runStream(cold)
	coldStore := cold.Stats().Store

	// A fresh Checker on the same directory is a restarted service: the
	// in-memory tier is empty, so every artifact must come off disk.
	warm, err := ccs.NewStoreChecker(dir, 0)
	if err != nil {
		return fmt.Errorf("e20: %w", err)
	}
	warmReps, warmTimes := runStream(warm)
	warmStore := warm.Stats().Store

	// Correctness half: identical verdicts, no errors, and the warm run
	// answered purely from the store.
	for i, seg := range segments {
		for j := range seg.reqs {
			cr, wr := coldReps[i][j], warmReps[i][j]
			if cr.Error != nil || wr.Error != nil {
				return fmt.Errorf("e20: %s failed: cold %+v, warm %+v", cr.Label, cr.Error, wr.Error)
			}
			if cr.Equivalent != wr.Equivalent {
				return fmt.Errorf("e20: verdict flipped across restart on %s: cold %v, warm %v", cr.Label, cr.Equivalent, wr.Equivalent)
			}
			switch cr.Label {
			case "relay-ok":
				if !cr.Equivalent {
					return fmt.Errorf("e20: relay chain not equivalent to its counter spec")
				}
			case "relay-lossy":
				if cr.Equivalent {
					return fmt.Errorf("e20: lossy relay equivalent to the counter spec")
				}
			}
		}
	}
	if coldStore == nil || coldStore.Writes == 0 {
		return fmt.Errorf("e20: cold run spilled nothing: %+v", coldStore)
	}
	if warmStore == nil || warmStore.Hits == 0 || warmStore.Misses != 0 || warmStore.Writes != 0 {
		return fmt.Errorf("e20: warm run not served from the store: %+v", warmStore)
	}

	report := e20Report{
		Experiment:  "E20",
		Description: "persistent artifact store: one request stream answered cold (fresh directory) and warm (fresh Checker, same directory), simulating a ccs serve restart",
		Seed:        seed,
		Quick:       quick,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		ColdStore:   *coldStore,
		WarmStore:   *warmStore,
	}
	fmt.Fprintf(w, "%-32s %8s %14s %14s %8s\n", "entry", "requests", "cold", "warm", "speedup")
	var coldTotal, warmTotal time.Duration
	for i, seg := range segments {
		coldTotal += coldTimes[i]
		warmTotal += warmTimes[i]
		speedup := float64(coldTimes[i]) / float64(warmTimes[i])
		fmt.Fprintf(w, "%-32s %8d %14s %14s %7.1fx\n",
			seg.name, len(seg.reqs),
			coldTimes[i].Round(time.Microsecond), warmTimes[i].Round(time.Microsecond), speedup)
		report.Rows = append(report.Rows, e20Row{
			Entry:    seg.name,
			Requests: len(seg.reqs),
			ColdNS:   coldTimes[i].Nanoseconds(),
			WarmNS:   warmTimes[i].Nanoseconds(),
			Speedup:  speedup,
		})
	}
	total := float64(coldTotal) / float64(warmTotal)
	report.TotalSpeedup = total
	fmt.Fprintf(w, "%-32s %8s %14s %14s %7.1fx\n", "total", "",
		coldTotal.Round(time.Microsecond), warmTotal.Round(time.Microsecond), total)
	fmt.Fprintf(w, "store after warm run: %d entries, %d hits / %d misses, %d writes\n",
		warmStore.Entries, warmStore.Hits, warmStore.Misses, warmStore.Writes)

	// Like E16..E19, the perf floor is asserted on full runs only; quick
	// mode is the CI correctness smoke where small sizes are noise.
	if !quick && total < 2 {
		return fmt.Errorf("e20: warm/cold speedup %.2fx, want >= 2x overall", total)
	}
	fmt.Fprintln(w, "expect: >= 2x overall — a warm store decodes stored quotients, closures and")
	fmt.Fprintln(w, "        saturated forms instead of re-deriving them, so a restarted server")
	fmt.Fprintln(w, "        skips the partition solves the cold run paid for")
	if e20JSONPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return fmt.Errorf("e20: %w", err)
		}
		if err := os.WriteFile(e20JSONPath, append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("e20: %w", err)
		}
		fmt.Fprintf(w, "trajectory written to %s\n", e20JSONPath)
	}
	return nil
}
