package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"ccs/internal/compose"
	"ccs/internal/engine"
	"ccs/internal/fsp"
	"ccs/internal/gen"
)

// e18JSONPath, when non-empty, is where runE18 writes its BENCH_E18.json
// trajectory. main wires it to the -e18json flag; the test harness leaves
// it empty so test runs produce no files.
var e18JSONPath string

type e18Row struct {
	Entry       string  `json:"entry"`
	Expect      bool    `json:"expect_equivalent"`
	MTCStates   int     `json:"mtc_product_states"`
	MTCNS       int64   `json:"minimize_then_compose_ns"`
	OTFNS       int64   `json:"on_the_fly_ns"`
	OTFPairs    int     `json:"otf_pairs"`
	OTFExplored int     `json:"otf_explored"`
	Speedup     float64 `json:"speedup"`
}

type e18Report struct {
	Experiment  string   `json:"experiment"`
	Description string   `json:"description"`
	Seed        int64    `json:"seed"`
	Quick       bool     `json:"quick"`
	GeneratedAt string   `json:"generated_at"`
	Rows        []e18Row `json:"rows"`
}

// runE18 measures the on-the-fly route (engine.CheckNetworkOTF: lazy
// product-vs-spec game over cached component quotients, no product
// materialization) against the minimize-then-compose route of E17 on two
// kinds of gallery entries:
//
//   - early-mismatch: the lossy relay and the buggy token ring, where the
//     game stops at the first distinguishing state while MTC still pays
//     for the whole minimized product plus its saturation and partition;
//   - deep-spec: the correct relay pipeline and token ring, where both
//     routes sweep comparable state counts but the game skips the
//     product's saturation and refinement entirely.
//
// Both routes must agree on every verdict, every OTF run must actually be
// on the fly (no fallback), and on full runs the best speedup must clear
// 2x — the CI gate. The margin on the early-mismatch entries is
// structural (a constant-depth counterexample vs sweeping, saturating and
// partitioning the whole minimized product), so the gate is robust to
// runner noise.
func runE18(w io.Writer, seed int64, quick bool) error {
	relayN, lossyN, ringN := 10, 12, 10
	if quick {
		relayN, lossyN, ringN = 4, 5, 4
	}
	cases := []struct {
		name   string
		net    *compose.Network
		spec   *fsp.FSP
		expect bool
	}{
		{fmt.Sprintf("relay-%d (deep spec)", relayN), gen.RelayNetwork(relayN, 3), gen.CounterSpec(relayN), true},
		{fmt.Sprintf("lossy-relay-%d (early mismatch)", lossyN), gen.LossyRelayNetwork(lossyN, 2), gen.CounterSpec(lossyN), false},
		{fmt.Sprintf("token-ring-%d (deep spec)", ringN), gen.TokenRing(ringN), gen.TokenRingSpec(), true},
		{fmt.Sprintf("buggy-token-ring-%d (early mismatch)", ringN), gen.BuggyTokenRing(ringN), gen.TokenRingSpec(), false},
	}

	report := e18Report{
		Experiment:  "E18",
		Description: "network equivalence: minimize-then-compose vs on-the-fly game (internal/otf + engine.CheckNetworkOTF)",
		Seed:        seed,
		Quick:       quick,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
	}
	ctx := context.Background()
	fmt.Fprintf(w, "%-34s %10s %14s %14s %8s %8s %8s\n",
		"entry", "mtc-states", "mtc", "on-the-fly", "pairs", "speedup", "verdict")
	best := 0.0
	for _, tc := range cases {
		// MTC route: fresh engine per measurement, so the timing includes
		// the per-component quotients, the product of the minima, and the
		// final saturate-and-partition check.
		var mtcVerdict bool
		var mtcStates int
		mtcT := timed(func() {
			c := engine.New()
			min, err := c.ComposeNetwork(ctx, tc.net, engine.Weak)
			if err != nil {
				panic(err)
			}
			mtcStates = min.NumStates()
			mtcVerdict, err = c.Check(ctx, engine.Query{P: min, Q: tc.spec, Rel: engine.Weak})
			if err != nil {
				panic(err)
			}
		})

		// OTF route: also a fresh engine, so both sides pay the same
		// quotient costs and the difference is product materialization vs
		// the lazy game.
		var otfVerdict bool
		var info engine.OTFInfo
		otfT := timed(func() {
			var err error
			otfVerdict, info, err = engine.New().CheckNetworkOTFInfo(ctx, tc.net, tc.spec, engine.Weak, 0)
			if err != nil {
				panic(err)
			}
		})

		if !info.OnTheFly {
			return fmt.Errorf("e18: %s fell back to minimize-then-compose: %s", tc.name, info.Fallback)
		}
		if mtcVerdict != otfVerdict {
			return fmt.Errorf("e18: routes disagree on %s: mtc=%v otf=%v", tc.name, mtcVerdict, otfVerdict)
		}
		if mtcVerdict != tc.expect {
			return fmt.Errorf("e18: %s verdict %v, want %v", tc.name, mtcVerdict, tc.expect)
		}

		speedup := float64(mtcT) / float64(otfT)
		if speedup > best {
			best = speedup
		}
		fmt.Fprintf(w, "%-34s %10d %14s %14s %8d %7.1fx %8v\n",
			tc.name, mtcStates,
			mtcT.Round(time.Microsecond), otfT.Round(time.Microsecond),
			info.Pairs, speedup, otfVerdict)
		report.Rows = append(report.Rows, e18Row{
			Entry:       tc.name,
			Expect:      tc.expect,
			MTCStates:   mtcStates,
			MTCNS:       mtcT.Nanoseconds(),
			OTFNS:       otfT.Nanoseconds(),
			OTFPairs:    info.Pairs,
			OTFExplored: info.Explored,
			Speedup:     speedup,
		})
	}
	// Like E16/E17, the perf floor is asserted on full runs only; quick
	// mode is the CI correctness smoke where small sizes are all noise.
	if !quick && best < 2 {
		return fmt.Errorf("e18: best on-the-fly speedup %.2fx, want >= 2x on at least one entry", best)
	}
	fmt.Fprintln(w, "expect: >= 2x on at least one entry — early mismatches cost a constant-")
	fmt.Fprintln(w, "        depth trace instead of the whole product, and even full sweeps")
	fmt.Fprintln(w, "        skip the product's saturation and refinement")
	if e18JSONPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return fmt.Errorf("e18: %w", err)
		}
		if err := os.WriteFile(e18JSONPath, append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("e18: %w", err)
		}
		fmt.Fprintf(w, "trajectory written to %s\n", e18JSONPath)
	}
	return nil
}
