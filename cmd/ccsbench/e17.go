package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"ccs/internal/core"
	"ccs/internal/engine"
	"ccs/internal/gen"
)

// e17JSONPath, when non-empty, is where runE17 writes its BENCH_E17.json
// trajectory. main wires it to the -e17json flag; the test harness leaves
// it empty so test runs produce no files.
var e17JSONPath string

type e17Row struct {
	Stages     int     `json:"stages"`
	Churn      int     `json:"churn"`
	FlatStates int     `json:"flat_states"`
	FlatTrans  int     `json:"flat_transitions"`
	MinStates  int     `json:"min_states"`
	FlatNS     int64   `json:"flat_ns"`
	MinNS      int64   `json:"minimize_then_compose_ns"`
	Speedup    float64 `json:"speedup"`
	Verdict    bool    `json:"verdict"`
}

type e17Report struct {
	Experiment  string   `json:"experiment"`
	Description string   `json:"description"`
	Seed        int64    `json:"seed"`
	Quick       bool     `json:"quick"`
	GeneratedAt string   `json:"generated_at"`
	Rows        []e17Row `json:"rows"`
}

// runE17 measures the compositional pipeline on the relay-pipeline
// network gallery: deciding "pipeline ≈ n-place buffer" by composing the
// flat product and checking it (compose-then-minimize, what every tool
// does without compositionality) against the engine's
// minimize-then-compose route (quotient each cell by ≈ᶜ through the
// artifact cache, compose the minima, check the small product). Both
// routes must agree — here and on the lossy negative control — and the
// compositional route must win by ≥ 2x on the largest network, where the
// flat product is exponential in the stage count while the minimized one
// collapses to 2^n.
func runE17(w io.Writer, seed int64, quick bool) error {
	const churn = 3
	sizes := []int{2, 3, 4, 5}
	if quick {
		sizes = []int{2, 3}
	}
	report := e17Report{
		Experiment:  "E17",
		Description: "network equivalence: flat composition vs minimize-then-compose (internal/compose + engine)",
		Seed:        seed,
		Quick:       quick,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
	}
	ctx := context.Background()
	fmt.Fprintf(w, "%8s %12s %12s %14s %14s %8s %8s\n",
		"stages", "flat-states", "min-states", "flat", "min-compose", "speedup", "verdict")
	for _, n := range sizes {
		net := gen.RelayNetwork(n, churn)
		spec := gen.CounterSpec(n)

		// Flat route: materialize the full product, then the standard
		// Theorem 4.1(a) check (saturate + partition) against the spec.
		var flatVerdict bool
		var flatStates, flatTrans int
		flatT := timed(func() {
			flat, err := net.FSP()
			if err != nil {
				panic(err)
			}
			flatStates, flatTrans = flat.NumStates(), flat.NumTransitions()
			flatVerdict, err = core.WeakEquivalent(flat, spec)
			if err != nil {
				panic(err)
			}
		})

		// Compositional route: a fresh engine per measurement so the
		// timing includes every per-component quotient, the product of
		// the minima, and the final check.
		var minVerdict bool
		var minStates int
		minT := timed(func() {
			c := engine.New()
			min, err := c.ComposeNetwork(ctx, net, engine.Weak)
			if err != nil {
				panic(err)
			}
			minStates = min.NumStates()
			minVerdict, err = c.Check(ctx, engine.Query{P: min, Q: spec, Rel: engine.Weak})
			if err != nil {
				panic(err)
			}
		})

		if flatVerdict != minVerdict {
			return fmt.Errorf("e17: routes disagree at n=%d: flat=%v mtc=%v", n, flatVerdict, minVerdict)
		}
		if !flatVerdict {
			return fmt.Errorf("e17: buffer law failed at n=%d", n)
		}
		// Negative control: the lossy pipeline must be rejected by both
		// routes (unmeasured; agreement is what matters).
		lossy := gen.LossyRelayNetwork(n, churn)
		lossyFlat, err := lossy.FSP()
		if err != nil {
			return fmt.Errorf("e17: %w", err)
		}
		lf, err := core.WeakEquivalent(lossyFlat, spec)
		if err != nil {
			return fmt.Errorf("e17: %w", err)
		}
		lm, err := engine.New().CheckNetwork(ctx, lossy, spec, engine.Weak, 0)
		if err != nil {
			return fmt.Errorf("e17: %w", err)
		}
		if lf || lm {
			return fmt.Errorf("e17: lossy pipeline accepted at n=%d: flat=%v mtc=%v", n, lf, lm)
		}

		speedup := float64(flatT) / float64(minT)
		fmt.Fprintf(w, "%8d %12d %12d %14s %14s %7.1fx %8v\n",
			n, flatStates, minStates,
			flatT.Round(time.Microsecond), minT.Round(time.Microsecond),
			speedup, flatVerdict)
		report.Rows = append(report.Rows, e17Row{
			Stages:     n,
			Churn:      churn,
			FlatStates: flatStates,
			FlatTrans:  flatTrans,
			MinStates:  minStates,
			FlatNS:     flatT.Nanoseconds(),
			MinNS:      minT.Nanoseconds(),
			Speedup:    speedup,
			Verdict:    flatVerdict,
		})
	}
	last := report.Rows[len(report.Rows)-1]
	// Like E16, the perf floor is asserted on full runs only; quick mode
	// is the CI correctness smoke where small sizes are all noise.
	if !quick && last.Speedup < 2 {
		return fmt.Errorf("e17: minimize-then-compose speedup %.2fx on the largest network (n=%d), want >= 2x",
			last.Speedup, last.Stages)
	}
	fmt.Fprintln(w, "expect: speedup >= 2x on the largest network — the flat product is")
	fmt.Fprintln(w, "        exponential in the stages, the composed minima stay tiny")
	if e17JSONPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return fmt.Errorf("e17: %w", err)
		}
		if err := os.WriteFile(e17JSONPath, append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("e17: %w", err)
		}
		fmt.Fprintf(w, "trajectory written to %s\n", e17JSONPath)
	}
	return nil
}
