// Command ccsbench regenerates the paper's tables and figures as terminal
// tables — one experiment per artifact, indexed E1..E23 (see DESIGN.md for
// the experiment-to-paper mapping and EXPERIMENTS.md for recorded results;
// E15 measures the batch equivalence engine, E16 the shared CSR refinement
// kernel, E17 the compositional minimize-then-compose pipeline, E18 the on-the-fly
// game against minimize-then-compose, E19 the determinized on-the-fly
// game on nondeterministic specs, E20 the persistent artifact store's
// cold-vs-warm restart, E21 the work-stealing game scheduler plus the
// minimal ≈ᶜ quotients against the level-barrier/legacy baseline, E22 the
// observability overhead, and E23 the sync-vector protocol gallery's
// on-the-fly game against minimize-then-compose, rather than paper
// claims).
//
// Usage:
//
//	ccsbench [-exp e1,...|all] [-seed N] [-quick] [-benchjson FILE] [-e17json FILE] ... [-e23json FILE]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
)

func main() {
	exp := flag.String("exp", "all", "comma-separated experiment ids (e1..e23) or 'all'")
	seed := flag.Int64("seed", 1, "random seed")
	quick := flag.Bool("quick", false, "smaller sweeps for a fast smoke run")
	benchjson := flag.String("benchjson", "", "file where E16 writes its JSON trajectory (default: not written)")
	e17json := flag.String("e17json", "", "file where E17 writes its JSON trajectory (default: not written)")
	e18json := flag.String("e18json", "", "file where E18 writes its JSON trajectory (default: not written)")
	e19json := flag.String("e19json", "", "file where E19 writes its JSON trajectory (default: not written)")
	e20json := flag.String("e20json", "", "file where E20 writes its JSON trajectory (default: not written)")
	e21json := flag.String("e21json", "", "file where E21 writes its JSON trajectory (default: not written)")
	e22json := flag.String("e22json", "", "file where E22 writes its JSON trajectory (default: not written)")
	e23json := flag.String("e23json", "", "file where E23 writes its JSON trajectory (default: not written)")
	summary := flag.Bool("summary", false, "print one gate-vs-measured table from the committed BENCH_E*.json files and exit")
	flag.Parse()
	benchJSONPath = *benchjson
	e17JSONPath = *e17json
	e18JSONPath = *e18json
	e19JSONPath = *e19json
	e20JSONPath = *e20json
	e21JSONPath = *e21json
	e22JSONPath = *e22json
	e23JSONPath = *e23json

	if *summary {
		if err := runSummary(os.Stdout, "."); err != nil {
			fmt.Fprintf(os.Stderr, "ccsbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if err := run(os.Stdout, *exp, *seed, *quick); err != nil {
		fmt.Fprintf(os.Stderr, "ccsbench: %v\n", err)
		os.Exit(1)
	}
}

type experiment struct {
	id    string
	title string
	fn    func(w io.Writer, seed int64, quick bool) error
}

func experiments() []experiment {
	return []experiment{
		{"e1", "Theorem 3.1: strong equivalence, naive vs Paige-Tarjan", runE1},
		{"e2", "Lemma 3.2: naive method on the splitter-chain family", runE2},
		{"e3", "Theorem 4.1(a): observational equivalence is polynomial", runE3},
		{"e4", "Lemma 2.3.1: representative FSP size and construction time", runE4},
		{"e5", "Fig. 2 / Table II: the r.o.u. gallery verdicts", runE5},
		{"e6", "Theorem 4.1(b): ≈_k decider on the ladder family", runE6},
		{"e7", "Theorem 5.1: failure equivalence, blowup vs deterministic", runE7},
		{"e8", "Lemma 4.2 / Fig. 4: universality reduction", runE8},
		{"e9", "Prop. 2.2.3: hierarchy ≈ ⊆ ≡ ⊆ ≈_1 on random processes", runE9},
		{"e10", "Prop. 2.2.4: deterministic collapse", runE10},
		{"e11", "Fig. 1a / Table I: model classifier", runE11},
		{"e12", "Section 2.3(3): distributivity, language vs CCS", runE12},
		{"e13", "Thm 4.1(c) / Fig. 5b,5d: chaos and the trivial NFA", runE13},
		{"e14", "Section 6: extended star expressions are succinct", runE14},
		{"e15", "Batch engine: cached + pooled checking vs one-shot loop", runE15},
		{"e16", "CSR kernel: cached-index Paige-Tarjan vs edge-list path", runE16},
		{"e17", "Compositional pipeline: flat composition vs minimize-then-compose", runE17},
		{"e18", "On-the-fly game: lazy product-vs-spec checking vs minimize-then-compose", runE18},
		{"e19", "Determinized on-the-fly game: nondeterministic specs vs minimize-then-compose", runE19},
		{"e20", "Persistent artifact store: cold vs warm across a service restart", runE20},
		{"e21", "Work-stealing otf scheduler + minimal ≈ᶜ quotients vs level-barrier + legacy", runE21},
		{"e22", "Observability overhead: traced + progress-sampled otf check vs bare", runE22},
		{"e23", "Sync-vector protocols: on-the-fly game vs minimize-then-compose over n-way rendezvous", runE23},
	}
}

func run(w io.Writer, which string, seed int64, quick bool) error {
	wanted := map[string]bool{}
	all := which == "all"
	for _, id := range strings.Split(which, ",") {
		wanted[strings.TrimSpace(strings.ToLower(id))] = true
	}
	ran := 0
	for _, e := range experiments() {
		if !all && !wanted[e.id] {
			continue
		}
		ran++
		fmt.Fprintf(w, "=== %s: %s ===\n", strings.ToUpper(e.id), e.title)
		if err := e.fn(w, seed, quick); err != nil {
			return fmt.Errorf("%s: %w", e.id, err)
		}
		fmt.Fprintln(w)
	}
	if ran == 0 {
		return fmt.Errorf("no experiment matched %q", which)
	}
	return nil
}
