package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"ccs/internal/compose"
	"ccs/internal/engine"
	"ccs/internal/fsp"
	"ccs/internal/gen"
)

// e19JSONPath, when non-empty, is where runE19 writes its BENCH_E19.json
// trajectory. main wires it to the -e19json flag; the test harness leaves
// it empty so test runs produce no files.
var e19JSONPath string

type e19Row struct {
	Entry       string  `json:"entry"`
	Expect      bool    `json:"expect_equivalent"`
	MTCStates   int     `json:"mtc_product_states"`
	MTCNS       int64   `json:"minimize_then_compose_ns"`
	OTFNS       int64   `json:"on_the_fly_ns"`
	OTFPairs    int     `json:"otf_pairs"`
	OTFExplored int     `json:"otf_explored"`
	SpecSubsets int     `json:"otf_spec_subsets"`
	Speedup     float64 `json:"speedup"`
}

type e19Report struct {
	Experiment  string   `json:"experiment"`
	Description string   `json:"description"`
	Seed        int64    `json:"seed"`
	Quick       bool     `json:"quick"`
	GeneratedAt string   `json:"generated_at"`
	Rows        []e19Row `json:"rows"`
}

// runE19 is E18 with the spec side made realistic: every entry checks
// against a nondeterministic, tau-bearing specification
// (gen.NondetCounterSpec, gen.NondetTokenRingSpec) that PR 4's direct
// game rejected outright, forcing the fallback and forfeiting the lazy
// early exit. The determinized subset game lifts the restriction, so the
// measurement pits engine.CheckNetworkOTF — which must take the
// otf-determinized route on every entry, never the fallback — against
// minimize-then-compose:
//
//   - early-mismatch: the lossy relay and the buggy token ring, where
//     the game stops at the first distinguishing state while MTC still
//     pays for the whole minimized product, its saturation and its
//     partition;
//   - deep-spec: the correct relay and ring, where the game sweeps a
//     comparable pair space but skips product materialization and
//     refinement, now paying the subset interning on top.
//
// Both routes must agree on every verdict, and on full runs the
// early-mismatch lossy-relay entry must clear 2x — the CI gate. The
// margin is structural (a constant-depth counterexample vs sweeping the
// whole minimized product), so the gate is robust to runner noise.
func runE19(w io.Writer, seed int64, quick bool) error {
	relayN, lossyN, ringN := 10, 12, 10
	if quick {
		relayN, lossyN, ringN = 4, 5, 4
	}
	cases := []struct {
		name   string
		net    *compose.Network
		spec   *fsp.FSP
		expect bool
		gated  bool
	}{
		{fmt.Sprintf("relay-%d (nondet spec, deep)", relayN), gen.RelayNetwork(relayN, 3), gen.NondetCounterSpec(relayN), true, false},
		{fmt.Sprintf("lossy-relay-%d (nondet spec, early mismatch)", lossyN), gen.LossyRelayNetwork(lossyN, 2), gen.NondetCounterSpec(lossyN), false, true},
		{fmt.Sprintf("token-ring-%d (nondet spec, deep)", ringN), gen.TokenRing(ringN), gen.NondetTokenRingSpec(), true, false},
		{fmt.Sprintf("buggy-token-ring-%d (nondet spec, early mismatch)", ringN), gen.BuggyTokenRing(ringN), gen.NondetTokenRingSpec(), false, false},
	}

	report := e19Report{
		Experiment:  "E19",
		Description: "network equivalence with nondeterministic specs: minimize-then-compose vs the determinized on-the-fly game (internal/otf subset construction + engine.CheckNetworkOTF)",
		Seed:        seed,
		Quick:       quick,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
	}
	ctx := context.Background()
	fmt.Fprintf(w, "%-44s %10s %14s %14s %8s %8s %8s %8s\n",
		"entry", "mtc-states", "mtc", "on-the-fly", "pairs", "subsets", "speedup", "verdict")
	gate := 0.0
	for _, tc := range cases {
		// MTC route: fresh engine per measurement, so the timing includes
		// the per-component quotients, the product of the minima, and the
		// final saturate-and-partition check.
		var mtcVerdict bool
		var mtcStates int
		mtcT := timed(func() {
			c := engine.New()
			min, err := c.ComposeNetwork(ctx, tc.net, engine.Weak)
			if err != nil {
				panic(err)
			}
			mtcStates = min.NumStates()
			mtcVerdict, err = c.Check(ctx, engine.Query{P: min, Q: tc.spec, Rel: engine.Weak})
			if err != nil {
				panic(err)
			}
		})

		// OTF route: also a fresh engine, so both sides pay the same
		// quotient costs and the difference is product materialization vs
		// the lazy subset game.
		var otfVerdict bool
		var info engine.OTFInfo
		otfT := timed(func() {
			var err error
			otfVerdict, info, err = engine.New().CheckNetworkOTFInfo(ctx, tc.net, tc.spec, engine.Weak, 0)
			if err != nil {
				panic(err)
			}
		})

		if info.Route != engine.RouteOTFDeterminized {
			return fmt.Errorf("e19: %s took route %q, want %q (fallback: %s)", tc.name, info.Route, engine.RouteOTFDeterminized, info.Fallback)
		}
		if mtcVerdict != otfVerdict {
			return fmt.Errorf("e19: routes disagree on %s: mtc=%v otf=%v", tc.name, mtcVerdict, otfVerdict)
		}
		if mtcVerdict != tc.expect {
			return fmt.Errorf("e19: %s verdict %v, want %v", tc.name, mtcVerdict, tc.expect)
		}

		speedup := float64(mtcT) / float64(otfT)
		if tc.gated {
			gate = speedup
		}
		fmt.Fprintf(w, "%-44s %10d %14s %14s %8d %8d %7.1fx %8v\n",
			tc.name, mtcStates,
			mtcT.Round(time.Microsecond), otfT.Round(time.Microsecond),
			info.Pairs, info.SpecSubsets, speedup, otfVerdict)
		report.Rows = append(report.Rows, e19Row{
			Entry:       tc.name,
			Expect:      tc.expect,
			MTCStates:   mtcStates,
			MTCNS:       mtcT.Nanoseconds(),
			OTFNS:       otfT.Nanoseconds(),
			OTFPairs:    info.Pairs,
			OTFExplored: info.Explored,
			SpecSubsets: info.SpecSubsets,
			Speedup:     speedup,
		})
	}
	// Like E16/E17/E18, the perf floor is asserted on full runs only;
	// quick mode is the CI correctness smoke where small sizes are noise.
	if !quick && gate < 2 {
		return fmt.Errorf("e19: early-mismatch speedup %.2fx, want >= 2x on the lossy-relay entry", gate)
	}
	fmt.Fprintln(w, "expect: >= 2x on the lossy-relay early-mismatch entry — determinizing the")
	fmt.Fprintln(w, "        spec lazily keeps the first-mismatch exit that the old fallback to")
	fmt.Fprintln(w, "        minimize-then-compose forfeited on nondeterministic specs")
	if e19JSONPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return fmt.Errorf("e19: %w", err)
		}
		if err := os.WriteFile(e19JSONPath, append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("e19: %w", err)
		}
		fmt.Fprintf(w, "trajectory written to %s\n", e19JSONPath)
	}
	return nil
}
