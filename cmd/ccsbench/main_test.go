package main

import (
	"strings"
	"testing"
)

// TestAllExperimentsRun executes every experiment in quick mode: each must
// complete without error and self-verify its paper claim (several
// experiments return errors when verdicts drift).
func TestAllExperimentsRun(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "all", 7, true); err != nil {
		t.Fatalf("run: %v\noutput so far:\n%s", err, sb.String())
	}
	out := sb.String()
	for _, want := range []string{
		"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10",
		"E11", "E12", "E13", "E14", "E15", "E16", "E17", "E18", "E19",
		"inclusion-violations=0",
		"collapse-violations=0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestSelectExperiments(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "e5,e11", 1, true); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "E5") || !strings.Contains(out, "E11") {
		t.Errorf("selected experiments missing from output")
	}
	if strings.Contains(out, "E2:") {
		t.Errorf("unselected experiment ran")
	}
}

func TestUnknownExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "e99", 1, true); err == nil {
		t.Error("unknown experiment id accepted")
	}
}
