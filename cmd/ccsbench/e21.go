package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"ccs/internal/compose"
	"ccs/internal/core"
	"ccs/internal/engine"
	"ccs/internal/fsp"
	"ccs/internal/gen"
	"ccs/internal/otf"
)

// e21JSONPath, when non-empty, is where runE21 writes its BENCH_E21.json
// trajectory. main wires it to the -e21json flag; the test harness leaves
// it empty so test runs produce no files.
var e21JSONPath string

type e21Row struct {
	Entry        string  `json:"entry"`
	Expect       bool    `json:"expect_equivalent"`
	LegacyStates int     `json:"legacy_component_states"`
	MinStates    int     `json:"minimal_component_states"`
	OldNS        int64   `json:"barrier_legacy_ns"`
	NewNS        int64   `json:"stealing_minimal_ns"`
	OldPairs     int     `json:"barrier_legacy_pairs"`
	NewPairs     int     `json:"stealing_minimal_pairs"`
	NewSteals    int     `json:"stealing_minimal_steals"`
	NewUtil      float64 `json:"stealing_minimal_utilization"`
	Speedup      float64 `json:"speedup"`
}

type e21Report struct {
	Experiment  string   `json:"experiment"`
	Description string   `json:"description"`
	Seed        int64    `json:"seed"`
	Quick       bool     `json:"quick"`
	GOMAXPROCS  int      `json:"gomaxprocs"`
	GeneratedAt string   `json:"generated_at"`
	Rows        []e21Row `json:"rows"`
}

// runE21 measures the two hot-path changes of the work-stealing PR
// together, OLD vs NEW on the same on-the-fly game:
//
//   - OLD: level-barrier BFS scheduler over components minimized with the
//     legacy fresh-root ≈ᶜ quotient (engine.New(core.WithFreshRootQuotient())),
//   - NEW: the Chase–Lev work-stealing scheduler over the minimal ≈ᶜ
//     quotients (the defaults).
//
// Both sides run the full pipeline — fresh engine, component quotients,
// then otf.Check with eight workers under GOMAXPROCS(8) — so the timing
// reflects what a caller pays. The entries split the two effects:
//
//   - relay full sweep: relay cells carry no root tau, so the quotients
//     are identical on both sides and the delta is pure scheduler;
//   - token-ring full sweep (the CI-gated entry): every idle station has
//     an in-class root tau, so the legacy quotient pays a fresh root per
//     station, and since each station leaves its root independently the
//     reachable pair space inflates to 2^(n-1) prefixes of an otherwise
//     linear orbit — the minimal quotient collapses it and work stealing
//     spreads what remains;
//   - lossy-relay early mismatch: the first-mismatch exit must survive
//     the scheduler swap — the game stops far short of a full sweep and
//     still produces a counterexample.
//
// Verdicts must agree between OLD and NEW and match the expectation; on
// full runs the token-ring entry must clear 1.3x — the CI gate.
func runE21(w io.Writer, seed int64, quick bool) error {
	relayN, lossyN, ringN := 9, 12, 10
	if quick {
		relayN, lossyN, ringN = 4, 5, 4
	}
	cases := []struct {
		name   string
		net    *compose.Network
		spec   *fsp.FSP
		expect bool
		gated  bool
	}{
		{fmt.Sprintf("relay-%d (full sweep)", relayN), gen.RelayNetwork(relayN, 3), gen.CounterSpec(relayN), true, false},
		{fmt.Sprintf("token-ring-%d (full sweep)", ringN), gen.TokenRing(ringN), gen.TokenRingSpec(), true, true},
		{fmt.Sprintf("lossy-relay-%d (early mismatch)", lossyN), gen.LossyRelayNetwork(lossyN, 2), gen.CounterSpec(lossyN), false, false},
	}

	prev := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prev)

	report := e21Report{
		Experiment:  "E21",
		Description: "otf hot path: work-stealing scheduler + minimal ≈ᶜ quotients vs level-barrier BFS + legacy fresh-root quotients",
		Seed:        seed,
		Quick:       quick,
		GOMAXPROCS:  8,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
	}
	ctx := context.Background()

	// run plays the full pipeline on one side: fresh engine (so the
	// quotients are recomputed inside the timing), minimize, game.
	run := func(tc int, opts otf.Options, engOpts ...core.Option) (res *otf.Result, states int, d time.Duration, err error) {
		c := cases[tc]
		d = timed(func() {
			eng := engine.New(engOpts...)
			minSpec, qerr := eng.CongruenceQuotient(c.spec)
			if qerr != nil {
				err = qerr
				return
			}
			minNet, qerr := eng.MinimizeNetwork(ctx, c.net, engine.Weak)
			if qerr != nil {
				err = qerr
				return
			}
			for _, comp := range minNet.Components {
				states += comp.P.NumStates()
			}
			res, err = otf.Check(ctx, minNet, minSpec, otf.Weak, opts)
		})
		return res, states, d, err
	}

	fmt.Fprintf(w, "%-31s %7s %7s %14s %14s %9s %9s %8s\n",
		"entry", "old-st", "new-st", "barrier+legacy", "steal+minimal", "old-pairs", "new-pairs", "speedup")
	var gatedSpeedup float64
	for i, tc := range cases {
		oldRes, oldStates, oldT, err := run(i, otf.Options{Workers: 8, Scheduler: otf.LevelBarrier}, core.WithFreshRootQuotient())
		if err != nil {
			return fmt.Errorf("e21: %s barrier+legacy: %w", tc.name, err)
		}
		newRes, newStates, newT, err := run(i, otf.Options{Workers: 8, Scheduler: otf.WorkStealing})
		if err != nil {
			return fmt.Errorf("e21: %s stealing+minimal: %w", tc.name, err)
		}
		if oldRes.Equivalent != newRes.Equivalent {
			return fmt.Errorf("e21: configurations disagree on %s: old=%v new=%v", tc.name, oldRes.Equivalent, newRes.Equivalent)
		}
		if newRes.Equivalent != tc.expect {
			return fmt.Errorf("e21: %s verdict %v, want %v", tc.name, newRes.Equivalent, tc.expect)
		}
		if !tc.expect && newRes.Counterexample == nil {
			return fmt.Errorf("e21: %s inequivalent without a counterexample", tc.name)
		}

		speedup := float64(oldT) / float64(newT)
		if tc.gated {
			gatedSpeedup = speedup
		}
		fmt.Fprintf(w, "%-31s %7d %7d %14s %14s %9d %9d %7.1fx\n",
			tc.name, oldStates, newStates,
			oldT.Round(time.Microsecond), newT.Round(time.Microsecond),
			oldRes.Pairs, newRes.Pairs, speedup)
		report.Rows = append(report.Rows, e21Row{
			Entry:        tc.name,
			Expect:       tc.expect,
			LegacyStates: oldStates,
			MinStates:    newStates,
			OldNS:        oldT.Nanoseconds(),
			NewNS:        newT.Nanoseconds(),
			OldPairs:     oldRes.Pairs,
			NewPairs:     newRes.Pairs,
			NewSteals:    newRes.Steals,
			NewUtil:      newRes.Utilization,
			Speedup:      speedup,
		})
	}
	// The perf floor is asserted on full runs only; quick mode is the CI
	// correctness smoke where the small sizes are all noise.
	if !quick && gatedSpeedup < 1.3 {
		return fmt.Errorf("e21: token-ring full sweep speedup %.2fx, want >= 1.3x", gatedSpeedup)
	}
	fmt.Fprintln(w, "expect: >= 1.3x on the token-ring full sweep — dropping the fresh root")
	fmt.Fprintln(w, "        of every idle station deflates the reachable pair space from")
	fmt.Fprintln(w, "        2^(n-1) root-leaving prefixes to a linear token orbit")
	if e21JSONPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return fmt.Errorf("e21: %w", err)
		}
		if err := os.WriteFile(e21JSONPath, append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("e21: %w", err)
		}
		fmt.Fprintf(w, "trajectory written to %s\n", e21JSONPath)
	}
	return nil
}
