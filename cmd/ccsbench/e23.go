package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"ccs/internal/compose"
	"ccs/internal/engine"
	"ccs/internal/fsp"
	"ccs/internal/gen"
)

// e23JSONPath, when non-empty, is where runE23 writes its BENCH_E23.json
// trajectory. main wires it to the -e23json flag; the test harness leaves
// it empty so test runs produce no files.
var e23JSONPath string

type e23Row struct {
	Entry       string  `json:"entry"`
	Expect      bool    `json:"expect_equivalent"`
	SyncRules   int     `json:"sync_rules"`
	MTCStates   int     `json:"mtc_product_states"`
	MTCNS       int64   `json:"minimize_then_compose_ns"`
	OTFNS       int64   `json:"on_the_fly_ns"`
	OTFPairs    int     `json:"otf_pairs"`
	OTFExplored int     `json:"otf_explored"`
	Speedup     float64 `json:"speedup"`
}

type e23Report struct {
	Experiment  string   `json:"experiment"`
	Description string   `json:"description"`
	Seed        int64    `json:"seed"`
	Quick       bool     `json:"quick"`
	GeneratedAt string   `json:"generated_at"`
	Rows        []e23Row `json:"rows"`
}

// runE23 measures both engine routes on the sync-vector protocol
// workloads — networks whose product steps include n-way rendezvous from
// an explicit synchronization table, not just pairwise CCS handshakes:
//
//   - deep-spec: the ratified leader election, unanimous two-phase commit
//     and satisfied Byzantine quorum, where both routes sweep comparable
//     state counts but the game skips the product's saturation and
//     refinement;
//   - starved-quorum (early mismatch): a Byzantine quorum with more
//     faults than f<n/3 tolerates, where the (2f+1)-way decide rendezvous
//     never assembles — the game refutes the root after a handful of
//     pairs while MTC still materializes and partitions the whole
//     gossip-ring product.
//
// Both routes must agree on every verdict, every OTF run must actually be
// on the fly (no fallback), and on full runs the best speedup over a
// quorum entry must clear 2x — the CI gate. The margin on the starved
// quorum is structural (a constant-depth refutation vs the whole minimized
// product), so the gate is robust to runner noise.
func runE23(w io.Writer, seed int64, quick bool) error {
	ringN, pcN := 7, 6
	bqN, bqF, bqFaulty := 7, 2, 2
	// The starved swarm: 8 honest of 12 replicas miss the 2f+1 = 9 quorum,
	// and 6 gossip tokens spread the minimized product over every token
	// placement — big for MTC, refuted at the root by the game.
	starvedN, starvedF, starvedFaulty, starvedHolders := 12, 4, 4, 6
	if quick {
		ringN, pcN = 4, 3
		bqN, bqF, bqFaulty = 4, 1, 1
		starvedN, starvedF, starvedFaulty, starvedHolders = 4, 1, 2, 2
	}
	cases := []struct {
		name   string
		net    *compose.Network
		spec   *fsp.FSP
		expect bool
		quorum bool
	}{
		{fmt.Sprintf("leader-ring-%d (deep spec)", ringN), gen.ElectionRing(ringN), gen.ElectionSpec(), true, false},
		{fmt.Sprintf("2pc-%d-commit (deep spec)", pcN), gen.TwoPhaseCommit(pcN, 0), gen.DecisionSpec("commit"), true, false},
		{fmt.Sprintf("bq-%d-%d (quorum met)", bqN, bqF), gen.ByzantineQuorum(bqN, bqF, bqFaulty), gen.DecideSpec(), true, true},
		{fmt.Sprintf("bq-swarm-%d-%d-overfaulty (early mismatch)", starvedN, starvedF),
			gen.ByzantineQuorumSwarm(starvedN, starvedF, starvedFaulty, starvedHolders), gen.DecideSpec(), false, true},
	}

	report := e23Report{
		Experiment:  "E23",
		Description: "sync-vector protocols: minimize-then-compose vs on-the-fly game over n-way rendezvous products",
		Seed:        seed,
		Quick:       quick,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
	}
	ctx := context.Background()
	fmt.Fprintf(w, "%-36s %6s %10s %14s %14s %8s %8s %8s\n",
		"entry", "rules", "mtc-states", "mtc", "on-the-fly", "pairs", "speedup", "verdict")
	bestQuorum := 0.0
	for _, tc := range cases {
		// MTC route: fresh engine per measurement, so the timing includes
		// the per-component quotients, the product of the minima (vectors
		// and all), and the final saturate-and-partition check.
		var mtcVerdict bool
		var mtcStates int
		mtcT := timed(func() {
			c := engine.New()
			min, err := c.ComposeNetwork(ctx, tc.net, engine.Weak)
			if err != nil {
				panic(err)
			}
			mtcStates = min.NumStates()
			mtcVerdict, err = c.Check(ctx, engine.Query{P: min, Q: tc.spec, Rel: engine.Weak})
			if err != nil {
				panic(err)
			}
		})

		// OTF route: also a fresh engine, so both sides pay the same
		// quotient costs and the difference is product materialization vs
		// the lazy game.
		var otfVerdict bool
		var info engine.OTFInfo
		otfT := timed(func() {
			var err error
			otfVerdict, info, err = engine.New().CheckNetworkOTFInfo(ctx, tc.net, tc.spec, engine.Weak, 0)
			if err != nil {
				panic(err)
			}
		})

		if !info.OnTheFly {
			return fmt.Errorf("e23: %s fell back to minimize-then-compose: %s", tc.name, info.Fallback)
		}
		if mtcVerdict != otfVerdict {
			return fmt.Errorf("e23: routes disagree on %s: mtc=%v otf=%v", tc.name, mtcVerdict, otfVerdict)
		}
		if mtcVerdict != tc.expect {
			return fmt.Errorf("e23: %s verdict %v, want %v", tc.name, mtcVerdict, tc.expect)
		}

		speedup := float64(mtcT) / float64(otfT)
		if tc.quorum && speedup > bestQuorum {
			bestQuorum = speedup
		}
		fmt.Fprintf(w, "%-36s %6d %10d %14s %14s %8d %7.1fx %8v\n",
			tc.name, len(tc.net.Sync), mtcStates,
			mtcT.Round(time.Microsecond), otfT.Round(time.Microsecond),
			info.Pairs, speedup, otfVerdict)
		report.Rows = append(report.Rows, e23Row{
			Entry:       tc.name,
			Expect:      tc.expect,
			SyncRules:   len(tc.net.Sync),
			MTCStates:   mtcStates,
			MTCNS:       mtcT.Nanoseconds(),
			OTFNS:       otfT.Nanoseconds(),
			OTFPairs:    info.Pairs,
			OTFExplored: info.Explored,
			Speedup:     speedup,
		})
	}
	// Like E18, the perf floor is asserted on full runs only; quick mode
	// is the CI correctness smoke where small sizes are all noise.
	if !quick && bestQuorum < 2 {
		return fmt.Errorf("e23: best on-the-fly speedup on a quorum entry %.2fx, want >= 2x", bestQuorum)
	}
	fmt.Fprintln(w, "expect: >= 2x on at least one quorum entry — the starved quorum's")
	fmt.Fprintln(w, "        missing rendezvous refutes the root in a handful of pairs,")
	fmt.Fprintln(w, "        while MTC materializes the whole gossip-ring product")
	if e23JSONPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return fmt.Errorf("e23: %w", err)
		}
		if err := os.WriteFile(e23JSONPath, append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("e23: %w", err)
		}
		fmt.Fprintf(w, "trajectory written to %s\n", e23JSONPath)
	}
	return nil
}
