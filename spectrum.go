package ccs

import (
	"ccs/internal/core"
	"ccs/internal/failures"
	"ccs/internal/fsp"
	"ccs/internal/kequiv"
	"ccs/internal/simulation"
)

// SpectrumVerdict is one row of the equivalence spectrum for a process
// pair.
type SpectrumVerdict struct {
	// Relation names the notion (Table II plus the standard companions).
	Relation string
	// Holds is the verdict.
	Holds bool
	// Skipped is set when the notion does not apply to the pair (failure
	// equivalence requires the restricted model), with the reason in Note.
	Skipped bool
	// Note carries auxiliary information (witness or reason).
	Note string
}

// Spectrum evaluates the start states of p and q under every implemented
// equivalence, ordered finest to coarsest. It is the executable form of
// Table II: each verdict is implied by the ones above it wherever the
// theory proves an inclusion (~ ⊆ ≈ᶜ ⊆ ≈; ≈ ⊆ ≡ ⊆ ≈_1 on restricted
// processes; ~ ⊆ simulation equivalence ⊆ ≈_1).
func Spectrum(p, q *Process) ([]SpectrumVerdict, error) {
	var out []SpectrumVerdict
	add := func(name string, holds bool, note string) {
		out = append(out, SpectrumVerdict{Relation: name, Holds: holds, Note: note})
	}

	strong, err := core.StrongEquivalent(p, q)
	if err != nil {
		return nil, err
	}
	note := ""
	if !strong {
		if phi, err := Explain(p, q); err == nil {
			note = "distinguished by " + phi
		}
	}
	add("strong (~)", strong, note)

	cong, err := core.ObservationCongruent(p, q)
	if err != nil {
		return nil, err
	}
	add("observation congruence (≈ᶜ)", cong, "")

	weak, err := core.WeakEquivalent(p, q)
	if err != nil {
		return nil, err
	}
	note = ""
	if !weak {
		if phi, err := ExplainWeak(p, q); err == nil {
			note = "distinguished by " + phi
		}
	}
	add("observational (≈)", weak, note)

	sim, err := simulation.Equivalent(p, q)
	if err != nil {
		return nil, err
	}
	add("simulation equivalence", sim, "")

	restrictedP := fsp.Classify(p).Restricted
	restrictedQ := fsp.Classify(q).Restricted
	if restrictedP && restrictedQ {
		failEq, w, err := failures.Equivalent(p, q)
		if err != nil {
			return nil, err
		}
		note = ""
		if !failEq && w != nil {
			note = "witness " + w.Format()
		}
		add("failure (≡)", failEq, note)

		ctEq, cw, err := failures.CompletedTraceEquivalent(p, q)
		if err != nil {
			return nil, err
		}
		note = ""
		if !ctEq && cw != nil {
			note = "witness trace " + failures.FormatTrace(cw.Failure.Trace, cw.Alphabet)
		}
		add("completed-trace", ctEq, note)
	} else {
		for _, name := range []string{"failure (≡)", "completed-trace"} {
			out = append(out, SpectrumVerdict{
				Relation: name,
				Skipped:  true,
				Note:     "requires the restricted model",
			})
		}
	}

	trace, err := kequiv.Equivalent(p, q, 1)
	if err != nil {
		return nil, err
	}
	note = ""
	if !trace {
		if eq, word, err := kequiv.TraceWitness(p, q); err == nil && !eq && word != nil {
			note = "distinguishing word " + joinWord(word)
		}
	}
	add("trace (≈_1)", trace, note)
	return out, nil
}

func joinWord(word []string) string {
	out := ""
	for i, w := range word {
		if i > 0 {
			out += "."
		}
		out += w
	}
	return out
}
