package reductions

import (
	"math/rand"
	"testing"

	"ccs/internal/automata"
	"ccs/internal/core"
	"ccs/internal/expr"
	"ccs/internal/fsp"
	"ccs/internal/gen"
	"ccs/internal/kequiv"
)

func TestLemma42Universality(t *testing.T) {
	// L(M) = Sigma* iff L(M') = Sigma*, checked against the automata
	// package's universality test on random total NFAs.
	rng := rand.New(rand.NewSource(3))
	sawUniversal, sawNot := false, false
	for trial := 0; trial < 120; trial++ {
		m := gen.RandomTotal(rng, 2+rng.Intn(4), rng.Intn(4))
		mPrime, err := Lemma42(m)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		cls := fsp.Classify(mPrime)
		if !cls.Restricted || !cls.Observable {
			t.Fatalf("trial %d: M' must be restricted observable", trial)
		}

		nfaM, err := expr.ToNFA(m)
		if err != nil {
			t.Fatal(err)
		}
		uniM, _ := automata.Universal(nfaM)

		nfaMP, err := expr.ToNFA(mPrime)
		if err != nil {
			t.Fatal(err)
		}
		// In the restricted model every state accepts, so L(M') = Sigma*
		// iff the NFA view is universal.
		uniMP, _ := automata.Universal(nfaMP)
		if uniM != uniMP {
			t.Fatalf("trial %d: L(M)=Sigma* is %v but L(M')=Sigma* is %v", trial, uniM, uniMP)
		}
		if uniM {
			sawUniversal = true
		} else {
			sawNot = true
		}
	}
	if !sawUniversal || !sawNot {
		t.Logf("coverage note: universal=%v non-universal=%v", sawUniversal, sawNot)
	}
}

func TestLemma42EquivalenceForm(t *testing.T) {
	// The lemma's use in Theorem 4.1(b): L(p') = Sigma* iff p' ≈_1 q*,
	// where q* is the trivial total process over {a, b}.
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 40; trial++ {
		m := gen.RandomTotal(rng, 2+rng.Intn(3), rng.Intn(3))
		mPrime, err := Lemma42(m)
		if err != nil {
			t.Fatal(err)
		}
		nfaMP, err := expr.ToNFA(mPrime)
		if err != nil {
			t.Fatal(err)
		}
		uni, _ := automata.Universal(nfaMP)

		trivial := TrivialNFA("a", "b")
		eq1, err := kequiv.Equivalent(mPrime, trivial, 1)
		if err != nil {
			t.Fatal(err)
		}
		if uni != eq1 {
			t.Fatalf("trial %d: universality %v but ≈_1-to-trivial %v", trial, uni, eq1)
		}
	}
}

func TestLemma42RejectsBadInput(t *testing.T) {
	// Missing b-transitions.
	b := fsp.NewBuilder("partial")
	b.AddStates(2)
	b.ArcName(0, "a", 1)
	b.ArcName(1, "a", 0)
	b.ArcName(0, "b", 1)
	f := b.MustBuild()
	if _, err := Lemma42(f); err == nil {
		t.Error("partial process accepted")
	}
	// tau moves.
	b2 := fsp.NewBuilder("tau")
	b2.AddStates(1)
	b2.ArcName(0, fsp.TauName, 0)
	b2.ArcName(0, "a", 0)
	b2.ArcName(0, "b", 0)
	if _, err := Lemma42(b2.MustBuild()); err == nil {
		t.Error("tau process accepted")
	}
	// Wrong alphabet.
	b3 := fsp.NewBuilder("abc")
	b3.AddStates(1)
	b3.ArcName(0, "a", 0)
	b3.ArcName(0, "b", 0)
	b3.ArcName(0, "c", 0)
	if _, err := Lemma42(b3.MustBuild()); err == nil {
		t.Error("three-action process accepted")
	}
}

func TestLadderPreservesEquivalenceLevel(t *testing.T) {
	// Theorem 4.1(b): p ≈_k q iff p' ≈_{k+1} q'. Checked for both an
	// equivalent and an inequivalent seed pair across several levels.
	cases := []struct {
		name string
		p, q *fsp.FSP
		k    int // level at which p, q are compared
		want bool
	}{
		{"equal chains", gen.Chain(2), gen.Chain(2), 1, true},
		{"unequal chains", gen.Chain(1), gen.Chain(2), 1, false},
		{"trace-equal branching", galleryP(), galleryQ(), 1, true},
		{"branching at level 2", galleryP(), galleryQ(), 2, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			eqK, err := kequiv.Equivalent(tc.p, tc.q, tc.k)
			if err != nil {
				t.Fatal(err)
			}
			if eqK != tc.want {
				t.Fatalf("setup: p ≈_%d q = %v, want %v", tc.k, eqK, tc.want)
			}
			pp, qp, err := Ladder(tc.p, tc.q)
			if err != nil {
				t.Fatal(err)
			}
			eqK1, err := kequiv.Equivalent(pp, qp, tc.k+1)
			if err != nil {
				t.Fatal(err)
			}
			if eqK1 != eqK {
				t.Errorf("ladder broke the iff: p ≈_%d q = %v but p' ≈_%d q' = %v",
					tc.k, eqK, tc.k+1, eqK1)
			}
		})
	}
}

// galleryP/galleryQ are a(b+c)-style restricted observable processes with
// equal traces but different ≈_2 classes — here in unary form a(a+aa) vs
// aa+aaa so the ladder (which injects the action a) stays within one
// alphabet.
func galleryP() *fsp.FSP {
	b := fsp.NewBuilder("P")
	b.AddStates(6)
	b.ArcName(0, "a", 1)
	b.ArcName(1, "a", 2)
	b.ArcName(0, "a", 3)
	b.ArcName(3, "a", 4)
	b.ArcName(4, "a", 5)
	for s := fsp.State(0); s < 6; s++ {
		b.Accept(s)
	}
	return b.MustBuild()
}

func galleryQ() *fsp.FSP {
	b := fsp.NewBuilder("Q")
	b.AddStates(6)
	b.ArcName(0, "a", 1)
	b.ArcName(1, "a", 2)
	b.ArcName(1, "a", 3)
	b.ArcName(3, "a", 4)
	b.ArcName(0, "a", 5)
	for s := fsp.State(0); s < 6; s++ {
		b.Accept(s)
	}
	return b.MustBuild()
}

func TestLadderRepeatedApplication(t *testing.T) {
	// Applying the ladder twice shifts the level by two.
	p, q := gen.Chain(1), gen.Chain(2)
	p1, q1, err := Ladder(p, q)
	if err != nil {
		t.Fatal(err)
	}
	p2, q2, err := Ladder(p1, q1)
	if err != nil {
		t.Fatal(err)
	}
	// p !≈_1 q, so p2 !≈_3 q2; and since the chains differ in language the
	// separation persists at every level >= 1.
	eq3, err := kequiv.Equivalent(p2, q2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if eq3 {
		t.Errorf("double ladder lost the separation")
	}
}

func TestLadderRejectsNonRestricted(t *testing.T) {
	b := fsp.NewBuilder("std")
	b.AddStates(2)
	b.ArcName(0, "a", 1)
	b.Accept(1)
	std := b.MustBuild()
	if _, _, err := Ladder(std, gen.Chain(1)); err == nil {
		t.Error("standard (non-restricted) input accepted")
	}
}

func TestChaosCharacterization(t *testing.T) {
	chaos := Chaos()
	cls := fsp.Classify(chaos)
	if !cls.Is(fsp.RestrictedObservableUnary) {
		t.Fatalf("chaos must be r.o.u.")
	}
	// chaos ≈_2 chaos, trivially.
	eq, err := kequiv.Equivalent(chaos, chaos, 2)
	if err != nil || !eq {
		t.Fatalf("chaos not ≈_2 itself: %v %v", eq, err)
	}
	// A plain total cycle is NOT ≈_2 chaos (it never refuses).
	eq, err = kequiv.Equivalent(gen.Cycle(1), chaos, 2)
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Errorf("total cycle ≈_2 chaos reported")
	}
	// But the cycle IS trace equivalent to chaos (both a*).
	eq1, err := kequiv.Equivalent(gen.Cycle(1), chaos, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !eq1 {
		t.Errorf("cycle and chaos must be ≈_1 (both accept a*)")
	}
}

func TestTrivialNFA(t *testing.T) {
	q := TrivialNFA("a", "b")
	ok, err := kequiv.EquivalentToTrivial(q, q.Start())
	if err != nil || !ok {
		t.Fatalf("q* not trivial: %v %v", ok, err)
	}
	cls := fsp.Classify(q)
	if !cls.Restricted || !cls.Observable || !cls.Deterministic {
		t.Errorf("q* should be restricted observable deterministic")
	}
}

func TestAcceptToDead(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	tested := 0
	for trial := 0; tested < 60 && trial < 500; trial++ {
		m := gen.Random(rng, 2+rng.Intn(5), rng.Intn(10), 2, 0)
		if m.Accepting(m.Start()) && len(m.Arcs(m.Start())) > 0 {
			// Precondition ε ∉ L(m) violated; covered separately below.
			continue
		}
		tested++
		md, err := AcceptToDead(m)
		if err != nil {
			t.Fatal(err)
		}
		// Language preserved.
		n1, err := expr.ToNFA(m)
		if err != nil {
			t.Fatal(err)
		}
		n2, err := expr.ToNFA(md)
		if err != nil {
			t.Fatal(err)
		}
		eq, w, err := automata.EquivalentNFA(n1, n2)
		if err != nil {
			t.Fatal(err)
		}
		if !eq {
			t.Fatalf("trial %d: language changed, witness %v", trial, w)
		}
		// Accepting iff dead... except never-accepting dead states, which
		// the transform leaves alone; the paper only needs "accepting ⊆
		// dead" plus language preservation, and live states must never
		// accept.
		for s := 0; s < md.NumStates(); s++ {
			acc := md.Accepting(fsp.State(s))
			dead := len(md.Arcs(fsp.State(s))) == 0
			if acc && !dead {
				t.Fatalf("tested %d: state %d accepting but live", tested, s)
			}
		}
	}
	if tested < 30 {
		t.Fatalf("only %d instances satisfied the precondition", tested)
	}

	// Precondition enforcement.
	b := fsp.NewBuilder("eps")
	b.AddStates(2)
	b.ArcName(0, "a", 1)
	b.Accept(0)
	if _, err := AcceptToDead(b.MustBuild()); err == nil {
		t.Error("live accepting start accepted")
	}
}

func TestTheorem51Reduction(t *testing.T) {
	// L(p) = L(q) iff p' ≡ q', validated on random restricted observable
	// pairs with both verdicts exercised.
	rng := rand.New(rand.NewSource(33))
	sawEq, sawNeq := false, false
	for trial := 0; trial < 80; trial++ {
		p := gen.RandomRestricted(rng, 2+rng.Intn(3), rng.Intn(6), 2)
		var q *fsp.FSP
		if rng.Intn(2) == 0 {
			q = p // force language equality half the time
		} else {
			q = gen.RandomRestricted(rng, 2+rng.Intn(3), rng.Intn(6), 2)
		}
		langEq, err := kequiv.Equivalent(p, q, 1)
		if err != nil {
			t.Fatal(err)
		}
		pp, err := Theorem51(p)
		if err != nil {
			t.Fatal(err)
		}
		qp, err := Theorem51(q)
		if err != nil {
			t.Fatal(err)
		}
		failEq, _, err := failuresEquivalent(pp, qp)
		if err != nil {
			t.Fatal(err)
		}
		if langEq != failEq {
			t.Fatalf("trial %d: L-equal=%v but ≡=%v", trial, langEq, failEq)
		}
		if langEq {
			sawEq = true
		} else {
			sawNeq = true
		}
	}
	if !sawEq || !sawNeq {
		t.Errorf("coverage: eq=%v neq=%v", sawEq, sawNeq)
	}
}

func TestTheorem51RejectsNonRestricted(t *testing.T) {
	b := fsp.NewBuilder("std")
	b.AddStates(2)
	b.ArcName(0, "a", 1)
	b.Accept(1)
	if _, err := Theorem51(b.MustBuild()); err == nil {
		t.Error("standard input accepted")
	}
}

// failuresEquivalent avoids importing the failures package at the top level
// of every test; thin indirection for readability.
func failuresEquivalent(p, q *fsp.FSP) (bool, any, error) {
	eq, w, err := failuresEq(p, q)
	return eq, w, err
}

func TestStrongEquivalencePreservedByDisjointUnionPlumbing(t *testing.T) {
	// Sanity: the ladder's internal disjoint union does not disturb the
	// seed processes — p' always has exactly one a-derivative class.
	p, q := gen.Chain(2), gen.Chain(2)
	pp, qp, err := Ladder(p, q)
	if err != nil {
		t.Fatal(err)
	}
	eq, err := core.StrongEquivalent(pp, qp)
	if err != nil {
		t.Fatal(err)
	}
	// For identical seeds, a·(p∪q) and (a·p)∪(a·q) are in fact strongly
	// equivalent (both a-arcs of q' lead to bisimilar states).
	if !eq {
		t.Errorf("ladder of identical seeds should be strongly equivalent")
	}
}
