package reductions

import (
	"ccs/internal/failures"
	"ccs/internal/fsp"
)

// failuresEq adapts the failures package for the Theorem 5.1 test.
func failuresEq(p, q *fsp.FSP) (bool, *failures.Witness, error) {
	return failures.Equivalent(p, q)
}
