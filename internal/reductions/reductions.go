// Package reductions implements the constructive reductions from the
// paper's hardness proofs. The proofs are lower-bound arguments, so they
// cannot be "run" as theorems — but every reduction in them is an explicit
// process transformation, and running the transformations (i) provides
// strong correctness tests for the deciders (each reduction comes with an
// iff that must hold) and (ii) generates the adversarial workloads used by
// the benchmark harness to exhibit the exponential behaviour the hardness
// results predict.
//
// Contents:
//
//   - Lemma42: universality of a total standard observable NFA over {a,b}
//     reduced to Sigma*-ness of a restricted observable FSP (Fig. 4).
//   - Ladder: the Theorem 4.1(b) step p' = a·(p∪q), q' = (a·p)∪(a·q) with
//     p ≈_k q iff p' ≈_{k+1} q' (Fig. 5a).
//   - Chaos: the r.o.u. chaos process of Fig. 5b.
//   - AcceptToDead: the Fig. 5c transform making acceptance equal deadness.
//   - TrivialNFA: the one-state Sigma* process q* of Fig. 5d.
//   - Theorem51: the dead-state transform reducing language equivalence of
//     restricted observable FSPs to failure equivalence.
package reductions

import (
	"fmt"

	"ccs/internal/fsp"
)

// Lemma42 transforms a standard observable FSP M over Sigma = {a, b} — with
// both an a- and a b-transition leaving every state, as the lemma assumes —
// into the restricted observable FSP M' of Fig. 4 such that
//
//	L(p0) = Sigma*   iff   L(p0') = Sigma*.
//
// M' encodes a run sigma_1 ... sigma_n of M as b sigma_1 b sigma_2 ... b
// sigma_n, with a trailing 'a' probing acceptance: accepting states reach
// the all-accepting trap, so a missing word of M becomes a missing word of
// M' even though every state of M' is accepting.
func Lemma42(m *fsp.FSP) (*fsp.FSP, error) {
	if err := checkLemma42Input(m); err != nil {
		return nil, err
	}
	n := m.NumStates()
	numTrans := m.NumTransitions()

	b := fsp.NewBuilderWith(m.Name()+"'", m.Alphabet().Clone(), m.Vars().Clone())
	// States: originals, then the trap, then one state per transition.
	b.AddStates(n + 1 + numTrans)
	trap := fsp.State(n)
	b.SetStart(m.Start())

	aAct, _ := m.Alphabet().Lookup("a")
	bAct, _ := m.Alphabet().Lookup("b")

	// Accepting states of M probe into the trap with 'a'.
	for s := 0; s < n; s++ {
		if m.Accepting(fsp.State(s)) {
			b.Arc(fsp.State(s), aAct, trap)
		}
	}
	// Each original transition delta = (p, sigma, q) becomes p --b--> p_delta
	// --sigma--> q.
	next := trap + 1
	for _, tr := range m.Transitions() {
		b.Arc(tr.From, bAct, next)
		b.Arc(next, tr.Act, tr.To)
		next++
	}
	// The trap loops on everything.
	b.Arc(trap, aAct, trap)
	b.Arc(trap, bAct, trap)
	// Restricted: every state accepting.
	for s := 0; s < n+1+numTrans; s++ {
		b.Accept(fsp.State(s))
	}
	out, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("lemma 4.2: %w", err)
	}
	return out, nil
}

func checkLemma42Input(m *fsp.FSP) error {
	cls := fsp.Classify(m)
	if !cls.Observable || !cls.Standard {
		return fmt.Errorf("lemma 4.2: input must be standard observable")
	}
	aAct, okA := m.Alphabet().Lookup("a")
	bAct, okB := m.Alphabet().Lookup("b")
	if !okA || !okB || m.Alphabet().NumObservable() != 2 {
		return fmt.Errorf("lemma 4.2: alphabet must be exactly {a, b}")
	}
	for s := 0; s < m.NumStates(); s++ {
		if !m.HasAction(fsp.State(s), aAct) || !m.HasAction(fsp.State(s), bAct) {
			return fmt.Errorf("lemma 4.2: state %d lacks an a- or b-transition (input must be total)", s)
		}
	}
	return nil
}

// Ladder applies the inductive reduction of Theorem 4.1(b) to two
// restricted observable processes:
//
//	p' = a·(p ∪ q)        q' = (a·p) ∪ (a·q)
//
// so that p ≈_k q iff p' ≈_{k+1} q' for k ≥ 1 (Fig. 5a). The construction
// uses the restricted-model reading of the star-expression combinators: a·X
// is a fresh accepting start with an a-arc onto X's start, and X ∪ Y a
// fresh accepting start duplicating both starts' initial arcs. Both
// processes are returned over the disjoint union of p's and q's states, so
// repeated application composes.
func Ladder(p, q *fsp.FSP) (*fsp.FSP, *fsp.FSP, error) {
	for _, f := range []*fsp.FSP{p, q} {
		cls := fsp.Classify(f)
		if !cls.Restricted || !cls.Observable {
			return nil, nil, fmt.Errorf("ladder: %q must be restricted observable", f.Name())
		}
	}
	u, off, err := fsp.DisjointUnion(p, q)
	if err != nil {
		return nil, nil, fmt.Errorf("ladder: %w", err)
	}
	pStart, qStart := p.Start(), off+q.Start()

	pPrime, err := buildLadderSide(u, pStart, qStart, true)
	if err != nil {
		return nil, nil, err
	}
	qPrime, err := buildLadderSide(u, pStart, qStart, false)
	if err != nil {
		return nil, nil, err
	}
	return pPrime, qPrime, nil
}

// buildLadderSide constructs a·(p∪q) when union is true, (a·p)∪(a·q)
// otherwise, on top of a copy of the combined process u.
func buildLadderSide(u *fsp.FSP, pStart, qStart fsp.State, union bool) (*fsp.FSP, error) {
	name := "(a.p)+(a.q)"
	if union {
		name = "a.(p+q)"
	}
	b := fsp.NewBuilderWith(name, u.Alphabet().Clone(), u.Vars().Clone())
	n := u.NumStates()
	b.AddStates(n)
	for s := 0; s < n; s++ {
		for _, a := range u.Arcs(fsp.State(s)) {
			b.Arc(fsp.State(s), a.Act, a.To)
		}
	}
	aAct := b.Action("a")
	var start fsp.State
	if union {
		// p∪q: fresh state with both starts' initial arcs...
		mid := b.AddState()
		for _, a := range u.Arcs(pStart) {
			b.Arc(mid, a.Act, a.To)
		}
		for _, a := range u.Arcs(qStart) {
			b.Arc(mid, a.Act, a.To)
		}
		// ...then a· in front.
		start = b.AddState()
		b.Arc(start, aAct, mid)
	} else {
		// (a·p) ∪ (a·q): fresh start with a-arcs to both starts directly
		// (duplicating the initial arcs of a·p and a·q onto the union
		// state yields exactly two a-arcs).
		start = b.AddState()
		b.Arc(start, aAct, pStart)
		b.Arc(start, aAct, qStart)
	}
	b.SetStart(start)
	total := n + 1
	if union {
		total = n + 2
	}
	for s := 0; s < total; s++ {
		b.Accept(fsp.State(s))
	}
	out, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("ladder: %w", err)
	}
	return out, nil
}

// Chaos returns the r.o.u. chaos process of Fig. 5b over the unary alphabet
// {a}: a start state that can always continue or silently commit to a dead
// end. A restricted unary state q satisfies q ≈_2 chaos iff after every
// nonempty trace it has both a dead and a live derivative, and after every
// trace only those.
func Chaos() *fsp.FSP {
	b := fsp.NewBuilder("chaos")
	b.AddStates(2)
	b.ArcName(0, "a", 0)
	b.ArcName(0, "a", 1)
	b.Accept(0)
	b.Accept(1)
	return b.MustBuild()
}

// TrivialNFA returns the process q* of Fig. 5d over the given observable
// action names: a single accepting state with a self-loop for every action.
// Its language is Sigma*, and p ≈_2 q* admits the linear-time test of
// kequiv.EquivalentToTrivial.
func TrivialNFA(actions ...string) *fsp.FSP {
	b := fsp.NewBuilder("q*")
	b.AddStates(1)
	for _, a := range actions {
		b.ArcName(0, a, 0)
	}
	b.Accept(0)
	return b.MustBuild()
}

// AcceptToDead applies the Fig. 5c transform to a standard observable FSP:
// the result accepts the same language but its accepting states are exactly
// its dead states. Each accepting-but-live state p_f is made non-accepting
// and a fresh accepting dead state p_new inherits copies of its incoming
// transitions.
//
// The transform requires ε ∉ L(m) (the start state must not be both
// accepting and live): a live accepting start would lose the empty word,
// since the fresh dead twin has no incoming path of length zero. The
// paper applies the transform to languages like {a}^+ where this holds.
func AcceptToDead(m *fsp.FSP) (*fsp.FSP, error) {
	cls := fsp.Classify(m)
	if !cls.Observable || !cls.Standard {
		return nil, fmt.Errorf("accept-to-dead: input must be standard observable")
	}
	if m.Accepting(m.Start()) && len(m.Arcs(m.Start())) > 0 {
		return nil, fmt.Errorf("accept-to-dead: start state is accepting and live (ε ∈ L would be lost)")
	}
	n := m.NumStates()
	// Count accepting live states; each gets a twin.
	var live []fsp.State
	for s := 0; s < n; s++ {
		if m.Accepting(fsp.State(s)) && len(m.Arcs(fsp.State(s))) > 0 {
			live = append(live, fsp.State(s))
		}
	}
	b := fsp.NewBuilderWith(m.Name()+"-dead", m.Alphabet().Clone(), m.Vars().Clone())
	b.AddStates(n + len(live))
	b.SetStart(m.Start())
	twin := map[fsp.State]fsp.State{}
	for i, s := range live {
		twin[s] = fsp.State(n + i)
		b.Accept(fsp.State(n + i))
	}
	for s := 0; s < n; s++ {
		if m.Accepting(fsp.State(s)) && len(m.Arcs(fsp.State(s))) == 0 {
			b.Accept(fsp.State(s)) // already dead: stays accepting
		}
		for _, a := range m.Arcs(fsp.State(s)) {
			b.Arc(fsp.State(s), a.Act, a.To)
			if tw, ok := twin[a.To]; ok {
				b.Arc(fsp.State(s), a.Act, tw)
			}
		}
	}
	out, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("accept-to-dead: %w", err)
	}
	return out, nil
}

// Theorem51 applies the dead-state transform from the PSPACE-hardness proof
// of Theorem 5.1 to a restricted observable FSP: a fresh dead state p_dead
// is reachable from every original state by every action, and everything is
// accepting. For two inputs p, q it holds that
//
//	L(p) = L(q)   iff   p' ≡ q' (failure equivalence).
func Theorem51(p *fsp.FSP) (*fsp.FSP, error) {
	cls := fsp.Classify(p)
	if !cls.Restricted || !cls.Observable {
		return nil, fmt.Errorf("theorem 5.1: input must be restricted observable")
	}
	n := p.NumStates()
	b := fsp.NewBuilderWith(p.Name()+"'", p.Alphabet().Clone(), p.Vars().Clone())
	b.AddStates(n + 1)
	b.SetStart(p.Start())
	dead := fsp.State(n)
	for s := 0; s < n; s++ {
		for _, a := range p.Arcs(fsp.State(s)) {
			b.Arc(fsp.State(s), a.Act, a.To)
		}
		for _, act := range p.Alphabet().Observable() {
			b.Arc(fsp.State(s), act, dead)
		}
		b.Accept(fsp.State(s))
	}
	b.Accept(dead)
	out, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("theorem 5.1: %w", err)
	}
	return out, nil
}
