package otf

import (
	"sync"
	"sync/atomic"
	"testing"
)

func mkBatch(id int32) *batch { return &batch{recs: []pairRec{{id: id}}} }

// TestWSDequeOwnerLIFO: the owner's pop returns batches newest-first, and
// an emptied deque yields nil to both pop and steal — across a growth
// boundary (wsInitSize is small on purpose).
func TestWSDequeOwnerLIFO(t *testing.T) {
	d := newWSDeque()
	const n = 3 * wsInitSize
	for i := int32(0); i < n; i++ {
		d.push(mkBatch(i))
	}
	for i := int32(n - 1); i >= 0; i-- {
		b := d.pop()
		if b == nil || b.recs[0].id != i {
			t.Fatalf("pop: got %v, want batch %d", b, i)
		}
	}
	if d.pop() != nil {
		t.Error("pop on empty deque returned a batch")
	}
	if d.steal() != nil {
		t.Error("steal on empty deque returned a batch")
	}
}

// TestWSDequeStealFIFO: thieves take the oldest batch, so a sequence of
// steals drains in push order.
func TestWSDequeStealFIFO(t *testing.T) {
	d := newWSDeque()
	const n = 2*wsInitSize + 3
	for i := int32(0); i < n; i++ {
		d.push(mkBatch(i))
	}
	for i := int32(0); i < n; i++ {
		b := d.steal()
		if b == nil || b.recs[0].id != i {
			t.Fatalf("steal: got %v, want batch %d", b, i)
		}
	}
	if d.steal() != nil {
		t.Error("steal on empty deque returned a batch")
	}
}

// TestWSDequeConcurrentStress: one owner pushing and popping against
// several thieves; every batch must be taken exactly once, none lost,
// none duplicated. Run under -race this also exercises the memory-model
// argument in the wsDeque comment (speculative slot reads, grow while
// thieves are in flight).
func TestWSDequeConcurrentStress(t *testing.T) {
	const (
		total   = 20000
		thieves = 3
	)
	d := newWSDeque()
	taken := make([]atomic.Int32, total)
	record := func(t *testing.T, b *batch) {
		if b != nil {
			taken[b.recs[0].id].Add(1)
		}
	}

	var done atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < thieves; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !done.Load() {
				record(t, d.steal())
			}
			// Drain whatever the owner left behind.
			for {
				b := d.steal()
				if b == nil {
					return
				}
				record(t, b)
			}
		}()
	}

	// The owner pushes in bursts and pops between bursts, the same
	// push-heavy/pop-heavy mix the scheduler produces.
	id := int32(0)
	for id < total {
		for burst := 0; burst < 16 && id < total; burst++ {
			d.push(mkBatch(id))
			id++
		}
		for burst := 0; burst < 8; burst++ {
			record(t, d.pop())
		}
	}
	for {
		b := d.pop()
		if b == nil {
			break
		}
		record(t, b)
	}
	done.Store(true)
	wg.Wait()

	for i := range taken {
		if got := taken[i].Load(); got != 1 {
			t.Fatalf("batch %d taken %d times, want exactly once", i, got)
		}
	}
}
