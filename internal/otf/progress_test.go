package otf_test

import (
	"context"
	"sync"
	"testing"
	"time"

	"ccs/internal/gen"
	"ccs/internal/obs"
	"ccs/internal/otf"
)

// collectSnapshots is a thread-safe sink for progress callbacks (they
// arrive from the sampler goroutine).
type collectSnapshots struct {
	mu    sync.Mutex
	snaps []obs.OTFSnapshot
}

func (c *collectSnapshots) add(s obs.OTFSnapshot) {
	c.mu.Lock()
	c.snaps = append(c.snaps, s)
	c.mu.Unlock()
}

func (c *collectSnapshots) all() []obs.OTFSnapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]obs.OTFSnapshot(nil), c.snaps...)
}

// TestProgressSnapshots: a hooked run always delivers exactly one final
// snapshot (even when the game ends inside the first interval), its
// counters are consistent with the Result, and per-tick snapshots are
// monotone in Explored.
func TestProgressSnapshots(t *testing.T) {
	net := gen.TokenRing(8)
	spec := gen.TokenRingSpec()

	sink := &collectSnapshots{}
	res, err := otf.Check(context.Background(), net, spec, otf.Weak, otf.Options{
		Workers:          4,
		Progress:         sink.add,
		ProgressInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if !res.Equivalent {
		t.Fatalf("token ring not equivalent to its spec")
	}

	snaps := sink.all()
	if len(snaps) == 0 {
		t.Fatalf("no snapshots delivered")
	}
	finals := 0
	last := snaps[len(snaps)-1]
	prev := int64(-1)
	for _, s := range snaps {
		if s.Final {
			finals++
		}
		if s.Explored < prev {
			t.Fatalf("Explored went backwards: %d after %d", s.Explored, prev)
		}
		prev = s.Explored
		if s.Workers != 4 {
			t.Fatalf("snapshot workers = %d, want 4", s.Workers)
		}
	}
	if finals != 1 || !last.Final {
		t.Fatalf("want exactly one final snapshot, last one; finals=%d lastFinal=%v", finals, last.Final)
	}
	if last.Explored != int64(res.Explored) {
		t.Fatalf("final Explored = %d, Result.Explored = %d", last.Explored, res.Explored)
	}
	if last.Steals != int64(res.Steals) {
		t.Fatalf("final Steals = %d, Result.Steals = %d", last.Steals, res.Steals)
	}
	if last.Pairs != int64(res.Pairs) {
		t.Fatalf("final Pairs = %d, Result.Pairs = %d", last.Pairs, res.Pairs)
	}
	if last.ActiveBatches != 0 {
		t.Fatalf("final ActiveBatches = %d, want 0", last.ActiveBatches)
	}
	if len(last.DequeDepths) != 4 {
		t.Fatalf("final DequeDepths = %v, want 4 entries", last.DequeDepths)
	}
	for _, d := range last.DequeDepths {
		if d != 0 {
			t.Fatalf("final deque depths not drained: %v", last.DequeDepths)
		}
	}
}

// TestProgressFromContext: the hook threads through obs.WithOTFProgress
// when Options.Progress is unset — the path the CLI -progress flag and
// the engine use.
func TestProgressFromContext(t *testing.T) {
	net := gen.TokenRing(6)
	spec := gen.TokenRingSpec()

	sink := &collectSnapshots{}
	ctx := obs.WithOTFProgress(context.Background(), sink.add, time.Millisecond)
	res, err := otf.Check(ctx, net, spec, otf.Weak, otf.Options{Workers: 2})
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	snaps := sink.all()
	if len(snaps) == 0 {
		t.Fatalf("context-installed hook never fired")
	}
	if last := snaps[len(snaps)-1]; !last.Final || last.Explored != int64(res.Explored) {
		t.Fatalf("bad final snapshot %+v vs result explored %d", last, res.Explored)
	}
}

// TestProgressBarrierScheduler: the legacy scheduler publishes progress
// too (without deque depths).
func TestProgressBarrierScheduler(t *testing.T) {
	net := gen.TokenRing(6)
	spec := gen.TokenRingSpec()

	sink := &collectSnapshots{}
	res, err := otf.Check(context.Background(), net, spec, otf.Weak, otf.Options{
		Workers:          2,
		Scheduler:        otf.LevelBarrier,
		Progress:         sink.add,
		ProgressInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	snaps := sink.all()
	if len(snaps) == 0 {
		t.Fatalf("no snapshots under the barrier scheduler")
	}
	last := snaps[len(snaps)-1]
	if last.Explored != int64(res.Explored) {
		t.Fatalf("final Explored = %d, want %d", last.Explored, res.Explored)
	}
	if last.DequeDepths != nil {
		t.Fatalf("barrier scheduler has no deques, got depths %v", last.DequeDepths)
	}
}

// TestNoProgressNoSnapshots just pins that an unhooked run never touches
// a progress path (compile-time it can't, but the nil-guard discipline
// is worth a smoke test with the race detector on).
func TestNoProgressNoSnapshots(t *testing.T) {
	net := gen.TokenRing(5)
	spec := gen.TokenRingSpec()
	if _, err := otf.Check(context.Background(), net, spec, otf.Weak, otf.Options{Workers: 2}); err != nil {
		t.Fatalf("Check: %v", err)
	}
}
