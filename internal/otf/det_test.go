package otf

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"ccs/internal/compose"
	"ccs/internal/core"
	"ccs/internal/fsp"
	"ccs/internal/gen"
)

// checkDet is checkBoth plus the determinized-mode assertions: the spec
// must actually have gone through the subset construction.
func checkDet(t *testing.T, net *compose.Network, spec *fsp.FSP, rel Rel) *Result {
	t.Helper()
	res := checkBoth(t, net, spec, rel)
	if !res.Determinized {
		t.Fatalf("spec %s played the direct game; the test wants the determinized route", spec)
	}
	if res.SpecSubsets == 0 {
		t.Error("determinized run interned no spec subsets")
	}
	return res
}

// TestDeterminizedGallery: the nondeterministic, tau-bearing gallery
// specs — which Eligible rejects — are decided by the subset game on the
// raw (unminimized) networks, with the right verdicts.
func TestDeterminizedGallery(t *testing.T) {
	for _, spec := range []*fsp.FSP{gen.NondetCounterSpec(3), gen.NondetTokenRingSpec()} {
		if err := Eligible(spec, Weak); err == nil {
			t.Fatalf("%s is direct-eligible; it must exercise the determinized game", spec)
		}
	}
	if res := checkDet(t, gen.RelayNetwork(3, 2), gen.NondetCounterSpec(3), Weak); !res.Equivalent {
		t.Errorf("relay-3 vs nondet counter rejected: %v", res.Counterexample)
	}
	res := checkDet(t, gen.LossyRelayNetwork(3, 2), gen.NondetCounterSpec(3), Weak)
	if res.Equivalent {
		t.Error("lossy relay accepted by the nondet counter spec")
	}
	if res.Counterexample == nil || res.Counterexample.Reason == "" {
		t.Error("inequivalent verdict without a counterexample")
	}
	if res := checkDet(t, gen.TokenRing(4), gen.NondetTokenRingSpec(), Weak); !res.Equivalent {
		t.Errorf("token-ring-4 vs nondet observer rejected: %v", res.Counterexample)
	}
	res = checkDet(t, gen.BuggyTokenRing(4), gen.NondetTokenRingSpec(), Weak)
	if res.Equivalent {
		t.Error("buggy token ring accepted by the nondet observer")
	}
	if res.Counterexample == nil || len(res.Counterexample.Trace) == 0 {
		t.Error("buggy ring counterexample lost its trace")
	}
}

// TestDeterminizedEarlyExit: the early-exit property survives the subset
// construction — the buggy ring against the nondeterministic observer is
// decided while interning fewer pairs than the flat product has states.
func TestDeterminizedEarlyExit(t *testing.T) {
	const n = 6
	net := gen.BuggyTokenRing(n)
	idx, _, err := net.Index()
	if err != nil {
		t.Fatal(err)
	}
	res := checkDet(t, net, gen.NondetTokenRingSpec(), Weak)
	if res.Equivalent {
		t.Fatal("buggy ring accepted")
	}
	if res.Pairs >= idx.N() {
		t.Errorf("determinized game interned %d pairs, flat product has only %d states — no early exit", res.Pairs, idx.N())
	}
}

// TestEssentialNondeterminismUndecided: a.b + a.c is not determinate —
// the two a-derivatives are inequivalent — so the subset game must
// refuse to decide it (an UndecidedError naming the subset), never
// render a verdict. The classic trap: a.(b+c) is trace-equivalent but
// NOT weakly equivalent to a.b + a.c, and a naive subset game would
// accept it.
func TestEssentialNondeterminismUndecided(t *testing.T) {
	spec := fsp.NewBuilder("a.b+a.c")
	spec.AddStates(5)
	spec.ArcName(0, "a", 1)
	spec.ArcName(0, "a", 2)
	spec.ArcName(1, "b", 3)
	spec.ArcName(2, "c", 4)
	for s := 0; s < 5; s++ {
		spec.Accept(fsp.State(s))
	}
	p := fsp.NewBuilder("a.(b+c)")
	p.AddStates(3)
	p.ArcName(0, "a", 1)
	p.ArcName(1, "b", 2)
	p.ArcName(1, "c", 2)
	for s := 0; s < 3; s++ {
		p.Accept(fsp.State(s))
	}
	_, err := Check(bg, compose.New("trap", p.MustBuild()), spec.MustBuild(), Weak, Options{Workers: 1})
	var und *UndecidedError
	if !errors.As(err, &und) {
		t.Fatalf("want UndecidedError, got %v", err)
	}
	if !strings.Contains(und.Reason, "subset") {
		t.Errorf("undecided reason does not name the subset: %q", und.Reason)
	}
}

// TestDeadSubsetBranch: confluent choice whose branches are distinct but
// equivalent states (a "dead" duplicate branch) stays decidable, both on
// the accepting and the rejecting side.
func TestDeadSubsetBranch(t *testing.T) {
	spec := fsp.NewBuilder("a.(b-loop) twice")
	spec.AddStates(3)
	spec.ArcName(0, "a", 1)
	spec.ArcName(0, "a", 2) // dead duplicate: state 2 ≈ state 1
	spec.ArcName(1, "b", 1)
	spec.ArcName(2, "b", 2)
	for s := 0; s < 3; s++ {
		spec.Accept(fsp.State(s))
	}
	s := spec.MustBuild()

	good := fsp.NewBuilder("a.b-loop")
	good.AddStates(2)
	good.ArcName(0, "a", 1)
	good.ArcName(1, "b", 1)
	good.Accept(0)
	good.Accept(1)
	if res := checkDet(t, compose.New("good", good.MustBuild()), s, Weak); !res.Equivalent {
		t.Errorf("confluent duplicate branch rejected: %v", res.Counterexample)
	}

	bad := fsp.NewBuilder("a.stop")
	bad.AddStates(2)
	bad.ArcName(0, "a", 1)
	bad.Accept(0)
	bad.Accept(1)
	res := checkDet(t, compose.New("bad", bad.MustBuild()), s, Weak)
	if res.Equivalent {
		t.Error("a.stop accepted against a.(b-loop)")
	}
	if res.Counterexample == nil || !strings.Contains(res.Counterexample.Reason, "subset") {
		t.Errorf("counterexample does not name the spec subset: %v", res.Counterexample)
	}
}

// tauWork builds the process tau.(work-loop).
func tauWork() *fsp.FSP {
	b := fsp.NewBuilder("tau-work")
	b.AddStates(2)
	b.ArcName(0, fsp.TauName, 1)
	b.ArcName(1, "work", 1)
	b.Accept(0)
	b.Accept(1)
	return b.MustBuild()
}

// TestDeterminizedCongruenceRoot: the ≈ᶜ root condition generalized to
// tau-bearing specs, in both directions. tau.work ≈ work but not ≈ᶜ —
// whichever side carries the initial tau.
func TestDeterminizedCongruenceRoot(t *testing.T) {
	spec := tauWork() // tau-bearing: rejected by Eligible, determinized by Check
	if err := Eligible(spec, Congruence); err == nil {
		t.Fatal("tau-bearing spec is direct-eligible")
	}

	// Same process on both sides: ≈ᶜ holds, the root taus answer each
	// other.
	if res := checkDet(t, compose.New("same", tauWork()), spec, Congruence); !res.Equivalent {
		t.Errorf("tau.work ≈ᶜ tau.work rejected: %v", res.Counterexample)
	}

	// Network without the initial tau: still ≈, no longer ≈ᶜ — the
	// spec's root tau has no product tau to answer it.
	work := gen.TokenRingSpec()
	if res := checkDet(t, compose.New("bare", work), spec, Weak); !res.Equivalent {
		t.Errorf("work ≈ tau.work rejected: %v", res.Counterexample)
	}
	res := checkDet(t, compose.New("bare", work), spec, Congruence)
	if res.Equivalent {
		t.Error("work ≈ᶜ tau.work accepted; the spec-side root condition was lost")
	}

	// Network with the initial tau against the tau-bearing spec of the
	// same shape, minus the work loop reachability: product root tau is
	// answered by the spec's =tau=>+ subset.
	if res := checkDet(t, compose.New("tau-first", tauWork()), spec, Weak); !res.Equivalent {
		t.Errorf("tau.work ≈ tau.work rejected: %v", res.Counterexample)
	}
}

// TestDeterminizedStrong: the strong game determinizes too — subsets
// without tau-closure, homogeneity against the ~ partition.
func TestDeterminizedStrong(t *testing.T) {
	confluent := fsp.NewBuilder("strong-confluent")
	confluent.AddStates(3)
	confluent.ArcName(0, "a", 1)
	confluent.ArcName(0, "a", 2) // 1 ~ 2: both b-loops
	confluent.ArcName(1, "b", 1)
	confluent.ArcName(2, "b", 2)
	for s := 0; s < 3; s++ {
		confluent.Accept(fsp.State(s))
	}
	p := fsp.NewBuilder("a.b-loop")
	p.AddStates(2)
	p.ArcName(0, "a", 1)
	p.ArcName(1, "b", 1)
	p.Accept(0)
	p.Accept(1)
	net := compose.New("strong", p.MustBuild())
	if res := checkDet(t, net, confluent.MustBuild(), Strong); !res.Equivalent {
		t.Errorf("confluent strong spec rejected: %v", res.Counterexample)
	}

	essential := fsp.NewBuilder("strong-essential")
	essential.AddStates(3)
	essential.ArcName(0, "a", 1)
	essential.ArcName(0, "a", 2) // 1 ≁ 2: a b-loop vs a dead end
	essential.ArcName(1, "b", 1)
	for s := 0; s < 3; s++ {
		essential.Accept(fsp.State(s))
	}
	_, err := Check(bg, net, essential.MustBuild(), Strong, Options{Workers: 1})
	var und *UndecidedError
	if !errors.As(err, &und) {
		t.Fatalf("essential strong nondeterminism: want UndecidedError, got %v", err)
	}
}

// fluffWeak returns a nondeterministic, tau-bearing process weakly
// equivalent to the (tau-free deterministic) f and determinate by
// construction: every arc may gain a twin through a fresh tau "settling"
// state equivalent to its target, and every state may gain a tau refresh
// twin. At least one defect is always inserted so Eligible must reject
// the result.
func fluffWeak(rng *rand.Rand, f *fsp.FSP) *fsp.FSP {
	b := fsp.NewBuilder(f.Name() + "-fluffed")
	n := f.NumStates()
	b.AddStates(n)
	copyExt := func(dst fsp.State, src fsp.State) {
		for _, id := range f.Ext(src).IDs() {
			b.Extend(dst, f.Vars().Name(id))
		}
	}
	for s := 0; s < n; s++ {
		copyExt(fsp.State(s), fsp.State(s))
	}
	b.SetStart(f.Start())
	fluffed := 0
	for s := 0; s < n; s++ {
		for _, a := range f.Arcs(fsp.State(s)) {
			name := f.Alphabet().Name(a.Act)
			b.ArcName(fsp.State(s), name, a.To)
			if rng.Intn(2) == 0 {
				settle := b.AddState()
				copyExt(settle, a.To)
				b.ArcName(fsp.State(s), name, settle)
				b.ArcName(settle, fsp.TauName, a.To)
				fluffed++
			}
		}
		if rng.Intn(3) == 0 {
			twin := b.AddState()
			copyExt(twin, fsp.State(s))
			b.ArcName(fsp.State(s), fsp.TauName, twin)
			b.ArcName(twin, fsp.TauName, fsp.State(s))
			fluffed++
		}
	}
	if fluffed == 0 {
		twin := b.AddState()
		copyExt(twin, f.Start())
		b.ArcName(f.Start(), fsp.TauName, twin)
		b.ArcName(twin, fsp.TauName, f.Start())
	}
	return b.MustBuild()
}

// TestDifferentialDeterminizedWeak cross-validates the determinized weak
// and congruence games against the flat saturate-and-partition deciders
// on random networks with fluffed (nondeterministic, tau-bearing,
// determinate) specs. None of these runs may come back undecided — the
// fluff is inessential by construction.
func TestDifferentialDeterminizedWeak(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	ran := 0
	for i := 0; i < 40; i++ {
		net := gen.RandomNetwork(rng)
		flat, err := net.FSP()
		if err != nil {
			t.Fatal(err)
		}
		spec := fluffWeak(rng, gen.RandomDeterministic(rng, 1+rng.Intn(4), 2))
		if Eligible(spec, Weak) == nil {
			t.Fatalf("fluffed spec %d is direct-eligible", i)
		}
		wantWeak, err := core.WeakEquivalent(flat, spec)
		if err != nil {
			t.Fatal(err)
		}
		res := checkBoth(t, net, spec, Weak)
		if !res.Determinized {
			t.Fatalf("net %d: fluffed spec played the direct game", i)
		}
		if res.Equivalent != wantWeak {
			t.Fatalf("net %d (%s) weak vs %s: otf=%v flat=%v\ncounterexample: %v",
				i, net, spec, res.Equivalent, wantWeak, res.Counterexample)
		}
		wantCong, err := core.ObservationCongruent(flat, spec)
		if err != nil {
			t.Fatal(err)
		}
		if res := checkBoth(t, net, spec, Congruence); res.Equivalent != wantCong {
			t.Fatalf("net %d congruence vs %s: otf=%v flat=%v", i, spec, res.Equivalent, wantCong)
		}
		ran++
	}
	if ran < 30 {
		t.Fatalf("only %d determinized differential cases ran", ran)
	}
}

// fluffStrong duplicates f wholesale — states n..2n-1 mirror 0..n-1 —
// and redirects random arcs to the mirror copy, so every subset the
// strong game builds is {s, s+n} with s ~ s+n: strongly determinate
// nondeterminism.
func fluffStrong(rng *rand.Rand, f *fsp.FSP) *fsp.FSP {
	b := fsp.NewBuilder(f.Name() + "-mirrored")
	n := f.NumStates()
	b.AddStates(2 * n)
	for s := 0; s < n; s++ {
		for _, id := range f.Ext(fsp.State(s)).IDs() {
			b.Extend(fsp.State(s), f.Vars().Name(id))
			b.Extend(fsp.State(s+n), f.Vars().Name(id))
		}
	}
	b.SetStart(f.Start())
	added := 0
	for s := 0; s < n; s++ {
		for _, a := range f.Arcs(fsp.State(s)) {
			name := f.Alphabet().Name(a.Act)
			b.ArcName(fsp.State(s), name, a.To)
			b.ArcName(fsp.State(s+n), name, a.To)
			if rng.Intn(2) == 0 {
				b.ArcName(fsp.State(s), name, a.To+fsp.State(n))
				added++
			}
		}
	}
	if added == 0 && f.NumTransitions() > 0 {
		a := f.Arcs(f.Start())[0]
		b.ArcName(f.Start(), f.Alphabet().Name(a.Act), a.To+fsp.State(n))
	}
	return b.MustBuild()
}

// TestDifferentialDeterminizedStrong: same harness for the strong game.
func TestDifferentialDeterminizedStrong(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	ran := 0
	for i := 0; i < 40; i++ {
		net := gen.RandomNetwork(rng)
		flat, err := net.FSP()
		if err != nil {
			t.Fatal(err)
		}
		spec := fluffStrong(rng, gen.RandomDeterministic(rng, 1+rng.Intn(4), 2))
		if Eligible(spec, Strong) == nil {
			continue // the mirror redirect may happen to dedup away
		}
		want, err := core.StrongEquivalent(flat, spec)
		if err != nil {
			t.Fatal(err)
		}
		res := checkBoth(t, net, spec, Strong)
		if !res.Determinized {
			t.Fatalf("net %d: mirrored spec played the direct game", i)
		}
		if res.Equivalent != want {
			t.Fatalf("net %d strong vs %s: otf=%v flat=%v", i, spec, res.Equivalent, want)
		}
		ran++
	}
	if ran < 25 {
		t.Fatalf("only %d determinized strong cases ran", ran)
	}
}

// TestEligibleAggregates: Eligible reports every defect (capped), typed,
// with the never-playable cases marked fatal.
func TestEligibleAggregates(t *testing.T) {
	b := fsp.NewBuilder("many-defects")
	b.AddStates(4)
	b.ArcName(0, fsp.TauName, 1)
	b.ArcName(1, "a", 2)
	b.ArcName(1, "a", 3)
	b.ArcName(2, fsp.TauName, 3)
	err := Eligible(b.MustBuild(), Weak)
	var ie *IneligibleError
	if !errors.As(err, &ie) {
		t.Fatalf("want *IneligibleError, got %T", err)
	}
	if ie.Total != 3 || len(ie.Violations) != 3 {
		t.Errorf("want 3 violations (two taus, one nondeterminism), got %d listed, total %d: %v", len(ie.Violations), ie.Total, ie.Violations)
	}
	if !ie.Determinizable() {
		t.Error("tau/nondeterminism defects must stay determinizable")
	}
	kinds := map[ViolationKind]int{}
	for _, v := range ie.Violations {
		kinds[v.Kind]++
	}
	if kinds[ViolationTau] != 2 || kinds[ViolationNondeterminism] != 1 {
		t.Errorf("violation kinds off: %v", ie.Violations)
	}

	// The cap: more defects than MaxViolations keeps Total exact.
	wide := fsp.NewBuilder("wide")
	wide.AddStates(MaxViolations + 4)
	for s := 0; s < MaxViolations+3; s++ {
		wide.ArcName(fsp.State(s), fsp.TauName, fsp.State(s+1))
	}
	err = Eligible(wide.MustBuild(), Weak)
	if !errors.As(err, &ie) {
		t.Fatalf("want *IneligibleError, got %T", err)
	}
	if len(ie.Violations) != MaxViolations || ie.Total != MaxViolations+3 {
		t.Errorf("cap broken: %d listed, total %d", len(ie.Violations), ie.Total)
	}

	// Epsilon-tainted specs are fatal: no determinization can play them.
	eps := fsp.NewBuilder("eps")
	eps.AddStates(2)
	eps.ArcName(0, fsp.EpsilonName, 1)
	if !errors.As(Eligible(eps.MustBuild(), Weak), &ie) || ie.Determinizable() {
		t.Error("epsilon-tainted spec must be fatal")
	}
	if !errors.As(Eligible(nil, Weak), &ie) || ie.Determinizable() {
		t.Error("nil spec must be fatal")
	}
}

// TestUndecidedNotCached: after an undecided run the same session state
// must not leak into a fresh Check of a decidable query (sessions are
// per-call; this is a regression guard on the package API).
func TestUndecidedNotCached(t *testing.T) {
	net := compose.New("ring", gen.TokenRingSpec())
	spec := gen.NondetTokenRingSpec()
	if res := checkDet(t, net, spec, Weak); !res.Equivalent {
		t.Fatalf("work loop vs nondet observer rejected: %v", res.Counterexample)
	}
}

// TestEligibleDedupsViolations: a heavily nondeterministic state counts
// once per (state, action), not once per extra arc — the cap is spent on
// distinct defects, which is the whole point of aggregating.
func TestEligibleDedupsViolations(t *testing.T) {
	b := fsp.NewBuilder("fanout")
	b.AddStates(12)
	for to := 1; to <= 9; to++ {
		b.ArcName(0, "a", fsp.State(to)) // one defect, nine arcs
	}
	b.ArcName(10, fsp.TauName, 0)
	b.ArcName(10, fsp.TauName, 11) // tau state: one ViolationTau, no nondet double-report
	err := Eligible(b.MustBuild(), Weak)
	var ie *IneligibleError
	if !errors.As(err, &ie) {
		t.Fatalf("want *IneligibleError, got %T", err)
	}
	if ie.Total != 2 || len(ie.Violations) != 2 {
		t.Fatalf("want exactly 2 violations (nondet on a at 0, tau at 10), got total %d: %v", ie.Total, ie.Violations)
	}
	// For the strong game the same tau fan-out IS the nondeterminism.
	if !errors.As(Eligible(b.MustBuild(), Strong), &ie) || ie.Total != 2 {
		t.Errorf("strong game: want 2 violations (nondet on a, nondet on tau), got %+v", ie)
	}
}
