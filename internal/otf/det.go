package otf

// This file is the lazily determinized spec side of the game: the subset
// construction applied on demand to a nondeterministic (or, for the weak
// relations, tau-bearing) specification. Spec "states" become hash-consed
// tau-closed subsets — word-packed bitset rows over the spec's states,
// built by OR-ing fsp.Closure rows — interned the first time the game
// needs them, so only subsets coreachable with product states are ever
// constructed: the determinized automaton, exponential in the worst
// case, is materialized only where the product actually walks.
//
// Determinization preserves traces, not bisimilarity, so every interned
// subset is checked for homogeneity: all members must fall into one
// block of the spec's own equivalence partition (≈ for the weak games,
// ~ for the strong game), computed once up front on the small spec by
// the core solvers. A homogeneous subset behaves like any single member
// up to the relation — the spec is determinate along the explored
// traces, in Milner's sense — which makes the forced subset answer
// interchangeable with the spec's nondeterministic choices and the game
// verdict exact. A heterogeneous subset means the nondeterminism is
// essential; the game aborts with an *UndecidedError rather than guess
// (see the package comment for the soundness argument).

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"ccs/internal/compose"
	"ccs/internal/core"
	"ccs/internal/fsp"
)

// subsetRec is one interned spec subset with its per-subset tables:
// the membership row, the sorted member list, and the enabled/extension
// bitsets (unions over the members; homogeneity makes the extension
// union equal every member's extension).
type subsetRec struct {
	row     []uint64
	members []int32
	enabled []uint64
	ext     []uint64
}

// detSpec implements specSide by the lazy subset construction.
type detSpec struct {
	rel  Rel
	weak bool // tau-closed subsets (Weak, Congruence)

	clo      fsp.Closure
	rowWords int

	// Per-spec-state tables in the session's dense label space: steps
	// sorted by (label, target) for binary-search spans, enabled rows
	// (tau bit only for the strong game), extension rows, and the
	// equivalence block of the homogeneity partition.
	steps     [][]compose.Step
	stEnabled []uint64
	stExt     [][]uint64
	block     []int32

	numLabels int
	words     int

	rootSubset  int32
	rootTauID   int32
	specRootTau bool

	// The subset intern table and the (subset, label) delta memo, shared
	// by all workers: mu guards both; heteroReason records the first
	// heterogeneous subset for the undecided diagnostic.
	mu           sync.RWMutex
	ids          map[string]int32
	subsets      []subsetRec
	deltas       map[int64]int32
	heteroReason atomic.Pointer[string]
}

// newDetSpec builds the determinized side: the spec's equivalence
// partition, its dense-label transition spans, and the interned root
// subset (the tau-closure of the start state for the weak games). An
// error here means the game cannot be played at all — the root subset is
// already heterogeneous (UndecidedError) or the spec defeats the
// partition solver.
func newDetSpec(spec *fsp.FSP, rel Rel, specLabel []int32, stateExt [][]uint64, numLabels, words int) (*detSpec, error) {
	n := spec.NumStates()
	d := &detSpec{
		rel:       rel,
		weak:      rel != Strong,
		rowWords:  (n + 63) / 64,
		steps:     make([][]compose.Step, n),
		stEnabled: make([]uint64, n*words),
		stExt:     stateExt,
		block:     make([]int32, n),
		numLabels: numLabels,
		words:     words,
		rootTauID: specNoMove,
		ids:       map[string]int32{},
		deltas:    map[int64]int32{},
	}

	// The homogeneity partition: two spec states share a block iff they
	// are equivalent for the game's relation. Congruence uses the ≈
	// partition — the root condition is handled at the root pair, and
	// away from the root ≈ᶜ coincides with ≈.
	if rel == Strong {
		part := core.StrongPartition(spec)
		for q := 0; q < n; q++ {
			d.block[q] = part.Block(int32(q))
		}
	} else {
		part, err := core.WeakPartition(spec)
		if err != nil {
			return nil, &UndecidedError{Reason: fmt.Sprintf("cannot partition the spec for the subset game: %v", err)}
		}
		for q := 0; q < n; q++ {
			d.block[q] = part.Block(int32(q))
		}
	}

	if d.weak {
		d.clo = fsp.TauClosure(spec)
	}
	for q := 0; q < n; q++ {
		arcs := spec.Arcs(fsp.State(q))
		ps := make([]compose.Step, len(arcs))
		enabled := d.stEnabled[q*words : (q+1)*words]
		for i, a := range arcs {
			l := int32(0)
			if a.Act != fsp.Tau {
				l = specLabel[a.Act]
			}
			ps[i] = compose.Step{Label: l, To: int32(a.To)}
			// For the weak games tau is not an obligation: it is folded
			// into the subsets' tau-closure and the product may always
			// stand still against it.
			if l != 0 || rel == Strong {
				setBit(enabled, l)
			}
		}
		sort.Slice(ps, func(x, y int) bool {
			if ps[x].Label != ps[y].Label {
				return ps[x].Label < ps[y].Label
			}
			return ps[x].To < ps[y].To
		})
		d.steps[q] = ps
	}

	// The root subset: tau-closure of the start state (weak) or the
	// start state alone (strong).
	root := make([]uint64, d.rowWords)
	if d.weak {
		d.clo.OrClosureInto(root, spec.Start())
	} else {
		setBit(root, int32(spec.Start()))
	}
	d.mu.Lock()
	d.rootSubset = d.internLocked(root)
	d.mu.Unlock()
	if d.rootSubset == specUndecided {
		return nil, &UndecidedError{Reason: *d.heteroReason.Load() + " (the spec's own start closure)"}
	}

	if rel == Congruence {
		// The ≈ᶜ root answers: the spec's =tau=>+ derivative subset (at
		// least one strong tau, closures on both sides), and whether the
		// start state itself moves on tau (including self-loops, which
		// the closure rows drop).
		for _, a := range spec.Arcs(spec.Start()) {
			if a.Act == fsp.Tau {
				d.specRootTau = true
				break
			}
		}
		tau := make([]uint64, d.rowWords)
		d.mu.Lock()
		for _, m := range d.subsets[d.rootSubset].members {
			for _, st := range stepSpan(d.steps[m], 0) {
				d.clo.OrClosureInto(tau, fsp.State(st.To))
			}
		}
		if !zeroWords(tau) {
			d.rootTauID = d.internLocked(tau)
		}
		d.mu.Unlock()
		if d.rootTauID == specUndecided {
			return nil, &UndecidedError{Reason: *d.heteroReason.Load() + " (the spec's root tau derivatives)"}
		}
	}
	return d, nil
}

// internLocked hash-conses the subset row, building its member list and
// per-subset tables on first sight and checking homogeneity: a subset
// whose members span more than one equivalence block is essential
// nondeterminism, recorded in heteroReason and answered specUndecided.
// d.mu must be held for writing; row is not retained on a hit.
func (d *detSpec) internLocked(row []uint64) int32 {
	key := string(rowBytes(row))
	if id, ok := d.ids[key]; ok {
		return id
	}
	members := appendRowMembers(nil, row)
	for _, m := range members[1:] {
		if d.block[m] != d.block[members[0]] {
			adv := "weakly"
			if d.rel == Strong {
				adv = "strongly"
			}
			reason := fmt.Sprintf("spec subset %s mixes %s inequivalent states %d and %d — the spec's nondeterminism is essential here and the subset game cannot decide it",
				subsetString(members), adv, members[0], m)
			d.heteroReason.CompareAndSwap(nil, &reason)
			return specUndecided
		}
	}
	rec := subsetRec{
		row:     row,
		members: members,
		enabled: make([]uint64, d.words),
		ext:     make([]uint64, len(d.stExt[members[0]])),
	}
	for _, m := range members {
		orWords(rec.enabled, d.stEnabled[int(m)*d.words:(int(m)+1)*d.words])
		orWords(rec.ext, d.stExt[m])
	}
	id := int32(len(d.subsets))
	d.ids[key] = id
	d.subsets = append(d.subsets, rec)
	return id
}

func (d *detSpec) start() int32 { return d.rootSubset }

// delta is the determinized transition function: the (closed) union of
// the members' l-successors, computed on first demand and memoized.
func (d *detSpec) delta(q, l int32) int32 {
	key := int64(q)<<32 | int64(uint32(l))
	d.mu.RLock()
	id, ok := d.deltas[key]
	rec := d.subsets[q]
	d.mu.RUnlock()
	if ok {
		return id
	}
	row := make([]uint64, d.rowWords)
	for _, m := range rec.members {
		for _, st := range stepSpan(d.steps[m], l) {
			if d.weak {
				d.clo.OrClosureInto(row, fsp.State(st.To))
			} else {
				setBit(row, st.To)
			}
		}
	}
	d.mu.Lock()
	if memo, ok := d.deltas[key]; ok {
		d.mu.Unlock()
		return memo
	}
	id = specNoMove
	if !zeroWords(row) {
		id = d.internLocked(row)
	}
	d.deltas[key] = id
	d.mu.Unlock()
	return id
}

func (d *detSpec) pairRows(q int32) (ext, enabled []uint64) {
	// One lock round trip per explored pair: subsetRec contents are
	// immutable once interned, the lock only orders the slice growth.
	d.mu.RLock()
	rec := &d.subsets[q]
	ext, enabled = rec.ext, rec.enabled
	d.mu.RUnlock()
	return ext, enabled
}

func (d *detSpec) rootTauDelta() int32 { return d.rootTauID }

func (d *detSpec) rootHasTau() bool { return d.specRootTau }

func (d *detSpec) describe(q int32) string {
	d.mu.RLock()
	members := d.subsets[q].members
	d.mu.RUnlock()
	return "subset " + subsetString(members)
}

func (d *detSpec) numSubsets() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.subsets)
}

// stepSpan returns the run of steps labelled l in the label-sorted ps.
func stepSpan(ps []compose.Step, l int32) []compose.Step {
	lo := sort.Search(len(ps), func(i int) bool { return ps[i].Label >= l })
	hi := lo
	for hi < len(ps) && ps[hi].Label == l {
		hi++
	}
	return ps[lo:hi]
}

// rowBytes packs a subset row for map keying.
func rowBytes(row []uint64) []byte {
	out := make([]byte, 8*len(row))
	for i, w := range row {
		for b := 0; b < 8; b++ {
			out[8*i+b] = byte(w >> (8 * b))
		}
	}
	return out
}

// appendRowMembers appends the set bits of row (spec states, increasing)
// to dst.
func appendRowMembers(dst []int32, row []uint64) []int32 {
	for i, w := range row {
		base := int32(i << 6)
		for w != 0 {
			dst = append(dst, base+int32(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
	return dst
}

// subsetString renders a member list as {1,4,9}.
func subsetString(members []int32) string {
	parts := make([]string, len(members))
	for i, m := range members {
		parts[i] = fmt.Sprint(m)
	}
	return "{" + strings.Join(parts, ",") + "}"
}
