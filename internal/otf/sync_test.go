package otf

import (
	"testing"

	"ccs/internal/compose"
	"ccs/internal/core"
	"ccs/internal/fsp"
	"ccs/internal/gen"
)

// TestProtocolGallery plays the game over the distributed-protocols
// gallery — the sync-vector workloads — through checkBoth, so every entry
// is a single-vs-multi-worker and work-stealing-vs-level-barrier
// differential too. The expected verdicts are themselves differentially
// pinned to the flat decider in internal/gen. The nondet-spec entries must
// take the determinized route, the rest the direct one, and every
// negative must carry a counterexample.
func TestProtocolGallery(t *testing.T) {
	for _, e := range gen.ProtocolGallery() {
		res := checkBoth(t, e.Net, e.Spec, Weak)
		if res.Equivalent != e.Weak {
			t.Errorf("%s: on-the-fly says %v, want %v (counterexample: %v)",
				e.Name, res.Equivalent, e.Weak, res.Counterexample)
			continue
		}
		wantDet := Eligible(e.Spec, Weak) != nil
		if res.Determinized != wantDet {
			t.Errorf("%s: determinized=%v, want %v", e.Name, res.Determinized, wantDet)
		}
		if !e.Weak && (res.Counterexample == nil || res.Counterexample.Reason == "") {
			t.Errorf("%s: inequivalent verdict without a counterexample", e.Name)
		}
	}
}

// TestProtocolGalleryAgainstFlat is the vector-mode otf-vs-flat
// differential: on every gallery entry the game's verdict must match the
// saturate-and-partition decider run on the materialized product — the
// same oracle the MTC pipeline bottoms out in.
func TestProtocolGalleryAgainstFlat(t *testing.T) {
	for _, e := range gen.ProtocolGallery() {
		flat, err := e.Net.FSP()
		if err != nil {
			t.Fatal(err)
		}
		want, err := core.WeakEquivalent(flat, e.Spec)
		if err != nil {
			t.Fatal(err)
		}
		res := checkBoth(t, e.Net, e.Spec, Weak)
		if res.Equivalent != want {
			t.Errorf("%s: otf=%v flat=%v", e.Name, res.Equivalent, want)
		}
	}
}

// TestVectorRootCondition: a rendezvous with a tau result that fires at
// the root is a root tau like any other — ≈ accepts the stable spec, the
// ≈ᶜ root condition refuses it. This is the vector analogue of
// TestCongruenceRootCondition.
func TestVectorRootCondition(t *testing.T) {
	// Two components both offering "a" at the start; the rendezvous
	// (a, a) -> tau fires once, then both sides work forever.
	part := func() *fsp.FSP {
		b := fsp.NewBuilder("half")
		b.AddStates(2)
		b.ArcName(0, "a", 1)
		b.ArcName(1, "work", 1)
		b.Accept(0).Accept(1)
		return b.MustBuild()
	}
	net := compose.New("joint-tau", part(), part()).
		AddSync("tau", "a", "a").Hide("a", "work")
	spec := func() *fsp.FSP {
		b := fsp.NewBuilder("silent")
		b.AddStates(1)
		b.Accept(0)
		return b.MustBuild()
	}()
	// Everything is internal: weakly the network is silent, but the root
	// rendezvous tau breaks ≈ᶜ against the deadlocked spec.
	if res := checkBoth(t, net, spec, Weak); !res.Equivalent {
		t.Errorf("joint-tau ≉ silent spec: %v", res.Counterexample)
	}
	if res := checkBoth(t, net, spec, Congruence); res.Equivalent {
		t.Error("joint-tau ≈ᶜ silent spec accepted; the root condition missed the vector tau")
	}
}

// TestVectorEarlyExit: on the starved quorum (6 honest replicas against a
// 2f+1 = 7 rendezvous) the mismatch is at the root — the spec demands
// "decide", the network can never assemble it — so the game must stop
// after a vanishing fraction of the product.
func TestVectorEarlyExit(t *testing.T) {
	net := gen.ByzantineQuorum(8, 3, 2)
	idx, _, err := net.Index()
	if err != nil {
		t.Fatal(err)
	}
	res := checkBoth(t, net, gen.DecideSpec(), Weak)
	if res.Equivalent {
		t.Fatal("starved quorum accepted")
	}
	if res.Pairs*10 > idx.N() {
		t.Errorf("game interned %d pairs of a %d-state product — no early exit", res.Pairs, idx.N())
	}
}
