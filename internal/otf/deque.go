package otf

import "sync/atomic"

// batch is the unit of scheduling and stealing: the fresh pairs one
// processed pair discovered, kept together (compose.SuccBatch granularity)
// so a thief lifts a whole subtree's worth of work in one CAS instead of
// contending per pair.
type batch struct {
	recs []pairRec
}

// wsDeque is a Chase–Lev work-stealing deque of batches. The owner pushes
// and pops at the bottom (LIFO, cache-warm); thieves take from the top
// (FIFO, the oldest — hence typically largest — subtrees) guarded by a CAS
// on top. Two deliberate departures from the textbook version keep it
// correct under Go's memory model and clean under the race detector:
//
//   - every slot is an atomic.Pointer, so a thief's speculative read of a
//     slot it then fails to CAS is still a synchronized read, and
//   - the ring never wraps over live entries: when full it grows into a
//     fresh buffer (the old one is left untouched for in-flight thieves,
//     whose reads stay valid because the logical index top holds the same
//     element in both buffers; a thief that lost the race discards its
//     read when the CAS on top fails).
//
// Go atomics are sequentially consistent, strictly stronger than the
// acquire/release fences of the original, so no additional ordering is
// needed. A slot is never reused for a different element within one
// buffer: bottom only returns to an index after top has passed it, and
// pushes then resume above top.
type wsDeque struct {
	top    atomic.Int64
	bottom atomic.Int64
	buf    atomic.Pointer[wsBuf]
}

type wsBuf struct {
	mask  int64
	slots []atomic.Pointer[batch]
}

const wsInitSize = 8 // power of two

func newWSDeque() *wsDeque {
	d := &wsDeque{}
	d.buf.Store(&wsBuf{mask: wsInitSize - 1, slots: make([]atomic.Pointer[batch], wsInitSize)})
	return d
}

// push appends b at the bottom. Owner only.
func (d *wsDeque) push(b *batch) {
	bot := d.bottom.Load()
	top := d.top.Load()
	buf := d.buf.Load()
	if bot-top >= int64(len(buf.slots)) {
		buf = d.grow(buf, top, bot)
	}
	buf.slots[bot&buf.mask].Store(b)
	d.bottom.Store(bot + 1)
}

// pop removes the newest batch. Owner only; contends with thieves solely
// on the last remaining element, where the CAS on top decides the winner.
func (d *wsDeque) pop() *batch {
	bot := d.bottom.Load() - 1
	d.bottom.Store(bot)
	top := d.top.Load()
	if top > bot {
		// Already empty; undo the reservation.
		d.bottom.Store(top)
		return nil
	}
	buf := d.buf.Load()
	b := buf.slots[bot&buf.mask].Load()
	if top == bot {
		if !d.top.CompareAndSwap(top, top+1) {
			b = nil // a thief took the last element first
		}
		d.bottom.Store(top + 1)
	}
	return b
}

// size is the approximate number of buffered batches, for progress
// snapshots: the racy two-load read can be momentarily off by the
// in-flight push or steal, which is fine for a gauge.
func (d *wsDeque) size() int {
	n := int(d.bottom.Load() - d.top.Load())
	if n < 0 {
		return 0
	}
	return n
}

// steal removes the oldest batch, or returns nil if the deque looks empty
// or the CAS races with the owner or another thief (the caller simply
// tries the next victim).
func (d *wsDeque) steal() *batch {
	top := d.top.Load()
	if top >= d.bottom.Load() {
		return nil
	}
	buf := d.buf.Load()
	b := buf.slots[top&buf.mask].Load()
	if !d.top.CompareAndSwap(top, top+1) {
		return nil
	}
	return b
}

// grow doubles the buffer, copying the live window [top, bot). Owner only
// (called under push). The old buffer is abandoned, not mutated.
func (d *wsDeque) grow(old *wsBuf, top, bot int64) *wsBuf {
	nb := &wsBuf{mask: int64(len(old.slots))*2 - 1, slots: make([]atomic.Pointer[batch], len(old.slots)*2)}
	for i := top; i < bot; i++ {
		nb.slots[i&nb.mask].Store(old.slots[i&old.mask].Load())
	}
	d.buf.Store(nb)
	return nb
}
