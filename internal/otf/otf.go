// Package otf is the on-the-fly compositional verification subsystem: it
// decides whether a network of communicating processes is equivalent to a
// specification by playing the bisimulation game lazily on the reachable
// part of the product-vs-spec pair space, never materializing the
// composed process (no compose.Network.FSP, no Index, no saturation of
// the product).
//
// The game. Successor tuples are drawn directly from the network's
// compose.Expansion — the per-component dense-label transition tables the
// materializing explorer runs on, including any n-way sync-vector
// rendezvous the network's synchronization table defines: a joint step
// arrives here as one product transition whose dense label is the
// vector's result (0 for tau), so the enabledness bitsets, the lazy weak
// closures and the ≈ᶜ root condition consume vector labels with no
// special casing — and paired with the states of a
// deterministic view of the spec. When the spec is action-deterministic
// (and tau-free for the weak relations) that view is the spec itself;
// otherwise the spec side is determinized lazily by the subset
// construction (Fernandez–Mounier style): spec "states" become
// hash-consed tau-closed subsets built on demand from closure rows and
// action-successor unions, and the visited table interns (product vector,
// subset id) pairs. Either way every move of the network forces a unique
// answering move of the spec side, so the greatest bisimulation
// containing the start pair is reachable by plain BFS over forced pairs
// and equivalence reduces to a per-pair local check:
//
//   - the pair's extensions must agree (the initial-partition condition
//     of Lemma 3.1, checked pointwise);
//   - every product transition must be answered by the spec: observables
//     through the (determinized) transition function, taus by the spec
//     standing still (weak game) or by a matching spec tau (strong game);
//   - every action the spec side enables must be (weakly) enabled in the
//     product — for the weak game this walks the product's tau-closure
//     lazily, stopping as soon as the obligations are met.
//
// Soundness of the determinized game. Determinization preserves traces,
// not bisimilarity, so the subset game carries a side condition: every
// subset it touches must be homogeneous — all members weakly equivalent
// as states of the spec (strongly, for the strong game), checked against
// a partition of the small spec computed up front. On homogeneous
// subsets a member is interchangeable with any other and the forced
// subset answer is as good as any nondeterministic answer, so the game
// decides exactly the chosen relation (the spec is determinate along
// every explored trace, in Milner's sense). The moment a subset mixes
// inequivalent states the spec's nondeterminism is essential, neither
// verdict would be sound, and Check returns an *UndecidedError instead
// of guessing — callers (engine.CheckNetworkOTF) fall back to
// minimize-then-compose, recording the reason.
//
// The first pair failing a check is a distinguishing state: the game
// stops immediately and reports the verdict with a diagnostic trace from
// the start pair. On inequivalent instances whose mismatch is shallow —
// a buggy station in an exponentially large token ring — the game
// terminates after visiting a vanishing fraction of the product.
//
// Exploration is parallel and work-stealing: each worker owns a
// Chase–Lev deque of successor batches (the fresh pairs one processed
// pair discovered, compose.SuccBatch granularity), pops its own work LIFO
// and steals the oldest batch of a random victim when dry. Discovered
// pairs are hash-consed into a 64-way sharded visited table, termination
// is detected by a distributed active-batch counter (a batch's children
// are registered before the batch itself retires, so the counter reaches
// zero exactly when no work remains anywhere), the first mismatch wins
// via an atomic flag, and every worker polls the context periodically so
// deadlines interrupt a running game. The PR-4 level-synchronized BFS is
// retained behind Options.Scheduler as the measured baseline — it
// idles every worker at each level barrier while the slowest finishes,
// which is exactly what the deques eliminate on irregular pair spaces.
//
// Soundness of the quotient wiring mirrors engine.CheckNetwork: callers
// pass the network with components already quotiented by a congruence
// for the relation (engine does this through its artifact cache), which
// shrinks the pair space but never changes the verdict. See
// engine.CheckNetworkOTF for the wiring and the fallback to
// minimize-then-compose when the game genuinely cannot play.
package otf

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ccs/internal/compose"
	"ccs/internal/fsp"
	"ccs/internal/obs"
)

// Rel selects the equivalence the game decides.
type Rel int

const (
	// Strong is strong equivalence ~: tau is an ordinary label, so the
	// spec may carry (deterministic) tau transitions.
	Strong Rel = iota + 1
	// Weak is observational equivalence ≈ (Definition 2.2.1).
	Weak
	// Congruence is observation congruence ≈ᶜ: the weak game with the
	// root condition — an initial tau of the product must be answered by
	// a spec =tau=>+ move and vice versa, checked at the start pair.
	Congruence
)

func (r Rel) String() string {
	switch r {
	case Strong:
		return "strong"
	case Weak:
		return "weak"
	case Congruence:
		return "congruence"
	default:
		return "unknown"
	}
}

// Scheduler selects the parallel exploration discipline.
type Scheduler int

const (
	// WorkStealing (the zero value, and the default) runs one Chase–Lev
	// deque of successor batches per worker with randomized victim
	// selection and active-batch-counter termination.
	WorkStealing Scheduler = iota
	// LevelBarrier is the level-synchronized BFS of PR 4, retained as the
	// measured baseline (ccsbench E21) and as a differential oracle for
	// the work-stealing scheduler.
	LevelBarrier
)

func (s Scheduler) String() string {
	if s == LevelBarrier {
		return "level-barrier"
	}
	return "work-stealing"
}

// Options tunes a Check run.
type Options struct {
	// Workers is the exploration pool size; <= 0 selects GOMAXPROCS.
	Workers int
	// Scheduler selects the exploration discipline; the zero value is
	// WorkStealing.
	Scheduler Scheduler
	// Progress, when non-nil, receives periodic exploration snapshots
	// from a sampler goroutine — pairs interned, pairs explored, steal
	// count, per-worker deque depths — plus one final snapshot when the
	// run ends. When nil, the hook is taken from the context
	// (obs.WithOTFProgress), so callers above the engine can observe a
	// game without widening any signature. Workers never touch shared
	// progress state unless a hook is installed.
	Progress obs.OTFProgressFunc
	// ProgressInterval is the sampling period; <= 0 means 500ms.
	ProgressInterval time.Duration
}

// Counterexample is a distinguishing scenario found by the game.
type Counterexample struct {
	// Trace is the action sequence (tau included) from the start of the
	// product to the mismatching pair.
	Trace []string
	// Reason says what the mismatch is.
	Reason string
}

func (c *Counterexample) String() string {
	t := strings.Join(c.Trace, "·")
	if t == "" {
		t = "ε"
	}
	return fmt.Sprintf("after %s: %s", t, c.Reason)
}

// Result is the outcome of one on-the-fly check.
type Result struct {
	// Equivalent is the verdict.
	Equivalent bool
	// Pairs is the number of distinct (product state, spec state) pairs
	// interned before the game ended — the lazy analogue of the product
	// state count, and the measure of how early an early exit was.
	Pairs int
	// Explored is the number of pairs whose local game checks actually
	// ran (≤ Pairs: interned-but-unprocessed pairs remain when the game
	// ends early). Under work-stealing there are no BFS levels, so this
	// replaces the former Depth field as the work measure.
	Explored int
	// MaxWalk is the deepest lazy tau-closure walk (in tau steps) any
	// weak-enabledness obligation needed — the depth measure of the lazy
	// closure discipline.
	MaxWalk int
	// Workers is the exploration pool size the run actually used.
	Workers int
	// Steals is the number of successful batch steals (0 under the
	// level-barrier scheduler and in single-worker runs).
	Steals int
	// Utilization is mean-over-max per-worker explored-pair load in
	// (0, 1]: 1 means perfectly balanced workers, 1/Workers means one
	// worker did everything.
	Utilization float64
	// Determinized reports that the spec was not action-deterministic
	// (or not tau-free, for the weak relations) and the game ran on its
	// lazily determinized subset view.
	Determinized bool
	// SpecSubsets is the number of distinct spec subsets interned by the
	// determinized game (0 when Determinized is false) — the lazy
	// analogue of the subset-construction state count.
	SpecSubsets int
	// Counterexample describes the first mismatch; nil when equivalent.
	Counterexample *Counterexample
}

// ViolationKind classifies one way a spec fails Eligible.
type ViolationKind int

const (
	// ViolationTau is a tau transition in a spec for a weak-family game
	// (the strong game treats tau as an ordinary deterministic label).
	// The determinized game absorbs it into tau-closed subsets.
	ViolationTau ViolationKind = iota + 1
	// ViolationNondeterminism is a state with two transitions on the
	// same action. The determinized game absorbs it into subsets.
	ViolationNondeterminism
	// ViolationEpsilon is a transition on the saturation epsilon, which
	// is not a CCS action: no game can play such a spec.
	ViolationEpsilon
	// ViolationEmpty is a nil or zero-state spec.
	ViolationEmpty
)

// Violation is one spec defect found by Eligible, located so users can
// repair the spec.
type Violation struct {
	// State is the offending spec state (0 for ViolationEmpty).
	State int
	// Action is the offending action name ("" when not applicable).
	Action string
	Kind   ViolationKind
}

func (v Violation) String() string {
	switch v.Kind {
	case ViolationTau:
		return fmt.Sprintf("state %d has a tau transition", v.State)
	case ViolationNondeterminism:
		return fmt.Sprintf("state %d is nondeterministic on %q", v.State, v.Action)
	case ViolationEpsilon:
		return fmt.Sprintf("state %d transitions on the saturation epsilon %q", v.State, fsp.EpsilonName)
	case ViolationEmpty:
		return "spec has no states"
	default:
		return fmt.Sprintf("unknown violation at state %d", v.State)
	}
}

// MaxViolations caps the violations an IneligibleError carries; Total
// still counts them all.
const MaxViolations = 8

// IneligibleError reports every way (capped at MaxViolations) a spec
// fails the direct deterministic game, so users can repair the spec in
// one pass instead of one error at a time.
type IneligibleError struct {
	// Rel is the game the spec was tested for.
	Rel Rel
	// Violations lists the first MaxViolations defects in state order.
	Violations []Violation
	// Total is the uncapped defect count.
	Total int
	// Fatal is true when the spec can never enter the game at all, even
	// determinized: it is empty or transitions on the saturation
	// epsilon. False means every violation is a tau arc or plain
	// nondeterminism, which the determinized subset game absorbs.
	Fatal bool
}

// Determinizable reports whether the lazy subset construction can lift
// the spec into the game regardless of these violations.
func (e *IneligibleError) Determinizable() bool { return !e.Fatal }

func (e *IneligibleError) Error() string {
	msgs := make([]string, len(e.Violations))
	for i, v := range e.Violations {
		msgs[i] = v.String()
	}
	more := ""
	if e.Total > len(e.Violations) {
		more = fmt.Sprintf(" (and %d more)", e.Total-len(e.Violations))
	}
	return fmt.Sprintf("otf: spec ineligible for the direct %s game: %s%s", e.Rel, strings.Join(msgs, "; "), more)
}

// UndecidedError reports that the determinized game met essential
// nondeterminism: a reachable spec subset mixes states that are not
// equivalent to each other, so the forced subset answer is not
// interchangeable with the spec's nondeterministic choices and neither
// verdict would be sound. The game refuses to guess; callers should fall
// back to a solver that plays full nondeterminism (minimize-then-compose
// in engine.CheckNetworkOTF).
type UndecidedError struct {
	// Reason describes the heterogeneous subset.
	Reason string
}

func (e *UndecidedError) Error() string {
	return "otf: game undecided: " + e.Reason
}

// Eligible reports whether spec can serve as the deterministic side of
// the direct on-the-fly game for rel: action-deterministic everywhere,
// tau-free unless the game is strong, and free of the saturation
// epsilon. A nil error means Check plays the spec directly; a non-nil
// error is always an *IneligibleError aggregating every violation
// (capped at MaxViolations) — if its Determinizable method reports true,
// Check still plays the spec through the lazy subset construction.
func Eligible(spec *fsp.FSP, rel Rel) error {
	if spec == nil || spec.NumStates() == 0 {
		return &IneligibleError{Rel: rel, Violations: []Violation{{Kind: ViolationEmpty}}, Total: 1, Fatal: true}
	}
	e := &IneligibleError{Rel: rel}
	add := func(v Violation) {
		e.Total++
		if len(e.Violations) < MaxViolations {
			e.Violations = append(e.Violations, v)
		}
	}
	for s := 0; s < spec.NumStates(); s++ {
		arcs := spec.Arcs(fsp.State(s))
		sawTau := false
		for i, a := range arcs {
			// One tau violation per state, however many tau arcs it has —
			// duplicates would burn the cap and hide distinct defects.
			if a.Act == fsp.Tau && rel != Strong && !sawTau {
				sawTau = true
				add(Violation{State: s, Kind: ViolationTau})
			}
			if spec.Alphabet().Name(a.Act) == fsp.EpsilonName {
				add(Violation{State: s, Action: fsp.EpsilonName, Kind: ViolationEpsilon})
				e.Fatal = true
			}
			// Arcs are (action, target)-sorted and deduplicated, so a
			// repeated action means two distinct targets. Report each
			// (state, action) once — at the first repeat of its run — and
			// skip tau for the weak games, where the state was already
			// reported as ViolationTau.
			if i > 0 && arcs[i-1].Act == a.Act && (i < 2 || arcs[i-2].Act != a.Act) &&
				(a.Act != fsp.Tau || rel == Strong) {
				add(Violation{State: s, Action: spec.Alphabet().Name(a.Act), Kind: ViolationNondeterminism})
			}
		}
	}
	if e.Total == 0 {
		return nil
	}
	return e
}

// Check decides whether net rel spec by the on-the-fly game. Specs
// satisfying Eligible play directly; nondeterministic or tau-bearing
// specs play through the lazy subset determinization, which returns an
// *UndecidedError if the nondeterminism turns out to be essential (see
// the package comment). The network is explored lazily and the call
// returns as soon as a mismatch is found. Cancelling the context stops
// the exploration within a bounded number of pairs per worker (each
// worker polls ctx periodically), returning ctx.Err().
func Check(ctx context.Context, net *compose.Network, spec *fsp.FSP, rel Rel, opts Options) (*Result, error) {
	switch rel {
	case Strong, Weak, Congruence:
	default:
		return nil, fmt.Errorf("otf: relation %d not covered by the on-the-fly game", rel)
	}
	determinize := false
	if err := Eligible(spec, rel); err != nil {
		var ie *IneligibleError
		if !errors.As(err, &ie) || !ie.Determinizable() {
			return nil, err
		}
		determinize = true
	}
	e, err := net.Expand()
	if err != nil {
		return nil, err
	}
	s, err := newSession(e, spec, rel, determinize)
	if err != nil {
		return nil, err
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	prog, every := opts.Progress, opts.ProgressInterval
	if prog == nil {
		prog, every = obs.OTFProgressFrom(ctx)
	}
	if prog != nil {
		if every <= 0 {
			every = 500 * time.Millisecond
		}
		s.prog = &progressState{
			fn: prog, every: every, workers: workers, start: time.Now(),
			exploredBy: make([]progSlot, workers),
			stolenBy:   make([]progSlot, workers),
		}
	}
	res, err := s.explore(ctx, workers, opts.Scheduler)
	if err != nil {
		return nil, err
	}
	res.Determinized = determinize
	if d, ok := s.spec.(*detSpec); ok {
		res.SpecSubsets = d.numSubsets()
	}
	return res, nil
}

// Sentinel answers of specSide.delta: the spec side cannot answer the
// move at all (a mismatch), or the determinized side hit a heterogeneous
// subset (the game must abort undecided).
const (
	specNoMove    int32 = -1
	specUndecided int32 = -2
)

// specSide is the deterministic right-hand player of the game: either
// the spec itself (directSpec, when Eligible passes) or its lazily
// determinized subset view (detSpec). Ids are spec states in the direct
// case and interned subset ids in the determinized case; both start from
// start(). Implementations must be safe for concurrent readers.
type specSide interface {
	start() int32
	// delta returns the forced answer to label l from id q, specNoMove
	// when there is none, or specUndecided (determinized only) when the
	// answering subset mixes inequivalent states.
	delta(q, l int32) int32
	// pairRows returns q's extension bitset (stride session.extWords)
	// and enabled-label bitset (stride session.words; for the weak games
	// the tau bit is never set) in one call — the hot path reads both
	// once per pair, and the determinized side serves them under a
	// single lock acquisition.
	pairRows(q int32) (ext, enabled []uint64)
	// rootTauDelta answers an initial product tau under the ≈ᶜ root
	// condition: the spec's =tau=>+ derivative subset, or specNoMove
	// when the spec has none (a tau-free direct spec always answers
	// specNoMove, reproducing the root-condition mismatch).
	rootTauDelta() int32
	// rootHasTau reports whether the spec's start state itself has a
	// strong tau arc — the symmetric ≈ᶜ root obligation on the product.
	rootHasTau() bool
	// describe renders id q for diagnostics ("state 3", "subset {1,4}").
	describe(q int32) string
}

// directSpec is the PR-4 fast path: flat per-(state, label) tables of a
// spec that is action-deterministic (and tau-free for the weak games).
type directSpec struct {
	numLabels int
	// deltas[q*numLabels+l] is the unique l-successor of spec state q or
	// specNoMove; enabled is the per-state enabled-label bitset (stride
	// words). For the weak games the tau bit is never set (the spec is
	// tau-free there by eligibility).
	deltas  []int32
	enabled []uint64
	words   int
	ext     [][]uint64
	startSt int32
}

func (d *directSpec) start() int32 { return d.startSt }

func (d *directSpec) delta(q, l int32) int32 { return d.deltas[int(q)*d.numLabels+int(l)] }

func (d *directSpec) pairRows(q int32) (ext, enabled []uint64) {
	return d.ext[q], d.enabled[int(q)*d.words : (int(q)+1)*d.words]
}

func (d *directSpec) rootTauDelta() int32 { return specNoMove }

func (d *directSpec) rootHasTau() bool { return false }

func (d *directSpec) describe(q int32) string { return fmt.Sprintf("state %d", q) }

// nShards is the visited-table shard count; pair ids carry the shard in
// their low bits.
const (
	shardBits = 6
	nShards   = 1 << shardBits
)

// parentLink records how a pair was first discovered, for trace
// reconstruction: the discovering pair and the product label taken.
// The root pair has parent -1.
type parentLink struct {
	parent int32
	label  int32
}

// shard is one slice of the hash-consed visited table. ids maps the
// packed (state vector, spec id) key to the pair id; parents is indexed
// by the id's local part.
type shard struct {
	mu      sync.Mutex
	index   int32
	ids     map[string]int32
	parents []parentLink
}

// pairRec is one frontier entry: an interned pair with its state vector
// kept alongside so expansion never reads the visited table.
type pairRec struct {
	id  int32
	q   int32
	vec []int32
}

// failure is the first mismatch found, published through an atomic
// pointer so every worker stops on the next pair. undecided marks a
// determinized-game abort (heterogeneous subset) instead of a verdict.
type failure struct {
	at        int32
	reason    string
	undecided bool
}

// session holds the translated spec side and the shared exploration
// state.
type session struct {
	e   *compose.Expansion
	rel Rel
	k   int

	// labelNames extends the expansion's dense labels with actions only
	// the spec performs; numLabels is its length and words the bitset
	// width over it.
	labelNames []string
	numLabels  int
	words      int

	// Extension signatures as bitsets over the interned extension-variable
	// names (stride extWords): compExt per component state (nil = empty
	// extension); the spec side carries its own rows.
	extWords int
	extNames []string
	compExt  [][][]uint64

	spec   specSide
	rootID int32
	shards [nShards]shard
	pairs  atomic.Int64
	fail   atomic.Pointer[failure]

	// active counts outstanding batches under the work-stealing
	// scheduler: every batch is registered before its parent batch
	// retires, so zero means no work remains anywhere (termination).
	active atomic.Int64
	// canceled is set by the first worker that observes ctx.Err() != nil;
	// every loop polls it alongside fail.
	canceled atomic.Bool

	// prog is the optional progress sampler state; nil when no hook is
	// installed, and every publication site guards on that nil so the
	// unobserved game pays one predictable branch per batch.
	prog *progressState
}

// progressState feeds the sampler goroutine. Each worker publishes its
// explored and steal counts into its own cache-line-padded slot — an
// owned plain store, never a contended read-modify-write — and the
// sampler sums the slots at each tick (the workers' private plain-int
// counters stay the source of truth for the final Result).
type progressState struct {
	fn      obs.OTFProgressFunc
	every   time.Duration
	workers int
	start   time.Time

	exploredBy []progSlot
	stolenBy   []progSlot
	deques     atomic.Pointer[[]*wsDeque] // set by exploreSteal; nil under the barrier scheduler
}

// progSlot pads one published counter to its own cache line so eight
// workers storing at once never share a line (the E22 overhead gate).
type progSlot struct {
	v atomic.Int64
	_ [56]byte
}

func (p *progressState) sum(slots []progSlot) int64 {
	var n int64
	for i := range slots {
		n += slots[i].v.Load()
	}
	return n
}

// sample runs on its own goroutine: a snapshot per tick, plus the
// guaranteed final snapshot when stop closes.
func (s *session) sampleProgress(stop, done chan struct{}) {
	defer close(done)
	t := time.NewTicker(s.prog.every)
	defer t.Stop()
	for {
		select {
		case <-stop:
			s.prog.fn(s.snapshot(true))
			return
		case <-t.C:
			s.prog.fn(s.snapshot(false))
		}
	}
}

func (s *session) snapshot(final bool) obs.OTFSnapshot {
	p := s.prog
	snap := obs.OTFSnapshot{
		Elapsed:       time.Since(p.start),
		Workers:       p.workers,
		Pairs:         s.pairs.Load(),
		Explored:      p.sum(p.exploredBy),
		Steals:        p.sum(p.stolenBy),
		ActiveBatches: s.active.Load(),
		Final:         final,
	}
	if dq := p.deques.Load(); dq != nil {
		depths := make([]int, len(*dq))
		for i, d := range *dq {
			depths[i] = d.size()
		}
		snap.DequeDepths = depths
	}
	if d, ok := s.spec.(*detSpec); ok {
		snap.SpecSubsets = d.numSubsets()
	}
	return snap
}

func newSession(e *compose.Expansion, spec *fsp.FSP, rel Rel, determinize bool) (*session, error) {
	s := &session{e: e, rel: rel, k: e.K()}

	// Dense labels: the network's, plus any spec action missing from
	// them. Spec-only labels are never produced by the product, so pairs
	// whose spec side enables one fail the enabledness check — exactly
	// the right verdict.
	s.labelNames = append([]string(nil), e.Labels...)
	labelOf := make(map[string]int32, len(s.labelNames))
	for i, nm := range s.labelNames {
		labelOf[nm] = int32(i)
	}
	specLabel := make([]int32, spec.Alphabet().Len())
	specLabel[fsp.Tau] = 0
	for a := 1; a < spec.Alphabet().Len(); a++ {
		nm := spec.Alphabet().Name(fsp.Action(a))
		id, ok := labelOf[nm]
		if !ok {
			id = int32(len(s.labelNames))
			s.labelNames = append(s.labelNames, nm)
			labelOf[nm] = id
		}
		specLabel[a] = id
	}
	s.numLabels = len(s.labelNames)
	s.words = (s.numLabels + 63) / 64

	// Extension-name interning: bit per distinct variable name across the
	// components and the spec, so product-extension unions are word ORs.
	extOf := map[string]int32{}
	internExt := func(nm string) int32 {
		id, ok := extOf[nm]
		if !ok {
			id = int32(len(s.extNames))
			s.extNames = append(s.extNames, nm)
			extOf[nm] = id
		}
		return id
	}
	n := spec.NumStates()
	for q := 0; q < n; q++ {
		for _, id := range spec.Ext(fsp.State(q)).IDs() {
			internExt(spec.Vars().Name(id))
		}
	}
	for i := range e.Exts {
		for _, names := range e.Exts[i] {
			for _, nm := range names {
				internExt(nm)
			}
		}
	}
	s.extWords = (len(s.extNames) + 63) / 64
	if s.extWords == 0 {
		s.extWords = 1
	}
	stateExt := make([][]uint64, n)
	for q := 0; q < n; q++ {
		m := make([]uint64, s.extWords)
		for _, id := range spec.Ext(fsp.State(q)).IDs() {
			setBit(m, extOf[spec.Vars().Name(id)])
		}
		stateExt[q] = m
	}
	s.compExt = make([][][]uint64, len(e.Exts))
	for i := range e.Exts {
		s.compExt[i] = make([][]uint64, len(e.Exts[i]))
		for st, names := range e.Exts[i] {
			if len(names) == 0 {
				continue
			}
			m := make([]uint64, s.extWords)
			for _, nm := range names {
				setBit(m, extOf[nm])
			}
			s.compExt[i][st] = m
		}
	}

	if determinize {
		d, err := newDetSpec(spec, rel, specLabel, stateExt, s.numLabels, s.words)
		if err != nil {
			return nil, err
		}
		s.spec = d
	} else {
		s.spec = newDirectSpec(spec, specLabel, stateExt, s.numLabels, s.words)
	}

	for i := range s.shards {
		s.shards[i].index = int32(i)
		s.shards[i].ids = map[string]int32{}
	}
	return s, nil
}

// newDirectSpec builds the flat delta/enabled tables of an eligible spec.
func newDirectSpec(spec *fsp.FSP, specLabel []int32, stateExt [][]uint64, numLabels, words int) *directSpec {
	n := spec.NumStates()
	d := &directSpec{
		numLabels: numLabels,
		deltas:    make([]int32, n*numLabels),
		enabled:   make([]uint64, n*words),
		words:     words,
		ext:       stateExt,
		startSt:   int32(spec.Start()),
	}
	for i := range d.deltas {
		d.deltas[i] = specNoMove
	}
	for q := 0; q < n; q++ {
		enabled := d.enabled[q*words : (q+1)*words]
		for _, a := range spec.Arcs(fsp.State(q)) {
			l := specLabel[a.Act]
			d.deltas[q*numLabels+int(l)] = int32(a.To)
			setBit(enabled, l)
		}
	}
	return d
}

// intern hash-conses the pair (vec, q), recording its discovery parent on
// first sight. buf is caller scratch of 4*(k+1) bytes.
func (s *session) intern(buf []byte, vec []int32, q, parent, label int32) (id int32, fresh bool) {
	putKey(buf, vec, q)
	sh := &s.shards[fnv1a(buf)&(nShards-1)]
	sh.mu.Lock()
	if id, ok := sh.ids[string(buf)]; ok {
		sh.mu.Unlock()
		return id, false
	}
	id = int32(len(sh.parents))<<shardBits | sh.index
	sh.ids[string(buf)] = id
	sh.parents = append(sh.parents, parentLink{parent: parent, label: label})
	sh.mu.Unlock()
	s.pairs.Add(1)
	return id, true
}

// trace reconstructs the label path from the root to pair id. Called only
// after the workers have stopped.
func (s *session) trace(id int32) []string {
	var labels []int32
	for id >= 0 {
		p := s.shards[id&(nShards-1)].parents[id>>shardBits]
		if p.label >= 0 {
			labels = append(labels, p.label)
		}
		id = p.parent
	}
	out := make([]string, len(labels))
	for i, l := range labels {
		out[len(labels)-1-i] = s.labelNames[l]
	}
	return out
}

// worker is the per-goroutine scratch: bitsets, key buffers, the
// successor batch, the closure-walk arena, the frontier buffer of the
// level-barrier scheduler, and the per-worker counters the Result stats
// aggregate.
type worker struct {
	s       *session
	batch   compose.SuccBatch
	walkSuc []int32
	key     []byte
	vkey    []byte
	ext     []uint64
	direct  []uint64
	missing []uint64
	seen    map[string]struct{}
	queue   []int32 // closure-walk arena: vectors flat, stride s.k
	depths  []int32 // tau depth of each arena entry
	next    []pairRec
	rng     uint64

	explored int
	steals   int
	maxWalk  int

	// pubExplored/pubSteals point at this worker's padded progress slots
	// (nil when no hook is installed): publication is an owned store, so
	// the observed hot loop never touches a shared cache line.
	pubExplored *atomic.Int64
	pubSteals   *atomic.Int64
}

func (s *session) newWorker(id int) *worker {
	return &worker{
		s:       s,
		walkSuc: make([]int32, s.k),
		key:     make([]byte, 4*(s.k+1)),
		vkey:    make([]byte, 4*s.k),
		ext:     make([]uint64, s.extWords),
		direct:  make([]uint64, s.words),
		missing: make([]uint64, s.words),
		seen:    map[string]struct{}{},
		rng:     uint64(id)*0x9E3779B97F4A7C15 + 0x2545F4914F6CDD1D,
	}
}

// rngNext is a per-worker xorshift64 used only for victim selection —
// contention spreading, not statistics.
func (w *worker) rngNext() uint64 {
	x := w.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	w.rng = x
	return x
}

// pollEvery is how many processed pairs a worker lets pass between
// ctx.Err() polls: rare enough to stay off the hot path, frequent enough
// that WithTimeout deadlines interrupt a running game promptly.
const pollEvery = 256

// explore runs the parallel game under the selected scheduler and
// assembles the Result (or the ctx / undecided error).
func (s *session) explore(ctx context.Context, workers int, sched Scheduler) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rootVec := append([]int32(nil), s.e.Starts...)
	rootQ := s.spec.start()
	buf := make([]byte, 4*(s.k+1))
	s.rootID, _ = s.intern(buf, rootVec, rootQ, -1, -1)
	root := pairRec{id: s.rootID, q: rootQ, vec: rootVec}

	pool := make([]*worker, workers)
	for i := range pool {
		pool[i] = s.newWorker(i)
		if s.prog != nil {
			pool[i].pubExplored = &s.prog.exploredBy[i].v
			pool[i].pubSteals = &s.prog.stolenBy[i].v
		}
	}

	if s.prog != nil {
		stop, done := make(chan struct{}), make(chan struct{})
		go s.sampleProgress(stop, done)
		// The final snapshot is delivered before explore returns, so a
		// caller's hook has seen the end of the run by the time it gets
		// the Result.
		defer func() { close(stop); <-done }()
	}

	if sched == LevelBarrier {
		s.exploreBarrier(ctx, pool, root)
	} else {
		s.exploreSteal(ctx, pool, root)
	}

	if s.canceled.Load() && s.fail.Load() == nil {
		return nil, ctx.Err()
	}

	res := &Result{Pairs: int(s.pairs.Load()), Workers: workers}
	maxExplored := 0
	for _, w := range pool {
		res.Explored += w.explored
		res.Steals += w.steals
		if w.explored > maxExplored {
			maxExplored = w.explored
		}
		if w.maxWalk > res.MaxWalk {
			res.MaxWalk = w.maxWalk
		}
	}
	res.Utilization = 1
	if maxExplored > 0 {
		res.Utilization = float64(res.Explored) / (float64(workers) * float64(maxExplored))
	}

	if f := s.fail.Load(); f != nil {
		cx := &Counterexample{Trace: s.trace(f.at), Reason: f.reason}
		if f.undecided {
			return nil, &UndecidedError{Reason: fmt.Sprintf("%s (reached %s)", f.reason, traceClause(cx.Trace))}
		}
		res.Counterexample = cx
		return res, nil
	}
	res.Equivalent = true
	return res, nil
}

// exploreSteal is the work-stealing scheduler: the root pair seeds worker
// 0's deque as a one-pair batch, and every worker loops pop → steal →
// idle-check until the active-batch counter hits zero or a stop flag is
// raised. No barriers: a worker that drains its own deque immediately
// raids a random victim's oldest batch.
func (s *session) exploreSteal(ctx context.Context, pool []*worker, root pairRec) {
	deques := make([]*wsDeque, len(pool))
	for i := range deques {
		deques[i] = newWSDeque()
	}
	if s.prog != nil {
		s.prog.deques.Store(&deques)
	}
	s.active.Store(1)
	deques[0].push(&batch{recs: []pairRec{root}})

	var wg sync.WaitGroup
	for wi := range pool {
		wg.Add(1)
		go func(w *worker, self int) {
			defer wg.Done()
			my := deques[self]
			idle := 0
			for {
				if s.fail.Load() != nil || s.canceled.Load() {
					return
				}
				b := my.pop()
				if b == nil {
					b = w.stealBatch(deques, self)
				}
				if b == nil {
					if s.active.Load() == 0 {
						return
					}
					// Idle: someone still holds work. Poll ctx here too so
					// a starved worker notices a deadline without pairs.
					if ctx.Err() != nil {
						s.canceled.Store(true)
						return
					}
					// Back off exponentially: a few yields, then short
					// sleeps. Hot-spinning thieves on an oversubscribed
					// machine (workers > cores) would otherwise preempt
					// the very workers they are waiting on.
					idle++
					if idle <= 4 {
						runtime.Gosched()
					} else {
						d := time.Duration(1<<min(idle-5, 5)) * 4 * time.Microsecond
						time.Sleep(d)
					}
					continue
				}
				idle = 0
				w.runBatch(ctx, my, b)
			}
		}(pool[wi], wi)
	}
	wg.Wait()
}

// stealBatch tries every other deque once, starting from a random victim.
func (w *worker) stealBatch(deques []*wsDeque, self int) *batch {
	n := len(deques)
	if n == 1 {
		return nil
	}
	off := int(w.rngNext() % uint64(n))
	for i := 0; i < n; i++ {
		v := (off + i) % n
		if v == self {
			continue
		}
		if b := deques[v].steal(); b != nil {
			w.steals++
			if w.pubSteals != nil {
				w.pubSteals.Store(int64(w.steals))
			}
			return b
		}
	}
	return nil
}

// runBatch processes one batch, pushing each pair's fresh children as a
// new batch onto the worker's own deque. The child batch is registered on
// the active counter BEFORE this batch retires — the invariant that makes
// a zero counter mean global termination.
func (w *worker) runBatch(ctx context.Context, my *wsDeque, b *batch) {
	s := w.s
	done := 0
	for _, rec := range b.recs {
		if s.fail.Load() != nil || s.canceled.Load() {
			break
		}
		w.explored++
		done++
		if w.explored%pollEvery == 0 && ctx.Err() != nil {
			s.canceled.Store(true)
			break
		}
		children, f := w.process(rec)
		if f != nil {
			s.fail.CompareAndSwap(nil, f)
			break
		}
		if len(children) > 0 {
			s.active.Add(1)
			my.push(&batch{recs: children})
		}
	}
	// Progress is published per batch, not per pair, and into the
	// worker's own padded slot — a plain store, so the observed game's
	// hot loop stays free of shared-line traffic.
	if w.pubExplored != nil && done > 0 {
		w.pubExplored.Store(int64(w.explored))
	}
	s.active.Add(-1)
}

// exploreBarrier is the retained level-synchronized BFS: per-level atomic
// cursor over the frontier, per-worker successor buffers merged at the
// barrier. Kept for E21 baselining and differential testing.
func (s *session) exploreBarrier(ctx context.Context, pool []*worker, root pairRec) {
	frontier := []pairRec{root}
	const chunk = 32
	for len(frontier) > 0 && s.fail.Load() == nil && !s.canceled.Load() {
		if ctx.Err() != nil {
			s.canceled.Store(true)
			return
		}
		var cursor atomic.Int64
		var wg sync.WaitGroup
		for wi := 0; wi < len(pool); wi++ {
			wg.Add(1)
			go func(w *worker) {
				defer wg.Done()
				w.next = w.next[:0]
				for s.fail.Load() == nil && !s.canceled.Load() {
					hi := cursor.Add(chunk)
					lo := hi - chunk
					if lo >= int64(len(frontier)) {
						return
					}
					if hi > int64(len(frontier)) {
						hi = int64(len(frontier))
					}
					for _, rec := range frontier[lo:hi] {
						w.explored++
						if w.pubExplored != nil {
							w.pubExplored.Store(int64(w.explored))
						}
						if w.explored%pollEvery == 0 && ctx.Err() != nil {
							s.canceled.Store(true)
							return
						}
						children, f := w.process(rec)
						if f != nil {
							s.fail.CompareAndSwap(nil, f)
							return
						}
						w.next = append(w.next, children...)
					}
				}
			}(pool[wi])
		}
		wg.Wait()
		frontier = frontier[:0]
		for _, w := range pool {
			frontier = append(frontier, w.next...)
		}
	}
}

// traceClause renders a trace for the undecided diagnostic.
func traceClause(trace []string) string {
	if len(trace) == 0 {
		return "at the start pair"
	}
	return "after " + strings.Join(trace, "·")
}

// process runs the local bisimulation-game checks of one pair and
// returns its undiscovered forced successors — the next steal-granular
// batch. A non-nil failure is the distinguishing mismatch (or the
// undecided abort); any children gathered before it are discarded by the
// caller.
func (w *worker) process(rec pairRec) ([]pairRec, *failure) {
	s := w.s
	spec := s.spec

	specExt, specEnabled := spec.pairRows(rec.q)

	// Extensions must agree (the initial-partition condition).
	clearWords(w.ext)
	for i, st := range rec.vec {
		if m := s.compExt[i][st]; m != nil {
			orWords(w.ext, m)
		}
	}
	if !equalWords(w.ext, specExt) {
		return nil, &failure{at: rec.id, reason: fmt.Sprintf(
			"the network state has extension {%s}; spec %s has {%s}",
			strings.Join(w.extNames(w.ext), ","), spec.describe(rec.q), strings.Join(w.extNames(specExt), ","))}
	}

	// Every product move must be answered by the spec side. The batch is
	// materialized first (compose.AppendSucc) so the checks below run a
	// plain loop and the surviving children ship out as one deque entry;
	// the mismatch checks abort the loop in the same successor order the
	// streaming enumeration used.
	w.batch.Reset()
	s.e.AppendSucc(rec.vec, &w.batch)
	clearWords(w.direct)
	root := rec.id == s.rootID
	sawTau := false
	var children []pairRec
	for i := 0; i < w.batch.Len(); i++ {
		label := w.batch.Labels[i]
		succ := w.batch.Vec(i)
		q2 := rec.q
		if label == 0 && s.rel != Strong {
			sawTau = true
			if s.rel == Congruence && root {
				// The ≈ᶜ root condition: an initial product tau needs an
				// answering spec =tau=>+ move, not mere standing still.
				q2 = spec.rootTauDelta()
				if q2 == specNoMove {
					return nil, &failure{at: rec.id, reason: "the network starts with a tau move the spec cannot answer with a tau of its own (≈ᶜ root condition)"}
				}
			}
			// Otherwise the spec stands still on a product tau.
		} else {
			setBit(w.direct, label)
			q2 = spec.delta(rec.q, label)
			if q2 == specNoMove {
				return nil, &failure{at: rec.id, reason: fmt.Sprintf("the network performs %q; spec %s cannot", s.labelNames[label], spec.describe(rec.q))}
			}
		}
		if q2 == specUndecided {
			return nil, w.undecidedFailure(rec.id)
		}
		id, fresh := s.intern(w.key, succ, q2, rec.id, label)
		if fresh {
			vec := append([]int32(nil), succ...)
			children = append(children, pairRec{id: id, q: q2, vec: vec})
		}
	}

	// The symmetric ≈ᶜ root obligation: a spec-side initial tau needs an
	// answering product tau (p0 ==tau=>+ starts with a strong tau move).
	if s.rel == Congruence && root && spec.rootHasTau() && !sawTau {
		return nil, &failure{at: rec.id, reason: "the spec starts with a tau move; the network has no initial tau to answer it (≈ᶜ root condition)"}
	}

	// Every spec move must be (weakly) matched by the product. The weak
	// games walk the product's tau-closure lazily, but only for the
	// obligations the direct moves left open.
	copy(w.missing, specEnabled)
	andNotWords(w.missing, w.direct)
	if s.rel != Strong && !zeroWords(w.missing) {
		w.walkMissing(rec.vec)
	}
	if !zeroWords(w.missing) {
		how := ""
		if s.rel != Strong {
			how = " weakly"
		}
		return nil, &failure{at: rec.id, reason: fmt.Sprintf(
			"spec %s requires %q; the network cannot%s perform it", spec.describe(rec.q), s.labelNames[firstBit(w.missing)], how)}
	}
	return children, nil
}

// undecidedFailure builds the abort record for a heterogeneous subset,
// pulling the detailed reason recorded by the determinized spec side.
func (w *worker) undecidedFailure(at int32) *failure {
	reason := "a spec subset mixes inequivalent states (essential nondeterminism)"
	if d, ok := w.s.spec.(*detSpec); ok {
		if r := d.heteroReason.Load(); r != nil {
			reason = *r
		}
	}
	return &failure{at: at, reason: reason, undecided: true}
}

// walkMissing clears from w.missing every label weakly enabled from vec:
// a BFS over the product's tau successors (component taus and handshakes
// alike), collecting direct observables of each closure member, stopping
// the moment the obligations are met. The walk only ever visits states
// the main BFS reaches through the same tau edges, so laziness is
// preserved: an early exit stays early.
//
// The queue is a per-worker flat arena (stride k), so the walk allocates
// only the seen-set keys of genuinely new closure members, amortized by
// the arena's growth. Exhaustive walks are deliberately not memoized:
// obligations are usually met within a few steps (the early exit), a
// complete weak-enabled set would force the whole closure to be swept
// per state, and a walk that exhausts without meeting its obligations is
// a mismatch — the game ends there, so the memo would never be read.
func (w *worker) walkMissing(vec []int32) {
	s := w.s
	k := s.k
	clear(w.seen)
	putVec(w.vkey, vec)
	w.seen[string(w.vkey)] = struct{}{}
	w.queue = append(w.queue[:0], vec...)
	w.depths = append(w.depths[:0], 0)
	for i := 0; i*k < len(w.queue); i++ {
		// cur stays valid if the arena reallocates mid-iteration: the old
		// backing array is untouched and Succ copies it per emit.
		cur := w.queue[i*k : (i+1)*k]
		d := w.depths[i] + 1
		done := !s.e.Succ(cur, w.walkSuc, func(label int32, succ []int32) bool {
			if label == 0 {
				putVec(w.vkey, succ)
				if _, ok := w.seen[string(w.vkey)]; !ok {
					w.seen[string(w.vkey)] = struct{}{}
					w.queue = append(w.queue, succ...)
					w.depths = append(w.depths, d)
					if int(d) > w.maxWalk {
						w.maxWalk = int(d)
					}
				}
			} else if hasBit(w.missing, label) {
				clearBit(w.missing, label)
				if zeroWords(w.missing) {
					return false
				}
			}
			return true
		})
		if done {
			return
		}
	}
}

// extNames renders an extension bitset for diagnostics.
func (w *worker) extNames(m []uint64) []string {
	var out []string
	for i, nm := range w.s.extNames {
		if hasBit(m, int32(i)) {
			out = append(out, nm)
		}
	}
	sort.Strings(out)
	return out
}

// --- small bitset and key helpers -----------------------------------

func setBit(b []uint64, i int32)   { b[i>>6] |= 1 << (uint(i) & 63) }
func clearBit(b []uint64, i int32) { b[i>>6] &^= 1 << (uint(i) & 63) }
func hasBit(b []uint64, i int32) bool {
	return b[i>>6]&(1<<(uint(i)&63)) != 0
}

func clearWords(b []uint64) {
	for i := range b {
		b[i] = 0
	}
}

func orWords(dst, src []uint64) {
	for i, w := range src {
		dst[i] |= w
	}
}

func andNotWords(dst, src []uint64) {
	for i, w := range src {
		dst[i] &^= w
	}
}

func zeroWords(b []uint64) bool {
	for _, w := range b {
		if w != 0 {
			return false
		}
	}
	return true
}

func equalWords(a, b []uint64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func firstBit(b []uint64) int32 {
	for i, w := range b {
		if w != 0 {
			return int32(i<<6 + bits.TrailingZeros64(w))
		}
	}
	return -1
}

func putVec(buf []byte, vec []int32) {
	for i, s := range vec {
		buf[4*i] = byte(s)
		buf[4*i+1] = byte(s >> 8)
		buf[4*i+2] = byte(s >> 16)
		buf[4*i+3] = byte(s >> 24)
	}
}

func putKey(buf []byte, vec []int32, q int32) {
	putVec(buf, vec)
	i := 4 * len(vec)
	buf[i] = byte(q)
	buf[i+1] = byte(q >> 8)
	buf[i+2] = byte(q >> 16)
	buf[i+3] = byte(q >> 24)
}

func fnv1a(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}
