// Package otf is the on-the-fly compositional verification subsystem: it
// decides whether a network of communicating processes is equivalent to a
// specification by playing the bisimulation game lazily on the reachable
// part of the product-vs-spec pair space, never materializing the
// composed process (no compose.Network.FSP, no Index, no saturation of
// the product).
//
// The game. Successor tuples are drawn directly from the network's
// compose.Expansion — the per-component dense-label transition tables the
// materializing explorer runs on — and paired with states of the spec.
// The spec must be action-deterministic (and tau-free for the weak
// relations); Eligible reports whether a given spec qualifies. Under that
// restriction every move of the network forces a unique answering move of
// the spec, so the greatest bisimulation containing the start pair is
// reachable by plain BFS over forced pairs and equivalence reduces to a
// per-pair local check:
//
//   - the pair's extensions must agree (the initial-partition condition
//     of Lemma 3.1, checked pointwise);
//   - every product transition must be answered by the spec: observables
//     through the spec's transition function, taus by the spec standing
//     still (weak game) or by a matching spec tau (strong game);
//   - every action the spec enables must be (weakly) enabled in the
//     product — for the weak game this walks the product's tau-closure
//     lazily, stopping as soon as the obligations are met.
//
// The first pair failing a check is a distinguishing state: the game
// stops immediately and reports the verdict with a diagnostic trace from
// the start pair. On inequivalent instances whose mismatch is shallow —
// a buggy station in an exponentially large token ring — the game
// terminates after visiting a vanishing fraction of the product.
//
// Exploration is parallel, following the lts.Builder design: the BFS
// frontier of each level is sharded across workers, discovered pairs are
// hash-consed into a sharded visited table (per-worker successor buffers,
// merged into the next frontier at the level barrier), and the first
// mismatch wins via an atomic flag.
//
// Soundness mirrors engine.CheckNetwork: callers pass the network with
// components already quotiented by a congruence for the relation (engine
// does this through its artifact cache), which shrinks the pair space but
// never changes the verdict. See engine.CheckNetworkOTF for the wiring
// and the fallback to minimize-then-compose when the spec is ineligible.
package otf

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"ccs/internal/compose"
	"ccs/internal/fsp"
)

// Rel selects the equivalence the game decides.
type Rel int

const (
	// Strong is strong equivalence ~: tau is an ordinary label, so the
	// spec may carry (deterministic) tau transitions.
	Strong Rel = iota + 1
	// Weak is observational equivalence ≈ (Definition 2.2.1).
	Weak
	// Congruence is observation congruence ≈ᶜ: the weak game with the
	// root condition — an initial tau of the product cannot be answered
	// by a tau-free spec, so it is a mismatch at the start pair.
	Congruence
)

func (r Rel) String() string {
	switch r {
	case Strong:
		return "strong"
	case Weak:
		return "weak"
	case Congruence:
		return "congruence"
	default:
		return "unknown"
	}
}

// Options tunes a Check run.
type Options struct {
	// Workers is the exploration pool size; <= 0 selects GOMAXPROCS.
	Workers int
}

// Counterexample is a distinguishing scenario found by the game.
type Counterexample struct {
	// Trace is the action sequence (tau included) from the start of the
	// product to the mismatching pair.
	Trace []string
	// Reason says what the mismatch is.
	Reason string
}

func (c *Counterexample) String() string {
	t := strings.Join(c.Trace, "·")
	if t == "" {
		t = "ε"
	}
	return fmt.Sprintf("after %s: %s", t, c.Reason)
}

// Result is the outcome of one on-the-fly check.
type Result struct {
	// Equivalent is the verdict.
	Equivalent bool
	// Pairs is the number of distinct (product state, spec state) pairs
	// interned before the game ended — the lazy analogue of the product
	// state count, and the measure of how early an early exit was.
	Pairs int
	// Depth is the number of BFS levels explored.
	Depth int
	// Counterexample describes the first mismatch; nil when equivalent.
	Counterexample *Counterexample
}

// Eligible reports whether spec can serve as the deterministic side of
// the on-the-fly game for rel: action-deterministic everywhere, tau-free
// unless the game is strong, and free of the saturation epsilon. A nil
// error means Check will not fall over the spec's shape.
func Eligible(spec *fsp.FSP, rel Rel) error {
	if spec == nil || spec.NumStates() == 0 {
		return errors.New("otf: spec has no states")
	}
	for s := 0; s < spec.NumStates(); s++ {
		arcs := spec.Arcs(fsp.State(s))
		for i, a := range arcs {
			if a.Act == fsp.Tau && rel != Strong {
				return fmt.Errorf("otf: spec state %d has a tau transition; the %s game needs a tau-free deterministic spec", s, rel)
			}
			if spec.Alphabet().Name(a.Act) == fsp.EpsilonName {
				return fmt.Errorf("otf: spec transitions on the saturation epsilon %q", fsp.EpsilonName)
			}
			// Arcs are (action, target)-sorted and deduplicated, so a
			// repeated action means two distinct targets.
			if i > 0 && arcs[i-1].Act == a.Act {
				return fmt.Errorf("otf: spec state %d is nondeterministic on %q", s, spec.Alphabet().Name(a.Act))
			}
		}
	}
	return nil
}

// Check decides whether net rel spec by the on-the-fly game. The spec
// must satisfy Eligible for rel; the network is explored lazily and the
// call returns as soon as a mismatch is found. Cancelling the context
// stops the exploration at the next level barrier.
func Check(ctx context.Context, net *compose.Network, spec *fsp.FSP, rel Rel, opts Options) (*Result, error) {
	switch rel {
	case Strong, Weak, Congruence:
	default:
		return nil, fmt.Errorf("otf: relation %d not covered by the on-the-fly game", rel)
	}
	if err := Eligible(spec, rel); err != nil {
		return nil, err
	}
	e, err := net.Expand()
	if err != nil {
		return nil, err
	}
	s := newSession(e, spec, rel)
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return s.explore(ctx, workers)
}

// nShards is the visited-table shard count; pair ids carry the shard in
// their low bits.
const (
	shardBits = 6
	nShards   = 1 << shardBits
)

// parentLink records how a pair was first discovered, for trace
// reconstruction: the discovering pair and the product label taken.
// The root pair has parent -1.
type parentLink struct {
	parent int32
	label  int32
}

// shard is one slice of the hash-consed visited table. ids maps the
// packed (state vector, spec state) key to the pair id; parents is
// indexed by the id's local part.
type shard struct {
	mu      sync.Mutex
	index   int32
	ids     map[string]int32
	parents []parentLink
}

// pairRec is one frontier entry: an interned pair with its state vector
// kept alongside so expansion never reads the visited table.
type pairRec struct {
	id  int32
	q   int32
	vec []int32
}

// failure is the first mismatch found, published through an atomic
// pointer so every worker stops on the next pair.
type failure struct {
	at     int32
	reason string
}

// session holds the translated spec and the shared exploration state.
type session struct {
	e   *compose.Expansion
	rel Rel
	k   int

	// labelNames extends the expansion's dense labels with actions only
	// the spec performs; numLabels is its length and words the bitset
	// width over it.
	labelNames []string
	numLabels  int
	words      int

	// specDelta[q*numLabels+l] is the unique l-successor of spec state q
	// or -1; specEnabled is the per-state enabled-label bitset (stride
	// words). For the weak games the tau bit is never set.
	specDelta   []int32
	specEnabled []uint64

	// Extension signatures as bitsets over the interned extension-variable
	// names (stride extWords): specExt per spec state, compExt per
	// component state (nil = empty extension).
	extWords int
	extNames []string
	specExt  [][]uint64
	compExt  [][][]uint64

	specStart int32
	rootID    int32
	shards    [nShards]shard
	pairs     atomic.Int64
	fail      atomic.Pointer[failure]
}

func newSession(e *compose.Expansion, spec *fsp.FSP, rel Rel) *session {
	s := &session{e: e, rel: rel, k: e.K(), specStart: int32(spec.Start())}

	// Dense labels: the network's, plus any spec action missing from
	// them. Spec-only labels are never produced by the product, so pairs
	// whose spec state enables one fail the enabledness check — exactly
	// the right verdict.
	s.labelNames = append([]string(nil), e.Labels...)
	labelOf := make(map[string]int32, len(s.labelNames))
	for i, nm := range s.labelNames {
		labelOf[nm] = int32(i)
	}
	specLabel := make([]int32, spec.Alphabet().Len())
	specLabel[fsp.Tau] = 0
	for a := 1; a < spec.Alphabet().Len(); a++ {
		nm := spec.Alphabet().Name(fsp.Action(a))
		id, ok := labelOf[nm]
		if !ok {
			id = int32(len(s.labelNames))
			s.labelNames = append(s.labelNames, nm)
			labelOf[nm] = id
		}
		specLabel[a] = id
	}
	s.numLabels = len(s.labelNames)
	s.words = (s.numLabels + 63) / 64

	n := spec.NumStates()
	s.specDelta = make([]int32, n*s.numLabels)
	for i := range s.specDelta {
		s.specDelta[i] = -1
	}
	s.specEnabled = make([]uint64, n*s.words)
	for q := 0; q < n; q++ {
		enabled := s.specEnabled[q*s.words : (q+1)*s.words]
		for _, a := range spec.Arcs(fsp.State(q)) {
			l := specLabel[a.Act]
			s.specDelta[q*s.numLabels+int(l)] = int32(a.To)
			setBit(enabled, l)
		}
	}

	// Extension-name interning: bit per distinct variable name across the
	// components and the spec, so product-extension unions are word ORs.
	extOf := map[string]int32{}
	internExt := func(nm string) int32 {
		id, ok := extOf[nm]
		if !ok {
			id = int32(len(s.extNames))
			s.extNames = append(s.extNames, nm)
			extOf[nm] = id
		}
		return id
	}
	for q := 0; q < n; q++ {
		for _, id := range spec.Ext(fsp.State(q)).IDs() {
			internExt(spec.Vars().Name(id))
		}
	}
	for i := range e.Exts {
		for _, names := range e.Exts[i] {
			for _, nm := range names {
				internExt(nm)
			}
		}
	}
	s.extWords = (len(s.extNames) + 63) / 64
	if s.extWords == 0 {
		s.extWords = 1
	}
	s.specExt = make([][]uint64, n)
	for q := 0; q < n; q++ {
		m := make([]uint64, s.extWords)
		for _, id := range spec.Ext(fsp.State(q)).IDs() {
			setBit(m, extOf[spec.Vars().Name(id)])
		}
		s.specExt[q] = m
	}
	s.compExt = make([][][]uint64, len(e.Exts))
	for i := range e.Exts {
		s.compExt[i] = make([][]uint64, len(e.Exts[i]))
		for st, names := range e.Exts[i] {
			if len(names) == 0 {
				continue
			}
			m := make([]uint64, s.extWords)
			for _, nm := range names {
				setBit(m, extOf[nm])
			}
			s.compExt[i][st] = m
		}
	}

	for i := range s.shards {
		s.shards[i].index = int32(i)
		s.shards[i].ids = map[string]int32{}
	}
	return s
}

// intern hash-conses the pair (vec, q), recording its discovery parent on
// first sight. buf is caller scratch of 4*(k+1) bytes.
func (s *session) intern(buf []byte, vec []int32, q, parent, label int32) (id int32, fresh bool) {
	putKey(buf, vec, q)
	sh := &s.shards[fnv1a(buf)&(nShards-1)]
	sh.mu.Lock()
	if id, ok := sh.ids[string(buf)]; ok {
		sh.mu.Unlock()
		return id, false
	}
	id = int32(len(sh.parents))<<shardBits | sh.index
	sh.ids[string(buf)] = id
	sh.parents = append(sh.parents, parentLink{parent: parent, label: label})
	sh.mu.Unlock()
	s.pairs.Add(1)
	return id, true
}

// trace reconstructs the label path from the root to pair id. Called only
// after the workers have stopped.
func (s *session) trace(id int32) []string {
	var labels []int32
	for id >= 0 {
		p := s.shards[id&(nShards-1)].parents[id>>shardBits]
		if p.label >= 0 {
			labels = append(labels, p.label)
		}
		id = p.parent
	}
	out := make([]string, len(labels))
	for i, l := range labels {
		out[len(labels)-1-i] = s.labelNames[l]
	}
	return out
}

// worker is the per-goroutine scratch: bitsets, key buffers, the
// closure-walk queue and the next-frontier buffer.
type worker struct {
	s       *session
	succ    []int32
	walkSuc []int32
	key     []byte
	vkey    []byte
	ext     []uint64
	direct  []uint64
	missing []uint64
	seen    map[string]struct{}
	queue   []int32 // closure-walk arena: vectors flat, stride s.k
	next    []pairRec
}

func (s *session) newWorker() *worker {
	return &worker{
		s:       s,
		succ:    make([]int32, s.k),
		walkSuc: make([]int32, s.k),
		key:     make([]byte, 4*(s.k+1)),
		vkey:    make([]byte, 4*s.k),
		ext:     make([]uint64, s.extWords),
		direct:  make([]uint64, s.words),
		missing: make([]uint64, s.words),
		seen:    map[string]struct{}{},
	}
}

// explore runs the level-synchronized parallel BFS over forced pairs.
func (s *session) explore(ctx context.Context, workers int) (*Result, error) {
	rootVec := append([]int32(nil), s.e.Starts...)
	rootQ := s.specStart
	buf := make([]byte, 4*(s.k+1))
	s.rootID, _ = s.intern(buf, rootVec, rootQ, -1, -1)
	frontier := []pairRec{{id: s.rootID, q: rootQ, vec: rootVec}}

	pool := make([]*worker, workers)
	for i := range pool {
		pool[i] = s.newWorker()
	}

	const chunk = 32
	depth := 0
	for len(frontier) > 0 && s.fail.Load() == nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var cursor atomic.Int64
		var wg sync.WaitGroup
		for wi := 0; wi < workers; wi++ {
			wg.Add(1)
			go func(w *worker) {
				defer wg.Done()
				w.next = w.next[:0]
				for s.fail.Load() == nil {
					hi := cursor.Add(chunk)
					lo := hi - chunk
					if lo >= int64(len(frontier)) {
						return
					}
					if hi > int64(len(frontier)) {
						hi = int64(len(frontier))
					}
					for _, rec := range frontier[lo:hi] {
						if f := w.process(rec); f != nil {
							s.fail.CompareAndSwap(nil, f)
							return
						}
					}
				}
			}(pool[wi])
		}
		wg.Wait()
		depth++
		frontier = frontier[:0]
		for _, w := range pool {
			frontier = append(frontier, w.next...)
		}
	}

	res := &Result{Pairs: int(s.pairs.Load()), Depth: depth}
	if f := s.fail.Load(); f != nil {
		res.Counterexample = &Counterexample{Trace: s.trace(f.at), Reason: f.reason}
	} else {
		res.Equivalent = true
	}
	return res, nil
}

// process runs the local bisimulation-game checks of one pair and
// enqueues its undiscovered forced successors. A non-nil return is the
// distinguishing mismatch.
func (w *worker) process(rec pairRec) *failure {
	s := w.s

	// Extensions must agree (the initial-partition condition).
	clearWords(w.ext)
	for i, st := range rec.vec {
		if m := s.compExt[i][st]; m != nil {
			orWords(w.ext, m)
		}
	}
	if !equalWords(w.ext, s.specExt[rec.q]) {
		return &failure{at: rec.id, reason: fmt.Sprintf(
			"the network state has extension {%s}; the spec state has {%s}",
			strings.Join(w.extNames(w.ext), ","), strings.Join(w.extNames(s.specExt[rec.q]), ","))}
	}

	// Every product move must be answered by the spec.
	clearWords(w.direct)
	base := int(rec.q) * s.numLabels
	var fail *failure
	s.e.Succ(rec.vec, w.succ, func(label int32, succ []int32) bool {
		q2 := rec.q
		if label == 0 && s.rel != Strong {
			// The spec stands still on a product tau — except at the ≈ᶜ
			// root, where an initial tau needs an answering spec tau that
			// a tau-free spec cannot provide.
			if s.rel == Congruence && rec.id == s.rootID {
				fail = &failure{at: rec.id, reason: "the network starts with a tau move; the tau-free spec violates the ≈ᶜ root condition"}
				return false
			}
		} else {
			setBit(w.direct, label)
			q2 = s.specDelta[base+int(label)]
			if q2 < 0 {
				fail = &failure{at: rec.id, reason: fmt.Sprintf("the network performs %q; the spec state cannot", s.labelNames[label])}
				return false
			}
		}
		id, fresh := s.intern(w.key, succ, q2, rec.id, label)
		if fresh {
			vec := append([]int32(nil), succ...)
			w.next = append(w.next, pairRec{id: id, q: q2, vec: vec})
		}
		return true
	})
	if fail != nil {
		return fail
	}

	// Every spec move must be (weakly) matched by the product. The weak
	// games walk the product's tau-closure lazily, but only for the
	// obligations the direct moves left open.
	copy(w.missing, s.specEnabled[int(rec.q)*s.words:(int(rec.q)+1)*s.words])
	andNotWords(w.missing, w.direct)
	if s.rel != Strong && !zeroWords(w.missing) {
		w.walkMissing(rec.vec)
	}
	if !zeroWords(w.missing) {
		how := ""
		if s.rel != Strong {
			how = " weakly"
		}
		return &failure{at: rec.id, reason: fmt.Sprintf(
			"the spec requires %q; the network cannot%s perform it", s.labelNames[firstBit(w.missing)], how)}
	}
	return nil
}

// walkMissing clears from w.missing every label weakly enabled from vec:
// a BFS over the product's tau successors (component taus and handshakes
// alike), collecting direct observables of each closure member, stopping
// the moment the obligations are met. The walk only ever visits states
// the main BFS reaches through the same tau edges, so laziness is
// preserved: an early exit stays early.
//
// The queue is a per-worker flat arena (stride k), so the walk allocates
// only the seen-set keys of genuinely new closure members, amortized by
// the arena's growth. Exhaustive walks are deliberately not memoized:
// obligations are usually met within a few steps (the early exit), a
// complete weak-enabled set would force the whole closure to be swept
// per state, and a walk that exhausts without meeting its obligations is
// a mismatch — the game ends there, so the memo would never be read.
func (w *worker) walkMissing(vec []int32) {
	s := w.s
	k := s.k
	clear(w.seen)
	putVec(w.vkey, vec)
	w.seen[string(w.vkey)] = struct{}{}
	w.queue = append(w.queue[:0], vec...)
	for i := 0; i*k < len(w.queue); i++ {
		// cur stays valid if the arena reallocates mid-iteration: the old
		// backing array is untouched and Succ copies it per emit.
		cur := w.queue[i*k : (i+1)*k]
		done := !s.e.Succ(cur, w.walkSuc, func(label int32, succ []int32) bool {
			if label == 0 {
				putVec(w.vkey, succ)
				if _, ok := w.seen[string(w.vkey)]; !ok {
					w.seen[string(w.vkey)] = struct{}{}
					w.queue = append(w.queue, succ...)
				}
			} else if hasBit(w.missing, label) {
				clearBit(w.missing, label)
				if zeroWords(w.missing) {
					return false
				}
			}
			return true
		})
		if done {
			return
		}
	}
}

// extNames renders an extension bitset for diagnostics.
func (w *worker) extNames(m []uint64) []string {
	var out []string
	for i, nm := range w.s.extNames {
		if hasBit(m, int32(i)) {
			out = append(out, nm)
		}
	}
	sort.Strings(out)
	return out
}

// --- small bitset and key helpers -----------------------------------

func setBit(b []uint64, i int32)   { b[i>>6] |= 1 << (uint(i) & 63) }
func clearBit(b []uint64, i int32) { b[i>>6] &^= 1 << (uint(i) & 63) }
func hasBit(b []uint64, i int32) bool {
	return b[i>>6]&(1<<(uint(i)&63)) != 0
}

func clearWords(b []uint64) {
	for i := range b {
		b[i] = 0
	}
}

func orWords(dst, src []uint64) {
	for i, w := range src {
		dst[i] |= w
	}
}

func andNotWords(dst, src []uint64) {
	for i, w := range src {
		dst[i] &^= w
	}
}

func zeroWords(b []uint64) bool {
	for _, w := range b {
		if w != 0 {
			return false
		}
	}
	return true
}

func equalWords(a, b []uint64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func firstBit(b []uint64) int32 {
	for i, w := range b {
		if w != 0 {
			return int32(i<<6 + bits.TrailingZeros64(w))
		}
	}
	return -1
}

func putVec(buf []byte, vec []int32) {
	for i, s := range vec {
		buf[4*i] = byte(s)
		buf[4*i+1] = byte(s >> 8)
		buf[4*i+2] = byte(s >> 16)
		buf[4*i+3] = byte(s >> 24)
	}
}

func putKey(buf []byte, vec []int32, q int32) {
	putVec(buf, vec)
	i := 4 * len(vec)
	buf[i] = byte(q)
	buf[i+1] = byte(q >> 8)
	buf[i+2] = byte(q >> 16)
	buf[i+3] = byte(q >> 24)
}

func fnv1a(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}
