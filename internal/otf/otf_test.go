package otf

import (
	"context"
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"

	"ccs/internal/compose"
	"ccs/internal/core"
	"ccs/internal/fsp"
	"ccs/internal/gen"
)

var bg = context.Background()

// checkBoth runs the game single- and multi-worker on both schedulers and
// requires agreement; the single-worker verdict is returned. Every test
// that goes through it is therefore also a work-stealing vs level-barrier
// differential.
func checkBoth(t *testing.T, net *compose.Network, spec *fsp.FSP, rel Rel) *Result {
	t.Helper()
	seq, err := Check(bg, net, spec, rel, Options{Workers: 1})
	if err != nil {
		t.Fatalf("Check(workers=1): %v", err)
	}
	par, err := Check(bg, net, spec, rel, Options{Workers: 4})
	if err != nil {
		t.Fatalf("Check(workers=4): %v", err)
	}
	bar, err := Check(bg, net, spec, rel, Options{Workers: 4, Scheduler: LevelBarrier})
	if err != nil {
		t.Fatalf("Check(workers=4, level-barrier): %v", err)
	}
	if seq.Equivalent != par.Equivalent {
		t.Fatalf("worker counts disagree: 1 worker = %v, 4 workers = %v", seq.Equivalent, par.Equivalent)
	}
	if bar.Equivalent != seq.Equivalent {
		t.Fatalf("schedulers disagree: work-stealing = %v, level-barrier = %v", seq.Equivalent, bar.Equivalent)
	}
	return seq
}

// TestRelayAgainstCounter: the buffer-law gallery decided on the fly, on
// the raw (unminimized) networks — the game does not need minimized
// components to be correct, only to be fast.
func TestRelayAgainstCounter(t *testing.T) {
	for _, n := range []int{2, 3, 4} {
		res := checkBoth(t, gen.RelayNetwork(n, 2), gen.CounterSpec(n), Weak)
		if !res.Equivalent {
			t.Errorf("relay-%d: on-the-fly says ≉, want ≈ (counterexample: %v)", n, res.Counterexample)
		}
	}
	res := checkBoth(t, gen.LossyRelayNetwork(3, 2), gen.CounterSpec(3), Weak)
	if res.Equivalent {
		t.Error("lossy relay accepted")
	}
	if res.Counterexample == nil || res.Counterexample.Reason == "" {
		t.Error("inequivalent verdict without a counterexample")
	}
}

// TestTokenRing: the ring ≈ the work loop; the buggy ring is rejected
// with a counterexample whose trace reaches the dropping station.
func TestTokenRing(t *testing.T) {
	if res := checkBoth(t, gen.TokenRing(4), gen.TokenRingSpec(), Weak); !res.Equivalent {
		t.Errorf("token-ring-4 rejected: %v", res.Counterexample)
	}
	res := checkBoth(t, gen.BuggyTokenRing(4), gen.TokenRingSpec(), Weak)
	if res.Equivalent {
		t.Error("buggy token ring accepted")
	}
	if res.Counterexample == nil {
		t.Fatal("no counterexample")
	}
	if len(res.Counterexample.Trace) == 0 {
		t.Error("counterexample trace is empty; the drop needs at least one work+pass")
	}
}

// TestDifferentialRandomWeak cross-validates the weak game against the
// flat saturate-and-partition decider on the random network suite, with
// specs drawn both from quotients of the products (positives, when they
// happen to be deterministic) and from unrelated deterministic processes
// (mostly negatives).
func TestDifferentialRandomWeak(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ran := 0
	for i := 0; i < 60; i++ {
		net := gen.RandomNetwork(rng)
		flat, err := net.FSP()
		if err != nil {
			t.Fatal(err)
		}
		var specs []*fsp.FSP
		if min, _, err := core.QuotientWeak(flat); err == nil {
			specs = append(specs, min)
		}
		specs = append(specs, gen.RandomDeterministic(rng, 1+rng.Intn(4), 2))
		for _, spec := range specs {
			if Eligible(spec, Weak) != nil {
				continue
			}
			ran++
			want, err := core.WeakEquivalent(flat, spec)
			if err != nil {
				t.Fatal(err)
			}
			res := checkBoth(t, net, spec, Weak)
			if res.Equivalent != want {
				t.Fatalf("net %d (%s) vs %s: otf=%v flat=%v\ncounterexample: %v",
					i, net, spec, res.Equivalent, want, res.Counterexample)
			}
		}
	}
	if ran < 30 {
		t.Fatalf("only %d eligible differential cases ran; suite too thin", ran)
	}
}

// TestDifferentialRandomStrongAndCongruence: same harness for the strong
// and congruence games.
func TestDifferentialRandomStrongAndCongruence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ranStrong, ranCong := 0, 0
	for i := 0; i < 60; i++ {
		net := gen.RandomNetwork(rng)
		flat, err := net.FSP()
		if err != nil {
			t.Fatal(err)
		}
		strongSpecs := []*fsp.FSP{gen.RandomDeterministic(rng, 1+rng.Intn(4), 2)}
		if min, _, err := core.QuotientStrong(flat); err == nil {
			strongSpecs = append(strongSpecs, min)
		}
		for _, spec := range strongSpecs {
			if Eligible(spec, Strong) == nil {
				ranStrong++
				want, err := core.StrongEquivalent(flat, spec)
				if err != nil {
					t.Fatal(err)
				}
				if res := checkBoth(t, net, spec, Strong); res.Equivalent != want {
					t.Fatalf("net %d strong vs %s: otf=%v flat=%v", i, spec, res.Equivalent, want)
				}
			}
			if Eligible(spec, Congruence) == nil {
				ranCong++
				want, err := core.ObservationCongruent(flat, spec)
				if err != nil {
					t.Fatal(err)
				}
				if res := checkBoth(t, net, spec, Congruence); res.Equivalent != want {
					t.Fatalf("net %d congruence vs %s: otf=%v flat=%v", i, spec, res.Equivalent, want)
				}
			}
		}
	}
	if ranStrong < 20 || ranCong < 20 {
		t.Fatalf("differential coverage too thin: strong=%d congruence=%d", ranStrong, ranCong)
	}
}

// TestCongruenceRootCondition: tau·work ≈ work but not ≈ᶜ — the root
// condition must separate the games.
func TestCongruenceRootCondition(t *testing.T) {
	b := fsp.NewBuilder("tau-work")
	b.AddStates(2)
	b.ArcName(0, fsp.TauName, 1)
	b.ArcName(1, "work", 1)
	b.Accept(0)
	b.Accept(1)
	net := compose.New("tau-first", b.MustBuild())
	spec := gen.TokenRingSpec() // the plain work loop
	if res := checkBoth(t, net, spec, Weak); !res.Equivalent {
		t.Errorf("tau·work ≉ work-loop: %v", res.Counterexample)
	}
	if res := checkBoth(t, net, spec, Congruence); res.Equivalent {
		t.Error("tau·work ≈ᶜ work-loop accepted; the root condition was lost")
	}
}

// TestExtensionMismatch: a pair with differing extensions must fail even
// when the transition structure matches.
func TestExtensionMismatch(t *testing.T) {
	b := fsp.NewBuilder("half-accepting")
	b.AddStates(2)
	b.ArcName(0, "a", 1)
	b.ArcName(1, "a", 0)
	b.Accept(0) // state 1 does not accept
	p := b.MustBuild()

	b2 := fsp.NewBuilder("all-accepting")
	b2.AddStates(2)
	b2.ArcName(0, "a", 1)
	b2.ArcName(1, "a", 0)
	b2.Accept(0)
	b2.Accept(1)
	spec := b2.MustBuild()

	res := checkBoth(t, compose.New("halves", p), spec, Weak)
	if res.Equivalent {
		t.Error("extension mismatch accepted")
	}
}

// TestEligible enumerates the spec shapes the game refuses.
func TestEligible(t *testing.T) {
	tau := fsp.NewBuilder("has-tau")
	tau.AddStates(2)
	tau.ArcName(0, fsp.TauName, 1)
	tauSpec := tau.MustBuild()
	if err := Eligible(tauSpec, Weak); err == nil {
		t.Error("tau spec eligible for the weak game")
	}
	if err := Eligible(tauSpec, Strong); err != nil {
		t.Errorf("deterministic tau spec rejected by the strong game: %v", err)
	}

	nd := fsp.NewBuilder("nondet")
	nd.AddStates(3)
	nd.ArcName(0, "a", 1)
	nd.ArcName(0, "a", 2)
	if err := Eligible(nd.MustBuild(), Weak); err == nil {
		t.Error("nondeterministic spec eligible")
	}

	eps := fsp.NewBuilder("eps")
	eps.AddStates(2)
	eps.ArcName(0, fsp.EpsilonName, 1)
	if err := Eligible(eps.MustBuild(), Weak); err == nil {
		t.Error("epsilon spec eligible")
	}

	if err := Eligible(nil, Weak); err == nil {
		t.Error("nil spec eligible")
	}
}

// TestEarlyExitVisitsFewPairs: on the buggy token ring the game must stop
// long before exhausting even the raw product, and the spec-side action
// the ring cannot deliver must be named in the counterexample.
func TestEarlyExitVisitsFewPairs(t *testing.T) {
	const n = 6
	net := gen.BuggyTokenRing(n)
	idx, _, err := net.Index()
	if err != nil {
		t.Fatal(err)
	}
	res := checkBoth(t, net, gen.TokenRingSpec(), Weak)
	if res.Equivalent {
		t.Fatal("buggy ring accepted")
	}
	if res.Pairs >= idx.N() {
		t.Errorf("game interned %d pairs, flat product has only %d states — no early exit", res.Pairs, idx.N())
	}
}

// TestCancellation: a cancelled context aborts the exploration.
func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(bg)
	cancel()
	if _, err := Check(ctx, gen.TokenRing(4), gen.TokenRingSpec(), Weak, Options{Workers: 1}); err == nil {
		t.Error("cancelled context produced no error")
	}
}

// pollCtx reports cancellation only from its n-th Err poll onward. The
// entry check in explore consumes the first poll, so with after=1 the
// cancellation is observed strictly mid-exploration — deterministically
// exercising the in-loop poll sites (the per-pollEvery check on busy
// workers, the idle loop of thieves, the per-level check of the barrier)
// rather than the entry short-circuit.
type pollCtx struct {
	context.Context
	calls atomic.Int64
	after int64
}

func (c *pollCtx) Err() error {
	if c.calls.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}

// TestCancellationMidRun: a context that goes bad while the game is in
// flight stops both schedulers at any worker count with ctx's error, not
// a verdict.
func TestCancellationMidRun(t *testing.T) {
	for _, sched := range []Scheduler{WorkStealing, LevelBarrier} {
		for _, workers := range []int{1, 4} {
			ctx := &pollCtx{Context: bg, after: 1}
			res, err := Check(ctx, gen.TokenRing(6), gen.TokenRingSpec(), Weak,
				Options{Workers: workers, Scheduler: sched})
			if !errors.Is(err, context.Canceled) {
				t.Errorf("%v/%d workers: err=%v (res=%v), want context.Canceled", sched, workers, err, res)
			}
		}
	}
}

// TestSchedulerDifferentialGallery: both schedulers decide every gallery
// exhibit identically — including the determinized-spec routes — with a
// counterexample on every negative, and on full sweeps (the positives,
// where no early exit can cut the search) they intern the exact same
// number of pairs: the reachable pair set is scheduler-independent.
func TestSchedulerDifferentialGallery(t *testing.T) {
	for _, e := range gen.NetworkGallery() {
		ws, err := Check(bg, e.Net, e.Spec, Weak, Options{Workers: 8, Scheduler: WorkStealing})
		if err != nil {
			t.Fatalf("%s work-stealing: %v", e.Name, err)
		}
		lb, err := Check(bg, e.Net, e.Spec, Weak, Options{Workers: 8, Scheduler: LevelBarrier})
		if err != nil {
			t.Fatalf("%s level-barrier: %v", e.Name, err)
		}
		if ws.Equivalent != e.Weak || lb.Equivalent != e.Weak {
			t.Errorf("%s: work-stealing=%v level-barrier=%v, want %v",
				e.Name, ws.Equivalent, lb.Equivalent, e.Weak)
		}
		if ws.Determinized != lb.Determinized {
			t.Errorf("%s: determinization disagrees: work-stealing=%v level-barrier=%v",
				e.Name, ws.Determinized, lb.Determinized)
		}
		for _, r := range []*Result{ws, lb} {
			if r.Workers != 8 {
				t.Errorf("%s: result reports %d workers, want 8", e.Name, r.Workers)
			}
			if r.Explored > r.Pairs || r.Explored <= 0 {
				t.Errorf("%s: explored %d of %d interned pairs", e.Name, r.Explored, r.Pairs)
			}
			if r.Utilization <= 0 || r.Utilization > 1 {
				t.Errorf("%s: utilization %v outside (0,1]", e.Name, r.Utilization)
			}
			if !e.Weak && (r.Counterexample == nil || r.Counterexample.Reason == "") {
				t.Errorf("%s: inequivalent verdict without a counterexample", e.Name)
			}
		}
		if e.Weak && ws.Pairs != lb.Pairs {
			t.Errorf("%s: full sweeps intern different pair counts: work-stealing=%d level-barrier=%d",
				e.Name, ws.Pairs, lb.Pairs)
		}
	}
}

// TestUncoveredRelation: the package rejects relations outside the game.
func TestUncoveredRelation(t *testing.T) {
	if _, err := Check(bg, gen.TokenRing(2), gen.TokenRingSpec(), Rel(99), Options{}); err == nil {
		t.Error("unknown relation accepted")
	}
}
