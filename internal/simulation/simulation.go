// Package simulation implements the simulation preorder and simulation
// equivalence on finite state processes, the one-directional counterpart of
// the paper's strong bisimulation: q simulates p when every move of p can
// be tracked by q, without the reverse obligation. Simulation equivalence
// (mutual similarity) sits strictly between strong bisimulation and trace
// equivalence, completing the spectrum the paper studies:
//
//	~  ⊆  simulation equivalence  ⊆  ≈_1
//
// The computation is the standard greatest-fixed-point refinement: start
// from the extension-compatible relation and delete pairs (p, q) for which
// some move of p has no matching move of q, until stable. O(n^2 m)
// worst case, polynomial like the paper's partitioning algorithms.
package simulation

import (
	"fmt"

	"ccs/internal/fsp"
)

// Preorder computes the largest simulation relation on f's states as a
// boolean matrix: rel[p][q] == true means q simulates p (p ≤ q). Tau is
// treated as an ordinary action (strong simulation), mirroring the strong
// equivalence convention of the core package.
func Preorder(f *fsp.FSP) [][]bool {
	n := f.NumStates()
	rel := make([][]bool, n)
	for p := 0; p < n; p++ {
		rel[p] = make([]bool, n)
		for q := 0; q < n; q++ {
			// Initial over-approximation: extensions must agree.
			rel[p][q] = f.Ext(fsp.State(p)) == f.Ext(fsp.State(q))
		}
	}
	// Refine to the greatest fixed point.
	for changed := true; changed; {
		changed = false
		for p := 0; p < n; p++ {
			for q := 0; q < n; q++ {
				if !rel[p][q] {
					continue
				}
				if !moveMatch(f, rel, fsp.State(p), fsp.State(q)) {
					rel[p][q] = false
					changed = true
				}
			}
		}
	}
	return rel
}

// moveMatch reports whether every move of p is matched by a move of q into
// a simulating state.
func moveMatch(f *fsp.FSP, rel [][]bool, p, q fsp.State) bool {
	for _, a := range f.Arcs(p) {
		matched := false
		for _, to := range f.Dest(q, a.Act) {
			if rel[a.To][to] {
				matched = true
				break
			}
		}
		if !matched {
			return false
		}
	}
	return true
}

// SimulatesStates reports whether q simulates p within f.
func SimulatesStates(f *fsp.FSP, p, q fsp.State) bool {
	return Preorder(f)[p][q]
}

// Simulates reports whether g's start state simulates f's start state.
func Simulates(f, g *fsp.FSP) (bool, error) {
	u, off, err := fsp.DisjointUnion(f, g)
	if err != nil {
		return false, fmt.Errorf("simulation: %w", err)
	}
	return SimulatesStates(u, f.Start(), off+g.Start()), nil
}

// Equivalent reports simulation equivalence (mutual similarity) of the
// start states of f and g.
func Equivalent(f, g *fsp.FSP) (bool, error) {
	u, off, err := fsp.DisjointUnion(f, g)
	if err != nil {
		return false, fmt.Errorf("simulation: %w", err)
	}
	rel := Preorder(u)
	p, q := f.Start(), off+g.Start()
	return rel[p][q] && rel[q][p], nil
}

// WeakPreorder computes the largest weak simulation on f's states: moves
// are matched up to tau (p's weak sigma-derivatives tracked by q's weak
// sigma-derivatives, and p's tau-closure by q's tau-closure). Implemented
// by running the strong preorder on the saturated FSP of Theorem 4.1(a).
func WeakPreorder(f *fsp.FSP) ([][]bool, error) {
	sat, _, err := fsp.Saturate(f)
	if err != nil {
		return nil, fmt.Errorf("simulation: %w", err)
	}
	return Preorder(sat), nil
}

// WeakSimulates reports whether g's start state weakly simulates f's.
func WeakSimulates(f, g *fsp.FSP) (bool, error) {
	u, off, err := fsp.DisjointUnion(f, g)
	if err != nil {
		return false, fmt.Errorf("simulation: %w", err)
	}
	rel, err := WeakPreorder(u)
	if err != nil {
		return false, err
	}
	return rel[f.Start()][off+g.Start()], nil
}
