package simulation

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"ccs/internal/core"
	"ccs/internal/fsp"
	"ccs/internal/gen"
	"ccs/internal/kequiv"
)

// branchingPair: a(b+c) and ab+ac. The first simulates the second and not
// vice versa — the canonical asymmetry.
func branching() (*fsp.FSP, *fsp.FSP) {
	b1 := fsp.NewBuilder("a(b+c)")
	b1.AddStates(4)
	b1.ArcName(0, "a", 1)
	b1.ArcName(1, "b", 2)
	b1.ArcName(1, "c", 3)
	b2 := fsp.NewBuilder("ab+ac")
	b2.AddStates(5)
	b2.ArcName(0, "a", 1)
	b2.ArcName(0, "a", 2)
	b2.ArcName(1, "b", 3)
	b2.ArcName(2, "c", 4)
	return b1.MustBuild(), b2.MustBuild()
}

func TestSimulationAsymmetry(t *testing.T) {
	p, q := branching()
	// a(b+c) simulates ab+ac: each committed branch is tracked by the
	// uncommitted state.
	qp, err := Simulates(q, p)
	if err != nil {
		t.Fatal(err)
	}
	if !qp {
		t.Errorf("a(b+c) must simulate ab+ac")
	}
	// But ab+ac does NOT simulate a(b+c): the (b+c) state has no match.
	pq, err := Simulates(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if pq {
		t.Errorf("ab+ac must not simulate a(b+c)")
	}
	eq, err := Equivalent(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Errorf("the pair must not be simulation equivalent")
	}
}

func TestSimulationReflexiveOnIdentical(t *testing.T) {
	p := gen.Chain(3)
	q := gen.Chain(3)
	eq, err := Equivalent(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Errorf("identical chains must be simulation equivalent")
	}
}

func TestSimulationRespectsExtensions(t *testing.T) {
	b := fsp.NewBuilder("")
	b.AddStates(2)
	b.Accept(0)
	f := b.MustBuild()
	if SimulatesStates(f, 0, 1) || SimulatesStates(f, 1, 0) {
		t.Errorf("different extensions cannot simulate")
	}
}

func TestWeakSimulation(t *testing.T) {
	// tau.a is weakly simulation-equivalent to a.
	b1 := fsp.NewBuilder("tau.a")
	b1.AddStates(3)
	b1.ArcName(0, fsp.TauName, 1)
	b1.ArcName(1, "a", 2)
	p := b1.MustBuild()
	b2 := fsp.NewBuilder("a")
	b2.AddStates(2)
	b2.ArcName(0, "a", 1)
	q := b2.MustBuild()

	fwd, err := WeakSimulates(p, q)
	if err != nil {
		t.Fatal(err)
	}
	bwd, err := WeakSimulates(q, p)
	if err != nil {
		t.Fatal(err)
	}
	if !fwd || !bwd {
		t.Errorf("tau.a and a must weakly simulate each other: %v %v", fwd, bwd)
	}
	// Strongly, a does not simulate tau.a (the tau move is unmatched).
	strong, err := Simulates(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if strong {
		t.Errorf("a must not strongly simulate tau.a")
	}
}

// genProc mirrors the core package's generator.
type genProc struct{ f *fsp.FSP }

// Generate implements quick.Generator.
func (genProc) Generate(rng *rand.Rand, size int) reflect.Value {
	n := 1 + rng.Intn(6)
	b := fsp.NewBuilder("q")
	b.AddStates(n)
	b.SetStart(fsp.State(rng.Intn(n)))
	names := []string{"a", "b"}
	arcs := rng.Intn(3 * n)
	for i := 0; i < arcs; i++ {
		b.ArcName(fsp.State(rng.Intn(n)), names[rng.Intn(len(names))], fsp.State(rng.Intn(n)))
	}
	for s := 0; s < n; s++ {
		if rng.Intn(2) == 0 {
			b.Accept(fsp.State(s))
		}
	}
	return reflect.ValueOf(genProc{f: b.MustBuild()})
}

// Property: the preorder is reflexive and transitive, and strong
// bisimilarity implies mutual similarity.
func TestQuickPreorderLaws(t *testing.T) {
	prop := func(g genProc) bool {
		f := g.f
		rel := Preorder(f)
		n := f.NumStates()
		for p := 0; p < n; p++ {
			if !rel[p][p] {
				return false
			}
			for q := 0; q < n; q++ {
				if !rel[p][q] {
					continue
				}
				for r := 0; r < n; r++ {
					if rel[q][r] && !rel[p][r] {
						return false
					}
				}
			}
		}
		strong := core.StrongPartition(f)
		for p := 0; p < n; p++ {
			for q := 0; q < n; q++ {
				if strong.Same(int32(p), int32(q)) && (!rel[p][q] || !rel[q][p]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: the spectrum ~ ⊆ sim-equiv ⊆ ≈_1 on restricted observable
// processes.
func TestQuickSpectrum(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 120; trial++ {
		p := gen.RandomRestricted(rng, 2+rng.Intn(4), rng.Intn(8), 2)
		q := gen.RandomRestricted(rng, 2+rng.Intn(4), rng.Intn(8), 2)
		strong, err := core.StrongEquivalent(p, q)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := Equivalent(p, q)
		if err != nil {
			t.Fatal(err)
		}
		trace, err := kequiv.Equivalent(p, q, 1)
		if err != nil {
			t.Fatal(err)
		}
		if strong && !sim {
			t.Fatalf("trial %d: ~ holds but simulation equivalence fails", trial)
		}
		if sim && !trace {
			t.Fatalf("trial %d: simulation equivalence holds but ≈_1 fails", trial)
		}
	}
}
