package partition

import "sort"

// PaigeTarjan solves the instance with the three-way splitting algorithm of
// Paige & Tarjan (1987), generalized to labelled relations: splitters are
// processed "smaller half first" and each split of an X-block S into B and
// S-B refines every Q-block three ways per label — elements with l-edges
// only into B, into both B and S-B, or only into S-B — using per-(element,
// label, X-block) edge counts so that S-B never has to be scanned. Total
// splitter work is O(m log n).
//
// The result equals Naive's (the coarsest stable refinement is unique by the
// Knaster-Tarski argument of Section 3).
func (pr *Problem) PaigeTarjan() *Partition {
	if len(pr.Edges) == 0 {
		// Nothing to refine against: the initial partition is stable.
		return NewPartition(pr.initialBlocks())
	}
	st := newPTState(pr)
	st.run()
	out := make([]int32, pr.N)
	copy(out, st.blk)
	return NewPartition(out)
}

// ptState carries the mutable state of one Paige-Tarjan run.
type ptState struct {
	n         int
	numLabels int

	// Q-partition: elems is a permutation of 0..n-1 grouped by block;
	// loc[x] is x's index in elems; blk[x] its Q-block id. Per block id:
	// half-open range [bStart, bEnd) into elems and a count of marked
	// elements (marked elements occupy the prefix of the range).
	elems, loc, blk       []int32
	bStart, bEnd, bMarked []int32
	touched               []int32 // blocks with marks, pending splitMarked

	// X-partition: each X-block is a set of Q-block ids. bX maps Q-block ->
	// X-block; posInX is the Q-block's index within its X-block's slice.
	xBlocks [][]int32
	bX      []int32
	posInX  []int32
	inC     []bool
	work    []int32 // worklist C of compound X-blocks

	// Edges in CSR form grouped by target, for scanning in-edges of B.
	edges    []Edge
	preStart []int32
	preEdges []int32

	// Count records: cnt[r] is the number of l-edges from some x into some
	// X-block S; every edge points at the record of its (From, Label,
	// X-block-of-To) triple.
	cnt     []int32
	edgeRec []int32
}

func newPTState(pr *Problem) *ptState {
	n := pr.N
	st := &ptState{
		n:         n,
		numLabels: pr.NumLabels,
		elems:     make([]int32, n),
		loc:       make([]int32, n),
		blk:       pr.initialBlocks(),
		edges:     pr.Edges,
	}

	// Group elements by initial block (counting sort).
	numBlk := int32(0)
	for _, b := range st.blk {
		if b+1 > numBlk {
			numBlk = b + 1
		}
	}
	counts := make([]int32, numBlk+1)
	for _, b := range st.blk {
		counts[b+1]++
	}
	for i := int32(1); i <= numBlk; i++ {
		counts[i] += counts[i-1]
	}
	st.bStart = make([]int32, numBlk)
	st.bEnd = make([]int32, numBlk)
	st.bMarked = make([]int32, numBlk)
	for b := int32(0); b < numBlk; b++ {
		st.bStart[b] = counts[b]
		st.bEnd[b] = counts[b+1]
	}
	fill := make([]int32, numBlk)
	copy(fill, st.bStart)
	for x := int32(0); x < int32(n); x++ {
		b := st.blk[x]
		st.elems[fill[b]] = x
		st.loc[x] = fill[b]
		fill[b]++
	}

	// CSR of in-edges by target.
	st.preStart = make([]int32, n+1)
	for _, e := range pr.Edges {
		st.preStart[e.To+1]++
	}
	for i := 1; i <= n; i++ {
		st.preStart[i] += st.preStart[i-1]
	}
	st.preEdges = make([]int32, len(pr.Edges))
	fillE := make([]int32, n)
	for i, e := range pr.Edges {
		st.preEdges[st.preStart[e.To]+fillE[e.To]] = int32(i)
		fillE[e.To]++
	}

	// The universe starts as the single X-block containing every Q-block.
	all := make([]int32, numBlk)
	st.bX = make([]int32, numBlk)
	st.posInX = make([]int32, numBlk)
	for b := int32(0); b < numBlk; b++ {
		all[b] = b
		st.posInX[b] = b
	}
	st.xBlocks = [][]int32{all}
	st.inC = []bool{false}

	// One count record per (from, label) with outdegree > 0: the count of
	// edges into the universe. Edges are mapped to their record. The
	// support list per label (elements with at least one l-edge) falls out
	// of the same dedup pass.
	st.edgeRec = make([]int32, len(pr.Edges))
	recOf := make(map[int64]int32, len(pr.Edges))
	support := make([][]int32, pr.NumLabels)
	for i, e := range pr.Edges {
		key := int64(e.From)*int64(pr.NumLabels) + int64(e.Label)
		r, ok := recOf[key]
		if !ok {
			r = int32(len(st.cnt))
			st.cnt = append(st.cnt, 0)
			recOf[key] = r
			support[e.Label] = append(support[e.Label], e.From)
		}
		st.cnt[r]++
		st.edgeRec[i] = r
	}

	// Pre-split so Q is stable w.r.t. the universe per label: within a
	// block, either all elements have an l-edge or none do. Splitting by
	// each label's support set sequentially achieves the signature split.
	for l := int32(0); l < int32(pr.NumLabels); l++ {
		for _, x := range support[l] {
			st.mark(x)
		}
		st.splitMarked()
	}

	if len(st.xBlocks[0]) >= 2 {
		st.inC[0] = true
		st.work = append(st.work, 0)
	}
	return st
}

// mark moves x into the marked prefix of its Q-block.
func (st *ptState) mark(x int32) {
	b := st.blk[x]
	if st.bMarked[b] == 0 {
		st.touched = append(st.touched, b)
	}
	dst := st.bStart[b] + st.bMarked[b]
	cur := st.loc[x]
	if cur != dst {
		other := st.elems[dst]
		st.elems[dst], st.elems[cur] = x, other
		st.loc[x], st.loc[other] = dst, cur
	}
	st.bMarked[b]++
}

// splitMarked splits every touched Q-block into its marked prefix and
// unmarked suffix (when both are nonempty); the marked part becomes a new
// Q-block in the same X-block. Marks are cleared.
func (st *ptState) splitMarked() {
	for _, b := range st.touched {
		m := st.bMarked[b]
		st.bMarked[b] = 0
		size := st.bEnd[b] - st.bStart[b]
		if m == 0 || m == size {
			continue
		}
		nb := int32(len(st.bStart))
		st.bStart = append(st.bStart, st.bStart[b])
		st.bEnd = append(st.bEnd, st.bStart[b]+m)
		st.bMarked = append(st.bMarked, 0)
		st.bStart[b] += m
		for i := st.bStart[nb]; i < st.bEnd[nb]; i++ {
			st.blk[st.elems[i]] = nb
		}
		// The new block joins b's X-block.
		x := st.bX[b]
		st.bX = append(st.bX, x)
		st.posInX = append(st.posInX, int32(len(st.xBlocks[x])))
		st.xBlocks[x] = append(st.xBlocks[x], nb)
		if len(st.xBlocks[x]) == 2 && !st.inC[x] {
			st.inC[x] = true
			st.work = append(st.work, x)
		}
	}
	st.touched = st.touched[:0]
}

// blockSize returns the size of Q-block b.
func (st *ptState) blockSize(b int32) int32 { return st.bEnd[b] - st.bStart[b] }

// run is the main splitter loop.
func (st *ptState) run() {
	// passEntry accumulates the per-(x, label) information of one splitter
	// pass: the number of edges into B, the old (x, l, S) record and the
	// new (x, l, B) record.
	type passEntry struct {
		x, l   int32
		cntB   int32
		oldRec int32
		newRec int32
	}
	entryOf := map[int64]int32{}
	var entries []passEntry

	for len(st.work) > 0 {
		xid := st.work[len(st.work)-1]
		st.work = st.work[:len(st.work)-1]
		st.inC[xid] = false
		if len(st.xBlocks[xid]) < 2 {
			continue
		}
		// B := the smaller of the first two Q-blocks of S.
		s := st.xBlocks[xid]
		b := s[0]
		if st.blockSize(s[1]) < st.blockSize(b) {
			b = s[1]
		}
		// Remove B from S into its own fresh X-block.
		pos := st.posInX[b]
		last := len(s) - 1
		s[pos] = s[last]
		st.posInX[s[pos]] = pos
		st.xBlocks[xid] = s[:last]
		nx := int32(len(st.xBlocks))
		st.xBlocks = append(st.xBlocks, []int32{b})
		st.inC = append(st.inC, false)
		st.bX[b] = nx
		st.posInX[b] = 0
		if len(st.xBlocks[xid]) >= 2 && !st.inC[xid] {
			st.inC[xid] = true
			st.work = append(st.work, xid)
		}

		// Pass 1: scan in-edges of B, accumulating per-(x, l) counts.
		entries = entries[:0]
		for k := range entryOf {
			delete(entryOf, k)
		}
		for i := st.bStart[b]; i < st.bEnd[b]; i++ {
			y := st.elems[i]
			for j := st.preStart[y]; j < st.preStart[y+1]; j++ {
				e := st.preEdges[j]
				from, l := st.edges[e].From, st.edges[e].Label
				key := int64(from)*int64(st.numLabels) + int64(l)
				idx, ok := entryOf[key]
				if !ok {
					idx = int32(len(entries))
					entries = append(entries, passEntry{
						x: from, l: l, oldRec: st.edgeRec[e], newRec: -1,
					})
					entryOf[key] = idx
				}
				entries[idx].cntB++
			}
		}
		if len(entries) == 0 {
			continue
		}

		// Pass 2: create the (x, l, B) records, deduct from the (x, l, S)
		// records, and repoint the edges into B.
		for idx := range entries {
			en := &entries[idx]
			en.newRec = int32(len(st.cnt))
			st.cnt = append(st.cnt, en.cntB)
			st.cnt[en.oldRec] -= en.cntB
		}
		for i := st.bStart[b]; i < st.bEnd[b]; i++ {
			y := st.elems[i]
			for j := st.preStart[y]; j < st.preStart[y+1]; j++ {
				e := st.preEdges[j]
				from, l := st.edges[e].From, st.edges[e].Label
				key := int64(from)*int64(st.numLabels) + int64(l)
				st.edgeRec[e] = entries[entryOf[key]].newRec
			}
		}

		// Phase 3: refine per label. Sort entries by label so each label is
		// handled in one contiguous group.
		sort.Slice(entries, func(i, j int) bool { return entries[i].l < entries[j].l })
		for lo := 0; lo < len(entries); {
			hi := lo
			for hi < len(entries) && entries[hi].l == entries[lo].l {
				hi++
			}
			group := entries[lo:hi]
			// Split 1: predecessors of B vs the rest.
			for _, en := range group {
				st.mark(en.x)
			}
			st.splitMarked()
			// Split 2 (three-way): among predecessors of B, those with no
			// remaining l-edges into S-B (old record drained) split from
			// those with edges into both.
			for _, en := range group {
				if st.cnt[en.oldRec] == 0 {
					st.mark(en.x)
				}
			}
			st.splitMarked()
			lo = hi
		}
	}
}
