package partition

import (
	"ccs/internal/lts"
)

// PaigeTarjanIndex solves the relational coarsest partition problem on a
// prebuilt lts.Index with the three-way splitting algorithm of Paige &
// Tarjan (1987), generalized to labelled relations: splitters are processed
// "smaller half first" and each split of an X-block S into B and S-B
// refines every Q-block three ways per label — elements with l-edges only
// into B, into both B and S-B, or only into S-B — using per-(element,
// label, X-block) edge counts so that S-B never has to be scanned. Total
// splitter work is O(m log n).
//
// The solver consumes the index's reverse CSR and count-record skeleton
// directly: no edge slice is materialized and nothing is re-sorted per
// call, so a cached Index amortizes all preprocessing across solves. The
// initial partition is seeded with the index's outgoing-action-set
// signatures (intersected with the caller's initial blocks): any stable
// partition must separate states whose outgoing label sets differ, so the
// seed is sound and removes the classic per-label support pre-splitting
// pass along with the splitter work it would induce.
//
// initial assigns each element its starting block (nil means the
// single-block partition); ids must be non-negative but need not be dense.
// The result equals NaiveIndex's (the coarsest stable refinement is unique
// by the Knaster-Tarski argument of Section 3).
func PaigeTarjanIndex(idx *lts.Index, initial []int32) *Partition {
	n := idx.N()
	if idx.NumEdges() == 0 {
		// Nothing to refine against: the initial partition is stable.
		blk := make([]int32, n)
		if initial != nil {
			copy(blk, initial)
		}
		return NewPartition(blk)
	}
	st := newPTState(idx, initial)
	st.run()
	out := make([]int32, n)
	copy(out, st.blk)
	return NewPartition(out)
}

// ptState carries the mutable state of one Paige-Tarjan run. The index it
// was built from is only read, so concurrent runs over one shared Index
// are safe.
type ptState struct {
	n         int
	numLabels int

	// Q-partition: elems is a permutation of 0..n-1 grouped by block;
	// loc[x] is x's index in elems; blk[x] its Q-block id. Per block id:
	// half-open range [bStart, bEnd) into elems and a count of marked
	// elements (marked elements occupy the prefix of the range).
	elems, loc, blk       []int32
	bStart, bEnd, bMarked []int32
	touched               []int32 // blocks with marks, pending splitMarked

	// X-partition: each X-block is a set of Q-block ids. bX maps Q-block ->
	// X-block; posInX is the Q-block's index within its X-block's slice.
	xBlocks [][]int32
	bX      []int32
	posInX  []int32
	inC     []bool
	work    []int32 // worklist C of compound X-blocks

	// Reverse CSR of the index (shared, read-only): in-edges of each
	// element, i.e. the Paige-Tarjan preimage structure.
	revStart, revFrom, revLabel []int32

	// Count records: cnt[r] is the number of l-edges from some x into some
	// X-block S; every reverse edge points at the record of its (From,
	// Label, X-block-of-To) triple. edgeRec starts as a copy of the index's
	// skeleton (records of edges into the universe) and grows as blocks
	// split; revPair is the skeleton itself, shared read-only: a stable
	// dense id per (source, label) pair that the splitter passes use as a
	// perfect hash into the epoch-stamped scratch below — no map operations
	// on the hot path.
	cnt     []int32
	edgeRec []int32
	revPair []int32

	// Per-pair scratch for one splitter pass: entryAt[p] is the pass-entry
	// index of pair p when stamp[p] == epoch, else unset.
	entryAt []int32
	stamp   []int32
	epoch   int32

	// Per-pass label grouping: entries are threaded into one chain per
	// label (labelHead, entryNext), labels listing the labels touched this
	// pass. Epoch-stamped like the pair scratch, replacing a per-pass sort.
	labelHead, labelStamp []int32
	entryNext             []int32
	labels                []int32
}

func newPTState(idx *lts.Index, initial []int32) *ptState {
	n := idx.N()
	st := &ptState{
		n:         n,
		numLabels: idx.NumLabels(),
		loc:       make([]int32, n),
		blk:       make([]int32, n),
	}
	st.revStart, st.revFrom, st.revLabel = idx.Rev()

	// Seed the Q-partition by (initial block, outgoing-label-set signature).
	// Grouping by the signature makes Q stable w.r.t. the universe per
	// label — within a block, either all elements have an l-edge or none
	// do — which is the invariant the classic initialization establishes by
	// splitting on each label's support set in turn. The grouping is two
	// stable counting passes (by signature, then by initial block); the
	// sorted order doubles as the elems permutation.
	sigOf, numSigs := idx.Signatures()
	initOf := func(x int32) int32 {
		if initial == nil {
			return 0
		}
		return initial[x]
	}
	maxInit := int32(0)
	for _, b := range initial {
		if b > maxInit {
			maxInit = b
		}
	}
	tmp := make([]int32, n)
	c1 := make([]int32, numSigs+1)
	for x := 0; x < n; x++ {
		c1[sigOf[x]+1]++
	}
	for i := 1; i <= numSigs; i++ {
		c1[i] += c1[i-1]
	}
	for x := int32(0); x < int32(n); x++ {
		tmp[c1[sigOf[x]]] = x
		c1[sigOf[x]]++
	}
	st.elems = make([]int32, n)
	c2 := make([]int32, maxInit+2)
	for _, x := range tmp {
		c2[initOf(x)+1]++
	}
	for i := int32(1); i <= maxInit+1; i++ {
		c2[i] += c2[i-1]
	}
	for _, x := range tmp {
		st.elems[c2[initOf(x)]] = x
		c2[initOf(x)]++
	}
	// Runs of equal (initial, signature) in elems are the seed blocks.
	numBlk := int32(0)
	prevI, prevS := int32(-1), int32(-1)
	for pos, x := range st.elems {
		i, s := initOf(x), sigOf[x]
		if pos == 0 || i != prevI || s != prevS {
			st.bStart = append(st.bStart, int32(pos))
			if pos > 0 {
				st.bEnd = append(st.bEnd, int32(pos))
			}
			numBlk++
			prevI, prevS = i, s
		}
		st.blk[x] = numBlk - 1
		st.loc[x] = int32(pos)
	}
	st.bEnd = append(st.bEnd, int32(n))
	st.bMarked = make([]int32, numBlk)

	// Count records: copy the skeleton (counts of edges into the universe
	// and the record of every reverse edge); the run appends new records as
	// X-blocks split. The skeleton itself doubles as the stable pair-id
	// array for the splitter scratch.
	recCount, revRec, numRecs := idx.Records()
	st.cnt = make([]int32, numRecs, numRecs+16)
	copy(st.cnt, recCount)
	st.edgeRec = make([]int32, len(revRec))
	copy(st.edgeRec, revRec)
	st.revPair = revRec
	st.entryAt = make([]int32, numRecs)
	st.stamp = make([]int32, numRecs)
	st.epoch = 0
	st.labelHead = make([]int32, st.numLabels)
	st.labelStamp = make([]int32, st.numLabels)

	// The universe starts as the single X-block containing every Q-block.
	all := make([]int32, numBlk)
	st.bX = make([]int32, numBlk)
	st.posInX = make([]int32, numBlk)
	for b := int32(0); b < numBlk; b++ {
		all[b] = b
		st.posInX[b] = b
	}
	st.xBlocks = [][]int32{all}
	st.inC = []bool{false}
	if len(st.xBlocks[0]) >= 2 {
		st.inC[0] = true
		st.work = append(st.work, 0)
	}
	return st
}

// mark moves x into the marked prefix of its Q-block.
func (st *ptState) mark(x int32) {
	b := st.blk[x]
	if st.bMarked[b] == 0 {
		st.touched = append(st.touched, b)
	}
	dst := st.bStart[b] + st.bMarked[b]
	cur := st.loc[x]
	if cur != dst {
		other := st.elems[dst]
		st.elems[dst], st.elems[cur] = x, other
		st.loc[x], st.loc[other] = dst, cur
	}
	st.bMarked[b]++
}

// splitMarked splits every touched Q-block into its marked prefix and
// unmarked suffix (when both are nonempty); the marked part becomes a new
// Q-block in the same X-block. Marks are cleared.
func (st *ptState) splitMarked() {
	for _, b := range st.touched {
		m := st.bMarked[b]
		st.bMarked[b] = 0
		size := st.bEnd[b] - st.bStart[b]
		if m == 0 || m == size {
			continue
		}
		nb := int32(len(st.bStart))
		st.bStart = append(st.bStart, st.bStart[b])
		st.bEnd = append(st.bEnd, st.bStart[b]+m)
		st.bMarked = append(st.bMarked, 0)
		st.bStart[b] += m
		for i := st.bStart[nb]; i < st.bEnd[nb]; i++ {
			st.blk[st.elems[i]] = nb
		}
		// The new block joins b's X-block.
		x := st.bX[b]
		st.bX = append(st.bX, x)
		st.posInX = append(st.posInX, int32(len(st.xBlocks[x])))
		st.xBlocks[x] = append(st.xBlocks[x], nb)
		if len(st.xBlocks[x]) == 2 && !st.inC[x] {
			st.inC[x] = true
			st.work = append(st.work, x)
		}
	}
	st.touched = st.touched[:0]
}

// blockSize returns the size of Q-block b.
func (st *ptState) blockSize(b int32) int32 { return st.bEnd[b] - st.bStart[b] }

// run is the main splitter loop.
func (st *ptState) run() {
	// passEntry accumulates the per-(x, label) information of one splitter
	// pass: the number of edges into B, the old (x, l, S) record and the
	// new (x, l, B) record. Entries are located through the stable pair ids
	// of the index skeleton (st.revPair) and the epoch-stamped scratch —
	// a perfect hash, so the pass does no map work.
	type passEntry struct {
		x, l   int32
		cntB   int32
		oldRec int32
		newRec int32
	}
	var entries []passEntry

	for len(st.work) > 0 {
		xid := st.work[len(st.work)-1]
		st.work = st.work[:len(st.work)-1]
		st.inC[xid] = false
		if len(st.xBlocks[xid]) < 2 {
			continue
		}
		// B := the smaller of the first two Q-blocks of S.
		s := st.xBlocks[xid]
		b := s[0]
		if st.blockSize(s[1]) < st.blockSize(b) {
			b = s[1]
		}
		// Remove B from S into its own fresh X-block.
		pos := st.posInX[b]
		last := len(s) - 1
		s[pos] = s[last]
		st.posInX[s[pos]] = pos
		st.xBlocks[xid] = s[:last]
		nx := int32(len(st.xBlocks))
		st.xBlocks = append(st.xBlocks, []int32{b})
		st.inC = append(st.inC, false)
		st.bX[b] = nx
		st.posInX[b] = 0
		if len(st.xBlocks[xid]) >= 2 && !st.inC[xid] {
			st.inC[xid] = true
			st.work = append(st.work, xid)
		}

		// Pass 1: scan in-edges of B, accumulating per-(x, l) counts.
		entries = entries[:0]
		st.epoch++
		for i := st.bStart[b]; i < st.bEnd[b]; i++ {
			y := st.elems[i]
			for j := st.revStart[y]; j < st.revStart[y+1]; j++ {
				p := st.revPair[j]
				if st.stamp[p] != st.epoch {
					st.stamp[p] = st.epoch
					st.entryAt[p] = int32(len(entries))
					entries = append(entries, passEntry{
						x: st.revFrom[j], l: st.revLabel[j], oldRec: st.edgeRec[j], newRec: -1,
					})
				}
				entries[st.entryAt[p]].cntB++
			}
		}
		if len(entries) == 0 {
			continue
		}

		// Pass 2: create the (x, l, B) records, deduct from the (x, l, S)
		// records, and repoint the edges into B.
		for idx := range entries {
			en := &entries[idx]
			en.newRec = int32(len(st.cnt))
			st.cnt = append(st.cnt, en.cntB)
			st.cnt[en.oldRec] -= en.cntB
		}
		for i := st.bStart[b]; i < st.bEnd[b]; i++ {
			y := st.elems[i]
			for j := st.revStart[y]; j < st.revStart[y+1]; j++ {
				st.edgeRec[j] = entries[st.entryAt[st.revPair[j]]].newRec
			}
		}

		// Phase 3: refine per label. Entries are threaded into one chain per
		// touched label (the epoch trick again), replacing a per-pass sort.
		if cap(st.entryNext) < len(entries) {
			st.entryNext = make([]int32, len(entries)+len(entries)/2)
		}
		st.labels = st.labels[:0]
		for idx := range entries {
			l := entries[idx].l
			if st.labelStamp[l] != st.epoch {
				st.labelStamp[l] = st.epoch
				st.labelHead[l] = -1
				st.labels = append(st.labels, l)
			}
			st.entryNext[idx] = st.labelHead[l]
			st.labelHead[l] = int32(idx)
		}
		for _, l := range st.labels {
			// Split 1: predecessors of B vs the rest.
			for idx := st.labelHead[l]; idx >= 0; idx = st.entryNext[idx] {
				st.mark(entries[idx].x)
			}
			st.splitMarked()
			// Split 2 (three-way): among predecessors of B, those with no
			// remaining l-edges into S-B (old record drained) split from
			// those with edges into both.
			for idx := st.labelHead[l]; idx >= 0; idx = st.entryNext[idx] {
				if st.cnt[entries[idx].oldRec] == 0 {
					st.mark(entries[idx].x)
				}
			}
			st.splitMarked()
		}
	}
}
