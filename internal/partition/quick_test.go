package partition

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// genProblem generates random generalized-partitioning instances.
type genProblem struct{ pr *Problem }

// Generate implements quick.Generator.
func (genProblem) Generate(rng *rand.Rand, size int) reflect.Value {
	n := 1 + rng.Intn(maxInt(2, size))
	labels := 1 + rng.Intn(3)
	pr := &Problem{N: n, NumLabels: labels}
	m := rng.Intn(3 * n)
	for i := 0; i < m; i++ {
		pr.Edges = append(pr.Edges, Edge{
			From:  int32(rng.Intn(n)),
			Label: int32(rng.Intn(labels)),
			To:    int32(rng.Intn(n)),
		})
	}
	if rng.Intn(2) == 0 {
		blocks := 1 + rng.Intn(3)
		if blocks > n {
			blocks = n
		}
		pr.Initial = make([]int32, n)
		for i := range pr.Initial {
			pr.Initial[i] = int32(rng.Intn(blocks))
		}
		for b := 0; b < blocks; b++ {
			pr.Initial[b] = int32(b)
		}
	}
	return reflect.ValueOf(genProblem{pr: pr})
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

var quickCfg = &quick.Config{MaxCount: 200}

// Property: both solvers produce the same partition, and it is a stable
// refinement of the initial partition.
func TestQuickSolversAgreeAndStable(t *testing.T) {
	prop := func(g genProblem) bool {
		pr := g.pr
		if pr.Validate() != nil {
			return false
		}
		naive := pr.Naive()
		pt := pr.PaigeTarjan()
		if !naive.Equal(pt) {
			return false
		}
		if !pr.Stable(pt) {
			return false
		}
		return pt.Refines(NewPartition(pr.initialBlocks()))
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// Property: the result is the COARSEST stable refinement — merging any two
// blocks that share an initial block breaks stability. (This is the
// defining property (3) of the generalized partitioning problem.)
func TestQuickCoarseness(t *testing.T) {
	prop := func(g genProblem) bool {
		pr := g.pr
		sol := pr.PaigeTarjan()
		if sol.NumBlocks() < 2 {
			return true
		}
		init := NewPartition(pr.initialBlocks())
		blocks := sol.Blocks()
		// Try merging each pair of solution blocks that lie in one initial
		// block; every such merge must be unstable.
		for i := 0; i < len(blocks) && i < 6; i++ {
			for j := i + 1; j < len(blocks) && j < 6; j++ {
				if init.Block(blocks[i][0]) != init.Block(blocks[j][0]) {
					continue
				}
				merged := make([]int32, pr.N)
				for x := 0; x < pr.N; x++ {
					b := sol.Block(int32(x))
					if b == int32(j) {
						b = int32(i)
					}
					merged[x] = b
				}
				if pr.Stable(NewPartition(merged)) {
					return false // a coarser stable partition exists
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// Property: the refinement ladder is monotone (each level refines the
// previous), strictly increasing until the fixed point, and ends at the
// solution.
func TestQuickRefineSequence(t *testing.T) {
	prop := func(g genProblem) bool {
		pr := g.pr
		seq := pr.RefineSequence()
		if len(seq) == 0 {
			return false
		}
		for i := 1; i < len(seq); i++ {
			if !seq[i].Refines(seq[i-1]) {
				return false
			}
			if seq[i].NumBlocks() <= seq[i-1].NumBlocks() {
				return false // must strictly split until the fixed point
			}
		}
		return seq[len(seq)-1].Equal(pr.Naive())
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// Property: Partition.Equal is an equivalence on partitions and agrees
// with mutual refinement.
func TestQuickEqualIsMutualRefinement(t *testing.T) {
	prop := func(g genProblem, seed int64) bool {
		pr := g.pr
		p := pr.Naive()
		// A random coarsening of p.
		rng := rand.New(rand.NewSource(seed))
		merge := make([]int32, p.NumBlocks())
		for i := range merge {
			merge[i] = int32(rng.Intn(maxInt(1, p.NumBlocks()-1)))
		}
		coarse := make([]int32, pr.N)
		for x := 0; x < pr.N; x++ {
			coarse[x] = merge[p.Block(int32(x))]
		}
		q := NewPartition(coarse)
		if !p.Refines(q) {
			return false
		}
		if p.Equal(q) != (p.Refines(q) && q.Refines(p)) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// Property: solving is invariant under edge duplication (Delta is a
// relation) and edge order.
func TestQuickEdgeMultisetInvariance(t *testing.T) {
	prop := func(g genProblem, seed int64) bool {
		pr := g.pr
		base := pr.Naive()
		rng := rand.New(rand.NewSource(seed))
		dup := &Problem{N: pr.N, NumLabels: pr.NumLabels, Initial: pr.Initial}
		dup.Edges = append(dup.Edges, pr.Edges...)
		// Duplicate a few random edges and shuffle.
		for i := 0; i < 3 && len(pr.Edges) > 0; i++ {
			dup.Edges = append(dup.Edges, pr.Edges[rng.Intn(len(pr.Edges))])
		}
		rng.Shuffle(len(dup.Edges), func(i, j int) {
			dup.Edges[i], dup.Edges[j] = dup.Edges[j], dup.Edges[i]
		})
		return dup.PaigeTarjan().Equal(base) && dup.Naive().Equal(base)
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}
