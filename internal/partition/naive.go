package partition

import (
	"sort"

	"ccs/internal/lts"
)

// NaiveIndex solves the instance with the paper's Lemma 3.2 method: in each
// round, every block is split so that two elements stay together iff, for
// every function f_l, they reach the same set of blocks. Rounds repeat until
// a fixed point. There are at most n-1 splitting rounds and each round costs
// O(n + m) signature work, giving the O(nm) bound of Lemma 3.2.
//
// It is deliberately not seeded with the index's signature pre-partition:
// the naive solver doubles as the baseline the Paige-Tarjan kernel is
// differentially tested and benchmarked against, and as the ≃_k ladder of
// RefineStepsIndex, whose round semantics must stay exactly Definition
// 2.2.2's.
func NaiveIndex(idx *lts.Index, initial []int32) *Partition {
	p, _ := RefineStepsIndex(idx, initial, -1)
	return p
}

// RefineStepsIndex runs at most k refinement rounds of the naive method and
// returns the resulting partition together with the number of rounds that
// actually changed the partition. k < 0 means "run to the fixed point".
//
// The rounds correspond exactly to the k-limited observational equivalence
// ladder of Definition 2.2.2 when the index encodes the weak single-step
// relations: after round i the partition is the ≃_i equivalence.
func RefineStepsIndex(idx *lts.Index, initial []int32, k int) (*Partition, int) {
	blk := initialBlocks(idx.N(), initial)
	rounds := 0
	for k < 0 || rounds < k {
		next, changed := refineOnce(idx, blk)
		if !changed {
			break
		}
		blk = next
		rounds++
	}
	return NewPartition(blk), rounds
}

// RefineSequenceIndex returns the full refinement ladder pi_0, pi_1, ...,
// pi_fix of the naive method: pi_0 is the initial partition and pi_{i+1}
// refines pi_i by one splitting round. The last element is the fixed point
// (the solution). Used by the k-limited equivalence ladder and by
// distinguishing-formula extraction, which needs the level at which two
// elements separate.
func RefineSequenceIndex(idx *lts.Index, initial []int32) []*Partition {
	blk := initialBlocks(idx.N(), initial)
	cp := make([]int32, len(blk))
	copy(cp, blk)
	seq := []*Partition{NewPartition(cp)}
	for {
		next, changed := refineOnce(idx, blk)
		if !changed {
			return seq
		}
		blk = next
		cp = make([]int32, len(blk))
		copy(cp, blk)
		seq = append(seq, NewPartition(cp))
	}
}

// initialBlocks copies the initial block assignment (single block when
// initial is nil).
func initialBlocks(n int, initial []int32) []int32 {
	blk := make([]int32, n)
	if initial != nil {
		copy(blk, initial)
	}
	return blk
}

// refineOnce performs one global splitting round, returning the refined
// block assignment and whether anything changed. Signatures are computed
// straight off the forward CSR: each state's span is scanned into (label,
// target-block) pairs, sorted and deduplicated — no per-element set maps.
func refineOnce(idx *lts.Index, blk []int32) ([]int32, bool) {
	n := idx.N()
	fwdStart, fwdLabel, fwdTo := idx.Fwd()
	type pair struct{ l, b int32 }
	var scratch []pair
	var buf []byte

	type groupKey struct {
		blk int32
		sig string
	}
	next := make([]int32, n)
	ids := make(map[groupKey]int32, n)
	for x := 0; x < n; x++ {
		scratch = scratch[:0]
		for i := fwdStart[x]; i < fwdStart[x+1]; i++ {
			scratch = append(scratch, pair{l: fwdLabel[i], b: blk[fwdTo[i]]})
		}
		// The span is label-sorted already; only ties need the block order.
		sort.Slice(scratch, func(i, j int) bool {
			if scratch[i].l != scratch[j].l {
				return scratch[i].l < scratch[j].l
			}
			return scratch[i].b < scratch[j].b
		})
		buf = buf[:0]
		last := pair{l: -1, b: -1}
		for _, p := range scratch {
			if p != last {
				buf = appendInt32(buf, p.l)
				buf = appendInt32(buf, p.b)
				last = p
			}
		}
		gk := groupKey{blk: blk[x], sig: string(buf)}
		id, ok := ids[gk]
		if !ok {
			id = int32(len(ids))
			ids[gk] = id
		}
		next[x] = id
	}
	// Change detection: the refinement strictly increases the block count
	// or keeps the partition identical (refinement never merges).
	oldBlocks := map[int32]struct{}{}
	for _, b := range blk {
		oldBlocks[b] = struct{}{}
	}
	return next, len(ids) != len(oldBlocks)
}
