package partition

// Naive solves the instance with the paper's Lemma 3.2 method: in each
// round, every block is split so that two elements stay together iff, for
// every function f_l, they reach the same set of blocks. Rounds repeat until
// a fixed point. There are at most n-1 splitting rounds and each round costs
// O(n + m) signature work, giving the O(nm) bound of Lemma 3.2.
func (pr *Problem) Naive() *Partition {
	p, _ := pr.RefineSteps(-1)
	return p
}

// RefineSteps runs at most k refinement rounds of the naive method and
// returns the resulting partition together with the number of rounds that
// actually changed the partition. k < 0 means "run to the fixed point".
//
// The rounds correspond exactly to the k-limited observational equivalence
// ladder of Definition 2.2.2 when the problem encodes the weak single-step
// relations: after round i the partition is the ≃_i equivalence.
func (pr *Problem) RefineSteps(k int) (*Partition, int) {
	blk := pr.initialBlocks()
	rounds := 0
	for k < 0 || rounds < k {
		next, changed := pr.refineOnce(blk)
		if !changed {
			break
		}
		blk = next
		rounds++
	}
	return NewPartition(blk), rounds
}

// RefineSequence returns the full refinement ladder pi_0, pi_1, ..., pi_fix
// of the naive method: pi_0 is the initial partition and pi_{i+1} refines
// pi_i by one splitting round. The last element is the fixed point (the
// solution). Used by the k-limited equivalence ladder and by distinguishing-
// formula extraction, which needs the level at which two elements separate.
func (pr *Problem) RefineSequence() []*Partition {
	blk := pr.initialBlocks()
	cp := make([]int32, len(blk))
	copy(cp, blk)
	seq := []*Partition{NewPartition(cp)}
	for {
		next, changed := pr.refineOnce(blk)
		if !changed {
			return seq
		}
		blk = next
		cp = make([]int32, len(blk))
		copy(cp, blk)
		seq = append(seq, NewPartition(cp))
	}
}

// refineOnce performs one global splitting round, returning the refined
// block assignment and whether anything changed.
func (pr *Problem) refineOnce(blk []int32) ([]int32, bool) {
	sigs := pr.signatures(blk)
	type groupKey struct {
		blk int32
		sig string
	}
	next := make([]int32, pr.N)
	ids := make(map[groupKey]int32, pr.N)
	changed := false
	// Deterministic block numbering: scan elements in order.
	for x := 0; x < pr.N; x++ {
		gk := groupKey{blk: blk[x], sig: sigs[x]}
		id, ok := ids[gk]
		if !ok {
			id = int32(len(ids))
			ids[gk] = id
		}
		next[x] = id
	}
	// Change detection: the refinement strictly increases the block count
	// or keeps the partition identical (refinement never merges).
	oldBlocks := map[int32]struct{}{}
	for _, b := range blk {
		oldBlocks[b] = struct{}{}
	}
	if len(ids) != len(oldBlocks) {
		changed = true
	}
	return next, changed
}
