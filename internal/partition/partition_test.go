package partition

import (
	"math/rand"
	"testing"
)

// chainProblem builds a unary chain 0 -> 1 -> ... -> n-1, all one block.
// The coarsest stable partition separates every state (distance to the dead
// end differs).
func chainProblem(n int) *Problem {
	edges := make([]Edge, 0, n-1)
	for i := 0; i < n-1; i++ {
		edges = append(edges, Edge{From: int32(i), Label: 0, To: int32(i + 1)})
	}
	return &Problem{N: n, NumLabels: 1, Edges: edges}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		pr   Problem
		ok   bool
	}{
		{"ok", Problem{N: 2, NumLabels: 1, Edges: []Edge{{0, 0, 1}}}, true},
		{"zero elements", Problem{N: 0}, false},
		{"bad edge target", Problem{N: 2, NumLabels: 1, Edges: []Edge{{0, 0, 5}}}, false},
		{"bad edge source", Problem{N: 2, NumLabels: 1, Edges: []Edge{{-1, 0, 1}}}, false},
		{"bad label", Problem{N: 2, NumLabels: 1, Edges: []Edge{{0, 3, 1}}}, false},
		{"short initial", Problem{N: 2, NumLabels: 0, Initial: []int32{0}}, false},
		{"sparse initial", Problem{N: 2, NumLabels: 0, Initial: []int32{0, 5}}, false},
		{"dense initial", Problem{N: 2, NumLabels: 0, Initial: []int32{1, 0}}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.pr.Validate()
			if (err == nil) != tc.ok {
				t.Errorf("Validate = %v, want ok=%v", err, tc.ok)
			}
		})
	}
}

func TestNaiveChain(t *testing.T) {
	pr := chainProblem(5)
	p := pr.Naive()
	if p.NumBlocks() != 5 {
		t.Errorf("chain of 5 must fully separate, got %d blocks", p.NumBlocks())
	}
	if !pr.Stable(p) {
		t.Errorf("result not stable")
	}
}

func TestPaigeTarjanChain(t *testing.T) {
	pr := chainProblem(5)
	p := pr.PaigeTarjan()
	if p.NumBlocks() != 5 {
		t.Errorf("chain of 5 must fully separate, got %d blocks", p.NumBlocks())
	}
	if !pr.Stable(p) {
		t.Errorf("result not stable")
	}
}

func TestCycleStaysCoarse(t *testing.T) {
	// A unary cycle: every state behaves identically, one block.
	n := 6
	edges := make([]Edge, 0, n)
	for i := 0; i < n; i++ {
		edges = append(edges, Edge{From: int32(i), Label: 0, To: int32((i + 1) % n)})
	}
	pr := &Problem{N: n, NumLabels: 1, Edges: edges}
	for name, p := range map[string]*Partition{
		"naive": pr.Naive(),
		"pt":    pr.PaigeTarjan(),
	} {
		if p.NumBlocks() != 1 {
			t.Errorf("%s: cycle should stay one block, got %d", name, p.NumBlocks())
		}
	}
}

func TestInitialPartitionRespected(t *testing.T) {
	// Two disconnected self-loop states: behaviourally identical, but the
	// initial partition separates them and must be respected.
	pr := &Problem{
		N:         2,
		NumLabels: 1,
		Edges:     []Edge{{0, 0, 0}, {1, 0, 1}},
		Initial:   []int32{0, 1},
	}
	for name, p := range map[string]*Partition{
		"naive": pr.Naive(),
		"pt":    pr.PaigeTarjan(),
	} {
		if p.Same(0, 1) {
			t.Errorf("%s: initial partition violated", name)
		}
	}
}

func TestThreeWaySplitNeeded(t *testing.T) {
	// The classic instance where two elements both reach a splitter block B
	// but only one also reaches S-B; Hopcroft-style two-way splitting with
	// "skip the largest" can miss it, Paige-Tarjan's counts catch it.
	//
	//  0 --> 2         1 --> 2, 1 --> 3
	//  2 and 3 distinguished by a second label.
	pr := &Problem{
		N:         4,
		NumLabels: 2,
		Edges: []Edge{
			{0, 0, 2},
			{1, 0, 2}, {1, 0, 3},
			{2, 1, 2}, // only 2 has a label-1 edge
		},
	}
	naive := pr.Naive()
	pt := pr.PaigeTarjan()
	if !naive.Equal(pt) {
		t.Fatalf("naive %v != PT %v", naive.Blocks(), pt.Blocks())
	}
	if naive.Same(0, 1) {
		t.Errorf("0 and 1 must be separated (different block target sets)")
	}
}

func TestRefineSteps(t *testing.T) {
	pr := chainProblem(5)
	// Round i of naive refinement separates states by "can do i steps".
	p0, r0 := pr.RefineSteps(0)
	if r0 != 0 || p0.NumBlocks() != 1 {
		t.Errorf("0 rounds: blocks=%d rounds=%d", p0.NumBlocks(), r0)
	}
	p1, r1 := pr.RefineSteps(1)
	if r1 != 1 || p1.NumBlocks() != 2 {
		t.Errorf("1 round: blocks=%d rounds=%d", p1.NumBlocks(), r1)
	}
	pAll, rAll := pr.RefineSteps(-1)
	if pAll.NumBlocks() != 5 {
		t.Errorf("fixpoint blocks=%d", pAll.NumBlocks())
	}
	if rAll != 4 {
		t.Errorf("fixpoint rounds=%d, want 4", rAll)
	}
	// Extra rounds beyond the fixpoint change nothing.
	pMore, rMore := pr.RefineSteps(100)
	if !pMore.Equal(pAll) || rMore != rAll {
		t.Errorf("over-refinement changed result")
	}
	// Each step refines the previous.
	if !p1.Refines(p0) || !pAll.Refines(p1) {
		t.Errorf("refinement chain broken")
	}
}

func TestPartitionOps(t *testing.T) {
	p := NewPartition([]int32{5, 5, 9, 9, 5})
	if p.NumBlocks() != 2 || p.Len() != 5 {
		t.Fatalf("densify failed: %d blocks", p.NumBlocks())
	}
	if !p.Same(0, 1) || p.Same(0, 2) {
		t.Errorf("Same wrong")
	}
	blocks := p.Blocks()
	if len(blocks) != 2 {
		t.Fatalf("Blocks len = %d", len(blocks))
	}
	q := NewPartition([]int32{0, 0, 1, 1, 0})
	if !p.Equal(q) {
		t.Errorf("Equal should hold up to renaming")
	}
	r := NewPartition([]int32{0, 1, 2, 2, 0})
	if p.Equal(r) {
		t.Errorf("Equal should fail")
	}
	if !r.Refines(p) {
		t.Errorf("r refines p")
	}
	if p.Refines(r) {
		t.Errorf("p does not refine r")
	}
}

// randomProblem generates a random instance for cross-validation.
func randomProblem(rng *rand.Rand, n, m, labels, blocks int) *Problem {
	pr := &Problem{N: n, NumLabels: labels}
	for i := 0; i < m; i++ {
		pr.Edges = append(pr.Edges, Edge{
			From:  int32(rng.Intn(n)),
			Label: int32(rng.Intn(labels)),
			To:    int32(rng.Intn(n)),
		})
	}
	if blocks > 1 {
		pr.Initial = make([]int32, n)
		for i := range pr.Initial {
			pr.Initial[i] = int32(rng.Intn(blocks))
		}
		// Densify: ensure every block id occurs.
		for b := 0; b < blocks && b < n; b++ {
			pr.Initial[b] = int32(b)
		}
	}
	return pr
}

func TestCrossValidateNaiveVsPaigeTarjan(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(14)
		m := rng.Intn(3 * n)
		labels := 1 + rng.Intn(3)
		blocks := 1 + rng.Intn(3)
		if blocks > n {
			blocks = n
		}
		pr := randomProblem(rng, n, m, labels, blocks)
		if err := pr.Validate(); err != nil {
			t.Fatalf("trial %d: invalid instance: %v", trial, err)
		}
		naive := pr.Naive()
		pt := pr.PaigeTarjan()
		if !naive.Equal(pt) {
			t.Fatalf("trial %d: naive %v != PT %v\nedges=%v initial=%v",
				trial, naive.Blocks(), pt.Blocks(), pr.Edges, pr.Initial)
		}
		if !pr.Stable(pt) {
			t.Fatalf("trial %d: PT result unstable", trial)
		}
		initial := NewPartition(pr.initialBlocks())
		if !pt.Refines(initial) {
			t.Fatalf("trial %d: result does not refine initial partition", trial)
		}
	}
}

func TestEmptyEdgeInstance(t *testing.T) {
	pr := &Problem{N: 3, NumLabels: 0, Initial: []int32{0, 1, 0}}
	for name, p := range map[string]*Partition{
		"naive": pr.Naive(),
		"pt":    pr.PaigeTarjan(),
	} {
		if p.NumBlocks() != 2 {
			t.Errorf("%s: blocks = %d, want 2", name, p.NumBlocks())
		}
	}
}
