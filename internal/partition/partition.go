// Package partition solves the generalized partitioning problem of
// Kanellakis & Smolka (Section 3), also known as the relational coarsest
// partition problem (Paige & Tarjan 1987).
//
// Input: a set S of n elements, an initial partition pi of S, and k
// functions f_l : S -> 2^S given as labelled directed graphs. Output: the
// coarsest partition pi' consistent with pi such that for any two elements
// a, b of the same block and every block E_j and function f_l,
//
//	f_l(a) ∩ E_j ≠ ∅   iff   f_l(b) ∩ E_j ≠ ∅.
//
// Two algorithms are provided:
//
//   - Naive: the paper's Lemma 3.2 method — repeatedly split blocks by the
//     set of blocks each element reaches, until stable. O(nm) rounds-times-
//     work bound; also exposed as RefineSteps for the k-limited equivalence
//     ladder of Definition 2.2.2.
//   - PaigeTarjan: the "process the smaller half" three-way splitting
//     algorithm of Paige & Tarjan, generalized to labelled relations,
//     running in O(m log n) splitter work. This is the algorithm behind
//     Theorem 3.1.
//
// Both solvers consume a prebuilt lts.Index — the repository's shared CSR
// refinement kernel — so hot-path callers (core, automata, hml, the
// engine) hand in a cached index and pay zero per-call edge-slice
// allocation. The Problem type with its explicit edge list remains as the
// package's self-contained instance description (tests, one-off callers);
// its methods are thin wrappers that build the index on the fly,
// deduplicating duplicate edges in the process.
//
// The package is agnostic to FSPs: callers map actions to dense labels.
package partition

import (
	"fmt"
	"sort"

	"ccs/internal/lts"
)

// Edge is one arc of a function graph: To ∈ f_Label(From).
type Edge struct {
	From  int32
	Label int32
	To    int32
}

// Problem is an instance of generalized partitioning.
type Problem struct {
	// N is the number of elements, identified as 0..N-1.
	N int
	// NumLabels is the number of functions; edge labels are 0..NumLabels-1.
	NumLabels int
	// Edges lists all arcs of all function graphs.
	Edges []Edge
	// Initial assigns each element its initial block. Block ids must be
	// dense in 0..p-1. A nil Initial means the single-block partition.
	Initial []int32
}

// Validate checks the instance for out-of-range states, labels and block
// ids.
func (pr *Problem) Validate() error {
	if pr.N <= 0 {
		return fmt.Errorf("partition: N = %d, want > 0", pr.N)
	}
	if pr.Initial != nil && len(pr.Initial) != pr.N {
		return fmt.Errorf("partition: Initial has %d entries, want %d", len(pr.Initial), pr.N)
	}
	maxBlk := int32(0)
	seen := map[int32]bool{}
	for i, b := range pr.Initial {
		if b < 0 {
			return fmt.Errorf("partition: negative block id at element %d", i)
		}
		if b > maxBlk {
			maxBlk = b
		}
		seen[b] = true
	}
	if pr.Initial != nil && int(maxBlk)+1 != len(seen) {
		return fmt.Errorf("partition: initial block ids not dense")
	}
	for _, e := range pr.Edges {
		if e.From < 0 || int(e.From) >= pr.N || e.To < 0 || int(e.To) >= pr.N {
			return fmt.Errorf("partition: edge %v out of range", e)
		}
		if e.Label < 0 || int(e.Label) >= pr.NumLabels {
			return fmt.Errorf("partition: edge %v has bad label", e)
		}
	}
	return nil
}

// Partition is the result: a block id per element, with ids dense in
// 0..NumBlocks-1.
type Partition struct {
	blockOf []int32
	num     int
}

// NewPartition adopts a block-of array, densifying the block ids.
func NewPartition(blockOf []int32) *Partition {
	p := &Partition{blockOf: blockOf}
	p.densify()
	return p
}

// Block returns the block id of element x.
func (p *Partition) Block(x int32) int32 { return p.blockOf[x] }

// Same reports whether two elements share a block.
func (p *Partition) Same(a, b int32) bool { return p.blockOf[a] == p.blockOf[b] }

// NumBlocks returns the number of blocks.
func (p *Partition) NumBlocks() int { return p.num }

// Len returns the number of elements.
func (p *Partition) Len() int { return len(p.blockOf) }

// Blocks materializes the blocks as sorted element lists.
func (p *Partition) Blocks() [][]int32 {
	out := make([][]int32, p.num)
	for x, b := range p.blockOf {
		out[b] = append(out[b], int32(x))
	}
	return out
}

// Equal reports whether two partitions induce the same equivalence relation.
func (p *Partition) Equal(q *Partition) bool {
	if len(p.blockOf) != len(q.blockOf) || p.num != q.num {
		return false
	}
	// Same number of blocks plus a function p-block -> q-block suffices.
	fwd := make([]int32, p.num)
	for i := range fwd {
		fwd[i] = -1
	}
	for x := range p.blockOf {
		pb, qb := p.blockOf[x], q.blockOf[x]
		if fwd[pb] == -1 {
			fwd[pb] = qb
		} else if fwd[pb] != qb {
			return false
		}
	}
	return true
}

// Refines reports whether p refines q: every p-block is contained in a
// q-block.
func (p *Partition) Refines(q *Partition) bool {
	if len(p.blockOf) != len(q.blockOf) {
		return false
	}
	fwd := make([]int32, p.num)
	for i := range fwd {
		fwd[i] = -1
	}
	for x := range p.blockOf {
		pb, qb := p.blockOf[x], q.blockOf[x]
		if fwd[pb] == -1 {
			fwd[pb] = qb
		} else if fwd[pb] != qb {
			return false
		}
	}
	return true
}

func (p *Partition) densify() {
	remap := map[int32]int32{}
	for i, b := range p.blockOf {
		nb, ok := remap[b]
		if !ok {
			nb = int32(len(remap))
			remap[b] = nb
		}
		p.blockOf[i] = nb
	}
	p.num = len(remap)
}

// initialBlocks returns a copy of the initial block assignment (single
// block when Initial is nil).
func (pr *Problem) initialBlocks() []int32 {
	return initialBlocks(pr.N, pr.Initial)
}

// Index builds the lts refinement index of the instance's edge list.
// Duplicate (from, label, to) edges are deduplicated here — Delta is a
// relation, and duplicates would only inflate splitter work.
func (pr *Problem) Index() *lts.Index {
	b := lts.NewBuilder(pr.N, pr.NumLabels)
	for _, e := range pr.Edges {
		b.Add(e.From, e.Label, e.To)
	}
	return b.Build()
}

// PaigeTarjan solves the instance with the O(m log n) three-way splitting
// algorithm of Theorem 3.1. It is the edge-list convenience wrapper around
// PaigeTarjanIndex: the index is built, used once and discarded, which is
// exactly the re-indexing cost the cached-index entry point exists to
// avoid (ccsbench E16 measures the difference).
func (pr *Problem) PaigeTarjan() *Partition {
	return PaigeTarjanIndex(pr.Index(), pr.Initial)
}

// Naive solves the instance with the paper's Lemma 3.2 method (see
// NaiveIndex).
func (pr *Problem) Naive() *Partition {
	return NaiveIndex(pr.Index(), pr.Initial)
}

// RefineSteps runs at most k naive refinement rounds (see
// RefineStepsIndex). k < 0 means "run to the fixed point".
func (pr *Problem) RefineSteps(k int) (*Partition, int) {
	return RefineStepsIndex(pr.Index(), pr.Initial, k)
}

// RefineSequence returns the full naive refinement ladder (see
// RefineSequenceIndex).
func (pr *Problem) RefineSequence() []*Partition {
	return RefineSequenceIndex(pr.Index(), pr.Initial)
}

// Stable reports whether p satisfies condition (2) of the generalized
// partitioning problem: within every block, all elements reach the same set
// of blocks under every function. It is O(nm) and intended for tests and
// verification.
func (pr *Problem) Stable(p *Partition) bool {
	sigs := pr.signatures(p.blockOf)
	for x := 1; x < pr.N; x++ {
		for y := 0; y < x; y++ {
			if p.blockOf[x] == p.blockOf[y] && sigs[x] != sigs[y] {
				return false
			}
		}
	}
	return true
}

// signatures returns, per element, a canonical string of the set
// {(l, blk[to]) : to ∈ f_l(x)}.
func (pr *Problem) signatures(blk []int32) []string {
	type key struct{ l, b int32 }
	sets := make([]map[key]struct{}, pr.N)
	for i := range sets {
		sets[i] = map[key]struct{}{}
	}
	for _, e := range pr.Edges {
		sets[e.From][key{e.Label, blk[e.To]}] = struct{}{}
	}
	out := make([]string, pr.N)
	for x := 0; x < pr.N; x++ {
		keys := make([]key, 0, len(sets[x]))
		for k := range sets[x] {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].l != keys[j].l {
				return keys[i].l < keys[j].l
			}
			return keys[i].b < keys[j].b
		})
		buf := make([]byte, 0, len(keys)*8)
		for _, k := range keys {
			buf = appendInt32(buf, k.l)
			buf = appendInt32(buf, k.b)
		}
		out[x] = string(buf)
	}
	return out
}

func appendInt32(buf []byte, v int32) []byte {
	return append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}
