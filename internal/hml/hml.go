// Package hml implements Hennessy-Milner logic over finite state processes
// and automatic extraction of distinguishing formulas.
//
// Hennessy & Milner (1985) — cited by the paper as the modal
// characterization of its equivalences — show that two states of a finitely
// branching process are strongly equivalent iff they satisfy the same HML
// formulas. This package makes the contrapositive executable: for states
// that are NOT equivalent it produces a formula satisfied by one and not
// the other, which is the most useful artifact an equivalence checker can
// emit. Weak (observational) distinguishing formulas are obtained by
// running the same construction on the saturated FSP of Theorem 4.1(a), so
// modalities range over Sigma ∪ {ε}.
package hml

import (
	"fmt"
	"strings"

	"ccs/internal/core"
	"ccs/internal/fsp"
	"ccs/internal/lts"
	"ccs/internal/partition"
)

// Formula is a Hennessy-Milner logic formula.
//
// The grammar is: tt | ext=E | ¬φ | φ∧φ | ⟨a⟩φ. Boxes [a]φ are expressible
// as ¬⟨a⟩¬φ; the distinguishing-formula construction only needs diamonds,
// conjunction and negation.
type Formula interface {
	fmt.Stringer
	isFormula()
}

// True is the formula tt, satisfied by every state.
type True struct{}

func (True) isFormula()     {}
func (True) String() string { return "tt" }

// ExtEq holds at states whose extension equals Ext exactly.
type ExtEq struct {
	Ext fsp.VarSet
	// Vars is used for rendering only.
	Vars *fsp.VarTable
}

func (ExtEq) isFormula() {}
func (e ExtEq) String() string {
	if e.Vars == nil {
		return fmt.Sprintf("ext=%#x", uint64(e.Ext))
	}
	return "ext=" + e.Ext.Format(e.Vars)
}

// Not is negation.
type Not struct{ Sub Formula }

func (Not) isFormula()       {}
func (n Not) String() string { return "¬" + n.Sub.String() }

// And is finite conjunction; the empty conjunction is tt.
type And struct{ Subs []Formula }

func (And) isFormula() {}
func (a And) String() string {
	if len(a.Subs) == 0 {
		return "tt"
	}
	if len(a.Subs) == 1 {
		return a.Subs[0].String()
	}
	parts := make([]string, len(a.Subs))
	for i, s := range a.Subs {
		parts[i] = s.String()
	}
	return "(" + strings.Join(parts, " ∧ ") + ")"
}

// Diamond is the possibility modality ⟨Act⟩Sub: some Act-successor
// satisfies Sub. Name carries the action's rendering.
type Diamond struct {
	Act  fsp.Action
	Name string
	Sub  Formula
}

func (Diamond) isFormula() {}
func (d Diamond) String() string {
	return "⟨" + d.Name + "⟩" + d.Sub.String()
}

// Satisfies reports whether state s of f satisfies phi, by direct recursive
// evaluation over the state set.
func Satisfies(f *fsp.FSP, s fsp.State, phi Formula) bool {
	return eval(f, phi)[s]
}

// Sat returns the satisfaction set of phi over f's states.
func Sat(f *fsp.FSP, phi Formula) []bool {
	return eval(f, phi)
}

func eval(f *fsp.FSP, phi Formula) []bool {
	n := f.NumStates()
	out := make([]bool, n)
	switch t := phi.(type) {
	case True:
		for i := range out {
			out[i] = true
		}
	case ExtEq:
		for i := range out {
			out[i] = f.Ext(fsp.State(i)) == t.Ext
		}
	case Not:
		sub := eval(f, t.Sub)
		for i := range out {
			out[i] = !sub[i]
		}
	case And:
		for i := range out {
			out[i] = true
		}
		for _, s := range t.Subs {
			sub := eval(f, s)
			for i := range out {
				out[i] = out[i] && sub[i]
			}
		}
	case Or:
		for _, s := range t.Subs {
			sub := eval(f, s)
			for i := range out {
				out[i] = out[i] || sub[i]
			}
		}
	case Diamond:
		sub := eval(f, t.Sub)
		for i := 0; i < n; i++ {
			for _, to := range f.Dest(fsp.State(i), t.Act) {
				if sub[to] {
					out[i] = true
					break
				}
			}
		}
	case Box:
		sub := eval(f, t.Sub)
		for i := 0; i < n; i++ {
			out[i] = true
			for _, to := range f.Dest(fsp.State(i), t.Act) {
				if !sub[to] {
					out[i] = false
					break
				}
			}
		}
	default:
		// Unknown formula constructors satisfy nothing; the constructors
		// are sealed by isFormula so this is unreachable from outside.
	}
	return out
}

// Size counts the nodes of a formula, for reporting and tests.
func Size(phi Formula) int {
	switch t := phi.(type) {
	case Not:
		return 1 + Size(t.Sub)
	case And:
		n := 1
		for _, s := range t.Subs {
			n += Size(s)
		}
		return n
	case Or:
		n := 1
		for _, s := range t.Subs {
			n += Size(s)
		}
		return n
	case Diamond:
		return 1 + Size(t.Sub)
	case Box:
		return 1 + Size(t.Sub)
	default:
		return 1
	}
}

// Distinguish returns an HML formula satisfied by p but not by q, where p
// and q are states of f, or an error if p ~ q (strong equivalence admits no
// distinguishing formula, by Hennessy-Milner).
func Distinguish(f *fsp.FSP, p, q fsp.State) (Formula, error) {
	seq := partition.RefineSequenceIndex(lts.FromFSP(f), core.ExtInitial(f))
	final := seq[len(seq)-1]
	if final.Same(int32(p), int32(q)) {
		return nil, fmt.Errorf("hml: states %d and %d are strongly equivalent", p, q)
	}
	d := &distinguisher{f: f, seq: seq}
	return d.build(p, q), nil
}

// DistinguishWeak returns a weak-modality HML formula telling p from q up
// to observational equivalence: it is evaluated over the saturated FSP, so
// ⟨a⟩ means "after some a-weak-derivative" and ⟨ε⟩ "after some tau steps".
// The saturated FSP is returned so callers can evaluate the formula.
func DistinguishWeak(f *fsp.FSP, p, q fsp.State) (Formula, *fsp.FSP, error) {
	sat, _, err := fsp.Saturate(f)
	if err != nil {
		return nil, nil, fmt.Errorf("hml: %w", err)
	}
	phi, err := Distinguish(sat, p, q)
	if err != nil {
		return nil, nil, fmt.Errorf("hml: states %d and %d are observationally equivalent", p, q)
	}
	return phi, sat, nil
}

type distinguisher struct {
	f   *fsp.FSP
	seq []*partition.Partition
}

// level returns the first refinement level at which p and q separate, or -1
// if they never do.
func (d *distinguisher) level(p, q fsp.State) int {
	for k, part := range d.seq {
		if !part.Same(int32(p), int32(q)) {
			return k
		}
	}
	return -1
}

// build constructs a formula true at p and false at q; p and q must be
// separated at some level.
func (d *distinguisher) build(p, q fsp.State) Formula {
	k := d.level(p, q)
	if k == 0 {
		// Separated by the initial partition: extensions differ.
		return ExtEq{Ext: d.f.Ext(p), Vars: d.f.Vars()}
	}
	prev := d.seq[k-1]
	// p and q agree at level k-1 but differ at k: one of them has a move
	// some move of which the other cannot match at level k-1.
	if phi, ok := d.moveFormula(prev, p, q); ok {
		return phi
	}
	if phi, ok := d.moveFormula(prev, q, p); ok {
		return Not{Sub: phi}
	}
	// Unreachable: a level-k split is always justified by an unmatched
	// move in one direction; guard for safety.
	return True{}
}

// moveFormula looks for an action a and successor p' of p such that no
// a-successor of q is level-(k-1)-equivalent to p'; it returns
// ⟨a⟩(∧_{q'} distinguish(p', q')).
func (d *distinguisher) moveFormula(prev *partition.Partition, p, q fsp.State) (Formula, bool) {
	alpha := d.f.Alphabet()
	for act := fsp.Action(0); int(act) < alpha.Len(); act++ {
		for _, pNext := range d.f.Dest(p, act) {
			qNexts := d.f.Dest(q, act)
			matched := false
			for _, qNext := range qNexts {
				if prev.Same(int32(pNext), int32(qNext)) {
					matched = true
					break
				}
			}
			if matched {
				continue
			}
			subs := make([]Formula, 0, len(qNexts))
			for _, qNext := range qNexts {
				subs = append(subs, d.build(pNext, qNext))
			}
			return Diamond{Act: act, Name: alpha.Name(act), Sub: And{Subs: subs}}, true
		}
	}
	return nil, false
}
