package hml

import (
	"strings"
	"testing"

	"ccs/internal/fsp"
)

// parserFixture: 0 --a--> 1 --b--> 2(x), 0 --tau--> 3, 3 --b--> 2.
func parserFixture() *fsp.FSP {
	b := fsp.NewBuilder("fix")
	b.AddStates(4)
	b.ArcName(0, "a", 1)
	b.ArcName(1, "b", 2)
	b.ArcName(0, fsp.TauName, 3)
	b.ArcName(3, "b", 2)
	b.Accept(2)
	return b.MustBuild()
}

func TestParseFormulaBasics(t *testing.T) {
	f := parserFixture()
	cases := []struct {
		src   string
		state fsp.State
		want  bool
	}{
		{"tt", 0, true},
		{"ff", 0, false},
		{"<a>tt", 0, true},
		{"<a>tt", 1, false},
		{"<a><b>tt", 0, true},
		{"<tau><b>tt", 0, true},
		{"[a]<b>tt", 0, true}, // all a-successors can do b
		{"[b]ff", 0, true},    // no b-successors: vacuous
		{"[a]ff", 0, false},   // there is an a-successor
		{"!<a>tt", 2, true},
		{"<a>tt & <tau>tt", 0, true},
		{"<b>tt | <a>tt", 0, true},
		{"ext(x)", 2, true},
		{"ext(x)", 0, false},
		{"ext()", 0, true},
		{"ext()", 2, false},
		{"(<a>tt) & !ff", 0, true},
		{"<a>(<b>ext(x))", 0, true},
	}
	for _, tc := range cases {
		phi, err := ParseFormula(tc.src, f)
		if err != nil {
			t.Errorf("ParseFormula(%q): %v", tc.src, err)
			continue
		}
		if got := Satisfies(f, tc.state, phi); got != tc.want {
			t.Errorf("%q at state %d = %v, want %v", tc.src, tc.state, got, tc.want)
		}
	}
}

func TestParseFormulaErrors(t *testing.T) {
	f := parserFixture()
	for _, src := range []string{
		"", "<", "<a", "<a>", "[a", "zz", "<zz>tt", "ext", "ext(", "ext(q)",
		"tt & ", "tt |", "(tt", "tt)", "!",
	} {
		if _, err := ParseFormula(src, f); err == nil {
			t.Errorf("ParseFormula(%q) succeeded, want error", src)
		}
	}
}

func TestParseFormulaEpsAlias(t *testing.T) {
	f := parserFixture()
	sat, _, err := fsp.Saturate(f)
	if err != nil {
		t.Fatal(err)
	}
	phi, err := ParseFormula("<eps><b>tt", sat)
	if err != nil {
		t.Fatal(err)
	}
	// 0 ==eps=> 3 --b--> 2 in the saturated process.
	if !Satisfies(sat, 0, phi) {
		t.Errorf("<eps><b>tt must hold at 0 in the saturated process")
	}
	// eps is not available on unsaturated processes.
	if _, err := ParseFormula("<eps>tt", f); err == nil {
		t.Errorf("eps accepted on unsaturated process")
	}
}

func TestBoxDiamondDuality(t *testing.T) {
	f := parserFixture()
	a, _ := f.Alphabet().Lookup("a")
	phi := Diamond{Act: a, Name: "a", Sub: True{}}
	dual := Not{Sub: Box{Act: a, Name: "a", Sub: Not{Sub: True{}}}}
	for s := 0; s < f.NumStates(); s++ {
		if Satisfies(f, fsp.State(s), phi) != Satisfies(f, fsp.State(s), dual) {
			t.Errorf("duality broken at state %d", s)
		}
	}
}

func TestOrBoxStringAndSize(t *testing.T) {
	f := parserFixture()
	phi, err := ParseFormula("[a]tt | ff", f)
	if err != nil {
		t.Fatal(err)
	}
	s := phi.String()
	if !strings.Contains(s, "[a]") || !strings.Contains(s, "∨") {
		t.Errorf("rendering = %q", s)
	}
	if Size(phi) < 4 {
		t.Errorf("Size = %d", Size(phi))
	}
	if (Or{}).String() != "ff" {
		t.Errorf("empty disjunction renders as %q", (Or{}).String())
	}
}

func TestParsedFormulaRoundTrip(t *testing.T) {
	// Rendering uses unicode connectives; we check semantic stability via
	// a second evaluation rather than string equality.
	f := parserFixture()
	srcs := []string{"<a><b>tt & [tau]<b>tt", "!(<a>tt | ext(x))"}
	for _, src := range srcs {
		phi, err := ParseFormula(src, f)
		if err != nil {
			t.Fatal(err)
		}
		sat1 := Sat(f, phi)
		sat2 := Sat(f, phi)
		for i := range sat1 {
			if sat1[i] != sat2[i] {
				t.Errorf("%q: evaluation not deterministic", src)
			}
		}
	}
}
