package hml

import (
	"strings"
	"testing"

	"ccs/internal/core"
	"ccs/internal/fsp"
)

// branchingPair builds a(b+c) vs ab+ac inside one process.
// States: 0 a(b+c) root; 4 ab+ac root.
func branchingPair() *fsp.FSP {
	b := fsp.NewBuilder("pair")
	b.AddStates(9)
	b.ArcName(0, "a", 1)
	b.ArcName(1, "b", 2)
	b.ArcName(1, "c", 3)
	b.ArcName(4, "a", 5)
	b.ArcName(4, "a", 6)
	b.ArcName(5, "b", 7)
	b.ArcName(6, "c", 8)
	return b.MustBuild()
}

func TestSatisfiesBasics(t *testing.T) {
	f := branchingPair()
	a, _ := f.Alphabet().Lookup("a")
	bAct, _ := f.Alphabet().Lookup("b")

	if !Satisfies(f, 0, True{}) {
		t.Errorf("tt must hold everywhere")
	}
	diaA := Diamond{Act: a, Name: "a", Sub: True{}}
	if !Satisfies(f, 0, diaA) || Satisfies(f, 2, diaA) {
		t.Errorf("⟨a⟩tt evaluation wrong")
	}
	nested := Diamond{Act: a, Name: "a", Sub: Diamond{Act: bAct, Name: "b", Sub: True{}}}
	if !Satisfies(f, 0, nested) {
		t.Errorf("⟨a⟩⟨b⟩tt must hold at 0")
	}
	neg := Not{Sub: nested}
	if Satisfies(f, 0, neg) {
		t.Errorf("negation wrong")
	}
	conj := And{Subs: []Formula{diaA, Not{Sub: Diamond{Act: bAct, Name: "b", Sub: True{}}}}}
	if !Satisfies(f, 0, conj) {
		t.Errorf("conjunction wrong")
	}
	if !Satisfies(f, 0, And{}) {
		t.Errorf("empty conjunction must be tt")
	}
}

func TestSatisfiesExtEq(t *testing.T) {
	b := fsp.NewBuilder("")
	b.AddStates(2)
	b.Accept(0)
	f := b.MustBuild()
	phi := ExtEq{Ext: f.Ext(0), Vars: f.Vars()}
	if !Satisfies(f, 0, phi) || Satisfies(f, 1, phi) {
		t.Errorf("ext atom evaluation wrong")
	}
}

func TestDistinguishBranching(t *testing.T) {
	f := branchingPair()
	phi, err := Distinguish(f, 0, 4)
	if err != nil {
		t.Fatalf("Distinguish: %v", err)
	}
	if !Satisfies(f, 0, phi) {
		t.Errorf("formula %s must hold at state 0", phi)
	}
	if Satisfies(f, 4, phi) {
		t.Errorf("formula %s must fail at state 4", phi)
	}
}

func TestDistinguishSymmetric(t *testing.T) {
	f := branchingPair()
	phi, err := Distinguish(f, 4, 0)
	if err != nil {
		t.Fatalf("Distinguish: %v", err)
	}
	if !Satisfies(f, 4, phi) || Satisfies(f, 0, phi) {
		t.Errorf("formula %s does not distinguish 4 from 0", phi)
	}
}

func TestDistinguishEquivalentFails(t *testing.T) {
	f := branchingPair()
	// States 2 and 3 are both dead with empty extension: equivalent.
	if _, err := Distinguish(f, 2, 3); err == nil {
		t.Errorf("expected error for equivalent states")
	}
}

func TestDistinguishByExtension(t *testing.T) {
	b := fsp.NewBuilder("")
	b.AddStates(2)
	b.Accept(0)
	f := b.MustBuild()
	phi, err := Distinguish(f, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := phi.(ExtEq); !ok {
		t.Errorf("expected an extension atom, got %s", phi)
	}
	if !Satisfies(f, 0, phi) || Satisfies(f, 1, phi) {
		t.Errorf("extension formula wrong")
	}
}

func TestDistinguishWeak(t *testing.T) {
	// a + tau.b vs a + b are weakly inequivalent; get a weak formula.
	b := fsp.NewBuilder("")
	b.AddStates(7)
	b.ArcName(0, "a", 1)
	b.ArcName(0, fsp.TauName, 2)
	b.ArcName(2, "b", 3)
	b.ArcName(4, "a", 5)
	b.ArcName(4, "b", 6)
	f := b.MustBuild()

	phi, sat, err := DistinguishWeak(f, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !Satisfies(sat, 0, phi) || Satisfies(sat, 4, phi) {
		t.Errorf("weak formula %s does not distinguish", phi)
	}
}

func TestDistinguishWeakEquivalentFails(t *testing.T) {
	// tau.a ≈ a: no weak distinguishing formula exists.
	b := fsp.NewBuilder("")
	b.AddStates(5)
	b.ArcName(0, fsp.TauName, 1)
	b.ArcName(1, "a", 2)
	b.ArcName(3, "a", 4)
	f := b.MustBuild()
	ok, err := core.WeakEquivalentStates(f, 0, 3)
	if err != nil || !ok {
		t.Fatalf("setup: tau.a ≈ a expected, got %v %v", ok, err)
	}
	if _, _, err := DistinguishWeak(f, 0, 3); err == nil {
		t.Errorf("expected error for weakly equivalent states")
	}
}

// TestDistinguishAgainstCoreOnRandomPairs: for every pair of states the
// formula exists iff they are not strongly equivalent, and when it exists
// it distinguishes.
func TestDistinguishAgainstCore(t *testing.T) {
	f := branchingPair()
	part := core.StrongPartition(f)
	n := f.NumStates()
	for p := 0; p < n; p++ {
		for q := 0; q < n; q++ {
			same := part.Same(int32(p), int32(q))
			phi, err := Distinguish(f, fsp.State(p), fsp.State(q))
			if same && err == nil {
				t.Errorf("(%d,%d) equivalent but formula %s produced", p, q, phi)
			}
			if !same {
				if err != nil {
					t.Errorf("(%d,%d) inequivalent but no formula: %v", p, q, err)
					continue
				}
				if !Satisfies(f, fsp.State(p), phi) || Satisfies(f, fsp.State(q), phi) {
					t.Errorf("(%d,%d): formula %s does not distinguish", p, q, phi)
				}
			}
		}
	}
}

func TestFormulaStringAndSize(t *testing.T) {
	f := branchingPair()
	a, _ := f.Alphabet().Lookup("a")
	phi := Diamond{Act: a, Name: "a", Sub: And{Subs: []Formula{
		True{},
		Not{Sub: Diamond{Act: a, Name: "a", Sub: True{}}},
	}}}
	s := phi.String()
	for _, want := range []string{"⟨a⟩", "¬", "tt", "∧"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	if Size(phi) != 6 {
		t.Errorf("Size = %d, want 6", Size(phi))
	}
	if (And{}).String() != "tt" {
		t.Errorf("empty conjunction renders as %q", (And{}).String())
	}
	one := And{Subs: []Formula{True{}}}
	if one.String() != "tt" {
		t.Errorf("singleton conjunction renders as %q", one.String())
	}
}
