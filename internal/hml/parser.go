package hml

import (
	"fmt"
	"strings"

	"ccs/internal/fsp"
)

// This file adds the user-facing side of HML: Or and Box connectives and a
// formula parser, so processes can be model-checked against hand-written
// specifications (the "ccs sat" command).
//
// Grammar (precedence low to high: |, &, prefixes):
//
//	or     := and ('|' and)*
//	and    := prefix ('&' prefix)*
//	prefix := '!' prefix | '<' ACTION '>' prefix | '[' ACTION ']' prefix | atom
//	atom   := 'tt' | 'ff' | 'ext' '(' names ')' | '(' or ')'
//
// ACTION is an action name of the process ("tau" included, and "eps" for
// the ε relation of saturated processes); ext(x,y) holds at states whose
// extension is exactly {x,y}; ext() means the empty extension.

// Or is disjunction.
type Or struct{ Subs []Formula }

func (Or) isFormula() {}
func (o Or) String() string {
	if len(o.Subs) == 0 {
		return "ff"
	}
	if len(o.Subs) == 1 {
		return o.Subs[0].String()
	}
	parts := make([]string, len(o.Subs))
	for i, s := range o.Subs {
		parts[i] = s.String()
	}
	return "(" + strings.Join(parts, " ∨ ") + ")"
}

// Box is the necessity modality [Act]Sub: every Act-successor satisfies
// Sub (vacuously true without successors).
type Box struct {
	Act  fsp.Action
	Name string
	Sub  Formula
}

func (Box) isFormula() {}
func (b Box) String() string {
	return "[" + b.Name + "]" + b.Sub.String()
}

// ParseFormula parses an HML formula against the alphabet and variables of
// the given process.
func ParseFormula(src string, f *fsp.FSP) (Formula, error) {
	p := &formulaParser{src: src, f: f}
	phi, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	p.skip()
	if p.pos < len(p.src) {
		return nil, fmt.Errorf("hml: unexpected %q at offset %d", p.src[p.pos], p.pos)
	}
	return phi, nil
}

type formulaParser struct {
	src string
	pos int
	f   *fsp.FSP
}

func (p *formulaParser) skip() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

func (p *formulaParser) peek() (byte, bool) {
	p.skip()
	if p.pos >= len(p.src) {
		return 0, false
	}
	return p.src[p.pos], true
}

func (p *formulaParser) parseOr() (Formula, error) {
	first, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	subs := []Formula{first}
	for {
		c, ok := p.peek()
		if !ok || c != '|' {
			break
		}
		p.pos++
		next, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		subs = append(subs, next)
	}
	if len(subs) == 1 {
		return subs[0], nil
	}
	return Or{Subs: subs}, nil
}

func (p *formulaParser) parseAnd() (Formula, error) {
	first, err := p.parsePrefix()
	if err != nil {
		return nil, err
	}
	subs := []Formula{first}
	for {
		c, ok := p.peek()
		if !ok || c != '&' {
			break
		}
		p.pos++
		next, err := p.parsePrefix()
		if err != nil {
			return nil, err
		}
		subs = append(subs, next)
	}
	if len(subs) == 1 {
		return subs[0], nil
	}
	return And{Subs: subs}, nil
}

func (p *formulaParser) parsePrefix() (Formula, error) {
	c, ok := p.peek()
	if !ok {
		return nil, fmt.Errorf("hml: unexpected end of formula")
	}
	switch c {
	case '!':
		p.pos++
		sub, err := p.parsePrefix()
		if err != nil {
			return nil, err
		}
		return Not{Sub: sub}, nil
	case '<':
		p.pos++
		act, name, err := p.parseActionUntil('>')
		if err != nil {
			return nil, err
		}
		sub, err := p.parsePrefix()
		if err != nil {
			return nil, err
		}
		return Diamond{Act: act, Name: name, Sub: sub}, nil
	case '[':
		p.pos++
		act, name, err := p.parseActionUntil(']')
		if err != nil {
			return nil, err
		}
		sub, err := p.parsePrefix()
		if err != nil {
			return nil, err
		}
		return Box{Act: act, Name: name, Sub: sub}, nil
	default:
		return p.parseAtom()
	}
}

func (p *formulaParser) parseActionUntil(close byte) (fsp.Action, string, error) {
	p.skip()
	start := p.pos
	for p.pos < len(p.src) && p.src[p.pos] != close {
		p.pos++
	}
	if p.pos >= len(p.src) {
		return 0, "", fmt.Errorf("hml: missing %q", string(close))
	}
	name := strings.TrimSpace(p.src[start:p.pos])
	p.pos++
	if name == "" {
		return 0, "", fmt.Errorf("hml: empty action name")
	}
	if name == "eps" {
		name = fsp.EpsilonName
	}
	act, ok := p.f.Alphabet().Lookup(name)
	if !ok {
		return 0, "", fmt.Errorf("hml: action %q not in the process alphabet", name)
	}
	return act, name, nil
}

func (p *formulaParser) parseAtom() (Formula, error) {
	p.skip()
	rest := p.src[p.pos:]
	switch {
	case strings.HasPrefix(rest, "tt"):
		p.pos += 2
		return True{}, nil
	case strings.HasPrefix(rest, "ff"):
		p.pos += 2
		return Not{Sub: True{}}, nil
	case strings.HasPrefix(rest, "ext"):
		p.pos += 3
		c, ok := p.peek()
		if !ok || c != '(' {
			return nil, fmt.Errorf("hml: ext wants '('")
		}
		p.pos++
		start := p.pos
		for p.pos < len(p.src) && p.src[p.pos] != ')' {
			p.pos++
		}
		if p.pos >= len(p.src) {
			return nil, fmt.Errorf("hml: missing ')'")
		}
		inner := p.src[start:p.pos]
		p.pos++
		var ext fsp.VarSet
		for _, name := range strings.FieldsFunc(inner, func(r rune) bool { return r == ',' || r == ' ' }) {
			id, ok := p.f.Vars().Lookup(name)
			if !ok {
				return nil, fmt.Errorf("hml: variable %q not in the process", name)
			}
			ext = ext.With(id)
		}
		return ExtEq{Ext: ext, Vars: p.f.Vars()}, nil
	case strings.HasPrefix(rest, "("):
		p.pos++
		phi, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		c, ok := p.peek()
		if !ok || c != ')' {
			return nil, fmt.Errorf("hml: missing ')'")
		}
		p.pos++
		return phi, nil
	default:
		return nil, fmt.Errorf("hml: unexpected input at offset %d: %q", p.pos, rest)
	}
}
