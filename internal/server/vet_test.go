package server

import (
	"encoding/json"
	"net/http"
	"testing"

	"ccs"
)

// deadNet is a network with an unanswered hidden handshake: the sender
// offers a' but no component ever offers a, and a is hidden — the
// dead-sync exhibit, inline for server travel.
func deadNet() ccs.NetworkRequest {
	const (
		inlineSender = "fsp sender\nstates 2\nstart 0\next 0 x\next 1 x\narc 0 a' 1\narc 1 x 0\n"
		inlineNoise  = "fsp noise\nstates 1\nstart 0\next 0 x\narc 0 y 0\n"
	)
	return ccs.NetworkRequest{
		Name: "dead",
		Components: []ccs.NetworkComponentRef{
			{Process: inlineSender}, {Process: inlineNoise},
		},
		Hide: []string{"a"},
	}
}

// TestVetEndpoint: POST /v1/vet statically analyzes a network request and
// answers the versioned envelope; a clean network answers an empty (not
// null) diagnostics list.
func TestVetEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	body, err := json.Marshal(ccs.NewNetworkCheck("weak", deadNet()))
	if err != nil {
		t.Fatal(err)
	}
	var env ccs.VetEnvelope
	if status := post(t, ts.URL+"/v1/vet", body, &env); status != http.StatusOK {
		t.Fatalf("/v1/vet = %d, want 200", status)
	}
	if env.Schema != ccs.SchemaVersion || len(env.Vets) != 1 {
		t.Fatalf("envelope schema %d with %d reports, want schema %d with 1", env.Schema, len(env.Vets), ccs.SchemaVersion)
	}
	rep := env.Vets[0]
	if rep.Network != "dead" {
		t.Errorf("report names network %q, want %q", rep.Network, "dead")
	}
	found := false
	for _, d := range rep.Diagnostics {
		if d.Code == ccs.CodeDeadSync && d.Severity == ccs.SeverityError {
			found = true
		}
	}
	if !found {
		t.Errorf("diagnostics %v missing the dead-sync error", rep.Diagnostics)
	}

	// Clean network: one report, zero findings, and the list marshals as
	// [] — clients must not have to null-check.
	body, err = json.Marshal(ccs.NewNetworkCheck("weak", relayNet(counterTwo)))
	if err != nil {
		t.Fatal(err)
	}
	env = ccs.VetEnvelope{}
	if status := post(t, ts.URL+"/v1/vet", body, &env); status != http.StatusOK {
		t.Fatalf("/v1/vet clean = %d, want 200", status)
	}
	if len(env.Vets) != 1 || len(env.Vets[0].Diagnostics) != 0 {
		t.Fatalf("clean network: %+v, want one report with no findings", env.Vets)
	}
	if env.Vets[0].Diagnostics == nil {
		t.Errorf("clean diagnostics decoded as nil; the wire document must carry []")
	}
}

// TestVetEndpointRejects: pair requests and malformed bodies answer 400.
func TestVetEndpointRejects(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	pair, err := json.Marshal(ccs.NewCheck("weak", "expr:a", "expr:a"))
	if err != nil {
		t.Fatal(err)
	}
	for name, body := range map[string][]byte{
		"pair request":  pair,
		"truncated":     []byte(`{"relation":"weak"`),
		"unknown field": []byte(`{"relatoin":"weak"}`),
	} {
		if status := post(t, ts.URL+"/v1/vet", body, nil); status != http.StatusBadRequest {
			t.Errorf("%s: /v1/vet = %d, want 400", name, status)
		}
	}
}

// TestNetworkResponseCarriesDiagnostics: /v1/network reports carry the
// vet findings for the query's network alongside the verdict.
func TestNetworkResponseCarriesDiagnostics(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	nr := deadNet()
	nr.Spec = "fsp spec\nstates 1\nstart 0\next 0 x\narc 0 y 0\n"
	status, rep := postReq(t, ts.URL+"/v1/network", ccs.NewNetworkCheck("weak", nr))
	if status != http.StatusOK || rep.Error != nil {
		t.Fatalf("defective network query: status %d, report %+v", status, rep)
	}
	found := false
	for _, d := range rep.Diagnostics {
		if d.Code == ccs.CodeDeadSync {
			found = true
		}
	}
	if !found {
		t.Errorf("network report diagnostics %v missing dead-sync", rep.Diagnostics)
	}

	status, rep = postReq(t, ts.URL+"/v1/network", ccs.NewNetworkCheck("weak", relayNet(counterTwo)))
	if status != http.StatusOK || rep.Error != nil || !rep.Equivalent {
		t.Fatalf("clean network query: status %d, report %+v", status, rep)
	}
	if len(rep.Diagnostics) != 0 {
		t.Errorf("clean network report carries diagnostics: %v", rep.Diagnostics)
	}
}
