package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"ccs"
)

// safeBuf is a goroutine-safe write buffer for the access log.
type safeBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *safeBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *safeBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func get(t *testing.T, url string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header
}

// TestMetricsAndAccessLogUnderLoad drives concurrent traced queries (run
// it with -race), then checks three invariants: every response carries an
// X-CCS-Trace header that matches its report's trace ID, the access log
// records exactly those IDs, and the key metric series all surface on
// /metrics with nonzero counts.
func TestMetricsAndAccessLogUnderLoad(t *testing.T) {
	logBuf := &safeBuf{}
	_, ts := newTestServer(t, Config{AccessLog: logBuf, MaxInFlight: 64})

	const clients = 8
	var (
		mu  sync.Mutex
		ids []string
	)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(net bool) {
			defer wg.Done()
			req := ccs.NewCheck("weak", "expr:a+a", "expr:a", ccs.WithTrace())
			url := ts.URL + "/v1/check"
			if net {
				req = ccs.NewNetworkCheck("weak", relayNet(relayCell), ccs.WithTrace())
				url = ts.URL + "/v1/network"
			}
			body, err := json.Marshal(req)
			if err != nil {
				t.Error(err)
				return
			}
			resp, err := http.Post(url, "application/json", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			var rep ccs.Report
			if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
				t.Error(err)
				return
			}
			header := resp.Header.Get("X-CCS-Trace")
			if header == "" {
				t.Error("response missing X-CCS-Trace")
				return
			}
			if rep.Error != nil {
				t.Errorf("query failed: %v", rep.Error)
				return
			}
			if rep.Trace == nil || rep.Trace.ID != header {
				t.Errorf("report trace ID %v does not match header %q", rep.Trace, header)
				return
			}
			mu.Lock()
			ids = append(ids, header)
			mu.Unlock()
		}(i%2 == 0)
	}
	wg.Wait()

	// Every response header ID appears in the access log with the route
	// and a 200 status.
	logged := map[string]string{}
	sc := bufio.NewScanner(strings.NewReader(logBuf.String()))
	for sc.Scan() {
		var line struct {
			Trace  string `json:"trace"`
			Route  string `json:"route"`
			Status int    `json:"status"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("malformed access log line %q: %v", sc.Text(), err)
		}
		if line.Status != http.StatusOK {
			t.Fatalf("logged status %d: %s", line.Status, sc.Text())
		}
		logged[line.Trace] = line.Route
	}
	for _, id := range ids {
		if route := logged[id]; route != "/v1/check" && route != "/v1/network" {
			t.Fatalf("trace %s not logged with a check route (got %q)", id, route)
		}
	}

	status, metrics, hdr := get(t, ts.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("/metrics = %d", status)
	}
	if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("metrics content type %q", ct)
	}
	// Key series: per-route HTTP counters and histograms, the facade's
	// query counters, the engine's artifact counters and the on-the-fly
	// totals (the relay network decides on the fly). Counts are "at
	// least" — the registry is process-wide and other tests add to it.
	for _, want := range []string{
		`ccs_http_requests_total{route="/v1/check",code="200"}`,
		`ccs_http_requests_total{route="/v1/network",code="200"}`,
		`ccs_http_request_seconds_bucket{route="/v1/check",le="+Inf"}`,
		`ccs_queries_total{route="direct"}`,
		`ccs_query_seconds_count`,
		`ccs_otf_pairs_total`,
		`ccs_engine_artifact_requests_total{kind="weak"}`,
		`ccs_build_info{version="dev"} 1`,
		"ccs_http_in_flight",
		"ccs_checker_processes",
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("metrics missing %q; got:\n%s", want, metrics)
		}
	}
}

// TestVersionSurfaces pins the three places a stamped version shows up:
// /healthz, /v1/stats and ccs_build_info.
func TestVersionSurfaces(t *testing.T) {
	_, ts := newTestServer(t, Config{Version: "v9.9-test"})

	if _, body, _ := get(t, ts.URL+"/healthz"); !strings.Contains(body, "v9.9-test") {
		t.Fatalf("healthz body %q lacks version", body)
	}
	_, body, _ := get(t, ts.URL+"/v1/stats")
	var stats ccs.ServerStats
	if err := json.Unmarshal([]byte(body), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Version != "v9.9-test" {
		t.Fatalf("stats version %q", stats.Version)
	}
	if _, metrics, _ := get(t, ts.URL+"/metrics"); !strings.Contains(metrics, `ccs_build_info{version="v9.9-test"} 1`) {
		t.Fatalf("build info series missing:\n%s", metrics)
	}
}

// TestPprofGated: profiling endpoints exist only behind EnablePprof.
func TestPprofGated(t *testing.T) {
	_, off := newTestServer(t, Config{})
	if status, _, _ := get(t, off.URL+"/debug/pprof/"); status != http.StatusNotFound {
		t.Fatalf("pprof reachable without the flag: %d", status)
	}
	_, on := newTestServer(t, Config{EnablePprof: true})
	if status, body, _ := get(t, on.URL+"/debug/pprof/"); status != http.StatusOK || !strings.Contains(body, "pprof") {
		t.Fatalf("pprof index = %d", status)
	}
}
