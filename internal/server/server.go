// Package server exposes the equivalence checker as an HTTP/JSON service
// — equivalence-as-a-service over the one request schema the facade and
// the CLI already speak (ccs.CheckRequest / ccs.Report, schema.go).
//
// Endpoints:
//
//	GET  /healthz     liveness probe, "ok"
//	POST /v1/check    one pair CheckRequest  -> one Report
//	POST /v1/network  one network CheckRequest -> one Report
//	POST /v1/batch    a request document (envelope, array, or single
//	                  object) -> a versioned ReportEnvelope
//	POST /v1/vet      one network CheckRequest -> a versioned VetEnvelope
//	                  of static-analysis findings (no check runs; network
//	                  reports also carry diagnostics inline)
//	GET  /v1/stats    ccs.ServerStats: query counters, admission state,
//	                  checker cache and artifact-store counters
//
// Requests must be self-contained: process sources are inline interchange
// text or "expr:" expressions, never file paths (the loader is nil). A
// syntactically malformed body, or a single request whose content is
// rejected (unknown relation, unparsable process, bad route), answers 400
// with the typed report error in the body; batch documents always answer
// 200 with per-request errors in-band, so one bad query cannot hide the
// other verdicts. Admission control bounds concurrently served requests;
// excess load answers 429 + Retry-After rather than queueing without
// bound. Per-query timeouts (request timeout_ms, capped by the server's
// MaxTimeout) turn into in-band "timeout" report errors, keeping the
// connection's answer well-formed.
//
// The Server holds one long-lived ccs.Checker, so the in-memory artifact
// cache warms across requests; with a store-backed Checker
// (ccs.NewStoreChecker) the warmth additionally survives restarts.
package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ccs"
	"ccs/internal/obs"
)

// Config configures a Server. The zero value of every field but Checker
// picks a sensible default.
type Config struct {
	// Checker answers the queries; required. Share one across the
	// process: its caches are the service's warmth.
	Checker *ccs.Checker
	// Workers bounds each batch request's worker pool (<= 0: GOMAXPROCS).
	Workers int
	// MaxInFlight bounds concurrently served check requests; further
	// requests answer 429. <= 0 selects 2*GOMAXPROCS.
	MaxInFlight int
	// MaxTimeout caps (and, when a request names none, sets) the
	// per-query timeout. 0 means no server-imposed bound.
	MaxTimeout time.Duration
	// MaxBodyBytes caps request body size. <= 0 selects 16 MiB.
	MaxBodyBytes int64
	// Version is the serving binary's build version, surfaced in
	// /healthz, /v1/stats and the ccs_build_info metric. Empty means
	// "dev".
	Version string
	// EnablePprof mounts net/http/pprof's profiling handlers under
	// /debug/pprof/. Off by default: profiles expose internals, so the
	// operator opts in (the CLI's -pprof flag).
	EnablePprof bool
	// AccessLog, when non-nil, receives one structured JSON line per
	// request (time, trace ID, method, path, route, status, duration).
	// Writes are serialized; any io.Writer works.
	AccessLog io.Writer
	// Registry is the metrics registry /metrics exposes; nil selects the
	// process-wide default, which is where the facade, engine and store
	// already report.
	Registry *obs.Registry
}

// Server is the HTTP face of a ccs.Checker. Construct with New; serve its
// Handler.
type Server struct {
	cfg      Config
	sem      chan struct{}
	queries  atomic.Int64
	failed   atomic.Int64
	rejected atomic.Int64

	reg          *obs.Registry
	httpSeconds  *obs.HistogramVec
	httpRequests *obs.CounterVec
	httpRejected *obs.Counter
	logMu        sync.Mutex
}

// New validates the config and returns a Server.
func New(cfg Config) (*Server, error) {
	if cfg.Checker == nil {
		return nil, fmt.Errorf("server: config needs a Checker")
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 2 * runtime.GOMAXPROCS(0)
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 16 << 20
	}
	if cfg.Version == "" {
		cfg.Version = "dev"
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.Default()
	}
	s := &Server{cfg: cfg, sem: make(chan struct{}, cfg.MaxInFlight), reg: cfg.Registry}
	s.httpSeconds = s.reg.HistogramVec("ccs_http_request_seconds",
		"Wall time per HTTP request, by route.", obs.DefBuckets(), "route")
	s.httpRequests = s.reg.CounterVec("ccs_http_requests_total",
		"HTTP requests served, by route and status code.", "route", "code")
	s.httpRejected = s.reg.Counter("ccs_http_rejected_total",
		"Requests turned away by admission control (429).")
	s.reg.GaugeVec("ccs_build_info",
		"Build metadata; the value is always 1, the version rides in the label.",
		"version").With(cfg.Version).Set(1)
	// GaugeFunc registration is first-wins on a shared registry: the
	// first server's checker feeds the gauge (one checker per process is
	// the intended shape; tests spinning up several keep the first).
	s.reg.GaugeFunc("ccs_checker_processes",
		"Structurally distinct processes the checker's artifact cache has seen.",
		func() float64 { return float64(cfg.Checker.Stats().Processes) })
	s.reg.GaugeFunc("ccs_http_in_flight",
		"Requests currently being answered.",
		func() float64 { return float64(len(s.sem)) })
	return s, nil
}

// Handler returns the route table, wrapped in the tracing/metrics/access-
// log middleware.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "ok %s\n", s.cfg.Version)
	})
	mux.HandleFunc("POST /v1/check", s.handleSingle(false))
	mux.HandleFunc("POST /v1/network", s.handleSingle(true))
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("POST /v1/vet", s.handleVet)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.cfg.EnablePprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return s.instrument(mux)
}

// admit reserves an admission slot, answering 429 when the server is at
// MaxInFlight. The returned release must be called iff ok.
func (s *Server) admit(w http.ResponseWriter) (release func(), ok bool) {
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, true
	default:
		s.rejected.Add(1)
		s.httpRejected.Inc()
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, map[string]string{
			"error": fmt.Sprintf("server at capacity (%d in flight)", s.cfg.MaxInFlight),
		})
		return nil, false
	}
}

// clampTimeout applies the server's per-query timeout policy in place.
func (s *Server) clampTimeout(req *ccs.CheckRequest) {
	if s.cfg.MaxTimeout <= 0 {
		return
	}
	maxMS := s.cfg.MaxTimeout.Milliseconds()
	if maxMS == 0 {
		// A sub-millisecond cap still means "bounded", never "no bound".
		maxMS = 1
	}
	if req.TimeoutMS <= 0 || req.TimeoutMS > maxMS {
		req.TimeoutMS = maxMS
	}
}

// handleSingle answers /v1/check (pair) and /v1/network (network): one
// strict-JSON CheckRequest in, one Report out. Input-level rejections —
// including a pair request on the network endpoint and vice versa —
// answer 400 with the report (its typed error says why); completed
// queries answer 200 even when the report carries a check/timeout error.
func (s *Server) handleSingle(wantNetwork bool) http.HandlerFunc {
	endpoint := "/v1/check"
	if wantNetwork {
		endpoint = "/v1/network"
	}
	return func(w http.ResponseWriter, r *http.Request) {
		release, ok := s.admit(w)
		if !ok {
			return
		}
		defer release()
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
		var req ccs.CheckRequest
		if err := strictDecode(body, &req); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
		if wantNetwork != (req.Network != nil) {
			rep := ccs.Report{Label: req.Label, Relation: req.Relation, Error: &ccs.ReportError{
				Kind:    ccs.ErrorKindInput,
				Message: fmt.Sprintf("%s wants a %s request", endpoint, map[bool]string{true: "network", false: "pair"}[wantNetwork]),
			}}
			s.count(rep)
			writeJSON(w, http.StatusBadRequest, rep)
			return
		}
		s.clampTimeout(&req)
		rep := s.cfg.Checker.Do(r.Context(), req, nil)
		s.count(rep)
		status := http.StatusOK
		if rep.Error != nil && rep.Error.Kind == ccs.ErrorKindInput {
			status = http.StatusBadRequest
		}
		writeJSON(w, status, rep)
	}
}

// handleBatch answers /v1/batch: a request document in any accepted JSON
// form, a versioned ReportEnvelope out, errors in-band per report.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admit(w)
	if !ok {
		return
	}
	defer release()
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	reqs, err := ccs.DecodeRequests(body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	for i := range reqs {
		s.clampTimeout(&reqs[i])
	}
	reps := s.cfg.Checker.DoAll(r.Context(), reqs, s.cfg.Workers, nil)
	for _, rep := range reps {
		s.count(rep)
	}
	writeJSON(w, http.StatusOK, ccs.ReportEnvelope{Schema: ccs.SchemaVersion, Reports: reps})
}

// handleVet answers /v1/vet: one network-shaped CheckRequest in (the spec
// and relation are optional — only the network matters), a versioned
// VetEnvelope of static-analysis findings out. Analysis runs without a
// checker, so vet queries don't enter the query/failed counters; admission
// still applies — the pass is cheap but not free. Malformed bodies,
// pair-shaped requests and unresolvable processes answer 400.
func (s *Server) handleVet(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admit(w)
	if !ok {
		return
	}
	defer release()
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	var req ccs.CheckRequest
	if err := strictDecode(body, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	if req.Network == nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{
			"error": "/v1/vet wants a network request",
		})
		return
	}
	diags, err := ccs.VetNetworkRequest(*req.Network, nil)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	if diags == nil {
		diags = []ccs.Diagnostic{}
	}
	writeJSON(w, http.StatusOK, ccs.VetEnvelope{Schema: ccs.SchemaVersion, Vets: []ccs.VetReport{{
		Label:       req.Label,
		Network:     req.Network.Name,
		Diagnostics: diags,
	}}})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// Stats snapshots the server's counters.
func (s *Server) Stats() ccs.ServerStats {
	return ccs.ServerStats{
		Schema:      ccs.SchemaVersion,
		Version:     s.cfg.Version,
		Queries:     s.queries.Load(),
		Failed:      s.failed.Load(),
		Rejected:    s.rejected.Load(),
		InFlight:    len(s.sem),
		MaxInFlight: s.cfg.MaxInFlight,
		Workers:     ccs.PoolSize(s.cfg.Workers, 1<<30),
		Checker:     s.cfg.Checker.Stats(),
	}
}

func (s *Server) count(rep ccs.Report) {
	s.queries.Add(1)
	if rep.Error != nil {
		s.failed.Add(1)
	}
}

// strictDecode unmarshals one JSON object rejecting unknown fields.
func strictDecode(data []byte, v any) error {
	reqs, err := ccs.DecodeRequests(data)
	if err != nil {
		return err
	}
	if len(reqs) != 1 {
		return fmt.Errorf("endpoint wants exactly one request, got %d", len(reqs))
	}
	*(v.(*ccs.CheckRequest)) = reqs[0]
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
