package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ccs"
)

// inline interchange fixtures. Processes travel inline in server requests
// (the loader is nil), so every fixture is full interchange text.
const (
	inlineTauA = "fsp p\nstates 2\nstart 0\narc 0 tau 1\narc 1 a 0\n"
	inlineA    = "fsp q\nstates 2\nstart 0\narc 0 a 1\narc 1 a 0\n"

	relayCell = "fsp cell\nstates 3\nstart 0\next 0 x\next 1 x\next 2 x\n" +
		"arc 0 in 1\narc 1 tau 2\narc 2 out' 0\n"
	counterTwo = "fsp counter\nstates 3\nstart 0\next 0 x\next 1 x\next 2 x\n" +
		"arc 0 c0 1\narc 1 c2' 0\narc 1 c0 2\narc 2 c2' 1\n"
)

// relayNet is the two-cell relay network used across the suite.
func relayNet(spec string) ccs.NetworkRequest {
	return ccs.NetworkRequest{
		Name: "relay2",
		Components: []ccs.NetworkComponentRef{
			{Process: relayCell, Relabel: map[string]string{"in": "c0", "out": "c1"}},
			{Process: relayCell, Relabel: map[string]string{"in": "c1", "out": "c2"}},
		},
		Hide: []string{"c1"},
		Spec: spec,
	}
}

// tauChain builds an n-state tau chain in the interchange format. Its
// weak closure is quadratic, so a large chain makes a reliably slow
// query for the timeout tests.
func tauChain(n int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "fsp chain%d\nstates %d\nstart 0\n", n, n)
	for i := 0; i+1 < n; i++ {
		fmt.Fprintf(&b, "arc %d tau %d\n", i, i+1)
	}
	fmt.Fprintf(&b, "arc %d a 0\n", n-1)
	return b.String()
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Checker == nil {
		cfg.Checker = ccs.NewChecker()
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// post sends the request body and decodes the response into out (when
// non-nil), returning the status code.
func post(t *testing.T, url string, body []byte, out any) int {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding response: %v", err)
		}
	}
	return resp.StatusCode
}

func postReq(t *testing.T, url string, req ccs.CheckRequest) (int, ccs.Report) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	var rep ccs.Report
	status := post(t, url, body, &rep)
	return status, rep
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", resp.StatusCode)
	}
}

// TestCheckAgreesWithFacade round-trips a verdict gallery through
// /v1/check and compares every answer with the direct facade call.
func TestCheckAgreesWithFacade(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	gallery := []struct {
		relation, p, q string
	}{
		{"weak", "expr:a+a", "expr:a"},
		{"strong", "expr:a+a", "expr:a"},
		{"strong", "expr:a(b+c)", "expr:ab+ac"},
		{"trace", "expr:a(b+c)", "expr:ab+ac"},
		{"simulation", "expr:a(b+c)", "expr:ab+ac"},
		{"congruence", inlineTauA, inlineA},
		{"weak", inlineTauA, inlineA},
		{"k2", "expr:a(b+c)", "expr:ab+ac"},
	}
	c := ccs.NewChecker()
	for _, g := range gallery {
		status, rep := postReq(t, ts.URL+"/v1/check", ccs.NewCheck(g.relation, g.p, g.q))
		if status != http.StatusOK || rep.Error != nil {
			t.Fatalf("%s %q %q: status %d, error %+v", g.relation, g.p, g.q, status, rep.Error)
		}
		want := c.Do(t.Context(), ccs.NewCheck(g.relation, g.p, g.q), nil)
		if want.Error != nil {
			t.Fatalf("facade failed: %+v", want.Error)
		}
		if rep.Equivalent != want.Equivalent {
			t.Errorf("%s %q %q: server %v, facade %v", g.relation, g.p, g.q, rep.Equivalent, want.Equivalent)
		}
		if rep.Route != ccs.RouteDirect {
			t.Errorf("pair route = %q, want %q", rep.Route, ccs.RouteDirect)
		}
	}
}

func TestNetworkEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, rep := postReq(t, ts.URL+"/v1/network", ccs.NewNetworkCheck("weak", relayNet(counterTwo)))
	if status != http.StatusOK || rep.Error != nil || !rep.Equivalent {
		t.Fatalf("relay vs counter: status %d, report %+v", status, rep)
	}
	if rep.Route == "" {
		t.Errorf("network report carries no route")
	}

	// The same network pinned to each route agrees.
	for _, route := range []string{"otf", ccs.RouteMTC} {
		status, rep := postReq(t, ts.URL+"/v1/network",
			ccs.NewNetworkCheck("weak", relayNet(counterTwo), ccs.WithRoute(route)))
		if status != http.StatusOK || rep.Error != nil || !rep.Equivalent {
			t.Fatalf("route %s: status %d, report %+v", route, status, rep)
		}
	}

	// Endpoint shape is enforced both ways: a pair request on /v1/network
	// and a network request on /v1/check answer 400 with a typed input
	// error.
	status, rep = postReq(t, ts.URL+"/v1/network", ccs.NewCheck("weak", "expr:a", "expr:a"))
	if status != http.StatusBadRequest || rep.Error == nil || rep.Error.Kind != ccs.ErrorKindInput {
		t.Errorf("pair on /v1/network: status %d, report %+v", status, rep)
	}
	status, rep = postReq(t, ts.URL+"/v1/check", ccs.NewNetworkCheck("weak", relayNet(counterTwo)))
	if status != http.StatusBadRequest || rep.Error == nil || rep.Error.Kind != ccs.ErrorKindInput {
		t.Errorf("network on /v1/check: status %d, report %+v", status, rep)
	}
}

func TestMalformedRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for name, body := range map[string]string{
		"truncated JSON":   `{"relation":"weak"`,
		"unknown field":    `{"relatoin":"weak","p":"expr:a","q":"expr:a"}`,
		"two requests":     `[{"relation":"weak","p":"expr:a","q":"expr:a"},{"relation":"weak","p":"expr:a","q":"expr:a"}]`,
		"future schema":    `{"schema":99,"requests":[]}`,
		"not JSON at all":  `weak expr:a expr:a`,
		"wrong value type": `{"relation":42}`,
	} {
		if status := post(t, ts.URL+"/v1/check", []byte(body), nil); status != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, status)
		}
	}

	// Content-level rejections carry the typed report error.
	for name, req := range map[string]ccs.CheckRequest{
		"unknown relation": ccs.NewCheck("sideways", "expr:a", "expr:a"),
		"bad route":        ccs.NewCheck("weak", "expr:a", "expr:a", ccs.WithRoute("scenic")),
		"unparsable":       ccs.NewCheck("weak", "expr:((", "expr:a"),
		"external ref":     ccs.NewCheck("weak", "some/file.fsp", "expr:a"),
		"missing q":        {Relation: "weak", P: "expr:a"},
	} {
		status, rep := postReq(t, ts.URL+"/v1/check", req)
		if status != http.StatusBadRequest || rep.Error == nil || rep.Error.Kind != ccs.ErrorKindInput {
			t.Errorf("%s: status %d, report %+v", name, status, rep)
		}
	}
}

func TestBatchEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	reqs := []ccs.CheckRequest{
		ccs.NewCheck("weak", "expr:a+a", "expr:a", ccs.WithLabel("eq")),
		ccs.NewCheck("strong", "expr:a(b+c)", "expr:ab+ac", ccs.WithLabel("neq")),
		ccs.NewCheck("sideways", "expr:a", "expr:a", ccs.WithLabel("bad")),
		ccs.NewNetworkCheck("weak", relayNet(counterTwo), ccs.WithLabel("net")),
	}
	body, err := ccs.EncodeRequests(reqs)
	if err != nil {
		t.Fatal(err)
	}
	var env ccs.ReportEnvelope
	// Batch answers 200 even though one request is bad: errors ride
	// in-band so one bad query cannot hide the other verdicts.
	if status := post(t, ts.URL+"/v1/batch", body, &env); status != http.StatusOK {
		t.Fatalf("batch status %d, want 200", status)
	}
	if env.Schema != ccs.SchemaVersion || len(env.Reports) != 4 {
		t.Fatalf("envelope: %+v", env)
	}
	if !env.Reports[0].Equivalent || env.Reports[0].Label != "eq" {
		t.Errorf("report 0: %+v", env.Reports[0])
	}
	if env.Reports[1].Equivalent || env.Reports[1].Error != nil {
		t.Errorf("report 1: %+v", env.Reports[1])
	}
	if env.Reports[2].Error == nil || env.Reports[2].Error.Kind != ccs.ErrorKindInput {
		t.Errorf("report 2: %+v", env.Reports[2])
	}
	if !env.Reports[3].Equivalent || env.Reports[3].Error != nil {
		t.Errorf("report 3: %+v", env.Reports[3])
	}
}

// TestTimeoutInBand: a query slower than the server's timeout cap
// answers 200 with the typed timeout error in the report, not a broken
// connection.
func TestTimeoutInBand(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxTimeout: time.Millisecond})
	chain := tauChain(1500)
	status, rep := postReq(t, ts.URL+"/v1/check", ccs.NewCheck("weak", chain, tauChain(1499)))
	if status != http.StatusOK {
		t.Fatalf("status %d, want 200", status)
	}
	if rep.Error == nil || rep.Error.Kind != ccs.ErrorKindTimeout {
		t.Fatalf("report %+v, want timeout error", rep)
	}

	// A request asking for more than the cap is clamped down to it.
	status, rep = postReq(t, ts.URL+"/v1/check",
		ccs.NewCheck("weak", chain, tauChain(1498), ccs.WithTimeout(time.Hour)))
	if status != http.StatusOK || rep.Error == nil || rep.Error.Kind != ccs.ErrorKindTimeout {
		t.Fatalf("clamped request: status %d, report %+v", status, rep)
	}
}

// TestAdmissionControl: with the server at capacity further requests
// answer 429 + Retry-After instead of queueing.
func TestAdmissionControl(t *testing.T) {
	srv, ts := newTestServer(t, Config{MaxInFlight: 1})
	srv.sem <- struct{}{} // occupy the only slot
	resp, err := http.Post(ts.URL+"/v1/check", "application/json",
		strings.NewReader(`{"relation":"weak","p":"expr:a","q":"expr:a"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Errorf("429 without Retry-After")
	}
	if got := srv.Stats().Rejected; got != 1 {
		t.Errorf("rejected counter = %d, want 1", got)
	}
	<-srv.sem // release; the server serves again
	if status, rep := postReq(t, ts.URL+"/v1/check", ccs.NewCheck("weak", "expr:a", "expr:a")); status != http.StatusOK || rep.Error != nil {
		t.Fatalf("after release: status %d, report %+v", status, rep)
	}
}

func TestStatsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxInFlight: 7, Workers: 3})
	postReq(t, ts.URL+"/v1/check", ccs.NewCheck("weak", "expr:a+a", "expr:a"))
	postReq(t, ts.URL+"/v1/check", ccs.NewCheck("sideways", "expr:a", "expr:a"))
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st ccs.ServerStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Schema != ccs.SchemaVersion || st.Queries != 2 || st.Failed != 1 ||
		st.MaxInFlight != 7 || st.Workers != 3 || st.InFlight != 0 {
		t.Fatalf("stats: %+v", st)
	}
	if st.Checker.Processes == 0 {
		t.Errorf("checker stats missing: %+v", st.Checker)
	}
	if st.Checker.Store != nil {
		t.Errorf("memory-only checker reports a store: %+v", st.Checker.Store)
	}
}

// TestWarmRestartHitsStore: a store-backed server answers a repeated
// query from the persistent store after a restart — the serving analogue
// of the cold-vs-warm benchmark.
func TestWarmRestartHitsStore(t *testing.T) {
	dir := t.TempDir()
	query := ccs.NewCheck("weak", inlineTauA, inlineA)

	cold, err := ccs.NewStoreChecker(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Checker: cold})
	if status, rep := postReq(t, ts.URL+"/v1/check", query); status != http.StatusOK || rep.Error != nil {
		t.Fatalf("cold query: status %d, report %+v", status, rep)
	}
	if st := cold.Stats().Store; st == nil || st.Writes == 0 {
		t.Fatalf("cold server wrote nothing: %+v", st)
	}

	// "Restart": a fresh checker on the same directory.
	warm, err := ccs.NewStoreChecker(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, ts2 := newTestServer(t, Config{Checker: warm})
	if status, rep := postReq(t, ts2.URL+"/v1/check", query); status != http.StatusOK || rep.Error != nil {
		t.Fatalf("warm query: status %d, report %+v", status, rep)
	}
	resp, err := http.Get(ts2.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st ccs.ServerStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Checker.Store == nil || st.Checker.Store.Hits == 0 {
		t.Fatalf("warm server hit nothing: %+v", st.Checker.Store)
	}
	if st.Checker.Store.Misses != 0 {
		t.Errorf("warm server missed: %+v", st.Checker.Store)
	}
}

// TestConcurrentRequests hammers every endpoint from many goroutines;
// its value is under -race.
func TestConcurrentRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxInFlight: 64})
	batch, err := ccs.EncodeRequests([]ccs.CheckRequest{
		ccs.NewCheck("weak", "expr:a+a", "expr:a"),
		ccs.NewNetworkCheck("weak", relayNet(counterTwo)),
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				switch (g + i) % 3 {
				case 0:
					resp, err := http.Post(ts.URL+"/v1/check", "application/json",
						strings.NewReader(`{"relation":"strong","p":"expr:a(b+c)","q":"expr:ab+ac"}`))
					if err == nil {
						resp.Body.Close()
					}
				case 1:
					resp, err := http.Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader(batch))
					if err == nil {
						resp.Body.Close()
					}
				default:
					resp, err := http.Get(ts.URL + "/v1/stats")
					if err == nil {
						resp.Body.Close()
					}
				}
			}
		}(g)
	}
	wg.Wait()
	status, rep := postReq(t, ts.URL+"/v1/check", ccs.NewCheck("weak", "expr:a", "expr:a"))
	if status != http.StatusOK || rep.Error != nil || !rep.Equivalent {
		t.Fatalf("after hammering: status %d, report %+v", status, rep)
	}
}
