package server

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"time"

	"ccs/internal/obs"
)

// This file is the server's observability middleware: every request gets
// a trace ID (echoed in the X-CCS-Trace response header and stamped on
// the context, so a traced query's Report.Trace.ID matches), a per-route
// latency observation, and — when Config.AccessLog is set — one JSON
// access-log line.

// handleMetrics serves the registry in the Prometheus text exposition
// format (version 0.0.4).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w)
}

// routeLabel folds a request path onto the bounded route set the metrics
// use as a label — never the raw path, which is client-controlled and
// would let a scanner mint unbounded series.
func routeLabel(path string) string {
	switch path {
	case "/healthz", "/metrics", "/v1/check", "/v1/network", "/v1/batch", "/v1/vet", "/v1/stats":
		return path
	}
	if strings.HasPrefix(path, "/debug/pprof/") {
		return "pprof"
	}
	return "other"
}

// statusWriter records the status code written downstream.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// accessLine is the access log's wire form, one JSON object per line.
type accessLine struct {
	Time       string  `json:"time"`
	Trace      string  `json:"trace"`
	Method     string  `json:"method"`
	Path       string  `json:"path"`
	Route      string  `json:"route"`
	Status     int     `json:"status"`
	DurationMS float64 `json:"duration_ms"`
}

// instrument wraps the route table with tracing, metrics and logging.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := obs.NewTraceID()
		w.Header().Set("X-CCS-Trace", id)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r.WithContext(obs.WithRequestID(r.Context(), id)))

		dur := time.Since(start)
		route := routeLabel(r.URL.Path)
		s.httpSeconds.With(route).Observe(dur.Seconds())
		s.httpRequests.With(route, strconv.Itoa(sw.status)).Inc()

		if s.cfg.AccessLog != nil {
			line, err := json.Marshal(accessLine{
				Time:       start.UTC().Format(time.RFC3339Nano),
				Trace:      id,
				Method:     r.Method,
				Path:       r.URL.Path,
				Route:      route,
				Status:     sw.status,
				DurationMS: float64(dur) / float64(time.Millisecond),
			})
			if err == nil {
				s.logMu.Lock()
				s.cfg.AccessLog.Write(append(line, '\n'))
				s.logMu.Unlock()
			}
		}
	})
}
