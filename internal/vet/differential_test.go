package vet_test

import (
	"fmt"
	"math/rand"
	"testing"

	"ccs/internal/compose"
	"ccs/internal/gen"
	"ccs/internal/vet"
)

// The differential suite pins the soundness contract of dead-sync: a
// flagged channel must really never fire in the flat product. The ground
// truth is a direct BFS over reachable product state vectors via
// Expansion.Succ, checking at every vector whether any two distinct
// components simultaneously enable the channel and its co-name — the
// exact firing condition of the pairwise handshake.

// productStateCap bounds the ground-truth BFS; instances past the cap are
// skipped (the gallery and the random networks stay far below it).
const productStateCap = 1 << 16

// handshakeReachable explores the reachable product and reports whether a
// handshake on the channel (by dense send/receive label ids) is enabled
// anywhere; ok is false when the product exceeded the cap.
func handshakeReachable(e *compose.Expansion, send, recv int32) (fires, ok bool) {
	k := e.K()
	enabled := func(i int, s int32, l int32) bool {
		if l < 0 {
			return false
		}
		for _, arc := range e.Trans[i][s] {
			if arc.Label == l {
				return true
			}
		}
		return false
	}
	key := func(v []int32) string { return fmt.Sprint(v) }

	start := append([]int32(nil), e.Starts...)
	seen := map[string]bool{key(start): true}
	queue := [][]int32{start}
	succ := make([]int32, k)
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for i := 0; i < k; i++ {
			if !enabled(i, cur[i], send) {
				continue
			}
			for j := 0; j < k; j++ {
				if j != i && enabled(j, cur[j], recv) {
					return true, true
				}
			}
		}
		e.Succ(cur, succ, func(label int32, next []int32) bool {
			kk := key(next)
			if !seen[kk] {
				seen[kk] = true
				queue = append(queue, append([]int32(nil), next...))
			}
			return true
		})
		if len(seen) > productStateCap {
			return false, false
		}
	}
	return false, true
}

// checkDeadSyncSound verifies every dead-sync finding on the network
// against the flat product.
func checkDeadSyncSound(t *testing.T, name string, net *compose.Network) {
	t.Helper()
	diags, err := vet.Network(net, nil)
	if err != nil {
		t.Fatalf("%s: vet.Network: %v", name, err)
	}
	e, err := net.Expand()
	if err != nil {
		t.Fatalf("%s: Expand: %v", name, err)
	}
	ids := map[string]int32{}
	for id, n := range e.Labels {
		ids[n] = int32(id)
	}
	lookup := func(n string) int32 {
		if id, okk := ids[n]; okk {
			return id
		}
		return -1
	}
	for _, d := range diags {
		if d.Code != vet.CodeDeadSync {
			continue
		}
		send := lookup(d.Channel)
		recv := lookup(d.Channel + "'")
		fires, ok := handshakeReachable(e, send, recv)
		if !ok {
			t.Logf("%s: product exceeded %d states, skipping channel %q", name, productStateCap, d.Channel)
			continue
		}
		if fires {
			t.Errorf("%s: dead-sync flagged channel %q, but the flat product can fire the handshake", name, d.Channel)
		}
	}
}

// TestDeadSyncDifferentialGallery verifies the gallery exhibits and the
// equivalence gallery's networks.
func TestDeadSyncDifferentialGallery(t *testing.T) {
	for _, entry := range gen.VetGallery() {
		checkDeadSyncSound(t, entry.Name, entry.Net)
	}
	for _, entry := range gen.NetworkGallery() {
		checkDeadSyncSound(t, entry.Name, entry.Net)
	}
}

// TestDeadSyncDifferentialRandom sweeps seeded random networks — the
// relabel/hide combinations there produce genuinely dead channels at a
// good rate, and each finding must survive the product check.
func TestDeadSyncDifferentialRandom(t *testing.T) {
	seeds := 200
	if testing.Short() {
		seeds = 40
	}
	flagged := 0
	for seed := 0; seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		net := gen.RandomNetwork(rng)
		diags, err := vet.Network(net, nil)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, d := range diags {
			if d.Code == vet.CodeDeadSync {
				flagged++
			}
		}
		checkDeadSyncSound(t, fmt.Sprintf("seed-%d", seed), net)
	}
	// The sweep is only meaningful if the generator actually produces
	// dead channels; the hide("a")/relabel mix does, reliably.
	if flagged == 0 {
		t.Error("no dead-sync findings across the whole random sweep; the differential is vacuous")
	}
}
