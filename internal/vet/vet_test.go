package vet_test

import (
	"encoding/json"
	"sort"
	"strings"
	"testing"

	"ccs/internal/compose"
	"ccs/internal/fsp"
	"ccs/internal/gen"
	"ccs/internal/vet"
)

// expectedSeverity is the catalogue's code -> severity contract; the
// sort-mismatch severity is direction-dependent, so it is checked per
// entry instead.
var expectedSeverity = map[string]string{
	vet.CodeDeadSync:          vet.SeverityError,
	vet.CodeRestrictionSink:   vet.SeverityError,
	vet.CodeRelabelCollision:  vet.SeverityWarning,
	vet.CodeRelabelRestricted: vet.SeverityWarning,
	vet.CodeTauDivergence:     vet.SeverityWarning,
	vet.CodeUnguardedStart:    vet.SeverityWarning,
	vet.CodeUndefinedChannel:  vet.SeverityError,
}

func codesOf(diags []vet.Diagnostic) []string {
	out := make([]string, len(diags))
	for i, d := range diags {
		out[i] = d.Code
	}
	sort.Strings(out)
	return out
}

// TestGalleryExactCodes pins the defect gallery: every exhibit reports
// exactly its catalogued codes, once each, with the contracted severity.
func TestGalleryExactCodes(t *testing.T) {
	for _, entry := range gen.VetGallery() {
		t.Run(entry.Name, func(t *testing.T) {
			diags, err := vet.Network(entry.Net, entry.Spec)
			if err != nil {
				t.Fatalf("vet.Network: %v", err)
			}
			want := append([]string(nil), entry.Codes...)
			sort.Strings(want)
			got := codesOf(diags)
			if strings.Join(got, ",") != strings.Join(want, ",") {
				t.Fatalf("codes = %v, want %v\ndiagnostics:\n%s",
					got, want, renderAll(diags))
			}
			for _, d := range diags {
				if wantSev, ok := expectedSeverity[d.Code]; ok && d.Severity != wantSev {
					t.Errorf("%s severity = %q, want %q", d.Code, d.Severity, wantSev)
				}
				if d.Message == "" {
					t.Errorf("%s has an empty message", d.Code)
				}
			}
		})
	}
}

func renderAll(diags []vet.Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		b.WriteString("  " + d.String() + "\n")
	}
	return b.String()
}

// TestSortMismatchDirections pins the direction-dependent severity: a
// spec-only action is an error (sound inequivalence proof), a
// network-only action is a warning (component reachability
// overapproximates the product's).
func TestSortMismatchDirections(t *testing.T) {
	net, spec := gen.SortMismatchPair()
	diags, err := vet.Network(net, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || diags[0].Code != vet.CodeSortMismatch || diags[0].Severity != vet.SeverityError {
		t.Fatalf("spec-only direction: got %v, want one sort-mismatch error", diags)
	}
	if !vet.HasErrors(diags) {
		t.Fatal("HasErrors = false on a sort-mismatch error")
	}

	// Swap the direction: the network performs a, b; the spec only a.
	diags, err = vet.Network(net, specOf(t, "a"))
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || diags[0].Code != vet.CodeSortMismatch || diags[0].Severity != vet.SeverityWarning {
		t.Fatalf("network-only direction: got %v, want one sort-mismatch warning", diags)
	}
	if vet.HasErrors(diags) {
		t.Fatal("HasErrors = true on warnings only")
	}
}

func specOf(t *testing.T, actions ...string) *fsp.FSP {
	t.Helper()
	b := fsp.NewBuilder("spec")
	b.AddStates(len(actions))
	for i, act := range actions {
		b.ArcName(fsp.State(i), act, fsp.State((i+1)%len(actions)))
	}
	for s := range actions {
		b.Accept(fsp.State(s))
	}
	return b.MustBuild()
}

// TestSpecDivergenceFindings positions divergence findings on the spec
// side: a tau-cycling spec against a clean network yields a spec-marked
// warning.
func TestSpecDivergenceFindings(t *testing.T) {
	b := fsp.NewBuilder("divspec")
	b.AddStates(3)
	b.ArcName(0, "x", 1)
	b.ArcName(1, fsp.TauName, 2)
	b.ArcName(2, fsp.TauName, 1)
	b.ArcName(1, "y", 0)
	// keep the sort aligned with CleanNetwork's post-hide sort {x, y}
	for s := 0; s < 3; s++ {
		b.Accept(fsp.State(s))
	}
	diags, err := vet.Network(gen.CleanNetwork(), b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || diags[0].Code != vet.CodeTauDivergence || !diags[0].Spec {
		t.Fatalf("got %v, want one spec-positioned tau-divergence", diags)
	}
}

// TestProcessAnalyzer covers the exported single-process entry point.
func TestProcessAnalyzer(t *testing.T) {
	b := fsp.NewBuilder("unguarded")
	b.AddStates(1)
	b.ArcName(0, fsp.TauName, 0)
	b.Accept(0)
	diags := vet.Process(b.MustBuild(), 0, true)
	if len(diags) != 1 || diags[0].Code != vet.CodeUnguardedStart || !diags[0].Spec {
		t.Fatalf("got %v, want one spec-positioned unguarded-start", diags)
	}
}

// TestDiagnosticString pins the one-line rendering used by every text
// front end.
func TestDiagnosticString(t *testing.T) {
	d := vet.Diagnostic{
		Code: vet.CodeDeadSync, Severity: vet.SeverityError,
		Channel: "a", Message: "never fires",
	}
	if got, want := d.String(), `error[dead-sync] channel "a": never fires`; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
	d = vet.Diagnostic{
		Code: vet.CodeRestrictionSink, Severity: vet.SeverityError,
		Component: 2, Message: "deadlock",
	}
	if got, want := d.String(), "error[restriction-sink] component 2: deadlock"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
	d = vet.Diagnostic{
		Code: vet.CodeUnguardedStart, Severity: vet.SeverityWarning,
		Spec: true, Message: "diverges",
	}
	if got, want := d.String(), "warning[unguarded-start] spec: diverges"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

// TestDiagnosticJSONRoundTrip pins the wire form shared with the request
// schema and the /v1/vet endpoint.
func TestDiagnosticJSONRoundTrip(t *testing.T) {
	in := []vet.Diagnostic{
		{Code: vet.CodeDeadSync, Severity: vet.SeverityError, Channel: "a", Message: "m"},
		{Code: vet.CodeUnguardedStart, Severity: vet.SeverityWarning, Spec: true, Component: 0, Message: "n"},
		{Code: vet.CodeRestrictionSink, Severity: vet.SeverityError, Component: 3, Message: "o"},
	}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out []vet.Diagnostic
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip lost entries: %d != %d", len(out), len(in))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Errorf("entry %d: %+v != %+v", i, in[i], out[i])
		}
	}
	// Zero position fields stay off the wire.
	if strings.Contains(string(data), `"component":0`) || strings.Contains(string(data), `"spec":false`) {
		t.Fatalf("zero position fields serialized: %s", data)
	}
}

// TestNetworkGalleryNoErrors asserts the equivalence gallery's networks —
// all well-formed by construction — draw no error-severity findings
// (warnings such as the token ring's idle tau-cycles are expected).
func TestNetworkGalleryNoErrors(t *testing.T) {
	for _, entry := range gen.NetworkGallery() {
		diags, err := vet.Network(entry.Net, entry.Spec)
		if err != nil {
			t.Fatalf("%s: %v", entry.Name, err)
		}
		for _, d := range diags {
			if d.Severity == vet.SeverityError {
				t.Errorf("%s: unexpected error finding: %s", entry.Name, d)
			}
		}
	}
}

// TestSyncTableSeverities pins the variant severities of
// unsatisfiable-vector: ghost parts and matching deficits are errors, a
// pruned visible result is a warning.
func TestSyncTableSeverities(t *testing.T) {
	for name, tc := range map[string]struct {
		net  *compose.Network
		sev  string
		frag string
	}{
		"ghost":   {gen.GhostVectorNetwork(), vet.SeverityError, "no component ever performs"},
		"deficit": {gen.DeficitVectorNetwork(), vet.SeverityError, "distinct components"},
		"pruned":  {gen.PrunedVectorNetwork(), vet.SeverityWarning, "pruned by the restriction"},
	} {
		diags, err := vet.Network(tc.net, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(diags) != 1 || diags[0].Code != vet.CodeUnsatisfiableVector {
			t.Fatalf("%s: got %v, want one unsatisfiable-vector", name, diags)
		}
		if diags[0].Severity != tc.sev {
			t.Errorf("%s: severity %q, want %q", name, diags[0].Severity, tc.sev)
		}
		if !strings.Contains(diags[0].Message, tc.frag) {
			t.Errorf("%s: message %q lacks %q", name, diags[0].Message, tc.frag)
		}
	}
}

// TestSyncTableSort: a live vector's visible result belongs to the
// network's observable sort — a spec performing it draws no
// sort-mismatch, a spec ignoring it draws the network-side warning.
func TestSyncTableSort(t *testing.T) {
	quorum := func() *compose.Network {
		net := compose.New("quorum",
			loopOf(t, "v"), loopOf(t, "v"), loopOf(t, "v"))
		return net.AddSync("decide", "v", "v", "v").Hide("v")
	}
	diags, err := vet.Network(quorum(), specOf(t, "decide"))
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("spec covering the vector result: got %v, want none", diags)
	}
	diags, err = vet.Network(quorum(), specOf(t, "other"))
	if err != nil {
		t.Fatal(err)
	}
	var codes []string
	for _, d := range diags {
		codes = append(codes, d.Code)
	}
	sort.Strings(codes)
	if strings.Join(codes, ",") != "sort-mismatch" {
		t.Fatalf("spec ignoring the vector result: got %v", diags)
	}
	if !strings.Contains(diags[0].Message, `"decide"`) {
		t.Errorf("sort-mismatch does not name the vector result: %q", diags[0].Message)
	}
}

func loopOf(t *testing.T, actions ...string) *fsp.FSP {
	t.Helper()
	b := fsp.NewBuilder("loop")
	b.AddStates(len(actions))
	for i, act := range actions {
		b.ArcName(fsp.State(i), act, fsp.State((i+1)%len(actions)))
	}
	for s := range actions {
		b.Accept(fsp.State(s))
	}
	return b.MustBuild()
}

// TestValidationErrors: a malformed network is an error, not diagnostics.
func TestValidationErrors(t *testing.T) {
	net := compose.New("bad", gen.CleanNetwork().Components[0].P).Hide(fsp.TauName)
	if _, err := vet.Network(net, nil); err == nil {
		t.Fatal("hiding tau should surface the Validate error")
	}
}
