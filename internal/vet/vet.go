// Package vet is the static-analysis pass over CCS networks: a diagnostic
// engine that inspects a compose.Network description — the component
// processes, their relabelings, the restriction set, the synchronization
// table, and the optional specification — and reports defects that are
// decidable syntactically,
// before the first product successor is ever expanded.
//
// Every workload layer of this module (one-shot checks, the batch engine,
// minimize-then-compose, the on-the-fly game, `ccs serve`) burns
// state-space exploration on its inputs; vet catches the inputs whose
// verdicts are foregone for trivial reasons — a restricted channel that can
// never handshake, a component wired so it contributes only deadlock, a
// spec whose sort the network cannot reach — plus the divergence defects
// the divergence-blind ≈/≈ᶜ silently forgive. Analyzers are sound in the
// flagged direction: a dead-sync finding means the handshake provably never
// fires (the differential suite pins this against the flat product); the
// converse is not promised, since component-level reachability
// overapproximates product reachability.
//
// The entry point is Network. Diagnostics are typed (code + severity),
// positioned (component index / spec / channel), and JSON-encodable, so the
// CLI (`ccs vet`), the request schema (Report.Diagnostics) and the HTTP
// server (POST /v1/vet) all speak the same finding.
package vet

import (
	"fmt"
	"sort"
	"strings"

	"ccs/internal/compose"
	"ccs/internal/fsp"
)

// Diagnostic codes, most specific first. Where two analyzers would explain
// the same defect, only the more specific code is emitted: a
// restriction-sink component suppresses per-channel dead-sync findings on
// the channels only it uses, an unguarded start suppresses the generic
// tau-divergence for that process, and a hide of a relabeled-away channel
// reports relabel-restricted rather than undefined-channel.
const (
	// CodeDeadSync: a restricted channel whose send and receive sides
	// never both occur across distinct components, and which no live
	// synchronization vector uses as a part — the handshake can never
	// fire, and every transition waiting on it is dead.
	CodeDeadSync = "dead-sync"
	// CodeRestrictionSink: every observable action of a component is
	// restricted away and none has a complementary partner in another
	// component or a live synchronization vector to join; the component
	// contributes only deadlock to the product.
	CodeRestrictionSink = "restriction-sink"
	// CodeRelabelCollision: a relabeling maps two distinct action names
	// onto one target, merging previously distinct handshakes.
	CodeRelabelCollision = "relabel-collision"
	// CodeRelabelRestricted: a relabeling's source is a restricted
	// channel. Restriction applies to the post-relabeling network, so the
	// hide no longer reaches this component's channel — almost always a
	// mis-wiring of (P\L)[f] vs (P[f])\L.
	CodeRelabelRestricted = "relabel-restricted"
	// CodeSortMismatch: the spec's reachable observable alphabet and the
	// network's observable sort after hiding disagree. A spec-side action
	// the network can never perform is a proof of inequivalence for every
	// trace-containing relation; a network-side action outside the spec's
	// sort is a warning (component reachability overapproximates the
	// product's).
	CodeSortMismatch = "sort-mismatch"
	// CodeTauDivergence: a tau-cycle is reachable from the root — the
	// process can diverge, which ≈ and ≈ᶜ are blind to.
	CodeTauDivergence = "tau-divergence"
	// CodeUnguardedStart: the start state itself lies on a tau-cycle, the
	// FSP image of unguarded recursion (X = X + ...): the process can
	// diverge before its first observable action.
	CodeUnguardedStart = "unguarded-start"
	// CodeUndefinedChannel: a hide or relabel directive names a channel no
	// component carries — the usual shape of a typo'd wiring.
	CodeUndefinedChannel = "undefined-channel"
	// CodeUnsatisfiableVector: a synchronization-table rule that can never
	// fire — a ghost part no component ever performs, or more parts than
	// there are distinct components able to supply them (a rendezvous takes
	// one part per component, so satisfiability is a bipartite matching
	// between parts and the components whose reachable sort carries them).
	// Also emitted, as a warning, for a rule whose visible result is
	// restricted: restriction prunes such a vector wholesale at composition
	// time, which is almost always a mis-wiring of "hide the parts" as
	// "hide the result".
	CodeUnsatisfiableVector = "unsatisfiable-vector"
)

// Severities of a Diagnostic. Errors are findings the analysis can prove
// defeat the query (or the component); warnings are defects of intent the
// equivalences cannot see or that depend on product reachability.
const (
	SeverityError   = "error"
	SeverityWarning = "warning"
)

// Diagnostic is one vet finding: a machine-readable code and severity, a
// position (component index, spec marker, channel), and the human-readable
// message. The JSON form is part of the request schema: Report.Diagnostics
// and the /v1/vet response body carry exactly this encoding.
type Diagnostic struct {
	Code     string `json:"code"`
	Severity string `json:"severity"`
	// Component is the 1-based index of the component the finding is
	// about; 0 for network-level and spec findings.
	Component int `json:"component,omitempty"`
	// Spec marks findings about the specification process.
	Spec bool `json:"spec,omitempty"`
	// Channel is the action or channel name the finding is about, when
	// there is one.
	Channel string `json:"channel,omitempty"`
	Message string `json:"message"`
}

// String renders the diagnostic as the one-line form every text front end
// prints: severity[code] position: message.
func (d Diagnostic) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s[%s]", d.Severity, d.Code)
	switch {
	case d.Spec:
		b.WriteString(" spec")
	case d.Component > 0:
		fmt.Fprintf(&b, " component %d", d.Component)
	}
	if d.Channel != "" {
		fmt.Fprintf(&b, " channel %q", d.Channel)
	}
	b.WriteString(": ")
	b.WriteString(d.Message)
	return b.String()
}

// HasErrors reports whether any diagnostic carries SeverityError.
func HasErrors(diags []Diagnostic) bool {
	for _, d := range diags {
		if d.Severity == SeverityError {
			return true
		}
	}
	return false
}

// Network runs every analyzer over the network and the optional spec (nil
// skips the spec-side analyzers, including sort-mismatch) and returns the
// findings in deterministic order. The error is non-nil only when the
// network description itself is malformed (compose.Network.Validate);
// defects of a well-formed network are diagnostics, never errors.
func Network(net *compose.Network, spec *fsp.FSP) ([]Diagnostic, error) {
	e, err := net.Expand()
	if err != nil {
		return nil, err
	}
	a := &analysis{net: net, spec: spec, e: e}
	a.prepare()
	a.vetRelabelings()
	a.vetHidden()
	a.vetSyncTable()
	a.vetDivergence()
	a.vetSort()
	return a.diags, nil
}

// Process runs the single-process analyzers (unguarded-start,
// tau-divergence) over one process, positioned as the spec when spec is
// true. It is what Network applies to each component and to the
// specification, exported for callers vetting a lone process.
func Process(f *fsp.FSP, component int, spec bool) []Diagnostic {
	a := &analysis{}
	a.vetProcessDivergence(f, component, spec)
	return a.diags
}

// analysis carries the shared precomputation: the network's dense-label
// expansion, the per-component reachable-occurrence sets, and the sink and
// dead-channel verdicts the suppression rules need.
type analysis struct {
	net  *compose.Network
	spec *fsp.FSP
	e    *compose.Expansion

	labelID map[string]int32 // dense id by post-relabel name
	occurs  []map[int32]bool // [component] labels on reachable arcs
	sink    []bool           // [component] restriction-sink verdict

	fates   []ruleFate     // [sync rule] satisfiability verdict
	vecPart map[int32]bool // labels that are parts of a live sync rule

	diags []Diagnostic
}

// ruleFate is the sort-level verdict on one synchronization rule.
type ruleFate struct {
	ghosts  []string // parts no component ever performs, deduplicated
	matched int      // size of the parts-to-components matching
	pruned  bool     // visible result restricted away at Expand time
}

// live: the rule can fire at the sort level and survives restriction —
// exactly the rules whose participation counts as a synchronization
// partner for dead-sync and restriction-sink.
func (f ruleFate) live(parts int) bool {
	return len(f.ghosts) == 0 && f.matched == parts && !f.pruned
}

func (a *analysis) emit(d Diagnostic) { a.diags = append(a.diags, d) }

func (a *analysis) prepare() {
	a.labelID = make(map[string]int32, len(a.e.Labels))
	for id, name := range a.e.Labels {
		a.labelID[name] = int32(id)
	}
	k := a.e.K()
	a.occurs = make([]map[int32]bool, k)
	for i := 0; i < k; i++ {
		a.occurs[i] = reachableLabels(a.e.Trans[i], a.e.Starts[i])
	}
	a.prepareSync()
	a.sink = make([]bool, k)
	for i := 0; i < k; i++ {
		a.sink[i] = a.isSink(i)
	}
}

// prepareSync decides the fate of every synchronization rule and collects
// the part labels of the live ones, which the restriction analyzers treat
// as synchronization partners.
func (a *analysis) prepareSync() {
	a.fates = make([]ruleFate, len(a.net.Sync))
	a.vecPart = map[int32]bool{}
	for r, rule := range a.net.Sync {
		f := &a.fates[r]
		ids := make([]int32, 0, len(rule.Parts))
		seenGhost := map[string]bool{}
		for _, p := range rule.Parts {
			l, ok := a.labelID[p]
			if !ok || !a.anyOccurs(l) {
				if !seenGhost[p] {
					seenGhost[p] = true
					f.ghosts = append(f.ghosts, p)
				}
				continue
			}
			ids = append(ids, l)
		}
		sort.Strings(f.ghosts)
		f.matched = a.matchParts(ids)
		if !rule.Tau() {
			if res, ok := a.labelID[rule.Result]; ok && a.e.Hidden[res] {
				f.pruned = true
			}
		}
		if f.live(len(rule.Parts)) {
			for _, l := range ids {
				a.vecPart[l] = true
			}
		}
	}
}

// anyOccurs reports whether any component's reachable sort carries l.
func (a *analysis) anyOccurs(l int32) bool {
	for i := range a.occurs {
		if a.occurs[i][l] {
			return true
		}
	}
	return false
}

// matchParts computes the maximum bipartite matching between the rule's
// parts and the components whose reachable sort carries them — a
// rendezvous consumes one part per distinct component, so the rule is
// sort-level satisfiable iff every part is matched (Hall's condition,
// decided by augmenting paths; both sides are tiny).
func (a *analysis) matchParts(parts []int32) int {
	k := len(a.occurs)
	compTo := make([]int, k)
	for i := range compTo {
		compTo[i] = -1
	}
	var try func(p int, seen []bool) bool
	try = func(p int, seen []bool) bool {
		for j := 0; j < k; j++ {
			if seen[j] || !a.occurs[j][parts[p]] {
				continue
			}
			seen[j] = true
			if compTo[j] == -1 || try(compTo[j], seen) {
				compTo[j] = p
				return true
			}
		}
		return false
	}
	matched := 0
	for p := range parts {
		if try(p, make([]bool, k)) {
			matched++
		}
	}
	return matched
}

// vetSyncTable reports the unsatisfiable-vector findings prepared by
// prepareSync: ghost parts and matching deficits as errors, a restricted
// visible result as a warning (the pruning is the documented semantics,
// but hiding the result instead of the parts is almost always a typo).
func (a *analysis) vetSyncTable() {
	for r, rule := range a.net.Sync {
		f := a.fates[r]
		switch {
		case len(f.ghosts) > 0:
			a.emit(Diagnostic{
				Code: CodeUnsatisfiableVector, Severity: SeverityError,
				Channel: f.ghosts[0],
				Message: fmt.Sprintf("sync vector [%s] can never fire: no component ever performs %s", rule, quoteList(f.ghosts)),
			})
		case f.matched < len(rule.Parts):
			a.emit(Diagnostic{
				Code: CodeUnsatisfiableVector, Severity: SeverityError,
				Message: fmt.Sprintf("sync vector [%s] can never fire: it needs %d distinct components (one per part), but at most %d can jointly supply the parts",
					rule, len(rule.Parts), f.matched),
			})
		case f.pruned:
			a.emit(Diagnostic{
				Code: CodeUnsatisfiableVector, Severity: SeverityWarning,
				Channel: rule.Result,
				Message: fmt.Sprintf("sync vector [%s] is pruned by the restriction: its visible result %q is hidden, which drops the whole vector — to internalize the rendezvous, make the result tau or hide only the parts",
					rule, rule.Result),
			})
		}
	}
}

// reachableLabels walks the component's own transition graph (all arcs —
// component reachability soundly overapproximates the product's) and
// collects the non-tau labels on reachable arcs.
func reachableLabels(trans [][]compose.Step, start int32) map[int32]bool {
	seen := make([]bool, len(trans))
	stack := []int32{start}
	seen[start] = true
	occ := map[int32]bool{}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, arc := range trans[s] {
			if arc.Label != 0 {
				occ[arc.Label] = true
			}
			if !seen[arc.To] {
				seen[arc.To] = true
				stack = append(stack, arc.To)
			}
		}
	}
	return occ
}

// hasPartner reports whether any component other than i can perform the
// complement of label l, i.e. whether a handshake on l is possible at the
// level of component sorts.
func (a *analysis) hasPartner(i int, l int32) bool {
	co := a.e.CoOf[l]
	if co < 0 {
		return false
	}
	for j := range a.occurs {
		if j != i && a.occurs[j][co] {
			return true
		}
	}
	return false
}

// isSink decides restriction-sink for component i: it has observable
// actions, every one of them is restricted, and none can handshake or
// serve as the part of a live synchronization vector.
func (a *analysis) isSink(i int) bool {
	if len(a.occurs[i]) == 0 {
		return false
	}
	for l := range a.occurs[i] {
		if !a.e.Hidden[l] || a.hasPartner(i, l) || a.vecPart[l] {
			return false
		}
	}
	return true
}

// baseName strips a co-name back to its base channel.
func baseName(name string) string {
	if b, isCo := strings.CutSuffix(name, "'"); isCo {
		return b
	}
	return name
}

// hiddenBases returns the deduplicated base names of the restriction set
// in first-appearance order.
func (a *analysis) hiddenBases() []string {
	var out []string
	seen := map[string]bool{}
	for _, h := range a.net.Hidden {
		b := baseName(h)
		if !seen[b] {
			seen[b] = true
			out = append(out, b)
		}
	}
	return out
}

// hiddenBaseSet is hiddenBases as a set.
func (a *analysis) hiddenBaseSet() map[string]bool {
	set := map[string]bool{}
	for _, h := range a.net.Hidden {
		set[baseName(h)] = true
	}
	return set
}

// sortedKeys returns the map's keys sorted, for deterministic iteration
// over relabel maps.
func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// vetRelabelings runs the per-component relabel analyzers:
// undefined-channel on sources absent from the component's alphabet,
// relabel-restricted on sources the network also hides, and
// relabel-collision on distinct sources sharing one target.
func (a *analysis) vetRelabelings() {
	hidden := a.hiddenBaseSet()
	for i, comp := range a.net.Components {
		alpha := comp.P.Alphabet()
		has := func(name string) bool {
			act, ok := alpha.Lookup(name)
			return ok && act != fsp.Tau
		}
		for _, src := range sortedKeys(comp.Relabel) {
			// An entry for a base name also carries its co-name (compose
			// transports it), so the entry is effective if either spelling
			// is in the alphabet; an explicit co-name entry covers only
			// itself.
			effective := has(src)
			if !effective && !strings.HasSuffix(src, "'") {
				effective = has(fsp.CoName(src))
			}
			if !effective {
				a.emit(Diagnostic{
					Code: CodeUndefinedChannel, Severity: SeverityError,
					Component: i + 1, Channel: src,
					Message: fmt.Sprintf("relabeling %q -> %q: the component's alphabet has no %q (or %q); likely a typo'd wiring",
						src, comp.Relabel[src], src, fsp.CoName(src)),
				})
				continue
			}
			if hidden[baseName(src)] {
				a.emit(Diagnostic{
					Code: CodeRelabelRestricted, Severity: SeverityWarning,
					Component: i + 1, Channel: src,
					Message: fmt.Sprintf("relabels restricted channel %q to %q: restriction applies after relabeling, so the hide of %q no longer reaches this component",
						src, comp.Relabel[src], baseName(src)),
				})
			}
		}
		a.vetCollisions(i, comp)
	}
}

// vetCollisions reports, once per base target name, the groups of distinct
// alphabet actions a component's relabeling merges onto one name.
func (a *analysis) vetCollisions(i int, comp compose.Component) {
	if len(comp.Relabel) == 0 {
		return
	}
	// Effective post-relabel name of every observable alphabet action,
	// mirroring compose.Expand: an explicit entry wins, a base-name entry
	// transports to the co-name, everything else is identity.
	targets := map[string][]string{}
	alpha := comp.P.Alphabet()
	for _, act := range alpha.Observable() {
		name := alpha.Name(act)
		to := name
		if t, ok := comp.Relabel[name]; ok {
			to = t
		} else if base, isCo := strings.CutSuffix(name, "'"); isCo {
			if t, ok := comp.Relabel[base]; ok {
				to = fsp.CoName(t)
			}
		}
		targets[to] = append(targets[to], name)
	}
	var collided []string
	for to, sources := range targets {
		if len(sources) > 1 {
			collided = append(collided, to)
		}
	}
	sort.Strings(collided)
	// A base-name collision mirrors onto the co-names; report the base
	// group only.
	reported := map[string]bool{}
	for _, to := range collided {
		b := baseName(to)
		if reported[b] {
			continue
		}
		reported[b] = true
		group := targets[to]
		sort.Strings(group)
		a.emit(Diagnostic{
			Code: CodeRelabelCollision, Severity: SeverityWarning,
			Component: i + 1, Channel: to,
			Message: fmt.Sprintf("relabeling maps distinct actions %s onto one name %q, merging their handshakes",
				strings.Join(group, ", "), to),
		})
	}
}

// vetHidden runs the restriction analyzers: restriction-sink per
// component, then dead-sync and undefined-channel per hidden channel, with
// the documented suppressions.
func (a *analysis) vetHidden() {
	for i := range a.net.Components {
		if !a.sink[i] {
			continue
		}
		var names []string
		for l := range a.occurs[i] {
			names = append(names, a.e.Labels[l])
		}
		sort.Strings(names)
		a.emit(Diagnostic{
			Code: CodeRestrictionSink, Severity: SeverityError,
			Component: i + 1,
			Message: fmt.Sprintf("every observable action (%s) is restricted and none can handshake; the component contributes only deadlock",
				strings.Join(names, ", ")),
		})
	}

	relabelSources := map[string]bool{}
	for _, comp := range a.net.Components {
		for src := range comp.Relabel {
			relabelSources[baseName(src)] = true
		}
	}

	// Names the synchronization table speaks for: hiding a rule's visible
	// result is deliberate pruning (vetSyncTable warns about it), and a
	// hidden ghost part is already the rule's unsatisfiable-vector error —
	// neither is an undefined-channel typo.
	syncNames := map[string]bool{}
	for _, rule := range a.net.Sync {
		for _, p := range rule.Parts {
			syncNames[baseName(p)] = true
		}
		if !rule.Tau() {
			syncNames[baseName(rule.Result)] = true
		}
	}

	for _, h := range a.hiddenBases() {
		send, sendOK := a.labelID[h]
		recv, recvOK := a.labelID[fsp.CoName(h)]
		var users, senders, receivers []int
		for i := range a.occurs {
			inSend := sendOK && a.occurs[i][send]
			inRecv := recvOK && a.occurs[i][recv]
			if inSend {
				senders = append(senders, i)
			}
			if inRecv {
				receivers = append(receivers, i)
			}
			if inSend || inRecv {
				users = append(users, i)
			}
		}
		if len(users) == 0 {
			// The channel occurs nowhere. If some component relabels it
			// away, relabel-restricted already explains the situation; if
			// the sync table names it, the vector analyzers do.
			if !relabelSources[h] && !syncNames[h] {
				a.emit(Diagnostic{
					Code: CodeUndefinedChannel, Severity: SeverityError,
					Channel: h,
					Message: fmt.Sprintf("hide %q: no component carries the channel after relabeling; likely a typo'd wiring", h),
				})
			}
			continue
		}
		if a.handshakePossible(senders, receivers) {
			continue
		}
		// A live sync vector over either side keeps the channel alive even
		// without a pairwise partner: the rendezvous matches part names
		// literally, hidden or not.
		if (sendOK && a.vecPart[send]) || (recvOK && a.vecPart[recv]) {
			continue
		}
		// Dead channel. Skip it when every user is a restriction-sink —
		// the sink finding is the more specific explanation.
		allSinks := true
		for _, i := range users {
			if !a.sink[i] {
				allSinks = false
				break
			}
		}
		if allSinks {
			continue
		}
		a.emit(Diagnostic{
			Code: CodeDeadSync, Severity: SeverityError,
			Channel: h,
			Message: a.deadSyncMessage(h, senders, receivers),
		})
	}
}

// handshakePossible reports whether some sender and some distinct receiver
// exist — the sort-level condition for the pairwise handshake to ever fire.
func (a *analysis) handshakePossible(senders, receivers []int) bool {
	for _, i := range senders {
		for _, j := range receivers {
			if i != j {
				return true
			}
		}
	}
	return false
}

func (a *analysis) deadSyncMessage(h string, senders, receivers []int) string {
	oneBased := func(xs []int) []string {
		out := make([]string, len(xs))
		for i, x := range xs {
			out[i] = fmt.Sprintf("%d", x+1)
		}
		return out
	}
	switch {
	case len(receivers) == 0:
		return fmt.Sprintf("restricted channel %q can never synchronize: only the %q side occurs (component %s); %q occurs in no component",
			h, h, strings.Join(oneBased(senders), ", "), fsp.CoName(h))
	case len(senders) == 0:
		return fmt.Sprintf("restricted channel %q can never synchronize: only the %q side occurs (component %s); %q occurs in no component",
			h, fsp.CoName(h), strings.Join(oneBased(receivers), ", "), h)
	default:
		// Both sides occur, necessarily inside one single component.
		return fmt.Sprintf("restricted channel %q can never synchronize: both sides occur only inside component %s, and handshakes are pairwise between distinct components",
			h, strings.Join(oneBased(senders), ", "))
	}
}

// vetDivergence runs unguarded-start and tau-divergence over every
// component and the spec.
func (a *analysis) vetDivergence() {
	for i, comp := range a.net.Components {
		a.vetProcessDivergence(comp.P, i+1, false)
	}
	if a.spec != nil {
		a.vetProcessDivergence(a.spec, 0, true)
	}
}

func (a *analysis) vetProcessDivergence(f *fsp.FSP, component int, spec bool) {
	subject := "the component"
	if spec {
		subject = "the spec"
	}
	if tauCycleThroughStart(f) {
		a.emit(Diagnostic{
			Code: CodeUnguardedStart, Severity: SeverityWarning,
			Component: component, Spec: spec,
			Message: fmt.Sprintf("the start state lies on a tau-cycle (unguarded recursion): %s can diverge before any observable action, which ≈/≈ᶜ cannot see", subject),
		})
		return // the generic tau-divergence finding would be redundant
	}
	if s, ok := reachableTauCycle(f); ok {
		a.emit(Diagnostic{
			Code: CodeTauDivergence, Severity: SeverityWarning,
			Component: component, Spec: spec,
			Message: fmt.Sprintf("a tau-cycle is reachable from the root (state %d): %s can diverge, which ≈/≈ᶜ cannot see", s, subject),
		})
	}
}

// tauCycleThroughStart reports whether the start state can tau-reach
// itself in one or more tau steps.
func tauCycleThroughStart(f *fsp.FSP) bool {
	start := f.Start()
	seen := make([]bool, f.NumStates())
	var stack []fsp.State
	push := func(s fsp.State) {
		for _, arc := range f.Arcs(s) {
			if arc.Act != fsp.Tau {
				continue
			}
			if arc.To == start {
				stack = append(stack, arc.To) // sentinel; detected below
			}
			if !seen[arc.To] {
				seen[arc.To] = true
				stack = append(stack, arc.To)
			}
		}
	}
	push(start)
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if s == start {
			return true
		}
		push(s)
	}
	return false
}

// reachableTauCycle reports a state on a tau-cycle reachable (by any
// actions) from the root, when one exists. fsp.Divergent marks every state
// that can tau-reach a cycle; the state reported here is one actually on a
// cycle: divergent with a tau-successor that is divergent and can return.
func reachableTauCycle(f *fsp.FSP) (fsp.State, bool) {
	div := fsp.Divergent(f)
	reach := f.Reachable()
	for s := 0; s < f.NumStates(); s++ {
		if !reach[s] || !div[s] {
			continue
		}
		if onTauCycle(f, fsp.State(s)) {
			return fsp.State(s), true
		}
	}
	return 0, false
}

// onTauCycle reports whether s can tau-reach itself in >= 1 steps.
func onTauCycle(f *fsp.FSP, s fsp.State) bool {
	seen := make(map[fsp.State]bool)
	stack := []fsp.State{}
	expand := func(from fsp.State) bool {
		for _, arc := range f.Arcs(from) {
			if arc.Act != fsp.Tau {
				continue
			}
			if arc.To == s {
				return true
			}
			if !seen[arc.To] {
				seen[arc.To] = true
				stack = append(stack, arc.To)
			}
		}
		return false
	}
	if expand(s) {
		return true
	}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if expand(cur) {
			return true
		}
	}
	return false
}

// vetSort compares the spec's reachable observable alphabet with the
// network's observable sort after hiding.
func (a *analysis) vetSort() {
	if a.spec == nil {
		return
	}
	netSort := map[string]bool{}
	for i := range a.occurs {
		for l := range a.occurs[i] {
			if !a.e.Hidden[l] {
				netSort[a.e.Labels[l]] = true
			}
		}
	}
	// A live sync vector with a visible result contributes that result to
	// the product's sort even when every part is hidden.
	for r, rule := range a.net.Sync {
		if !rule.Tau() && a.fates[r].live(len(rule.Parts)) {
			netSort[rule.Result] = true
		}
	}
	specSort := map[string]bool{}
	reach := a.spec.Reachable()
	alpha := a.spec.Alphabet()
	for s := 0; s < a.spec.NumStates(); s++ {
		if !reach[s] {
			continue
		}
		for _, arc := range a.spec.Arcs(fsp.State(s)) {
			if arc.Act != fsp.Tau {
				specSort[alpha.Name(arc.Act)] = true
			}
		}
	}
	specOnly := sortedDiff(specSort, netSort)
	netOnly := sortedDiff(netSort, specSort)
	switch {
	case len(specOnly) > 0:
		msg := fmt.Sprintf("the spec performs %s, which the network can never perform — trivially inequivalent for every trace-containing relation",
			quoteList(specOnly))
		if len(netOnly) > 0 {
			msg += fmt.Sprintf("; the network also has %s outside the spec's sort", quoteList(netOnly))
		}
		a.emit(Diagnostic{Code: CodeSortMismatch, Severity: SeverityError, Message: msg})
	case len(netOnly) > 0:
		a.emit(Diagnostic{
			Code: CodeSortMismatch, Severity: SeverityWarning,
			Message: fmt.Sprintf("the network's observable sort has %s outside the spec's reachable alphabet; if any of them fires, the verdict is inequivalent for trivial reasons",
				quoteList(netOnly)),
		})
	}
}

func sortedDiff(a, b map[string]bool) []string {
	var out []string
	for name := range a {
		if !b[name] {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

func quoteList(names []string) string {
	quoted := make([]string, len(names))
	for i, n := range names {
		quoted[i] = fmt.Sprintf("%q", n)
	}
	return strings.Join(quoted, ", ")
}
