// Package kequiv decides the k-observational equivalences ≈_k of Definition
// 2.2.1 exactly.
//
// Unlike the ≃_k ladder (one partition-refinement round per level, handled
// in the core package), each ≈_k level quantifies over all strings in
// Sigma*: ≈_1 is NFA language equivalence and each subsequent level is
// decided through the characterization in the proof of Theorem 4.1(b):
//
//	p ≈_{k+1} q   iff   for every class B_i of ≈_k,  L_i(p) = L_i(q),
//
// where L_i(p) is the language of the (weak-derivative) NFA with start p
// and accept set B_i. Deciding ≈_k is PSPACE-complete for every fixed k ≥ 1
// (Theorem 4.1b), so the decision procedure is necessarily exponential in
// the worst case: language comparisons run as synchronized on-the-fly
// subset constructions.
//
// One definitional subtlety: for observable FSPs the ≈_k hierarchy is
// decreasing (≈_{k+1} ⊆ ≈_k, the "successively finer" sequence of the
// introduction) and this package computes it exactly. In the general model
// with tau moves, ≈_1 as literally defined need not refine ≈_0 (a state can
// match another's extension through a tau move); Partition computes the
// decreasing variant — each level intersected with the previous — which
// coincides with ≈_k on observable processes, which is where all of the
// paper's ≈_k results live, and whose fixed point is ≈ in every model.
package kequiv

import (
	"fmt"
	"sort"

	"ccs/internal/fsp"
	"ccs/internal/lts"
	"ccs/internal/partition"
)

// weakGraph is the saturated view of an FSP used by all deciders: weak
// sigma-arcs between states plus per-state tau-closures. The weak arcs are
// held as a CSR index (internal/lts) with one dense label per observable
// action, built once per process: per-(state, action) destination lists are
// contiguous shared subslices of one flat array rather than n×|Sigma|
// individually allocated slices.
type weakGraph struct {
	f      *fsp.FSP
	clo    fsp.Closure
	idx    *lts.Index // label i = i-th observable action (fsp.Action i+1)
	numObs int
}

func newWeakGraph(f *fsp.FSP) *weakGraph {
	clo := fsp.TauClosure(f)
	return &weakGraph{
		f:      f,
		clo:    clo,
		idx:    lts.FromWeak(f, clo),
		numObs: f.Alphabet().NumObservable(),
	}
}

// dests returns the sorted weak destinations of s under the obs-th
// observable action (a shared subslice of the index).
func (g *weakGraph) dests(s fsp.State, obs int) []int32 {
	return g.idx.Dests(int32(s), int32(obs))
}

// step advances a sorted, closure-closed state set by one observable action
// (index into the observable alphabet).
func (g *weakGraph) step(set []fsp.State, obs int) []fsp.State {
	mark := map[fsp.State]struct{}{}
	for _, s := range set {
		for _, t := range g.dests(s, obs) {
			mark[fsp.State(t)] = struct{}{}
		}
	}
	out := make([]fsp.State, 0, len(mark))
	for s := range mark {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// colorOf returns the sorted set of partition blocks intersected by set.
func colorOf(p *partition.Partition, set []fsp.State) []int32 {
	mark := map[int32]struct{}{}
	for _, s := range set {
		mark[p.Block(int32(s))] = struct{}{}
	}
	out := make([]int32, 0, len(mark))
	for b := range mark {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func key32(set []int32) string {
	buf := make([]byte, 0, 4*len(set))
	for _, s := range set {
		buf = append(buf, byte(s), byte(s>>8), byte(s>>16), byte(s>>24))
	}
	return string(buf)
}

func keyStates(set []fsp.State) string {
	buf := make([]byte, 0, 4*len(set))
	for _, s := range set {
		buf = append(buf, byte(s), byte(s>>8), byte(s>>16), byte(s>>24))
	}
	return string(buf)
}

// equivalentUnder reports whether p and q have equal languages L_i for every
// block of prev, via a synchronized subset exploration that compares the
// block "color" of the derivative sets after every string.
func (g *weakGraph) equivalentUnder(prev *partition.Partition, p, q fsp.State) bool {
	type pair struct{ a, b []fsp.State }
	start := pair{a: g.clo.Of(p), b: g.clo.Of(q)}
	seen := map[string]bool{}
	queue := []pair{start}
	seen[keyStates(start.a)+"|"+keyStates(start.b)] = true
	for head := 0; head < len(queue); head++ {
		cur := queue[head]
		if key32(colorOf(prev, cur.a)) != key32(colorOf(prev, cur.b)) {
			return false
		}
		for obs := 0; obs < g.numObs; obs++ {
			na, nb := g.step(cur.a, obs), g.step(cur.b, obs)
			if len(na) == 0 && len(nb) == 0 {
				continue
			}
			k := keyStates(na) + "|" + keyStates(nb)
			if !seen[k] {
				seen[k] = true
				queue = append(queue, pair{a: na, b: nb})
			}
		}
	}
	return true
}

// extPartition is ≈_0: states grouped by extension.
func extPartition(f *fsp.FSP) *partition.Partition {
	blockOf := make([]int32, f.NumStates())
	ids := map[fsp.VarSet]int32{}
	for s := 0; s < f.NumStates(); s++ {
		e := f.Ext(fsp.State(s))
		id, ok := ids[e]
		if !ok {
			id = int32(len(ids))
			ids[e] = id
		}
		blockOf[s] = id
	}
	return partition.NewPartition(blockOf)
}

// Partition computes the ≈_k partition of f's states. k = 0 groups by
// extension; k < 0 iterates to the fixed point, which is observational
// equivalence ≈ (Definition 2.2.1). The second result is the number of
// levels actually computed before the sequence stabilized (at most k).
func Partition(f *fsp.FSP, k int) (*partition.Partition, int, error) {
	if f.NumStates() == 0 {
		return nil, 0, fmt.Errorf("kequiv: empty process")
	}
	cur := extPartition(f)
	if k == 0 {
		return cur, 0, nil
	}
	g := newWeakGraph(f)
	level := 0
	for k < 0 || level < k {
		next := refineByLanguages(g, cur)
		level++
		if next.Equal(cur) {
			return cur, level - 1, nil
		}
		cur = next
	}
	return cur, level, nil
}

// refineByLanguages computes the next ≈ level from the previous one: two
// states stay together iff they sit in the same previous block AND their
// per-block languages agree. (≈_{k+1} refines ≈_k, so only same-block pairs
// are compared.)
func refineByLanguages(g *weakGraph, prev *partition.Partition) *partition.Partition {
	n := g.f.NumStates()
	blockOf := make([]int32, n)
	for i := range blockOf {
		blockOf[i] = -1
	}
	var nextID int32
	for _, block := range prev.Blocks() {
		// Group block members against representatives of the subgroups
		// discovered so far.
		var reps []fsp.State
		var repIDs []int32
		for _, x := range block {
			s := fsp.State(x)
			placed := false
			for i, r := range reps {
				if g.equivalentUnder(prev, s, r) {
					blockOf[x] = repIDs[i]
					placed = true
					break
				}
			}
			if !placed {
				reps = append(reps, s)
				repIDs = append(repIDs, nextID)
				blockOf[x] = nextID
				nextID++
			}
		}
	}
	return partition.NewPartition(blockOf)
}

// EquivalentStates reports p ≈_k q for two states of f. k < 0 means full
// observational equivalence via the ≈_k fixed point (cross-validating the
// polynomial algorithm in the core package).
func EquivalentStates(f *fsp.FSP, p, q fsp.State, k int) (bool, error) {
	part, _, err := Partition(f, k)
	if err != nil {
		return false, err
	}
	return part.Same(int32(p), int32(q)), nil
}

// Equivalent reports whether the start states of f and g are ≈_k.
func Equivalent(f, g *fsp.FSP, k int) (bool, error) {
	u, off, err := fsp.DisjointUnion(f, g)
	if err != nil {
		return false, fmt.Errorf("kequiv: %w", err)
	}
	return EquivalentStates(u, f.Start(), off+g.Start(), k)
}

// TraceEquivalent reports ≈_1, which by Proposition 2.2.3(b) is language
// (trace) equivalence for standard processes.
func TraceEquivalent(f, g *fsp.FSP) (bool, error) { return Equivalent(f, g, 1) }

// EquivalentToTrivial implements the closing observation of Section 4: in
// the restricted model, p ≈_2 q* — where q* is the one-state process with a
// self-loop for every action (Fig. 5d) — iff every state weakly reachable
// from p can weakly perform every symbol of Sigma. The check is linear in
// the saturated process.
func EquivalentToTrivial(f *fsp.FSP, start fsp.State) (bool, error) {
	cls := fsp.Classify(f)
	if !cls.Restricted {
		return false, fmt.Errorf("kequiv: trivial-NFA test requires the restricted model")
	}
	g := newWeakGraph(f)
	seen := make([]bool, f.NumStates())
	var stack []fsp.State
	push := func(s fsp.State) {
		if !seen[s] {
			seen[s] = true
			stack = append(stack, s)
		}
	}
	for _, s := range g.clo.Of(start) {
		push(s)
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for obs := 0; obs < g.numObs; obs++ {
			ds := g.dests(s, obs)
			if len(ds) == 0 {
				return false, nil
			}
			for _, t := range ds {
				push(fsp.State(t))
			}
		}
	}
	return true, nil
}
