package kequiv

import (
	"testing"

	"ccs/internal/core"
	"ccs/internal/fsp"
)

// restrictedChain builds the r.o.u. process a^len (all states accepting).
func restrictedChain(length int) *fsp.FSP {
	b := fsp.NewBuilder("chain")
	b.AddStates(length + 1)
	for i := 0; i < length; i++ {
		b.ArcName(fsp.State(i), "a", fsp.State(i+1))
	}
	for s := 0; s <= length; s++ {
		b.Accept(fsp.State(s))
	}
	return b.MustBuild()
}

// branching builds a(b+c) and ab+ac, the standard trace-equal
// bisimulation-different pair, as restricted observable processes.
func branching() (*fsp.FSP, *fsp.FSP) {
	b1 := fsp.NewBuilder("a(b+c)")
	b1.AddStates(4)
	b1.ArcName(0, "a", 1)
	b1.ArcName(1, "b", 2)
	b1.ArcName(1, "c", 3)
	for s := fsp.State(0); s < 4; s++ {
		b1.Accept(s)
	}
	b2 := fsp.NewBuilder("ab+ac")
	b2.AddStates(5)
	b2.ArcName(0, "a", 1)
	b2.ArcName(0, "a", 2)
	b2.ArcName(1, "b", 3)
	b2.ArcName(2, "c", 4)
	for s := fsp.State(0); s < 5; s++ {
		b2.Accept(s)
	}
	return b1.MustBuild(), b2.MustBuild()
}

func TestTraceEquivalentBranching(t *testing.T) {
	p, q := branching()
	eq, err := TraceEquivalent(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Errorf("a(b+c) ≈_1 ab+ac must hold (same language)")
	}
	// ≈_2 must separate them: after "a", the derivative classes differ.
	eq2, err := Equivalent(p, q, 2)
	if err != nil {
		t.Fatal(err)
	}
	if eq2 {
		t.Errorf("a(b+c) ≈_2 ab+ac must NOT hold")
	}
}

func TestKLadderIsDecreasing(t *testing.T) {
	p, q := branching()
	u, off, err := fsp.DisjointUnion(p, q)
	if err != nil {
		t.Fatal(err)
	}
	prevEq := true
	for k := 0; k <= 4; k++ {
		eq, err := EquivalentStates(u, p.Start(), off+q.Start(), k)
		if err != nil {
			t.Fatal(err)
		}
		if eq && !prevEq {
			t.Errorf("≈_%d holds after separation at an earlier level", k)
		}
		prevEq = eq
	}
}

func TestChainLengths(t *testing.T) {
	// Chains of equal length are ≈_k for all k; different lengths are
	// separated already by ≈_1 (different languages).
	same, err := Equivalent(restrictedChain(3), restrictedChain(3), -1)
	if err != nil {
		t.Fatal(err)
	}
	if !same {
		t.Errorf("equal chains must be ≈")
	}
	diff, err := Equivalent(restrictedChain(3), restrictedChain(4), 1)
	if err != nil {
		t.Fatal(err)
	}
	if diff {
		t.Errorf("chains of different length must be separated by ≈_1")
	}
}

func TestFixpointMatchesWeakEquivalence(t *testing.T) {
	// The ≈_k fixed point must agree with the polynomial-time observational
	// equivalence of the core package (Proposition 2.2.1c), including on a
	// process with tau moves.
	b := fsp.NewBuilder("tau-mix")
	b.AddStates(7)
	b.ArcName(0, "a", 1)
	b.ArcName(1, fsp.TauName, 2)
	b.ArcName(2, "b", 3)
	b.ArcName(0, fsp.TauName, 4)
	b.ArcName(4, "a", 5)
	b.ArcName(5, "b", 6)
	for s := fsp.State(0); s < 7; s++ {
		b.Accept(s)
	}
	f := b.MustBuild()

	kfix, _, err := Partition(f, -1)
	if err != nil {
		t.Fatal(err)
	}
	weak, err := core.WeakPartition(f)
	if err != nil {
		t.Fatal(err)
	}
	if !kfix.Equal(weak) {
		t.Errorf("≈_k fixpoint %v != weak partition %v", kfix.Blocks(), weak.Blocks())
	}
}

func TestFixpointMatchesWeakOnBranching(t *testing.T) {
	p, q := branching()
	u, off, err := fsp.DisjointUnion(p, q)
	if err != nil {
		t.Fatal(err)
	}
	kfix, _, err := Partition(u, -1)
	if err != nil {
		t.Fatal(err)
	}
	weak, err := core.WeakPartition(u)
	if err != nil {
		t.Fatal(err)
	}
	if !kfix.Equal(weak) {
		t.Errorf("≈_k fixpoint %v != weak %v", kfix.Blocks(), weak.Blocks())
	}
	_ = off
}

func TestPartitionLevelsStopEarly(t *testing.T) {
	f := restrictedChain(2)
	_, levels, err := Partition(f, 50)
	if err != nil {
		t.Fatal(err)
	}
	if levels > 5 {
		t.Errorf("ladder for a tiny chain took %d levels", levels)
	}
}

func TestEquivalentToTrivial(t *testing.T) {
	// A total unary cycle is ≈_2 the trivial NFA.
	b := fsp.NewBuilder("cycle")
	b.AddStates(2)
	b.ArcName(0, "a", 1)
	b.ArcName(1, "a", 0)
	b.Accept(0)
	b.Accept(1)
	cyc := b.MustBuild()
	ok, err := EquivalentToTrivial(cyc, cyc.Start())
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("total cycle must be ≈_2-trivial")
	}

	// A chain has a dead end: not trivial.
	ch := restrictedChain(2)
	ok, err = EquivalentToTrivial(ch, ch.Start())
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Errorf("chain must not be ≈_2-trivial")
	}

	// Tau-reachability counts: 0 --tau--> total cycle is trivial.
	b3 := fsp.NewBuilder("tau-into-cycle")
	b3.AddStates(3)
	b3.ArcName(0, fsp.TauName, 1)
	b3.ArcName(1, "a", 2)
	b3.ArcName(2, "a", 1)
	for s := fsp.State(0); s < 3; s++ {
		b3.Accept(s)
	}
	tc := b3.MustBuild()
	ok, err = EquivalentToTrivial(tc, tc.Start())
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("tau into a total cycle must be ≈_2-trivial")
	}

	// Non-restricted processes are rejected.
	b4 := fsp.NewBuilder("std")
	b4.AddStates(1)
	std := b4.MustBuild()
	if _, err := EquivalentToTrivial(std, 0); err == nil {
		t.Error("non-restricted process accepted")
	}
}

func TestEquivalenceIsEquivalenceRelation(t *testing.T) {
	// Reflexivity and symmetry on a nontrivial instance.
	p, q := branching()
	for k := 0; k <= 3; k++ {
		eqPP, err := Equivalent(p, p, k)
		if err != nil {
			t.Fatal(err)
		}
		if !eqPP {
			t.Errorf("≈_%d not reflexive", k)
		}
		eqPQ, err := Equivalent(p, q, k)
		if err != nil {
			t.Fatal(err)
		}
		eqQP, err := Equivalent(q, p, k)
		if err != nil {
			t.Fatal(err)
		}
		if eqPQ != eqQP {
			t.Errorf("≈_%d not symmetric", k)
		}
	}
}
