package kequiv

import (
	"fmt"

	"ccs/internal/automata"
	"ccs/internal/fsp"
)

// weakNFA views an FSP as a classical NFA over its observable alphabet:
// arcs are weak derivatives and a state accepts iff some member of its
// tau-closure is accepting. The languages L(p) of the paper are exactly the
// languages of these NFAs.
func weakNFA(f *fsp.FSP) (*automata.NFA, error) {
	g := newWeakGraph(f)
	n, err := automata.NewNFA(f.NumStates(), g.numObs, int32(f.Start()))
	if err != nil {
		return nil, err
	}
	for s := 0; s < f.NumStates(); s++ {
		accepting := false
		for _, t := range g.clo.Of(fsp.State(s)) {
			if f.Accepting(t) {
				accepting = true
				break
			}
		}
		n.SetAccept(int32(s), accepting)
		for obs := 0; obs < g.numObs; obs++ {
			for _, to := range g.dests(fsp.State(s), obs) {
				if err := n.AddArc(int32(s), obs, to); err != nil {
					return nil, err
				}
			}
		}
	}
	return n, nil
}

// TraceWitness decides classical language equivalence L(p) = L(q) of the
// start states and, when the languages differ, returns the shortest word
// accepted by exactly one side, rendered with action names.
//
// On the restricted model this is exactly ≈_1 (Proposition 2.2.3b). On
// general FSPs ≈_1 is finer: it also compares the languages of the other
// extension classes (Definition 2.2.1 quantifies over all extensions), so
// use Equivalent(f, g, 1) for the paper's relation and this function when
// a human-readable distinguishing trace is wanted.
func TraceWitness(f, g *fsp.FSP) (equal bool, word []string, err error) {
	u, off, err := fsp.DisjointUnion(f, g)
	if err != nil {
		return false, nil, fmt.Errorf("kequiv: %w", err)
	}
	nfa, err := weakNFA(u)
	if err != nil {
		return false, nil, fmt.Errorf("kequiv: %w", err)
	}
	// Two NFAs sharing the same graph with different starts.
	nfaF, err := restart(nfa, int32(f.Start()))
	if err != nil {
		return false, nil, err
	}
	nfaG, err := restart(nfa, int32(off+g.Start()))
	if err != nil {
		return false, nil, err
	}
	eq, w, err := automata.EquivalentNFA(nfaF, nfaG)
	if err != nil {
		return false, nil, fmt.Errorf("kequiv: %w", err)
	}
	if eq {
		return true, nil, nil
	}
	names := make([]string, len(w))
	for i, sym := range w {
		// Observable symbol i of the NFA is action i+1 of the FSP.
		names[i] = u.Alphabet().Name(fsp.Action(sym + 1))
	}
	return false, names, nil
}

// restart clones an NFA with a different start state.
func restart(n *automata.NFA, start int32) (*automata.NFA, error) {
	out, err := automata.NewNFA(n.NumStates(), n.NumSymbols(), start)
	if err != nil {
		return nil, err
	}
	for s := int32(0); int(s) < n.NumStates(); s++ {
		out.SetAccept(s, n.Accepting(s))
		for sym := 0; sym < n.NumSymbols(); sym++ {
			for _, to := range n.Next(s, sym) {
				if err := out.AddArc(s, sym, to); err != nil {
					return nil, err
				}
			}
		}
	}
	return out, nil
}
