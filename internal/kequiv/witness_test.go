package kequiv

import (
	"math/rand"
	"strings"
	"testing"

	"ccs/internal/fsp"
	"ccs/internal/gen"
)

func TestTraceWitnessAgreesWithK1OnRestricted(t *testing.T) {
	// On the restricted model, language equivalence IS ≈_1 (Prop 2.2.3b),
	// so the two implementations must agree.
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 120; trial++ {
		p := gen.RandomRestricted(rng, 2+rng.Intn(4), rng.Intn(8), 2)
		q := gen.RandomRestricted(rng, 2+rng.Intn(4), rng.Intn(8), 2)
		eqK, err := Equivalent(p, q, 1)
		if err != nil {
			t.Fatal(err)
		}
		eqW, word, err := TraceWitness(p, q)
		if err != nil {
			t.Fatal(err)
		}
		if eqK != eqW {
			t.Fatalf("trial %d: ≈_1 decider says %v, witness machinery says %v", trial, eqK, eqW)
		}
		if !eqW {
			// The witness word must be accepted by exactly one side.
			inP := acceptsTrace(p, word)
			inQ := acceptsTrace(q, word)
			if inP == inQ {
				t.Fatalf("trial %d: witness %v does not distinguish (p=%v q=%v)", trial, word, inP, inQ)
			}
		}
	}
}

func TestK1FinerThanLanguageOnStandardModel(t *testing.T) {
	// In the standard (non-restricted) model, ≈_1 compares the languages of
	// BOTH extension classes. p = a (dead accept), q = a + a·a with only
	// the first a-target accepting: same accepted language {a}, but q has a
	// non-accepting a-derivative reaching depth 2, so ≈_1 separates them.
	b1 := fsp.NewBuilder("p")
	b1.AddStates(2)
	b1.ArcName(0, "a", 1)
	b1.Accept(1)
	p := b1.MustBuild()

	b2 := fsp.NewBuilder("q")
	b2.AddStates(4)
	b2.ArcName(0, "a", 1)
	b2.ArcName(0, "a", 2)
	b2.ArcName(2, "a", 3)
	b2.Accept(1)
	q := b2.MustBuild()

	langEq, _, err := TraceWitness(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if !langEq {
		t.Fatalf("setup: accepted languages must coincide")
	}
	eq1, err := Equivalent(p, q, 1)
	if err != nil {
		t.Fatal(err)
	}
	if eq1 {
		t.Errorf("≈_1 must separate: the non-accepting class languages differ")
	}
}

// acceptsTrace checks word membership in L(start) by weak simulation.
func acceptsTrace(f *fsp.FSP, word []string) bool {
	acts := make([]fsp.Action, len(word))
	for i, name := range word {
		a, ok := f.Alphabet().Lookup(name)
		if !ok {
			return false
		}
		acts[i] = a
	}
	derivs := fsp.SDerivatives(f, f.Start(), acts)
	for _, d := range derivs {
		if f.Accepting(d) {
			return true
		}
	}
	return false
}

func TestTraceWitnessShortest(t *testing.T) {
	// a vs aa: shortest distinguishing word is "aa".
	eq, word, err := TraceWitness(gen.Chain(1), gen.Chain(2))
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Fatal("chains of different lengths reported trace equal")
	}
	if strings.Join(word, "") != "aa" {
		t.Errorf("witness = %v, want [a a]", word)
	}
}

func TestTraceWitnessSeesThroughTau(t *testing.T) {
	// tau.a vs a: trace equal, no witness.
	b1 := fsp.NewBuilder("tau.a")
	b1.AddStates(3)
	b1.ArcName(0, fsp.TauName, 1)
	b1.ArcName(1, "a", 2)
	b1.Accept(0)
	b1.Accept(1)
	b1.Accept(2)
	p := b1.MustBuild()
	eq, word, err := TraceWitness(p, gen.Chain(1))
	if err != nil {
		t.Fatal(err)
	}
	if !eq || word != nil {
		t.Errorf("tau.a and a must be trace equal, got witness %v", word)
	}
}
