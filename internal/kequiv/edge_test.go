package kequiv

import (
	"testing"

	"ccs/internal/fsp"
	"ccs/internal/gen"
)

func TestPartitionZeroLevel(t *testing.T) {
	// ≈_0 groups by extension only.
	b := fsp.NewBuilder("")
	b.AddStates(3)
	b.Accept(0)
	b.Accept(1)
	f := b.MustBuild()
	p, levels, err := Partition(f, 0)
	if err != nil {
		t.Fatal(err)
	}
	if levels != 0 || p.NumBlocks() != 2 {
		t.Errorf("≈_0: levels=%d blocks=%d, want 0 and 2", levels, p.NumBlocks())
	}
	if !p.Same(0, 1) || p.Same(0, 2) {
		t.Errorf("extension grouping wrong")
	}
}

func TestEquivalentZero(t *testing.T) {
	// ≈_0 compares start-state extensions only.
	eq, err := Equivalent(gen.Chain(1), gen.Chain(5), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Errorf("≈_0 must hold for any two accepting starts")
	}
}

func TestTauOnlyProcess(t *testing.T) {
	// A process with only tau arcs: all states with equal extensions are
	// ≈_k for every k.
	b := fsp.NewBuilder("")
	b.AddStates(3)
	b.ArcName(0, fsp.TauName, 1)
	b.ArcName(1, fsp.TauName, 2)
	for s := fsp.State(0); s < 3; s++ {
		b.Accept(s)
	}
	f := b.MustBuild()
	p, _, err := Partition(f, -1)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumBlocks() != 1 {
		t.Errorf("tau-only restricted process should collapse: %d blocks", p.NumBlocks())
	}
}

func TestEquivalentToTrivialFromDeadStart(t *testing.T) {
	// A single dead accepting state over a unary alphabet is NOT trivial
	// (it refuses a immediately). It has no arcs, so the weak reachability
	// check must fail on the start state itself.
	b := fsp.NewBuilder("")
	b.AddStates(1)
	b.Action("a") // alphabet has a, but no arcs
	b.Accept(0)
	f := b.MustBuild()
	ok, err := EquivalentToTrivial(f, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Errorf("dead state reported ≈_2-trivial")
	}
}

func TestTraceWitnessIdenticalProcesses(t *testing.T) {
	p := gen.Chain(3)
	eq, word, err := TraceWitness(p, p)
	if err != nil {
		t.Fatal(err)
	}
	if !eq || word != nil {
		t.Errorf("self-comparison must be equal: %v %v", eq, word)
	}
}
