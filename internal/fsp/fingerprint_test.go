package fsp

import (
	"math/rand"
	"testing"
)

const fpFixture = `fsp p
states 3
start 0
ext 0 x
ext 2 x
arc 0 a 1
arc 0 tau 2
arc 1 b 2
`

// TestFingerprintParseTwice: the same text parsed twice yields distinct
// pointers but one structure — the engine-cache dedup contract.
func TestFingerprintParseTwice(t *testing.T) {
	p1, err := ParseString(fpFixture)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := ParseString(fpFixture)
	if err != nil {
		t.Fatal(err)
	}
	if p1 == p2 {
		t.Fatal("premise: expected distinct pointers")
	}
	if !StructuralEqual(p1, p2) {
		t.Error("two parses of one text are not structurally equal")
	}
	if Fingerprint(p1) != Fingerprint(p2) {
		t.Error("two parses of one text have different fingerprints")
	}
}

// TestFingerprintInterningOrder: the same process built with a different
// alphabet interning order must compare and hash equal.
func TestFingerprintInterningOrder(t *testing.T) {
	b1 := NewBuilder("p")
	b1.AddStates(2)
	b1.ArcName(0, "a", 1)
	b1.ArcName(0, "b", 1)
	p1 := b1.MustBuild()

	b2 := NewBuilder("q") // name differs too: names are not structure
	b2.Action("b")        // intern in the opposite order
	b2.Action("a")
	b2.AddStates(2)
	b2.ArcName(0, "a", 1)
	b2.ArcName(0, "b", 1)
	p2 := b2.MustBuild()

	if !StructuralEqual(p1, p2) {
		t.Error("interning order changed structural equality")
	}
	if Fingerprint(p1) != Fingerprint(p2) {
		t.Error("interning order changed the fingerprint")
	}
}

// TestStructuralEqualDistinguishes: start state, arcs, labels, targets and
// extensions must all matter.
func TestStructuralEqualDistinguishes(t *testing.T) {
	base := func() *Builder {
		b := NewBuilder("p")
		b.AddStates(3)
		b.ArcName(0, "a", 1)
		b.Accept(2)
		return b
	}
	p := base().MustBuild()

	variants := map[string]*FSP{}
	{
		b := base()
		b.SetStart(1)
		variants["start"] = b.MustBuild()
	}
	{
		b := base()
		b.ArcName(1, "a", 2)
		variants["extra arc"] = b.MustBuild()
	}
	{
		b := NewBuilder("p")
		b.AddStates(3)
		b.ArcName(0, "b", 1)
		b.Accept(2)
		variants["label"] = b.MustBuild()
	}
	{
		b := NewBuilder("p")
		b.AddStates(3)
		b.ArcName(0, "a", 2)
		b.Accept(2)
		variants["target"] = b.MustBuild()
	}
	{
		b := base()
		b.Accept(0)
		variants["extension"] = b.MustBuild()
	}
	for name, v := range variants {
		if StructuralEqual(p, v) {
			t.Errorf("%s: variant compares structurally equal", name)
		}
	}
}

// TestFingerprintRandomStability: fingerprints are deterministic and
// random unequal processes essentially never collide (smoke, not proof).
func TestFingerprintRandomStability(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	seen := map[uint64]*FSP{}
	for i := 0; i < 200; i++ {
		b := NewBuilder("r")
		n := 2 + rng.Intn(6)
		b.AddStates(n)
		for j := 0; j < 1+rng.Intn(8); j++ {
			b.ArcName(State(rng.Intn(n)), string(rune('a'+rng.Intn(3))), State(rng.Intn(n)))
		}
		f := b.MustBuild()
		if Fingerprint(f) != Fingerprint(f) {
			t.Fatal("fingerprint not deterministic")
		}
		if prev, ok := seen[Fingerprint(f)]; ok && !StructuralEqual(prev, f) {
			// A collision between structurally different processes is
			// possible in principle; the cache handles it via
			// StructuralEqual. Just make sure the pair really differs.
			t.Logf("hash collision between distinct processes (handled by equality check)")
		}
		seen[Fingerprint(f)] = f
	}
}
