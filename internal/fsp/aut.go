package fsp

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Aldebaran (.aut) interchange, the labelled-transition-system format used
// by the CADP and mCRL2 toolsets — the ecosystems where the paper's
// partition-refinement algorithms ended up in production. The format is
//
//	des (START, NUMTRANSITIONS, NUMSTATES)
//	(FROM, "LABEL", TO)
//	...
//
// LTS tools have no acceptance notion: every state is implicitly accepting,
// i.e. .aut describes exactly the paper's restricted model. The label "i"
// denotes the internal action and maps to tau. WriteAUT therefore refuses
// processes with non-restricted extensions rather than silently dropping
// them.

// WriteAUT renders f in Aldebaran format.
func WriteAUT(w io.Writer, f *FSP) error {
	if !Classify(f).Restricted {
		return fmt.Errorf("aut: %q is not restricted; .aut cannot express extensions", orFSP(f.name))
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "des (%d, %d, %d)\n", f.start, f.numTrans, f.NumStates())
	for s := 0; s < f.NumStates(); s++ {
		for _, a := range f.adj[s] {
			label := f.alphabet.Name(a.Act)
			if a.Act == Tau {
				label = "i"
			}
			fmt.Fprintf(bw, "(%d, %q, %d)\n", s, label, a.To)
		}
	}
	return bw.Flush()
}

// AUTString renders f in Aldebaran format.
func AUTString(f *FSP) (string, error) {
	var sb strings.Builder
	if err := WriteAUT(&sb, f); err != nil {
		return "", err
	}
	return sb.String(), nil
}

// ParseAUT reads an Aldebaran-format LTS as a restricted FSP (every state
// accepting). The label "i" (and mCRL2's "tau") become the tau action.
func ParseAUT(r io.Reader) (*FSP, error) {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineno := 0
	fail := func(format string, args ...any) (*FSP, error) {
		return nil, fmt.Errorf("aut line %d: %s", lineno, fmt.Sprintf(format, args...))
	}

	var b *Builder
	for scanner.Scan() {
		lineno++
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		if b == nil {
			start, _, states, err := parseAUTHeader(line)
			if err != nil {
				return fail("%v", err)
			}
			b = NewBuilder("aut")
			b.AddStates(states)
			b.SetStart(State(start))
			for s := 0; s < states; s++ {
				b.Accept(State(s))
			}
			if b.Err() != nil {
				return fail("%v", b.Err())
			}
			continue
		}
		from, label, to, err := parseAUTEdge(line)
		if err != nil {
			return fail("%v", err)
		}
		if label == "i" || label == "tau" {
			label = TauName
		}
		b.ArcName(State(from), label, State(to))
		if b.Err() != nil {
			return fail("%v", b.Err())
		}
	}
	if err := scanner.Err(); err != nil {
		return nil, err
	}
	if b == nil {
		return nil, fmt.Errorf("aut: missing des header")
	}
	return b.Build()
}

// ParseAUTString is ParseAUT over a string.
func ParseAUTString(s string) (*FSP, error) { return ParseAUT(strings.NewReader(s)) }

func parseAUTHeader(line string) (start, trans, states int, err error) {
	if !strings.HasPrefix(line, "des") {
		return 0, 0, 0, fmt.Errorf("expected des header, got %q", line)
	}
	rest := strings.TrimSpace(strings.TrimPrefix(line, "des"))
	inner, err := stripParens(rest)
	if err != nil {
		return 0, 0, 0, err
	}
	parts := strings.Split(inner, ",")
	if len(parts) != 3 {
		return 0, 0, 0, fmt.Errorf("des header wants three fields, got %q", inner)
	}
	nums := make([]int, 3)
	for i, p := range parts {
		nums[i], err = strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return 0, 0, 0, fmt.Errorf("bad number %q in header", p)
		}
	}
	start, trans, states = nums[0], nums[1], nums[2]
	if states <= 0 || start < 0 || start >= states || trans < 0 {
		return 0, 0, 0, fmt.Errorf("inconsistent header (%d, %d, %d)", start, trans, states)
	}
	return start, trans, states, nil
}

func parseAUTEdge(line string) (from int, label string, to int, err error) {
	inner, err := stripParens(line)
	if err != nil {
		return 0, "", 0, err
	}
	// The label may contain commas, so split at the first and last comma.
	first := strings.Index(inner, ",")
	last := strings.LastIndex(inner, ",")
	if first < 0 || first == last {
		return 0, "", 0, fmt.Errorf("edge wants three fields: %q", line)
	}
	from, err = strconv.Atoi(strings.TrimSpace(inner[:first]))
	if err != nil {
		return 0, "", 0, fmt.Errorf("bad source in %q", line)
	}
	to, err = strconv.Atoi(strings.TrimSpace(inner[last+1:]))
	if err != nil {
		return 0, "", 0, fmt.Errorf("bad target in %q", line)
	}
	label = strings.TrimSpace(inner[first+1 : last])
	if len(label) >= 2 && label[0] == '"' && label[len(label)-1] == '"' {
		label = label[1 : len(label)-1]
	}
	if label == "" {
		return 0, "", 0, fmt.Errorf("empty label in %q", line)
	}
	return from, label, to, nil
}

func stripParens(s string) (string, error) {
	s = strings.TrimSpace(s)
	if len(s) < 2 || s[0] != '(' || s[len(s)-1] != ')' {
		return "", fmt.Errorf("expected parenthesized tuple, got %q", s)
	}
	return s[1 : len(s)-1], nil
}
