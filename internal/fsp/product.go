package fsp

import (
	"fmt"
	"strings"
)

// This file implements the "direct product of states" constructions that
// Section 6 of the paper proposes for extending star expressions with
// composition and intersection operators. Intersection synchronizes on
// every observable action; Compose is CCS parallel composition (Milner
// 1980): interleaving plus complementary-action handshakes that become tau.

// CoName returns the complementary action name in the convention used by
// Compose: "a" <-> "a'". Co-names model Milner's overbarred actions.
func CoName(name string) string {
	if strings.HasSuffix(name, "'") {
		return strings.TrimSuffix(name, "'")
	}
	return name + "'"
}

// pairIndex enumerates reachable product states on the fly.
type pairIndex struct {
	ids   map[[2]State]State
	order [][2]State
}

func newPairIndex() *pairIndex {
	return &pairIndex{ids: map[[2]State]State{}}
}

func (pi *pairIndex) intern(p, q State) (State, bool) {
	key := [2]State{p, q}
	if id, ok := pi.ids[key]; ok {
		return id, false
	}
	id := State(len(pi.order))
	pi.ids[key] = id
	pi.order = append(pi.order, key)
	return id, true
}

// Intersect returns the synchronized product of f and g: the product state
// (p, q) can perform sigma iff both components can, moving jointly; tau
// moves of either component interleave independently. The extension of
// (p, q) is E(p) ∩ E(q), so in the standard model the product accepts the
// intersection of the languages — the "new semantics" for an intersection
// operator contemplated in Section 6. Only states reachable from the
// product start are constructed.
func Intersect(f, g *FSP) (*FSP, error) {
	alpha := f.alphabet.Clone()
	vars := f.vars.Clone()
	b := NewBuilderWith(fmt.Sprintf("(%s&%s)", orFSP(f.name), orFSP(g.name)), alpha, vars)

	// Action translation g -> f by name (interning unseen names).
	gAct := make([]Action, g.alphabet.Len())
	for i := 0; i < g.alphabet.Len(); i++ {
		gAct[i] = alpha.Intern(g.alphabet.Name(Action(i)))
	}

	pi := newPairIndex()
	start, _ := pi.intern(f.start, g.start)
	b.AddState()
	b.SetStart(start)

	for head := 0; head < len(pi.order); head++ {
		pq := pi.order[head]
		p, q := pq[0], pq[1]
		cur := State(head)

		emit := func(act Action, np, nq State) {
			id, fresh := pi.intern(np, nq)
			if fresh {
				b.AddState()
			}
			b.Arc(cur, act, id)
		}

		// Joint observable moves.
		for _, fa := range f.adj[p] {
			if fa.Act == Tau {
				emit(Tau, fa.To, q)
				continue
			}
			name := f.alphabet.Name(fa.Act)
			ga, ok := g.alphabet.Lookup(name)
			if !ok {
				continue
			}
			for _, to := range g.Dest(q, ga) {
				emit(fa.Act, fa.To, to)
			}
		}
		// g's tau moves interleave.
		for _, to := range g.Dest(q, Tau) {
			emit(Tau, p, to)
		}

		// Extension: intersection by name.
		for _, id := range f.ext[p].IDs() {
			name := f.vars.Name(id)
			gid, ok := g.vars.Lookup(name)
			if ok && g.ext[q].Has(gid) {
				b.Extend(cur, name)
			}
		}
	}
	out, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("intersect: %w", err)
	}
	return out, nil
}

// Compose returns the CCS parallel composition f | g: each side moves
// independently on any action (interleaving), and complementary actions —
// "a" in one component, "a'" in the other — synchronize into a single tau
// move. The extension of (p, q) is E(p) ∪ E(q). Only reachable product
// states are constructed.
//
// Combined with Restrict, this is the composition operator of Section 6:
// Restrict(Compose(f, g), "mid") hides the handshake on "mid" so only the
// synchronized tau remains.
func Compose(f, g *FSP) (*FSP, error) {
	alpha := f.alphabet.Clone()
	for i := 1; i < g.alphabet.Len(); i++ {
		alpha.Intern(g.alphabet.Name(Action(i)))
	}
	vars := f.vars.Clone()
	for i := 0; i < g.vars.Len(); i++ {
		if _, err := vars.Intern(g.vars.Name(VarID(i))); err != nil {
			return nil, fmt.Errorf("compose: %w", err)
		}
	}
	b := NewBuilderWith(fmt.Sprintf("(%s|%s)", orFSP(f.name), orFSP(g.name)), alpha, vars)

	pi := newPairIndex()
	start, _ := pi.intern(f.start, g.start)
	b.AddState()
	b.SetStart(start)

	for head := 0; head < len(pi.order); head++ {
		pq := pi.order[head]
		p, q := pq[0], pq[1]
		cur := State(head)

		emit := func(act Action, np, nq State) {
			id, fresh := pi.intern(np, nq)
			if fresh {
				b.AddState()
			}
			b.Arc(cur, act, id)
		}

		// f interleaves.
		for _, fa := range f.adj[p] {
			emit(alpha.Intern(f.alphabet.Name(fa.Act)), fa.To, q)
		}
		// g interleaves.
		for _, ga := range g.adj[q] {
			emit(alpha.Intern(g.alphabet.Name(ga.Act)), p, ga.To)
		}
		// Handshakes: f does sigma, g does co-sigma -> tau.
		for _, fa := range f.adj[p] {
			if fa.Act == Tau {
				continue
			}
			co := CoName(f.alphabet.Name(fa.Act))
			gco, ok := g.alphabet.Lookup(co)
			if !ok {
				continue
			}
			for _, to := range g.Dest(q, gco) {
				emit(Tau, fa.To, to)
			}
		}

		// Extension: union by name.
		for _, id := range f.ext[p].IDs() {
			b.Extend(cur, f.vars.Name(id))
		}
		for _, id := range g.ext[q].IDs() {
			b.Extend(cur, g.vars.Name(id))
		}
	}
	out, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("compose: %w", err)
	}
	return out, nil
}

// Restrict returns f with every transition labelled by one of the given
// action names (or their co-names) removed — Milner's restriction operator
// P\L. Unreachable states are pruned.
func Restrict(f *FSP, names ...string) (*FSP, error) {
	banned := map[Action]bool{}
	for _, n := range names {
		if n == TauName {
			return nil, fmt.Errorf("restrict: tau cannot be restricted")
		}
		if a, ok := f.alphabet.Lookup(n); ok {
			banned[a] = true
		}
		if a, ok := f.alphabet.Lookup(CoName(n)); ok {
			banned[a] = true
		}
	}
	// Reachability over the allowed arcs.
	keep := make([]bool, f.NumStates())
	keep[f.start] = true
	stack := []State{f.start}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, a := range f.adj[s] {
			if banned[a.Act] || keep[a.To] {
				continue
			}
			keep[a.To] = true
			stack = append(stack, a.To)
		}
	}
	remap := make([]State, f.NumStates())
	var live int
	for s := 0; s < f.NumStates(); s++ {
		if keep[s] {
			remap[s] = State(live)
			live++
		} else {
			remap[s] = None
		}
	}
	b := NewBuilderWith(f.name+"\\{"+strings.Join(names, ",")+"}", f.alphabet.Clone(), f.vars.Clone())
	b.AddStates(live)
	b.SetStart(remap[f.start])
	for s := 0; s < f.NumStates(); s++ {
		if !keep[s] {
			continue
		}
		for _, a := range f.adj[s] {
			if !banned[a.Act] && keep[a.To] {
				b.Arc(remap[s], a.Act, remap[a.To])
			}
		}
		for _, id := range f.ext[s].IDs() {
			b.Extend(remap[s], f.vars.Name(id))
		}
	}
	out, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("restrict: %w", err)
	}
	return out, nil
}
