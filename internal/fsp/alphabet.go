package fsp

import (
	"fmt"
	"sort"
)

// Action identifies an action symbol of an FSP. Action 0 is always Tau, the
// unobservable action of CCS; all other actions are observable members of the
// alphabet Sigma of Definition 2.1.1.
type Action int32

// Tau is the unobservable action. It is a member of every Alphabet but is
// never part of Sigma itself (the paper keeps tau distinct from Sigma, and
// distinct from the empty string epsilon).
const Tau Action = 0

// TauName is the textual spelling of the unobservable action.
const TauName = "tau"

// Alphabet interns action names and assigns them dense Action indices.
// Index 0 is reserved for Tau. Alphabets are append-only: actions can be
// added but never removed, so Action values remain stable for the lifetime
// of the alphabet.
type Alphabet struct {
	names []string
	index map[string]Action
}

// NewAlphabet returns an alphabet containing Tau plus the given observable
// actions, in order. Duplicate names are interned once.
func NewAlphabet(actions ...string) *Alphabet {
	a := &Alphabet{
		names: make([]string, 1, len(actions)+1),
		index: make(map[string]Action, len(actions)+1),
	}
	a.names[0] = TauName
	a.index[TauName] = Tau
	for _, name := range actions {
		a.Intern(name)
	}
	return a
}

// Intern returns the Action for name, adding it to the alphabet if absent.
// Interning "tau" returns Tau.
func (a *Alphabet) Intern(name string) Action {
	if act, ok := a.index[name]; ok {
		return act
	}
	act := Action(len(a.names))
	a.names = append(a.names, name)
	a.index[name] = act
	return act
}

// Lookup returns the Action for name and whether it is present.
func (a *Alphabet) Lookup(name string) (Action, bool) {
	act, ok := a.index[name]
	return act, ok
}

// Name returns the textual name of act. It panics on out-of-range actions,
// which indicate a corrupted Action value rather than a recoverable error.
func (a *Alphabet) Name(act Action) string {
	return a.names[act]
}

// Len reports the number of actions including Tau.
func (a *Alphabet) Len() int { return len(a.names) }

// NumObservable reports the number of observable actions (|Sigma|).
func (a *Alphabet) NumObservable() int { return len(a.names) - 1 }

// Observable returns the observable actions in index order.
func (a *Alphabet) Observable() []Action {
	acts := make([]Action, 0, len(a.names)-1)
	for i := 1; i < len(a.names); i++ {
		acts = append(acts, Action(i))
	}
	return acts
}

// Names returns the observable action names sorted lexicographically.
func (a *Alphabet) Names() []string {
	names := make([]string, 0, len(a.names)-1)
	names = append(names, a.names[1:]...)
	sort.Strings(names)
	return names
}

// Clone returns an independent copy of the alphabet.
func (a *Alphabet) Clone() *Alphabet {
	c := &Alphabet{
		names: make([]string, len(a.names)),
		index: make(map[string]Action, len(a.index)),
	}
	copy(c.names, a.names)
	for k, v := range a.index {
		c.index[k] = v
	}
	return c
}

// Equal reports whether two alphabets intern exactly the same names to the
// same indices. Equivalence notions in the paper are only defined for FSPs
// "which have the same Sigma and V".
func (a *Alphabet) Equal(b *Alphabet) bool {
	if len(a.names) != len(b.names) {
		return false
	}
	for i, n := range a.names {
		if b.names[i] != n {
			return false
		}
	}
	return true
}

func (a *Alphabet) String() string {
	return fmt.Sprintf("Sigma%v", a.names[1:])
}
