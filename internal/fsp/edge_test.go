package fsp

import (
	"strings"
	"testing"
)

func TestBuilderExtendErrors(t *testing.T) {
	b := NewBuilder("")
	b.AddState()
	b.Extend(5, "x") // bad state
	if _, err := b.Build(); err == nil {
		t.Error("extend of missing state accepted")
	}
}

func TestBuilderErrSticky(t *testing.T) {
	b := NewBuilder("")
	b.AddState()
	b.ArcName(0, "a", 9) // error recorded
	b.ArcName(0, "a", 0) // further calls are no-ops w.r.t. error
	if b.Err() == nil {
		t.Fatal("error not recorded")
	}
	if _, err := b.Build(); err == nil {
		t.Error("Build ignored recorded error")
	}
}

func TestArcSnapshotIsolated(t *testing.T) {
	b := NewBuilder("")
	b.AddStates(2)
	b.ArcName(0, "a", 1)
	snap := b.ArcSnapshot(0)
	b.ArcName(0, "a", 0)
	if len(snap) != 1 {
		t.Errorf("snapshot mutated by later arcs")
	}
	if got := b.ArcSnapshot(9); got != nil {
		t.Errorf("snapshot of bad state should be nil")
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustBuild did not panic")
		}
	}()
	NewBuilder("").MustBuild() // no states
}

func TestMustVarTablePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustVarTable did not panic")
		}
	}()
	many := make([]string, MaxVars+1)
	for i := range many {
		many[i] = strings.Repeat("v", i+1)
	}
	MustVarTable(many...)
}

func TestSaturateTwiceFails(t *testing.T) {
	b := NewBuilder("")
	b.AddStates(2)
	b.ArcName(0, "a", 1)
	f := b.MustBuild()
	sat, _, err := Saturate(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Saturate(sat); err == nil {
		t.Error("saturating a saturated process must fail (ε collision)")
	}
}

func TestDisjointUnionDisjointAlphabets(t *testing.T) {
	b1 := NewBuilder("p")
	b1.AddStates(2)
	b1.ArcName(0, "left", 1)
	p := b1.MustBuild()
	b2 := NewBuilder("q")
	b2.AddStates(2)
	b2.ArcName(0, "right", 1)
	q := b2.MustBuild()
	u, off, err := DisjointUnion(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if u.Alphabet().NumObservable() != 2 {
		t.Errorf("union alphabet = %d observable actions, want 2", u.Alphabet().NumObservable())
	}
	r, ok := u.Alphabet().Lookup("right")
	if !ok {
		t.Fatal("action right missing from union")
	}
	if got := u.Dest(off, r); len(got) != 1 || got[0] != off+1 {
		t.Errorf("remapped arc wrong: %v", got)
	}
}

func TestIntersectDisjointAlphabetHalts(t *testing.T) {
	// Intersecting processes over disjoint alphabets yields a product with
	// no joint observable moves.
	b1 := NewBuilder("")
	b1.AddStates(2)
	b1.ArcName(0, "a", 1)
	p := b1.MustBuild()
	b2 := NewBuilder("")
	b2.AddStates(2)
	b2.ArcName(0, "b", 1)
	q := b2.MustBuild()
	prod, err := Intersect(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if prod.NumTransitions() != 0 {
		t.Errorf("product of disjoint alphabets has %d transitions", prod.NumTransitions())
	}
}

func TestRestrictEverything(t *testing.T) {
	b := NewBuilder("")
	b.AddStates(3)
	b.ArcName(0, "a", 1)
	b.ArcName(1, "b", 2)
	f := b.MustBuild()
	r, err := Restrict(f, "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if r.NumStates() != 1 || r.NumTransitions() != 0 {
		t.Errorf("full restriction should leave the bare start state: %d/%d",
			r.NumStates(), r.NumTransitions())
	}
}

func TestFormatEmptyAlphabet(t *testing.T) {
	b := NewBuilder("silent")
	b.AddStates(2)
	b.ArcName(0, TauName, 1)
	f := b.MustBuild()
	text := FormatString(f)
	if strings.Contains(text, "alphabet") {
		t.Errorf("empty observable alphabet should omit the directive:\n%s", text)
	}
	back, err := ParseString(text)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if back.NumTransitions() != 1 {
		t.Errorf("tau arc lost in round trip")
	}
}

func TestStringMethods(t *testing.T) {
	b := NewBuilder("")
	b.AddStates(1)
	f := b.MustBuild()
	if !strings.Contains(f.String(), "states=1") {
		t.Errorf("FSP.String = %q", f.String())
	}
	a := NewAlphabet("a")
	if !strings.Contains(a.String(), "a") {
		t.Errorf("Alphabet.String = %q", a.String())
	}
	if len(a.Names()) != 1 || a.Names()[0] != "a" {
		t.Errorf("Names = %v", a.Names())
	}
	tbl := MustVarTable("x")
	c := tbl.Clone()
	if !tbl.Equal(c) {
		t.Errorf("cloned table unequal")
	}
	if _, err := c.Intern("y"); err != nil {
		t.Fatal(err)
	}
	if tbl.Equal(c) {
		t.Errorf("grown clone still equal")
	}
	if c.Name(0) != "x" || c.Len() != 2 {
		t.Errorf("table accessors wrong")
	}
}
