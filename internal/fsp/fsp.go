// Package fsp implements the finite state process (FSP) model of
// Kanellakis & Smolka, "CCS Expressions, Finite State Processes, and Three
// Problems of Equivalence" (Definition 2.1.1).
//
// An FSP is a sextuple (K, p0, Sigma, Delta, V, E): a finite set of states K
// with a start state p0, a transition relation Delta over K x (Sigma u
// {tau}) x K where tau is the unobservable action, and an extension relation
// E assigning each state a set of variables from V. Extensions generalize
// NFA acceptance: in the standard model V = {x} and a state is accepting iff
// its extension is {x}.
//
// The package provides the model itself, a builder, the Table I model
// hierarchy classifier, tau-closure and weak saturation (the ==s=> derivative
// relation of Section 2.1), a textual interchange format, and DOT export.
// Equivalence checking lives in the core, kequiv and failures packages.
package fsp

import (
	"fmt"
	"sort"
)

// State identifies a state of an FSP as a dense index in [0, NumStates).
type State int32

// None is the absent state, used by lookups that can fail.
const None State = -1

// Arc is a single labelled transition out of a state.
type Arc struct {
	Act Action
	To  State
}

// Transition is a full (from, action, to) element of the transition relation
// Delta, used by iteration and interchange code.
type Transition struct {
	From State
	Act  Action
	To   State
}

// FSP is an immutable finite state process. Construct one with a Builder,
// Parse, or one of the combinators; the accessor methods never mutate.
type FSP struct {
	name     string
	alphabet *Alphabet
	vars     *VarTable
	start    State
	adj      [][]Arc // adj[s] sorted by (Act, To)
	ext      []VarSet
	numTrans int
}

// Name returns the optional human-readable name of the process.
func (f *FSP) Name() string { return f.name }

// Alphabet returns the action alphabet (shared, do not mutate).
func (f *FSP) Alphabet() *Alphabet { return f.alphabet }

// Vars returns the variable table (shared, do not mutate).
func (f *FSP) Vars() *VarTable { return f.vars }

// Start returns the start state p0.
func (f *FSP) Start() State { return f.start }

// NumStates returns |K|.
func (f *FSP) NumStates() int { return len(f.adj) }

// NumTransitions returns |Delta|.
func (f *FSP) NumTransitions() int { return f.numTrans }

// Ext returns the extension E(s) of state s.
func (f *FSP) Ext(s State) VarSet { return f.ext[s] }

// Arcs returns the outgoing transitions of s, sorted by (action, target).
// The returned slice is shared; callers must not modify it.
func (f *FSP) Arcs(s State) []Arc { return f.adj[s] }

// Dest returns the destinations Delta(s, act) in increasing state order.
func (f *FSP) Dest(s State, act Action) []State {
	arcs := f.adj[s]
	lo, hi := f.destSpan(s, act)
	var out []State
	for i := lo; i < hi; i++ {
		out = append(out, arcs[i].To)
	}
	return out
}

// destSpan returns the half-open index range [lo, hi) of f.adj[s] holding
// the arcs labelled act, letting hot paths iterate destinations without
// allocating the slice Dest returns.
func (f *FSP) destSpan(s State, act Action) (int, int) {
	arcs := f.adj[s]
	lo := sort.Search(len(arcs), func(i int) bool { return arcs[i].Act >= act })
	hi := lo
	for hi < len(arcs) && arcs[hi].Act == act {
		hi++
	}
	return lo, hi
}

// HasArc reports whether (s, act, to) is in Delta.
func (f *FSP) HasArc(s State, act Action, to State) bool {
	arcs := f.adj[s]
	i := sort.Search(len(arcs), func(i int) bool {
		if arcs[i].Act != act {
			return arcs[i].Act > act
		}
		return arcs[i].To >= to
	})
	return i < len(arcs) && arcs[i].Act == act && arcs[i].To == to
}

// HasAction reports whether s has at least one transition labelled act.
func (f *FSP) HasAction(s State, act Action) bool {
	arcs := f.adj[s]
	lo := sort.Search(len(arcs), func(i int) bool { return arcs[i].Act >= act })
	return lo < len(arcs) && arcs[lo].Act == act
}

// Initials returns the set of observable actions enabled at s (directly, not
// through tau), in increasing order.
func (f *FSP) Initials(s State) []Action {
	var out []Action
	var last Action = -1
	for _, a := range f.adj[s] {
		if a.Act != Tau && a.Act != last {
			out = append(out, a.Act)
			last = a.Act
		}
	}
	return out
}

// Transitions returns all transitions sorted by (from, action, to). The
// slice is freshly allocated.
func (f *FSP) Transitions() []Transition {
	out := make([]Transition, 0, f.numTrans)
	for s := range f.adj {
		for _, a := range f.adj[s] {
			out = append(out, Transition{From: State(s), Act: a.Act, To: a.To})
		}
	}
	return out
}

// Accepting reports whether s is accepting in the standard-model sense,
// i.e. whether the variable x belongs to E(s).
func (f *FSP) Accepting(s State) bool {
	id, ok := f.vars.Lookup(StandardVar)
	return ok && f.ext[s].Has(id)
}

// Reachable returns the set of states reachable from the start state
// (following all transitions including tau) as a boolean mask.
func (f *FSP) Reachable() []bool {
	seen := make([]bool, len(f.adj))
	stack := []State{f.start}
	seen[f.start] = true
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, a := range f.adj[s] {
			if !seen[a.To] {
				seen[a.To] = true
				stack = append(stack, a.To)
			}
		}
	}
	return seen
}

// String returns a compact single-line summary.
func (f *FSP) String() string {
	name := f.name
	if name == "" {
		name = "fsp"
	}
	return fmt.Sprintf("%s(states=%d, trans=%d, start=%d)", name, len(f.adj), f.numTrans, f.start)
}

// sortArcs establishes the canonical (Act, To) order used by Dest/HasArc.
func sortArcs(arcs []Arc) {
	sort.Slice(arcs, func(i, j int) bool {
		if arcs[i].Act != arcs[j].Act {
			return arcs[i].Act < arcs[j].Act
		}
		return arcs[i].To < arcs[j].To
	})
}
