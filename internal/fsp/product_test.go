package fsp

import (
	"testing"
)

// lang collects the accepted words of a standard observable FSP up to
// maxLen, by direct subset simulation (test helper).
func lang(f *FSP, maxLen int) map[string]bool {
	out := map[string]bool{}
	type node struct {
		set  []State
		word string
	}
	clo := TauClosure(f)
	queue := []node{{set: clo.Of(f.start)}}
	for head := 0; head < len(queue); head++ {
		cur := queue[head]
		for _, s := range cur.set {
			if f.Accepting(s) {
				out[cur.word] = true
				break
			}
		}
		if len(cur.word) >= maxLen {
			continue
		}
		for _, sigma := range f.alphabet.Observable() {
			next := WeakDestSet(f, clo, cur.set, sigma)
			if len(next) == 0 {
				continue
			}
			queue = append(queue, node{set: next, word: cur.word + f.alphabet.Name(sigma)})
		}
	}
	return out
}

func TestCoName(t *testing.T) {
	if CoName("a") != "a'" || CoName("a'") != "a" {
		t.Errorf("CoName wrong: %q %q", CoName("a"), CoName("a'"))
	}
	if CoName(CoName("send")) != "send" {
		t.Errorf("CoName not involutive")
	}
}

func TestIntersectLanguages(t *testing.T) {
	// L1 = words over {a,b} with at least one a (reaching accept).
	b1 := NewBuilder("hasA")
	b1.AddStates(2)
	b1.ArcName(0, "a", 1)
	b1.ArcName(0, "b", 0)
	b1.ArcName(1, "a", 1)
	b1.ArcName(1, "b", 1)
	b1.Accept(1)
	f := b1.MustBuild()

	// L2 = words of even length.
	b2 := NewBuilder("even")
	b2.AddStates(2)
	b2.ArcName(0, "a", 1)
	b2.ArcName(0, "b", 1)
	b2.ArcName(1, "a", 0)
	b2.ArcName(1, "b", 0)
	b2.Accept(0)
	g := b2.MustBuild()

	prod, err := Intersect(f, g)
	if err != nil {
		t.Fatal(err)
	}
	lf, lg, lp := lang(f, 4), lang(g, 4), lang(prod, 4)
	for w := range lf {
		want := lf[w] && lg[w]
		if lp[w] != want {
			t.Errorf("word %q: product %v, want %v", w, lp[w], want)
		}
	}
	for w := range lp {
		if !lf[w] || !lg[w] {
			t.Errorf("product accepts %q outside the intersection", w)
		}
	}
}

func TestIntersectInterleavesTau(t *testing.T) {
	// f = tau.a (accepting end), g = a (accepting end): intersection must
	// still accept "a" since tau is internal.
	b1 := NewBuilder("")
	b1.AddStates(3)
	b1.ArcName(0, TauName, 1)
	b1.ArcName(1, "a", 2)
	b1.Accept(2)
	f := b1.MustBuild()

	b2 := NewBuilder("")
	b2.AddStates(2)
	b2.ArcName(0, "a", 1)
	b2.Accept(1)
	g := b2.MustBuild()

	prod, err := Intersect(f, g)
	if err != nil {
		t.Fatal(err)
	}
	if !lang(prod, 2)["a"] {
		t.Errorf("intersection lost the word a across a tau move")
	}
}

func TestComposeHandshake(t *testing.T) {
	// sender = mid'.done? No: sender emits on "mid'", receiver listens on
	// "mid". Compose must offer a tau handshake.
	b1 := NewBuilder("sender")
	b1.AddStates(2)
	b1.ArcName(0, "mid'", 1)
	f := b1.MustBuild()

	b2 := NewBuilder("receiver")
	b2.AddStates(2)
	b2.ArcName(0, "mid", 1)
	g := b2.MustBuild()

	comp, err := Compose(f, g)
	if err != nil {
		t.Fatal(err)
	}
	// The composed process has: interleaved mid' and mid moves, and a tau
	// handshake from the joint start.
	if got := comp.Dest(comp.Start(), Tau); len(got) != 1 {
		t.Fatalf("expected one tau handshake, got %v", got)
	}
	// After restriction on mid, ONLY the handshake remains.
	restricted, err := Restrict(comp, "mid")
	if err != nil {
		t.Fatal(err)
	}
	if restricted.NumTransitions() != 1 {
		t.Fatalf("restricted composition has %d transitions, want 1 (the tau)", restricted.NumTransitions())
	}
	if got := restricted.Dest(restricted.Start(), Tau); len(got) != 1 {
		t.Errorf("restriction lost the handshake")
	}
}

func TestComposeInterleaving(t *testing.T) {
	// a | b with no co-names: pure interleaving, 4 product states.
	b1 := NewBuilder("")
	b1.AddStates(2)
	b1.ArcName(0, "a", 1)
	f := b1.MustBuild()
	b2 := NewBuilder("")
	b2.AddStates(2)
	b2.ArcName(0, "b", 1)
	g := b2.MustBuild()

	comp, err := Compose(f, g)
	if err != nil {
		t.Fatal(err)
	}
	if comp.NumStates() != 4 {
		t.Errorf("interleaving product has %d states, want 4", comp.NumStates())
	}
	if comp.NumTransitions() != 4 {
		t.Errorf("interleaving product has %d transitions, want 4", comp.NumTransitions())
	}
}

func TestComposeExtensionsUnion(t *testing.T) {
	b1 := NewBuilder("")
	b1.AddStates(1)
	b1.Extend(0, "x")
	f := b1.MustBuild()
	b2 := NewBuilder("")
	b2.AddStates(1)
	b2.Extend(0, "y")
	g := b2.MustBuild()
	comp, err := Compose(f, g)
	if err != nil {
		t.Fatal(err)
	}
	e := comp.Ext(comp.Start())
	x, okX := comp.Vars().Lookup("x")
	y, okY := comp.Vars().Lookup("y")
	if !okX || !okY || !e.Has(x) || !e.Has(y) {
		t.Errorf("composition extension union wrong: %v", e.Format(comp.Vars()))
	}
}

func TestRestrictRemovesCoNames(t *testing.T) {
	b := NewBuilder("")
	b.AddStates(3)
	b.ArcName(0, "a", 1)
	b.ArcName(0, "a'", 2)
	b.ArcName(0, "b", 1)
	f := b.MustBuild()
	r, err := Restrict(f, "a")
	if err != nil {
		t.Fatal(err)
	}
	if r.NumTransitions() != 1 {
		t.Errorf("restriction kept %d transitions, want 1", r.NumTransitions())
	}
	if r.NumStates() != 2 {
		t.Errorf("unreachable states not pruned: %d states", r.NumStates())
	}
	if _, err := Restrict(f, TauName); err == nil {
		t.Error("restricting tau should fail")
	}
}

func TestIntersectStartExtension(t *testing.T) {
	b1 := NewBuilder("")
	b1.AddStates(1)
	b1.Accept(0)
	f := b1.MustBuild()
	b2 := NewBuilder("")
	b2.AddStates(1)
	b2.Accept(0)
	g := b2.MustBuild()
	prod, err := Intersect(f, g)
	if err != nil {
		t.Fatal(err)
	}
	if !prod.Accepting(prod.Start()) {
		t.Errorf("intersection of accepting starts must accept")
	}
	// One side not accepting: intersection not accepting.
	b3 := NewBuilder("")
	b3.AddStates(1)
	h := b3.MustBuild()
	prod2, err := Intersect(f, h)
	if err != nil {
		t.Fatal(err)
	}
	if prod2.Accepting(prod2.Start()) {
		t.Errorf("intersection with non-accepting side must not accept")
	}
}
