package fsp

import (
	"errors"
	"fmt"
)

// Builder incrementally constructs an FSP. The zero value is not usable;
// call NewBuilder. Builders are single-use: after Build succeeds the builder
// must not be reused.
type Builder struct {
	name     string
	alphabet *Alphabet
	vars     *VarTable
	start    State
	startSet bool
	adj      [][]Arc
	ext      []VarSet
	numTrans int
	err      error
}

// NewBuilder returns a builder with a fresh alphabet and variable table.
func NewBuilder(name string) *Builder {
	return &Builder{
		name:     name,
		alphabet: NewAlphabet(),
		vars:     &VarTable{index: make(map[string]VarID)},
	}
}

// NewBuilderWith returns a builder that shares the given alphabet and
// variable table. The paper's equivalences are defined only between FSPs
// with identical Sigma and V; sharing the tables guarantees that.
func NewBuilderWith(name string, alphabet *Alphabet, vars *VarTable) *Builder {
	return &Builder{name: name, alphabet: alphabet, vars: vars}
}

// AddState appends a fresh state with empty extension and returns it.
func (b *Builder) AddState() State {
	s := State(len(b.adj))
	b.adj = append(b.adj, nil)
	b.ext = append(b.ext, EmptyVars)
	return s
}

// AddStates appends n fresh states and returns the first of them.
func (b *Builder) AddStates(n int) State {
	first := State(len(b.adj))
	for i := 0; i < n; i++ {
		b.AddState()
	}
	return first
}

// SetStart designates the start state p0.
func (b *Builder) SetStart(s State) *Builder {
	if !b.valid(s) {
		return b
	}
	b.start = s
	b.startSet = true
	return b
}

// Arc adds a transition (from, act, to). Duplicate transitions are kept;
// Build deduplicates them (Delta is a relation, i.e. a set).
func (b *Builder) Arc(from State, act Action, to State) *Builder {
	if !b.valid(from) || !b.valid(to) {
		return b
	}
	if int(act) < 0 || int(act) >= b.alphabet.Len() {
		b.fail(fmt.Errorf("action %d not in alphabet", act))
		return b
	}
	b.adj[from] = append(b.adj[from], Arc{Act: act, To: to})
	b.numTrans++
	return b
}

// ArcName adds a transition labelled by the named action, interning the
// name into the alphabet if needed. The name "tau" denotes Tau.
func (b *Builder) ArcName(from State, action string, to State) *Builder {
	return b.Arc(from, b.alphabet.Intern(action), to)
}

// Extend adds the named variables to the extension of s.
func (b *Builder) Extend(s State, vars ...string) *Builder {
	if !b.valid(s) {
		return b
	}
	for _, name := range vars {
		id, err := b.vars.Intern(name)
		if err != nil {
			b.fail(err)
			return b
		}
		b.ext[s] = b.ext[s].With(id)
	}
	return b
}

// Accept marks s as accepting in the standard-model sense (extension {x}).
func (b *Builder) Accept(s State) *Builder { return b.Extend(s, StandardVar) }

// Action interns an action name and returns its index, for callers that
// want to pre-intern the alphabet before adding arcs.
func (b *Builder) Action(name string) Action { return b.alphabet.Intern(name) }

// ArcSnapshot returns a copy of the arcs added so far from s (duplicates
// included, order of insertion). It lets inductive constructions — like the
// representative FSP of Definition 2.3.1 — copy a state's current arcs onto
// another state while continuing to build.
func (b *Builder) ArcSnapshot(s State) []Arc {
	if !b.valid(s) {
		return nil
	}
	out := make([]Arc, len(b.adj[s]))
	copy(out, b.adj[s])
	return out
}

// Err returns the first error recorded by the fluent methods, if any.
func (b *Builder) Err() error { return b.err }

// Build validates and freezes the FSP. Arcs are deduplicated and sorted.
func (b *Builder) Build() (*FSP, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.adj) == 0 {
		return nil, errors.New("fsp has no states")
	}
	if !b.startSet {
		b.start = 0
	}
	numTrans := 0
	for s := range b.adj {
		arcs := b.adj[s]
		sortArcs(arcs)
		// Deduplicate in place: Delta is a set.
		w := 0
		for i, a := range arcs {
			if i == 0 || a != arcs[i-1] {
				arcs[w] = a
				w++
			}
		}
		b.adj[s] = arcs[:w]
		numTrans += w
	}
	return &FSP{
		name:     b.name,
		alphabet: b.alphabet,
		vars:     b.vars,
		start:    b.start,
		adj:      b.adj,
		ext:      b.ext,
		numTrans: numTrans,
	}, nil
}

// MustBuild is Build for statically known inputs; it panics on error and is
// intended for fixtures and examples.
func (b *Builder) MustBuild() *FSP {
	f, err := b.Build()
	if err != nil {
		panic(err)
	}
	return f
}

func (b *Builder) valid(s State) bool {
	if int(s) < 0 || int(s) >= len(b.adj) {
		b.fail(fmt.Errorf("state %d out of range [0,%d)", s, len(b.adj)))
		return false
	}
	return true
}

func (b *Builder) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}
