package fsp

import "fmt"

// DisjointUnion combines two FSPs into one process whose state space is the
// disjoint union of theirs, with f's states first. The paper's equivalence
// notions compare states of a single FSP; to compare states across two
// processes "the proof is similar if p, q belong to two distinct observable
// FSPs having the same Sigma and V" (Lemma 3.1) — this combinator realizes
// exactly that reduction.
//
// Actions and variables are matched by name, so the operands may have been
// built with different tables as long as the names agree where used. The
// returned offset maps a state g-state s to offset+s in the union. The
// union's start state is f's start.
func DisjointUnion(f, g *FSP) (*FSP, State, error) {
	alpha := f.alphabet.Clone()
	vars := f.vars.Clone()
	b := NewBuilderWith(fmt.Sprintf("%s+%s", orFSP(f.name), orFSP(g.name)), alpha, vars)
	n, m := f.NumStates(), g.NumStates()
	b.AddStates(n + m)
	b.SetStart(f.start)
	offset := State(n)

	copyInto(b, f, 0)
	copyInto(b, g, offset)
	if b.Err() != nil {
		return nil, 0, b.Err()
	}
	out, err := b.Build()
	if err != nil {
		return nil, 0, err
	}
	return out, offset, nil
}

// copyInto replays src's transitions and extensions into b at the given
// state offset, translating actions and variables by name.
func copyInto(b *Builder, src *FSP, offset State) {
	for s := 0; s < src.NumStates(); s++ {
		for _, a := range src.adj[s] {
			b.ArcName(offset+State(s), src.alphabet.Name(a.Act), offset+a.To)
		}
		for _, id := range src.ext[s].IDs() {
			b.Extend(offset+State(s), src.vars.Name(id))
		}
	}
}

// Renumber returns a copy of f whose states are renumbered by perm:
// new state perm[s] plays the role of old state s. perm must be a
// permutation of [0, NumStates).
func Renumber(f *FSP, perm []State) (*FSP, error) {
	if len(perm) != f.NumStates() {
		return nil, fmt.Errorf("permutation has %d entries, want %d", len(perm), f.NumStates())
	}
	seen := make([]bool, len(perm))
	for _, p := range perm {
		if int(p) < 0 || int(p) >= len(perm) || seen[p] {
			return nil, fmt.Errorf("not a permutation")
		}
		seen[p] = true
	}
	b := NewBuilderWith(f.name, f.alphabet.Clone(), f.vars.Clone())
	b.AddStates(f.NumStates())
	b.SetStart(perm[f.start])
	for s := 0; s < f.NumStates(); s++ {
		for _, a := range f.adj[s] {
			b.Arc(perm[s], a.Act, perm[a.To])
		}
		for _, id := range f.ext[s].IDs() {
			b.Extend(perm[s], f.vars.Name(id))
		}
	}
	return b.Build()
}

func orFSP(name string) string {
	if name == "" {
		return "fsp"
	}
	return name
}
