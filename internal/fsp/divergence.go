package fsp

// Divergent reports, per state, whether an infinite sequence of tau moves
// is possible from it — i.e. whether the state can tau-reach a tau-cycle.
//
// The paper's equivalences are divergence-blind: observational equivalence
// happily equates a retransmitting loop with its spec (Theorem 4.1a works
// on the saturated process, where the loop collapses), and failures(p) as
// defined in Section 2.1 has no divergence component (unlike the full CSP
// failures/divergences model of Brookes-Hoare-Roscoe). This predicate lets
// users detect the situations where that blindness matters.
//
// Computed via Tarjan-style SCC detection on the tau-subgraph in O(n + m).
func Divergent(f *FSP) []bool {
	n := f.NumStates()
	tauAdj := make([][]State, n)
	for s := 0; s < n; s++ {
		for _, a := range f.adj[s] {
			if a.Act == Tau {
				tauAdj[s] = append(tauAdj[s], a.To)
			}
		}
	}

	// Iterative Tarjan SCC on the tau-subgraph.
	const unvisited = -1
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	inCycle := make([]bool, n)
	for i := range index {
		index[i] = unvisited
	}
	var (
		stack   []State
		next    int32
		callPos []int // per frame: next child index
		callSt  []State
	)
	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		callSt = append(callSt[:0], State(root))
		callPos = append(callPos[:0], 0)
		index[root] = next
		low[root] = next
		next++
		stack = append(stack[:0], State(root))
		onStack[root] = true
		for len(callSt) > 0 {
			s := callSt[len(callSt)-1]
			pos := callPos[len(callPos)-1]
			if pos < len(tauAdj[s]) {
				callPos[len(callPos)-1]++
				t := tauAdj[s][pos]
				if index[t] == unvisited {
					index[t] = next
					low[t] = next
					next++
					stack = append(stack, t)
					onStack[t] = true
					callSt = append(callSt, t)
					callPos = append(callPos, 0)
				} else if onStack[t] && index[t] < low[s] {
					low[s] = index[t]
				}
				continue
			}
			// Post-visit: pop frame, fold lowlink into parent, emit SCC.
			callSt = callSt[:len(callSt)-1]
			callPos = callPos[:len(callPos)-1]
			if len(callSt) > 0 {
				p := callSt[len(callSt)-1]
				if low[s] < low[p] {
					low[p] = low[s]
				}
			}
			if low[s] == index[s] {
				// SCC root: pop members.
				var members []State
				for {
					m := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[m] = false
					members = append(members, m)
					if m == s {
						break
					}
				}
				cyclic := len(members) > 1
				if !cyclic {
					// Single node: cyclic iff tau self-loop.
					for _, t := range tauAdj[members[0]] {
						if t == members[0] {
							cyclic = true
							break
						}
					}
				}
				if cyclic {
					for _, m := range members {
						inCycle[m] = true
					}
				}
			}
		}
	}

	// A state diverges iff it tau-reaches a cyclic SCC.
	clo := TauClosure(f)
	out := make([]bool, n)
	for s := 0; s < n; s++ {
		for _, t := range clo.Of(State(s)) {
			if inCycle[t] {
				out[s] = true
				break
			}
		}
	}
	return out
}
