package fsp

import (
	"hash/fnv"
	"sort"
)

// This file defines structural identity of FSPs: two processes are
// structurally equal when they have the same states, the same start, and
// state for state the same named arcs and extension variables — regardless
// of how their alphabets or variable tables happened to intern those names.
// The engine's artifact cache uses Fingerprint as a hash key and
// StructuralEqual to confirm, so parsing the same process text twice (two
// distinct *FSP pointers) still shares one set of cached artifacts.

// namedArc is an arc with its action resolved to a name, the
// interning-order-independent form both functions canonicalize through.
type namedArc struct {
	name string
	to   State
}

// namedArcs returns s's arcs as (action name, target) pairs sorted by
// (name, target). The per-state arc order of an FSP is (Action id, To),
// and ids depend on interning order, so the name sort is what makes two
// independently built copies comparable.
func namedArcs(f *FSP, s State, buf []namedArc) []namedArc {
	buf = buf[:0]
	for _, a := range f.adj[s] {
		buf = append(buf, namedArc{name: f.alphabet.Name(a.Act), to: a.To})
	}
	sort.Slice(buf, func(i, j int) bool {
		if buf[i].name != buf[j].name {
			return buf[i].name < buf[j].name
		}
		return buf[i].to < buf[j].to
	})
	return buf
}

// extNames returns the extension variable names of s, sorted.
func extNames(f *FSP, s State, buf []string) []string {
	buf = buf[:0]
	for _, id := range f.ext[s].IDs() {
		buf = append(buf, f.vars.Name(id))
	}
	sort.Strings(buf)
	return buf
}

// Fingerprint returns a structural hash of f: equal for structurally equal
// processes (see StructuralEqual), and invariant under the interning order
// of the alphabet and variable table. The process name is deliberately not
// hashed — renaming a process does not change what it is.
func Fingerprint(f *FSP) uint64 { return fingerprint(f, 0) }

// Fingerprint2 is a second structural hash over the same canonical walk,
// independent of Fingerprint by a seed perturbation. The persistent
// artifact store keys entries by Fingerprint and records Fingerprint2
// inside each entry as a collision guard: a different process that happens
// to collide on the 64-bit key is rejected on the second hash instead of
// yielding someone else's artifact.
func Fingerprint2(f *FSP) uint64 { return fingerprint(f, 0x9e3779b97f4a7c15) }

func fingerprint(f *FSP, seed uint64) uint64 {
	h := fnv.New64a()
	if seed != 0 {
		var s [8]byte
		for i := range s {
			s[i] = byte(seed >> (8 * i))
		}
		h.Write(s[:])
	}
	var word [8]byte
	writeInt := func(v int) {
		word[0], word[1], word[2], word[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
		word[4], word[5], word[6], word[7] = byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56)
		h.Write(word[:])
	}
	writeInt(f.NumStates())
	writeInt(int(f.start))
	var arcs []namedArc
	var exts []string
	for s := 0; s < f.NumStates(); s++ {
		arcs = namedArcs(f, State(s), arcs)
		writeInt(len(arcs))
		for _, a := range arcs {
			h.Write([]byte(a.name))
			h.Write([]byte{0})
			writeInt(int(a.to))
		}
		exts = extNames(f, State(s), exts)
		writeInt(len(exts))
		for _, nm := range exts {
			h.Write([]byte(nm))
			h.Write([]byte{0})
		}
	}
	return h.Sum64()
}

// StructuralEqual reports whether f and g are the same process up to
// interning order: same state count, same start state, and for every state
// the same set of (action name, target) arcs and the same extension
// variable names. Structurally equal processes are indistinguishable to
// every equivalence checker in this repository, so derived artifacts
// (closures, saturations, quotients, indexes) are interchangeable.
func StructuralEqual(f, g *FSP) bool {
	if f == g {
		return true
	}
	if f.NumStates() != g.NumStates() || f.start != g.start {
		return false
	}
	var fa, ga []namedArc
	var fe, ge []string
	for s := 0; s < f.NumStates(); s++ {
		fa = namedArcs(f, State(s), fa)
		ga = namedArcs(g, State(s), ga)
		if len(fa) != len(ga) {
			return false
		}
		for i := range fa {
			if fa[i] != ga[i] {
				return false
			}
		}
		fe = extNames(f, State(s), fe)
		ge = extNames(g, State(s), ge)
		if len(fe) != len(ge) {
			return false
		}
		for i := range fe {
			if fe[i] != ge[i] {
				return false
			}
		}
	}
	return true
}
