package fsp

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders f as a Graphviz digraph. The start state is drawn with a
// double circle, extensions appear in the node label, and tau arcs are
// dashed — mirroring the figure conventions of the paper.
func WriteDOT(w io.Writer, f *FSP) error {
	bw := bufio.NewWriter(w)
	name := f.name
	if name == "" {
		name = "fsp"
	}
	fmt.Fprintf(bw, "digraph %q {\n", name)
	fmt.Fprintf(bw, "  rankdir=LR;\n  node [shape=circle];\n")
	for s := 0; s < f.NumStates(); s++ {
		attrs := []string{fmt.Sprintf("label=%q", nodeLabel(f, State(s)))}
		if State(s) == f.start {
			attrs = append(attrs, "shape=doublecircle")
		}
		fmt.Fprintf(bw, "  s%d [%s];\n", s, strings.Join(attrs, ", "))
	}
	for s := 0; s < f.NumStates(); s++ {
		for _, a := range f.adj[s] {
			if a.Act == Tau {
				fmt.Fprintf(bw, "  s%d -> s%d [label=%q, style=dashed];\n", s, a.To, "τ")
			} else {
				fmt.Fprintf(bw, "  s%d -> s%d [label=%q];\n", s, a.To, f.alphabet.Name(a.Act))
			}
		}
	}
	fmt.Fprintf(bw, "}\n")
	return bw.Flush()
}

func nodeLabel(f *FSP, s State) string {
	if f.ext[s].IsEmpty() {
		return fmt.Sprintf("%d", s)
	}
	return fmt.Sprintf("%d %s", s, f.ext[s].Format(f.vars))
}

// DOTString renders f as a Graphviz digraph string.
func DOTString(f *FSP) string {
	var sb strings.Builder
	_ = WriteDOT(&sb, f)
	return sb.String()
}
