package fsp

import (
	"math/rand"
	"testing"
)

func TestDivergentBasics(t *testing.T) {
	// 0 --tau--> 1 <--tau--> 2 (cycle), 3 --a--> 0, 4 isolated,
	// 5 --tau--> 4 (no cycle), 6 --tau--> 6 (self-loop).
	b := NewBuilder("")
	b.AddStates(7)
	b.ArcName(0, TauName, 1)
	b.ArcName(1, TauName, 2)
	b.ArcName(2, TauName, 1)
	b.ArcName(3, "a", 0)
	b.ArcName(5, TauName, 4)
	b.ArcName(6, TauName, 6)
	f := b.MustBuild()
	div := Divergent(f)
	want := []bool{true, true, true, false, false, false, true}
	for s, w := range want {
		if div[s] != w {
			t.Errorf("Divergent[%d] = %v, want %v", s, div[s], w)
		}
	}
}

func TestDivergentIgnoresObservableCycles(t *testing.T) {
	b := NewBuilder("")
	b.AddStates(2)
	b.ArcName(0, "a", 1)
	b.ArcName(1, "a", 0)
	f := b.MustBuild()
	for s, d := range Divergent(f) {
		if d {
			t.Errorf("state %d divergent through observable cycle", s)
		}
	}
}

// TestDivergentEdgeCases pins the boundary behaviors: a tau self-loop at
// the root, a tau-SCC reachable only through a visible action (reachable
// states are not divergent just because a cycle is reachable — the path
// to it must be all-tau), and degenerate processes.
func TestDivergentEdgeCases(t *testing.T) {
	t.Run("tau self-loop at root", func(t *testing.T) {
		b := NewBuilder("")
		b.AddStates(2)
		b.ArcName(0, TauName, 0)
		b.ArcName(0, "a", 1)
		div := Divergent(b.MustBuild())
		if !div[0] {
			t.Error("root with a tau self-loop not divergent")
		}
		if div[1] {
			t.Error("tau-free successor marked divergent")
		}
	})
	t.Run("tau-SCC behind a visible action", func(t *testing.T) {
		// 0 --a--> 1 <--tau--> 2: the cycle is reachable from 0, but only
		// through an observable, so 0 itself cannot diverge.
		b := NewBuilder("")
		b.AddStates(3)
		b.ArcName(0, "a", 1)
		b.ArcName(1, TauName, 2)
		b.ArcName(2, TauName, 1)
		div := Divergent(b.MustBuild())
		if div[0] {
			t.Error("state before the visible action marked divergent")
		}
		if !div[1] || !div[2] {
			t.Error("tau-SCC members not divergent")
		}
	})
	t.Run("empty process", func(t *testing.T) {
		// The zero-value FSP has no states; Divergent must return an
		// empty verdict rather than fault.
		if div := Divergent(&FSP{}); len(div) != 0 {
			t.Errorf("empty process: %d verdicts, want 0", len(div))
		}
	})
	t.Run("single state, no arcs", func(t *testing.T) {
		b := NewBuilder("")
		b.AddStates(1)
		if div := Divergent(b.MustBuild()); div[0] {
			t.Error("deadlocked state marked divergent")
		}
	})
	t.Run("two-step tau chain into a cycle", func(t *testing.T) {
		// 0 --tau--> 1 --tau--> 2 --tau--> 2: the whole chain diverges —
		// divergence propagates backwards along tau, not just one step.
		b := NewBuilder("")
		b.AddStates(3)
		b.ArcName(0, TauName, 1)
		b.ArcName(1, TauName, 2)
		b.ArcName(2, TauName, 2)
		div := Divergent(b.MustBuild())
		for s := 0; s < 3; s++ {
			if !div[s] {
				t.Errorf("state %d on the tau path to the cycle not divergent", s)
			}
		}
	})
}

// TestDivergentAgainstBruteForce cross-validates the SCC-based
// implementation with a path-exploration oracle on random processes.
func TestDivergentAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(8)
		b := NewBuilder("")
		b.AddStates(n)
		arcs := rng.Intn(2 * n)
		for i := 0; i < arcs; i++ {
			act := "a"
			if rng.Intn(2) == 0 {
				act = TauName
			}
			b.ArcName(State(rng.Intn(n)), act, State(rng.Intn(n)))
		}
		f := b.MustBuild()
		got := Divergent(f)
		clo := TauClosure(f)
		for s := 0; s < n; s++ {
			// Oracle: s diverges iff some state in its closure has a tau
			// move back into a state whose closure contains it (a lasso).
			want := false
			for _, u := range clo.Of(State(s)) {
				for _, to := range f.Dest(u, Tau) {
					for _, back := range clo.Of(to) {
						if back == u {
							want = true
						}
					}
				}
			}
			if got[s] != want {
				t.Fatalf("trial %d: state %d divergent=%v, oracle=%v\n%s",
					trial, s, got[s], want, FormatString(f))
			}
		}
	}
}
