package fsp

import "testing"

func TestClassifyTableI(t *testing.T) {
	tests := []struct {
		name  string
		build func() *FSP
		is    []Model
		isNot []Model
	}{
		{
			name: "general with tau",
			build: func() *FSP {
				b := NewBuilder("")
				b.AddStates(2)
				b.ArcName(0, TauName, 1)
				b.Extend(1, "y")
				return b.MustBuild()
			},
			is:    []Model{General},
			isNot: []Model{Observable, Standard, Restricted},
		},
		{
			name: "standard NFA with empty moves",
			build: func() *FSP {
				b := NewBuilder("")
				b.AddStates(3)
				b.ArcName(0, TauName, 1)
				b.ArcName(1, "a", 2)
				b.Accept(2)
				return b.MustBuild()
			},
			is:    []Model{General, Standard},
			isNot: []Model{Observable, Restricted, Deterministic},
		},
		{
			name: "restricted observable unary",
			build: func() *FSP {
				b := NewBuilder("")
				b.AddStates(2)
				b.ArcName(0, "a", 1)
				b.Accept(0)
				b.Accept(1)
				return b.MustBuild()
			},
			is: []Model{General, Observable, Standard, Restricted,
				RestrictedObservable, RestrictedObservableUnary,
				StandardObservable, StandardObservableUnary, FiniteTree},
			isNot: []Model{Deterministic},
		},
		{
			name: "deterministic",
			build: func() *FSP {
				b := NewBuilder("")
				b.AddStates(2)
				b.ArcName(0, "a", 1)
				b.ArcName(0, "b", 0)
				b.ArcName(1, "a", 0)
				b.ArcName(1, "b", 1)
				b.Accept(1)
				return b.MustBuild()
			},
			is:    []Model{General, Observable, Standard, Deterministic, StandardObservable},
			isNot: []Model{Restricted, FiniteTree},
		},
		{
			name: "missing transition breaks determinism",
			build: func() *FSP {
				b := NewBuilder("")
				b.AddStates(2)
				b.ArcName(0, "a", 1)
				b.ArcName(0, "b", 0)
				b.ArcName(1, "a", 0)
				return b.MustBuild()
			},
			is:    []Model{Observable},
			isNot: []Model{Deterministic},
		},
		{
			name: "finite tree",
			build: func() *FSP {
				b := NewBuilder("")
				b.AddStates(4)
				b.ArcName(0, "a", 1)
				b.ArcName(0, "b", 2)
				b.ArcName(1, "c", 3)
				for s := State(0); s < 4; s++ {
					b.Accept(s)
				}
				return b.MustBuild()
			},
			is:    []Model{Restricted, FiniteTree},
			isNot: []Model{Deterministic},
		},
		{
			name: "cycle is not a tree",
			build: func() *FSP {
				b := NewBuilder("")
				b.AddStates(2)
				b.ArcName(0, "a", 1)
				b.ArcName(1, "a", 0)
				b.Accept(0)
				b.Accept(1)
				return b.MustBuild()
			},
			is:    []Model{RestrictedObservable},
			isNot: []Model{FiniteTree},
		},
		{
			name: "non-standard extension variable",
			build: func() *FSP {
				b := NewBuilder("")
				b.AddStates(1)
				b.Extend(0, "x", "y")
				return b.MustBuild()
			},
			is:    []Model{General, Observable},
			isNot: []Model{Standard, Restricted},
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			c := Classify(tc.build())
			for _, m := range tc.is {
				if !c.Is(m) {
					t.Errorf("should be %v (class %+v)", m, c)
				}
			}
			for _, m := range tc.isNot {
				if c.Is(m) {
					t.Errorf("should NOT be %v (class %+v)", m, c)
				}
			}
		})
	}
}

func TestModelsListing(t *testing.T) {
	b := NewBuilder("")
	b.AddStates(1)
	b.Accept(0)
	f := b.MustBuild()
	models := Classify(f).Models()
	if len(models) == 0 || models[0] != General {
		t.Fatalf("Models() = %v", models)
	}
	for _, m := range models {
		if m.String() == "unknown model" {
			t.Errorf("model %d has no name", m)
		}
	}
}

func TestModelString(t *testing.T) {
	if General.String() != "general" {
		t.Errorf("General.String() = %q", General.String())
	}
	if Model(999).String() != "unknown model" {
		t.Errorf("unknown model name wrong")
	}
}
