package fsp

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// genFSP is the testing/quick generator for random FSPs: it implements
// quick.Generator via a wrapper type so properties can take FSPs directly.
type genFSP struct{ f *FSP }

// Generate implements quick.Generator.
func (genFSP) Generate(rng *rand.Rand, size int) reflect.Value {
	n := 1 + rng.Intn(max(2, size))
	b := NewBuilder("q")
	b.AddStates(n)
	b.SetStart(State(rng.Intn(n)))
	names := []string{"a", "b", TauName}
	arcs := rng.Intn(3 * n)
	for i := 0; i < arcs; i++ {
		b.ArcName(State(rng.Intn(n)), names[rng.Intn(len(names))], State(rng.Intn(n)))
	}
	for s := 0; s < n; s++ {
		if rng.Intn(2) == 0 {
			b.Accept(State(s))
		}
		if rng.Intn(8) == 0 {
			b.Extend(State(s), "y")
		}
	}
	return reflect.ValueOf(genFSP{f: b.MustBuild()})
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

var quickCfg = &quick.Config{MaxCount: 150}

// Property: Format/Parse round-trips preserve the process exactly (shape,
// start, extensions, transition relation).
func TestQuickIORoundTrip(t *testing.T) {
	prop := func(g genFSP) bool {
		f := g.f
		r, err := ParseString(FormatString(f))
		if err != nil {
			return false
		}
		if r.NumStates() != f.NumStates() || r.NumTransitions() != f.NumTransitions() {
			return false
		}
		if r.Start() != f.Start() {
			return false
		}
		for s := 0; s < f.NumStates(); s++ {
			if r.Ext(State(s)).Format(r.Vars()) != f.Ext(State(s)).Format(f.Vars()) {
				return false
			}
		}
		for _, tr := range f.Transitions() {
			name := f.Alphabet().Name(tr.Act)
			act, ok := r.Alphabet().Lookup(name)
			if !ok || !r.HasArc(tr.From, act, tr.To) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// Property: the tau-closure is reflexive, transitive, and monotone under
// set expansion.
func TestQuickTauClosureIsClosure(t *testing.T) {
	prop := func(g genFSP) bool {
		f := g.f
		clo := TauClosure(f)
		for s := 0; s < f.NumStates(); s++ {
			set := clo.Of(State(s))
			// Reflexive.
			if !containsState(set, State(s)) {
				return false
			}
			// Transitive: closure of any member is within the closure.
			for _, t2 := range set {
				for _, t3 := range clo.Of(t2) {
					if !containsState(set, t3) {
						return false
					}
				}
			}
			// Sorted.
			for i := 1; i < len(set); i++ {
				if set[i-1] >= set[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// Property: saturation produces an observable FSP over Sigma ∪ {ε} with
// the same states and extensions, whose sigma-arcs agree with WeakDest.
func TestQuickSaturationAgreesWithWeakDest(t *testing.T) {
	prop := func(g genFSP) bool {
		f := g.f
		sat, _, err := Saturate(f)
		if err != nil {
			return false
		}
		if sat.NumStates() != f.NumStates() {
			return false
		}
		if !Classify(sat).Observable {
			return false
		}
		clo := TauClosure(f)
		for s := 0; s < f.NumStates(); s++ {
			if sat.Ext(State(s)) != f.Ext(State(s)) {
				return false
			}
			for _, sigma := range f.Alphabet().Observable() {
				want := WeakDest(f, clo, State(s), sigma)
				got := sat.Dest(State(s), sigma)
				if len(want) != len(got) {
					return false
				}
				for i := range want {
					if want[i] != got[i] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// Property: Renumber by a random permutation preserves the classifier
// outcome and transition count; renumbering twice by inverse permutations
// is the identity.
func TestQuickRenumberInvariance(t *testing.T) {
	prop := func(g genFSP, seed int64) bool {
		f := g.f
		rng := rand.New(rand.NewSource(seed))
		perm := rng.Perm(f.NumStates())
		p := make([]State, len(perm))
		inv := make([]State, len(perm))
		for i, v := range perm {
			p[i] = State(v)
			inv[v] = State(i)
		}
		r, err := Renumber(f, p)
		if err != nil {
			return false
		}
		if Classify(r) != Classify(f) {
			return false
		}
		if r.NumTransitions() != f.NumTransitions() {
			return false
		}
		back, err := Renumber(r, inv)
		if err != nil {
			return false
		}
		return FormatString(back) == FormatString(f)
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// Property: DisjointUnion preserves both operands' local structure.
func TestQuickDisjointUnion(t *testing.T) {
	prop := func(a, b genFSP) bool {
		u, off, err := DisjointUnion(a.f, b.f)
		if err != nil {
			return false
		}
		if u.NumStates() != a.f.NumStates()+b.f.NumStates() {
			return false
		}
		if u.NumTransitions() != a.f.NumTransitions()+b.f.NumTransitions() {
			return false
		}
		// No cross arcs.
		for _, tr := range u.Transitions() {
			aSide := tr.From < off
			bSide := tr.To < off
			if aSide != bSide {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// Property: VarSet operations behave as sets.
func TestQuickVarSetAlgebra(t *testing.T) {
	prop := func(xs, ys []uint8) bool {
		var a, b VarSet
		for _, x := range xs {
			a = a.With(VarID(x % MaxVars))
		}
		for _, y := range ys {
			b = b.Union(EmptyVars.With(VarID(y % MaxVars)))
		}
		un := a.Union(b)
		for _, id := range a.IDs() {
			if !un.Has(id) {
				return false
			}
		}
		for _, id := range b.IDs() {
			if !un.Has(id) {
				return false
			}
		}
		if un.Len() > a.Len()+b.Len() {
			return false
		}
		// Without removes exactly one element.
		for _, id := range un.IDs() {
			w := un.Without(id)
			if w.Has(id) || w.Len() != un.Len()-1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

func containsState(set []State, s State) bool {
	for _, x := range set {
		if x == s {
			return true
		}
	}
	return false
}
