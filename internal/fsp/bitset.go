package fsp

import "math/bits"

// bitRow is a word-packed set of states over a fixed universe [0, n). It is
// the storage unit of the bitset tau-closure: one row per state, 64 states
// per word, so unions become word-wide ORs and enumeration a popcount scan.
type bitRow []uint64

// newBitRow returns an empty row over a universe of n states.
func newBitRow(n int) bitRow { return make(bitRow, (n+63)/64) }

// set adds s to the row.
func (r bitRow) set(s State) { r[uint(s)>>6] |= 1 << (uint(s) & 63) }

// has reports membership of s.
func (r bitRow) has(s State) bool { return r[uint(s)>>6]&(1<<(uint(s)&63)) != 0 }

// or unions o into r. The rows must be over the same universe.
func (r bitRow) or(o bitRow) {
	for i, w := range o {
		r[i] |= w
	}
}

// clear empties the row in place.
func (r bitRow) clear() {
	for i := range r {
		r[i] = 0
	}
}

// count returns the cardinality of the row.
func (r bitRow) count() int {
	c := 0
	for _, w := range r {
		c += bits.OnesCount64(w)
	}
	return c
}

// appendStates appends the members of r to dst in increasing order — bit
// order is state order, so no sort is needed — and returns the extended
// slice.
func (r bitRow) appendStates(dst []State) []State {
	for i, w := range r {
		base := State(i << 6)
		for w != 0 {
			dst = append(dst, base+State(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
	return dst
}

// states returns the members of r in increasing order.
func (r bitRow) states() []State {
	return r.appendStates(make([]State, 0, r.count()))
}
