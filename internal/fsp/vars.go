package fsp

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// VarID identifies a variable (an element of the set V of Definition 2.1.1).
type VarID int32

// MaxVars bounds the number of distinct variables per VarTable. Extensions
// are stored as 64-bit sets; the paper's models use V = {x}, so the bound is
// generous in practice.
const MaxVars = 64

// StandardVar is the single variable of the standard model, in which a state
// q is accepting iff E(q) = {x}.
const StandardVar = "x"

// VarTable interns variable names. Like Alphabet it is append-only.
type VarTable struct {
	names []string
	index map[string]VarID
}

// NewVarTable returns a table containing the given variables in order.
func NewVarTable(vars ...string) (*VarTable, error) {
	t := &VarTable{index: make(map[string]VarID, len(vars))}
	for _, name := range vars {
		if _, err := t.Intern(name); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// MustVarTable is NewVarTable for statically known inputs; it panics on
// error and is intended for package-level construction of fixtures.
func MustVarTable(vars ...string) *VarTable {
	t, err := NewVarTable(vars...)
	if err != nil {
		panic(err)
	}
	return t
}

// Intern returns the VarID for name, adding it if absent.
func (t *VarTable) Intern(name string) (VarID, error) {
	if id, ok := t.index[name]; ok {
		return id, nil
	}
	if len(t.names) >= MaxVars {
		return 0, fmt.Errorf("variable table full: %d variables supported", MaxVars)
	}
	id := VarID(len(t.names))
	t.names = append(t.names, name)
	t.index[name] = id
	return id, nil
}

// Lookup returns the VarID for name and whether it is present.
func (t *VarTable) Lookup(name string) (VarID, bool) {
	id, ok := t.index[name]
	return id, ok
}

// Name returns the textual name of id.
func (t *VarTable) Name(id VarID) string { return t.names[id] }

// Len reports the number of interned variables.
func (t *VarTable) Len() int { return len(t.names) }

// Clone returns an independent copy of the table.
func (t *VarTable) Clone() *VarTable {
	c := &VarTable{
		names: make([]string, len(t.names)),
		index: make(map[string]VarID, len(t.index)),
	}
	copy(c.names, t.names)
	for k, v := range t.index {
		c.index[k] = v
	}
	return c
}

// Equal reports whether two tables intern the same names to the same IDs.
func (t *VarTable) Equal(u *VarTable) bool {
	if len(t.names) != len(u.names) {
		return false
	}
	for i, n := range t.names {
		if u.names[i] != n {
			return false
		}
	}
	return true
}

// VarSet is a set of variables, the extension E(q) of a state. The zero
// value is the empty set. VarSets are comparable with ==.
type VarSet uint64

// EmptyVars is the empty extension.
const EmptyVars VarSet = 0

// Has reports whether id is in the set.
func (s VarSet) Has(id VarID) bool { return s&(1<<uint(id)) != 0 }

// With returns the set extended with id.
func (s VarSet) With(id VarID) VarSet { return s | 1<<uint(id) }

// Without returns the set with id removed.
func (s VarSet) Without(id VarID) VarSet { return s &^ (1 << uint(id)) }

// Union returns the union of the two sets.
func (s VarSet) Union(u VarSet) VarSet { return s | u }

// IsEmpty reports whether the set is empty.
func (s VarSet) IsEmpty() bool { return s == 0 }

// Len reports the number of variables in the set.
func (s VarSet) Len() int { return bits.OnesCount64(uint64(s)) }

// IDs returns the members in increasing order.
func (s VarSet) IDs() []VarID {
	ids := make([]VarID, 0, s.Len())
	for v := s; v != 0; {
		i := bits.TrailingZeros64(uint64(v))
		ids = append(ids, VarID(i))
		v &^= 1 << uint(i)
	}
	return ids
}

// Format renders the set as "{a,b}" using names from t, sorted by name.
func (s VarSet) Format(t *VarTable) string {
	names := make([]string, 0, s.Len())
	for _, id := range s.IDs() {
		names = append(names, t.Name(id))
	}
	sort.Strings(names)
	return "{" + strings.Join(names, ",") + "}"
}
