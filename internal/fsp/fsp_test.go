package fsp

import (
	"strings"
	"testing"
)

// buildAB returns the process  0 --a--> 1 --b--> 2(x)  with a tau detour
// 0 --tau--> 3 --b--> 2.
func buildAB(t *testing.T) *FSP {
	t.Helper()
	b := NewBuilder("ab")
	b.AddStates(4)
	b.SetStart(0)
	b.ArcName(0, "a", 1)
	b.ArcName(1, "b", 2)
	b.ArcName(0, TauName, 3)
	b.ArcName(3, "b", 2)
	b.Accept(2)
	f, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return f
}

func TestBuilderBasics(t *testing.T) {
	f := buildAB(t)
	if got, want := f.NumStates(), 4; got != want {
		t.Errorf("NumStates = %d, want %d", got, want)
	}
	if got, want := f.NumTransitions(), 4; got != want {
		t.Errorf("NumTransitions = %d, want %d", got, want)
	}
	if f.Start() != 0 {
		t.Errorf("Start = %d, want 0", f.Start())
	}
	if !f.Accepting(2) {
		t.Errorf("state 2 should be accepting")
	}
	if f.Accepting(0) {
		t.Errorf("state 0 should not be accepting")
	}
	a, ok := f.Alphabet().Lookup("a")
	if !ok {
		t.Fatalf("action a missing")
	}
	if got := f.Dest(0, a); len(got) != 1 || got[0] != 1 {
		t.Errorf("Dest(0,a) = %v, want [1]", got)
	}
	if got := f.Dest(0, Tau); len(got) != 1 || got[0] != 3 {
		t.Errorf("Dest(0,tau) = %v, want [3]", got)
	}
	if !f.HasArc(0, a, 1) || f.HasArc(1, a, 0) {
		t.Errorf("HasArc answers wrong")
	}
}

func TestBuilderDeduplicatesArcs(t *testing.T) {
	b := NewBuilder("")
	b.AddStates(2)
	b.ArcName(0, "a", 1)
	b.ArcName(0, "a", 1)
	b.ArcName(0, "a", 1)
	f, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if f.NumTransitions() != 1 {
		t.Errorf("NumTransitions = %d, want 1 (Delta is a set)", f.NumTransitions())
	}
}

func TestBuilderErrors(t *testing.T) {
	t.Run("no states", func(t *testing.T) {
		if _, err := NewBuilder("").Build(); err == nil {
			t.Error("Build of empty process should fail")
		}
	})
	t.Run("bad state", func(t *testing.T) {
		b := NewBuilder("")
		b.AddState()
		b.ArcName(0, "a", 5)
		if _, err := b.Build(); err == nil {
			t.Error("arc to missing state should fail")
		}
	})
	t.Run("bad action index", func(t *testing.T) {
		b := NewBuilder("")
		b.AddStates(2)
		b.Arc(0, Action(99), 1)
		if _, err := b.Build(); err == nil {
			t.Error("unknown action index should fail")
		}
	})
}

func TestInitials(t *testing.T) {
	b := NewBuilder("")
	b.AddStates(3)
	b.ArcName(0, "b", 1)
	b.ArcName(0, "a", 2)
	b.ArcName(0, "a", 1)
	b.ArcName(0, TauName, 1)
	f := b.MustBuild()
	got := f.Initials(0)
	names := make([]string, len(got))
	for i, a := range got {
		names[i] = f.Alphabet().Name(a)
	}
	// Interning order: b then a, so indices are b=1? No: "b" interned first.
	if len(names) != 2 {
		t.Fatalf("Initials = %v, want two actions", names)
	}
	joined := strings.Join(names, ",")
	if joined != "b,a" && joined != "a,b" {
		t.Errorf("Initials = %v", names)
	}
}

func TestTransitionsSorted(t *testing.T) {
	f := buildAB(t)
	ts := f.Transitions()
	if len(ts) != 4 {
		t.Fatalf("Transitions len = %d", len(ts))
	}
	for i := 1; i < len(ts); i++ {
		a, b := ts[i-1], ts[i]
		if a.From > b.From {
			t.Errorf("transitions not sorted by from: %v before %v", a, b)
		}
	}
}

func TestReachable(t *testing.T) {
	b := NewBuilder("")
	b.AddStates(4)
	b.ArcName(0, "a", 1)
	b.ArcName(2, "a", 3) // 2,3 unreachable from start 0
	f := b.MustBuild()
	r := f.Reachable()
	want := []bool{true, true, false, false}
	for i := range want {
		if r[i] != want[i] {
			t.Errorf("Reachable[%d] = %v, want %v", i, r[i], want[i])
		}
	}
}

func TestAlphabet(t *testing.T) {
	a := NewAlphabet("x", "y")
	if a.Len() != 3 || a.NumObservable() != 2 {
		t.Fatalf("sizes wrong: %d/%d", a.Len(), a.NumObservable())
	}
	if a.Name(Tau) != TauName {
		t.Errorf("action 0 is %q, want tau", a.Name(Tau))
	}
	x, ok := a.Lookup("x")
	if !ok || a.Name(x) != "x" {
		t.Errorf("lookup x failed")
	}
	if a.Intern("x") != x {
		t.Errorf("re-interning changed index")
	}
	c := a.Clone()
	if !a.Equal(c) {
		t.Errorf("clone not equal")
	}
	c.Intern("z")
	if a.Equal(c) {
		t.Errorf("grown clone still equal")
	}
	if _, ok := a.Lookup("z"); ok {
		t.Errorf("clone mutation leaked into original")
	}
}

func TestVarSet(t *testing.T) {
	tbl := MustVarTable("x", "y")
	x, _ := tbl.Lookup("x")
	y, _ := tbl.Lookup("y")
	s := EmptyVars.With(x).With(y)
	if !s.Has(x) || !s.Has(y) || s.Len() != 2 {
		t.Fatalf("set membership wrong: %v", s)
	}
	if got := s.Without(x); got.Has(x) || !got.Has(y) {
		t.Errorf("Without wrong: %v", got)
	}
	if got := s.Format(tbl); got != "{x,y}" {
		t.Errorf("Format = %q", got)
	}
	if ids := s.IDs(); len(ids) != 2 || ids[0] != x || ids[1] != y {
		t.Errorf("IDs = %v", ids)
	}
}

func TestVarTableLimit(t *testing.T) {
	tbl := &VarTable{index: map[string]VarID{}}
	for i := 0; i < MaxVars; i++ {
		if _, err := tbl.Intern(strings.Repeat("v", i+1)); err != nil {
			t.Fatalf("intern %d: %v", i, err)
		}
	}
	if _, err := tbl.Intern("overflow"); err == nil {
		t.Error("expected overflow error")
	}
}

func TestDisjointUnion(t *testing.T) {
	f := buildAB(t)
	g := buildAB(t)
	u, off, err := DisjointUnion(f, g)
	if err != nil {
		t.Fatalf("DisjointUnion: %v", err)
	}
	if u.NumStates() != 8 || off != 4 {
		t.Fatalf("union shape wrong: states=%d off=%d", u.NumStates(), off)
	}
	if u.NumTransitions() != 8 {
		t.Errorf("union transitions = %d, want 8", u.NumTransitions())
	}
	a, _ := u.Alphabet().Lookup("a")
	if got := u.Dest(off, a); len(got) != 1 || got[0] != off+1 {
		t.Errorf("g-copy arcs wrong: %v", got)
	}
	if !u.Accepting(2) || !u.Accepting(off+2) {
		t.Errorf("extensions not copied")
	}
}

func TestRenumber(t *testing.T) {
	f := buildAB(t)
	perm := []State{3, 2, 1, 0}
	g, err := Renumber(f, perm)
	if err != nil {
		t.Fatalf("Renumber: %v", err)
	}
	if g.Start() != 3 {
		t.Errorf("start = %d, want 3", g.Start())
	}
	a, _ := g.Alphabet().Lookup("a")
	if got := g.Dest(3, a); len(got) != 1 || got[0] != 2 {
		t.Errorf("renumbered arc wrong: %v", got)
	}
	if !g.Accepting(1) {
		t.Errorf("renumbered extension wrong")
	}
	if _, err := Renumber(f, []State{0, 0, 1, 2}); err == nil {
		t.Error("non-permutation accepted")
	}
	if _, err := Renumber(f, []State{0}); err == nil {
		t.Error("short permutation accepted")
	}
}
