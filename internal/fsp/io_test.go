package fsp

import (
	"strings"
	"testing"
)

const sampleText = `
# a small process
fsp demo
alphabet a b
vars x
states 4
start 0
ext 2 x
arc 0 a 1
arc 1 b 2
arc 0 tau 3
arc 3 b 2
`

func TestParse(t *testing.T) {
	f, err := ParseString(sampleText)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if f.Name() != "demo" {
		t.Errorf("name = %q", f.Name())
	}
	if f.NumStates() != 4 || f.NumTransitions() != 4 {
		t.Errorf("shape = %d/%d", f.NumStates(), f.NumTransitions())
	}
	if !f.Accepting(2) {
		t.Errorf("ext lost")
	}
	if got := f.Dest(0, Tau); len(got) != 1 || got[0] != 3 {
		t.Errorf("tau arc lost: %v", got)
	}
}

func TestRoundTrip(t *testing.T) {
	f, err := ParseString(sampleText)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	text := FormatString(f)
	g, err := ParseString(text)
	if err != nil {
		t.Fatalf("reparse: %v\ntext:\n%s", err, text)
	}
	if FormatString(g) != text {
		t.Errorf("format not canonical:\n%s\nvs\n%s", text, FormatString(g))
	}
	if g.NumStates() != f.NumStates() || g.NumTransitions() != f.NumTransitions() {
		t.Errorf("round trip changed shape")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, text string
	}{
		{"empty", ""},
		{"no states", "fsp x\nalphabet a\n"},
		{"arc before states", "arc 0 a 1\n"},
		{"bad state count", "states zero\n"},
		{"zero states", "states 0\n"},
		{"start out of range", "states 2\nstart 5\n"},
		{"arc out of range", "states 2\narc 0 a 7\n"},
		{"arc arity", "states 2\narc 0 a\n"},
		{"duplicate states", "states 2\nstates 2\n"},
		{"alphabet after states", "states 2\nalphabet a\n"},
		{"tau in alphabet", "alphabet tau\nstates 1\n"},
		{"unknown directive", "states 1\nbogus 1\n"},
		{"ext missing state", "states 1\next\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseString(tc.text); err == nil {
				t.Errorf("Parse(%q) succeeded, want error", tc.text)
			}
		})
	}
}

func TestParseDefaults(t *testing.T) {
	f, err := ParseString("states 2\narc 0 a 1\n")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if f.Start() != 0 {
		t.Errorf("default start = %d", f.Start())
	}
	if _, ok := f.Alphabet().Lookup("a"); !ok {
		t.Errorf("implicit alphabet interning failed")
	}
}

func TestDOT(t *testing.T) {
	f, err := ParseString(sampleText)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	dot := DOTString(f)
	for _, want := range []string{"digraph", "doublecircle", "style=dashed", "s0 -> s1"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
}
