package fsp

// Model enumerates the FSP model hierarchy of Fig. 1a / Table I.
type Model int

// The models of Table I, from most general to most specialized.
const (
	General Model = iota + 1
	Observable
	Standard
	Deterministic
	Restricted
	RestrictedObservable
	RestrictedObservableUnary
	StandardObservable
	StandardObservableUnary
	FiniteTree
)

var modelNames = map[Model]string{
	General:                   "general",
	Observable:                "observable",
	Standard:                  "standard",
	Deterministic:             "deterministic",
	Restricted:                "restricted",
	RestrictedObservable:      "restricted observable",
	RestrictedObservableUnary: "r.o.u.",
	StandardObservable:        "standard observable",
	StandardObservableUnary:   "s.o.u.",
	FiniteTree:                "finite tree",
}

func (m Model) String() string {
	if s, ok := modelNames[m]; ok {
		return s
	}
	return "unknown model"
}

// Class records which structural predicates an FSP satisfies. Membership in
// each Table I model is derived from these predicates by Class.Is.
type Class struct {
	// Observable: no tau transitions.
	Observable bool
	// Standard: every extension is either empty or exactly {x}, and the
	// variable table carries no variable other than x. A standard FSP is a
	// classical NFA with empty moves.
	Standard bool
	// Restricted: standard with every state accepting (E(p) = {x} for all p).
	Restricted bool
	// Deterministic: observable with exactly one transition per state per
	// observable action.
	Deterministic bool
	// Unary: the observable alphabet has exactly one action.
	Unary bool
	// Tree: the underlying directed graph is a tree rooted at the start
	// state (every state reachable, each non-root with exactly one incoming
	// transition, root with none).
	Tree bool
}

// Classify computes the structural predicates of f in one pass over Delta.
func Classify(f *FSP) Class {
	var c Class
	c.Observable = true
	c.Standard = true
	c.Restricted = true
	c.Unary = f.alphabet.NumObservable() == 1

	xID, hasX := f.vars.Lookup(StandardVar)
	acceptSet := EmptyVars
	if hasX {
		acceptSet = EmptyVars.With(xID)
	}
	for s := 0; s < f.NumStates(); s++ {
		e := f.ext[State(s)]
		if e != EmptyVars && e != acceptSet {
			c.Standard = false
			c.Restricted = false
		}
		if e != acceptSet {
			c.Restricted = false
		}
		for _, a := range f.adj[s] {
			if a.Act == Tau {
				c.Observable = false
			}
		}
	}
	if !hasX && f.NumStates() > 0 {
		// Without the variable x no state can be accepting; the process is
		// standard (all extensions empty) but not restricted.
		c.Restricted = false
	}

	c.Deterministic = c.Observable && isDeterministic(f)
	c.Tree = isTree(f)
	return c
}

// isDeterministic reports whether every state has exactly one transition for
// each observable symbol, per the paper's deterministic model.
func isDeterministic(f *FSP) bool {
	numObs := f.alphabet.NumObservable()
	for s := 0; s < f.NumStates(); s++ {
		arcs := f.adj[s]
		if len(arcs) != numObs {
			return false
		}
		for i, a := range arcs {
			// Arcs are sorted by action; exactly one per observable symbol
			// means actions 1..numObs each appear once.
			if a.Act != Action(i+1) {
				return false
			}
		}
	}
	return true
}

// isTree reports whether the underlying digraph is a tree rooted at start.
func isTree(f *FSP) bool {
	indeg := make([]int, f.NumStates())
	for s := 0; s < f.NumStates(); s++ {
		for _, a := range f.adj[s] {
			indeg[a.To]++
		}
	}
	if indeg[f.start] != 0 {
		return false
	}
	for s, d := range indeg {
		if State(s) != f.start && d != 1 {
			return false
		}
	}
	for _, ok := range f.Reachable() {
		if !ok {
			return false
		}
	}
	return true
}

// Is reports whether the class satisfies model m.
func (c Class) Is(m Model) bool {
	switch m {
	case General:
		return true
	case Observable:
		return c.Observable
	case Standard:
		return c.Standard
	case Deterministic:
		return c.Deterministic
	case Restricted:
		return c.Restricted
	case RestrictedObservable:
		return c.Restricted && c.Observable
	case RestrictedObservableUnary:
		return c.Restricted && c.Observable && c.Unary
	case StandardObservable:
		return c.Standard && c.Observable
	case StandardObservableUnary:
		return c.Standard && c.Observable && c.Unary
	case FiniteTree:
		return c.Restricted && c.Tree
	default:
		return false
	}
}

// Models returns every Table I model that the class belongs to, most general
// first.
func (c Class) Models() []Model {
	all := []Model{
		General, Observable, Standard, Deterministic, Restricted,
		RestrictedObservable, RestrictedObservableUnary,
		StandardObservable, StandardObservableUnary, FiniteTree,
	}
	var out []Model
	for _, m := range all {
		if c.Is(m) {
			out = append(out, m)
		}
	}
	return out
}
