package fsp

import (
	"math/rand"
	"strings"
	"testing"
)

func restrictedFixture(t *testing.T) *FSP {
	t.Helper()
	b := NewBuilder("fix")
	b.AddStates(3)
	b.ArcName(0, "a", 1)
	b.ArcName(0, TauName, 2)
	b.ArcName(2, "b", 1)
	for s := State(0); s < 3; s++ {
		b.Accept(s)
	}
	return b.MustBuild()
}

func TestAUTRoundTrip(t *testing.T) {
	f := restrictedFixture(t)
	text, err := AUTString(f)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(text, "des (0, 3, 3)") {
		t.Errorf("header wrong:\n%s", text)
	}
	if !strings.Contains(text, `"i"`) {
		t.Errorf("tau should render as \"i\":\n%s", text)
	}
	back, err := ParseAUTString(text)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if back.NumStates() != f.NumStates() || back.NumTransitions() != f.NumTransitions() {
		t.Errorf("round trip changed shape: %d/%d vs %d/%d",
			back.NumStates(), back.NumTransitions(), f.NumStates(), f.NumTransitions())
	}
	if got := back.Dest(0, Tau); len(got) != 1 || got[0] != 2 {
		t.Errorf("tau arc lost: %v", got)
	}
	if !Classify(back).Restricted {
		t.Errorf("parsed .aut must be restricted")
	}
}

func TestAUTRejectsNonRestricted(t *testing.T) {
	b := NewBuilder("std")
	b.AddStates(2)
	b.ArcName(0, "a", 1)
	b.Accept(1)
	if _, err := AUTString(b.MustBuild()); err == nil {
		t.Error("non-restricted process accepted by .aut writer")
	}
}

func TestAUTParseVariants(t *testing.T) {
	// mCRL2-style tau label, unquoted labels, extra whitespace.
	src := "des (1, 3, 3)\n(0, \"hello world\", 1)\n( 1 , tau , 2 )\n(2, a, 0)\n"
	f, err := ParseAUTString(src)
	if err != nil {
		t.Fatal(err)
	}
	if f.Start() != 1 {
		t.Errorf("start = %d", f.Start())
	}
	if got := f.Dest(1, Tau); len(got) != 1 || got[0] != 2 {
		t.Errorf("tau alias not mapped: %v", got)
	}
	if _, ok := f.Alphabet().Lookup("hello world"); !ok {
		t.Errorf("multi-word label lost")
	}
}

func TestAUTParseErrors(t *testing.T) {
	cases := []string{
		"",
		"nonsense\n",
		"des (0, 0)\n",
		"des (5, 0, 2)\n",
		"des (0, 0, 0)\n",
		"des (0, 1, 2)\n(0, \"a\")\n",
		"des (0, 1, 2)\n(0, \"a\", 9)\n",
		"des (0, 1, 2)\n(x, \"a\", 1)\n",
		"des (0, 1, 2)\n0, \"a\", 1\n",
		"des (0, 1, 2)\n(0, , 1)\n",
	}
	for _, src := range cases {
		if _, err := ParseAUTString(src); err == nil {
			t.Errorf("ParseAUT(%q) succeeded, want error", src)
		}
	}
}

func TestAUTRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(8)
		b := NewBuilder("r")
		b.AddStates(n)
		arcs := rng.Intn(3 * n)
		names := []string{"a", "b", TauName}
		for i := 0; i < arcs; i++ {
			b.ArcName(State(rng.Intn(n)), names[rng.Intn(3)], State(rng.Intn(n)))
		}
		for s := 0; s < n; s++ {
			b.Accept(State(s))
		}
		f := b.MustBuild()
		text, err := AUTString(f)
		if err != nil {
			t.Fatal(err)
		}
		back, err := ParseAUTString(text)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, text)
		}
		if back.NumTransitions() != f.NumTransitions() || back.Start() != f.Start() {
			t.Fatalf("trial %d: round trip changed the LTS", trial)
		}
		for _, tr := range f.Transitions() {
			name := f.Alphabet().Name(tr.Act)
			act, ok := back.Alphabet().Lookup(name)
			if !ok || !back.HasArc(tr.From, act, tr.To) {
				t.Fatalf("trial %d: transition %v lost", trial, tr)
			}
		}
	}
}
