package fsp

import (
	"fmt"
	"math/bits"
)

// EpsilonName is the action name used for the empty-string relation ==eps=>
// when an FSP is saturated (Theorem 4.1a). It is chosen to be outside any
// reasonable user alphabet; Saturate fails if the name is already taken.
const EpsilonName = "ε"

// Closure holds the reflexive-transitive tau-closure of an FSP: for each
// state p, the set of states reachable from p by zero or more tau
// transitions (p ==eps=> p' in the notation of Section 2.1).
//
// Storage is dual: closure sets are word-packed bitset rows (one row per
// state, bit t of row p set iff p ==eps=> t), with sorted slices
// materialized once for the Of accessor. All set algebra — ExpandSet,
// WeakDest, the Saturate weak-derivative construction — runs on the rows,
// where union is a word-wide OR and enumeration a popcount scan, replacing
// the former map[State]struct{}-and-sort churn with cache-friendly linear
// passes. A state with no tau arcs into other states has the trivial
// closure {s}; its row stays nil (meaning "singleton") so tau-sparse
// processes pay O(tau-states · n/64) words, not a dense n×n matrix. See
// the DESIGN note on TauClosure below.
type Closure struct {
	n    int
	rows []bitRow
	sets [][]State
}

// orInto unions the closure of s into acc, treating a nil row as the
// singleton {s}.
func (c Closure) orInto(acc bitRow, s State) {
	if row := c.rows[s]; row != nil {
		acc.or(row)
	} else {
		acc.set(s)
	}
}

// TauClosure computes the tau-closure by a BFS from every state over the
// tau-labelled subgraph. This replaces the paper's matrix-multiplication
// transitive closure (O(n^2.376)) with an O(n(n+m)) sparse traversal; see
// DESIGN.md section 4.
//
// DESIGN (bitset closure): each non-trivial closure set is a bitRow over
// the state universe, all rows carved from a single backing slab sized by
// the number of tau-source states only — states without tau arcs into
// other states keep a nil row standing for the singleton {s} (and share
// one identity slice for Of), so a tau-free NFA costs O(n), not O(n²/64)
// words. The BFS marks visited states directly in the row (bit order is
// state order, so the materialized slice needs no sort), and when it
// reaches a state whose row is already complete it ORs that row in
// wholesale instead of re-walking the subgraph — closure(t) is
// transitively closed, so its members need no further expansion.
// Downstream consumers build weak derivatives by OR-ing rows: O(n/64)
// words per union instead of O(n log n) sorting.
func TauClosure(f *FSP) Closure {
	n := f.NumStates()
	tauAdj := make([][]State, n)
	numReal := 0
	for s := 0; s < n; s++ {
		for _, a := range f.adj[s] {
			// Tau self-loops never change any closure; dropping them here
			// both shrinks the slab and keeps the BFS loop-free.
			if a.Act == Tau && a.To != State(s) {
				tauAdj[s] = append(tauAdj[s], a.To)
			}
		}
		if len(tauAdj[s]) > 0 {
			numReal++
		}
	}
	// selfs is the shared identity: sets[s] for a singleton state aliases
	// selfs[s : s+1].
	selfs := make([]State, n)
	for s := range selfs {
		selfs[s] = State(s)
	}
	words := (n + 63) / 64
	slab := make([]uint64, numReal*words)
	rows := make([]bitRow, n)
	sets := make([][]State, n)
	done := make([]bool, n)
	for s := 0; s < n; s++ {
		if len(tauAdj[s]) == 0 {
			done[s] = true
			// Full three-index slice: no spare capacity, so a caller
			// appending to Of(s) cannot clobber its neighbours' sets.
			sets[s] = selfs[s : s+1 : s+1]
		}
	}
	queue := make([]State, 0, n)
	next := 0
	for s := 0; s < n; s++ {
		if done[s] {
			continue
		}
		row := bitRow(slab[next*words : (next+1)*words])
		next++
		rows[s] = row
		queue = queue[:0]
		queue = append(queue, State(s))
		row.set(State(s))
		for i := 0; i < len(queue); i++ {
			for _, t := range tauAdj[queue[i]] {
				if done[t] {
					if rows[t] != nil {
						row.or(rows[t])
					} else {
						row.set(t)
					}
					continue
				}
				if !row.has(t) {
					row.set(t)
					queue = append(queue, t)
				}
			}
		}
		done[s] = true
		sets[s] = row.states()
	}
	return Closure{n: n, rows: rows, sets: sets}
}

// Of returns the tau-closure of s in increasing state order. The slice is
// shared; callers must not modify it.
func (c Closure) Of(s State) []State { return c.sets[s] }

// NumStates returns the size of the state universe the closure is over.
func (c Closure) NumStates() int { return c.n }

// ClosureFromSets rebuilds a Closure from per-state closure sets, the
// inverse of reading every Of(s) — the persistent artifact store
// (internal/store) round-trips closures through it. Each set must be
// sorted, in range, and contain its own state (the closure is reflexive);
// a violation is reported as an error rather than trusted, since the input
// may be a decoded disk artifact.
func ClosureFromSets(n int, sets [][]State) (Closure, error) {
	if n < 0 || len(sets) != n {
		return Closure{}, fmt.Errorf("fsp: closure wants %d sets, got %d", n, len(sets))
	}
	numReal := 0
	for s, set := range sets {
		prev := State(-1)
		self := false
		for _, t := range set {
			if t < 0 || int(t) >= n {
				return Closure{}, fmt.Errorf("fsp: closure of %d contains out-of-range state %d", s, t)
			}
			if t <= prev {
				return Closure{}, fmt.Errorf("fsp: closure of %d is not sorted and deduplicated", s)
			}
			if int(t) == s {
				self = true
			}
			prev = t
		}
		if !self {
			return Closure{}, fmt.Errorf("fsp: closure of %d misses its own state", s)
		}
		if len(set) > 1 {
			numReal++
		}
	}
	selfs := make([]State, n)
	for s := range selfs {
		selfs[s] = State(s)
	}
	words := (n + 63) / 64
	slab := make([]uint64, numReal*words)
	rows := make([]bitRow, n)
	out := make([][]State, n)
	next := 0
	for s, set := range sets {
		if len(set) <= 1 {
			out[s] = selfs[s : s+1 : s+1]
			continue
		}
		row := bitRow(slab[next*words : (next+1)*words])
		next++
		for _, t := range set {
			row.set(t)
		}
		rows[s] = row
		out[s] = row.states()
	}
	return Closure{n: n, rows: rows, sets: out}, nil
}

// RowWords returns the word width of a word-packed state-subset row over
// this closure's state universe (bit t of a row stands for state t, 64
// states per word). Callers building on-the-fly subset constructions —
// the determinized spec side of internal/otf's game — size their rows
// with it and fill them through OrClosureInto.
func (c Closure) RowWords() int { return (c.n + 63) / 64 }

// OrClosureInto ORs the tau-closure of s into the word-packed subset row
// acc (RowWords words). It exposes the closure's internal bitset rows to
// subset constructions directly: a weak-derivative subset is built by
// OR-ing closure rows, one word-wide OR per member, never materializing
// intermediate state slices.
func (c Closure) OrClosureInto(acc []uint64, s State) { c.orInto(bitRow(acc), s) }

// ExpandSet returns the union of the tau-closures of the given states,
// sorted and deduplicated.
func (c Closure) ExpandSet(set []State) []State {
	acc := newBitRow(c.n)
	for _, s := range set {
		c.orInto(acc, s)
	}
	return acc.states()
}

// succInto ORs into acc the closures of the sigma-successors of p:
// acc |= ⋃ {closure(q) : p --sigma--> q}.
func (c Closure) succInto(f *FSP, p State, sigma Action, acc bitRow) {
	arcs := f.adj[p]
	lo, hi := f.destSpan(p, sigma)
	for k := lo; k < hi; k++ {
		c.orInto(acc, arcs[k].To)
	}
}

// weakDestRow ORs into acc the closure rows of all sigma-successors of the
// members of src: acc |= ⋃ {closure(q) : p ∈ src, p --sigma--> q}. When src
// is a closure row this is exactly the weak derivative set of Section 2.1.
func (c Closure) weakDestRow(f *FSP, src bitRow, sigma Action, acc bitRow) {
	for i, w := range src {
		base := State(i << 6)
		for w != 0 {
			p := base + State(bits.TrailingZeros64(w))
			w &= w - 1
			c.succInto(f, p, sigma, acc)
		}
	}
}

// weakDestFrom is weakDestRow for a single source state, transparently
// handling the nil-row singleton representation.
func (c Closure) weakDestFrom(f *FSP, from State, sigma Action, acc bitRow) {
	if row := c.rows[from]; row != nil {
		c.weakDestRow(f, row, sigma, acc)
		return
	}
	c.succInto(f, from, sigma, acc)
}

// Saturate builds the observable FSP P-hat of Theorem 4.1(a): it has the
// same states and extensions as f, its alphabet is Sigma plus a fresh
// epsilon action, and its transitions are the weak derivatives
//
//	p --sigma--> q  in P-hat   iff   p ==sigma=> q in f   (sigma in Sigma)
//	p --eps-->   q  in P-hat   iff   p ==eps=>   q in f   (tau-closure)
//
// Strong equivalence on P-hat coincides with observational equivalence on f
// (Propositions 2.2.1 and 2.2.2). The epsilon Action used is returned so
// callers can distinguish it from real alphabet members.
func Saturate(f *FSP) (*FSP, Action, error) {
	return SaturateWith(f, TauClosure(f))
}

// SaturateWith is Saturate for callers that already hold the tau-closure
// of f (e.g. a cache), sparing its recomputation.
func SaturateWith(f *FSP, clo Closure) (*FSP, Action, error) {
	if _, taken := f.alphabet.Lookup(EpsilonName); taken {
		return nil, 0, fmt.Errorf("alphabet already contains %q; cannot saturate", EpsilonName)
	}
	alpha := f.alphabet.Clone()
	eps := alpha.Intern(EpsilonName)

	n := f.NumStates()
	b := NewBuilderWith(f.name+"^", alpha, f.vars)
	b.AddStates(n)
	b.SetStart(f.start)
	for s := 0; s < n; s++ {
		for _, id := range f.ext[s].IDs() {
			b.Extend(State(s), f.vars.Name(id))
		}
	}

	// acc and dests are scratch for per-(state,action) destination sets;
	// each weak derivative set is built by OR-ing closure rows.
	acc := newBitRow(n)
	var dests []State
	for s := 0; s < n; s++ {
		// Epsilon arcs: the closure itself (reflexive, so every state has
		// at least the self-loop).
		for _, t := range clo.Of(State(s)) {
			b.Arc(State(s), eps, t)
		}
		// For each observable sigma: closure(s) --sigma--> then closure.
		for _, sigma := range f.alphabet.Observable() {
			acc.clear()
			clo.weakDestFrom(f, State(s), sigma, acc)
			dests = acc.appendStates(dests[:0])
			for _, d := range dests {
				b.Arc(State(s), sigma, d)
			}
		}
	}
	out, err := b.Build()
	if err != nil {
		return nil, 0, err
	}
	return out, eps, nil
}

// WeakDest returns the set of sigma-weak-derivatives {q : from ==sigma=> q}
// for a single observable action, computed from a precomputed closure.
func WeakDest(f *FSP, clo Closure, from State, sigma Action) []State {
	acc := newBitRow(clo.n)
	clo.weakDestFrom(f, from, sigma, acc)
	return acc.states()
}

// WeakDestSet is WeakDest lifted to a set of source states.
func WeakDestSet(f *FSP, clo Closure, from []State, sigma Action) []State {
	src := newBitRow(clo.n)
	for _, s := range from {
		clo.orInto(src, s)
	}
	acc := newBitRow(clo.n)
	clo.weakDestRow(f, src, sigma, acc)
	return acc.states()
}

// SDerivatives returns the s-derivatives of from: all states p' such that
// from ==word=> p', where word ranges over observable actions (Section 2.1).
// The empty word yields the tau-closure of from.
func SDerivatives(f *FSP, from State, word []Action) []State {
	clo := TauClosure(f)
	cur := clo.Of(from)
	set := make([]State, len(cur))
	copy(set, cur)
	for _, sigma := range word {
		set = WeakDestSet(f, clo, set, sigma)
		if len(set) == 0 {
			return nil
		}
	}
	return set
}
