package fsp

import (
	"fmt"
	"sort"
)

// EpsilonName is the action name used for the empty-string relation ==eps=>
// when an FSP is saturated (Theorem 4.1a). It is chosen to be outside any
// reasonable user alphabet; Saturate fails if the name is already taken.
const EpsilonName = "ε"

// Closure holds the reflexive-transitive tau-closure of an FSP: for each
// state p, the sorted set of states reachable from p by zero or more tau
// transitions (p ==eps=> p' in the notation of Section 2.1).
type Closure struct {
	sets [][]State
}

// TauClosure computes the tau-closure by a BFS from every state over the
// tau-labelled subgraph. This replaces the paper's matrix-multiplication
// transitive closure (O(n^2.376)) with an O(n(n+m)) sparse traversal; see
// DESIGN.md section 4.
func TauClosure(f *FSP) Closure {
	n := f.NumStates()
	tauAdj := make([][]State, n)
	for s := 0; s < n; s++ {
		for _, a := range f.adj[s] {
			if a.Act == Tau {
				tauAdj[s] = append(tauAdj[s], a.To)
			}
		}
	}
	sets := make([][]State, n)
	seen := make([]bool, n)
	queue := make([]State, 0, n)
	for s := 0; s < n; s++ {
		queue = queue[:0]
		queue = append(queue, State(s))
		seen[s] = true
		for i := 0; i < len(queue); i++ {
			for _, t := range tauAdj[queue[i]] {
				if !seen[t] {
					seen[t] = true
					queue = append(queue, t)
				}
			}
		}
		set := make([]State, len(queue))
		copy(set, queue)
		sort.Slice(set, func(i, j int) bool { return set[i] < set[j] })
		sets[s] = set
		for _, t := range queue {
			seen[t] = false
		}
	}
	return Closure{sets: sets}
}

// Of returns the tau-closure of s in increasing state order. The slice is
// shared; callers must not modify it.
func (c Closure) Of(s State) []State { return c.sets[s] }

// ExpandSet returns the union of the tau-closures of the given states,
// sorted and deduplicated.
func (c Closure) ExpandSet(set []State) []State {
	mark := map[State]struct{}{}
	for _, s := range set {
		for _, t := range c.sets[s] {
			mark[t] = struct{}{}
		}
	}
	out := make([]State, 0, len(mark))
	for s := range mark {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Saturate builds the observable FSP P-hat of Theorem 4.1(a): it has the
// same states and extensions as f, its alphabet is Sigma plus a fresh
// epsilon action, and its transitions are the weak derivatives
//
//	p --sigma--> q  in P-hat   iff   p ==sigma=> q in f   (sigma in Sigma)
//	p --eps-->   q  in P-hat   iff   p ==eps=>   q in f   (tau-closure)
//
// Strong equivalence on P-hat coincides with observational equivalence on f
// (Propositions 2.2.1 and 2.2.2). The epsilon Action used is returned so
// callers can distinguish it from real alphabet members.
func Saturate(f *FSP) (*FSP, Action, error) {
	if _, taken := f.alphabet.Lookup(EpsilonName); taken {
		return nil, 0, fmt.Errorf("alphabet already contains %q; cannot saturate", EpsilonName)
	}
	clo := TauClosure(f)
	alpha := f.alphabet.Clone()
	eps := alpha.Intern(EpsilonName)

	n := f.NumStates()
	b := NewBuilderWith(f.name+"^", alpha, f.vars)
	b.AddStates(n)
	b.SetStart(f.start)
	for s := 0; s < n; s++ {
		for _, id := range f.ext[s].IDs() {
			b.Extend(State(s), f.vars.Name(id))
		}
	}

	// mark is scratch for per-(state,action) destination sets.
	mark := make([]bool, n)
	var dests []State
	for s := 0; s < n; s++ {
		// Epsilon arcs: the closure itself (reflexive, so every state has
		// at least the self-loop).
		for _, t := range clo.Of(State(s)) {
			b.Arc(State(s), eps, t)
		}
		// For each observable sigma: closure(s) --sigma--> then closure.
		for _, sigma := range f.alphabet.Observable() {
			dests = dests[:0]
			for _, p := range clo.Of(State(s)) {
				for _, q := range f.Dest(p, sigma) {
					for _, r := range clo.Of(q) {
						if !mark[r] {
							mark[r] = true
							dests = append(dests, r)
						}
					}
				}
			}
			for _, d := range dests {
				b.Arc(State(s), sigma, d)
				mark[d] = false
			}
		}
	}
	out, err := b.Build()
	if err != nil {
		return nil, 0, err
	}
	return out, eps, nil
}

// WeakDest returns the set of sigma-weak-derivatives {q : from ==sigma=> q}
// for a single observable action, computed from a precomputed closure.
func WeakDest(f *FSP, clo Closure, from State, sigma Action) []State {
	mark := map[State]struct{}{}
	for _, p := range clo.Of(from) {
		for _, q := range f.Dest(p, sigma) {
			for _, r := range clo.Of(q) {
				mark[r] = struct{}{}
			}
		}
	}
	out := make([]State, 0, len(mark))
	for s := range mark {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// WeakDestSet is WeakDest lifted to a set of source states.
func WeakDestSet(f *FSP, clo Closure, from []State, sigma Action) []State {
	mark := map[State]struct{}{}
	for _, s := range from {
		for _, p := range clo.Of(s) {
			for _, q := range f.Dest(p, sigma) {
				for _, r := range clo.Of(q) {
					mark[r] = struct{}{}
				}
			}
		}
	}
	out := make([]State, 0, len(mark))
	for s := range mark {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SDerivatives returns the s-derivatives of from: all states p' such that
// from ==word=> p', where word ranges over observable actions (Section 2.1).
// The empty word yields the tau-closure of from.
func SDerivatives(f *FSP, from State, word []Action) []State {
	clo := TauClosure(f)
	cur := clo.Of(from)
	set := make([]State, len(cur))
	copy(set, cur)
	for _, sigma := range word {
		set = WeakDestSet(f, clo, set, sigma)
		if len(set) == 0 {
			return nil
		}
	}
	return set
}
