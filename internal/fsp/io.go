package fsp

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// The textual interchange format is line-oriented:
//
//	fsp Name              # optional header with process name
//	alphabet a b c        # observable actions (tau is implicit)
//	vars x                # optional variable declarations
//	states 4              # number of states, named 0..n-1
//	start 0               # start state (defaults to 0)
//	ext 0 x               # extension of a state (any number of lines)
//	arc 0 a 1             # transition lines; action "tau" is the tau move
//
// Blank lines and '#' comments are ignored. Declarations may appear in any
// order except that "states" must precede "start", "ext" and "arc" lines.

// Parse reads an FSP in the textual interchange format.
func Parse(r io.Reader) (*FSP, error) {
	var (
		b               *Builder
		name            string
		scanner         = bufio.NewScanner(r)
		lineno          int
		pendingAlphabet []string
		pendingVars     []string
	)
	scanner.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	fail := func(format string, args ...any) (*FSP, error) {
		return nil, fmt.Errorf("line %d: %s", lineno, fmt.Sprintf(format, args...))
	}
	for scanner.Scan() {
		lineno++
		line := scanner.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "fsp":
			if len(fields) > 1 {
				name = fields[1]
			}
		case "alphabet":
			if b != nil {
				return fail("alphabet must precede states")
			}
			// Stash in name of builder later; we need the builder to exist
			// first, so create it lazily via a pending alphabet.
			if pendingAlphabet != nil {
				return fail("duplicate alphabet declaration")
			}
			pendingAlphabet = fields[1:]
		case "vars":
			if b != nil {
				return fail("vars must precede states")
			}
			if pendingVars != nil {
				return fail("duplicate vars declaration")
			}
			pendingVars = fields[1:]
		case "states":
			if b != nil {
				return fail("duplicate states declaration")
			}
			if len(fields) != 2 {
				return fail("states wants one argument")
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n <= 0 {
				return fail("invalid state count %q", fields[1])
			}
			b = NewBuilder(name)
			for _, a := range pendingAlphabet {
				if a == TauName {
					return fail("alphabet must not contain %q", TauName)
				}
				b.Action(a)
			}
			for _, v := range pendingVars {
				if _, err := b.vars.Intern(v); err != nil {
					return fail("%v", err)
				}
			}
			pendingAlphabet, pendingVars = nil, nil
			b.AddStates(n)
		case "start":
			if b == nil {
				return fail("start before states")
			}
			s, err := parseState(fields, 1, b)
			if err != nil {
				return fail("%v", err)
			}
			b.SetStart(s)
		case "ext":
			if b == nil {
				return fail("ext before states")
			}
			s, err := parseState(fields, 1, b)
			if err != nil {
				return fail("%v", err)
			}
			b.Extend(s, fields[2:]...)
		case "arc":
			if b == nil {
				return fail("arc before states")
			}
			if len(fields) != 4 {
				return fail("arc wants: arc FROM ACTION TO")
			}
			from, err := parseState(fields, 1, b)
			if err != nil {
				return fail("%v", err)
			}
			to, err := parseState(fields, 3, b)
			if err != nil {
				return fail("%v", err)
			}
			b.ArcName(from, fields[2], to)
		default:
			return fail("unknown directive %q", fields[0])
		}
		if b != nil && b.Err() != nil {
			return fail("%v", b.Err())
		}
	}
	if err := scanner.Err(); err != nil {
		return nil, err
	}
	if b == nil {
		return nil, fmt.Errorf("no states declaration found")
	}
	return b.Build()
}

func parseState(fields []string, idx int, b *Builder) (State, error) {
	if idx >= len(fields) {
		return 0, fmt.Errorf("missing state operand")
	}
	n, err := strconv.Atoi(fields[idx])
	if err != nil || n < 0 || n >= len(b.adj) {
		return 0, fmt.Errorf("invalid state %q", fields[idx])
	}
	return State(n), nil
}

// ParseString is Parse over an in-memory string.
func ParseString(s string) (*FSP, error) { return Parse(strings.NewReader(s)) }

// Format writes f in the textual interchange format. The output is
// canonical: parsing it yields an FSP equal to f up to alphabet ordering.
func Format(w io.Writer, f *FSP) error {
	bw := bufio.NewWriter(w)
	if f.name != "" {
		fmt.Fprintf(bw, "fsp %s\n", f.name)
	}
	if f.alphabet.NumObservable() > 0 {
		names := make([]string, 0, f.alphabet.NumObservable())
		for _, a := range f.alphabet.Observable() {
			names = append(names, f.alphabet.Name(a))
		}
		fmt.Fprintf(bw, "alphabet %s\n", strings.Join(names, " "))
	}
	if f.vars.Len() > 0 {
		fmt.Fprintf(bw, "vars %s\n", strings.Join(f.vars.names, " "))
	}
	fmt.Fprintf(bw, "states %d\n", f.NumStates())
	fmt.Fprintf(bw, "start %d\n", f.start)
	for s := 0; s < f.NumStates(); s++ {
		e := f.ext[s]
		if e.IsEmpty() {
			continue
		}
		names := make([]string, 0, e.Len())
		for _, id := range e.IDs() {
			names = append(names, f.vars.Name(id))
		}
		sort.Strings(names)
		fmt.Fprintf(bw, "ext %d %s\n", s, strings.Join(names, " "))
	}
	for s := 0; s < f.NumStates(); s++ {
		for _, a := range f.adj[s] {
			fmt.Fprintf(bw, "arc %d %s %d\n", s, f.alphabet.Name(a.Act), a.To)
		}
	}
	return bw.Flush()
}

// FormatString renders f in the textual interchange format.
func FormatString(f *FSP) string {
	var sb strings.Builder
	// strings.Builder writes never fail.
	_ = Format(&sb, f)
	return sb.String()
}
