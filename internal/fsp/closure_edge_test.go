package fsp

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// Edge cases for the bitset tau-closure: degenerate processes, tau
// self-loops and cycles, empty-set queries, and the epsilon action of a
// saturated FSP. A randomized comparison against a map-based reference
// implementation guards the word-packed representation itself.

func TestBitRow(t *testing.T) {
	r := newBitRow(130)
	for _, s := range []State{0, 63, 64, 129} {
		if r.has(s) {
			t.Errorf("fresh row has %d", s)
		}
		r.set(s)
		if !r.has(s) {
			t.Errorf("row lost %d", s)
		}
	}
	if got := r.count(); got != 4 {
		t.Errorf("count = %d, want 4", got)
	}
	if got := r.states(); !reflect.DeepEqual(got, []State{0, 63, 64, 129}) {
		t.Errorf("states = %v", got)
	}
	o := newBitRow(130)
	o.set(1)
	o.set(64)
	r.or(o)
	if got := r.states(); !reflect.DeepEqual(got, []State{0, 1, 63, 64, 129}) {
		t.Errorf("after or, states = %v", got)
	}
	r.clear()
	if r.count() != 0 {
		t.Errorf("clear left %d members", r.count())
	}
}

func TestTauClosureSingleStateNoArcs(t *testing.T) {
	b := NewBuilder("empty")
	b.AddState()
	f := b.MustBuild()
	clo := TauClosure(f)
	if got := clo.Of(0); !reflect.DeepEqual(got, []State{0}) {
		t.Errorf("closure(0) = %v, want [0] (reflexive)", got)
	}
	sat, eps, err := Saturate(f)
	if err != nil {
		t.Fatalf("Saturate: %v", err)
	}
	if got := sat.Dest(0, eps); !reflect.DeepEqual(got, []State{0}) {
		t.Errorf("sat eps arcs = %v, want the reflexive self-loop", got)
	}
}

func TestTauClosureNoTauArcs(t *testing.T) {
	b := NewBuilder("observable")
	b.AddStates(3)
	b.ArcName(0, "a", 1)
	b.ArcName(1, "b", 2)
	f := b.MustBuild()
	clo := TauClosure(f)
	for s := 0; s < 3; s++ {
		if got := clo.Of(State(s)); !reflect.DeepEqual(got, []State{State(s)}) {
			t.Errorf("closure(%d) = %v, want identity", s, got)
		}
	}
}

func TestTauClosureSelfLoop(t *testing.T) {
	// A tau self-loop adds nothing beyond reflexivity but must not hang
	// or duplicate members.
	b := NewBuilder("selfloop")
	b.AddStates(2)
	b.ArcName(0, TauName, 0)
	b.ArcName(0, TauName, 1)
	b.ArcName(1, TauName, 1)
	f := b.MustBuild()
	clo := TauClosure(f)
	if got := clo.Of(0); !reflect.DeepEqual(got, []State{0, 1}) {
		t.Errorf("closure(0) = %v, want [0 1]", got)
	}
	if got := clo.Of(1); !reflect.DeepEqual(got, []State{1}) {
		t.Errorf("closure(1) = %v, want [1]", got)
	}
}

func TestTauClosureTwoCycles(t *testing.T) {
	// Two tau cycles joined by a bridge: 0<->1, 2<->3, 1 --tau--> 2. The
	// memoized-row BFS must still see through the forward bridge.
	b := NewBuilder("cycles")
	b.AddStates(4)
	b.ArcName(0, TauName, 1)
	b.ArcName(1, TauName, 0)
	b.ArcName(2, TauName, 3)
	b.ArcName(3, TauName, 2)
	b.ArcName(1, TauName, 2)
	f := b.MustBuild()
	clo := TauClosure(f)
	want := [][]State{
		{0, 1, 2, 3},
		{0, 1, 2, 3},
		{2, 3},
		{2, 3},
	}
	for s, w := range want {
		if got := clo.Of(State(s)); !reflect.DeepEqual(got, w) {
			t.Errorf("closure(%d) = %v, want %v", s, got, w)
		}
	}
}

func TestExpandSetEmpty(t *testing.T) {
	f := buildTauChain(t)
	clo := TauClosure(f)
	if got := clo.ExpandSet(nil); len(got) != 0 {
		t.Errorf("ExpandSet(nil) = %v, want empty", got)
	}
	if got := clo.ExpandSet([]State{}); len(got) != 0 {
		t.Errorf("ExpandSet([]) = %v, want empty", got)
	}
}

func TestWeakDestSetEmpty(t *testing.T) {
	f := buildTauChain(t)
	clo := TauClosure(f)
	a, _ := f.Alphabet().Lookup("a")
	if got := WeakDestSet(f, clo, nil, a); len(got) != 0 {
		t.Errorf("WeakDestSet(empty) = %v, want empty", got)
	}
}

func TestWeakDestOnEpsilonAction(t *testing.T) {
	// On the saturated FSP, epsilon is an ordinary action whose weak
	// derivatives are exactly the original tau-closure: the saturated
	// process has no taus, so closure-eps-closure collapses to the eps
	// arcs themselves.
	f := buildTauChain(t)
	sat, eps, err := Saturate(f)
	if err != nil {
		t.Fatal(err)
	}
	satClo := TauClosure(sat)
	origClo := TauClosure(f)
	for s := 0; s < f.NumStates(); s++ {
		got := WeakDest(sat, satClo, State(s), eps)
		if want := origClo.Of(State(s)); !reflect.DeepEqual(got, want) {
			t.Errorf("WeakDest(sat, %d, eps) = %v, want %v", s, got, want)
		}
	}
}

// referenceClosure is the naive map-based tau-closure the bitset version
// replaced; it anchors the randomized comparison below.
func referenceClosure(f *FSP, s State) []State {
	seen := map[State]struct{}{s: {}}
	stack := []State{s}
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, t := range f.Dest(p, Tau) {
			if _, ok := seen[t]; !ok {
				seen[t] = struct{}{}
				stack = append(stack, t)
			}
		}
	}
	out := make([]State, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestTauClosureMatchesReferenceOnRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(80)
		b := NewBuilder("rand")
		b.AddStates(n)
		tau := b.Action(TauName)
		a := b.Action("a")
		for i := 0; i < 3*n; i++ {
			act := a
			if rng.Intn(2) == 0 {
				act = tau
			}
			b.Arc(State(rng.Intn(n)), act, State(rng.Intn(n)))
		}
		f := b.MustBuild()
		clo := TauClosure(f)
		for s := 0; s < n; s++ {
			want := referenceClosure(f, State(s))
			if got := clo.Of(State(s)); !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d: closure(%d) = %v, want %v", trial, s, got, want)
			}
		}
		// Spot-check WeakDest against the definitional expansion.
		s := State(rng.Intn(n))
		want := map[State]struct{}{}
		for _, p := range clo.Of(s) {
			for _, q := range f.Dest(p, a) {
				for _, r := range clo.Of(q) {
					want[r] = struct{}{}
				}
			}
		}
		got := WeakDest(f, clo, s, a)
		if len(got) != len(want) {
			t.Fatalf("trial %d: WeakDest size %d, want %d", trial, len(got), len(want))
		}
		for _, r := range got {
			if _, ok := want[r]; !ok {
				t.Fatalf("trial %d: WeakDest has stray state %d", trial, r)
			}
		}
	}
}
