package fsp

import (
	"reflect"
	"testing"
)

// buildTauChain returns 0 --tau--> 1 --tau--> 2 --a--> 3, with 3 accepting.
func buildTauChain(t *testing.T) *FSP {
	t.Helper()
	b := NewBuilder("tauchain")
	b.AddStates(4)
	b.ArcName(0, TauName, 1)
	b.ArcName(1, TauName, 2)
	b.ArcName(2, "a", 3)
	b.Accept(3)
	return b.MustBuild()
}

func TestTauClosure(t *testing.T) {
	f := buildTauChain(t)
	clo := TauClosure(f)
	tests := []struct {
		s    State
		want []State
	}{
		{0, []State{0, 1, 2}},
		{1, []State{1, 2}},
		{2, []State{2}},
		{3, []State{3}},
	}
	for _, tc := range tests {
		if got := clo.Of(tc.s); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("closure(%d) = %v, want %v", tc.s, got, tc.want)
		}
	}
}

func TestTauClosureCycle(t *testing.T) {
	b := NewBuilder("")
	b.AddStates(3)
	b.ArcName(0, TauName, 1)
	b.ArcName(1, TauName, 0)
	b.ArcName(1, TauName, 2)
	f := b.MustBuild()
	clo := TauClosure(f)
	if got := clo.Of(0); !reflect.DeepEqual(got, []State{0, 1, 2}) {
		t.Errorf("closure(0) = %v", got)
	}
	if got := clo.Of(1); !reflect.DeepEqual(got, []State{0, 1, 2}) {
		t.Errorf("closure(1) = %v", got)
	}
}

func TestExpandSet(t *testing.T) {
	f := buildTauChain(t)
	clo := TauClosure(f)
	got := clo.ExpandSet([]State{1, 3})
	if !reflect.DeepEqual(got, []State{1, 2, 3}) {
		t.Errorf("ExpandSet = %v", got)
	}
}

func TestWeakDest(t *testing.T) {
	f := buildTauChain(t)
	clo := TauClosure(f)
	a, _ := f.Alphabet().Lookup("a")
	// 0 ==a=> 3 through two taus.
	if got := WeakDest(f, clo, 0, a); !reflect.DeepEqual(got, []State{3}) {
		t.Errorf("WeakDest(0,a) = %v, want [3]", got)
	}
	if got := WeakDest(f, clo, 3, a); len(got) != 0 {
		t.Errorf("WeakDest(3,a) = %v, want empty", got)
	}
}

func TestSDerivatives(t *testing.T) {
	f := buildTauChain(t)
	a, _ := f.Alphabet().Lookup("a")
	if got := SDerivatives(f, 0, nil); !reflect.DeepEqual(got, []State{0, 1, 2}) {
		t.Errorf("eps derivatives = %v", got)
	}
	if got := SDerivatives(f, 0, []Action{a}); !reflect.DeepEqual(got, []State{3}) {
		t.Errorf("a derivatives = %v", got)
	}
	if got := SDerivatives(f, 0, []Action{a, a}); got != nil {
		t.Errorf("aa derivatives = %v, want nil", got)
	}
}

func TestSaturate(t *testing.T) {
	f := buildTauChain(t)
	sat, eps, err := Saturate(f)
	if err != nil {
		t.Fatalf("Saturate: %v", err)
	}
	if sat.NumStates() != f.NumStates() {
		t.Fatalf("saturation changed state count")
	}
	cls := Classify(sat)
	if !cls.Observable {
		t.Errorf("saturated FSP must be observable (no tau arcs)")
	}
	a, _ := sat.Alphabet().Lookup("a")
	// In P-hat, 0 --a--> 3 directly.
	if got := sat.Dest(0, a); !reflect.DeepEqual(got, []State{3}) {
		t.Errorf("sat.Dest(0,a) = %v, want [3]", got)
	}
	// Epsilon arcs mirror the closure, including the reflexive self-loop.
	if got := sat.Dest(0, eps); !reflect.DeepEqual(got, []State{0, 1, 2}) {
		t.Errorf("sat.Dest(0,eps) = %v", got)
	}
	if got := sat.Dest(3, eps); !reflect.DeepEqual(got, []State{3}) {
		t.Errorf("sat.Dest(3,eps) = %v", got)
	}
	// Extensions preserved.
	if !sat.Accepting(3) || sat.Accepting(0) {
		t.Errorf("saturation lost extensions")
	}
}

func TestSaturateRejectsEpsilonCollision(t *testing.T) {
	b := NewBuilder("")
	b.AddStates(2)
	b.ArcName(0, EpsilonName, 1)
	f := b.MustBuild()
	if _, _, err := Saturate(f); err == nil {
		t.Error("expected error for alphabet containing the epsilon name")
	}
}

// TestClosureSubsetRows: the exported subset-row helpers (RowWords,
// OrClosureInto) agree with the materialized closure sets — they are the
// substrate of internal/otf's determinized spec side.
func TestClosureSubsetRows(t *testing.T) {
	b := NewBuilder("rows")
	b.AddStates(70) // spans two words
	b.ArcName(0, TauName, 1)
	b.ArcName(1, TauName, 65)
	b.ArcName(65, TauName, 65) // self-loop: dropped by the closure rows
	b.ArcName(2, "a", 3)
	f := b.MustBuild()
	clo := TauClosure(f)
	if got := clo.RowWords(); got != 2 {
		t.Fatalf("RowWords = %d, want 2", got)
	}
	row := make([]uint64, clo.RowWords())
	clo.OrClosureInto(row, 0)
	clo.OrClosureInto(row, 2) // singleton (nil-row) representation
	want := map[State]bool{0: true, 1: true, 65: true, 2: true}
	var members []State
	for i, w := range row {
		for bit := 0; bit < 64; bit++ {
			if w&(1<<bit) != 0 {
				members = append(members, State(i*64+bit))
			}
		}
	}
	if len(members) != len(want) {
		t.Fatalf("row members %v, want the union of closures {0,1,65} ∪ {2}", members)
	}
	for _, m := range members {
		if !want[m] {
			t.Errorf("unexpected member %d", m)
		}
	}
}
