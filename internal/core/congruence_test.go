package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ccs/internal/fsp"
)

func buildTauA() *fsp.FSP {
	b := fsp.NewBuilder("tau.a")
	b.AddStates(3)
	b.ArcName(0, fsp.TauName, 1)
	b.ArcName(1, "a", 2)
	return b.MustBuild()
}

func buildA() *fsp.FSP {
	b := fsp.NewBuilder("a")
	b.AddStates(2)
	b.ArcName(0, "a", 1)
	return b.MustBuild()
}

func TestCongruenceSeparatesTauPrefix(t *testing.T) {
	// tau.a ≈ a, but tau.a ≉ᶜ a: the classic separating law.
	tauA, a := buildTauA(), buildA()
	weak, err := WeakEquivalent(tauA, a)
	if err != nil {
		t.Fatal(err)
	}
	if !weak {
		t.Fatalf("setup: tau.a ≈ a expected")
	}
	cong, err := ObservationCongruent(tauA, a)
	if err != nil {
		t.Fatal(err)
	}
	if cong {
		t.Errorf("tau.a ≈ᶜ a must NOT hold")
	}
}

func TestCongruenceTauLawInside(t *testing.T) {
	// a.tau.b ≈ᶜ a.b: Milner's first tau law is congruence-valid because
	// the tau is not at the root.
	b1 := fsp.NewBuilder("a.tau.b")
	b1.AddStates(4)
	b1.ArcName(0, "a", 1)
	b1.ArcName(1, fsp.TauName, 2)
	b1.ArcName(2, "b", 3)
	p := b1.MustBuild()

	b2 := fsp.NewBuilder("a.b")
	b2.AddStates(3)
	b2.ArcName(0, "a", 1)
	b2.ArcName(1, "b", 2)
	q := b2.MustBuild()

	cong, err := ObservationCongruent(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if !cong {
		t.Errorf("a.tau.b ≈ᶜ a.b must hold")
	}
}

func TestCongruenceThirdTauLaw(t *testing.T) {
	// a + tau.a ≈ᶜ tau.a (Milner's third tau law).
	b1 := fsp.NewBuilder("a+tau.a")
	b1.AddStates(4)
	b1.ArcName(0, "a", 1)
	b1.ArcName(0, fsp.TauName, 2)
	b1.ArcName(2, "a", 3)
	p := b1.MustBuild()

	b2 := fsp.NewBuilder("tau.a")
	b2.AddStates(3)
	b2.ArcName(0, fsp.TauName, 1)
	b2.ArcName(1, "a", 2)
	q := b2.MustBuild()

	cong, err := ObservationCongruent(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if !cong {
		t.Errorf("a + tau.a ≈ᶜ tau.a must hold")
	}
}

func TestCongruenceExtensionsMatter(t *testing.T) {
	b := fsp.NewBuilder("")
	b.AddStates(2)
	b.Accept(0)
	f := b.MustBuild()
	cong, err := ObservationCongruentStates(f, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cong {
		t.Errorf("states with different extensions cannot be congruent")
	}
}

// Property: ~ ⊆ ≈ᶜ ⊆ ≈ — observation congruence sits between strong and
// weak equivalence.
func TestQuickCongruenceSandwich(t *testing.T) {
	prop := func(a, b genProc) bool {
		strong, err := StrongEquivalent(a.f, b.f)
		if err != nil {
			return false
		}
		cong, err := ObservationCongruent(a.f, b.f)
		if err != nil {
			return false
		}
		weak, err := WeakEquivalent(a.f, b.f)
		if err != nil {
			return false
		}
		if strong && !cong {
			return false
		}
		if cong && !weak {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(77))}); err != nil {
		t.Error(err)
	}
}

// Property: ≈ᶜ is symmetric and reflexive.
func TestQuickCongruenceRelationLaws(t *testing.T) {
	prop := func(a, b genProc) bool {
		refl, err := ObservationCongruent(a.f, a.f)
		if err != nil || !refl {
			return false
		}
		ab, err := ObservationCongruent(a.f, b.f)
		if err != nil {
			return false
		}
		ba, err := ObservationCongruent(b.f, a.f)
		if err != nil {
			return false
		}
		return ab == ba
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}
