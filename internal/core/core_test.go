package core

import (
	"testing"

	"ccs/internal/fsp"
)

// chain builds a unary restricted chain of the given length: a^len.
func chain(name string, length int) *fsp.FSP {
	b := fsp.NewBuilder(name)
	b.AddStates(length + 1)
	for i := 0; i < length; i++ {
		b.ArcName(fsp.State(i), "a", fsp.State(i+1))
	}
	for s := 0; s <= length; s++ {
		b.Accept(fsp.State(s))
	}
	return b.MustBuild()
}

func TestStrongEquivalentIdentical(t *testing.T) {
	f := chain("f", 3)
	g := chain("g", 3)
	for _, algo := range []Algorithm{PaigeTarjan, Naive} {
		eq, err := StrongEquivalent(f, g, WithAlgorithm(algo))
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if !eq {
			t.Errorf("%v: identical chains not strongly equivalent", algo)
		}
	}
}

func TestStrongEquivalentDifferentLengths(t *testing.T) {
	f := chain("f", 3)
	g := chain("g", 4)
	eq, err := StrongEquivalent(f, g)
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Errorf("chains of different length reported strongly equivalent")
	}
}

// unfolding builds a cycle vs its unfolding: a one-state a-loop is strongly
// equivalent to a two-state a-cycle.
func TestStrongEquivalentLoopUnfolding(t *testing.T) {
	b1 := fsp.NewBuilder("loop1")
	b1.AddStates(1)
	b1.ArcName(0, "a", 0)
	b1.Accept(0)
	one := b1.MustBuild()

	b2 := fsp.NewBuilder("loop2")
	b2.AddStates(2)
	b2.ArcName(0, "a", 1)
	b2.ArcName(1, "a", 0)
	b2.Accept(0)
	b2.Accept(1)
	two := b2.MustBuild()

	eq, err := StrongEquivalent(one, two)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Errorf("loop and its unfolding must be strongly equivalent")
	}
}

func TestStrongDistinguishesExtensions(t *testing.T) {
	b := fsp.NewBuilder("")
	b.AddStates(2)
	b.Accept(0)
	f := b.MustBuild()
	if StrongEquivalentStates(f, 0, 1) {
		t.Errorf("states with different extensions must differ (≈_0)")
	}
}

// nondetSplit is the classic strong-inequivalence pair:
// a·(b+c) vs a·b + a·c.
func TestStrongNondeterministicBranching(t *testing.T) {
	b1 := fsp.NewBuilder("a(b+c)")
	b1.AddStates(4)
	b1.ArcName(0, "a", 1)
	b1.ArcName(1, "b", 2)
	b1.ArcName(1, "c", 3)
	p := b1.MustBuild()

	b2 := fsp.NewBuilder("ab+ac")
	b2.AddStates(5)
	b2.ArcName(0, "a", 1)
	b2.ArcName(0, "a", 2)
	b2.ArcName(1, "b", 3)
	b2.ArcName(2, "c", 4)
	q := b2.MustBuild()

	eq, err := StrongEquivalent(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Errorf("a(b+c) ~ ab+ac reported, but they differ")
	}
	// They are language-equivalent, which is the whole point of the paper's
	// contrast with NFA equivalence; confirmed in the kequiv package.
}

// tauLawAB checks Milner's tau law: a·tau·b ≈ a·b.
func TestWeakTauLaw(t *testing.T) {
	b1 := fsp.NewBuilder("a.tau.b")
	b1.AddStates(4)
	b1.ArcName(0, "a", 1)
	b1.ArcName(1, fsp.TauName, 2)
	b1.ArcName(2, "b", 3)
	p := b1.MustBuild()

	b2 := fsp.NewBuilder("a.b")
	b2.AddStates(3)
	b2.ArcName(0, "a", 1)
	b2.ArcName(1, "b", 2)
	q := b2.MustBuild()

	eq, err := WeakEquivalent(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Errorf("a.tau.b ≈ a.b must hold")
	}
	// But strong equivalence must fail: tau is an ordinary move there.
	seq, err := StrongEquivalent(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if seq {
		t.Errorf("a.tau.b ~ a.b must NOT hold")
	}
}

func TestWeakTauPrefix(t *testing.T) {
	// tau.a ≈ a.
	b1 := fsp.NewBuilder("tau.a")
	b1.AddStates(3)
	b1.ArcName(0, fsp.TauName, 1)
	b1.ArcName(1, "a", 2)
	p := b1.MustBuild()

	b2 := fsp.NewBuilder("a")
	b2.AddStates(2)
	b2.ArcName(0, "a", 1)
	q := b2.MustBuild()

	eq, err := WeakEquivalent(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Errorf("tau.a ≈ a must hold")
	}
}

func TestWeakPreemptionNotEquivalent(t *testing.T) {
	// a + tau.b is NOT observationally equivalent to a + b: the tau move
	// can preempt a.
	b1 := fsp.NewBuilder("a+tau.b")
	b1.AddStates(4)
	b1.ArcName(0, "a", 1)
	b1.ArcName(0, fsp.TauName, 2)
	b1.ArcName(2, "b", 3)
	p := b1.MustBuild()

	b2 := fsp.NewBuilder("a+b")
	b2.AddStates(3)
	b2.ArcName(0, "a", 1)
	b2.ArcName(0, "b", 2)
	q := b2.MustBuild()

	eq, err := WeakEquivalent(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Errorf("a+tau.b ≈ a+b reported, but the tau preempts")
	}
}

func TestLimitedLadder(t *testing.T) {
	// Two chains of different length are ≃_k-equivalent for small k and
	// separated at k = length of the shorter + 1... Specifically for chains
	// a^2 vs a^3 (start states): separated first at k where the refinement
	// distinguishes depth; ≃_0 equates everything with equal extensions.
	f := chain("f", 2)
	g := chain("g", 3)
	u, off, err := fsp.DisjointUnion(f, g)
	if err != nil {
		t.Fatal(err)
	}
	p, q := f.Start(), off+g.Start()

	eq0, err := LimitedEquivalentStates(u, p, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !eq0 {
		t.Errorf("≃_0 must hold (same extensions)")
	}
	// The fixpoint must separate them (they are not weakly equivalent).
	eqInf, err := LimitedEquivalentStates(u, p, q, -1)
	if err != nil {
		t.Fatal(err)
	}
	if eqInf {
		t.Errorf("≃ must separate chains of different length")
	}
	// Monotonicity: once separated, separated forever.
	separatedAt := -1
	for k := 0; k <= 6; k++ {
		eq, err := LimitedEquivalentStates(u, p, q, k)
		if err != nil {
			t.Fatal(err)
		}
		if !eq && separatedAt == -1 {
			separatedAt = k
		}
		if eq && separatedAt != -1 {
			t.Errorf("≃_%d holds again after separation at %d", k, separatedAt)
		}
	}
	if separatedAt == -1 {
		t.Errorf("chains never separated by bounded ladder")
	}
}

func TestLimitedFixpointEqualsWeak(t *testing.T) {
	// Proposition 2.2.1(c): the ≃ ladder fixpoint is observational
	// equivalence.
	b := fsp.NewBuilder("mix")
	b.AddStates(6)
	b.ArcName(0, "a", 1)
	b.ArcName(0, fsp.TauName, 2)
	b.ArcName(2, "a", 3)
	b.ArcName(3, "b", 4)
	b.ArcName(1, "b", 5)
	b.Accept(4)
	b.Accept(5)
	f := b.MustBuild()

	weak, err := WeakPartition(f)
	if err != nil {
		t.Fatal(err)
	}
	lim, _, err := LimitedPartition(f, -1)
	if err != nil {
		t.Fatal(err)
	}
	if !weak.Equal(lim) {
		t.Errorf("≃ fixpoint %v differs from ≈ %v", lim.Blocks(), weak.Blocks())
	}
}

func TestQuotientStrong(t *testing.T) {
	// Two parallel identical branches collapse.
	b := fsp.NewBuilder("dup")
	b.AddStates(5)
	b.ArcName(0, "a", 1)
	b.ArcName(0, "a", 2)
	b.ArcName(1, "b", 3)
	b.ArcName(2, "b", 4)
	f := b.MustBuild()

	q, mapping, err := QuotientStrong(f)
	if err != nil {
		t.Fatal(err)
	}
	if q.NumStates() != 3 {
		t.Errorf("quotient has %d states, want 3 (start, mid, end)", q.NumStates())
	}
	if mapping[1] != mapping[2] || mapping[3] != mapping[4] {
		t.Errorf("mapping did not merge duplicate branches: %v", mapping)
	}
	eq, err := StrongEquivalent(f, q)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Errorf("quotient not strongly equivalent to original")
	}
}

func TestQuotientWeak(t *testing.T) {
	b := fsp.NewBuilder("taudup")
	b.AddStates(5)
	b.ArcName(0, "a", 1)
	b.ArcName(1, fsp.TauName, 2)
	b.ArcName(2, "b", 3)
	b.ArcName(0, "a", 4) // 4 ≈ 1: both can only weakly do b... no, 4 is dead
	f := b.MustBuild()

	q, _, err := QuotientWeak(f)
	if err != nil {
		t.Fatal(err)
	}
	eq, err := WeakEquivalent(f, q)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Errorf("weak quotient not observationally equivalent to original")
	}
	if q.NumStates() > f.NumStates() {
		t.Errorf("quotient grew: %d > %d", q.NumStates(), f.NumStates())
	}
}

func TestClasses(t *testing.T) {
	f := chain("f", 1)
	p := StrongPartition(f)
	classes := Classes(f, p)
	if len(classes) != p.NumBlocks() {
		t.Errorf("classes/blocks mismatch")
	}
	total := 0
	for _, c := range classes {
		total += len(c)
	}
	if total != f.NumStates() {
		t.Errorf("classes cover %d states, want %d", total, f.NumStates())
	}
}

func TestAlgorithmString(t *testing.T) {
	if PaigeTarjan.String() != "paige-tarjan" || Naive.String() != "naive" {
		t.Errorf("algorithm names wrong")
	}
	if Algorithm(0).String() != "unknown" {
		t.Errorf("unknown algorithm name wrong")
	}
}

func TestNaiveAndPTAgreeOnWeak(t *testing.T) {
	b := fsp.NewBuilder("")
	b.AddStates(7)
	b.ArcName(0, fsp.TauName, 1)
	b.ArcName(1, "a", 2)
	b.ArcName(0, "a", 3)
	b.ArcName(3, fsp.TauName, 4)
	b.ArcName(4, "b", 5)
	b.ArcName(2, "b", 6)
	f := b.MustBuild()
	p1, err := WeakPartition(f, WithAlgorithm(PaigeTarjan))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := WeakPartition(f, WithAlgorithm(Naive))
	if err != nil {
		t.Fatal(err)
	}
	if !p1.Equal(p2) {
		t.Errorf("solvers disagree: %v vs %v", p1.Blocks(), p2.Blocks())
	}
}
