// Package core implements the paper's equivalence-checking algorithms:
//
//   - Strong equivalence (Definition 2.2.3) via the Lemma 3.1 reduction to
//     generalized partitioning, with the O(m log n + n) bound of Theorem 3.1
//     when the Paige-Tarjan solver is selected.
//   - Observational equivalence (Definition 2.2.1/2.2.2 via Proposition
//     2.2.1: the limited and unlimited notions coincide) by the Theorem
//     4.1(a) construction: saturate the FSP into its observable weak form
//     P-hat and decide strong equivalence there.
//   - The k-limited observational equivalence ladder ≃_k of Definition
//     2.2.2, realized as k rounds of naive refinement on the saturated FSP.
//   - Quotients (state minimization) modulo strong and observational
//     equivalence.
//
// All refinement flows through the shared CSR kernel of internal/lts: the
// Lemma 3.1 reduction is realized as lts.FromFSP (built once per process
// and cacheable by callers such as the engine) plus an extension-grouped
// initial partition, and the solvers in internal/partition refine directly
// on the index. States of two different processes are compared by forming
// the disjoint union of their indexes (lts.DisjointUnion, exactly as
// licensed by the remark in the proof of Lemma 3.1), so a cached process
// is never re-flattened for a pair query.
package core

import (
	"fmt"
	"sort"

	"ccs/internal/fsp"
	"ccs/internal/lts"
	"ccs/internal/partition"
)

// Algorithm selects the generalized-partitioning solver.
type Algorithm int

const (
	// PaigeTarjan is the O(m log n) solver of Theorem 3.1 (default).
	PaigeTarjan Algorithm = iota + 1
	// Naive is the O(nm) method of Lemma 3.2, kept as a baseline.
	Naive
)

func (a Algorithm) String() string {
	switch a {
	case PaigeTarjan:
		return "paige-tarjan"
	case Naive:
		return "naive"
	default:
		return "unknown"
	}
}

type config struct {
	algo      Algorithm
	freshRoot bool
}

// Option configures the equivalence checkers.
type Option func(*config)

// WithAlgorithm selects the partitioning solver.
func WithAlgorithm(a Algorithm) Option {
	return func(c *config) { c.algo = a }
}

// WithFreshRootQuotient makes QuotientCongruence restore the root condition
// with a fresh duplicated root state (the pre-minimal form: ≈-quotient plus
// one extra state) instead of the default tau self-loop at the quotient
// root. The two forms are ≈ᶜ-interchangeable; the legacy shape is retained
// only as a baseline for benchmarks and differential tests — it re-expands
// the start-state copy of every composed component, which is exactly the
// pair-space blowup the minimal form eliminates.
func WithFreshRootQuotient() Option {
	return func(c *config) { c.freshRoot = true }
}

func newConfig(opts []Option) config {
	c := config{algo: PaigeTarjan}
	for _, o := range opts {
		o(&c)
	}
	return c
}

func (c config) solve(idx *lts.Index, initial []int32) *partition.Partition {
	if c.algo == Naive {
		return partition.NaiveIndex(idx, initial)
	}
	return partition.PaigeTarjanIndex(idx, initial)
}

// IndexOf builds the refinement index of f: the Lemma 3.1 encoding of the
// transition relation with one function per action (tau, if present, is
// treated as an ordinary label, which is exactly strong equivalence;
// observational equivalence callers saturate first so no tau remains).
// The index is immutable and safe to cache and share across goroutines.
func IndexOf(f *fsp.FSP) *lts.Index { return lts.FromFSP(f) }

// ExtInitial is the initial partition of Lemma 3.1: states grouped by
// extension, with dense block ids in state-scan order. It pairs with
// IndexOf to form a complete refinement instance; hml and the benchmark
// harness reuse it so every layer encodes the reduction identically.
func ExtInitial(f *fsp.FSP) []int32 {
	n := f.NumStates()
	initial := make([]int32, n)
	blockByExt := map[fsp.VarSet]int32{}
	for s := 0; s < n; s++ {
		e := f.Ext(fsp.State(s))
		b, ok := blockByExt[e]
		if !ok {
			b = int32(len(blockByExt))
			blockByExt[e] = b
		}
		initial[s] = b
	}
	return initial
}

// pairInstance assembles the disjoint-union instance for a cross-process
// query: the union of the two cached indexes plus the extension-grouped
// initial partition, with extensions matched by variable name (the two
// processes may have been built against different variable tables).
func pairInstance(f, g *fsp.FSP, fi, gi *lts.Index) (*lts.Index, []int32, int32, error) {
	u, off, err := lts.DisjointUnion(fi, gi)
	if err != nil {
		return nil, nil, 0, err
	}
	initial := make([]int32, u.N())
	blockByExt := map[string]int32{}
	// Variable names are interned into shared dense ids and extensions
	// keyed by their sorted id encoding — collision-free for arbitrary
	// names, exactly like fsp.DisjointUnion's name interning (a rendered
	// string key could collide, e.g. a variable literally named "a,b"
	// against the two-variable extension {a, b}).
	nameID := map[string]int32{}
	var scratch []int32
	var buf []byte
	assign := func(p *fsp.FSP, base int32) {
		for s := 0; s < p.NumStates(); s++ {
			scratch = scratch[:0]
			for _, id := range p.Ext(fsp.State(s)).IDs() {
				nm := p.Vars().Name(id)
				d, ok := nameID[nm]
				if !ok {
					d = int32(len(nameID))
					nameID[nm] = d
				}
				scratch = append(scratch, d)
			}
			sort.Slice(scratch, func(i, j int) bool { return scratch[i] < scratch[j] })
			buf = buf[:0]
			for _, d := range scratch {
				buf = append(buf, byte(d), byte(d>>8), byte(d>>16), byte(d>>24))
			}
			b, ok := blockByExt[string(buf)]
			if !ok {
				b = int32(len(blockByExt))
				blockByExt[string(buf)] = b
			}
			initial[base+int32(s)] = b
		}
	}
	assign(f, 0)
	assign(g, off)
	return u, initial, off, nil
}

// StrongPartition computes the strong-equivalence partition of f's states:
// two states share a block iff they are strongly equivalent (p ~ q). This is
// the Lemma 3.1 reduction; the solver choice realizes Theorem 3.1 or the
// Lemma 3.2 baseline.
func StrongPartition(f *fsp.FSP, opts ...Option) *partition.Partition {
	return StrongPartitionIndexed(f, IndexOf(f), opts...)
}

// StrongPartitionIndexed is StrongPartition for callers that already hold
// f's refinement index (e.g. the engine's artifact cache); the index must
// have been built from f.
func StrongPartitionIndexed(f *fsp.FSP, idx *lts.Index, opts ...Option) *partition.Partition {
	c := newConfig(opts)
	return c.solve(idx, ExtInitial(f))
}

// StrongEquivalentStates reports p ~ q for two states of f.
func StrongEquivalentStates(f *fsp.FSP, p, q fsp.State, opts ...Option) bool {
	return StrongPartition(f, opts...).Same(int32(p), int32(q))
}

// StrongEquivalent reports whether the start states of f and g are strongly
// equivalent, by checking them inside the disjoint union of the processes.
func StrongEquivalent(f, g *fsp.FSP, opts ...Option) (bool, error) {
	return StrongEquivalentIndexed(f, g, IndexOf(f), IndexOf(g), opts...)
}

// StrongEquivalentIndexed is StrongEquivalent on prebuilt indexes: the
// disjoint union is formed at the index level, so neither process is
// re-flattened. fi and gi must have been built from f and g.
func StrongEquivalentIndexed(f, g *fsp.FSP, fi, gi *lts.Index, opts ...Option) (bool, error) {
	u, initial, off, err := pairInstance(f, g, fi, gi)
	if err != nil {
		return false, fmt.Errorf("strong equivalence: %w", err)
	}
	c := newConfig(opts)
	p := c.solve(u, initial)
	return p.Same(int32(f.Start()), off+int32(g.Start())), nil
}

// WeakPartition computes the observational-equivalence partition of f's
// states (p ≈ q) by the Theorem 4.1(a) algorithm: build the saturated
// observable FSP P-hat (weak derivatives for every observable action plus
// the epsilon relation) and solve strong equivalence there.
func WeakPartition(f *fsp.FSP, opts ...Option) (*partition.Partition, error) {
	sat, _, err := fsp.Saturate(f)
	if err != nil {
		return nil, fmt.Errorf("observational equivalence: %w", err)
	}
	return StrongPartition(sat, opts...), nil
}

// WeakEquivalentStates reports p ≈ q for two states of f.
func WeakEquivalentStates(f *fsp.FSP, p, q fsp.State, opts ...Option) (bool, error) {
	part, err := WeakPartition(f, opts...)
	if err != nil {
		return false, err
	}
	return part.Same(int32(p), int32(q)), nil
}

// WeakEquivalent reports whether the start states of f and g are
// observationally equivalent. Saturation distributes over disjoint union
// (the tau-closure of a union is the union of the tau-closures), so each
// side is saturated separately and the saturated indexes are unioned —
// the same decomposition the engine uses with its cached P-hats.
func WeakEquivalent(f, g *fsp.FSP, opts ...Option) (bool, error) {
	satF, _, err := fsp.Saturate(f)
	if err != nil {
		return false, fmt.Errorf("observational equivalence: %w", err)
	}
	satG, _, err := fsp.Saturate(g)
	if err != nil {
		return false, fmt.Errorf("observational equivalence: %w", err)
	}
	eq, err := StrongEquivalentIndexed(satF, satG, IndexOf(satF), IndexOf(satG), opts...)
	if err != nil {
		return false, fmt.Errorf("observational equivalence: %w", err)
	}
	return eq, nil
}

// LimitedPartition computes the k-limited observational equivalence ≃_k of
// Definition 2.2.2: the partition after exactly k refinement rounds on the
// saturated FSP, starting from the extension partition (≃_0). k < 0 runs to
// the fixed point, which is ≃ and hence ≈ by Proposition 2.2.1(c). The
// second result is the number of rounds that changed the partition.
func LimitedPartition(f *fsp.FSP, k int) (*partition.Partition, int, error) {
	sat, _, err := fsp.Saturate(f)
	if err != nil {
		return nil, 0, fmt.Errorf("limited equivalence: %w", err)
	}
	p, rounds := partition.RefineStepsIndex(IndexOf(sat), ExtInitial(sat), k)
	return p, rounds, nil
}

// LimitedEquivalentStates reports p ≃_k q for two states of f.
func LimitedEquivalentStates(f *fsp.FSP, p, q fsp.State, k int) (bool, error) {
	part, _, err := LimitedPartition(f, k)
	if err != nil {
		return false, err
	}
	return part.Same(int32(p), int32(q)), nil
}

// LimitedEquivalentSaturated decides ≃_k for the start states of two
// processes given their already-saturated forms and the indexes of those
// forms (the engine's cached artifacts). Saturation distributes over
// disjoint union, so k rounds of naive refinement on the union of the
// saturated indexes is exactly ≃_k on the union process.
func LimitedEquivalentSaturated(satF, satG *fsp.FSP, fi, gi *lts.Index, k int) (bool, error) {
	u, initial, off, err := pairInstance(satF, satG, fi, gi)
	if err != nil {
		return false, fmt.Errorf("limited equivalence: %w", err)
	}
	p, _ := partition.RefineStepsIndex(u, initial, k)
	return p.Same(int32(satF.Start()), off+int32(satG.Start())), nil
}

// Classes converts a partition over f's states into explicit equivalence
// classes (sorted state lists).
func Classes(f *fsp.FSP, p *partition.Partition) [][]fsp.State {
	blocks := p.Blocks()
	out := make([][]fsp.State, len(blocks))
	for i, b := range blocks {
		out[i] = make([]fsp.State, len(b))
		for j, x := range b {
			out[i][j] = fsp.State(x)
		}
	}
	return out
}
