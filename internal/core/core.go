// Package core implements the paper's equivalence-checking algorithms:
//
//   - Strong equivalence (Definition 2.2.3) via the Lemma 3.1 reduction to
//     generalized partitioning, with the O(m log n + n) bound of Theorem 3.1
//     when the Paige-Tarjan solver is selected.
//   - Observational equivalence (Definition 2.2.1/2.2.2 via Proposition
//     2.2.1: the limited and unlimited notions coincide) by the Theorem
//     4.1(a) construction: saturate the FSP into its observable weak form
//     P-hat and decide strong equivalence there.
//   - The k-limited observational equivalence ladder ≃_k of Definition
//     2.2.2, realized as k rounds of naive refinement on the saturated FSP.
//   - Quotients (state minimization) modulo strong and observational
//     equivalence.
//
// States of two different processes are compared by forming their disjoint
// union, exactly as licensed by the remark in the proof of Lemma 3.1.
package core

import (
	"fmt"

	"ccs/internal/fsp"
	"ccs/internal/partition"
)

// Algorithm selects the generalized-partitioning solver.
type Algorithm int

const (
	// PaigeTarjan is the O(m log n) solver of Theorem 3.1 (default).
	PaigeTarjan Algorithm = iota + 1
	// Naive is the O(nm) method of Lemma 3.2, kept as a baseline.
	Naive
)

func (a Algorithm) String() string {
	switch a {
	case PaigeTarjan:
		return "paige-tarjan"
	case Naive:
		return "naive"
	default:
		return "unknown"
	}
}

type config struct {
	algo Algorithm
}

// Option configures the equivalence checkers.
type Option func(*config)

// WithAlgorithm selects the partitioning solver.
func WithAlgorithm(a Algorithm) Option {
	return func(c *config) { c.algo = a }
}

func newConfig(opts []Option) config {
	c := config{algo: PaigeTarjan}
	for _, o := range opts {
		o(&c)
	}
	return c
}

func (c config) solve(pr *partition.Problem) *partition.Partition {
	if c.algo == Naive {
		return pr.Naive()
	}
	return pr.PaigeTarjan()
}

// problemOf encodes f as a generalized-partitioning instance per Lemma 3.1:
// the element set is K, the initial partition groups states by extension,
// and there is one function per action (tau, if present, is treated as an
// ordinary label, which is exactly strong equivalence; observational
// equivalence callers saturate first so no tau remains).
func problemOf(f *fsp.FSP) *partition.Problem {
	n := f.NumStates()
	pr := &partition.Problem{
		N:         n,
		NumLabels: f.Alphabet().Len(),
		Initial:   make([]int32, n),
	}
	blockByExt := map[fsp.VarSet]int32{}
	for s := 0; s < n; s++ {
		e := f.Ext(fsp.State(s))
		b, ok := blockByExt[e]
		if !ok {
			b = int32(len(blockByExt))
			blockByExt[e] = b
		}
		pr.Initial[s] = b
		for _, a := range f.Arcs(fsp.State(s)) {
			pr.Edges = append(pr.Edges, partition.Edge{
				From:  int32(s),
				Label: int32(a.Act),
				To:    int32(a.To),
			})
		}
	}
	return pr
}

// StrongPartition computes the strong-equivalence partition of f's states:
// two states share a block iff they are strongly equivalent (p ~ q). This is
// the Lemma 3.1 reduction; the solver choice realizes Theorem 3.1 or the
// Lemma 3.2 baseline.
func StrongPartition(f *fsp.FSP, opts ...Option) *partition.Partition {
	c := newConfig(opts)
	return c.solve(problemOf(f))
}

// StrongEquivalentStates reports p ~ q for two states of f.
func StrongEquivalentStates(f *fsp.FSP, p, q fsp.State, opts ...Option) bool {
	return StrongPartition(f, opts...).Same(int32(p), int32(q))
}

// StrongEquivalent reports whether the start states of f and g are strongly
// equivalent, by checking them inside the disjoint union of the processes.
func StrongEquivalent(f, g *fsp.FSP, opts ...Option) (bool, error) {
	u, off, err := fsp.DisjointUnion(f, g)
	if err != nil {
		return false, fmt.Errorf("strong equivalence: %w", err)
	}
	return StrongEquivalentStates(u, f.Start(), off+g.Start(), opts...), nil
}

// WeakPartition computes the observational-equivalence partition of f's
// states (p ≈ q) by the Theorem 4.1(a) algorithm: build the saturated
// observable FSP P-hat (weak derivatives for every observable action plus
// the epsilon relation) and solve strong equivalence there.
func WeakPartition(f *fsp.FSP, opts ...Option) (*partition.Partition, error) {
	sat, _, err := fsp.Saturate(f)
	if err != nil {
		return nil, fmt.Errorf("observational equivalence: %w", err)
	}
	return StrongPartition(sat, opts...), nil
}

// WeakEquivalentStates reports p ≈ q for two states of f.
func WeakEquivalentStates(f *fsp.FSP, p, q fsp.State, opts ...Option) (bool, error) {
	part, err := WeakPartition(f, opts...)
	if err != nil {
		return false, err
	}
	return part.Same(int32(p), int32(q)), nil
}

// WeakEquivalent reports whether the start states of f and g are
// observationally equivalent.
func WeakEquivalent(f, g *fsp.FSP, opts ...Option) (bool, error) {
	u, off, err := fsp.DisjointUnion(f, g)
	if err != nil {
		return false, fmt.Errorf("observational equivalence: %w", err)
	}
	return WeakEquivalentStates(u, f.Start(), off+g.Start(), opts...)
}

// LimitedPartition computes the k-limited observational equivalence ≃_k of
// Definition 2.2.2: the partition after exactly k refinement rounds on the
// saturated FSP, starting from the extension partition (≃_0). k < 0 runs to
// the fixed point, which is ≃ and hence ≈ by Proposition 2.2.1(c). The
// second result is the number of rounds that changed the partition.
func LimitedPartition(f *fsp.FSP, k int) (*partition.Partition, int, error) {
	sat, _, err := fsp.Saturate(f)
	if err != nil {
		return nil, 0, fmt.Errorf("limited equivalence: %w", err)
	}
	p, rounds := problemOf(sat).RefineSteps(k)
	return p, rounds, nil
}

// LimitedEquivalentStates reports p ≃_k q for two states of f.
func LimitedEquivalentStates(f *fsp.FSP, p, q fsp.State, k int) (bool, error) {
	part, _, err := LimitedPartition(f, k)
	if err != nil {
		return false, err
	}
	return part.Same(int32(p), int32(q)), nil
}

// Classes converts a partition over f's states into explicit equivalence
// classes (sorted state lists).
func Classes(f *fsp.FSP, p *partition.Partition) [][]fsp.State {
	blocks := p.Blocks()
	out := make([][]fsp.State, len(blocks))
	for i, b := range blocks {
		out[i] = make([]fsp.State, len(b))
		for j, x := range b {
			out[i][j] = fsp.State(x)
		}
	}
	return out
}
