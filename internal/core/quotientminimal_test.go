package core_test

import (
	"math/rand"
	"testing"

	"ccs/internal/core"
	"ccs/internal/fsp"
	"ccs/internal/gen"
)

// fluff returns a process with inessential tau moves and nondeterminism
// layered over f: every arc may gain a twin routed through a fresh tau
// "settling" state equivalent to its target, and every state — including
// the start, which exercises the ≈ᶜ root condition — may gain a tau
// refresh twin. The result is generally NOT ≈ᶜ to f (a refresh twin at
// the root introduces an initial tau), which is fine: the quotient is
// checked against the fluffed process itself.
func fluff(rng *rand.Rand, f *fsp.FSP) *fsp.FSP {
	b := fsp.NewBuilder(f.Name() + "-fluffed")
	n := f.NumStates()
	b.AddStates(n)
	copyExt := func(dst fsp.State, src fsp.State) {
		for _, id := range f.Ext(src).IDs() {
			b.Extend(dst, f.Vars().Name(id))
		}
	}
	for s := 0; s < n; s++ {
		copyExt(fsp.State(s), fsp.State(s))
	}
	b.SetStart(f.Start())
	for s := 0; s < n; s++ {
		for _, a := range f.Arcs(fsp.State(s)) {
			name := f.Alphabet().Name(a.Act)
			b.ArcName(fsp.State(s), name, a.To)
			if rng.Intn(2) == 0 {
				settle := b.AddState()
				copyExt(settle, a.To)
				b.ArcName(fsp.State(s), name, settle)
				b.ArcName(settle, fsp.TauName, a.To)
			}
		}
		if rng.Intn(3) == 0 {
			twin := b.AddState()
			copyExt(twin, fsp.State(s))
			b.ArcName(fsp.State(s), fsp.TauName, twin)
			b.ArcName(twin, fsp.TauName, fsp.State(s))
		}
	}
	return b.MustBuild()
}

// TestQuotientCongruenceMinimal: over the fluffed gallery (and fluffed
// random processes), QuotientCongruence must return a process that is ≈ᶜ
// to its source and ≈ᶜ-MINIMAL — no two distinct output states related by
// ≈ᶜ. Distinct output states are distinct ≈-classes, so the weak
// partition of the quotient must be discrete; the explicit pairwise ≈ᶜ
// check then documents the claimed property directly (≈ᶜ ⊆ ≈ makes it
// implied, but the test states the contract it pins).
func TestQuotientCongruenceMinimal(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	bases := []*fsp.FSP{
		gen.BufferCell(3),
		gen.LossyCell(3),
		gen.CounterSpec(4),
		gen.TokenRingSpec(),
		gen.NondetCounterSpec(3),
		gen.NondetTokenRingSpec(),
	}
	for i := 0; i < 30; i++ {
		bases = append(bases, gen.Random(rng, 2+rng.Intn(6), 2+rng.Intn(12), 3, 0.3))
	}
	for i, base := range bases {
		f := fluff(rng, base)
		q, _, err := core.QuotientCongruence(f)
		if err != nil {
			t.Fatalf("case %d (%s): %v", i, f.Name(), err)
		}
		if ok, err := core.ObservationCongruent(f, q); err != nil {
			t.Fatal(err)
		} else if !ok {
			t.Fatalf("case %d (%s): quotient not ≈ᶜ to source\n%s", i, f.Name(), fsp.FormatString(f))
		}
		part, err := core.WeakPartition(q)
		if err != nil {
			t.Fatal(err)
		}
		if part.NumBlocks() != q.NumStates() {
			t.Fatalf("case %d (%s): quotient has ≈-equivalent distinct states (%d states, %d classes)",
				i, f.Name(), q.NumStates(), part.NumBlocks())
		}
		for a := 0; a < q.NumStates(); a++ {
			for b := a + 1; b < q.NumStates(); b++ {
				if ok, err := core.ObservationCongruentStates(q, fsp.State(a), fsp.State(b)); err != nil {
					t.Fatal(err)
				} else if ok {
					t.Fatalf("case %d (%s): quotient states %d and %d are ≈ᶜ-related — not minimal",
						i, f.Name(), a, b)
				}
			}
		}
	}
}

// buildIdleStation replicates the token ring's idle station: a churn-long
// internal tau refresh cycle (states 2..2+churn-1, the start sits at the
// cycle base), "recv"/"work"/"send'" handling the token. All churn states
// are one ≈-class and the start has a direct in-class tau — the exact
// shape that used to force a fresh-root re-expansion in every idle
// component of a composed ring.
func buildIdleStation(churn int) *fsp.FSP {
	b := fsp.NewBuilder("station-idle")
	n := 2 + churn
	b.AddStates(n)
	b.ArcName(0, "work", 1)
	b.ArcName(1, "send'", 2)
	for i := 0; i < churn; i++ {
		b.ArcName(fsp.State(2+i), fsp.TauName, fsp.State(2+(i+1)%churn))
	}
	b.ArcName(2, "recv", 0)
	for s := 0; s < n; s++ {
		b.Accept(fsp.State(s))
	}
	b.SetStart(2)
	return b.MustBuild()
}

// TestQuotientCongruenceIdleStationRegression pins the idle-component
// start-state re-expansion case: the minimal quotient must collapse the
// churn cycle AND the root into exactly 3 states (work-pending,
// pass-pending, idle-with-tau-self-loop), where the legacy fresh-root
// form paid a 4th state. In an n-station ring the extra root state
// multiplied the product pair space by up to 2^(n-1).
func TestQuotientCongruenceIdleStationRegression(t *testing.T) {
	f := buildIdleStation(3)
	q, _, err := core.QuotientCongruence(f)
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := core.ObservationCongruent(f, q); err != nil || !ok {
		t.Fatalf("idle station quotient not ≈ᶜ to station (%v, %v)", ok, err)
	}
	if got := q.NumStates(); got != 3 {
		t.Fatalf("idle station minimal quotient has %d states, want 3", got)
	}
	loop := false
	for _, to := range q.Dest(q.Start(), fsp.Tau) {
		if to == q.Start() {
			loop = true
		}
	}
	if !loop {
		t.Fatal("idle station quotient root has no tau self-loop — root condition witness missing")
	}
	legacy, _, err := core.QuotientCongruence(f, core.WithFreshRootQuotient())
	if err != nil {
		t.Fatal(err)
	}
	if got := legacy.NumStates(); got != 4 {
		t.Fatalf("legacy idle station quotient has %d states, want 4 (fresh root)", got)
	}
	if ok, err := core.ObservationCongruent(q, legacy); err != nil || !ok {
		t.Fatalf("minimal and legacy idle station quotients not ≈ᶜ (%v, %v)", ok, err)
	}
}
