package core_test

import (
	"math/rand"
	"testing"

	"ccs/internal/core"
	"ccs/internal/fsp"
	"ccs/internal/gen"
)

func buildTauChain() *fsp.FSP {
	b := fsp.NewBuilder("tau.a")
	b.AddStates(3)
	b.ArcName(0, fsp.TauName, 1)
	b.ArcName(1, "a", 2)
	return b.MustBuild()
}

// TestQuotientCongruenceRootCase: tau·a is the canonical separation. Its
// ≈-quotient is the plain chain a (the initial tau vanishes inside the
// root class), which is ≈ but NOT ≈ᶜ to tau·a; the congruence quotient
// must keep the root condition — at zero extra states (root tau
// self-loop), while the legacy fresh-root form pays exactly one.
func TestQuotientCongruenceRootCase(t *testing.T) {
	f := buildTauChain()
	weak, _, err := core.QuotientWeak(f)
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := core.ObservationCongruent(f, weak); err != nil {
		t.Fatal(err)
	} else if ok {
		t.Fatal("test premise broken: weak quotient of tau.a is ≈ᶜ to it")
	}
	cong, _, err := core.QuotientCongruence(f)
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := core.ObservationCongruent(f, cong); err != nil {
		t.Fatal(err)
	} else if !ok {
		t.Fatal("congruence quotient of tau.a is not ≈ᶜ to it")
	}
	if got, want := cong.NumStates(), weak.NumStates(); got != want {
		t.Errorf("congruence quotient has %d states, want %d (one per ≈-class)", got, want)
	}
	legacy, _, err := core.QuotientCongruence(f, core.WithFreshRootQuotient())
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := core.ObservationCongruent(f, legacy); err != nil {
		t.Fatal(err)
	} else if !ok {
		t.Fatal("legacy congruence quotient of tau.a is not ≈ᶜ to it")
	}
	if got, want := legacy.NumStates(), weak.NumStates()+1; got != want {
		t.Errorf("legacy congruence quotient has %d states, want %d (weak quotient + fresh root)", got, want)
	}
}

// TestQuotientCongruenceStableRoot: with no initial tau into the root
// class, the congruence quotient is exactly the weak quotient.
func TestQuotientCongruenceStableRoot(t *testing.T) {
	f := gen.BufferCell(3)
	weak, _, err := core.QuotientWeak(f)
	if err != nil {
		t.Fatal(err)
	}
	cong, _, err := core.QuotientCongruence(f)
	if err != nil {
		t.Fatal(err)
	}
	if cong.NumStates() != weak.NumStates() {
		t.Errorf("stable-root congruence quotient has %d states, weak quotient %d", cong.NumStates(), weak.NumStates())
	}
	if ok, err := core.ObservationCongruent(f, cong); err != nil || !ok {
		t.Fatalf("congruence quotient not ≈ᶜ to cell: %v %v", ok, err)
	}
}

// TestQuotientCongruenceProperty: across the random generator, the
// congruence quotient must be ≈ᶜ (hence ≈) to its source and exactly the
// size of the ≈-quotient (one state per class); the legacy fresh-root
// form stays within one extra state and must agree on the verdict. This
// is the soundness contract the minimize-then-compose pipeline leans on.
func TestQuotientCongruenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 60; i++ {
		f := gen.Random(rng, 2+rng.Intn(8), 2+rng.Intn(16), 3, 0.3)
		cong, _, err := core.QuotientCongruence(f)
		if err != nil {
			t.Fatal(err)
		}
		if ok, err := core.ObservationCongruent(f, cong); err != nil {
			t.Fatal(err)
		} else if !ok {
			t.Fatalf("iter %d: quotient not ≈ᶜ to source\n%s", i, fsp.FormatString(f))
		}
		weak, _, err := core.QuotientWeak(f)
		if err != nil {
			t.Fatal(err)
		}
		if cong.NumStates() != weak.NumStates() {
			t.Fatalf("iter %d: congruence quotient %d states, weak %d", i, cong.NumStates(), weak.NumStates())
		}
		legacy, _, err := core.QuotientCongruence(f, core.WithFreshRootQuotient())
		if err != nil {
			t.Fatal(err)
		}
		if ok, err := core.ObservationCongruent(f, legacy); err != nil {
			t.Fatal(err)
		} else if !ok {
			t.Fatalf("iter %d: legacy quotient not ≈ᶜ to source\n%s", i, fsp.FormatString(f))
		}
		if legacy.NumStates() > weak.NumStates()+1 {
			t.Fatalf("iter %d: legacy congruence quotient %d states, weak %d", i, legacy.NumStates(), weak.NumStates())
		}
	}
}

// TestQuotientCongruenceTauSelfLoop: a tau self-loop at the root is an
// in-class tau move, so the fix must trigger and the result must stay ≈ᶜ.
func TestQuotientCongruenceTauSelfLoop(t *testing.T) {
	b := fsp.NewBuilder("spin+a")
	b.AddStates(2)
	b.ArcName(0, fsp.TauName, 0)
	b.ArcName(0, "a", 1)
	f := b.MustBuild()
	cong, _, err := core.QuotientCongruence(f)
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := core.ObservationCongruent(f, cong); err != nil || !ok {
		t.Fatalf("self-loop root: quotient not ≈ᶜ (%v, %v)", ok, err)
	}
}
