package core

import (
	"fmt"

	"ccs/internal/fsp"
	"ccs/internal/partition"
)

// QuotientStrong returns the quotient of f modulo strong equivalence: one
// state per equivalence class, with an arc (B, a, C) whenever some (hence,
// by bisimilarity, every) member of B has an a-arc into C. The quotient is
// the state-minimal process strongly equivalent to f, the CCS analogue of
// DFA minimization. The returned map sends each original state to its class.
func QuotientStrong(f *fsp.FSP, opts ...Option) (*fsp.FSP, []fsp.State, error) {
	p := StrongPartition(f, opts...)
	q, m, err := quotient(f, p)
	if err != nil {
		return nil, nil, fmt.Errorf("strong quotient: %w", err)
	}
	return q, m, nil
}

// quotient collapses f along an equivalence partition that is a strong
// bisimulation. Every class member has the same arcs up to classes, so a
// single representative per class suffices.
func quotient(f *fsp.FSP, p *partition.Partition) (*fsp.FSP, []fsp.State, error) {
	b := fsp.NewBuilderWith(f.Name()+"/~", f.Alphabet().Clone(), f.Vars().Clone())
	b.AddStates(p.NumBlocks())
	b.SetStart(fsp.State(p.Block(int32(f.Start()))))

	reps := make([]fsp.State, p.NumBlocks())
	for i := range reps {
		reps[i] = fsp.None
	}
	mapping := make([]fsp.State, f.NumStates())
	for s := 0; s < f.NumStates(); s++ {
		blk := p.Block(int32(s))
		mapping[s] = fsp.State(blk)
		if reps[blk] == fsp.None {
			reps[blk] = fsp.State(s)
		}
	}
	for blk, rep := range reps {
		for _, a := range f.Arcs(rep) {
			b.Arc(fsp.State(blk), a.Act, fsp.State(p.Block(int32(a.To))))
		}
		for _, id := range f.Ext(rep).IDs() {
			b.Extend(fsp.State(blk), f.Vars().Name(id))
		}
	}
	q, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return q, mapping, nil
}

// QuotientWeak returns a process observationally equivalent to f with one
// state per ≈-class. Arcs are derived from the saturated FSP of a class
// representative: weak sigma-derivatives become sigma-arcs and weak epsilon
// derivatives that leave the class become tau-arcs. The result is
// tau-minimal in the sense that tau arcs only connect distinct classes.
func QuotientWeak(f *fsp.FSP, opts ...Option) (*fsp.FSP, []fsp.State, error) {
	sat, eps, err := fsp.Saturate(f)
	if err != nil {
		return nil, nil, fmt.Errorf("weak quotient: %w", err)
	}
	p := StrongPartition(sat, opts...)

	b := fsp.NewBuilderWith(f.Name()+"/≈", f.Alphabet().Clone(), f.Vars().Clone())
	b.AddStates(p.NumBlocks())
	b.SetStart(fsp.State(p.Block(int32(f.Start()))))

	reps := make([]fsp.State, p.NumBlocks())
	for i := range reps {
		reps[i] = fsp.None
	}
	mapping := make([]fsp.State, f.NumStates())
	for s := 0; s < f.NumStates(); s++ {
		blk := p.Block(int32(s))
		mapping[s] = fsp.State(blk)
		if reps[blk] == fsp.None {
			reps[blk] = fsp.State(s)
		}
	}
	for blk, rep := range reps {
		for _, a := range sat.Arcs(rep) {
			toBlk := fsp.State(p.Block(int32(a.To)))
			if a.Act == eps {
				// Weak epsilon derivative: a tau edge in the quotient, but
				// only when it leaves the class (self tau loops are
				// observationally vacuous).
				if toBlk != fsp.State(blk) {
					b.Arc(fsp.State(blk), fsp.Tau, toBlk)
				}
				continue
			}
			b.ArcName(fsp.State(blk), sat.Alphabet().Name(a.Act), toBlk)
		}
		for _, id := range f.Ext(rep).IDs() {
			b.Extend(fsp.State(blk), f.Vars().Name(id))
		}
	}
	q, err := b.Build()
	if err != nil {
		return nil, nil, fmt.Errorf("weak quotient: %w", err)
	}
	return q, mapping, nil
}
