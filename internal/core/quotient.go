package core

import (
	"fmt"

	"ccs/internal/fsp"
	"ccs/internal/partition"
)

// QuotientStrong returns the quotient of f modulo strong equivalence: one
// state per equivalence class, with an arc (B, a, C) whenever some (hence,
// by bisimilarity, every) member of B has an a-arc into C. The quotient is
// the state-minimal process strongly equivalent to f, the CCS analogue of
// DFA minimization. The returned map sends each original state to its class.
func QuotientStrong(f *fsp.FSP, opts ...Option) (*fsp.FSP, []fsp.State, error) {
	p := StrongPartition(f, opts...)
	q, m, err := quotient(f, p)
	if err != nil {
		return nil, nil, fmt.Errorf("strong quotient: %w", err)
	}
	return q, m, nil
}

// quotient collapses f along an equivalence partition that is a strong
// bisimulation. Every class member has the same arcs up to classes, so a
// single representative per class suffices.
func quotient(f *fsp.FSP, p *partition.Partition) (*fsp.FSP, []fsp.State, error) {
	b := fsp.NewBuilderWith(f.Name()+"/~", f.Alphabet().Clone(), f.Vars().Clone())
	b.AddStates(p.NumBlocks())
	b.SetStart(fsp.State(p.Block(int32(f.Start()))))

	reps := make([]fsp.State, p.NumBlocks())
	for i := range reps {
		reps[i] = fsp.None
	}
	mapping := make([]fsp.State, f.NumStates())
	for s := 0; s < f.NumStates(); s++ {
		blk := p.Block(int32(s))
		mapping[s] = fsp.State(blk)
		if reps[blk] == fsp.None {
			reps[blk] = fsp.State(s)
		}
	}
	for blk, rep := range reps {
		for _, a := range f.Arcs(rep) {
			b.Arc(fsp.State(blk), a.Act, fsp.State(p.Block(int32(a.To))))
		}
		for _, id := range f.Ext(rep).IDs() {
			b.Extend(fsp.State(blk), f.Vars().Name(id))
		}
	}
	q, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return q, mapping, nil
}

// QuotientWeak returns a process observationally equivalent to f with one
// state per ≈-class. Arcs are derived from the saturated FSP of a class
// representative: weak sigma-derivatives become sigma-arcs and weak epsilon
// derivatives that leave the class become tau-arcs. The result is
// tau-minimal in the sense that tau arcs only connect distinct classes.
func QuotientWeak(f *fsp.FSP, opts ...Option) (*fsp.FSP, []fsp.State, error) {
	q, m, err := weakQuotient(f, "/≈", false, opts)
	if err != nil {
		return nil, nil, fmt.Errorf("weak quotient: %w", err)
	}
	return q, m, nil
}

// QuotientCongruence returns a process observation-congruent (≈ᶜ) to f.
// It is the ≈-quotient except possibly at the root: merging the start
// state into its ≈-class can erase an initial tau (the tau·a ≈ a but
// tau·a ≉ᶜ a separation), so when the start has a direct tau move into
// its own class the quotient root gets a tau self-loop, which restores
// the strengthened root condition without adding a state. The result
// therefore has exactly one state per ≈-class — it is ≈ᶜ-minimal: no two
// distinct output states are related by ≈ᶜ (they are not even ≈, being
// distinct classes, and ≈ᶜ ⊆ ≈).
//
// WithFreshRootQuotient restores the legacy shape (fresh duplicated root,
// one extra state) for baseline comparisons.
//
// ≈ᶜ is a congruence for every CCS operator, so the output can replace f
// inside any compose.Network (composition, restriction, relabeling) for
// any equivalence coarser than ≈ᶜ — the soundness fact behind the
// engine's minimize-then-compose pipeline.
func QuotientCongruence(f *fsp.FSP, opts ...Option) (*fsp.FSP, []fsp.State, error) {
	q, m, err := weakQuotient(f, "/≈ᶜ", true, opts)
	if err != nil {
		return nil, nil, fmt.Errorf("congruence quotient: %w", err)
	}
	return q, m, nil
}

// weakQuotient collapses f along the ≈-partition of its states. With
// rootFix set it additionally preserves observation congruence:
//
//   - If the start state p0 has no direct tau into its own ≈-class, the
//     plain quotient start Q0 already satisfies the root condition: every
//     tau arc of Q0 comes from a representative's epsilon derivative that
//     leaves the class, which p0 matches with a nonempty tau path, and a
//     stable p0 yields a stable Q0 (p0 could not leave its class silently).
//   - Otherwise Q0 gets a tau self-loop: p0's in-class tau is matched by
//     Q0 --tau--> Q0 (nonempty, derivative Q0 ≈ p0's in-class derivative),
//     and the loop itself is matched by that same in-class tau of p0.
//     Hence Q0 ≈ᶜ p0, at zero extra states. The loop is never redundant:
//     quotient tau arcs only connect distinct classes, and a nonempty tau
//     cycle Q0 → … → Q0 through other classes cannot exist (states with
//     mutual eps-reachability are weakly equivalent, so such classes
//     would have merged) — the root class can only witness the
//     strengthened root condition via the loop itself.
//   - Under WithFreshRootQuotient the legacy shape is produced instead: a
//     fresh root r duplicating the root class's arcs plus an explicit tau
//     arc into the root class C. p0's in-class tau is matched by
//     r --tau--> C (members ≈ C), r's copied arcs are weak moves of p0's
//     class, and r's extra tau is matched by p0's own in-class tau move.
func weakQuotient(f *fsp.FSP, suffix string, rootFix bool, opts []Option) (*fsp.FSP, []fsp.State, error) {
	cfg := newConfig(opts)
	sat, eps, err := fsp.Saturate(f)
	if err != nil {
		return nil, nil, err
	}
	p := StrongPartition(sat, opts...)

	rootBlk := p.Block(int32(f.Start()))
	rootTau := false
	if rootFix {
		for _, t := range f.Dest(f.Start(), fsp.Tau) {
			if p.Block(int32(t)) == rootBlk {
				rootTau = true
				break
			}
		}
	}
	legacyRoot := rootTau && cfg.freshRoot

	b := fsp.NewBuilderWith(f.Name()+suffix, f.Alphabet().Clone(), f.Vars().Clone())
	b.AddStates(p.NumBlocks())
	root := fsp.State(rootBlk)
	if legacyRoot {
		root = b.AddState()
	}
	b.SetStart(root)

	reps := make([]fsp.State, p.NumBlocks())
	for i := range reps {
		reps[i] = fsp.None
	}
	mapping := make([]fsp.State, f.NumStates())
	for s := 0; s < f.NumStates(); s++ {
		blk := p.Block(int32(s))
		mapping[s] = fsp.State(blk)
		if reps[blk] == fsp.None {
			reps[blk] = fsp.State(s)
		}
	}
	emit := func(at fsp.State, rep fsp.State, ownBlk fsp.State) {
		for _, a := range sat.Arcs(rep) {
			toBlk := fsp.State(p.Block(int32(a.To)))
			if a.Act == eps {
				// Weak epsilon derivative: a tau edge in the quotient, but
				// only when it leaves the class (self tau loops are
				// observationally vacuous).
				if toBlk != ownBlk {
					b.Arc(at, fsp.Tau, toBlk)
				}
				continue
			}
			b.ArcName(at, sat.Alphabet().Name(a.Act), toBlk)
		}
		for _, id := range f.Ext(rep).IDs() {
			b.Extend(at, f.Vars().Name(id))
		}
	}
	for blk, rep := range reps {
		emit(fsp.State(blk), rep, fsp.State(blk))
	}
	switch {
	case legacyRoot:
		// The fresh root duplicates the root class's arcs (dropping the
		// same in-class epsilons) and adds the explicit tau into it.
		emit(root, reps[rootBlk], fsp.State(rootBlk))
		b.Arc(root, fsp.Tau, fsp.State(rootBlk))
	case rootTau:
		// Minimal form: the self-loop restores the root condition in
		// place. emit never produces it (in-class epsilons are dropped),
		// so this is the root class's only tau back to itself.
		b.Arc(root, fsp.Tau, root)
	}
	q, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return q, mapping, nil
}
