package core

import (
	"fmt"

	"ccs/internal/fsp"
	"ccs/internal/partition"
)

// Observation congruence ≈ᶜ (Milner's "observational congruence", the
// relation axiomatized by the complete inference system that Section 2.3
// cites from Milner 1984): the largest congruence contained in ≈. It
// strengthens the root condition: every initial move of p — including tau
// moves — must be matched by a weak move of q that contains AT LEAST ONE
// transition, after which the derivatives are observationally equivalent.
// The classic separating example is tau·a ≈ a but tau·a ≉ᶜ a, because a
// cannot match the initial tau with a nonempty weak move to an a-state.

// ObservationCongruentStates reports p ≈ᶜ q for two states of f.
func ObservationCongruentStates(f *fsp.FSP, p, q fsp.State, opts ...Option) (bool, error) {
	weak, err := WeakPartition(f, opts...)
	if err != nil {
		return false, fmt.Errorf("observation congruence: %w", err)
	}
	if f.Ext(p) != f.Ext(q) {
		return false, nil
	}
	clo := fsp.TauClosure(f)
	return rootMatch(f, clo, weak, p, q) && rootMatch(f, clo, weak, q, p), nil
}

// rootMatch checks the asymmetric half of the root condition: every initial
// move of p is matched by a nonempty weak move of q into the same ≈-class.
func rootMatch(f *fsp.FSP, clo fsp.Closure, weak *partition.Partition, p, q fsp.State) bool {
	for _, a := range f.Arcs(p) {
		var candidates []fsp.State
		if a.Act == fsp.Tau {
			candidates = tauDerivativesNonempty(f, clo, q)
		} else {
			candidates = fsp.WeakDest(f, clo, q, a.Act)
		}
		matched := false
		for _, cand := range candidates {
			if weak.Same(int32(a.To), int32(cand)) {
				matched = true
				break
			}
		}
		if !matched {
			return false
		}
	}
	return true
}

// tauDerivativesNonempty returns the states reachable from q by at least
// one tau move (q ==eps=> · --tau--> · ==eps=>).
func tauDerivativesNonempty(f *fsp.FSP, clo fsp.Closure, q fsp.State) []fsp.State {
	seen := map[fsp.State]struct{}{}
	for _, mid := range clo.Of(q) {
		for _, t := range f.Dest(mid, fsp.Tau) {
			for _, end := range clo.Of(t) {
				seen[end] = struct{}{}
			}
		}
	}
	out := make([]fsp.State, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	return out
}

// ObservationCongruent reports whether the start states of f and g are
// observation congruent.
func ObservationCongruent(f, g *fsp.FSP, opts ...Option) (bool, error) {
	u, off, err := fsp.DisjointUnion(f, g)
	if err != nil {
		return false, fmt.Errorf("observation congruence: %w", err)
	}
	return ObservationCongruentStates(u, f.Start(), off+g.Start(), opts...)
}
