package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"ccs/internal/fsp"
)

// genProc generates random general FSPs for equivalence properties.
type genProc struct{ f *fsp.FSP }

// Generate implements quick.Generator.
func (genProc) Generate(rng *rand.Rand, size int) reflect.Value {
	n := 1 + rng.Intn(7)
	b := fsp.NewBuilder("q")
	b.AddStates(n)
	b.SetStart(fsp.State(rng.Intn(n)))
	names := []string{"a", "b", fsp.TauName}
	arcs := rng.Intn(3 * n)
	for i := 0; i < arcs; i++ {
		b.ArcName(fsp.State(rng.Intn(n)), names[rng.Intn(len(names))], fsp.State(rng.Intn(n)))
	}
	for s := 0; s < n; s++ {
		if rng.Intn(2) == 0 {
			b.Accept(fsp.State(s))
		}
	}
	return reflect.ValueOf(genProc{f: b.MustBuild()})
}

var quickCfg = &quick.Config{MaxCount: 120}

// Property: strong equivalence refines weak equivalence (every strong
// class sits inside a weak class) — the ≈ ⊆ ~ ... direction of Table II,
// i.e. ~ ⊆ ≈ as relations.
func TestQuickStrongRefinesWeak(t *testing.T) {
	prop := func(g genProc) bool {
		f := g.f
		strong := StrongPartition(f)
		weak, err := WeakPartition(f)
		if err != nil {
			return false
		}
		return strong.Refines(weak)
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// Property: the ≃_k ladder matches RefineSteps semantics: ≃_{k+1} refines
// ≃_k, and the fixed point equals the weak partition (Prop 2.2.1c).
func TestQuickLimitedLadderConvergesToWeak(t *testing.T) {
	prop := func(g genProc) bool {
		f := g.f
		weak, err := WeakPartition(f)
		if err != nil {
			return false
		}
		prev, _, err := LimitedPartition(f, 0)
		if err != nil {
			return false
		}
		for k := 1; k <= f.NumStates()+1; k++ {
			cur, _, err := LimitedPartition(f, k)
			if err != nil {
				return false
			}
			if !cur.Refines(prev) {
				return false
			}
			prev = cur
		}
		return prev.Equal(weak)
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// Property: quotients are equivalent to the original and idempotent
// (quotienting a quotient changes nothing).
func TestQuickQuotientStrong(t *testing.T) {
	prop := func(g genProc) bool {
		f := g.f
		q, mapping, err := QuotientStrong(f)
		if err != nil {
			return false
		}
		if len(mapping) != f.NumStates() {
			return false
		}
		eq, err := StrongEquivalent(f, q)
		if err != nil || !eq {
			return false
		}
		q2, _, err := QuotientStrong(q)
		if err != nil {
			return false
		}
		return q2.NumStates() == q.NumStates()
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// Property: the weak quotient is observationally equivalent to the
// original and no larger than the weak class count.
func TestQuickQuotientWeak(t *testing.T) {
	prop := func(g genProc) bool {
		f := g.f
		weak, err := WeakPartition(f)
		if err != nil {
			return false
		}
		q, _, err := QuotientWeak(f)
		if err != nil {
			return false
		}
		if q.NumStates() != weak.NumBlocks() {
			return false
		}
		eq, err := WeakEquivalent(f, q)
		return err == nil && eq
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// Property: equivalence of start states is invariant under state
// renumbering of either operand.
func TestQuickRenumberInvariance(t *testing.T) {
	prop := func(a, b genProc, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		perm := make([]fsp.State, b.f.NumStates())
		for i, v := range rng.Perm(b.f.NumStates()) {
			perm[i] = fsp.State(v)
		}
		rb, err := fsp.Renumber(b.f, perm)
		if err != nil {
			return false
		}
		s1, err := StrongEquivalent(a.f, b.f)
		if err != nil {
			return false
		}
		s2, err := StrongEquivalent(a.f, rb)
		if err != nil {
			return false
		}
		w1, err := WeakEquivalent(a.f, b.f)
		if err != nil {
			return false
		}
		w2, err := WeakEquivalent(a.f, rb)
		if err != nil {
			return false
		}
		return s1 == s2 && w1 == w2
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// Property: equivalence is symmetric and reflexive at the facade level.
func TestQuickEquivalenceRelationLaws(t *testing.T) {
	prop := func(a, b genProc) bool {
		refl, err := StrongEquivalent(a.f, a.f)
		if err != nil || !refl {
			return false
		}
		ab, err := StrongEquivalent(a.f, b.f)
		if err != nil {
			return false
		}
		ba, err := StrongEquivalent(b.f, a.f)
		if err != nil {
			return false
		}
		wab, err := WeakEquivalent(a.f, b.f)
		if err != nil {
			return false
		}
		wba, err := WeakEquivalent(b.f, a.f)
		if err != nil {
			return false
		}
		return ab == ba && wab == wba
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}
