package core

import (
	"strings"
	"testing"

	"ccs/internal/fsp"
)

// epsCollision builds a process whose alphabet already contains the
// saturation epsilon name, to exercise error propagation.
func epsCollision() *fsp.FSP {
	b := fsp.NewBuilder("bad")
	b.AddStates(2)
	b.ArcName(0, fsp.EpsilonName, 1)
	return b.MustBuild()
}

func TestWeakErrorPropagation(t *testing.T) {
	bad := epsCollision()
	if _, err := WeakPartition(bad); err == nil {
		t.Error("WeakPartition accepted ε-colliding alphabet")
	}
	if _, err := WeakEquivalent(bad, bad); err == nil {
		t.Error("WeakEquivalent accepted ε-colliding alphabet")
	}
	if _, _, err := LimitedPartition(bad, 1); err == nil {
		t.Error("LimitedPartition accepted ε-colliding alphabet")
	}
	if _, _, err := QuotientWeak(bad); err == nil {
		t.Error("QuotientWeak accepted ε-colliding alphabet")
	}
	if _, err := ObservationCongruent(bad, bad); err == nil {
		t.Error("ObservationCongruent accepted ε-colliding alphabet")
	}
	if err, want := func() error {
		_, err := WeakPartition(bad)
		return err
	}(), "observational equivalence"; err == nil || !strings.Contains(err.Error(), want) {
		t.Errorf("error %v should mention %q", err, want)
	}
}

func TestLimitedPartitionZeroRounds(t *testing.T) {
	f := chain("f", 2)
	p, rounds, err := LimitedPartition(f, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rounds != 0 {
		t.Errorf("rounds = %d, want 0", rounds)
	}
	// ≃_0 groups by extension: all states accepting -> one block.
	if p.NumBlocks() != 1 {
		t.Errorf("≃_0 blocks = %d, want 1", p.NumBlocks())
	}
}

func TestQuotientPreservesName(t *testing.T) {
	f := chain("named", 1)
	q, _, err := QuotientStrong(f)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(q.Name(), "named") {
		t.Errorf("quotient name = %q", q.Name())
	}
}

func TestStrongPartitionSingleState(t *testing.T) {
	b := fsp.NewBuilder("one")
	b.AddStates(1)
	f := b.MustBuild()
	p := StrongPartition(f)
	if p.NumBlocks() != 1 || p.Len() != 1 {
		t.Errorf("single state partition wrong")
	}
	q, mapping, err := QuotientStrong(f)
	if err != nil {
		t.Fatal(err)
	}
	if q.NumStates() != 1 || mapping[0] != 0 {
		t.Errorf("single state quotient wrong")
	}
}

func TestSelfLoopTauProcess(t *testing.T) {
	// A pure tau self-loop is weakly equivalent to a dead state.
	b1 := fsp.NewBuilder("spin")
	b1.AddStates(1)
	b1.ArcName(0, fsp.TauName, 0)
	spin := b1.MustBuild()
	b2 := fsp.NewBuilder("dead")
	b2.AddStates(1)
	dead := b2.MustBuild()
	eq, err := WeakEquivalent(spin, dead)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Errorf("tau self-loop must be ≈ to a dead state (divergence-blind)")
	}
}
