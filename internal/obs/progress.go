package obs

import (
	"context"
	"time"
)

// OTFSnapshot is a point-in-time sample of a running on-the-fly
// exploration, delivered on the progress hook (Options.Progress or a
// WithOTFProgress context). One final snapshot with Final=true is always
// delivered when the exploration ends, even if it finished inside the
// first sampling interval.
type OTFSnapshot struct {
	Elapsed       time.Duration // since exploration started
	Workers       int           // scheduler width
	Pairs         int64         // pairs interned in the visited table (occupancy)
	Explored      int64         // pairs fully processed
	Steals        int64         // successful deque steals so far
	ActiveBatches int64         // batches queued or in flight right now
	DequeDepths   []int         // per-worker deque depth (stealing scheduler only)
	SpecSubsets   int           // interned determinized-spec subsets (0 when not determinizing)
	Final         bool          // true on the last snapshot of the run
}

// Rate returns explored pairs per second over the sample's lifetime.
func (s OTFSnapshot) Rate() float64 {
	sec := s.Elapsed.Seconds()
	if sec <= 0 {
		return 0
	}
	return float64(s.Explored) / sec
}

// OTFProgressFunc receives progress snapshots. It is called from the
// sampler goroutine; keep it fast and do not call back into the checker.
type OTFProgressFunc func(OTFSnapshot)

type otfProgressKey struct{}

type otfProgress struct {
	fn    OTFProgressFunc
	every time.Duration
}

// WithOTFProgress asks any on-the-fly exploration run under the returned
// context to deliver progress snapshots to fn, roughly every interval
// (0 = the checker's default). This threads the hook through the facade
// and engine without widening their signatures.
func WithOTFProgress(ctx context.Context, fn OTFProgressFunc, every time.Duration) context.Context {
	return context.WithValue(ctx, otfProgressKey{}, &otfProgress{fn: fn, every: every})
}

// OTFProgressFrom returns the context's progress hook and interval, or
// (nil, 0).
func OTFProgressFrom(ctx context.Context) (OTFProgressFunc, time.Duration) {
	p, _ := ctx.Value(otfProgressKey{}).(*otfProgress)
	if p == nil {
		return nil, 0
	}
	return p.fn, p.every
}
