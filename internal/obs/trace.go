package obs

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key/value annotation on a span (route taken, pairs
// explored, cache tier hit). Values are strings so the tracer stays
// allocation-simple; use A/AInt to build them.
type Attr struct {
	Key   string
	Value string
}

// A builds a string attribute.
func A(key, value string) Attr { return Attr{Key: key, Value: value} }

// AInt builds an integer attribute.
func AInt(key string, v int64) Attr { return Attr{Key: key, Value: fmt.Sprintf("%d", v)} }

// Span is one completed phase of a query: its name, when it started
// (offset from the trace's birth) and how long it ran. Spans are flat
// and sequential by design — a phase never wraps code that records its
// own spans — so the durations of a trace's spans sum to roughly the
// query's wall time.
type Span struct {
	Phase    string
	Start    time.Duration
	Duration time.Duration
	Attrs    []Attr
}

// Trace collects the phase spans of one query under a single trace ID.
// All methods are safe on a nil receiver (the disabled path) and safe
// for concurrent use — an abandoned query goroutine may still be
// appending spans while the timeout path snapshots the trace.
type Trace struct {
	id    string
	birth time.Time

	mu    sync.Mutex
	spans []Span
}

// traceEver flips to true on the first NewTrace in the process. TraceFrom
// checks it before touching the context, so a process that never traces
// pays one atomic load per candidate phase and no context-chain walk.
var traceEver atomic.Bool

// NewTrace starts a trace. An empty id draws a fresh one.
func NewTrace(id string) *Trace {
	if id == "" {
		id = NewTraceID()
	}
	traceEver.Store(true)
	return &Trace{id: id, birth: time.Now()}
}

// ID returns the trace ID ("" on nil).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// ActiveSpan is a phase in flight; End completes it. Nil-safe.
type ActiveSpan struct {
	t     *Trace
	phase string
	t0    time.Time
}

// Start opens a phase span. On a nil trace it returns a nil span whose
// End is a no-op, so call sites need no conditionals.
func (t *Trace) Start(phase string) *ActiveSpan {
	if t == nil {
		return nil
	}
	return &ActiveSpan{t: t, phase: phase, t0: time.Now()}
}

// End completes the span with optional attributes.
func (sp *ActiveSpan) End(attrs ...Attr) {
	if sp == nil {
		return
	}
	now := time.Now()
	s := Span{
		Phase:    sp.phase,
		Start:    sp.t0.Sub(sp.t.birth),
		Duration: now.Sub(sp.t0),
		Attrs:    attrs,
	}
	sp.t.mu.Lock()
	sp.t.spans = append(sp.t.spans, s)
	sp.t.mu.Unlock()
}

// Spans returns a snapshot of the completed spans in completion order.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

type traceKey struct{}

// WithTrace attaches t to the context so phases downstream record into it.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFrom returns the context's trace, or nil. The common no-trace
// process never walks the context chain: a single atomic load short-
// circuits it.
func TraceFrom(ctx context.Context) *Trace {
	if !traceEver.Load() {
		return nil
	}
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

type requestIDKey struct{}

// WithRequestID stamps the server-assigned request/trace ID on the
// context; the facade seeds the query's Trace with it so the ID in the
// report matches the X-CCS-Trace response header.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestIDFrom returns the context's request ID, or "".
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

var (
	traceSeq  atomic.Uint64
	traceSeed = uint64(time.Now().UnixNano())
)

// NewTraceID returns a 16-hex-digit process-unique ID: a counter mixed
// through a splitmix64 finalizer, seeded per process. No crypto/rand —
// these IDs correlate logs, they are not secrets.
func NewTraceID() string {
	x := traceSeed + traceSeq.Add(1)*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return fmt.Sprintf("%016x", x)
}
