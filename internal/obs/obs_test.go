package obs_test

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"ccs/internal/obs"
)

// TestCounterGetOrCreate: asking twice for a name returns the same
// handle, and concurrent increments from many goroutines all land.
func TestCounterGetOrCreate(t *testing.T) {
	r := obs.NewRegistry()
	c1 := r.Counter("test_total", "help")
	c2 := r.Counter("test_total", "other help ignored")
	if c1 != c2 {
		t.Fatalf("get-or-create returned distinct handles")
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c1.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c1.Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
}

// TestTypeConflictPanics: re-registering a name as a different type is a
// programming error and must panic loudly, not silently alias.
func TestTypeConflictPanics(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("clash_total", "")
	defer func() {
		if recover() == nil {
			t.Fatalf("no panic on type conflict")
		}
	}()
	r.Gauge("clash_total", "")
}

// TestVecSeries: label values select distinct series; the same values
// return the same series.
func TestVecSeries(t *testing.T) {
	r := obs.NewRegistry()
	v := r.CounterVec("req_total", "", "route", "code")
	a := v.With("/v1/check", "200")
	b := v.With("/v1/check", "429")
	if a == b {
		t.Fatalf("distinct label values aliased")
	}
	if v.With("/v1/check", "200") != a {
		t.Fatalf("same label values returned a fresh series")
	}
	a.Add(3)
	b.Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE req_total counter",
		`req_total{route="/v1/check",code="200"} 3`,
		`req_total{route="/v1/check",code="429"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, out)
		}
	}
}

// TestHistogramExposition: cumulative buckets, +Inf, _sum and _count.
func TestHistogramExposition(t *testing.T) {
	r := obs.NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 2`,
		`lat_seconds_bucket{le="+Inf"} 3`,
		"lat_seconds_sum 5.55",
		"lat_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, out)
		}
	}
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
}

// TestGaugeFunc: computed at scrape time, first registration wins.
func TestGaugeFunc(t *testing.T) {
	r := obs.NewRegistry()
	n := 7
	r.GaugeFunc("live_items", "", func() float64 { return float64(n) })
	r.GaugeFunc("live_items", "", func() float64 { return -1 })
	n = 42
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "live_items 42") {
		t.Fatalf("gauge func not scraped live:\n%s", sb.String())
	}
}

// TestLabelEscaping: quotes, backslashes and newlines in label values
// must not corrupt the exposition.
func TestLabelEscaping(t *testing.T) {
	r := obs.NewRegistry()
	r.CounterVec("esc_total", "", "v").With("a\"b\\c\nd").Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `esc_total{v="a\"b\\c\nd"} 1`) {
		t.Fatalf("bad escaping:\n%s", sb.String())
	}
}

// TestNilTrace: every tracer entry point must be a no-op on nil — the
// disabled path has no conditionals at call sites.
func TestNilTrace(t *testing.T) {
	var tr *obs.Trace
	tr.Start("phase").End(obs.A("k", "v"))
	if tr.ID() != "" || tr.Spans() != nil {
		t.Fatalf("nil trace not inert")
	}
	if got := obs.TraceFrom(context.Background()); got != nil {
		t.Fatalf("TraceFrom(background) = %v", got)
	}
}

// TestTraceSpans: spans record phase, ordering, attrs, and flow through
// the context.
func TestTraceSpans(t *testing.T) {
	tr := obs.NewTrace("")
	if tr.ID() == "" {
		t.Fatalf("empty trace ID")
	}
	ctx := obs.WithTrace(context.Background(), tr)
	got := obs.TraceFrom(ctx)
	if got != tr {
		t.Fatalf("TraceFrom did not return the installed trace")
	}
	sp := got.Start("parse")
	time.Sleep(2 * time.Millisecond)
	sp.End(obs.AInt("pairs", 12))
	got.Start("solve").End()
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	if spans[0].Phase != "parse" || spans[1].Phase != "solve" {
		t.Fatalf("phase order: %q, %q", spans[0].Phase, spans[1].Phase)
	}
	if spans[0].Duration <= 0 {
		t.Fatalf("non-positive duration")
	}
	if len(spans[0].Attrs) != 1 || spans[0].Attrs[0].Key != "pairs" || spans[0].Attrs[0].Value != "12" {
		t.Fatalf("attrs = %v", spans[0].Attrs)
	}
	if spans[1].Start < spans[0].Start {
		t.Fatalf("span starts out of order")
	}
}

// TestTraceConcurrent: spans appended from many goroutines while another
// snapshots — exercises the mutex under -race.
func TestTraceConcurrent(t *testing.T) {
	tr := obs.NewTrace("fixed-id")
	if tr.ID() != "fixed-id" {
		t.Fatalf("ID = %q", tr.ID())
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Start("work").End()
				_ = tr.Spans()
			}
		}()
	}
	wg.Wait()
	if got := len(tr.Spans()); got != 400 {
		t.Fatalf("spans = %d, want 400", got)
	}
}

// TestTraceIDUnique: concurrent ID draws never collide.
func TestTraceIDUnique(t *testing.T) {
	const per = 500
	var mu sync.Mutex
	seen := make(map[string]bool)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ids := make([]string, per)
			for i := range ids {
				ids[i] = obs.NewTraceID()
			}
			mu.Lock()
			defer mu.Unlock()
			for _, id := range ids {
				if seen[id] {
					t.Errorf("duplicate trace ID %s", id)
				}
				seen[id] = true
			}
		}()
	}
	wg.Wait()
	if len(seen) != 4*per {
		t.Fatalf("ids = %d, want %d", len(seen), 4*per)
	}
}

// TestRequestID round-trips through the context.
func TestRequestID(t *testing.T) {
	ctx := obs.WithRequestID(context.Background(), "abc123")
	if got := obs.RequestIDFrom(ctx); got != "abc123" {
		t.Fatalf("request ID = %q", got)
	}
	if got := obs.RequestIDFrom(context.Background()); got != "" {
		t.Fatalf("background request ID = %q", got)
	}
}

// TestOTFProgressContext: the hook and interval round-trip; the rate
// helper divides sanely.
func TestOTFProgressContext(t *testing.T) {
	if fn, _ := obs.OTFProgressFrom(context.Background()); fn != nil {
		t.Fatalf("background context has a progress hook")
	}
	var got []obs.OTFSnapshot
	ctx := obs.WithOTFProgress(context.Background(), func(s obs.OTFSnapshot) {
		got = append(got, s)
	}, 123*time.Millisecond)
	fn, every := obs.OTFProgressFrom(ctx)
	if fn == nil || every != 123*time.Millisecond {
		t.Fatalf("hook round-trip failed (every=%v)", every)
	}
	fn(obs.OTFSnapshot{Explored: 100, Elapsed: 2 * time.Second, Final: true})
	if len(got) != 1 || !got[0].Final {
		t.Fatalf("snapshot not delivered: %v", got)
	}
	if r := got[0].Rate(); r != 50 {
		t.Fatalf("rate = %v, want 50", r)
	}
	if (obs.OTFSnapshot{}).Rate() != 0 {
		t.Fatalf("zero-elapsed rate not 0")
	}
}
