// Package obs is the repo's dependency-free observability layer: a
// metrics registry with Prometheus text exposition (counters, gauges,
// fixed-bucket histograms, with or without labels), a lightweight
// per-query span tracer, and a context-carried progress hook for the
// on-the-fly game. Everything is safe for concurrent use and built so
// the disabled path costs nothing measurable: metrics are plain atomics
// behind package-var handles, and the tracer's context lookup is gated
// by a single atomic load (see trace.go).
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DefBuckets returns the default latency histogram upper bounds, in
// seconds, spanning sub-millisecond quotient hits to multi-second
// saturations. Returned fresh so callers can append +Inf-free.
func DefBuckets() []float64 {
	return []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}
}

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n, which must not be negative.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed cumulative buckets. Each
// observation touches one bucket counter, the sum, and the count — all
// atomics, no locks.
type Histogram struct {
	upper  []float64      // sorted upper bounds; the implicit +Inf bucket follows
	counts []atomic.Int64 // len(upper)+1
	sum    atomic.Uint64  // float64 bits, CAS-accumulated
	count  atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.upper, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations so far.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values so far.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// family is one metric name: its metadata plus every labeled series
// registered under it. Unlabeled metrics are the single series with the
// empty key.
type family struct {
	name    string
	help    string
	typ     string
	labels  []string
	buckets []float64      // histograms only
	fn      func() float64 // GaugeFunc only; called at scrape time

	mu     sync.RWMutex
	series map[string]any // label-value key -> *Counter / *Gauge / *Histogram
	vals   map[string][]string
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. All getters are get-or-create: asking twice for the
// same name returns the same handle, so independent subsystems (or two
// servers in one test process) can share series without coordination.
// Re-registering a name with a different type or label set panics — that
// is a programming error, not a runtime condition.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry that the engine, store and
// server publish into.
func Default() *Registry { return defaultRegistry }

func (r *Registry) family(name, help, typ string, labels []string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s%v, was %s%v", name, typ, labels, f.typ, f.labels))
		}
		for i := range labels {
			if f.labels[i] != labels[i] {
				panic(fmt.Sprintf("obs: metric %q re-registered with labels %v, was %v", name, labels, f.labels))
			}
		}
		return f
	}
	f := &family{
		name:    name,
		help:    help,
		typ:     typ,
		labels:  append([]string(nil), labels...),
		buckets: append([]float64(nil), buckets...),
		series:  make(map[string]any),
		vals:    make(map[string][]string),
	}
	r.families[name] = f
	return f
}

// series returns the metric under key, creating it with mk on first use.
func (f *family) get(values []string, mk func() any) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	f.mu.RLock()
	m, ok := f.series[key]
	f.mu.RUnlock()
	if ok {
		return m
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.series[key]; ok {
		return m
	}
	m = mk()
	f.series[key] = m
	f.vals[key] = append([]string(nil), values...)
	return m
}

// Counter returns the unlabeled counter name, registering it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.family(name, help, typeCounter, nil, nil)
	return f.get(nil, func() any { return &Counter{} }).(*Counter)
}

// CounterVec is a counter family with labels; With picks a series.
type CounterVec struct{ f *family }

// CounterVec returns the labeled counter family name.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.family(name, help, typeCounter, labels, nil)}
}

// With returns the series for the given label values (in declaration
// order), creating it on first use.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.get(values, func() any { return &Counter{} }).(*Counter)
}

// Gauge returns the unlabeled gauge name.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.family(name, help, typeGauge, nil, nil)
	return f.get(nil, func() any { return &Gauge{} }).(*Gauge)
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// GaugeVec returns the labeled gauge family name.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.family(name, help, typeGauge, labels, nil)}
}

// With returns the series for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.get(values, func() any { return &Gauge{} }).(*Gauge)
}

// GaugeFunc registers a gauge whose value is computed by fn at scrape
// time (e.g. the size of a live cache). The first registration wins;
// later calls with the same name are no-ops, so restarting a subsystem
// in-process doesn't panic.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.family(name, help, typeGauge, nil, nil)
	f.mu.Lock()
	if f.fn == nil {
		f.fn = fn
	}
	f.mu.Unlock()
}

// Histogram returns the unlabeled histogram name with the given upper
// bounds (nil = DefBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	buckets = normBuckets(buckets)
	f := r.family(name, help, typeHistogram, nil, buckets)
	return f.get(nil, func() any { return newHistogram(f.buckets) }).(*Histogram)
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// HistogramVec returns the labeled histogram family name.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	buckets = normBuckets(buckets)
	return &HistogramVec{f: r.family(name, help, typeHistogram, labels, buckets)}
}

// With returns the series for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.get(values, func() any { return newHistogram(v.f.buckets) }).(*Histogram)
}

func normBuckets(b []float64) []float64 {
	if len(b) == 0 {
		b = DefBuckets()
	}
	b = append([]float64(nil), b...)
	sort.Float64s(b)
	return b
}

func newHistogram(upper []float64) *Histogram {
	return &Histogram{upper: upper, counts: make([]atomic.Int64, len(upper)+1)}
}

// WritePrometheus renders every family in text exposition format
// (version 0.0.4): families sorted by name, HELP and TYPE comment lines,
// histograms as cumulative _bucket{le=...} series plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, f := range fams {
		f.write(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func (f *family) write(b *strings.Builder) {
	f.mu.RLock()
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	fn := f.fn
	f.mu.RUnlock()
	sort.Strings(keys)

	if len(keys) == 0 && fn == nil {
		return // registered but never used; skip the empty family
	}
	if f.help != "" {
		fmt.Fprintf(b, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " "))
	}
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.typ)
	if fn != nil {
		fmt.Fprintf(b, "%s %s\n", f.name, formatFloat(fn()))
		return
	}
	for _, key := range keys {
		f.mu.RLock()
		m := f.series[key]
		vals := f.vals[key]
		f.mu.RUnlock()
		lbl := labelString(f.labels, vals, "")
		switch m := m.(type) {
		case *Counter:
			fmt.Fprintf(b, "%s%s %d\n", f.name, lbl, m.Value())
		case *Gauge:
			fmt.Fprintf(b, "%s%s %s\n", f.name, lbl, formatFloat(m.Value()))
		case *Histogram:
			var cum int64
			for i, ub := range m.upper {
				cum += m.counts[i].Load()
				fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, labelString(f.labels, vals, formatFloat(ub)), cum)
			}
			cum += m.counts[len(m.upper)].Load()
			fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, labelString(f.labels, vals, "+Inf"), cum)
			fmt.Fprintf(b, "%s_sum%s %s\n", f.name, lbl, formatFloat(m.Sum()))
			fmt.Fprintf(b, "%s_count%s %d\n", f.name, lbl, m.Count())
		}
	}
}

// labelString renders {k="v",...}; le, when non-empty, is appended as the
// histogram bucket bound. Returns "" for the unlabeled, non-bucket case.
func labelString(names, values []string, le string) string {
	if len(names) == 0 && le == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if le != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`le="`)
		b.WriteString(le)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
