package failures

import (
	"ccs/internal/fsp"
)

// Refines decides the failures refinement preorder of the CSP school the
// paper draws its failure semantics from (Brookes, Hoare & Roscoe 1984):
//
//	impl refines spec   iff   failures(impl) ⊆ failures(spec).
//
// Refinement is how failure semantics is used in practice: the
// implementation may be more deterministic (fewer refusals, fewer traces)
// than the specification but never exhibit a failure the specification
// forbids. Failure equivalence is mutual refinement.
//
// On inequivalence the witness carries a failure of impl that spec does
// not admit. Both processes must be restricted (Definition 2.2.4's model).
func Refines(spec *fsp.FSP, specStart fsp.State, impl *fsp.FSP, implStart fsp.State) (bool, *Witness, error) {
	if err := checkRestricted(spec); err != nil {
		return false, nil, err
	}
	if err := checkRestricted(impl); err != nil {
		return false, nil, err
	}
	if !spec.Alphabet().Equal(impl.Alphabet()) {
		u, off, err := fsp.DisjointUnion(spec, impl)
		if err != nil {
			return false, nil, err
		}
		return Refines(u, specStart, u, off+implStart)
	}

	semS := newSemantics(spec)
	semI := semS
	if impl != spec {
		semI = newSemantics(impl)
	}

	type node struct {
		ss, si []fsp.State
		parent int
		act    fsp.Action
	}
	trace := func(queue []node, i int) []fsp.Action {
		var rev []fsp.Action
		for queue[i].parent >= 0 {
			rev = append(rev, queue[i].act)
			i = queue[i].parent
		}
		for l, r := 0, len(rev)-1; l < r; l, r = l+1, r-1 {
			rev[l], rev[r] = rev[r], rev[l]
		}
		return rev
	}

	seen := map[string]bool{}
	queue := []node{{ss: semS.clo.Of(specStart), si: semI.clo.Of(implStart), parent: -1}}
	seen[stateKey(queue[0].ss)+"|"+stateKey(queue[0].si)] = true
	for head := 0; head < len(queue); head++ {
		cur := queue[head]
		// Every maximal refusal of impl must fit under some maximal
		// refusal of spec (downward-closure containment).
		rs := semS.maxRefusals(cur.ss)
		for _, ri := range semI.maxRefusals(cur.si) {
			within := false
			for _, r := range rs {
				if ri.SubsetOf(r) {
					within = true
					break
				}
			}
			if !within {
				return false, &Witness{
					Failure:  Failure{Trace: trace(queue, head), Refusal: ri},
					InFirst:  false, // the offending failure is impl's
					Alphabet: spec.Alphabet(),
				}, nil
			}
		}
		for _, sigma := range spec.Alphabet().Observable() {
			ni := semI.step(cur.si, sigma)
			if len(ni) == 0 {
				continue // impl cannot extend this trace; nothing to check
			}
			ns := semS.step(cur.ss, sigma)
			if len(ns) == 0 {
				// impl has a trace spec lacks: (trace·sigma, ∅) is a
				// failure of impl outside failures(spec).
				return false, &Witness{
					Failure:  Failure{Trace: append(trace(queue, head), sigma)},
					InFirst:  false,
					Alphabet: spec.Alphabet(),
				}, nil
			}
			k := stateKey(ns) + "|" + stateKey(ni)
			if !seen[k] {
				seen[k] = true
				queue = append(queue, node{ss: ns, si: ni, parent: head, act: sigma})
			}
		}
	}
	return true, nil, nil
}

// RefinesProcesses is Refines on the start states of two processes.
func RefinesProcesses(spec, impl *fsp.FSP) (bool, *Witness, error) {
	return Refines(spec, spec.Start(), impl, impl.Start())
}
