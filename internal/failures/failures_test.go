package failures

import (
	"testing"

	"ccs/internal/fsp"
)

// restricted marks all states accepting after building.
func restricted(b *fsp.Builder, n int) *fsp.FSP {
	for s := 0; s < n; s++ {
		b.Accept(fsp.State(s))
	}
	return b.MustBuild()
}

// tracePair returns the classic trace-equal, failure-different r.o.u. pair:
// P = a·a and Q = a·a + a (Q can deadlock after one a).
func tracePair() (*fsp.FSP, *fsp.FSP) {
	b1 := fsp.NewBuilder("aa")
	b1.AddStates(3)
	b1.ArcName(0, "a", 1)
	b1.ArcName(1, "a", 2)
	p := restricted(b1, 3)

	b2 := fsp.NewBuilder("aa+a")
	b2.AddStates(4)
	b2.ArcName(0, "a", 1)
	b2.ArcName(1, "a", 2)
	b2.ArcName(0, "a", 3) // 3 is a dead end
	q := restricted(b2, 4)
	return p, q
}

// failurePair returns a failure-equivalent but not observationally
// equivalent r.o.u. pair:
//
//	P = a·a·a + a·a
//	Q = a·a·a + a·a + a·(a + a·a)
//
// Q's extra branch has an a-derivative with both a dead and a live
// continuation, which no a-derivative of P matches (breaking ≈_2), but the
// per-trace refusal antichains coincide.
func failurePair() (*fsp.FSP, *fsp.FSP) {
	b1 := fsp.NewBuilder("P")
	b1.AddStates(6)
	b1.ArcName(0, "a", 1)
	b1.ArcName(1, "a", 2)
	b1.ArcName(2, "a", 3)
	b1.ArcName(0, "a", 4)
	b1.ArcName(4, "a", 5)
	p := restricted(b1, 6)

	b2 := fsp.NewBuilder("Q")
	b2.AddStates(10)
	b2.ArcName(0, "a", 1)
	b2.ArcName(1, "a", 2)
	b2.ArcName(2, "a", 3)
	b2.ArcName(0, "a", 4)
	b2.ArcName(4, "a", 5)
	b2.ArcName(0, "a", 6)
	b2.ArcName(6, "a", 7) // dead after two
	b2.ArcName(6, "a", 8)
	b2.ArcName(8, "a", 9)
	q := restricted(b2, 10)
	return p, q
}

func TestTraceEqualFailureDifferent(t *testing.T) {
	p, q := tracePair()
	eq, w, err := Equivalent(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Fatalf("aa ≡ aa+a reported, but refusals after 'a' differ")
	}
	if w == nil {
		t.Fatal("no witness returned")
	}
	// The witness failure must belong to exactly one process.
	inP, err := Has(p, p.Start(), w.Failure)
	if err != nil {
		t.Fatal(err)
	}
	inQ, err := Has(q, q.Start(), w.Failure)
	if err != nil {
		t.Fatal(err)
	}
	if inP == inQ {
		t.Errorf("witness (%v, %v) does not distinguish: inP=%v inQ=%v",
			w.Failure.Trace, w.Failure.Refusal, inP, inQ)
	}
	if w.InFirst != inP {
		t.Errorf("witness side flag wrong: InFirst=%v inP=%v", w.InFirst, inP)
	}
}

func TestFailureEquivalentPair(t *testing.T) {
	p, q := failurePair()
	eq, w, err := Equivalent(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatalf("P ≡ Q must hold; witness (%v, %v)", w.Failure.Trace, w.Failure.Refusal)
	}
}

func TestReflexive(t *testing.T) {
	p, _ := tracePair()
	eq, _, err := Equivalent(p, p)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Errorf("≡ not reflexive")
	}
}

func TestRejectsNonRestricted(t *testing.T) {
	b := fsp.NewBuilder("std")
	b.AddStates(2)
	b.ArcName(0, "a", 1)
	b.Accept(1) // state 0 not accepting: standard, not restricted
	f := b.MustBuild()
	if _, _, err := Equivalent(f, f); err == nil {
		t.Error("non-restricted process accepted")
	}
	if _, err := Enumerate(f, 0, 2); err == nil {
		t.Error("Enumerate accepted non-restricted process")
	}
	if _, err := Has(f, 0, Failure{}); err == nil {
		t.Error("Has accepted non-restricted process")
	}
}

func TestEnumerate(t *testing.T) {
	p, _ := tracePair() // a·a chain
	fails, err := Enumerate(p, p.Start(), 3)
	if err != nil {
		t.Fatal(err)
	}
	// Maximal refusals: (ε, {}), (a, {}), (aa, {a}).
	if len(fails) != 3 {
		t.Fatalf("Enumerate = %d failures, want 3: %v", len(fails), fails)
	}
	a, _ := p.Alphabet().Lookup("a")
	last := fails[2]
	if len(last.Trace) != 2 || !last.Refusal.Has(a) {
		t.Errorf("deepest failure wrong: %v", last)
	}
	// Every enumerated failure must pass Has.
	for _, fl := range fails {
		ok, err := Has(p, p.Start(), fl)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("enumerated failure (%v,%v) rejected by Has", fl.Trace, fl.Refusal)
		}
	}
}

func TestEnumerateCrossValidatesEquivalence(t *testing.T) {
	// For bounded-depth trees, comparing enumerated failure sets must agree
	// with the decision procedure.
	p, q := failurePair()
	fp, err := Enumerate(p, p.Start(), 4)
	if err != nil {
		t.Fatal(err)
	}
	fq, err := Enumerate(q, q.Start(), 4)
	if err != nil {
		t.Fatal(err)
	}
	// Downward-closure comparison: every failure of p must hold in q and
	// vice versa.
	for _, fl := range fp {
		ok, err := Has(q, q.Start(), fl)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("failure (%v,%v) of P missing from Q", fl.Trace, fl.Refusal)
		}
	}
	for _, fl := range fq {
		ok, err := Has(p, p.Start(), fl)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("failure (%v,%v) of Q missing from P", fl.Trace, fl.Refusal)
		}
	}
}

func TestWitnessOnMissingTrace(t *testing.T) {
	// P = a, Q = a + a·a: Q has the trace aa, P does not.
	b1 := fsp.NewBuilder("a")
	b1.AddStates(2)
	b1.ArcName(0, "a", 1)
	p := restricted(b1, 2)

	b2 := fsp.NewBuilder("a+aa")
	b2.AddStates(4)
	b2.ArcName(0, "a", 1)
	b2.ArcName(0, "a", 2)
	b2.ArcName(2, "a", 3)
	q := restricted(b2, 4)

	eq, w, err := Equivalent(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Fatal("a ≡ a+aa reported")
	}
	if w == nil {
		t.Fatal("no witness")
	}
	inP, _ := Has(p, p.Start(), w.Failure)
	inQ, _ := Has(q, q.Start(), w.Failure)
	if inP == inQ {
		t.Errorf("witness does not distinguish")
	}
}

func TestTauSensitiveFailures(t *testing.T) {
	// tau-branching changes refusals: P = a + tau·b can refuse a (after the
	// tau), while Q = a + b refuses neither initially.
	b1 := fsp.NewBuilder("a+tau.b")
	b1.AddStates(4)
	b1.ArcName(0, "a", 1)
	b1.ArcName(0, fsp.TauName, 2)
	b1.ArcName(2, "b", 3)
	p := restricted(b1, 4)

	b2 := fsp.NewBuilder("a+b")
	b2.AddStates(3)
	b2.ArcName(0, "a", 1)
	b2.ArcName(0, "b", 2)
	q := restricted(b2, 3)

	eq, w, err := Equivalent(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Fatal("a+tau.b ≡ a+b reported")
	}
	a, _ := p.Alphabet().Lookup("a")
	if w != nil && len(w.Failure.Trace) == 0 && !w.Failure.Refusal.Has(a) {
		t.Errorf("expected an initial refusal involving 'a', got %v", w.Failure.Refusal)
	}
}

func TestWitnessAcrossDifferentAlphabets(t *testing.T) {
	// Regression: when the operands' alphabets differ, the decider
	// harmonizes them via disjoint union; the witness must carry the
	// harmonized alphabet so rendering never indexes out of range.
	b1 := fsp.NewBuilder("onlyA")
	b1.AddStates(2)
	b1.ArcName(0, "a", 1)
	p := restricted(b1, 2)

	b2 := fsp.NewBuilder("onlyB")
	b2.AddStates(2)
	b2.ArcName(0, "b", 1)
	q := restricted(b2, 2)

	eq, w, err := Equivalent(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Fatal("processes over disjoint actions reported equivalent")
	}
	if w == nil || w.Alphabet == nil {
		t.Fatal("witness missing alphabet")
	}
	if got := w.Format(); got == "" {
		t.Errorf("witness failed to render")
	}

	// Same for completed-trace and refinement.
	if _, cw, err := CompletedTraceEquivalent(p, q); err != nil {
		t.Fatal(err)
	} else if cw != nil && cw.Alphabet == nil {
		t.Error("completed-trace witness missing alphabet")
	}
	if _, rw, err := RefinesProcesses(p, q); err != nil {
		t.Fatal(err)
	} else if rw != nil && rw.Alphabet == nil {
		t.Error("refinement witness missing alphabet")
	}
}

func TestRefusalSetOps(t *testing.T) {
	alpha := fsp.NewAlphabet("a", "b", "c")
	a, _ := alpha.Lookup("a")
	c, _ := alpha.Lookup("c")
	r := RefusalSet(0).With(a).With(c)
	if !r.Has(a) || !r.Has(c) {
		t.Errorf("membership wrong")
	}
	if got := r.Format(alpha); got != "{a,c}" {
		t.Errorf("Format = %q", got)
	}
	if !RefusalSet(0).SubsetOf(r) || r.SubsetOf(RefusalSet(0).With(a)) {
		t.Errorf("SubsetOf wrong")
	}
	if FormatTrace(nil, alpha) != "ε" {
		t.Errorf("empty trace format wrong")
	}
	if FormatTrace([]fsp.Action{a, c}, alpha) != "a.c" {
		t.Errorf("trace format wrong: %s", FormatTrace([]fsp.Action{a, c}, alpha))
	}
}
