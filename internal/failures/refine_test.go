package failures

import (
	"math/rand"
	"testing"

	"ccs/internal/fsp"
	"ccs/internal/gen"
)

func TestRefinesBasic(t *testing.T) {
	// aa refines aa+a (the nondeterministic spec allows the deadlock, the
	// deterministic impl never takes it), but not the other way around.
	impl, spec := tracePair() // impl = aa, spec = aa + a
	ok, w, err := RefinesProcesses(spec, impl)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("aa must refine aa+a; witness (%v,%v)", w.Failure.Trace, w.Failure.Refusal)
	}
	ok, w, err = RefinesProcesses(impl, spec)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Errorf("aa+a must NOT refine aa (it can refuse after one a)")
	}
	if w == nil {
		t.Fatal("missing witness")
	}
	// The witness failure belongs to the non-refining implementation (here:
	// aa+a) and not to the spec (aa).
	inSpec, err := Has(impl, impl.Start(), w.Failure)
	if err != nil {
		t.Fatal(err)
	}
	inImpl, err := Has(spec, spec.Start(), w.Failure)
	if err != nil {
		t.Fatal(err)
	}
	if inSpec || !inImpl {
		t.Errorf("witness sits on the wrong side: inSpec=%v inImpl=%v", inSpec, inImpl)
	}
}

func TestRefinesTraceExcess(t *testing.T) {
	// a+aa does not refine a: the extra trace aa is a failure with empty
	// refusal that the spec lacks.
	b1 := fsp.NewBuilder("a")
	b1.AddStates(2)
	b1.ArcName(0, "a", 1)
	spec := restricted(b1, 2)

	b2 := fsp.NewBuilder("a+aa")
	b2.AddStates(4)
	b2.ArcName(0, "a", 1)
	b2.ArcName(0, "a", 2)
	b2.ArcName(2, "a", 3)
	impl := restricted(b2, 4)

	ok, w, err := RefinesProcesses(spec, impl)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("a+aa must not refine a")
	}
	if len(w.Failure.Trace) != 2 {
		t.Errorf("witness trace = %v, want length 2", w.Failure.Trace)
	}
}

func TestMutualRefinementIsEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 120; trial++ {
		p := gen.RandomRestricted(rng, 2+rng.Intn(3), rng.Intn(6), 2)
		q := gen.RandomRestricted(rng, 2+rng.Intn(3), rng.Intn(6), 2)
		fwd, _, err := RefinesProcesses(p, q)
		if err != nil {
			t.Fatal(err)
		}
		bwd, _, err := RefinesProcesses(q, p)
		if err != nil {
			t.Fatal(err)
		}
		eq, _, err := Equivalent(p, q)
		if err != nil {
			t.Fatal(err)
		}
		if (fwd && bwd) != eq {
			t.Fatalf("trial %d: mutual refinement %v/%v but ≡ %v", trial, fwd, bwd, eq)
		}
	}
}

func TestRefinesReflexiveTransitive(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 60; trial++ {
		p := gen.RandomRestricted(rng, 2+rng.Intn(3), rng.Intn(6), 2)
		q := gen.RandomRestricted(rng, 2+rng.Intn(3), rng.Intn(6), 2)
		r := gen.RandomRestricted(rng, 2+rng.Intn(3), rng.Intn(6), 2)
		refl, _, err := RefinesProcesses(p, p)
		if err != nil {
			t.Fatal(err)
		}
		if !refl {
			t.Fatal("refinement not reflexive")
		}
		pq, _, err := RefinesProcesses(p, q)
		if err != nil {
			t.Fatal(err)
		}
		qr, _, err := RefinesProcesses(q, r)
		if err != nil {
			t.Fatal(err)
		}
		if pq && qr {
			pr, _, err := RefinesProcesses(p, r)
			if err != nil {
				t.Fatal(err)
			}
			if !pr {
				t.Fatal("refinement not transitive")
			}
		}
	}
}

func TestRefinesRejectsNonRestricted(t *testing.T) {
	b := fsp.NewBuilder("std")
	b.AddStates(2)
	b.ArcName(0, "a", 1)
	b.Accept(1)
	std := b.MustBuild()
	if _, _, err := RefinesProcesses(std, std); err == nil {
		t.Error("non-restricted input accepted")
	}
}
