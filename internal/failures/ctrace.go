package failures

import (
	"ccs/internal/fsp"
)

// Completed-trace equivalence: two restricted processes are equivalent when
// they have the same traces AND the same completed traces — traces that can
// end in a state refusing everything. In failure terms a completed trace is
// exactly a failure (s, Sigma), so this notion sits strictly between ≈_1
// and ≡ in the linear-time spectrum the paper's Proposition 2.2.3 samples:
//
//	≡  ⊆  completed-trace  ⊆  ≈_1
//
// (aa vs aa+a separates completed-trace from ≈_1; a+ab vs a+ab+a·(b+0)-
// style pairs with equal deadlock traces but different intermediate
// refusals separate ≡ from completed-trace.)

// CompletedTraceEquivalentStates decides completed-trace equivalence of
// two restricted states by a synchronized subset sweep comparing, per
// trace, (i) extendability per action and (ii) the presence of a fully
// refusing (dead) derivative.
func CompletedTraceEquivalentStates(f *fsp.FSP, p fsp.State, g *fsp.FSP, q fsp.State) (bool, *Witness, error) {
	if err := checkRestricted(f); err != nil {
		return false, nil, err
	}
	if err := checkRestricted(g); err != nil {
		return false, nil, err
	}
	if !f.Alphabet().Equal(g.Alphabet()) {
		u, off, err := fsp.DisjointUnion(f, g)
		if err != nil {
			return false, nil, err
		}
		return CompletedTraceEquivalentStates(u, p, u, off+q)
	}

	semF := newSemantics(f)
	semG := newSemantics(g)

	type node struct {
		sa, sb []fsp.State
		parent int
		act    fsp.Action
	}
	trace := func(queue []node, i int) []fsp.Action {
		var rev []fsp.Action
		for queue[i].parent >= 0 {
			rev = append(rev, queue[i].act)
			i = queue[i].parent
		}
		for l, r := 0, len(rev)-1; l < r; l, r = l+1, r-1 {
			rev[l], rev[r] = rev[r], rev[l]
		}
		return rev
	}

	seen := map[string]bool{}
	queue := []node{{sa: semF.clo.Of(p), sb: semG.clo.Of(q), parent: -1}}
	seen[stateKey(queue[0].sa)+"|"+stateKey(queue[0].sb)] = true
	for head := 0; head < len(queue); head++ {
		cur := queue[head]
		// Completed here? A derivative refusing all of Sigma.
		deadA := hasDead(semF, cur.sa)
		deadB := hasDead(semG, cur.sb)
		if deadA != deadB {
			return false, &Witness{
				Failure:  Failure{Trace: trace(queue, head), Refusal: semF.full},
				InFirst:  deadA,
				Alphabet: f.Alphabet(),
			}, nil
		}
		for _, sigma := range f.Alphabet().Observable() {
			na := semF.step(cur.sa, sigma)
			nb := semG.step(cur.sb, sigma)
			if len(na) == 0 && len(nb) == 0 {
				continue
			}
			if len(na) == 0 || len(nb) == 0 {
				return false, &Witness{
					Failure:  Failure{Trace: append(trace(queue, head), sigma)},
					InFirst:  len(na) != 0,
					Alphabet: f.Alphabet(),
				}, nil
			}
			k := stateKey(na) + "|" + stateKey(nb)
			if !seen[k] {
				seen[k] = true
				queue = append(queue, node{sa: na, sb: nb, parent: head, act: sigma})
			}
		}
	}
	return true, nil, nil
}

func hasDead(sem *semantics, set []fsp.State) bool {
	for _, s := range set {
		if sem.weakInitials[s] == 0 {
			return true
		}
	}
	return false
}

// CompletedTraceEquivalent decides completed-trace equivalence of the
// start states of two restricted processes.
func CompletedTraceEquivalent(f, g *fsp.FSP) (bool, *Witness, error) {
	return CompletedTraceEquivalentStates(f, f.Start(), g, g.Start())
}
