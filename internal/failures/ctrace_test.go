package failures

import (
	"math/rand"
	"testing"

	"ccs/internal/fsp"
	"ccs/internal/gen"
	"ccs/internal/kequiv"
)

func TestCompletedTraceSeparatesFromTrace(t *testing.T) {
	// aa vs aa+a: trace equal but "a" is a completed trace only on the
	// right.
	p, q := tracePair()
	eq, w, err := CompletedTraceEquivalent(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Fatal("aa and aa+a must differ on completed traces")
	}
	if w == nil || len(w.Failure.Trace) != 1 {
		t.Errorf("witness should be the completed trace 'a': %+v", w)
	}
}

func TestCompletedTraceCoarserThanFailures(t *testing.T) {
	// a(b+c) + ab + ac vs ab + ac (over Sigma={a,b,c}): completed traces
	// coincide (ab and ac both dead-end), but the refusals after 'a'
	// differ... actually these ARE failure-equivalent (see the expr
	// tests). Build instead: P = a(b+c) + a·b, Q = a·b + a·c:
	// completed traces of P: {ab, ac}; of Q: {ab, ac} — equal.
	// Failures: P after 'a' can refuse neither b nor c in the (b+c)
	// branch... P's a-derivatives: {b+c, b-only}; Q's: {b-only, c-only}.
	// Q can refuse {b} after a, P cannot... P's b-only branch refuses {c}
	// wait it refuses c but not b; P's (b+c) branch refuses neither.
	// Max refusals P: {a,c}; Q: {a,c},{a,b}: differ.
	pb := fsp.NewBuilder("P")
	pb.AddStates(6)
	pb.ArcName(0, "a", 1)
	pb.ArcName(1, "b", 2)
	pb.ArcName(1, "c", 3)
	pb.ArcName(0, "a", 4)
	pb.ArcName(4, "b", 5)
	p := restricted(pb, 6)

	qb := fsp.NewBuilder("Q")
	qb.AddStates(5)
	qb.ArcName(0, "a", 1)
	qb.ArcName(1, "b", 2)
	qb.ArcName(0, "a", 3)
	qb.ArcName(3, "c", 4)
	q := restricted(qb, 5)

	ctEq, _, err := CompletedTraceEquivalent(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if !ctEq {
		t.Fatalf("completed traces must coincide")
	}
	failEq, _, err := Equivalent(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if failEq {
		t.Fatalf("failures must differ (refusal {a,b} after 'a' only in Q)")
	}
}

func TestCompletedTraceSandwich(t *testing.T) {
	// ≡ ⊆ completed-trace ⊆ ≈_1 on random restricted pairs.
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 150; trial++ {
		p := gen.RandomRestricted(rng, 2+rng.Intn(3), rng.Intn(6), 2)
		q := gen.RandomRestricted(rng, 2+rng.Intn(3), rng.Intn(6), 2)
		failEq, _, err := Equivalent(p, q)
		if err != nil {
			t.Fatal(err)
		}
		ctEq, w, err := CompletedTraceEquivalent(p, q)
		if err != nil {
			t.Fatal(err)
		}
		traceEq, err := kequiv.Equivalent(p, q, 1)
		if err != nil {
			t.Fatal(err)
		}
		if failEq && !ctEq {
			t.Fatalf("trial %d: ≡ holds but completed-trace fails", trial)
		}
		if ctEq && !traceEq {
			t.Fatalf("trial %d: completed-trace holds but ≈_1 fails", trial)
		}
		if !ctEq && w != nil && len(w.Failure.Trace) == 0 && w.Failure.Refusal == 0 {
			t.Fatalf("trial %d: empty witness", trial)
		}
	}
}

func TestCompletedTraceRejectsNonRestricted(t *testing.T) {
	b := fsp.NewBuilder("std")
	b.AddStates(2)
	b.ArcName(0, "a", 1)
	b.Accept(1)
	std := b.MustBuild()
	if _, _, err := CompletedTraceEquivalent(std, std); err == nil {
		t.Error("non-restricted input accepted")
	}
}

func TestCompletedTraceReflexive(t *testing.T) {
	p, _ := failurePair()
	eq, _, err := CompletedTraceEquivalent(p, p)
	if err != nil || !eq {
		t.Errorf("not reflexive: %v %v", eq, err)
	}
}
