// Package failures implements the failure semantics of Brookes, Hoare &
// Roscoe as used in Section 5 of the paper. For a state p of a restricted
// FSP,
//
//	failures(p) = {(s, Z) : s ∈ Sigma*, Z ⊆ Sigma,
//	               ∃p' : p ==s=> p' and ∀z ∈ Z : not (p' ==z=>)}
//
// and p ≡ q iff failures(p) = failures(q). Since for each trace s the
// refusal sets form a downward-closed family, failures(p) is fully
// described by, per trace, the antichain of maximal refusals — the
// complements of the weak initial sets of the s-derivatives. The decider
// explores pairs of derivative subsets for both processes simultaneously
// and compares these antichains; it is exponential in the worst case, as it
// must be (Theorem 5.1: failure equivalence is PSPACE-complete already for
// restricted observable FSPs with |Sigma| = 2).
package failures

import (
	"fmt"
	"sort"
	"strings"

	"ccs/internal/fsp"
	"ccs/internal/lts"
)

// maxAlphabet bounds |Sigma| so refusal sets fit in a 64-bit mask.
const maxAlphabet = 64

// RefusalSet is a set of observable actions represented as a bitmask over
// the observable alphabet (bit i = the i-th observable action, i.e. Action
// i+1).
type RefusalSet uint64

// Has reports whether observable action a (an fsp.Action > 0) is refused.
func (r RefusalSet) Has(a fsp.Action) bool { return r&(1<<uint(a-1)) != 0 }

// With returns the set extended with observable action a.
func (r RefusalSet) With(a fsp.Action) RefusalSet { return r | 1<<uint(a-1) }

// SubsetOf reports whether r ⊆ s.
func (r RefusalSet) SubsetOf(s RefusalSet) bool { return r&^s == 0 }

// Format renders the refusal set using the alphabet's action names.
func (r RefusalSet) Format(a *fsp.Alphabet) string {
	var names []string
	for _, act := range a.Observable() {
		if r.Has(act) {
			names = append(names, a.Name(act))
		}
	}
	return "{" + strings.Join(names, ",") + "}"
}

// Failure is one element of the failures set: a trace and a refusal set.
type Failure struct {
	Trace   []fsp.Action
	Refusal RefusalSet
}

// FormatTrace renders a trace using the alphabet's action names.
func FormatTrace(trace []fsp.Action, a *fsp.Alphabet) string {
	if len(trace) == 0 {
		return "ε"
	}
	names := make([]string, len(trace))
	for i, act := range trace {
		names[i] = a.Name(act)
	}
	return strings.Join(names, ".")
}

// Witness explains a failure-equivalence verdict of "different": the
// failure pair belongs to exactly one of the two processes.
type Witness struct {
	Failure Failure
	// InFirst is true when the failure belongs to the first process only.
	InFirst bool
	// Alphabet is the (possibly harmonized) alphabet the witness's actions
	// and refusal sets are expressed in; use it for rendering.
	Alphabet *fsp.Alphabet
}

// Format renders the witness failure pair as "(trace, refusal)".
func (w *Witness) Format() string {
	return "(" + FormatTrace(w.Failure.Trace, w.Alphabet) + ", " +
		w.Failure.Refusal.Format(w.Alphabet) + ")"
}

// checkRestricted enforces the model the paper defines ≡ for.
func checkRestricted(f *fsp.FSP) error {
	cls := fsp.Classify(f)
	if !cls.Restricted {
		return fmt.Errorf("failures: process %q is not restricted (every state must be accepting)", f.Name())
	}
	if f.Alphabet().NumObservable() > maxAlphabet {
		return fmt.Errorf("failures: alphabet has %d observable actions, max %d", f.Alphabet().NumObservable(), maxAlphabet)
	}
	return nil
}

// semantics precomputes weak machinery for one FSP: the tau-closure and
// the weak sigma-arc index (internal/lts, one dense label per observable
// action), built once per process so the subset exploration steps by
// walking contiguous CSR destination runs instead of recomputing weak
// derivatives per node.
type semantics struct {
	f      *fsp.FSP
	clo    fsp.Closure
	idx    *lts.Index // label i = i-th observable action (fsp.Action i+1)
	numObs int
	// weakInitials[s] = the observable actions s can weakly perform.
	weakInitials []RefusalSet // stored as "can do" masks; refusal = complement
	full         RefusalSet
}

func newSemantics(f *fsp.FSP) *semantics {
	clo := fsp.TauClosure(f)
	numObs := f.Alphabet().NumObservable()
	sem := &semantics{f: f, clo: clo, numObs: numObs}
	for i := 0; i < numObs; i++ {
		sem.full |= 1 << uint(i)
	}
	sem.idx = lts.FromWeak(f, clo)
	// s ==sigma=> iff the weak-arc span of (s, sigma) is nonempty, so the
	// weak initials fall straight out of the index's forward CSR.
	sem.weakInitials = make([]RefusalSet, f.NumStates())
	fwdStart, fwdLabel, _ := sem.idx.Fwd()
	for s := 0; s < f.NumStates(); s++ {
		var can RefusalSet
		for j := fwdStart[s]; j < fwdStart[s+1]; j++ {
			can = can.With(fsp.Action(fwdLabel[j] + 1))
		}
		sem.weakInitials[s] = can
	}
	return sem
}

// maxRefusals returns the antichain of maximal refusal sets over a
// derivative set: { Sigma \ weakInitials(p') : p' ∈ set }, maximal under ⊆,
// sorted for canonical comparison.
func (sem *semantics) maxRefusals(set []fsp.State) []RefusalSet {
	raw := make([]RefusalSet, 0, len(set))
	for _, s := range set {
		raw = append(raw, sem.full&^sem.weakInitials[s])
	}
	// Keep maximal elements only.
	var out []RefusalSet
	for i, r := range raw {
		maximal := true
		for j, s := range raw {
			if i != j && r != s && r.SubsetOf(s) {
				maximal = false
				break
			}
			if i > j && r == s {
				maximal = false // dedup equal sets, keep first
				break
			}
		}
		if maximal {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// step advances a derivative set by one observable action (closure-closed
// in, closure-closed out): the union of the precomputed weak destination
// runs of the members. Weak derivative sets are closure-closed, and a
// union of closure-closed sets is closure-closed, so no re-expansion is
// needed.
func (sem *semantics) step(set []fsp.State, sigma fsp.Action) []fsp.State {
	l := int32(sigma - 1)
	mark := map[fsp.State]struct{}{}
	for _, s := range set {
		for _, t := range sem.idx.Dests(int32(s), l) {
			mark[fsp.State(t)] = struct{}{}
		}
	}
	out := make([]fsp.State, 0, len(mark))
	for s := range mark {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sameRefusals(a, b []RefusalSet) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func stateKey(set []fsp.State) string {
	buf := make([]byte, 0, 4*len(set))
	for _, s := range set {
		buf = append(buf, byte(s), byte(s>>8), byte(s>>16), byte(s>>24))
	}
	return string(buf)
}

// EquivalentStates decides failures(p) = failures(q) for states p, q of the
// restricted FSPs f and g (which may be the same process). On inequivalence
// the returned witness carries a failure pair present on exactly one side.
func EquivalentStates(f *fsp.FSP, p fsp.State, g *fsp.FSP, q fsp.State) (bool, *Witness, error) {
	if err := checkRestricted(f); err != nil {
		return false, nil, err
	}
	if err := checkRestricted(g); err != nil {
		return false, nil, err
	}
	if !f.Alphabet().Equal(g.Alphabet()) {
		// Harmonize by disjoint union; simplest correct path.
		u, off, err := fsp.DisjointUnion(f, g)
		if err != nil {
			return false, nil, fmt.Errorf("failures: %w", err)
		}
		return EquivalentStates(u, p, u, off+q)
	}

	semF := newSemantics(f)
	semG := semF
	if g != f {
		semG = newSemantics(g)
	}

	type node struct {
		sa, sb []fsp.State
		parent int
		act    fsp.Action
	}
	trace := func(queue []node, i int) []fsp.Action {
		var rev []fsp.Action
		for queue[i].parent >= 0 {
			rev = append(rev, queue[i].act)
			i = queue[i].parent
		}
		for l, r := 0, len(rev)-1; l < r; l, r = l+1, r-1 {
			rev[l], rev[r] = rev[r], rev[l]
		}
		return rev
	}

	seen := map[string]bool{}
	queue := []node{{sa: semF.clo.Of(p), sb: semG.clo.Of(q), parent: -1}}
	seen[stateKey(queue[0].sa)+"|"+stateKey(queue[0].sb)] = true
	for head := 0; head < len(queue); head++ {
		cur := queue[head]
		ra := semF.maxRefusals(cur.sa)
		rb := semG.maxRefusals(cur.sb)
		if !sameRefusals(ra, rb) {
			w := refusalWitness(ra, rb)
			w.Failure.Trace = trace(queue, head)
			w.Alphabet = f.Alphabet()
			return false, w, nil
		}
		for _, sigma := range f.Alphabet().Observable() {
			na := semF.step(cur.sa, sigma)
			nb := semG.step(cur.sb, sigma)
			if len(na) == 0 && len(nb) == 0 {
				continue
			}
			if len(na) == 0 || len(nb) == 0 {
				// The trace exists on one side only: (trace, ∅) is a
				// failure of that side alone.
				w := &Witness{
					Failure:  Failure{Trace: append(trace(queue, head), sigma)},
					InFirst:  len(na) != 0,
					Alphabet: f.Alphabet(),
				}
				return false, w, nil
			}
			k := stateKey(na) + "|" + stateKey(nb)
			if !seen[k] {
				seen[k] = true
				queue = append(queue, node{sa: na, sb: nb, parent: head, act: sigma})
			}
		}
	}
	return true, nil, nil
}

// refusalWitness finds a refusal set in one antichain's downward closure
// but not the other's.
func refusalWitness(ra, rb []RefusalSet) *Witness {
	within := func(r RefusalSet, anti []RefusalSet) bool {
		for _, m := range anti {
			if r.SubsetOf(m) {
				return true
			}
		}
		return false
	}
	for _, r := range ra {
		if !within(r, rb) {
			return &Witness{Failure: Failure{Refusal: r}, InFirst: true}
		}
	}
	for _, r := range rb {
		if !within(r, ra) {
			return &Witness{Failure: Failure{Refusal: r}, InFirst: false}
		}
	}
	// Unreachable: antichains differ, so some maximal element is missing
	// from the other side's closure.
	return &Witness{}
}

// Equivalent decides failure equivalence of the start states of f and g.
func Equivalent(f, g *fsp.FSP) (bool, *Witness, error) {
	return EquivalentStates(f, f.Start(), g, g.Start())
}

// Enumerate lists all failures of p with traces up to maxLen, maximal
// refusals only, in BFS trace order. Intended for displays, tests and
// brute-force cross-validation on small processes.
func Enumerate(f *fsp.FSP, p fsp.State, maxLen int) ([]Failure, error) {
	if err := checkRestricted(f); err != nil {
		return nil, err
	}
	sem := newSemantics(f)
	type node struct {
		set   []fsp.State
		trace []fsp.Action
	}
	var out []Failure
	queue := []node{{set: sem.clo.Of(p)}}
	for head := 0; head < len(queue); head++ {
		cur := queue[head]
		for _, r := range sem.maxRefusals(cur.set) {
			out = append(out, Failure{Trace: cur.trace, Refusal: r})
		}
		if len(cur.trace) == maxLen {
			continue
		}
		for _, sigma := range f.Alphabet().Observable() {
			next := sem.step(cur.set, sigma)
			if len(next) == 0 {
				continue
			}
			nt := make([]fsp.Action, len(cur.trace)+1)
			copy(nt, cur.trace)
			nt[len(cur.trace)] = sigma
			queue = append(queue, node{set: next, trace: nt})
		}
	}
	return out, nil
}

// Has reports whether (trace, refusal) ∈ failures(p), by direct simulation.
func Has(f *fsp.FSP, p fsp.State, fail Failure) (bool, error) {
	if err := checkRestricted(f); err != nil {
		return false, err
	}
	sem := newSemantics(f)
	set := sem.clo.Of(p)
	for _, sigma := range fail.Trace {
		set = sem.step(set, sigma)
		if len(set) == 0 {
			return false, nil
		}
	}
	for _, s := range set {
		refusable := sem.full &^ sem.weakInitials[s]
		if fail.Refusal.SubsetOf(refusable) {
			return true, nil
		}
	}
	return false, nil
}
