package lts_test

import (
	"testing"

	"ccs/internal/fsp"
	"ccs/internal/lts"
)

func TestBuilderDedupesAndSorts(t *testing.T) {
	b := lts.NewBuilder(3, 2)
	// Shuffled insertion order with duplicates.
	b.Add(2, 1, 0)
	b.Add(0, 1, 2)
	b.Add(0, 0, 1)
	b.Add(0, 1, 2) // dup
	b.Add(0, 0, 1) // dup
	b.Add(2, 1, 0) // dup
	idx := b.Build()
	if idx.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d, want 3 (duplicates must collapse)", idx.NumEdges())
	}
	if got := idx.Dests(0, 0); len(got) != 1 || got[0] != 1 {
		t.Errorf("Dests(0,0) = %v, want [1]", got)
	}
	if got := idx.Dests(0, 1); len(got) != 1 || got[0] != 2 {
		t.Errorf("Dests(0,1) = %v, want [2]", got)
	}
	if got := idx.Dests(1, 0); len(got) != 0 {
		t.Errorf("Dests(1,0) = %v, want empty", got)
	}
	count, revRec, numRecs := idx.Records()
	var sum int32
	for _, c := range count {
		sum += c
	}
	if int(sum) != idx.NumEdges() {
		t.Errorf("record counts sum to %d, want %d", sum, idx.NumEdges())
	}
	if len(revRec) != idx.NumEdges() {
		t.Errorf("revRec length %d, want %d", len(revRec), idx.NumEdges())
	}
	if numRecs != 3 { // (0,0), (0,1), (2,1)
		t.Errorf("numRecs = %d, want 3", numRecs)
	}
}

func TestReverseIndexIsPreimage(t *testing.T) {
	b := lts.NewBuilder(4, 2)
	b.Add(0, 0, 3)
	b.Add(1, 0, 3)
	b.Add(2, 1, 3)
	b.Add(3, 1, 0)
	idx := b.Build()
	start, from, label := idx.Rev()
	// In-edges of 3: (0,0), (1,0), (2,1) in (source, label) order.
	lo, hi := start[3], start[4]
	if hi-lo != 3 {
		t.Fatalf("state 3 has %d in-edges, want 3", hi-lo)
	}
	wantFrom := []int32{0, 1, 2}
	wantLabel := []int32{0, 0, 1}
	for i := lo; i < hi; i++ {
		if from[i] != wantFrom[i-lo] || label[i] != wantLabel[i-lo] {
			t.Errorf("in-edge %d = (%d,%d), want (%d,%d)", i-lo, from[i], label[i], wantFrom[i-lo], wantLabel[i-lo])
		}
	}
}

func TestSignaturesGroupByLabelSet(t *testing.T) {
	b := lts.NewBuilder(5, 3)
	b.Add(0, 0, 1)
	b.Add(0, 2, 1)
	b.Add(1, 0, 2)
	b.Add(1, 2, 0)
	b.Add(2, 1, 0)
	// 3 and 4 have no out-edges.
	idx := b.Build()
	sig, num := idx.Signatures()
	if sig[0] != sig[1] {
		t.Errorf("states 0 and 1 share label set {0,2} but sig %d != %d", sig[0], sig[1])
	}
	if sig[3] != sig[4] {
		t.Errorf("deadlock states 3 and 4 must share a signature, got %d and %d", sig[3], sig[4])
	}
	if sig[2] == sig[0] || sig[2] == sig[3] {
		t.Errorf("state 2 (label set {1}) must differ from %d and %d", sig[0], sig[3])
	}
	if num != 3 {
		t.Errorf("numSigs = %d, want 3", num)
	}
}

func TestFromFSPDenseRemap(t *testing.T) {
	b := fsp.NewBuilder("dense")
	b.AddStates(2)
	// Intern actions a..e but only use b and d.
	for _, n := range []string{"a", "b", "c", "d", "e"} {
		b.Action(n)
	}
	b.ArcName(0, "b", 1)
	b.ArcName(0, "d", 0)
	f := b.MustBuild()
	idx := lts.FromFSP(f)
	if idx.NumLabels() != 2 {
		t.Fatalf("NumLabels = %d, want 2 (dense remap over used actions)", idx.NumLabels())
	}
	names := idx.LabelNames()
	if len(names) != 2 || names[0] != "b" || names[1] != "d" {
		t.Fatalf("LabelNames = %v, want [b d]", names)
	}
	if got := idx.Dests(0, 0); len(got) != 1 || got[0] != 1 {
		t.Errorf("Dests(0, b) = %v, want [1]", got)
	}
	if got := idx.Dests(0, 1); len(got) != 1 || got[0] != 0 {
		t.Errorf("Dests(0, d) = %v, want [0]", got)
	}
}

func TestDisjointUnionAlignsLabelsByName(t *testing.T) {
	// p uses actions (a, b); q uses (b, c) — and q's dense ids differ.
	pb := fsp.NewBuilder("p")
	pb.AddStates(2)
	pb.ArcName(0, "a", 1)
	pb.ArcName(1, "b", 0)
	p := pb.MustBuild()

	qb := fsp.NewBuilder("q")
	qb.AddStates(2)
	qb.ArcName(0, "b", 1)
	qb.ArcName(1, "c", 1)
	q := qb.MustBuild()

	pi, qi := lts.FromFSP(p), lts.FromFSP(q)
	u, off, err := lts.DisjointUnion(pi, qi)
	if err != nil {
		t.Fatal(err)
	}
	if off != 2 || u.N() != 4 {
		t.Fatalf("offset = %d, N = %d; want 2, 4", off, u.N())
	}
	names := u.LabelNames()
	if len(names) != 3 {
		t.Fatalf("union labels = %v, want 3 labels a, b, c", names)
	}
	labelOf := map[string]int32{}
	for i, nm := range names {
		labelOf[nm] = int32(i)
	}
	// q-state 0's b-edge must land on union label "b", target off+1.
	if got := u.Dests(off+0, labelOf["b"]); len(got) != 1 || got[0] != off+1 {
		t.Errorf("union Dests(q0, b) = %v, want [%d]", got, off+1)
	}
	// p-state 1's b-edge shares that label.
	if got := u.Dests(1, labelOf["b"]); len(got) != 1 || got[0] != 0 {
		t.Errorf("union Dests(p1, b) = %v, want [0]", got)
	}
	if got := u.Dests(off+1, labelOf["c"]); len(got) != 1 || got[0] != off+1 {
		t.Errorf("union Dests(q1, c) = %v, want [%d]", got, off+1)
	}
}

func TestDisjointUnionMixedNamednessFails(t *testing.T) {
	nb := fsp.NewBuilder("n")
	nb.AddStates(1)
	named := lts.FromFSP(nb.MustBuild())
	anon := lts.NewBuilder(1, 1).Build()
	if _, _, err := lts.DisjointUnion(named, anon); err == nil {
		t.Error("union of named and anonymous index must fail")
	}
}
