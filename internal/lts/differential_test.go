// Differential tests pitting the CSR-kernel solvers against the legacy
// edge-list path and the naive baseline: every route to the relational
// coarsest partition must agree, on random processes from the gen gallery
// and on the structural edge cases (deadlock states, tau-only processes,
// duplicate arcs, single-state FSPs).
package lts_test

import (
	"fmt"
	"math/rand"
	"testing"

	"ccs/internal/core"
	"ccs/internal/fsp"
	"ccs/internal/gen"
	"ccs/internal/lts"
	"ccs/internal/partition"
)

// legacyProblem flattens an FSP into the explicit edge-list Problem the
// pre-kernel code paths built on every call (the old core.problemOf).
func legacyProblem(f *fsp.FSP) *partition.Problem {
	n := f.NumStates()
	pr := &partition.Problem{
		N:         n,
		NumLabels: f.Alphabet().Len(),
		Initial:   make([]int32, n),
	}
	blockByExt := map[fsp.VarSet]int32{}
	for s := 0; s < n; s++ {
		e := f.Ext(fsp.State(s))
		b, ok := blockByExt[e]
		if !ok {
			b = int32(len(blockByExt))
			blockByExt[e] = b
		}
		pr.Initial[s] = b
		for _, a := range f.Arcs(fsp.State(s)) {
			pr.Edges = append(pr.Edges, partition.Edge{
				From:  int32(s),
				Label: int32(a.Act),
				To:    int32(a.To),
			})
		}
	}
	return pr
}

// checkAllSolversAgree solves f's strong-equivalence instance along every
// route and requires identical partitions plus stability of the result.
func checkAllSolversAgree(t *testing.T, f *fsp.FSP) {
	t.Helper()
	pr := legacyProblem(f)
	if err := pr.Validate(); err != nil {
		t.Fatalf("legacy problem invalid: %v", err)
	}
	idx := lts.FromFSP(f)
	if idx.NumEdges() != f.NumTransitions() {
		t.Fatalf("index has %d edges, FSP has %d transitions", idx.NumEdges(), f.NumTransitions())
	}

	ptIdx := partition.PaigeTarjanIndex(idx, pr.Initial)
	nvIdx := partition.NaiveIndex(idx, pr.Initial)
	ptEdges := pr.PaigeTarjan()
	nvEdges := pr.Naive()
	coreP := core.StrongPartition(f)

	for name, p := range map[string]*partition.Partition{
		"NaiveIndex":            nvIdx,
		"edge-list PaigeTarjan": ptEdges,
		"edge-list Naive":       nvEdges,
		"core.StrongPartition":  coreP,
	} {
		if !ptIdx.Equal(p) {
			t.Errorf("%s: CSR PaigeTarjan found %d blocks, %s found %d — partitions differ on %v",
				f.Name(), ptIdx.NumBlocks(), name, p.NumBlocks(), f)
		}
	}
	if !pr.Stable(ptIdx) {
		t.Errorf("%s: CSR PaigeTarjan result is not stable", f.Name())
	}
}

func TestDifferentialRandomProcesses(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(40)
		m := rng.Intn(5 * n)
		acts := 1 + rng.Intn(4)
		tau := []float64{0, 0.2, 0.7}[rng.Intn(3)]
		f := gen.Random(rng, n, m, acts, tau)
		t.Run(fmt.Sprintf("trial-%d-n%d-m%d", trial, n, m), func(t *testing.T) {
			checkAllSolversAgree(t, f)
		})
	}
}

func TestDifferentialRestrictedAndDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		checkAllSolversAgree(t, gen.RandomRestricted(rng, 2+rng.Intn(30), rng.Intn(80), 2))
		checkAllSolversAgree(t, gen.RandomDeterministic(rng, 1+rng.Intn(20), 2))
		checkAllSolversAgree(t, gen.RandomTree(rng, 1+rng.Intn(20), 3))
	}
}

func TestDifferentialGalleryAndChains(t *testing.T) {
	for _, pair := range gen.Fig2Gallery() {
		checkAllSolversAgree(t, pair.P)
		checkAllSolversAgree(t, pair.Q)
	}
	checkAllSolversAgree(t, gen.Chain(17))
	checkAllSolversAgree(t, gen.Cycle(12))
	checkAllSolversAgree(t, gen.SplitterChain(33))
}

// TestDifferentialDeadlockStates exercises states with no outgoing arcs:
// the signature pre-partition must group them, and the reverse index must
// still drive splits against them.
func TestDifferentialDeadlockStates(t *testing.T) {
	b := fsp.NewBuilder("deadlocks")
	b.AddStates(6)
	b.ArcName(0, "a", 1)
	b.ArcName(0, "a", 2)
	b.ArcName(1, "b", 3) // 3 is a dead end
	b.ArcName(2, "b", 4)
	b.ArcName(4, "a", 5) // 5 is a dead end
	b.Accept(0)
	b.Accept(3)
	b.Accept(5)
	checkAllSolversAgree(t, b.MustBuild())
}

// TestDifferentialTauOnly exercises a process whose every arc is tau
// (strong equivalence treats tau as an ordinary label; weak equivalence
// collapses the lot).
func TestDifferentialTauOnly(t *testing.T) {
	b := fsp.NewBuilder("tau-only")
	b.AddStates(5)
	b.ArcName(0, fsp.TauName, 1)
	b.ArcName(1, fsp.TauName, 2)
	b.ArcName(2, fsp.TauName, 0)
	b.ArcName(3, fsp.TauName, 4)
	for s := fsp.State(0); s < 5; s++ {
		b.Accept(s)
	}
	f := b.MustBuild()
	checkAllSolversAgree(t, f)

	// All states are weakly equivalent to 0 except the 3->4 component,
	// which is also all-accepting and tau-cyclic-free; the exact classes
	// are cross-checked between the polynomial algorithm and the kernel.
	wp, err := core.WeakPartition(f)
	if err != nil {
		t.Fatal(err)
	}
	if wp.NumBlocks() != 1 {
		t.Errorf("tau-only all-accepting process has %d weak classes, want 1", wp.NumBlocks())
	}
}

// TestDifferentialDuplicateArcs feeds the edge-list path duplicated edges:
// the kernel dedupes them, and the verdicts must match a clean instance.
func TestDifferentialDuplicateArcs(t *testing.T) {
	clean := &partition.Problem{
		N:         4,
		NumLabels: 2,
		Edges: []partition.Edge{
			{From: 0, Label: 0, To: 1},
			{From: 1, Label: 1, To: 2},
			{From: 2, Label: 0, To: 3},
			{From: 3, Label: 1, To: 0},
		},
	}
	dup := &partition.Problem{N: clean.N, NumLabels: clean.NumLabels}
	for _, e := range clean.Edges {
		for i := 0; i < 3; i++ { // triplicate every edge
			dup.Edges = append(dup.Edges, e)
		}
	}
	if got := dup.Index().NumEdges(); got != len(clean.Edges) {
		t.Fatalf("duplicated instance indexed %d edges, want %d after dedup", got, len(clean.Edges))
	}
	pClean := clean.PaigeTarjan()
	pDup := dup.PaigeTarjan()
	if !pClean.Equal(pDup) {
		t.Errorf("duplicate arcs changed the partition: %d vs %d blocks", pClean.NumBlocks(), pDup.NumBlocks())
	}
	if !pDup.Equal(dup.Naive()) {
		t.Errorf("naive and Paige-Tarjan disagree on the duplicated instance")
	}
}

// TestDifferentialSingleState covers the 1-state FSPs with and without a
// self-loop.
func TestDifferentialSingleState(t *testing.T) {
	plain := fsp.NewBuilder("one")
	plain.AddStates(1)
	checkAllSolversAgree(t, plain.MustBuild())

	loop := fsp.NewBuilder("one-loop")
	loop.AddStates(1)
	loop.ArcName(0, "a", 0)
	loop.Accept(0)
	checkAllSolversAgree(t, loop.MustBuild())
}

// TestPairQueryExtensionKeyCollision pins the cross-process extension
// matching: a variable literally named "a,b" must not collide with the
// two-variable extension {a, b} (their rendered forms are identical, so a
// string-format key would wrongly equate the start states).
func TestPairQueryExtensionKeyCollision(t *testing.T) {
	fb := fsp.NewBuilder("weird-var")
	fb.AddStates(1)
	fb.Extend(0, "a,b")
	f := fb.MustBuild()

	gb := fsp.NewBuilder("two-vars")
	gb.AddStates(1)
	gb.Extend(0, "a", "b")
	g := gb.MustBuild()

	eq, err := core.StrongEquivalent(f, g)
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Error("states with extensions {a,b} (one variable named \"a,b\") and {a, b} (two variables) reported equivalent")
	}
	// Sanity: identically-named single variables still match across tables.
	hb := fsp.NewBuilder("same-var")
	hb.AddStates(1)
	hb.Extend(0, "a,b")
	h := hb.MustBuild()
	eq, err = core.StrongEquivalent(f, h)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Error("identical single-variable extensions failed to match across processes")
	}
}

// TestDifferentialPairQueries cross-validates the index-union pair path
// (core.StrongEquivalent, which never re-flattens) against the state-level
// check inside an FSP-level disjoint union.
func TestDifferentialPairQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		p := gen.Random(rng, 2+rng.Intn(12), rng.Intn(30), 2, 0.3)
		q := gen.Random(rng, 2+rng.Intn(12), rng.Intn(30), 2, 0.3)

		viaIndex, err := core.StrongEquivalent(p, q)
		if err != nil {
			t.Fatal(err)
		}
		u, off, err := fsp.DisjointUnion(p, q)
		if err != nil {
			t.Fatal(err)
		}
		viaUnion := core.StrongEquivalentStates(u, p.Start(), off+q.Start())
		if viaIndex != viaUnion {
			t.Errorf("trial %d: strong verdict differs, index-union=%v fsp-union=%v", trial, viaIndex, viaUnion)
		}

		weakIdx, err := core.WeakEquivalent(p, q)
		if err != nil {
			t.Fatal(err)
		}
		weakUnion, err := core.WeakEquivalentStates(u, p.Start(), off+q.Start())
		if err != nil {
			t.Fatal(err)
		}
		if weakIdx != weakUnion {
			t.Errorf("trial %d: weak verdict differs, index-union=%v fsp-union=%v", trial, weakIdx, weakUnion)
		}
	}
}
