// Package lts is the shared refinement kernel of the repository: an
// interned, CSR-backed (compressed sparse row) view of a labelled
// transition system that every equivalence layer refines against.
//
// Kanellakis & Smolka reduce all three of the paper's equivalence problems
// to one primitive, the relational coarsest partition problem (Section 3),
// and Theorem 3.1 solves it with the "process the smaller half" discipline
// that Paige & Tarjan (1987) later made canonical. That algorithm never
// needs the raw edge list — it needs exactly three derived structures:
//
//   - the reverse index (in-edges grouped by target), which is precisely
//     the preimage structure count(x, l, B) is maintained over;
//   - the count-record skeleton, one record per (source, label) pair with
//     positive out-degree, holding the number of l-edges from x into the
//     universe block;
//   - the forward index grouped by action label, for signature computation
//     and quotient construction.
//
// An Index materializes all three once. Callers (core, kequiv, automata,
// failures, hml, the engine) build the Index a single time per process —
// or per saturated P-hat — cache it, and hand it to the solvers in
// internal/partition, which refine directly on the flat arrays with zero
// per-call edge-slice allocation and no internal re-sorting.
//
// Construction dedupes duplicate (from, label, to) arcs (Delta is a
// relation, i.e. a set; duplicates would inflate splitter work), remaps
// action labels to a dense range so sparsely-used alphabets cost nothing,
// and precomputes each state's outgoing-action-set signature, which seeds
// the initial partition of the Paige-Tarjan run (states with different
// outgoing label sets can never share a block of any stable partition).
//
// Indexes are immutable after construction and safe for concurrent use;
// the solvers copy the small mutable parts (count records) per run.
package lts

import (
	"fmt"
	"sort"

	"ccs/internal/fsp"
)

// Index is the immutable CSR view of one labelled transition system over
// states 0..N-1 and dense labels 0..NumLabels-1. See the package comment
// for the role of each component. All accessor slices are shared and must
// not be modified by callers.
type Index struct {
	n         int
	numLabels int
	m         int // edges after dedup

	// labels names the dense labels, in order, for cross-index alignment
	// (DisjointUnion matches labels by name). nil means the labels are
	// anonymous (e.g. DFA symbols), in which case indexes are only
	// unionable with other anonymous indexes of compatible width.
	labels []string

	// Forward CSR: edge i has source s with fwdStart[s] <= i < fwdStart[s+1],
	// label fwdLabel[i] and target fwdTo[i]; each state's span is sorted by
	// (label, target), so per-(state, label) destination runs are contiguous.
	fwdStart []int32 // len n+1
	fwdLabel []int32 // len m
	fwdTo    []int32 // len m

	// Reverse CSR: in-edge j has target t with revStart[t] <= j < revStart[t+1],
	// source revFrom[j] and label revLabel[j]. This is the Paige-Tarjan
	// preimage index: scanning the in-edges of a block B visits exactly the
	// (x, l) pairs whose count records the split must update.
	revStart []int32 // len n+1
	revFrom  []int32 // len m
	revLabel []int32 // len m

	// Count-record skeleton: one record per (source, label) pair with
	// out-degree > 0. recCount[r] is the initial count of the record's edges
	// (its l-edges into the single-block universe); revRec[j] is the record
	// of reverse edge j. Solvers copy both before mutating.
	numRecs  int
	recCount []int32
	revRec   []int32 // len m

	// Signature pre-partition: sigOf[s] is a dense id of state s's set of
	// outgoing labels; states with equal sets share an id. numSigs is the
	// number of distinct sets.
	sigOf   []int32 // len n
	numSigs int
}

// N returns the number of states.
func (x *Index) N() int { return x.n }

// NumLabels returns the number of dense labels.
func (x *Index) NumLabels() int { return x.numLabels }

// NumEdges returns the number of distinct (from, label, to) edges.
func (x *Index) NumEdges() int { return x.m }

// LabelNames returns the dense-label name table (nil for anonymous
// indexes). Shared; do not modify.
func (x *Index) LabelNames() []string { return x.labels }

// Fwd returns the forward CSR arrays (start has length N+1). Shared; do
// not modify.
func (x *Index) Fwd() (start, label, to []int32) { return x.fwdStart, x.fwdLabel, x.fwdTo }

// Rev returns the reverse CSR arrays (start has length N+1). Shared; do
// not modify.
func (x *Index) Rev() (start, from, label []int32) { return x.revStart, x.revFrom, x.revLabel }

// Records returns the count-record skeleton: per-record initial counts and
// the record id of every reverse edge. Shared; solvers must copy before
// mutating.
func (x *Index) Records() (count, revRec []int32, numRecs int) {
	return x.recCount, x.revRec, x.numRecs
}

// Signatures returns the per-state outgoing-label-set signature ids and
// the number of distinct signatures. Shared; do not modify.
func (x *Index) Signatures() (sigOf []int32, numSigs int) { return x.sigOf, x.numSigs }

// Degree returns the out-degree of state s in constant time.
func (x *Index) Degree(s int32) int32 { return x.fwdStart[s+1] - x.fwdStart[s] }

// Dests returns the targets of state s under label l as a shared subslice
// of the forward index (sorted, deduplicated). The lookup is a binary
// search within s's degree slice.
func (x *Index) Dests(s, l int32) []int32 {
	lo, hi := x.fwdStart[s], x.fwdStart[s+1]
	i := lo + int32(sort.Search(int(hi-lo), func(k int) bool { return x.fwdLabel[lo+int32(k)] >= l }))
	j := i
	for j < hi && x.fwdLabel[j] == l {
		j++
	}
	return x.fwdTo[i:j]
}

// HasLabel reports whether state s has at least one l-edge.
func (x *Index) HasLabel(s, l int32) bool {
	lo, hi := x.fwdStart[s], x.fwdStart[s+1]
	i := lo + int32(sort.Search(int(hi-lo), func(k int) bool { return x.fwdLabel[lo+int32(k)] >= l }))
	return i < hi && x.fwdLabel[i] == l
}

// FromCSR rebuilds an Index from its forward CSR arrays — the inverse of
// reading Fwd() and LabelNames(), used by the persistent artifact store to
// round-trip indexes through disk. The reverse index, count records and
// signatures are rederived rather than stored (they are determined by the
// forward arrays, and rederiving keeps the payload small and the invariants
// trustworthy). Unlike build, every structural invariant is validated:
// the input may be a decoded disk artifact, and a malformed index would
// otherwise panic deep inside the partition solvers.
func FromCSR(n, numLabels int, labels []string, fwdStart, fwdLabel, fwdTo []int32) (*Index, error) {
	if n < 0 || numLabels < 0 {
		return nil, fmt.Errorf("lts: negative dimensions (%d states, %d labels)", n, numLabels)
	}
	if labels != nil && len(labels) != numLabels {
		return nil, fmt.Errorf("lts: %d label names for %d labels", len(labels), numLabels)
	}
	if len(fwdStart) != n+1 {
		return nil, fmt.Errorf("lts: fwdStart has length %d, want %d", len(fwdStart), n+1)
	}
	m := len(fwdTo)
	if len(fwdLabel) != m {
		return nil, fmt.Errorf("lts: fwdLabel has length %d, want %d", len(fwdLabel), m)
	}
	if fwdStart[0] != 0 || int(fwdStart[n]) != m {
		return nil, fmt.Errorf("lts: fwdStart does not span [0, %d]", m)
	}
	for s := 0; s < n; s++ {
		lo, hi := fwdStart[s], fwdStart[s+1]
		if lo > hi {
			return nil, fmt.Errorf("lts: fwdStart not monotone at state %d", s)
		}
		for i := lo; i < hi; i++ {
			if fwdLabel[i] < 0 || int(fwdLabel[i]) >= numLabels {
				return nil, fmt.Errorf("lts: edge %d has out-of-range label %d", i, fwdLabel[i])
			}
			if fwdTo[i] < 0 || int(fwdTo[i]) >= n {
				return nil, fmt.Errorf("lts: edge %d has out-of-range target %d", i, fwdTo[i])
			}
			if i > lo && (fwdLabel[i-1] > fwdLabel[i] ||
				(fwdLabel[i-1] == fwdLabel[i] && fwdTo[i-1] >= fwdTo[i])) {
				return nil, fmt.Errorf("lts: edges of state %d not sorted and deduplicated by (label, target)", s)
			}
		}
	}
	return build(n, numLabels, labels, fwdStart, fwdLabel, fwdTo), nil
}

// build assembles an Index from forward CSR arrays that are already
// grouped by state, sorted by (label, target) within each state, and
// deduplicated. It derives the reverse CSR (a stable counting sort by
// target, so in-edges stay in (source, label) order), the count-record
// skeleton and the signature table in O(n + m).
func build(n, numLabels int, labels []string, fwdStart, fwdLabel, fwdTo []int32) *Index {
	m := len(fwdTo)

	// Count records: contiguous (source, label) runs of the forward index.
	recCount := make([]int32, 0, m)
	fwdRec := make([]int32, m)
	for s := 0; s < n; s++ {
		last := int32(-1)
		for i := fwdStart[s]; i < fwdStart[s+1]; i++ {
			if len(recCount) == 0 || fwdLabel[i] != last {
				recCount = append(recCount, 0)
				last = fwdLabel[i]
			}
			r := int32(len(recCount) - 1)
			recCount[r]++
			fwdRec[i] = r
		}
	}

	// Reverse CSR by counting sort on the target.
	revStart := make([]int32, n+1)
	for _, t := range fwdTo {
		revStart[t+1]++
	}
	for i := 1; i <= n; i++ {
		revStart[i] += revStart[i-1]
	}
	revFrom := make([]int32, m)
	revLabel := make([]int32, m)
	revRec := make([]int32, m)
	fill := make([]int32, n)
	copy(fill, revStart[:n])
	for s := int32(0); s < int32(n); s++ {
		for i := fwdStart[s]; i < fwdStart[s+1]; i++ {
			t := fwdTo[i]
			j := fill[t]
			fill[t]++
			revFrom[j] = s
			revLabel[j] = fwdLabel[i]
			revRec[j] = fwdRec[i]
		}
	}

	sigOf, numSigs := computeSignatures(n, fwdStart, fwdLabel)

	return &Index{
		n:         n,
		numLabels: numLabels,
		m:         m,
		labels:    labels,
		fwdStart:  fwdStart,
		fwdLabel:  fwdLabel,
		fwdTo:     fwdTo,
		revStart:  revStart,
		revFrom:   revFrom,
		revLabel:  revLabel,
		numRecs:   len(recCount),
		recCount:  recCount,
		revRec:    revRec,
		sigOf:     sigOf,
		numSigs:   numSigs,
	}
}

// computeSignatures assigns each state a dense id of its outgoing label
// set. The forward span of a state is label-sorted, so the set is the run
// of distinct labels, encoded as a byte key.
func computeSignatures(n int, fwdStart, fwdLabel []int32) ([]int32, int) {
	sigOf := make([]int32, n)
	ids := make(map[string]int32, 16)
	var buf []byte
	for s := 0; s < n; s++ {
		buf = buf[:0]
		last := int32(-1)
		for i := fwdStart[s]; i < fwdStart[s+1]; i++ {
			if l := fwdLabel[i]; l != last {
				buf = append(buf, byte(l), byte(l>>8), byte(l>>16), byte(l>>24))
				last = l
			}
		}
		id, ok := ids[string(buf)]
		if !ok {
			id = int32(len(ids))
			ids[string(buf)] = id
		}
		sigOf[s] = id
	}
	return sigOf, len(ids)
}

// FromFSP builds the refinement index of an FSP. Actions are remapped to a
// dense label range covering only the actions that actually occur in the
// transition relation (tau, if present, is an ordinary label — exactly the
// strong-equivalence reading; observational callers index the saturated
// P-hat instead). The FSP's per-state arcs are already (action, target)
// sorted, so construction is a linear copy; adjacent duplicates are
// dropped defensively.
func FromFSP(f *fsp.FSP) *Index {
	n := f.NumStates()
	alphaLen := f.Alphabet().Len()
	used := make([]bool, alphaLen)
	for s := 0; s < n; s++ {
		for _, a := range f.Arcs(fsp.State(s)) {
			used[a.Act] = true
		}
	}
	dense := make([]int32, alphaLen)
	labels := make([]string, 0, alphaLen)
	for act := 0; act < alphaLen; act++ {
		if used[act] {
			dense[act] = int32(len(labels))
			labels = append(labels, f.Alphabet().Name(fsp.Action(act)))
		} else {
			dense[act] = -1
		}
	}

	fwdStart := make([]int32, n+1)
	fwdLabel := make([]int32, 0, f.NumTransitions())
	fwdTo := make([]int32, 0, f.NumTransitions())
	for s := 0; s < n; s++ {
		fwdStart[s] = int32(len(fwdTo))
		arcs := f.Arcs(fsp.State(s))
		for i, a := range arcs {
			if i > 0 && a == arcs[i-1] {
				continue
			}
			// The dense remap is monotone in the action id, so the span
			// stays (label, target) sorted.
			fwdLabel = append(fwdLabel, dense[a.Act])
			fwdTo = append(fwdTo, int32(a.To))
		}
	}
	fwdStart[n] = int32(len(fwdTo))
	return build(n, len(labels), labels, fwdStart, fwdLabel, fwdTo)
}

// FromWeak builds the weak observable-arc index of f from a precomputed
// tau-closure: label i is the i-th observable action (fsp.Action i+1),
// and the destinations of (s, i) are the weak sigma-derivatives
// {q : s ==sigma=> q} of Section 2.1. This is the saturated view the
// subset-construction deciders (kequiv, failures) step through; keeping
// the construction here keeps the label convention and the
// closure-closedness of the destination sets in one place. Labels are
// anonymous (these indexes are never unioned).
func FromWeak(f *fsp.FSP, clo fsp.Closure) *Index {
	numObs := f.Alphabet().NumObservable()
	b := NewBuilder(f.NumStates(), numObs)
	for s := 0; s < f.NumStates(); s++ {
		for i, sigma := range f.Alphabet().Observable() {
			for _, t := range fsp.WeakDest(f, clo, fsp.State(s), sigma) {
				b.Add(int32(s), int32(i), int32(t))
			}
		}
	}
	return b.Build()
}

// Builder accumulates labelled edges and produces an Index. Unlike
// FromFSP it accepts edges in any order and with duplicates; Build sorts
// and dedupes. The zero value is not usable; call NewBuilder or
// NewNamedBuilder.
type Builder struct {
	n         int
	numLabels int
	labels    []string
	from      []int32
	label     []int32
	to        []int32
}

// NewBuilder returns a builder over n states and numLabels anonymous
// labels (no name table; union only with other anonymous indexes).
func NewBuilder(n, numLabels int) *Builder {
	return &Builder{n: n, numLabels: numLabels}
}

// NewNamedBuilder returns a builder whose dense labels carry the given
// names (label i is names[i]).
func NewNamedBuilder(n int, names []string) *Builder {
	labels := make([]string, len(names))
	copy(labels, names)
	return &Builder{n: n, numLabels: len(names), labels: labels}
}

// EnsureStates raises the builder's state count to at least n. On-the-fly
// product constructions (the compose package's network explorer) intern
// states as they are discovered and cannot know the final count up front;
// they grow the space with EnsureStates before adding edges that mention a
// fresh state, keeping Add's range check meaningful throughout.
func (b *Builder) EnsureStates(n int) {
	if n > b.n {
		b.n = n
	}
}

// Add records the edge (from, label, to). Out-of-range states or labels
// panic: they indicate a construction bug, exactly like an out-of-range
// slice index in the caller would.
func (b *Builder) Add(from, label, to int32) {
	if from < 0 || int(from) >= b.n || to < 0 || int(to) >= b.n {
		panic(fmt.Sprintf("lts: edge (%d,%d,%d) state out of range [0,%d)", from, label, to, b.n))
	}
	if label < 0 || int(label) >= b.numLabels {
		panic(fmt.Sprintf("lts: edge (%d,%d,%d) label out of range [0,%d)", from, label, to, b.numLabels))
	}
	b.from = append(b.from, from)
	b.label = append(b.label, label)
	b.to = append(b.to, to)
}

// Build sorts the accumulated edges by (from, label, to), drops
// duplicates, and assembles the Index. Build consumes the edge buffers
// and resets them, so a builder may afterwards accumulate a fresh edge
// set over the same state space (the produced Index is unaffected).
func (b *Builder) Build() *Index {
	m := len(b.from)
	// LSD radix sort with three stable counting passes: by target, then
	// label, then source — O(m + n + labels), no comparison sort.
	b.countingPass(b.to, b.n)
	b.countingPass(b.label, b.numLabels)
	b.countingPass(b.from, b.n)

	// Dedup in place (the triple columns are sorted), compacting the source
	// column alongside, then derive the start offsets from it.
	fwdStart := make([]int32, b.n+1)
	fwdLabel := make([]int32, 0, m)
	fwdTo := make([]int32, 0, m)
	for i := 0; i < m; i++ {
		if i > 0 && b.from[i] == b.from[i-1] && b.label[i] == b.label[i-1] && b.to[i] == b.to[i-1] {
			continue
		}
		b.from[len(fwdTo)] = b.from[i]
		fwdLabel = append(fwdLabel, b.label[i])
		fwdTo = append(fwdTo, b.to[i])
	}
	for i := range fwdTo {
		fwdStart[b.from[i]+1]++
	}
	for s := 0; s < b.n; s++ {
		fwdStart[s+1] += fwdStart[s]
	}
	b.from, b.label, b.to = nil, nil, nil
	return build(b.n, b.numLabels, b.labels, fwdStart, fwdLabel, fwdTo)
}

// countingPass stably reorders the three edge columns by the given key
// column (values in [0, width)).
func (b *Builder) countingPass(key []int32, width int) {
	m := len(b.from)
	counts := make([]int32, width+1)
	for _, k := range key {
		counts[k+1]++
	}
	for i := 1; i <= width; i++ {
		counts[i] += counts[i-1]
	}
	nf := make([]int32, m)
	nl := make([]int32, m)
	nt := make([]int32, m)
	for i := 0; i < m; i++ {
		j := counts[key[i]]
		counts[key[i]]++
		nf[j] = b.from[i]
		nl[j] = b.label[i]
		nt[j] = b.to[i]
	}
	b.from, b.label, b.to = nf, nl, nt
}

// DisjointUnion combines two indexes into one over the disjoint union of
// their state spaces (a's states first; the returned offset maps b-state s
// to offset+s). Labels are aligned by name — the lts-level counterpart of
// fsp.DisjointUnion's name-interning — so two cached processes can be
// compared without re-flattening either one. Two anonymous indexes union
// with identity label mapping over the wider label range; mixing a named
// and an anonymous index is an error.
func DisjointUnion(a, b *Index) (*Index, int32, error) {
	var labels []string
	remap := make([]int32, b.numLabels)
	var numLabels int
	switch {
	case a.labels != nil && b.labels != nil:
		labels = make([]string, len(a.labels), len(a.labels)+len(b.labels))
		copy(labels, a.labels)
		pos := make(map[string]int32, len(labels))
		for i, nm := range labels {
			pos[nm] = int32(i)
		}
		for i, nm := range b.labels {
			id, ok := pos[nm]
			if !ok {
				id = int32(len(labels))
				labels = append(labels, nm)
				pos[nm] = id
			}
			remap[i] = id
		}
		numLabels = len(labels)
	case a.labels == nil && b.labels == nil:
		for i := range remap {
			remap[i] = int32(i)
		}
		numLabels = a.numLabels
		if b.numLabels > numLabels {
			numLabels = b.numLabels
		}
	default:
		return nil, 0, fmt.Errorf("lts: cannot union a named index with an anonymous one")
	}

	n := a.n + b.n
	m := a.m + b.m
	off := int32(a.n)
	fwdStart := make([]int32, n+1)
	copy(fwdStart, a.fwdStart)
	for i := 1; i <= b.n; i++ {
		fwdStart[a.n+i] = int32(a.m) + b.fwdStart[i]
	}
	fwdLabel := make([]int32, m)
	fwdTo := make([]int32, m)
	copy(fwdLabel, a.fwdLabel)
	copy(fwdTo, a.fwdTo)
	for i := 0; i < b.m; i++ {
		fwdLabel[a.m+i] = remap[b.fwdLabel[i]]
		fwdTo[a.m+i] = b.fwdTo[i] + off
	}

	// A non-monotone remap can break b's per-state (label, target) order;
	// restore it span by span. The common case — both sides sharing one
	// alphabet — keeps the remap monotone and skips this entirely.
	monotone := true
	for i := 1; i < len(remap); i++ {
		if remap[i] <= remap[i-1] {
			monotone = false
			break
		}
	}
	if !monotone {
		for s := a.n; s < n; s++ {
			lo, hi := fwdStart[s], fwdStart[s+1]
			span := spanSorter{label: fwdLabel[lo:hi], to: fwdTo[lo:hi]}
			if !sort.IsSorted(span) {
				sort.Sort(span)
			}
		}
	}
	return build(n, numLabels, labels, fwdStart, fwdLabel, fwdTo), off, nil
}

// spanSorter sorts one state's forward span by (label, target).
type spanSorter struct {
	label, to []int32
}

func (s spanSorter) Len() int { return len(s.label) }
func (s spanSorter) Less(i, j int) bool {
	if s.label[i] != s.label[j] {
		return s.label[i] < s.label[j]
	}
	return s.to[i] < s.to[j]
}
func (s spanSorter) Swap(i, j int) {
	s.label[i], s.label[j] = s.label[j], s.label[i]
	s.to[i], s.to[j] = s.to[j], s.to[i]
}
