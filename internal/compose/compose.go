// Package compose implements networks of communicating processes: the CCS
// parallel composition, restriction and relabeling operators of Section 6
// of Kanellakis & Smolka, lifted from the binary fsp.Compose to an n-ary
// Network with a single reachable-product explorer behind it.
//
// The point of the package is scale. On a network of k components the
// composed state space is exponential in k, so the composed process must
// never be built carelessly: the explorer applies restriction inline (a
// pruned interleaving is never generated, let alone removed afterwards),
// interns only reachable product states, and can materialize the product
// either as an *fsp.FSP (for the quotient and saturation pipelines) or
// directly into the internal/lts CSR refinement index — no intermediate
// edge slices, no per-arc name interning — for callers that only need to
// partition, count or benchmark the product.
//
// Composition semantics are Milner's: components interleave on their
// (relabeled) actions, complementary actions — "a" in one component, "a'"
// in another — synchronize pairwise into a single tau move, and hiding a
// channel removes its unsynchronized interleavings while keeping the
// handshake taus ((P | Q)\L). Extensions of a product state are the union
// of the component extensions, exactly as in fsp.Compose.
//
// On top of the pairwise handshake a Network may carry an explicit
// synchronization table (Sync) of n-way rendezvous vectors in the style of
// Arnold–Nivat synchronization algebras / CSP multiway rendezvous: each
// SyncRule names the actions that distinct components must jointly fire
// and the single label the joint step produces (tau or a visible action).
// The table is additive — interleavings and pairwise handshakes are
// unchanged — and the default (empty) table is exactly CCS, so networks
// without sync rules behave byte-for-byte as before. Quorum and broadcast
// steps of distributed protocols, which pairwise handshakes cannot
// express, become single product transitions.
//
// The payoff used by internal/engine is compositionality: observation
// congruence ≈ᶜ (and ~, and — for the operators used here — even plain ≈)
// is preserved by composition, restriction and relabeling, so each
// component can be quotiented before the product is taken. See
// engine.CheckNetwork for the minimize-then-compose pipeline and ccsbench
// E17 for the measured effect.
package compose

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"ccs/internal/fsp"
	"ccs/internal/lts"
)

// Component is one process instance inside a Network, with an optional
// relabeling of its observable actions (CCS P[f]). Relabel maps action
// names to action names; a base-name entry "a" -> "b" also carries the
// co-name "a'" to "b'" unless an explicit "a'" entry overrides it.
type Component struct {
	P       *fsp.FSP
	Relabel map[string]string
}

// SyncRule is one n-way rendezvous vector of a network's synchronization
// table. Parts are action names in the post-relabeling shared namespace
// (a part "a'" matches the co-name literally; no co-name transport is
// applied to parts): the rule fires when len(Parts) *distinct* components
// simultaneously fire the named actions, one part each, and the joint step
// carries Result as its single product label. Result "" (or "tau") makes
// the rendezvous internal, like a handshake; any other name makes it a
// visible action of the product, subject to restriction — hiding the
// result prunes the vector entirely, while hiding a part only removes that
// action's interleavings and leaves the rendezvous intact (exactly the
// hiding semantics of the pairwise handshake).
type SyncRule struct {
	Parts  []string
	Result string
}

// Tau reports whether the rule's joint step is internal.
func (r SyncRule) Tau() bool { return r.Result == "" || r.Result == fsp.TauName }

// String renders the rule as "a + b + c -> res" ("-> tau" for internal).
func (r SyncRule) String() string {
	res := r.Result
	if r.Tau() {
		res = fsp.TauName
	}
	return strings.Join(r.Parts, " + ") + " -> " + res
}

// Network describes the parallel composition of its components with the
// channels in Hidden restricted afterwards: (C1[f1] | ... | Ck[fk]) \ Hidden,
// synchronizing pairwise on complementary names and jointly on the sync
// vectors in Sync (nil Sync is plain CCS).
// The zero value is unusable; construct with New and extend with Add/Hide.
type Network struct {
	Name       string
	Components []Component
	Hidden     []string
	Sync       []SyncRule
}

// New returns a network named name over the given components (no
// relabeling, nothing hidden).
func New(name string, ps ...*fsp.FSP) *Network {
	n := &Network{Name: name}
	for _, p := range ps {
		n.Add(p, nil)
	}
	return n
}

// Add appends a component instance with an optional relabeling and returns
// the network for chaining. The same *fsp.FSP may be added more than once
// (self-composition); instances are independent.
func (n *Network) Add(p *fsp.FSP, relabel map[string]string) *Network {
	n.Components = append(n.Components, Component{P: p, Relabel: relabel})
	return n
}

// Hide appends channel names to the restriction set and returns the
// network for chaining. Hiding a name also hides its co-name.
func (n *Network) Hide(names ...string) *Network {
	n.Hidden = append(n.Hidden, names...)
	return n
}

// AddSync appends a sync vector with the given result label (use "" or
// "tau" for an internal rendezvous) and returns the network for chaining.
func (n *Network) AddSync(result string, parts ...string) *Network {
	n.Sync = append(n.Sync, SyncRule{Parts: parts, Result: result})
	return n
}

// Validate checks the network description: at least one component, no nil
// processes, no relabeling or hiding of tau (or of the saturation epsilon,
// which is not a CCS action).
func (n *Network) Validate() error {
	if len(n.Components) == 0 {
		return fmt.Errorf("compose: network %q has no components", n.Name)
	}
	for i, c := range n.Components {
		if c.P == nil {
			return fmt.Errorf("compose: network %q component %d is nil", n.Name, i)
		}
		for from, to := range c.Relabel {
			if from == fsp.TauName || to == fsp.TauName {
				return fmt.Errorf("compose: component %d relabels tau (%q -> %q); CCS relabeling fixes tau", i, from, to)
			}
			if from == fsp.EpsilonName || to == fsp.EpsilonName {
				return fmt.Errorf("compose: component %d relabels %q; the saturation epsilon is not a CCS action", i, from)
			}
		}
	}
	for _, h := range n.Hidden {
		if h == fsp.TauName {
			return fmt.Errorf("compose: tau cannot be hidden")
		}
	}
	for ri, r := range n.Sync {
		if len(r.Parts) < 2 {
			return fmt.Errorf("compose: sync rule %d (%s) has %d part(s); a rendezvous needs at least two", ri, r, len(r.Parts))
		}
		for _, p := range r.Parts {
			if p == "" || p == fsp.TauName {
				return fmt.Errorf("compose: sync rule %d (%s) uses tau as a part; only observable actions rendezvous", ri, r)
			}
			if p == fsp.EpsilonName {
				return fmt.Errorf("compose: sync rule %d uses %q as a part; the saturation epsilon is not a CCS action", ri, p)
			}
		}
		if r.Result == fsp.EpsilonName {
			return fmt.Errorf("compose: sync rule %d results in %q; the saturation epsilon is not a CCS action", ri, r.Result)
		}
	}
	return nil
}

// String renders the CCS shape of the network.
func (n *Network) String() string {
	parts := make([]string, len(n.Components))
	for i, c := range n.Components {
		nm := c.P.Name()
		if nm == "" {
			nm = "fsp"
		}
		if len(c.Relabel) > 0 {
			nm += "[...]"
		}
		parts[i] = nm
	}
	s := "(" + strings.Join(parts, "|") + ")"
	if len(n.Hidden) > 0 {
		s += "\\{" + strings.Join(n.Hidden, ",") + "}"
	}
	if len(n.Sync) > 0 {
		rules := make([]string, len(n.Sync))
		for i, r := range n.Sync {
			rules[i] = r.String()
		}
		s += " sync{" + strings.Join(rules, "; ") + "}"
	}
	return s
}

// productSink receives the reachable product as it is explored. States are
// announced in discovery order (state i is the i-th addState call; state 0
// is the start), so arcs only ever mention already-announced states.
type productSink interface {
	addState(extNames []string)
	addArc(from, label, to int32)
}

// Step is a component transition translated into the network's dense label
// space; Label 0 is tau.
type Step struct {
	Label int32
	To    int32
}

// Expansion is the dense-label translated view of a network: every
// component's transitions with relabelings applied and actions interned
// into one shared label space, plus the co-name and hidden tables the
// product semantics needs. It is the substrate both of the materializing
// explorer (run) and of the on-the-fly checker in internal/otf, which
// draws successor tuples from it without ever building the product.
// An Expansion is immutable after construction and safe for concurrent
// readers.
type Expansion struct {
	Labels  []string     // dense label names; Labels[0] == "tau"
	CoOf    []int32      // CoOf[l] = dense id of the co-name of l, or -1
	Hidden  []bool       // Hidden[l]: l's interleavings are restricted
	Trans   [][][]Step   // Trans[i][s], sorted by (Label, To)
	Exts    [][][]string // Exts[i][s]: extension variable names
	Starts  []int32
	Vectors []SyncVec // translated sync table; vectors with a restricted result are dropped
}

// SyncVec is a SyncRule translated into the dense label space: Parts is
// sorted ascending (so equal-label parts are adjacent, which the matching
// enumeration uses to emit each unordered assignment exactly once) and
// Result is the joint step's product label, 0 for tau.
type SyncVec struct {
	Parts  []int32
	Result int32
}

// K returns the number of components.
func (e *Expansion) K() int { return len(e.Trans) }

// Expand translates every component into the shared dense label space:
// relabelings are applied by name (with co-name transport), the hidden set
// is marked on names and co-names, and per-state arcs are re-sorted by the
// dense label so handshake partners are found by binary search.
func (n *Network) Expand() (*Expansion, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	e := &Expansion{Labels: []string{fsp.TauName}}
	ids := map[string]int32{fsp.TauName: 0}
	intern := func(name string) int32 {
		if id, ok := ids[name]; ok {
			return id
		}
		id := int32(len(e.Labels))
		e.Labels = append(e.Labels, name)
		ids[name] = id
		return id
	}

	k := len(n.Components)
	e.Trans = make([][][]Step, k)
	e.Exts = make([][][]string, k)
	e.Starts = make([]int32, k)
	for i, comp := range n.Components {
		f := comp.P
		e.Starts[i] = int32(f.Start())
		// Per-action dense label after relabeling. An explicit entry for a
		// name wins; otherwise a base-name entry carries its co-name.
		actLabel := make([]int32, f.Alphabet().Len())
		for a := 1; a < f.Alphabet().Len(); a++ {
			name := f.Alphabet().Name(fsp.Action(a))
			if to, ok := comp.Relabel[name]; ok {
				name = to
			} else if base, isCo := strings.CutSuffix(name, "'"); isCo {
				if to, ok := comp.Relabel[base]; ok {
					// CoName, not to+"'": the map may target a co-name
					// ("b" -> "a'"), and CoName is involutive, so b' must
					// become a — a doubled quote would never handshake.
					name = fsp.CoName(to)
				}
			}
			actLabel[a] = intern(name)
		}
		e.Trans[i] = make([][]Step, f.NumStates())
		e.Exts[i] = make([][]string, f.NumStates())
		for s := 0; s < f.NumStates(); s++ {
			arcs := f.Arcs(fsp.State(s))
			ps := make([]Step, len(arcs))
			for j, a := range arcs {
				lbl := int32(0)
				if a.Act != fsp.Tau {
					lbl = actLabel[a.Act]
				}
				ps[j] = Step{Label: lbl, To: int32(a.To)}
			}
			sort.Slice(ps, func(x, y int) bool {
				if ps[x].Label != ps[y].Label {
					return ps[x].Label < ps[y].Label
				}
				return ps[x].To < ps[y].To
			})
			e.Trans[i][s] = ps
			if ext := f.Ext(fsp.State(s)); ext != fsp.EmptyVars {
				var names []string
				for _, id := range ext.IDs() {
					names = append(names, f.Vars().Name(id))
				}
				e.Exts[i][s] = names
			}
		}
	}

	// Translate the sync table before the label-indexed tables are sized:
	// parts and results are interned whether or not any component carries
	// them (an unmatchable part simply never fires; internal/vet flags it).
	for _, r := range n.Sync {
		parts := make([]int32, len(r.Parts))
		for j, p := range r.Parts {
			parts[j] = intern(p)
		}
		sort.Slice(parts, func(x, y int) bool { return parts[x] < parts[y] })
		res := int32(0)
		if !r.Tau() {
			res = intern(r.Result)
		}
		e.Vectors = append(e.Vectors, SyncVec{Parts: parts, Result: res})
	}

	e.CoOf = make([]int32, len(e.Labels))
	e.Hidden = make([]bool, len(e.Labels))
	for l := 1; l < len(e.Labels); l++ {
		if co, ok := ids[fsp.CoName(e.Labels[l])]; ok {
			e.CoOf[l] = co
		} else {
			e.CoOf[l] = -1
		}
	}
	e.CoOf[0] = -1
	for _, h := range n.Hidden {
		if id, ok := ids[h]; ok {
			e.Hidden[id] = true
		}
		if id, ok := ids[fsp.CoName(h)]; ok {
			e.Hidden[id] = true
		}
	}
	// Restriction applies to the *result* of a rendezvous: a vector whose
	// visible result is hidden can never fire and is dropped here, once,
	// instead of being re-tested in every Succ call. Tau results, like
	// handshake taus, always survive restriction.
	if len(e.Vectors) > 0 {
		kept := e.Vectors[:0]
		for _, v := range e.Vectors {
			if v.Result == 0 || !e.Hidden[v.Result] {
				kept = append(kept, v)
			}
		}
		e.Vectors = kept
	}
	return e, nil
}

// span returns the run of arcs labelled l in the label-sorted slice ps.
func span(ps []Step, l int32) []Step {
	lo := sort.Search(len(ps), func(i int) bool { return ps[i].Label >= l })
	hi := lo
	for hi < len(ps) && ps[hi].Label == l {
		hi++
	}
	return ps[lo:hi]
}

// Succ enumerates the product successors of the state vector cur exactly
// as the network semantics dictates: interleavings of unhidden actions
// (tau always), pairwise complementary handshakes as tau, and — when the
// network carries a sync table — every firing of every sync vector. succ
// must be a scratch slice of length K; emit receives the dense label and
// the successor vector, which it must copy if retained (the slice is
// reused). Returning false from emit aborts the enumeration; Succ reports
// whether it ran to completion.
func (e *Expansion) Succ(cur, succ []int32, emit func(label int32, succ []int32) bool) bool {
	k := len(e.Trans)
	for i := 0; i < k; i++ {
		for _, a := range e.Trans[i][cur[i]] {
			// Interleaving: tau always; observables unless hidden.
			if a.Label == 0 || !e.Hidden[a.Label] {
				copy(succ, cur)
				succ[i] = a.To
				if !emit(a.Label, succ) {
					return false
				}
			}
			// Handshake with a later component: a.Label in i, its co-label
			// in j, jointly a tau. Scanning only j > i visits each
			// unordered pair once (the co-label's own iteration at j would
			// find the mirrored pair).
			if a.Label == 0 {
				continue
			}
			co := e.CoOf[a.Label]
			if co < 0 {
				continue
			}
			for j := i + 1; j < k; j++ {
				for _, b := range span(e.Trans[j][cur[j]], co) {
					copy(succ, cur)
					succ[i] = a.To
					succ[j] = b.To
					if !emit(0, succ) {
						return false
					}
				}
			}
		}
	}
	return e.emitVectors(cur, succ, emit)
}

// emitVectors enumerates every firing of every sync vector at cur: for
// each vector, every assignment of its parts to distinct components whose
// current state enables the part (one arc choice per component), emitted
// as a single joint step labelled with the vector's result. It is a no-op
// on the default (empty) table, so plain CCS networks pay nothing — not
// even the scratch allocation.
func (e *Expansion) emitVectors(cur, succ []int32, emit func(label int32, succ []int32) bool) bool {
	if len(e.Vectors) == 0 {
		return true
	}
	// succ doubles as the in-progress joint successor: matchVector writes
	// the chosen component moves into it and restores cur on backtrack, so
	// between vectors succ is always a copy of cur.
	copy(succ, cur)
	used := make([]bool, len(e.Trans))
	for _, v := range e.Vectors {
		if !e.matchVector(v, 0, -1, cur, succ, used, emit) {
			return false
		}
	}
	return true
}

// matchVector assigns v.Parts[p:] to distinct components not yet in used,
// emitting one joint successor per complete assignment. prev is the
// component that took part p-1: because Parts is sorted, a run of
// equal-label parts is forced onto strictly increasing component indices,
// so each unordered choice of components is emitted exactly once (arc
// multiplicity within one component still multiplies, as it must).
func (e *Expansion) matchVector(v SyncVec, p int, prev int, cur, succ []int32, used []bool, emit func(label int32, succ []int32) bool) bool {
	if p == len(v.Parts) {
		return emit(v.Result, succ)
	}
	l := v.Parts[p]
	lo := 0
	if p > 0 && v.Parts[p-1] == l {
		lo = prev + 1
	}
	for i := lo; i < len(e.Trans); i++ {
		if used[i] {
			continue
		}
		arcs := span(e.Trans[i][cur[i]], l)
		if len(arcs) == 0 {
			continue
		}
		used[i] = true
		for _, a := range arcs {
			succ[i] = a.To
			if !e.matchVector(v, p+1, i, cur, succ, used, emit) {
				succ[i] = cur[i]
				used[i] = false
				return false
			}
		}
		succ[i] = cur[i]
		used[i] = false
	}
	return true
}

// SuccBatch accumulates the product successors of one state vector as flat
// parallel arrays: successor i is (Labels[i], Vec(i)). It exists for
// callers that need a state's full successor set in hand before acting on
// it — the on-the-fly checker's work-stealing scheduler turns the fresh
// children of one processed pair into a single steal-granular deque entry
// — without the per-successor copy discipline of the Succ callback.
type SuccBatch struct {
	K      int     // vector stride
	Labels []int32 // dense label of successor i
	Vecs   []int32 // len(Labels) vector windows of stride K
}

// Reset clears the batch for reuse, keeping capacity.
func (b *SuccBatch) Reset() {
	b.Labels = b.Labels[:0]
	b.Vecs = b.Vecs[:0]
}

// Len returns the number of buffered successors.
func (b *SuccBatch) Len() int { return len(b.Labels) }

// Vec returns the i-th successor vector, aliasing the batch's storage.
func (b *SuccBatch) Vec(i int) []int32 { return b.Vecs[i*b.K : (i+1)*b.K] }

// AppendSucc appends every product successor of cur to b — the same
// enumeration as Succ (interleavings of unhidden actions, pairwise
// handshakes as tau, sync-vector firings), materialized instead of
// streamed. The batch's storage is self-contained: cur may be reused
// immediately.
func (e *Expansion) AppendSucc(cur []int32, b *SuccBatch) {
	k := len(e.Trans)
	b.K = k
	for i := 0; i < k; i++ {
		for _, a := range e.Trans[i][cur[i]] {
			if a.Label == 0 || !e.Hidden[a.Label] {
				base := len(b.Vecs)
				b.Vecs = append(b.Vecs, cur...)
				b.Vecs[base+i] = a.To
				b.Labels = append(b.Labels, a.Label)
			}
			if a.Label == 0 {
				continue
			}
			co := e.CoOf[a.Label]
			if co < 0 {
				continue
			}
			for j := i + 1; j < k; j++ {
				for _, h := range span(e.Trans[j][cur[j]], co) {
					base := len(b.Vecs)
					b.Vecs = append(b.Vecs, cur...)
					b.Vecs[base+i] = a.To
					b.Vecs[base+j] = h.To
					b.Labels = append(b.Labels, 0)
				}
			}
		}
	}
	if len(e.Vectors) > 0 {
		succ := make([]int32, k)
		e.emitVectors(cur, succ, func(label int32, s []int32) bool {
			b.Vecs = append(b.Vecs, s...)
			b.Labels = append(b.Labels, label)
			return true
		})
	}
}

// AppendExtNames appends the extension of the product state cur — the
// union of the component extensions by name, sorted and deduplicated — to
// dst and returns the extended slice. seen is caller-provided scratch,
// cleared on entry.
func (e *Expansion) AppendExtNames(dst []string, cur []int32, seen map[string]bool) []string {
	clear(seen)
	base := len(dst)
	for i, s := range cur {
		for _, nm := range e.Exts[i][s] {
			if !seen[nm] {
				seen[nm] = true
				dst = append(dst, nm)
			}
		}
	}
	sort.Strings(dst[base:])
	return dst
}

// pollEvery is how many product states are expanded between context
// checks in run — the same stride the otf scheduler uses, cheap enough
// to be invisible and tight enough that cancelling a huge flat
// composition takes effect within a few hundred states.
const pollEvery = 256

// run walks the reachable product through Succ, interning state vectors in
// discovery order and emitting every product transition into the sink.
// Restriction never removes a handshake. The walk polls ctx every
// pollEvery expanded states and abandons the product on cancellation; a
// partially filled sink is discarded by the caller.
func (e *Expansion) run(ctx context.Context, sink productSink) error {
	k := len(e.Trans)
	ids := map[string]int32{}
	var order []int32 // flat vectors, stride k
	keyBuf := make([]byte, 4*k)
	key := func(v []int32) string {
		for i, s := range v {
			keyBuf[4*i] = byte(s)
			keyBuf[4*i+1] = byte(s >> 8)
			keyBuf[4*i+2] = byte(s >> 16)
			keyBuf[4*i+3] = byte(s >> 24)
		}
		return string(keyBuf)
	}
	extScratch := map[string]bool{}
	intern := func(v []int32) int32 {
		kk := key(v)
		if id, ok := ids[kk]; ok {
			return id
		}
		id := int32(len(order) / k)
		ids[kk] = id
		order = append(order, v...)
		// Extension: union of the component extensions by name.
		sink.addState(e.AppendExtNames(nil, v, extScratch))
		return id
	}

	cur := make([]int32, k)
	succ := make([]int32, k)
	copy(cur, e.Starts)
	intern(cur)
	for head := int32(0); int(head)*k < len(order); head++ {
		if head%pollEvery == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		copy(cur, order[int(head)*k:int(head)*k+k])
		e.Succ(cur, succ, func(label int32, s []int32) bool {
			sink.addArc(head, label, intern(s))
			return true
		})
	}
	return nil
}

// fspSink materializes the product as an *fsp.FSP. The builder's alphabet
// is pre-interned in dense-label order, so dense label l is fsp.Action l.
type fspSink struct {
	b *fsp.Builder
}

func (s *fspSink) addState(extNames []string) {
	st := s.b.AddState()
	if len(extNames) > 0 {
		s.b.Extend(st, extNames...)
	}
}

func (s *fspSink) addArc(from, label, to int32) {
	s.b.Arc(fsp.State(from), fsp.Action(label), fsp.State(to))
}

// FSP materializes the reachable product as a process: the composed FSP of
// Milner's (C1[f1] | ... | Ck[fk]) \ Hidden, with only reachable states
// constructed. Use this form to feed the product into the quotient,
// saturation and equivalence pipelines.
func (n *Network) FSP() (*fsp.FSP, error) { return n.FSPCtx(context.Background()) }

// FSPCtx is FSP with cancellation: the product walk polls ctx and
// returns its error mid-composition, so a server deadline or Ctrl-C
// stops a state-space explosion instead of riding it out.
func (n *Network) FSPCtx(ctx context.Context) (*fsp.FSP, error) {
	e, err := n.Expand()
	if err != nil {
		return nil, err
	}
	name := n.Name
	if name == "" {
		name = n.String()
	}
	b := fsp.NewBuilder(name)
	for _, l := range e.Labels[1:] {
		b.Action(l)
	}
	sink := &fspSink{b: b}
	if err := e.run(ctx, sink); err != nil {
		return nil, err
	}
	b.SetStart(0)
	out, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("compose: %w", err)
	}
	return out, nil
}

// csrSink streams the product straight into the CSR refinement index,
// tracking the extension signature of each state for the initial
// partition. No *fsp.FSP, no name interning per arc, no edge slices beyond
// the index builder's own columnar buffers.
type csrSink struct {
	b       *lts.Builder
	initial []int32
	sigs    map[string]int32
	buf     []byte
}

func (s *csrSink) addState(extNames []string) {
	s.b.EnsureStates(len(s.initial) + 1)
	s.buf = s.buf[:0]
	for _, nm := range extNames {
		s.buf = append(s.buf, nm...)
		s.buf = append(s.buf, 0)
	}
	blk, ok := s.sigs[string(s.buf)]
	if !ok {
		blk = int32(len(s.sigs))
		s.sigs[string(s.buf)] = blk
	}
	s.initial = append(s.initial, blk)
}

func (s *csrSink) addArc(from, label, to int32) { s.b.Add(from, label, to) }

// Index materializes the reachable product directly into the internal/lts
// refinement index together with the extension-grouped initial partition
// (the Lemma 3.1 instance for the product). This is the flat-composition
// fast path for callers that only partition, count or benchmark the
// product: the FSP form is never built. Labels are named, so the index
// unions with FromFSP-built indexes of other processes.
func (n *Network) Index() (*lts.Index, []int32, error) {
	return n.IndexCtx(context.Background())
}

// IndexCtx is Index with cancellation, mirroring FSPCtx.
func (n *Network) IndexCtx(ctx context.Context) (*lts.Index, []int32, error) {
	e, err := n.Expand()
	if err != nil {
		return nil, nil, err
	}
	sink := &csrSink{b: lts.NewNamedBuilder(0, e.Labels), sigs: map[string]int32{}}
	if err := e.run(ctx, sink); err != nil {
		return nil, nil, err
	}
	return sink.b.Build(), sink.initial, nil
}
