package compose_test

import (
	"fmt"
	"math/rand"
	"testing"

	"ccs/internal/compose"
	"ccs/internal/core"
	"ccs/internal/fsp"
	"ccs/internal/gen"
	"ccs/internal/lts"
	"ccs/internal/partition"
)

// sender is a · b' · (repeat); receiver is a' · c · (repeat). Composed they
// can handshake on a.
func sender() *fsp.FSP {
	b := fsp.NewBuilder("S")
	b.AddStates(2)
	b.ArcName(0, "a", 1)
	b.ArcName(1, "b'", 0)
	b.Accept(0).Accept(1)
	return b.MustBuild()
}

func receiver() *fsp.FSP {
	b := fsp.NewBuilder("R")
	b.AddStates(2)
	b.ArcName(0, "a'", 1)
	b.ArcName(1, "c", 0)
	b.Accept(0).Accept(1)
	return b.MustBuild()
}

// TestBinaryMatchesFspCompose checks the n-ary explorer against the
// existing binary fsp.Compose on handshake-capable pairs: the two product
// constructions must be strongly equivalent.
func TestBinaryMatchesFspCompose(t *testing.T) {
	pairs := [][2]*fsp.FSP{
		{sender(), receiver()},
		{receiver(), sender()},
		{sender(), sender()},
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10; i++ {
		pairs = append(pairs, [2]*fsp.FSP{
			gen.Random(rng, 3+rng.Intn(4), 6, 3, 0.2),
			gen.Random(rng, 3+rng.Intn(4), 6, 3, 0.2),
		})
	}
	for i, pair := range pairs {
		want, err := fsp.Compose(pair[0], pair[1])
		if err != nil {
			t.Fatal(err)
		}
		got, err := compose.New("net", pair[0], pair[1]).FSP()
		if err != nil {
			t.Fatal(err)
		}
		eq, err := core.StrongEquivalent(want, got)
		if err != nil {
			t.Fatal(err)
		}
		if !eq {
			t.Errorf("pair %d: network product not strongly equivalent to fsp.Compose", i)
		}
	}
}

// TestHideKeepsHandshake: hiding the handshake channel removes the
// unsynchronized interleavings but keeps the synchronized tau, so the
// restricted product of sender|receiver is forced through the handshake.
func TestHideKeepsHandshake(t *testing.T) {
	net := compose.New("sr", sender(), receiver()).Hide("a")
	f, err := net.FSP()
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < f.NumStates(); s++ {
		for _, a := range f.Arcs(fsp.State(s)) {
			name := f.Alphabet().Name(a.Act)
			if name == "a" || name == "a'" {
				t.Fatalf("hidden action %q survives in the product", name)
			}
		}
	}
	// The handshake must still be possible: spec is tau then the two
	// visible actions interleaving back to start. Weak-equivalently, b'
	// must be reachable (sender only advances via the handshake).
	found := false
	for s := 0; s < f.NumStates() && !found; s++ {
		for _, a := range f.Arcs(fsp.State(s)) {
			if f.Alphabet().Name(a.Act) == "b'" {
				found = true
				break
			}
		}
	}
	if !found {
		t.Fatal("handshake tau was restricted away: b' unreachable")
	}
	// And the inline restriction must agree with compose-then-restrict.
	flat, err := fsp.Compose(sender(), receiver())
	if err != nil {
		t.Fatal(err)
	}
	restricted, err := fsp.Restrict(flat, "a")
	if err != nil {
		t.Fatal(err)
	}
	eq, err := core.StrongEquivalent(f, restricted)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatal("inline restriction disagrees with fsp.Restrict(fsp.Compose(...))")
	}
}

// TestRelabelCarriesCoNames: a base-name relabeling applies to the co-name
// too, so a generic cell can be instantiated onto concrete channels.
func TestRelabelCarriesCoNames(t *testing.T) {
	cell := gen.BufferCell(1)
	net := (&compose.Network{Name: "one"}).Add(cell, map[string]string{"in": "left", "out": "right"})
	f, err := net.FSP()
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for s := 0; s < f.NumStates(); s++ {
		for _, a := range f.Arcs(fsp.State(s)) {
			names[f.Alphabet().Name(a.Act)] = true
		}
	}
	for _, want := range []string{"left", "right'", "tau"} {
		if !names[want] {
			t.Errorf("product lacks relabeled action %q (have %v)", want, names)
		}
	}
	if names["in"] || names["out'"] {
		t.Errorf("unrelabeled action survives: %v", names)
	}
}

// TestRelabelToCoName: a relabeling may target a co-name ("b" -> "a'"),
// in which case the component's b' arcs must become a (CoName is
// involutive), so handshakes work and are symmetric in component order.
func TestRelabelToCoName(t *testing.T) {
	// P is b · b' · (repeat); relabeled {b: a'} it becomes a' · a.
	pb := fsp.NewBuilder("P")
	pb.AddStates(2)
	pb.ArcName(0, "b", 1)
	pb.ArcName(1, "b'", 0)
	pb.Accept(0).Accept(1)
	p := pb.MustBuild()
	// Q is a' · a.
	qb := fsp.NewBuilder("Q")
	qb.AddStates(2)
	qb.ArcName(0, "a'", 1)
	qb.ArcName(1, "a", 0)
	qb.Accept(0).Accept(1)
	q := qb.MustBuild()

	relabel := map[string]string{"b": "a'"}
	countTaus := func(f *fsp.FSP) int {
		n := 0
		for s := 0; s < f.NumStates(); s++ {
			for _, a := range f.Arcs(fsp.State(s)) {
				if a.Act == fsp.Tau {
					n++
				}
			}
		}
		return n
	}
	fwd, err := (&compose.Network{Name: "pq"}).Add(p, relabel).Add(q, nil).FSP()
	if err != nil {
		t.Fatal(err)
	}
	rev, err := (&compose.Network{Name: "qp"}).Add(q, nil).Add(p, relabel).FSP()
	if err != nil {
		t.Fatal(err)
	}
	if countTaus(fwd) == 0 || countTaus(rev) == 0 {
		t.Fatalf("relabeled co-name does not handshake: %d/%d taus", countTaus(fwd), countTaus(rev))
	}
	eq, err := core.StrongEquivalent(fwd, rev)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatal("handshakes depend on component order")
	}
	// And hiding the channel must remove the doubled-label interleavings
	// too: nothing named a/a' may survive.
	hidden, err := (&compose.Network{Name: "pqh"}).Add(p, relabel).Add(q, nil).Hide("a").FSP()
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < hidden.NumStates(); s++ {
		for _, a := range hidden.Arcs(fsp.State(s)) {
			if nm := hidden.Alphabet().Name(a.Act); nm == "a" || nm == "a'" || nm == "a''" {
				t.Fatalf("hidden channel survives as %q", nm)
			}
		}
	}
}

// TestIndexMatchesFSP is the differential for the two materializations:
// the direct-CSR index and FromFSP over the FSP product must describe the
// same LTS — same states and edges, identical extension pre-partition, and
// identical coarsest partitions.
func TestIndexMatchesFSP(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	nets := []*compose.Network{
		compose.New("sr", sender(), receiver()).Hide("a"),
		gen.RelayNetwork(3, 2),
		gen.LossyRelayNetwork(3, 1),
	}
	for i := 0; i < 20; i++ {
		nets = append(nets, gen.RandomNetwork(rng))
	}
	for i, net := range nets {
		idx, initial, err := net.Index()
		if err != nil {
			t.Fatal(err)
		}
		f, err := net.FSP()
		if err != nil {
			t.Fatal(err)
		}
		if idx.N() != f.NumStates() {
			t.Fatalf("net %d: index has %d states, FSP %d", i, idx.N(), f.NumStates())
		}
		if idx.NumEdges() != f.NumTransitions() {
			t.Fatalf("net %d: index has %d edges, FSP %d", i, idx.NumEdges(), f.NumTransitions())
		}
		wantInitial := core.ExtInitial(f)
		for s, blk := range wantInitial {
			if initial[s] != blk {
				t.Fatalf("net %d: initial partition differs at state %d", i, s)
			}
		}
		got := partition.PaigeTarjanIndex(idx, initial)
		want := partition.PaigeTarjanIndex(lts.FromFSP(f), wantInitial)
		if !got.Equal(want) {
			t.Fatalf("net %d: coarsest partitions differ: %d vs %d blocks", i, got.NumBlocks(), want.NumBlocks())
		}
	}
}

// minimizeThenCompose quotients every component by ≈ᶜ and composes the
// minima — the pipeline under test, spelled out at the core level.
func minimizeThenCompose(t *testing.T, net *compose.Network) *fsp.FSP {
	t.Helper()
	min := &compose.Network{Name: net.Name, Hidden: net.Hidden}
	for _, comp := range net.Components {
		q, _, err := core.QuotientCongruence(comp.P)
		if err != nil {
			t.Fatal(err)
		}
		min.Add(q, comp.Relabel)
	}
	f, err := min.FSP()
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestMinimizeThenComposeAgrees is the compositionality property at the
// heart of the pipeline: minimize-then-compose and compose-then-minimize
// agree up to ≈ and even ≈ᶜ, across the randomized network generator and
// the structured edge cases (tau-only component, deadlocked component,
// self-composition).
func TestMinimizeThenComposeAgrees(t *testing.T) {
	tauOnly := func() *fsp.FSP {
		b := fsp.NewBuilder("tauspin")
		b.AddStates(3)
		b.ArcName(0, fsp.TauName, 1)
		b.ArcName(1, fsp.TauName, 2)
		b.ArcName(2, fsp.TauName, 0)
		b.Accept(0).Accept(1).Accept(2)
		return b.MustBuild()
	}()
	deadlock := func() *fsp.FSP {
		b := fsp.NewBuilder("dead")
		b.AddStates(1)
		b.Accept(0)
		return b.MustBuild()
	}()
	cell := gen.BufferCell(2)

	nets := []*compose.Network{
		compose.New("tau-only", tauOnly, sender()),
		compose.New("deadlocked", deadlock, sender(), receiver()).Hide("a"),
		compose.New("self", cell, cell, cell), // self-composition, shared pointer
		gen.RelayNetwork(3, 2),
		gen.LossyRelayNetwork(3, 2),
	}
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 25; i++ {
		nets = append(nets, gen.RandomNetwork(rng))
	}

	for i, net := range nets {
		flat, err := net.FSP()
		if err != nil {
			t.Fatal(err)
		}
		// No size assertion here: on already-minimal components the ≈ᶜ
		// root fix can make the minimized product slightly larger than the
		// flat one. The collapse on tau-rich workloads is asserted by the
		// relay-gallery tests (internal/gen) and measured by E17.
		mtc := minimizeThenCompose(t, net)
		weak, err := core.WeakEquivalent(flat, mtc)
		if err != nil {
			t.Fatal(err)
		}
		if !weak {
			t.Fatalf("net %d (%s): minimize-then-compose not ≈ flat product", i, net.Name)
		}
		cong, err := core.ObservationCongruent(flat, mtc)
		if err != nil {
			t.Fatal(err)
		}
		if !cong {
			t.Fatalf("net %d (%s): minimize-then-compose not ≈ᶜ flat product", i, net.Name)
		}
		// Verdicts against an independent spec must agree under both ≈
		// and ≈ᶜ (transitivity makes this redundant given the above, but
		// it is the user-visible contract, so assert it directly).
		spec := gen.Random(rng, 3, 5, 3, 0.3)
		for _, check := range []struct {
			name string
			fn   func(a, b *fsp.FSP) (bool, error)
		}{
			{"weak", func(a, b *fsp.FSP) (bool, error) { return core.WeakEquivalent(a, b) }},
			{"congruence", func(a, b *fsp.FSP) (bool, error) { return core.ObservationCongruent(a, b) }},
		} {
			vFlat, err := check.fn(flat, spec)
			if err != nil {
				t.Fatal(err)
			}
			vMTC, err := check.fn(mtc, spec)
			if err != nil {
				t.Fatal(err)
			}
			if vFlat != vMTC {
				t.Fatalf("net %d (%s): %s verdict differs: flat=%v mtc=%v",
					i, net.Name, check.name, vFlat, vMTC)
			}
		}
	}
}

// TestValidate exercises the description-level error paths.
func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		net  *compose.Network
	}{
		{"empty", &compose.Network{Name: "empty"}},
		{"nil component", (&compose.Network{}).Add(nil, nil)},
		{"relabel tau", (&compose.Network{}).Add(sender(), map[string]string{"tau": "a"})},
		{"relabel to tau", (&compose.Network{}).Add(sender(), map[string]string{"a": "tau"})},
		{"relabel epsilon", (&compose.Network{}).Add(sender(), map[string]string{"ε": "a"})},
		{"hide tau", compose.New("h", sender()).Hide("tau")},
	}
	for _, tc := range cases {
		if err := tc.net.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid network", tc.name)
		}
		if _, err := tc.net.FSP(); err == nil {
			t.Errorf("%s: FSP accepted an invalid network", tc.name)
		}
		if _, _, err := tc.net.Index(); err == nil {
			t.Errorf("%s: Index accepted an invalid network", tc.name)
		}
	}
}

// TestDeterministicOrder: the two materializations and repeated runs see
// the same discovery order, so state counts and fingerprint-style
// comparisons are stable.
func TestDeterministicOrder(t *testing.T) {
	net := gen.RelayNetwork(4, 2)
	a, err := net.FSP()
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.FSP()
	if err != nil {
		t.Fatal(err)
	}
	if !fsp.StructuralEqual(a, b) {
		t.Fatal("repeated composition is not deterministic")
	}
	if fsp.Fingerprint(a) != fsp.Fingerprint(b) {
		t.Fatal("fingerprints of identical compositions differ")
	}
}

func ExampleNetwork_String() {
	net := compose.New("", sender(), receiver()).Hide("a")
	fmt.Println(net.String())
	// Output: (S|R)\{a}
}

// TestAppendSuccMatchesSucc: the batched successor enumeration must agree
// with the streaming callback — same labels, same vectors, same
// deterministic order — on every reachable product state of the gallery
// and a handful of random networks.
func TestAppendSuccMatchesSucc(t *testing.T) {
	var nets []*compose.Network
	for _, entry := range gen.NetworkGallery() {
		nets = append(nets, entry.Net)
	}
	for _, entry := range gen.ProtocolGallery() {
		nets = append(nets, entry.Net) // sync-vector networks ride the same differential
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10; i++ {
		nets = append(nets, gen.RandomNetwork(rng))
	}
	for _, net := range nets {
		e, err := net.Expand()
		if err != nil {
			t.Fatal(err)
		}
		k := e.K()
		type step struct {
			label int32
			vec   string
		}
		start := append([]int32(nil), e.Starts...)
		seen := map[string]bool{fmt.Sprint(start): true}
		queue := [][]int32{start}
		var b compose.SuccBatch
		scratch := make([]int32, k)
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			var want []step
			e.Succ(cur, scratch, func(label int32, succ []int32) bool {
				want = append(want, step{label, fmt.Sprint(succ)})
				return true
			})
			b.Reset()
			e.AppendSucc(cur, &b)
			if b.Len() != len(want) {
				t.Fatalf("%s at %v: AppendSucc found %d successors, Succ %d", net, cur, b.Len(), len(want))
			}
			for j := 0; j < b.Len(); j++ {
				got := step{b.Labels[j], fmt.Sprint(b.Vec(j))}
				if got != want[j] {
					t.Fatalf("%s at %v, successor %d: AppendSucc %v, Succ %v", net, cur, j, got, want[j])
				}
				if !seen[got.vec] {
					seen[got.vec] = true
					queue = append(queue, append([]int32(nil), b.Vec(j)...))
				}
			}
		}
	}
}
