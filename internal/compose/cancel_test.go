package compose_test

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"ccs/internal/gen"
)

// pollCtx counts Err() calls and cancels after the given number, so a
// test can prove a loop polls repeatedly (not just at entry) and that
// cancellation takes effect mid-run.
type pollCtx struct {
	context.Context
	calls atomic.Int64
	after int64
}

func (c *pollCtx) Err() error {
	if c.calls.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}

// TestFSPCtxCancelsMidComposition: the unminimized token ring's flat
// product is tens of thousands of states, far past the 256-state poll
// stride. A context that trips on the second poll must abort the walk
// with context.Canceled after more than one poll — proving the product
// loop re-checks the context inside the walk, not only at entry.
func TestFSPCtxCancelsMidComposition(t *testing.T) {
	net := gen.TokenRing(8)

	ctx := &pollCtx{Context: context.Background(), after: 1}
	if _, err := net.FSPCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("FSPCtx error = %v, want context.Canceled", err)
	}
	if got := ctx.calls.Load(); got < 2 {
		t.Fatalf("context polled %d times, want >= 2 (in-loop polling)", got)
	}

	// Same walk under a live context completes, and the CSR route honors
	// cancellation the same way.
	if _, err := net.FSPCtx(context.Background()); err != nil {
		t.Fatalf("uncancelled FSPCtx: %v", err)
	}
	idxCtx := &pollCtx{Context: context.Background(), after: 1}
	if _, _, err := net.IndexCtx(idxCtx); !errors.Is(err, context.Canceled) {
		t.Fatalf("IndexCtx error = %v, want context.Canceled", err)
	}
}
