package compose_test

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"ccs/internal/compose"
	"ccs/internal/core"
	"ccs/internal/fsp"
	"ccs/internal/gen"
)

// loop builds a cycle of len(actions) accepting states, each arc consuming
// one action in order; with one action it is a single self-loop.
func loop(name string, actions ...string) *fsp.FSP {
	b := fsp.NewBuilder(name)
	b.AddStates(len(actions))
	for i, a := range actions {
		b.ArcName(fsp.State(i), a, fsp.State((i+1)%len(actions)))
		b.Accept(fsp.State(i))
	}
	return b.MustBuild()
}

type emission struct {
	label int32
	vec   string
}

// collectSucc drains Succ at cur into an ordered emission list.
func collectSucc(e *compose.Expansion, cur []int32) []emission {
	scratch := make([]int32, e.K())
	var out []emission
	e.Succ(cur, scratch, func(label int32, succ []int32) bool {
		out = append(out, emission{label, fmt.Sprint(succ)})
		return true
	})
	return out
}

// pairwiseRef re-implements the pre-sync-table CCS product semantics —
// interleavings of unhidden actions plus pairwise complementary handshakes
// — independently of the production enumerator, in the exact emission
// order the explorer historically used. It is the oracle for the
// byte-identical-default acceptance criterion.
func pairwiseRef(e *compose.Expansion, cur []int32) []emission {
	k := e.K()
	succ := make([]int32, k)
	var out []emission
	for i := 0; i < k; i++ {
		for _, a := range e.Trans[i][cur[i]] {
			if a.Label == 0 || !e.Hidden[a.Label] {
				copy(succ, cur)
				succ[i] = a.To
				out = append(out, emission{a.Label, fmt.Sprint(succ)})
			}
			if a.Label == 0 {
				continue
			}
			co := e.CoOf[a.Label]
			if co < 0 {
				continue
			}
			for j := i + 1; j < k; j++ {
				for _, b := range e.Trans[j][cur[j]] {
					if b.Label != co {
						continue
					}
					copy(succ, cur)
					succ[i] = a.To
					succ[j] = b.To
					out = append(out, emission{0, fmt.Sprint(succ)})
				}
			}
		}
	}
	return out
}

// reachable walks the product BFS through Succ and returns every reachable
// state vector in discovery order.
func reachable(t *testing.T, e *compose.Expansion) [][]int32 {
	t.Helper()
	start := append([]int32(nil), e.Starts...)
	seen := map[string]bool{fmt.Sprint(start): true}
	queue := [][]int32{start}
	scratch := make([]int32, e.K())
	for head := 0; head < len(queue); head++ {
		e.Succ(queue[head], scratch, func(_ int32, succ []int32) bool {
			key := fmt.Sprint(succ)
			if !seen[key] {
				seen[key] = true
				queue = append(queue, append([]int32(nil), succ...))
			}
			return true
		})
		if head > 1<<16 {
			t.Fatal("product too large for the differential walk")
		}
	}
	return queue
}

// TestDefaultTableMatchesPairwise is the acceptance differential: on every
// network without a sync table — the entire existing gallery plus random
// networks — the refactored enumerator must emit exactly the pairwise CCS
// successor stream, same labels, same vectors, same order, at every
// reachable product state. Byte-identical explorer output follows, since
// both materializing sinks consume this stream in discovery order.
func TestDefaultTableMatchesPairwise(t *testing.T) {
	var nets []*compose.Network
	for _, entry := range gen.NetworkGallery() {
		nets = append(nets, entry.Net)
	}
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 15; i++ {
		nets = append(nets, gen.RandomNetwork(rng))
	}
	for _, net := range nets {
		if len(net.Sync) != 0 {
			t.Fatalf("%s: existing gallery entry unexpectedly carries a sync table", net)
		}
		e, err := net.Expand()
		if err != nil {
			t.Fatal(err)
		}
		if len(e.Vectors) != 0 {
			t.Fatalf("%s: default expansion has %d sync vectors", net, len(e.Vectors))
		}
		for _, cur := range reachable(t, e) {
			got, want := collectSucc(e, cur), pairwiseRef(e, cur)
			if len(got) != len(want) {
				t.Fatalf("%s at %v: %d successors, pairwise reference has %d", net, cur, len(got), len(want))
			}
			for j := range got {
				if got[j] != want[j] {
					t.Fatalf("%s at %v successor %d: got %v, pairwise reference %v", net, cur, j, got[j], want[j])
				}
			}
		}
	}
}

// vectorRef brute-forces the sync-vector semantics independently of the
// production matcher: for every vector, every injective assignment of
// parts to components with an enabled arc choice per part, deduplicated by
// the normalized (component, arc) choice set. Returned together with the
// pairwise reference as an order-free multiset.
func vectorRef(t *testing.T, net *compose.Network, e *compose.Expansion, cur []int32) []emission {
	t.Helper()
	out := pairwiseRef(e, cur)
	ids := map[string]int32{}
	for l, nm := range e.Labels {
		ids[nm] = int32(l)
	}
	hidden := map[string]bool{}
	for _, h := range net.Hidden {
		hidden[h] = true
		hidden[fsp.CoName(h)] = true
	}
	k := e.K()
	for _, r := range net.Sync {
		res := int32(0)
		if !r.Tau() {
			var ok bool
			if res, ok = ids[r.Result]; !ok {
				t.Fatalf("result %q not interned", r.Result)
			}
			if hidden[r.Result] {
				continue // restricted result: the vector never fires
			}
		}
		type choice struct {
			comp int
			to   int32
		}
		seen := map[string]bool{}
		var pick func(p int, taken []choice)
		pick = func(p int, taken []choice) {
			if p == len(r.Parts) {
				norm := append([]choice(nil), taken...)
				sort.Slice(norm, func(x, y int) bool { return norm[x].comp < norm[y].comp })
				key := fmt.Sprint(norm)
				if seen[key] {
					return
				}
				seen[key] = true
				succ := append([]int32(nil), cur...)
				for _, c := range norm {
					succ[c.comp] = c.to
				}
				out = append(out, emission{res, fmt.Sprint(succ)})
				return
			}
			l, ok := ids[r.Parts[p]]
			if !ok {
				return
			}
		next:
			for i := 0; i < k; i++ {
				for _, c := range taken {
					if c.comp == i {
						continue next
					}
				}
				for _, a := range e.Trans[i][cur[i]] {
					if a.Label == l {
						pick(p+1, append(taken, choice{i, a.To}))
					}
				}
			}
		}
		pick(0, nil)
	}
	return out
}

func sortEmissions(es []emission) {
	sort.Slice(es, func(x, y int) bool {
		if es[x].label != es[y].label {
			return es[x].label < es[y].label
		}
		return es[x].vec < es[y].vec
	})
}

// syncNets builds a spread of sync-table networks covering the matcher's
// edge cases: 3-way rendezvous, equal-label parts (quorum shape), parts
// with several arcs per state, hidden parts, visible and hidden results,
// several rules at once, and parts no component carries.
func syncNets() []*compose.Network {
	a3 := func() *fsp.FSP { return loop("A", "a") }
	nets := []*compose.Network{
		// Three-way internal rendezvous on distinct channels.
		compose.New("tri", loop("P", "x"), loop("Q", "y"), loop("R", "z")).
			AddSync("", "x", "y", "z").Hide("x", "y", "z"),
		// Quorum shape: 2 of 3 equal-label parts, visible result.
		compose.New("quorum", a3(), a3(), a3()).
			AddSync("go", "a", "a").Hide("a"),
		// Full-width equal parts.
		compose.New("bcast", a3(), a3(), a3()).
			AddSync("all", "a", "a", "a").Hide("a"),
		// Visible parts (not hidden): rendezvous and interleavings coexist.
		compose.New("open", a3(), a3()).AddSync("both", "a", "a"),
		// Hidden visible result: the vector must be pruned.
		compose.New("pruned", a3(), a3()).AddSync("go", "a", "a").Hide("a", "go"),
		// A part nobody carries: the rule can never fire.
		compose.New("orphan", a3(), a3()).AddSync("", "a", "ghost"),
		// Two rules sharing parts, mixed results.
		compose.New("mixed", loop("P", "x", "a"), loop("Q", "y", "a"), loop("R", "a")).
			AddSync("", "x", "y").AddSync("done", "a", "a", "a").Hide("x", "y", "a"),
		// Branching arcs on the part label: multiplicities must multiply.
		func() *compose.Network {
			b := fsp.NewBuilder("fork")
			b.AddStates(3)
			b.ArcName(0, "a", 1)
			b.ArcName(0, "a", 2)
			b.ArcName(1, "a", 0)
			b.ArcName(2, "a", 0)
			b.Accept(0).Accept(1).Accept(2)
			f := b.MustBuild()
			return compose.New("fork2", f, f).AddSync("go", "a", "a").Hide("a")
		}(),
		// Sync on top of a handshake-capable pair: both synchronization
		// mechanisms coexist at one state.
		compose.New("hybrid", sender(), receiver(), loop("W", "b")).
			AddSync("joint", "b'", "b").Hide("a", "b"),
	}
	return nets
}

// TestVectorSuccMatchesBruteForce pins vector-mode Succ against the
// independent brute-force reference at every reachable state of every
// sync network, as an order-free multiset (the production order is pinned
// separately by TestAppendSuccMatchesSucc, which includes sync networks).
func TestVectorSuccMatchesBruteForce(t *testing.T) {
	for _, net := range syncNets() {
		e, err := net.Expand()
		if err != nil {
			t.Fatal(err)
		}
		for _, cur := range reachable(t, e) {
			got := collectSucc(e, cur)
			want := vectorRef(t, net, e, cur)
			sortEmissions(got)
			sortEmissions(want)
			if len(got) != len(want) {
				t.Fatalf("%s at %v: Succ emits %d, brute force %d\ngot  %v\nwant %v", net, cur, len(got), len(want), got, want)
			}
			for j := range got {
				if got[j] != want[j] {
					t.Fatalf("%s at %v: emission %d: Succ %v, brute force %v", net, cur, j, got[j], want[j])
				}
			}
		}
	}
}

// TestSyncBatchMatchesStream extends the batched-vs-streamed differential
// to sync networks: AppendSucc and Succ must agree exactly, order
// included, so the otf game sees the same successor stream as the
// materializing explorer.
func TestSyncBatchMatchesStream(t *testing.T) {
	for _, net := range syncNets() {
		e, err := net.Expand()
		if err != nil {
			t.Fatal(err)
		}
		var b compose.SuccBatch
		for _, cur := range reachable(t, e) {
			want := collectSucc(e, cur)
			b.Reset()
			e.AppendSucc(cur, &b)
			if b.Len() != len(want) {
				t.Fatalf("%s at %v: AppendSucc %d successors, Succ %d", net, cur, b.Len(), len(want))
			}
			for j := 0; j < b.Len(); j++ {
				got := emission{b.Labels[j], fmt.Sprint(b.Vec(j))}
				if got != want[j] {
					t.Fatalf("%s at %v successor %d: AppendSucc %v, Succ %v", net, cur, j, got, want[j])
				}
			}
		}
	}
}

// TestSyncProduct pins the user-visible semantics of a three-way
// rendezvous end to end through FSP(): with the part channels hidden, the
// only transitions left are the joint steps.
func TestSyncProduct(t *testing.T) {
	net := compose.New("tri",
		loop("P", "x"), loop("Q", "y"), loop("R", "z")).
		AddSync("go", "x", "y", "z").Hide("x", "y", "z")
	f, err := net.FSP()
	if err != nil {
		t.Fatal(err)
	}
	if f.NumStates() != 1 || f.NumTransitions() != 1 {
		t.Fatalf("3-way rendezvous product has %d states / %d arcs, want 1/1", f.NumStates(), f.NumTransitions())
	}
	if nm := f.Alphabet().Name(f.Arcs(0)[0].Act); nm != "go" {
		t.Fatalf("joint step labelled %q, want go", nm)
	}
	// Same network without the rule deadlocks outright: no co-names, no
	// handshake, everything hidden.
	dead, err := compose.New("tri0", loop("P", "x"), loop("Q", "y"), loop("R", "z")).
		Hide("x", "y", "z").FSP()
	if err != nil {
		t.Fatal(err)
	}
	if dead.NumTransitions() != 0 {
		t.Fatalf("vector-less triple has %d transitions, want deadlock", dead.NumTransitions())
	}
	// Tau result: the joint step is internal.
	tri, err := compose.New("triT", loop("P", "x"), loop("Q", "y"), loop("R", "z")).
		AddSync("tau", "x", "y", "z").Hide("x", "y", "z").FSP()
	if err != nil {
		t.Fatal(err)
	}
	if tri.NumTransitions() != 1 || tri.Arcs(0)[0].Act != fsp.Tau {
		t.Fatal("tau-result rendezvous did not produce a single internal step")
	}
}

// TestSyncValidate exercises the sync-table error paths.
func TestSyncValidate(t *testing.T) {
	cases := []struct {
		name string
		net  *compose.Network
	}{
		{"one part", compose.New("s", sender()).AddSync("", "a")},
		{"tau part", compose.New("s", sender(), receiver()).AddSync("", "tau", "a")},
		{"empty part", compose.New("s", sender(), receiver()).AddSync("", "", "a")},
		{"epsilon part", compose.New("s", sender(), receiver()).AddSync("", "ε", "a")},
		{"epsilon result", compose.New("s", sender(), receiver()).AddSync("ε", "a", "b")},
	}
	for _, tc := range cases {
		if err := tc.net.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid sync table", tc.name)
		}
		if _, err := tc.net.FSP(); err == nil {
			t.Errorf("%s: FSP accepted an invalid sync table", tc.name)
		}
	}
}

// TestSyncMinimizeThenCompose is the compositionality differential on
// sync networks: quotienting components by ≈ᶜ before composing must
// preserve ≈ and ≈ᶜ of the product — the soundness claim the engine's
// minimize-then-compose pipeline relies on for vector composition.
func TestSyncMinimizeThenCompose(t *testing.T) {
	for _, net := range syncNets() {
		flat, err := net.FSP()
		if err != nil {
			t.Fatal(err)
		}
		min := &compose.Network{Name: net.Name, Hidden: net.Hidden, Sync: net.Sync}
		for _, comp := range net.Components {
			q, _, err := core.QuotientCongruence(comp.P)
			if err != nil {
				t.Fatal(err)
			}
			min.Add(q, comp.Relabel)
		}
		mtc, err := min.FSP()
		if err != nil {
			t.Fatal(err)
		}
		weak, err := core.WeakEquivalent(flat, mtc)
		if err != nil {
			t.Fatal(err)
		}
		cong, err := core.ObservationCongruent(flat, mtc)
		if err != nil {
			t.Fatal(err)
		}
		if !weak || !cong {
			t.Fatalf("%s: minimize-then-compose diverges from flat product (≈=%v ≈ᶜ=%v)", net, weak, cong)
		}
	}
}
